// Command slicectl is the Slice client CLI. It mounts a volume — either
// from a running sliced over UDP (-connect) or from a throwaway in-process
// ensemble (the default, handy for demos) — and executes one file command:
//
//	slicectl -connect 127.0.0.1:20490 ls /
//	slicectl -connect 127.0.0.1:20490 mkdir /src
//	slicectl -connect 127.0.0.1:20490 put /src/a.txt "hello"
//	slicectl -connect 127.0.0.1:20490 get /src/a.txt
//	slicectl -connect 127.0.0.1:20490 stat /src/a.txt
//	slicectl -connect 127.0.0.1:20490 mv /src/a.txt /src/b.txt
//	slicectl -connect 127.0.0.1:20490 rm /src/b.txt
//	slicectl -connect 127.0.0.1:20490 untar /stress 500
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/fhandle"
	"slice/internal/route"
	"slice/internal/udpgate"
	"slice/internal/workload"
)

func main() {
	connect := flag.String("connect", "", "UDP address of a running sliced (empty: in-process ensemble)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: slicectl [-connect addr] <ls|mkdir|put|get|stat|mv|rm|rmdir|df|untar> [args]")
		os.Exit(2)
	}

	var c *client.Client
	if *connect != "" {
		conn, err := udpgate.Dial(*connect)
		if err != nil {
			log.Fatalf("slicectl: dial: %v", err)
		}
		c = client.NewWithConn(conn, client.Config{})
	} else {
		e, err := ensemble.New(ensemble.Config{
			StorageNodes: 4, DirServers: 2, SmallFileServers: 2,
			Coordinator: true, NameKind: route.MkdirSwitching, MkdirP: 0.25,
		})
		if err != nil {
			log.Fatalf("slicectl: ensemble: %v", err)
		}
		defer e.Close()
		c, err = e.NewClient()
		if err != nil {
			log.Fatalf("slicectl: client: %v", err)
		}
		defer c.Close()
	}
	if *connect != "" {
		if err := c.Mount(); err != nil {
			log.Fatalf("slicectl: mount: %v", err)
		}
		defer c.Close()
	}

	if err := run(c, args); err != nil {
		log.Fatalf("slicectl: %v", err)
	}
}

// resolve walks an absolute path to a handle.
func resolve(c *client.Client, path string) (fhandle.Handle, error) {
	cur := c.Root()
	for _, part := range splitPath(path) {
		fh, _, err := c.Lookup(cur, part)
		if err != nil {
			return fhandle.Handle{}, fmt.Errorf("%s: %w", part, err)
		}
		cur = fh
	}
	return cur, nil
}

// resolveParent returns the handle of the path's directory and the final
// name component.
func resolveParent(c *client.Client, path string) (fhandle.Handle, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return fhandle.Handle{}, "", fmt.Errorf("path %q has no final component", path)
	}
	dir := c.Root()
	for _, part := range parts[:len(parts)-1] {
		fh, _, err := c.Lookup(dir, part)
		if err != nil {
			return fhandle.Handle{}, "", fmt.Errorf("%s: %w", part, err)
		}
		dir = fh
	}
	return dir, parts[len(parts)-1], nil
}

func splitPath(path string) []string {
	var out []string
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(c *client.Client, args []string) error {
	cmd := args[0]
	need := func(n int) error {
		if len(args) < n+1 {
			return fmt.Errorf("%s: missing arguments", cmd)
		}
		return nil
	}
	switch cmd {
	case "ls":
		if err := need(1); err != nil {
			return err
		}
		dir, err := resolve(c, args[1])
		if err != nil {
			return err
		}
		ents, err := c.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			fmt.Println(e.Name)
		}
		return nil

	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		dir, name, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		_, _, err = c.Mkdir(dir, name, 0o755)
		return err

	case "put":
		if err := need(2); err != nil {
			return err
		}
		dir, name, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		fh, _, err := c.Create(dir, name, 0o644, false)
		if err != nil {
			return err
		}
		return c.WriteFile(fh, []byte(args[2]))

	case "get":
		if err := need(1); err != nil {
			return err
		}
		fh, err := resolve(c, args[1])
		if err != nil {
			return err
		}
		data, err := c.ReadAll(fh)
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
		return nil

	case "stat":
		if err := need(1); err != nil {
			return err
		}
		fh, err := resolve(c, args[1])
		if err != nil {
			return err
		}
		at, err := c.GetAttr(fh)
		if err != nil {
			return err
		}
		fmt.Printf("type %v mode %o nlink %d size %d used %d fileid %d site %d\n",
			at.Type, at.Mode, at.Nlink, at.Size, at.Used, at.FileID, fh.Site)
		return nil

	case "mv":
		if err := need(2); err != nil {
			return err
		}
		fromDir, fromName, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		toDir, toName, err := resolveParent(c, args[2])
		if err != nil {
			return err
		}
		return c.Rename(fromDir, fromName, toDir, toName)

	case "rm":
		if err := need(1); err != nil {
			return err
		}
		dir, name, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		return c.Remove(dir, name)

	case "rmdir":
		if err := need(1); err != nil {
			return err
		}
		dir, name, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		return c.Rmdir(dir, name)

	case "df":
		res, err := c.FsStat(c.Root())
		if err != nil {
			return err
		}
		fmt.Printf("bytes: %d total, %d free; files: %d total, %d free\n",
			res.TotalBytes, res.FreeBytes, res.TotalFiles, res.FreeFiles)
		return nil

	case "untar":
		if err := need(2); err != nil {
			return err
		}
		entries, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("untar: bad entry count %q", args[2])
		}
		dir, name, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		_ = dir
		st, err := workload.Untar(c, c.Root(), workload.UntarConfig{
			Entries: entries, Prefix: name,
		})
		if err != nil {
			return err
		}
		fmt.Printf("untar: %d dirs, %d files, %d NFS ops\n", st.Dirs, st.Files, st.NFSOps)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
