// Package checksum implements the 16-bit Internet checksum (RFC 1071) and
// the incremental update technique of RFC 1624 used by packet rewriters.
//
// The Slice µproxy modifies only a handful of bytes in each datagram — the
// source or destination address and port, and occasionally attribute fields
// — so it adjusts the UDP-style checksum differentially rather than
// recomputing it over the whole packet. The cost of the adjustment is
// proportional to the number of modified bytes and independent of packet
// size (§4.1). This mirrors the FreeBSD NAT-derived code in the prototype.
package checksum

// Sum computes the Internet checksum over p: the ones'-complement of the
// ones'-complement sum of 16-bit big-endian words, with a final odd byte
// padded with zero.
func Sum(p []byte) uint16 {
	var s uint32
	for len(p) >= 2 {
		s += uint32(p[0])<<8 | uint32(p[1])
		p = p[2:]
	}
	if len(p) == 1 {
		s += uint32(p[0]) << 8
	}
	for s>>16 != 0 {
		s = (s & 0xffff) + s>>16
	}
	return ^uint16(s)
}

// Update returns the checksum after a 16-bit word at an even offset changes
// from old to new, per RFC 1624 equation 3: HC' = ~(~HC + ~m + m').
func Update(sum, old, new uint16) uint16 {
	s := uint32(^sum&0xffff) + uint32(^old&0xffff) + uint32(new)
	for s>>16 != 0 {
		s = (s & 0xffff) + s>>16
	}
	return ^uint16(s)
}

// Update32 folds a 32-bit word change into the checksum; the word must
// start at an even byte offset.
func Update32(sum uint16, old, new uint32) uint16 {
	sum = Update(sum, uint16(old>>16), uint16(new>>16))
	return Update(sum, uint16(old), uint16(new))
}

// Update64 folds a 64-bit word change into the checksum; the word must
// start at an even byte offset.
func Update64(sum uint16, old, new uint64) uint16 {
	sum = Update32(sum, uint32(old>>32), uint32(new>>32))
	return Update32(sum, uint32(old), uint32(new))
}

// UpdateBytes folds a change of the even-offset-aligned byte range from old
// to new (equal lengths) into the checksum.
func UpdateBytes(sum uint16, old, new []byte) uint16 {
	n := len(old)
	if len(new) < n {
		n = len(new)
	}
	for i := 0; i+1 < n; i += 2 {
		ow := uint16(old[i])<<8 | uint16(old[i+1])
		nw := uint16(new[i])<<8 | uint16(new[i+1])
		sum = Update(sum, ow, nw)
	}
	if n%2 == 1 {
		sum = Update(sum, uint16(old[n-1])<<8, uint16(new[n-1])<<8)
	}
	return sum
}
