// Command uproxyd demonstrates that µproxies are freely replicable
// (§2.1): it runs an ensemble and interposes a SECOND µproxy — with its
// own routing policy parameters — presenting the same volume at a second
// virtual address, each behind its own UDP endpoint. The constraint the
// architecture imposes is only that each client's request stream passes
// through a single µproxy; clients of endpoint A and clients of endpoint
// B share the volume with no coordination between the two proxies beyond
// their (soft) routing tables.
//
//	uproxyd -listen 127.0.0.1:20490 -listen2 127.0.0.1:20491
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"time"

	"slice/internal/ensemble"
	"slice/internal/netsim"
	"slice/internal/obs"
	"slice/internal/proxy"
	"slice/internal/route"
	"slice/internal/udpgate"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:20490", "UDP endpoint of µproxy #1")
		listen2   = flag.String("listen2", "127.0.0.1:20491", "UDP endpoint of µproxy #2")
		stats     = flag.Duration("stats", 10*time.Second, "stats print interval")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
		mutexFrac = flag.Int("mutexprofile", 0, "runtime.SetMutexProfileFraction rate (0 = off)")
		blockRate = flag.Int("blockprofile", 0, "runtime.SetBlockProfileRate rate in ns (0 = off)")
	)
	flag.Parse()

	// Contention profiling of the sharded data path: sample mutex hold/wait
	// times and serve them at /debug/pprof/{mutex,block}.
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("uproxyd: pprof server: %v", err)
			}
		}()
		fmt.Printf("uproxyd: pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}

	e, err := ensemble.New(ensemble.Config{
		StorageNodes:      4,
		DirServers:        2,
		SmallFileServers:  2,
		Coordinator:       true,
		NameKind:          route.MkdirSwitching,
		MkdirP:            0.25,
		WritebackInterval: 2 * time.Second,
	})
	if err != nil {
		log.Fatalf("uproxyd: ensemble: %v", err)
	}
	defer e.Close()

	// Second µproxy: same policies over the same tables, second virtual
	// address, its own soft state.
	virtual2 := netsim.Addr{Host: ensemble.HostVirtual + 1, Port: ensemble.ServicePort}
	var coordAddr netsim.Addr
	if e.Coord != nil {
		coordAddr = e.Coord.Addr()
	}
	// The replica µproxy observes into its own registry and trace ring,
	// registered with the shared collector: `slicectl stats` against
	// either endpoint shows both proxies side by side.
	reg2 := obs.NewRegistry("uproxy2")
	tracer2 := obs.NewTracer(256)
	e.Obs.AddRegistry(reg2)
	e.Obs.AddTracer("uproxy2", tracer2)
	p2 := proxy.New(proxy.Config{
		Net:               e.Net,
		Host:              ensemble.HostProxy - 1,
		Virtual:           virtual2,
		IO:                e.IOPolicy,
		Names:             e.NamePolicy,
		Coord:             coordAddr,
		WritebackInterval: 2 * time.Second,
		Obs:               reg2,
		Tracer:            tracer2,
	})
	defer p2.Close()

	gw1, err := udpgate.NewGateway(*listen, e.Net, e.Virtual)
	if err != nil {
		log.Fatalf("uproxyd: gateway 1: %v", err)
	}
	defer gw1.Close()
	gw2, err := udpgate.NewGateway(*listen2, e.Net, virtual2)
	if err != nil {
		log.Fatalf("uproxyd: gateway 2: %v", err)
	}
	defer gw2.Close()

	fmt.Printf("uproxyd: one volume, two interposed µproxies\n")
	fmt.Printf("  µproxy #1: %v (fabric %v)\n", gw1.Addr(), e.Virtual)
	fmt.Printf("  µproxy #2: %v (fabric %v)\n", gw2.Addr(), virtual2)
	fmt.Printf("mount either with: slicectl -connect <addr> ls /\n")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*stats)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("\nuproxyd: shutting down")
			dump("µproxy#1", e.Proxy)
			dump("µproxy#2", p2)
			dumpPool()
			return
		case <-tick.C:
			dump("µproxy#1", e.Proxy)
			dump("µproxy#2", p2)
			dumpPool()
			e.Obs.WriteText(os.Stdout)
		}
	}
}

func dump(name string, p *proxy.Proxy) {
	st := p.Stats()
	pkts := st.Requests + st.Responses
	fmt.Printf("[%s] %d pkts (%d req / %d resp / %d absorbed)", name, pkts,
		st.Requests, st.Responses, st.Absorbed)
	if pkts > 0 {
		fmt.Printf("; ns/pkt: intercept %.0f decode %.0f rewrite %.0f softstate %.0f",
			float64(st.InterceptNS)/float64(pkts),
			float64(st.DecodeNS)/float64(pkts),
			float64(st.RewriteNS)/float64(pkts),
			float64(st.SoftStateNS)/float64(pkts))
	}
	fmt.Println()

	// Aggregate the per-shard soft-state occupancy and hit rates, noting
	// the hottest shard so routing skew is visible at a glance.
	var pend, attrs, names, maxPend int
	var ahits, amiss, nhits, nmiss uint64
	for _, sh := range p.ShardStats() {
		pend += sh.Pending
		attrs += sh.AttrEntries
		names += sh.NameEntries
		ahits += sh.AttrHits
		amiss += sh.AttrMisses
		nhits += sh.NameHits
		nmiss += sh.NameMisses
		if sh.Pending > maxPend {
			maxPend = sh.Pending
		}
	}
	fmt.Printf("[%s] shards: %d pending (max/shard %d), %d attrs (hit %s), %d names (hit %s)\n",
		name, pend, maxPend, attrs, pct(ahits, amiss), names, pct(nhits, nmiss))
}

func dumpPool() {
	ps := netsim.PoolStats()
	fmt.Printf("[bufpool] %d gets / %d puts / %d fresh allocs / %d foreign frees\n",
		ps.Gets, ps.Puts, ps.News, ps.Ignored)
}

func pct(hits, misses uint64) string {
	if hits+misses == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(hits+misses))
}
