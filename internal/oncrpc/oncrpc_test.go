package oncrpc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slice/internal/netsim"
	"slice/internal/xdr"
)

func newPair(t *testing.T, netCfg netsim.Config, h Handler, clientCfg ClientConfig) (*Client, *Server) {
	t.Helper()
	n := netsim.New(netCfg)
	sp, err := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sp, h)
	cp, err := n.Bind(netsim.Addr{Host: 1, Port: 100})
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cp, srv.Addr(), clientCfg)
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

// echoHandler replies with the call body it received.
var echoHandler = HandlerFunc(func(call Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
	body := append([]byte(nil), call.Body...)
	return func(e *xdr.Encoder) { e.PutFixedOpaque(body) }, AcceptSuccess
})

func TestCallReply(t *testing.T) {
	cli, _ := newPair(t, netsim.Config{}, echoHandler, ClientConfig{})
	body, err := cli.Call(7, 1, 3, func(e *xdr.Encoder) { e.PutUint32(0xC0FFEE) })
	if err != nil {
		t.Fatal(err)
	}
	v, err := xdr.NewDecoder(body).Uint32()
	if err != nil || v != 0xC0FFEE {
		t.Fatalf("echo = %x, %v", v, err)
	}
}

func TestHeaderOffsets(t *testing.T) {
	payload := EncodeCall(42, 100003, 3, 6, func(e *xdr.Encoder) { e.PutUint32(9) })
	d := xdr.NewDecoder(payload)
	xid, _ := d.UintAt(OffXid)
	mt, _ := d.UintAt(OffMsgType)
	prog, _ := d.UintAt(OffProgram)
	vers, _ := d.UintAt(OffVersion)
	proc, _ := d.UintAt(OffProc)
	if xid != 42 || mt != MsgCall || prog != 100003 || vers != 3 || proc != 6 {
		t.Fatalf("fields %d %d %d %d %d", xid, mt, prog, vers, proc)
	}
	call, err := ParseCall(payload)
	if err != nil {
		t.Fatal(err)
	}
	if call.Xid != 42 || call.Proc != 6 || len(call.Body) != 4 {
		t.Fatalf("ParseCall: %+v", call)
	}
}

func TestParseRejects(t *testing.T) {
	if _, err := ParseCall([]byte{1, 2, 3}); err == nil {
		t.Fatal("short call accepted")
	}
	reply := EncodeReply(1, AcceptSuccess, nil)
	if _, err := ParseCall(reply); err == nil {
		t.Fatal("reply parsed as call")
	}
	call := EncodeCall(1, 2, 3, 4, nil)
	if _, err := ParseReply(call); err == nil {
		t.Fatal("call parsed as reply")
	}
}

func TestIsCall(t *testing.T) {
	c := EncodeCall(1, 2, 3, 4, nil)
	r := EncodeReply(1, AcceptSuccess, nil)
	if ok, err := IsCall(c); err != nil || !ok {
		t.Fatalf("IsCall(call) = %v, %v", ok, err)
	}
	if ok, err := IsCall(r); err != nil || ok {
		t.Fatalf("IsCall(reply) = %v, %v", ok, err)
	}
	if _, err := IsCall([]byte{0}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestRetransmissionOnLoss(t *testing.T) {
	// 30% loss: calls must still succeed via retransmission.
	cli, _ := newPair(t, netsim.Config{LossRate: 0.3, Seed: 5}, echoHandler,
		ClientConfig{Timeout: 20 * time.Millisecond, Retries: 10})
	for i := 0; i < 30; i++ {
		if _, err := cli.Call(7, 1, 1, func(e *xdr.Encoder) { e.PutUint32(uint32(i)) }); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if cli.Retransmissions() == 0 {
		t.Fatal("expected retransmissions under 30% loss")
	}
}

func TestTimeoutWhenServerGone(t *testing.T) {
	n := netsim.New(netsim.Config{})
	cp, _ := n.Bind(netsim.Addr{Host: 1, Port: 100})
	cli := NewClient(cp, netsim.Addr{Host: 9, Port: 9}, ClientConfig{
		Timeout: 5 * time.Millisecond, Retries: 2,
	})
	defer cli.Close()
	_, err := cli.Call(1, 1, 1, nil)
	if !errors.Is(err, ErrTimedOut) {
		t.Fatalf("err = %v, want ErrTimedOut", err)
	}
}

func TestRejectedCall(t *testing.T) {
	h := HandlerFunc(func(call Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
		return nil, AcceptProcUnavail
	})
	cli, _ := newPair(t, netsim.Config{}, h, ClientConfig{})
	_, err := cli.Call(1, 1, 99, nil)
	var rej *ErrRejected
	if !errors.As(err, &rej) || rej.Accept != AcceptProcUnavail {
		t.Fatalf("err = %v, want ErrRejected{ProcUnavail}", err)
	}
}

// TestDuplicateRequestCache verifies that a retransmitted non-idempotent
// call executes once: the server replays the cached reply.
func TestDuplicateRequestCache(t *testing.T) {
	var executions atomic.Uint64
	h := HandlerFunc(func(call Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
		n := executions.Add(1)
		return func(e *xdr.Encoder) { e.PutUint64(n) }, AcceptSuccess
	})
	n := netsim.New(netsim.Config{})
	sp, _ := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	srv := NewServer(sp, h)
	defer srv.Close()
	cp, _ := n.Bind(netsim.Addr{Host: 1, Port: 100})
	defer cp.Close()

	// Send the same xid twice, manually.
	payload := EncodeCall(1234, 7, 1, 1, nil)
	for i := 0; i < 2; i++ {
		if err := cp.SendTo(srv.Addr(), payload); err != nil {
			t.Fatal(err)
		}
		d, err := cp.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ParseReply(netsim.Payload(d))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := xdr.NewDecoder(rep.Body).Uint64()
		if v != 1 {
			t.Fatalf("attempt %d: execution counter in reply = %d, want 1", i, v)
		}
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("handler executed %d times, want 1", got)
	}
}

// TestSlowHandlerRetransmitDropped: a retransmission arriving while the
// original is still executing must not run the handler twice.
func TestSlowHandlerRetransmitDropped(t *testing.T) {
	var executions atomic.Uint64
	release := make(chan struct{})
	h := HandlerFunc(func(call Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
		executions.Add(1)
		<-release
		return func(e *xdr.Encoder) {}, AcceptSuccess
	})
	n := netsim.New(netsim.Config{})
	sp, _ := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	srv := NewServer(sp, h)
	defer srv.Close()
	cp, _ := n.Bind(netsim.Addr{Host: 1, Port: 100})
	defer cp.Close()

	payload := EncodeCall(77, 7, 1, 1, nil)
	_ = cp.SendTo(srv.Addr(), payload)
	time.Sleep(10 * time.Millisecond)
	_ = cp.SendTo(srv.Addr(), payload) // retransmit while in flight
	time.Sleep(10 * time.Millisecond)
	close(release)
	if _, err := cp.Recv(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("handler executed %d times, want 1", got)
	}
}

func TestConcurrentCalls(t *testing.T) {
	cli, _ := newPair(t, netsim.Config{}, echoHandler, ClientConfig{})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i uint32) {
			defer wg.Done()
			body, err := cli.Call(7, 1, 2, func(e *xdr.Encoder) { e.PutUint32(i) })
			if err != nil {
				errs <- err
				return
			}
			v, _ := xdr.NewDecoder(body).Uint32()
			if v != i {
				errs <- errors.New("reply/call mismatch across concurrent xids")
			}
		}(uint32(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientCloseFailsCalls(t *testing.T) {
	cli, _ := newPair(t, netsim.Config{}, echoHandler, ClientConfig{})
	cli.Close()
	if _, err := cli.Call(1, 1, 1, nil); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

// countingHandler replies with the number of times it has executed.
func countingHandler(executions *atomic.Uint64) Handler {
	return HandlerFunc(func(call Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
		n := executions.Add(1)
		return func(e *xdr.Encoder) { e.PutUint64(n) }, AcceptSuccess
	})
}

// TestClientRestartNoStaleDRCReplay is the regression test for xid
// seeding: a client restarted on the same host/port must not match its
// previous incarnation's duplicate-request-cache entries and receive a
// stale reply. With the old fixed nextXid=1 seed, the second client's
// first call collided with the first client's and the server replayed the
// dead incarnation's reply instead of executing.
func TestClientRestartNoStaleDRCReplay(t *testing.T) {
	var executions atomic.Uint64
	n := netsim.New(netsim.Config{})
	sp, err := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sp, countingHandler(&executions))
	defer srv.Close()

	clientAddr := netsim.Addr{Host: 1, Port: 100}
	callOnce := func() uint64 {
		t.Helper()
		cp, err := n.Bind(clientAddr)
		if err != nil {
			t.Fatal(err)
		}
		cli := NewClient(cp, srv.Addr(), ClientConfig{})
		defer cli.Close()
		body, err := cli.Call(7, 1, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := xdr.NewDecoder(body).Uint64()
		return v
	}

	if got := callOnce(); got != 1 {
		t.Fatalf("first incarnation saw execution %d, want 1", got)
	}
	// "Restart" the client: same host, same port, fresh incarnation.
	if got := callOnce(); got != 2 {
		t.Fatalf("restarted client saw execution %d, want 2 (stale DRC replay)", got)
	}
	if got := executions.Load(); got != 2 {
		t.Fatalf("handler executed %d times, want 2", got)
	}
}

// TestXidSeedsPerClient: distinct clients draw distinct random xid seeds,
// and an explicit XidSeed is honoured.
func TestXidSeedsPerClient(t *testing.T) {
	var mu sync.Mutex
	var xids []uint32
	h := HandlerFunc(func(call Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
		mu.Lock()
		xids = append(xids, call.Xid)
		mu.Unlock()
		return func(e *xdr.Encoder) {}, AcceptSuccess
	})
	n := netsim.New(netsim.Config{})
	sp, _ := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	srv := NewServer(sp, h)
	defer srv.Close()

	for i := 0; i < 4; i++ {
		cp, err := n.BindAny(1)
		if err != nil {
			t.Fatal(err)
		}
		cli := NewClient(cp, srv.Addr(), ClientConfig{})
		if _, err := cli.Call(7, 1, 1, nil); err != nil {
			t.Fatal(err)
		}
		cli.Close()
	}
	mu.Lock()
	firstXids := append([]uint32(nil), xids...)
	mu.Unlock()
	seen := make(map[uint32]bool)
	for _, x := range firstXids {
		if x == 1 {
			t.Fatal("client still seeds xid from the fixed value 1")
		}
		if seen[x] {
			t.Fatalf("two clients drew the same first xid %d", x)
		}
		seen[x] = true
	}

	cp, _ := n.BindAny(1)
	cli := NewClient(cp, srv.Addr(), ClientConfig{XidSeed: 0xDEAD0001})
	defer cli.Close()
	if _, err := cli.Call(7, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := xids[len(xids)-1]
	mu.Unlock()
	if got != 0xDEAD0001 {
		t.Fatalf("explicit XidSeed ignored: first xid %#x", got)
	}
}

// TestResolverRetargetsRestartedServer: a client whose config carries a
// Resolver follows the service to a replacement address — including via
// retransmission within a single in-flight Call, the failover path a
// restarted manager depends on.
func TestResolverRetargetsRestartedServer(t *testing.T) {
	var executions atomic.Uint64
	n := netsim.New(netsim.Config{})
	sp, _ := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	srvA := NewServer(sp, countingHandler(&executions))

	var target atomic.Value // netsim.Addr
	target.Store(srvA.Addr())
	cp, _ := n.Bind(netsim.Addr{Host: 1, Port: 100})
	cli := NewClient(cp, srvA.Addr(), ClientConfig{
		Timeout: 20 * time.Millisecond,
		Retries: 8,
		Resolve: func() netsim.Addr { return target.Load().(netsim.Addr) },
	})
	defer cli.Close()

	if _, err := cli.Call(7, 1, 1, nil); err != nil {
		t.Fatalf("call to original server: %v", err)
	}

	// Kill the server. Mid-call, flip the resolver to a replacement on a
	// different host after the first transmission has already timed out.
	srvA.Close()
	done := make(chan error, 1)
	go func() {
		_, err := cli.Call(7, 1, 2, nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	sp2, _ := n.Bind(netsim.Addr{Host: 3, Port: 2049})
	srvB := NewServer(sp2, countingHandler(&executions))
	defer srvB.Close()
	target.Store(srvB.Addr())

	if err := <-done; err != nil {
		t.Fatalf("call did not fail over to restarted server: %v", err)
	}
	if cli.Retransmissions() == 0 {
		t.Fatal("expected the failover to happen via retransmission")
	}
}

// TestKeyResolverRoutesByFlow: keyed calls route through ResolveKey per
// flow key, fall back to the static server for unknown keys, and
// re-resolve per retransmission — so when a flow's owner dies mid-call
// and the key remaps, the retry lands on the sibling.
func TestKeyResolverRoutesByFlow(t *testing.T) {
	var execA, execB atomic.Uint64
	n := netsim.New(netsim.Config{})
	pa, _ := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	srvA := NewServer(pa, countingHandler(&execA))
	defer srvA.Close()
	pb, _ := n.Bind(netsim.Addr{Host: 3, Port: 2049})
	srvB := NewServer(pb, countingHandler(&execB))
	defer srvB.Close()

	// Flow 1 -> A, flow 2 -> B, behind an atomic table so the test can
	// remap mid-call.
	var owners [3]atomic.Value // netsim.Addr per flow key
	owners[1].Store(srvA.Addr())
	owners[2].Store(srvB.Addr())
	cp, _ := n.Bind(netsim.Addr{Host: 1, Port: 100})
	cli := NewClient(cp, srvA.Addr(), ClientConfig{
		Timeout: 20 * time.Millisecond,
		Retries: 8,
		ResolveKey: func(key uint64) netsim.Addr {
			if key < uint64(len(owners)) {
				if a, ok := owners[key].Load().(netsim.Addr); ok {
					return a
				}
			}
			return netsim.Addr{} // fall back to the static server
		},
	})
	defer cli.Close()

	if _, err := cli.CallKeyed(2, 7, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if execB.Load() != 1 || execA.Load() != 0 {
		t.Fatalf("keyed call misrouted: A=%d B=%d", execA.Load(), execB.Load())
	}
	// An unmapped key falls back to the static server (A).
	if _, err := cli.CallKeyed(0, 7, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if execA.Load() != 1 {
		t.Fatalf("fallback call misrouted: A=%d B=%d", execA.Load(), execB.Load())
	}

	// Kill flow 1's owner, then remap the flow to B mid-call: the
	// retransmission must follow the key to the sibling.
	srvA.Close()
	done := make(chan error, 1)
	go func() {
		_, err := cli.CallKeyed(1, 7, 1, 2, nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	owners[1].Store(srvB.Addr())
	if err := <-done; err != nil {
		t.Fatalf("keyed call did not fail over: %v", err)
	}
	if cli.Retransmissions() == 0 {
		t.Fatal("expected the keyed failover to happen via retransmission")
	}
	if execB.Load() != 2 {
		t.Fatalf("sibling did not absorb the failed-over call: B=%d", execB.Load())
	}
}

// FuzzParse ensures the RPC header parsers never panic on hostile bytes —
// they run on every datagram a server or µproxy receives.
func FuzzParse(f *testing.F) {
	f.Add(EncodeCall(1, 100003, 3, 6, func(e *xdr.Encoder) { e.PutUint32(9) }))
	f.Add(EncodeReply(1, AcceptSuccess, func(e *xdr.Encoder) { e.PutUint32(9) }))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, payload []byte) {
		_, _ = ParseCall(payload)
		_, _ = ParseReply(payload)
		_, _ = IsCall(payload)
	})
}

// TestStrayReplyRejected pins the peer-address check: a reply carrying
// the right xid but sourced from an address the call was never sent to
// must be ignored, leaving the call registered for the real peer's
// answer. This is what stops one replica of an interposed fan-out from
// acknowledging a write directly to the client after the router lost
// its soft state.
func TestStrayReplyRejected(t *testing.T) {
	n := netsim.New(netsim.Config{})
	sp, err := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	imposter, err := n.Bind(netsim.Addr{Host: 9, Port: 9})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := n.Bind(netsim.Addr{Host: 1, Port: 100})
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cp, sp.Addr(), ClientConfig{Timeout: time.Second, Retries: 2})
	defer cli.Close()

	clientAddr := cp.Addr()
	go func() {
		d, err := sp.Recv(0)
		if err != nil {
			return
		}
		call, err := ParseCall(netsim.Payload(d))
		netsim.FreeBuf(d)
		if err != nil {
			return
		}
		// The imposter answers first, from the wrong address…
		stray := EncodeReply(call.Xid, AcceptSuccess, func(e *xdr.Encoder) { e.PutUint32(0xBAD) })
		_ = imposter.SendTo(clientAddr, stray)
		// …and only after the client has provably seen and rejected it
		// does the real server reply.
		for i := 0; i < 200 && cli.StrayReplies() == 0; i++ {
			time.Sleep(time.Millisecond)
		}
		real := EncodeReply(call.Xid, AcceptSuccess, func(e *xdr.Encoder) { e.PutUint32(0x600D) })
		_ = sp.SendTo(clientAddr, real)
	}()

	body, err := cli.Call(7, 1, 3, nil)
	if err != nil {
		t.Fatalf("call failed: %v", err)
	}
	v, err := xdr.NewDecoder(body).Uint32()
	if err != nil || v != 0x600D {
		t.Fatalf("got body %x, %v; want the real server's reply", v, err)
	}
	if got := cli.StrayReplies(); got != 1 {
		t.Fatalf("StrayReplies = %d, want 1", got)
	}
}

// TestDRCVerifiesCallIdentity is the regression test for cross-client
// reply replay: the DRC used to key replays on {src, xid} alone, so when
// a fabric source address was recycled (gateway synthetic-host reuse plus
// netsim ephemeral-port recycling) a new client whose xid collided with a
// dead client's cached entry was handed the dead client's reply — for a
// different procedure. A same-{src, xid} call that differs in program,
// version, procedure, or body length must execute fresh.
func TestDRCVerifiesCallIdentity(t *testing.T) {
	var executions atomic.Uint64
	n := netsim.New(netsim.Config{})
	sp, _ := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	srv := NewServer(sp, countingHandler(&executions))
	defer srv.Close()
	cp, _ := n.Bind(netsim.Addr{Host: 1, Port: 100})
	defer cp.Close()

	call := func(payload []byte) uint64 {
		t.Helper()
		if err := cp.SendTo(srv.Addr(), payload); err != nil {
			t.Fatal(err)
		}
		d, err := cp.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ParseReply(netsim.Payload(d))
		netsim.FreeBuf(d)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := xdr.NewDecoder(rep.Body).Uint64()
		return v
	}

	const xid = 4242
	if got := call(EncodeCall(xid, 7, 1, 1, nil)); got != 1 {
		t.Fatalf("first call saw execution %d, want 1", got)
	}
	// Identical call, same {src, xid}: a true retransmission — replayed.
	if got := call(EncodeCall(xid, 7, 1, 1, nil)); got != 1 {
		t.Fatalf("retransmission saw execution %d, want replay of 1", got)
	}
	// Same {src, xid}, different procedure: an address-reuse collision,
	// not a retransmission — must execute fresh.
	if got := call(EncodeCall(xid, 7, 1, 2, nil)); got != 2 {
		t.Fatalf("colliding different-proc call saw %d, want fresh execution 2", got)
	}
	// The collision evicted the stale entry; retransmitting the *new*
	// call now replays the new call's reply.
	if got := call(EncodeCall(xid, 7, 1, 2, nil)); got != 2 {
		t.Fatalf("retransmit after collision saw %d, want replay of 2", got)
	}
	// A different body length under the same {src, xid, proc} also misses.
	if got := call(EncodeCall(xid, 7, 1, 2, func(e *xdr.Encoder) { e.PutUint32(1) })); got != 3 {
		t.Fatalf("different-body call saw %d, want fresh execution 3", got)
	}
	if got := executions.Load(); got != 3 {
		t.Fatalf("handler executed %d times, want 3", got)
	}
}
