// Bulk-I/O engine: a bounded sliding window of chunk RPCs with
// sequential readahead and write-behind.
//
// The serial loops in client.go issue one chunk round trip at a time, so
// aggregate bandwidth is latency-bound and flat no matter how wide the
// storage array is. The windowed engine keeps up to Config.Window chunk
// RPCs in flight at once; because the µproxy stripes consecutive stripe
// units across storage nodes, a full window spreads load over the whole
// array and bandwidth scales with its width (PAPER.md Figures 4–5).
//
// Ordering rules that keep the pipelined path byte-exact with the serial
// one:
//
//   - Unstable writes are write-behind: strictly sequential bytes
//     accumulate in a per-client tail buffer, full stripe-unit chunks are
//     carved off and dispatched asynchronously, and the partial tail is
//     flushed when the stream breaks or a barrier arrives. A write that
//     would overlap a chunk already in flight drains the file first, so
//     two writes to the same range can never race.
//   - Reads, GetAttr, SetAttr, Commit, and stable writes drain the
//     target file's write-behind traffic before issuing; Remove and
//     Rename (which identify files by name, not handle) drain everything.
//   - A failed asynchronous chunk is reported at the next Write, Commit,
//     or drain on the same file (the NFSv3 deferred-error model); the
//     error is sticky until surfaced exactly once.
//   - Readahead caches whole prefetched chunks keyed by offset for a
//     single sequential stream; any write, SetAttr, Remove, or Rename
//     invalidates it, and a read that breaks the sequential pattern
//     resets it.
//
// Buffer ownership across the async boundary: a write-behind chunk
// carved from the tail copies its bytes into a pooled buffer; the
// dispatched worker owns that buffer exclusively until its WRITE —
// including any retry, which re-encodes the payload — completes, and only
// then returns it to the pool. Callers may therefore reuse their own
// buffers the moment Write returns. Flushed tail buffers transfer
// ownership to the dispatched chunks outright and are left to the GC.
package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"slice/internal/fhandle"
	"slice/internal/nfsproto"
	"slice/internal/oncrpc"
)

// windowed reports whether the pipelined bulk path is enabled.
func (c *Client) windowed() bool { return c.win != nil }

// acquire takes a window slot, blocking until one is free, and samples
// occupancy.
func (c *Client) acquire() {
	c.win <- struct{}{}
	n := c.occ.Add(1)
	if c.winHist != nil {
		c.winHist.Record(uint64(n))
	}
}

// tryAcquire takes a window slot only if one is free right now. Used by
// readahead so prefetch never delays demand traffic.
func (c *Client) tryAcquire() bool {
	select {
	case c.win <- struct{}{}:
		n := c.occ.Add(1)
		if c.winHist != nil {
			c.winHist.Record(uint64(n))
		}
		return true
	default:
		return false
	}
}

func (c *Client) release() {
	c.occ.Add(-1)
	<-c.win
}

// chunkSpan is one serial-equivalent I/O chunk: [off, end) never crosses
// a stripe-unit or threshold boundary (chunkEnd).
type chunkSpan struct{ off, end uint64 }

// chunkSpans splits [off, off+n) exactly as the serial loops would.
func (c *Client) chunkSpans(off uint64, n int) []chunkSpan {
	end := off + uint64(n)
	var out []chunkSpan
	for cur := off; cur < end; {
		ce := c.chunkEnd(cur)
		if ce > end {
			ce = end
		}
		out = append(out, chunkSpan{cur, ce})
		cur = ce
	}
	return out
}

// chunkRead reads one chunk, continuing on short replies and re-issuing
// once (fresh xid) on timeout — reads are idempotent, so the re-issue
// preserves at-most-once effects while riding out a node restart
// mid-transfer. Returns bytes read and whether the server reported EOF.
func (c *Client) chunkRead(fh fhandle.Handle, off uint64, p []byte) (int, bool, error) {
	got := 0
	for got < len(p) {
		cur := off + uint64(got)
		args := nfsproto.ReadArgs{FH: fh, Offset: cur, Count: uint32(len(p) - got)}
		var res nfsproto.ReadRes
		err := c.call(fh, nfsproto.ProcRead, &args, &res)
		if errors.Is(err, oncrpc.ErrTimedOut) {
			res = nfsproto.ReadRes{}
			err = c.call(fh, nfsproto.ProcRead, &args, &res)
		}
		if err != nil {
			return got, false, err
		}
		if res.Status != nfsproto.OK {
			return got, false, res.Status.Error()
		}
		n := copy(p[got:], res.Data)
		got += n
		if res.EOF || n == 0 {
			return got, true, nil
		}
	}
	return got, false, nil
}

// chunkWrite writes one chunk, continuing on short writes and re-issuing
// once on timeout (WRITE of fixed bytes at a fixed offset is idempotent;
// the servers' duplicate-request caches absorb retransmits of the same
// xid).
func (c *Client) chunkWrite(fh fhandle.Handle, off uint64, data []byte, stability uint32) error {
	written := 0
	for written < len(data) {
		cur := off + uint64(written)
		args := nfsproto.WriteArgs{
			FH: fh, Offset: cur, Count: uint32(len(data) - written),
			Stable: stability, Data: data[written:],
		}
		var res nfsproto.WriteRes
		err := c.call(fh, nfsproto.ProcWrite, &args, &res)
		if errors.Is(err, oncrpc.ErrTimedOut) {
			res = nfsproto.WriteRes{}
			err = c.call(fh, nfsproto.ProcWrite, &args, &res)
		}
		if err != nil {
			return err
		}
		if res.Status != nfsproto.OK {
			return res.Status.Error()
		}
		if res.Count == 0 {
			return fmt.Errorf("client: zero-length write progress at offset %d", cur)
		}
		written += int(res.Count)
	}
	return nil
}

// ---------------------------------------------------------------------
// Windowed read path
// ---------------------------------------------------------------------

// windowedRead serves a read from the readahead cache where possible and
// fans the remainder out across the window, folding chunk results in
// offset order so EOF and short-read handling stay byte-exact with
// serialRead — including the server-reported EOF on a full-buffer read
// that ends exactly at end of file.
func (c *Client) windowedRead(fh fhandle.Handle, off uint64, p []byte) (int, bool, error) {
	id := fh.Ident()
	if c.fileDirty(id) {
		// Reads must observe every write already accepted by Write.
		if err := c.drainFile(fh); err != nil {
			return 0, false, err
		}
	}
	if len(p) == 0 {
		return 0, false, nil
	}
	seq := c.raAdvance(id, off)
	read := 0
	eof := false
	for read < len(p) {
		e := c.raTake(id, off+uint64(read), len(p)-read)
		if e == nil {
			break
		}
		<-e.ready
		if e.err != nil || (len(e.data) < e.want && !e.eof) {
			// Unusable entry (failed, or short without EOF): drop it and
			// fetch those bytes on the demand path below.
			break
		}
		n := copy(p[read:], e.data)
		read += n
		if e.eof || n == 0 {
			eof = true
			break
		}
	}
	if !eof && read < len(p) {
		n, e2, err := c.fanoutRead(fh, off+uint64(read), p[read:])
		read += n
		if err != nil {
			c.raFinish(fh, id, off+uint64(read), false, false)
			return read, false, err
		}
		eof = e2
	}
	c.raFinish(fh, id, off+uint64(read), eof, seq && !eof)
	return read, eof, nil
}

// fanoutRead issues the chunks of [off, off+len(p)) concurrently under
// the window and folds results in chunk order. A chunk that comes back
// short without EOF (or whose later siblings would otherwise be folded in
// misaligned) retreats to the serial loop from the first gap.
func (c *Client) fanoutRead(fh fhandle.Handle, off uint64, p []byte) (int, bool, error) {
	spans := c.chunkSpans(off, len(p))
	if len(spans) == 1 {
		c.acquire()
		t0 := time.Now()
		n, eof, err := c.chunkRead(fh, off, p)
		if c.readNS != nil {
			c.readNS.RecordSince(t0)
		}
		c.release()
		return n, eof, err
	}
	type rres struct {
		n   int
		eof bool
		err error
	}
	results := make([]rres, len(spans))
	var wg sync.WaitGroup
	for i, s := range spans {
		c.acquire()
		wg.Add(1)
		go func(i int, s chunkSpan) {
			defer wg.Done()
			defer c.release()
			t0 := time.Now()
			n, eof, err := c.chunkRead(fh, s.off, p[s.off-off:s.end-off])
			if c.readNS != nil {
				c.readNS.RecordSince(t0)
			}
			results[i] = rres{n, eof, err}
		}(i, s)
	}
	wg.Wait()
	read := 0
	for i, s := range spans {
		r := results[i]
		if r.err != nil {
			return read, false, r.err
		}
		read += r.n
		if r.eof {
			return read, true, nil
		}
		if r.n < int(s.end-s.off) {
			n2, eof2, err2 := c.serialRead(fh, off+uint64(read), p[read:])
			return read + n2, eof2, err2
		}
	}
	return read, false, nil
}

// ---------------------------------------------------------------------
// Windowed write path
// ---------------------------------------------------------------------

// windowedWrite routes stable writes through the window synchronously
// and unstable writes into write-behind. Either way the readahead cache
// for the file is stale the moment bytes change.
func (c *Client) windowedWrite(fh fhandle.Handle, off uint64, p []byte, stable bool) (int, error) {
	id := fh.Ident()
	c.invalidateRA(id)
	if err := c.takeErr(id); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	if stable {
		// FILE_SYNC data must not be reordered against buffered or
		// in-flight unstable bytes for the same file.
		if err := c.drainFile(fh); err != nil {
			return 0, err
		}
		return c.fanoutWrite(fh, off, p, nfsproto.FileSync)
	}
	return c.writeBehind(fh, id, off, p)
}

// fanoutWrite writes [off, off+len(p)) through the window and waits for
// every chunk. On error it reports the byte count of the error-free
// prefix, like the serial loop.
func (c *Client) fanoutWrite(fh fhandle.Handle, off uint64, p []byte, stability uint32) (int, error) {
	spans := c.chunkSpans(off, len(p))
	if len(spans) == 1 {
		c.acquire()
		t0 := time.Now()
		err := c.chunkWrite(fh, off, p, stability)
		if c.writeNS != nil {
			c.writeNS.RecordSince(t0)
		}
		c.release()
		if err != nil {
			return 0, err
		}
		return len(p), nil
	}
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, s := range spans {
		c.acquire()
		wg.Add(1)
		go func(i int, s chunkSpan) {
			defer wg.Done()
			defer c.release()
			t0 := time.Now()
			errs[i] = c.chunkWrite(fh, s.off, p[s.off-off:s.end-off], stability)
			if c.writeNS != nil {
				c.writeNS.RecordSince(t0)
			}
		}(i, s)
	}
	wg.Wait()
	written := 0
	for i, s := range spans {
		if errs[i] != nil {
			return written, errs[i]
		}
		written += int(s.end - s.off)
	}
	return written, nil
}

// writeTail is the buffered sequential write stream: bytes accepted by
// Write but not yet dispatched. buf[0] is at file offset off.
type writeTail struct {
	id  fhandle.Key
	fh  fhandle.Handle
	off uint64
	buf []byte
}

func (t *writeTail) end() uint64 { return t.off + uint64(len(t.buf)) }

// fileIO tracks a file's in-flight write-behind chunks and its deferred
// error.
type fileIO struct {
	inflight int
	spans    []span
	err      error
}

type span struct{ off, end uint64 }

func (f *fileIO) dropSpan(off uint64) {
	for i := range f.spans {
		if f.spans[i].off == off {
			f.spans[i] = f.spans[len(f.spans)-1]
			f.spans = f.spans[:len(f.spans)-1]
			return
		}
	}
}

// wchunk is one dispatched write-behind chunk. pooled marks data as a
// chunkPool buffer the worker must return after its WRITE completes.
type wchunk struct {
	fh     fhandle.Handle
	id     fhandle.Key
	off    uint64
	data   []byte
	pooled bool
}

// chunkPool recycles write-behind chunk buffers (≤ one stripe unit).
var chunkPool sync.Pool

func chunkBuf(n int) []byte {
	if v := chunkPool.Get(); v != nil {
		if b := *v.(*[]byte); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putChunkBuf(b []byte) {
	b = b[:0]
	chunkPool.Put(&b)
}

// writeBehind appends p to the sequential tail, carves off and
// dispatches any full chunks, and returns immediately. Non-sequential
// bytes flush the old tail first; bytes overlapping an in-flight chunk
// drain the file so conflicting writes are never concurrently in flight.
func (c *Client) writeBehind(fh fhandle.Handle, id fhandle.Key, off uint64, p []byte) (int, error) {
	c.bulkMu.Lock()
	var flush *writeTail
	if c.tail != nil && (c.tail.id != id || c.tail.end() != off) {
		flush = c.tail
		c.tail = nil
	}
	c.bulkMu.Unlock()
	if flush != nil {
		c.dispatchTail(flush)
	}
	if c.overlapsInflight(id, off, off+uint64(len(p))) {
		if err := c.drainFile(fh); err != nil {
			return 0, err
		}
	}
	c.bulkMu.Lock()
	if c.tail == nil {
		c.tail = &writeTail{id: id, fh: fh, off: off}
	}
	c.tail.buf = append(c.tail.buf, p...)
	ready := c.carveLocked()
	c.bulkMu.Unlock()
	for _, ch := range ready {
		c.dispatchChunk(ch)
	}
	return len(p), nil
}

// carveLocked removes full chunks from the head of the tail, copying
// each into a pooled buffer for its worker. The sub-chunk remainder
// stays buffered, coalescing with the next sequential write. Caller
// holds bulkMu.
func (c *Client) carveLocked() []wchunk {
	t := c.tail
	if t == nil {
		return nil
	}
	var out []wchunk
	for {
		end := c.chunkEnd(t.off)
		n := int(end - t.off)
		if len(t.buf) < n {
			break
		}
		buf := chunkBuf(n)
		copy(buf, t.buf[:n])
		out = append(out, wchunk{fh: t.fh, id: t.id, off: t.off, data: buf, pooled: true})
		t.buf = t.buf[:copy(t.buf, t.buf[n:])]
		t.off = end
	}
	return out
}

// dispatchTail dispatches a detached tail, including its partial final
// chunk. Ownership of t.buf passes to the dispatched chunks, which alias
// it; it must not be appended to again.
func (c *Client) dispatchTail(t *writeTail) {
	off, buf := t.off, t.buf
	for len(buf) > 0 {
		end := c.chunkEnd(off)
		n := int(end - off)
		if n > len(buf) {
			n = len(buf)
		}
		c.dispatchChunk(wchunk{fh: t.fh, id: t.id, off: off, data: buf[:n]})
		buf = buf[n:]
		off += uint64(n)
	}
}

// dispatchChunk registers ch as in flight and hands it to an async
// worker once a window slot frees up. Registration happens before the
// (possibly blocking) slot acquisition so a concurrent drain always sees
// the chunk.
func (c *Client) dispatchChunk(ch wchunk) {
	c.bulkMu.Lock()
	f := c.files[ch.id]
	if f == nil {
		f = &fileIO{}
		c.files[ch.id] = f
	}
	f.inflight++
	f.spans = append(f.spans, span{ch.off, ch.off + uint64(len(ch.data))})
	c.bulkMu.Unlock()
	c.acquire()
	go func() {
		t0 := time.Now()
		err := c.chunkWrite(ch.fh, ch.off, ch.data, nfsproto.Unstable)
		if c.writeNS != nil {
			c.writeNS.RecordSince(t0)
		}
		c.release()
		if ch.pooled {
			putChunkBuf(ch.data)
		}
		c.bulkMu.Lock()
		f.inflight--
		f.dropSpan(ch.off)
		if err != nil && f.err == nil {
			f.err = err
		}
		if f.inflight == 0 {
			if f.err == nil {
				delete(c.files, ch.id)
			}
			c.bulkCnd.Broadcast()
		}
		c.bulkMu.Unlock()
	}()
}

// overlapsInflight reports whether [lo, hi) intersects any chunk
// currently in flight for id.
func (c *Client) overlapsInflight(id fhandle.Key, lo, hi uint64) bool {
	c.bulkMu.Lock()
	defer c.bulkMu.Unlock()
	f := c.files[id]
	if f == nil {
		return false
	}
	for _, s := range f.spans {
		if s.off < hi && lo < s.end {
			return true
		}
	}
	return false
}

// fileDirty reports whether id has buffered or in-flight write-behind
// state (including an unsurfaced deferred error).
func (c *Client) fileDirty(id fhandle.Key) bool {
	c.bulkMu.Lock()
	defer c.bulkMu.Unlock()
	return (c.tail != nil && c.tail.id == id) || c.files[id] != nil
}

// takeErr surfaces (and clears) the file's deferred write error.
func (c *Client) takeErr(id fhandle.Key) error {
	c.bulkMu.Lock()
	defer c.bulkMu.Unlock()
	f := c.files[id]
	if f == nil || f.err == nil {
		return nil
	}
	err := f.err
	f.err = nil
	if f.inflight == 0 {
		delete(c.files, id)
	}
	return err
}

// drainFile flushes the tail (if it belongs to fh) and waits until the
// file has no chunk in flight, returning its deferred error, if any.
// This is the Commit barrier and the write-to-read ordering point.
func (c *Client) drainFile(fh fhandle.Handle) error {
	id := fh.Ident()
	c.bulkMu.Lock()
	var flush *writeTail
	if c.tail != nil && c.tail.id == id {
		flush = c.tail
		c.tail = nil
	}
	c.bulkMu.Unlock()
	if flush != nil {
		c.dispatchTail(flush)
	}
	c.bulkMu.Lock()
	defer c.bulkMu.Unlock()
	for {
		f := c.files[id]
		if f == nil {
			return nil
		}
		if f.inflight == 0 {
			err := f.err
			delete(c.files, id)
			return err
		}
		c.bulkCnd.Wait()
	}
}

// drainAll flushes and waits out every file's write-behind traffic,
// returning the first deferred error found. Used by Close and by
// namespace operations that cannot name their target handle.
func (c *Client) drainAll() error {
	c.bulkMu.Lock()
	flush := c.tail
	c.tail = nil
	c.bulkMu.Unlock()
	if flush != nil {
		c.dispatchTail(flush)
	}
	c.invalidateRAAll()
	c.bulkMu.Lock()
	defer c.bulkMu.Unlock()
	var first error
	for {
		busy := false
		for id, f := range c.files {
			if f.inflight > 0 {
				busy = true
				continue
			}
			if f.err != nil && first == nil {
				first = f.err
			}
			delete(c.files, id)
		}
		if !busy {
			return first
		}
		c.bulkCnd.Wait()
	}
}

// ---------------------------------------------------------------------
// Sequential readahead
// ---------------------------------------------------------------------

// raState caches prefetched chunks for one sequential read stream.
type raState struct {
	valid    bool
	id       fhandle.Key
	expected uint64 // offset that would continue the stream
	horizon  uint64 // lowest offset not yet prefetched
	eofAt    uint64 // lowest offset known to be at/past EOF
	entries  map[uint64]*raEntry
}

// raEntry is one prefetched chunk. data/eof/err are written by the
// worker before ready closes and read only after.
type raEntry struct {
	off   uint64
	want  int
	ready chan struct{}
	data  []byte
	eof   bool
	err   error
}

// raAdvance reports whether a read at off continues the cached stream;
// if not, the cache resets to start a new stream at off.
func (c *Client) raAdvance(id fhandle.Key, off uint64) bool {
	if c.cfg.Readahead <= 0 {
		return false
	}
	c.bulkMu.Lock()
	defer c.bulkMu.Unlock()
	if c.ra.valid && c.ra.id == id && c.ra.expected == off {
		return true
	}
	c.ra = raState{
		valid: true, id: id, expected: off, horizon: off,
		eofAt:   ^uint64(0),
		entries: make(map[uint64]*raEntry),
	}
	return false
}

// raTake removes and returns the entry at off if it exists and fits
// within max bytes (an entry larger than the caller's remaining buffer
// is left uncached and the bytes are read on the demand path instead).
func (c *Client) raTake(id fhandle.Key, off uint64, max int) *raEntry {
	c.bulkMu.Lock()
	defer c.bulkMu.Unlock()
	if !c.ra.valid || c.ra.id != id {
		return nil
	}
	e := c.ra.entries[off]
	if e == nil || e.want > max {
		return nil
	}
	delete(c.ra.entries, off)
	return e
}

// raFinish records where the stream now stands and, when the read was
// sequential and did not hit EOF, tops the prefetch horizon up to
// Readahead chunks ahead using only window slots that are free right now.
func (c *Client) raFinish(fh fhandle.Handle, id fhandle.Key, next uint64, eof, prefetch bool) {
	if c.cfg.Readahead <= 0 {
		return
	}
	c.bulkMu.Lock()
	if !c.ra.valid || c.ra.id != id {
		c.bulkMu.Unlock()
		return
	}
	c.ra.expected = next
	if eof && next < c.ra.eofAt {
		c.ra.eofAt = next
	}
	for o := range c.ra.entries {
		if o < next {
			delete(c.ra.entries, o)
		}
	}
	if c.ra.horizon < next {
		c.ra.horizon = next
	}
	if !prefetch {
		c.bulkMu.Unlock()
		return
	}
	budget := c.cfg.Readahead - len(c.ra.entries)
	var started []*raEntry
	for budget > 0 && c.ra.horizon < c.ra.eofAt {
		if !c.tryAcquire() {
			break
		}
		end := c.chunkEnd(c.ra.horizon)
		e := &raEntry{
			off: c.ra.horizon, want: int(end - c.ra.horizon),
			ready: make(chan struct{}),
		}
		c.ra.entries[e.off] = e
		c.ra.horizon = end
		started = append(started, e)
		budget--
	}
	c.bulkMu.Unlock()
	for _, e := range started {
		go c.prefetchWorker(fh, e)
	}
}

// prefetchWorker fills one readahead entry. It already holds a window
// slot (taken in raFinish) and releases it when done; the entry's buffer
// is freshly allocated and handed to the consumer, so no pooling.
func (c *Client) prefetchWorker(fh fhandle.Handle, e *raEntry) {
	t0 := time.Now()
	buf := make([]byte, e.want)
	n, eof, err := c.chunkRead(fh, e.off, buf)
	if c.readNS != nil {
		c.readNS.RecordSince(t0)
	}
	e.data, e.eof, e.err = buf[:n], eof, err
	close(e.ready)
	c.release()
}

// invalidateRA drops the readahead cache if it belongs to id.
func (c *Client) invalidateRA(id fhandle.Key) {
	c.bulkMu.Lock()
	if c.ra.valid && c.ra.id == id {
		c.ra = raState{}
	}
	c.bulkMu.Unlock()
}

// invalidateRAAll drops the readahead cache unconditionally.
func (c *Client) invalidateRAAll() {
	c.bulkMu.Lock()
	c.ra = raState{}
	c.bulkMu.Unlock()
}
