package nfsproto

import (
	"testing"

	"slice/internal/attr"
	"slice/internal/fhandle"
	"slice/internal/xdr"
)

func encodeMsg(m Msg) []byte {
	e := xdr.NewEncoder(256)
	m.Encode(e)
	return e.Bytes()
}

func TestParseCallIO(t *testing.T) {
	args := ReadArgs{FH: fh(5), Offset: 123456, Count: 32768}
	info, err := ParseCall(ProcRead, encodeMsg(&args))
	if err != nil {
		t.Fatal(err)
	}
	if info.FH != args.FH || info.Offset != 123456 || info.Count != 32768 || !info.IsIO {
		t.Fatalf("info %+v", info)
	}
	if info.FHOffset != 0 {
		t.Fatalf("FHOffset = %d", info.FHOffset)
	}

	w := WriteArgs{FH: fh(6), Offset: 7, Count: 3, Stable: FileSync, Data: []byte("abc")}
	info, err = ParseCall(ProcWrite, encodeMsg(&w))
	if err != nil {
		t.Fatal(err)
	}
	if info.FH != w.FH || info.Offset != 7 || info.Count != 3 {
		t.Fatalf("write info %+v", info)
	}
}

func TestParseCallNameOps(t *testing.T) {
	l := LookupArgs{Dir: fh(1), Name: "etc"}
	info, err := ParseCall(ProcLookup, encodeMsg(&l))
	if err != nil {
		t.Fatal(err)
	}
	if info.FH != l.Dir || info.Name != "etc" || !info.HasName {
		t.Fatalf("lookup info %+v", info)
	}

	c := CreateArgs{Dir: fh(2), Name: "newfile", Sattr: attr.SetAttr{SetMode: true, Mode: 0o644}}
	info, err = ParseCall(ProcCreate, encodeMsg(&c))
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "newfile" {
		t.Fatalf("create info %+v", info)
	}
}

func TestParseCallRename(t *testing.T) {
	r := RenameArgs{FromDir: fh(1), FromName: "a", ToDir: fh(2), ToName: "b"}
	body := encodeMsg(&r)
	info, err := ParseCall(ProcRename, body)
	if err != nil {
		t.Fatal(err)
	}
	if info.FH != r.FromDir || info.Name != "a" || info.FH2 != r.ToDir || info.Name2 != "b" {
		t.Fatalf("rename info %+v", info)
	}
	if !info.HasFH2 || !info.HasName2 {
		t.Fatal("second pair not flagged")
	}
	// The second handle's recorded offset must point at its bytes.
	d := xdr.NewDecoder(body)
	if err := d.Skip(info.FH2Offset); err != nil {
		t.Fatal(err)
	}
	got, err := fhandle.Decode(d)
	if err != nil || got != r.ToDir {
		t.Fatalf("FH2Offset does not locate the handle: %+v, %v", got, err)
	}
}

func TestParseCallLink(t *testing.T) {
	l := LinkArgs{FH: fh(9), Dir: fh(10), Name: "alias"}
	info, err := ParseCall(ProcLink, encodeMsg(&l))
	if err != nil {
		t.Fatal(err)
	}
	if info.FH != l.FH || info.FH2 != l.Dir || info.Name2 != "alias" {
		t.Fatalf("link info %+v", info)
	}
}

func TestParseCallReadDirCookie(t *testing.T) {
	r := ReadDirArgs{Dir: fh(3), Cookie: 42, Count: 8192}
	info, err := ParseCall(ProcReadDir, encodeMsg(&r))
	if err != nil {
		t.Fatal(err)
	}
	if info.Offset != 42 {
		t.Fatalf("cookie not captured: %+v", info)
	}
}

func TestParseCallNull(t *testing.T) {
	info, err := ParseCall(ProcNull, nil)
	if err != nil || info.Proc != ProcNull {
		t.Fatalf("null parse: %+v, %v", info, err)
	}
}

func TestParseCallUnknownProc(t *testing.T) {
	if _, err := ParseCall(Proc(17), nil); err == nil {
		t.Fatal("READDIRPLUS (unimplemented) parsed")
	}
}

func TestParseCallTruncated(t *testing.T) {
	for _, proc := range []Proc{ProcGetAttr, ProcLookup, ProcRead, ProcWrite, ProcRename, ProcLink} {
		if _, err := ParseCall(proc, []byte{1, 2, 3}); err == nil {
			t.Errorf("%v: truncated body parsed", proc)
		}
	}
}

// FuzzParseCall ensures the decode path the µproxy runs on every packet
// never panics on arbitrary bytes.
func FuzzParseCall(f *testing.F) {
	f.Add(uint32(ProcLookup), encodeMsg(&LookupArgs{Dir: fh(1), Name: "x"}))
	f.Add(uint32(ProcWrite), encodeMsg(&WriteArgs{FH: fh(2), Data: []byte("d"), Count: 1}))
	f.Add(uint32(ProcRename), []byte{})
	f.Fuzz(func(t *testing.T, proc uint32, body []byte) {
		_, _ = ParseCall(Proc(proc%22), body)
	})
}
