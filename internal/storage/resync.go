package storage

import (
	"slice/internal/oncrpc"
	"slice/internal/replica"
)

// resyncTarget adapts an ObjectStore to replica.ResyncTarget. Resync
// writes are stable: the transferred bytes were acknowledged (or
// committed) on the surviving peer, so the reborn replica must not lose
// them to a later Crash of volatile state.
type resyncTarget struct{ s *ObjectStore }

func (t resyncTarget) Truncate(id, size uint64) error {
	return t.s.Truncate(ObjectID(id), int64(size))
}

func (t resyncTarget) WriteAt(id, off uint64, p []byte) error {
	return t.s.WriteAt(ObjectID(id), int64(off), p, true)
}

// ResyncFrom rebuilds dst from the peer node served behind c (a client
// bound to a group sibling), using the windowed replica resync
// protocol. token is replica.PeerToken of the array's capability key.
func ResyncFrom(c *oncrpc.Client, token uint64, window int, dst *ObjectStore) (replica.ResyncStats, error) {
	return replica.Resync(c, token, window, resyncTarget{dst})
}
