package chaos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"slice/internal/ensemble"
	"slice/internal/netsim"
	"slice/internal/workload"
)

// movedFraction compares two logical-site bindings and returns the
// fraction of sites whose owner changed.
func movedFraction(before, after []netsim.Addr) float64 {
	moved := 0
	for i := range before {
		if i >= len(after) || before[i] != after[i] {
			moved++
		}
	}
	return float64(moved) / float64(len(before))
}

// assertWidenedStripe writes a fresh multi-stripe file AFTER the swap
// and asserts its bulk stripes route onto the added nodes — new writes
// use the wider stripe class.
func assertWidenedStripe(t *testing.T, e *ensemble.Ensemble, added []netsim.Addr) {
	t.Helper()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, _, err := c.Create(c.Root(), "post-swap-wide", 0o644, true)
	if err != nil {
		t.Fatalf("post-swap create: %v", err)
	}
	data := make([]byte, 16*e.IOPolicy.StripeUnit)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := c.WriteFile(fh, data); err != nil {
		t.Fatalf("post-swap write: %v", err)
	}
	hit := make(map[netsim.Addr]bool)
	for stripe := uint64(0); stripe < 16; stripe++ {
		targets, err := e.IOPolicy.WriteTargets(fh, stripe)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range targets {
			hit[a] = true
		}
	}
	for _, a := range added {
		if !hit[a] {
			t.Fatalf("post-swap stripes never route to added node %v: class not widened", a)
		}
	}
	VerifyBytes(t, e, c, fh, data)
}

// TestGrowUnderLiveLoadZeroFailedOps grows the array 4 -> 6 while a
// SPECsfs-like mix runs against it. Every client operation must
// succeed (the transition is invisible to the workload), the moved
// logical-site fraction must stay within 1.2x the consistent-hashing
// minimum, and post-swap writes must stripe across the widened class.
func TestGrowUnderLiveLoadZeroFailedOps(t *testing.T) {
	e := newEnsemble(t, func(cfg *ensemble.Config) {
		cfg.StorageNodes = 4
		// Logical slack: 12 sites over 4 nodes, so growing to 6 can
		// move exactly the CH-minimum 1/3 of the space.
		cfg.LogicalSites = 12
	})
	before := e.StorageTable.Physical()

	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var (
		wg     sync.WaitGroup
		sfsErr error
		stats  workload.SfsStats
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, sfsErr = workload.Sfs(c, c.Root(), workload.SfsConfig{
			Files: 60, Ops: 800, Prefix: "grow-load", Seed: 7,
		})
	}()
	// Let the working set build before the topology moves under it.
	time.Sleep(20 * time.Millisecond)
	if err := e.Grow(2); err != nil {
		t.Fatalf("Grow under load: %v", err)
	}
	wg.Wait()
	if sfsErr != nil {
		t.Fatalf("foreground mix failed during grow: %v", sfsErr)
	}
	if stats.ReadErrs != 0 {
		t.Fatalf("%d foreground reads returned wrong bytes during grow", stats.ReadErrs)
	}

	after := e.StorageTable.Physical()
	if len(after) != len(before) {
		t.Fatalf("logical site count changed: %d -> %d", len(before), len(after))
	}
	frac := movedFraction(before, after)
	chMin := 2.0 / 6.0 // added/new share of the space
	if frac > 1.2*chMin {
		t.Fatalf("moved fraction %.3f exceeds 1.2x CH minimum %.3f", frac, chMin)
	}
	if frac == 0 {
		t.Fatal("no sites moved: the new nodes carry nothing")
	}
	if st := e.RebalanceStatus(); st.State != "done" {
		t.Fatalf("rebalance status %q after successful grow", st.State)
	}
	FsckClean(t, e)
	added := []netsim.Addr{
		{Host: ensemble.HostStorage0 + 4, Port: ensemble.ServicePort},
		{Host: ensemble.HostStorage0 + 5, Port: ensemble.ServicePort},
	}
	assertWidenedStripe(t, e, added)
}

// TestAddTwoKillOneMidRebalance is the ROADMAP scenario verbatim: add
// two storage nodes and kill one of them in the middle of the
// rebalance, under the SPECsfs mix. The migration must ride out the
// reboot (the node keeps its disk), no blocks may be lost, the
// namespace must be fsck-clean, and post-swap writes must stripe
// across the widened class.
func TestAddTwoKillOneMidRebalance(t *testing.T) {
	e := newEnsemble(t, func(cfg *ensemble.Config) {
		cfg.StorageNodes = 4
		cfg.LogicalSites = 12
	})
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch := e.Chaos()

	// Bulk ballast makes the copy phase long enough that the reboot
	// lands while the migration is demonstrably in flight.
	if _, err := workload.DD(c, c.Root(), workload.DDConfig{
		Name: "ballast", Bytes: 6 << 20, Write: true,
	}); err != nil {
		t.Fatalf("ballast: %v", err)
	}

	var (
		wg     sync.WaitGroup
		sfsErr error
		stats  workload.SfsStats
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, sfsErr = workload.Sfs(c, c.Root(), workload.SfsConfig{
			Files: 60, Ops: 800, Prefix: "kill-load", Seed: 11,
		})
	}()
	time.Sleep(20 * time.Millisecond)

	growErr := make(chan error, 1)
	go func() { growErr <- e.Grow(2) }()

	// Kill (reboot) incoming node 4 the moment the copy is live.
	if !WaitFor(5*time.Second, func() bool {
		return e.RebalanceStatus().State == "running" && len(e.Storage) >= 6
	}) {
		t.Fatal("rebalance never started")
	}
	if _, err := ch.RestartStorage(4); err != nil {
		t.Fatalf("restart incoming node: %v", err)
	}

	if err := <-growErr; err != nil {
		t.Fatalf("Grow with mid-rebalance kill: %v", err)
	}
	wg.Wait()
	if sfsErr != nil {
		t.Fatalf("foreground mix failed: %v", sfsErr)
	}
	if stats.ReadErrs != 0 {
		t.Fatalf("%d foreground reads returned wrong bytes", stats.ReadErrs)
	}
	FsckClean(t, e)
	added := []netsim.Addr{
		{Host: ensemble.HostStorage0 + 4, Port: ensemble.ServicePort},
		{Host: ensemble.HostStorage0 + 5, Port: ensemble.ServicePort},
	}
	assertWidenedStripe(t, e, added)
}

// TestShrinkUnderLoad drains the last two nodes of a six-node array
// under load and verifies the workload never notices.
func TestShrinkUnderLoad(t *testing.T) {
	e := newEnsemble(t, func(cfg *ensemble.Config) {
		cfg.StorageNodes = 6
		cfg.LogicalSites = 12
	})
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var (
		wg     sync.WaitGroup
		sfsErr error
		stats  workload.SfsStats
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, sfsErr = workload.Sfs(c, c.Root(), workload.SfsConfig{
			Files: 40, Ops: 500, Prefix: "shrink-load", Seed: 13,
		})
	}()
	time.Sleep(20 * time.Millisecond)
	if err := e.Shrink(2); err != nil {
		t.Fatalf("Shrink under load: %v", err)
	}
	wg.Wait()
	if sfsErr != nil {
		t.Fatalf("foreground mix failed during shrink: %v", sfsErr)
	}
	if stats.ReadErrs != 0 {
		t.Fatalf("%d foreground reads returned wrong bytes during shrink", stats.ReadErrs)
	}
	// Nothing routes to the drained nodes any more.
	for _, a := range e.StorageTable.Physical() {
		for i := 4; i < 6; i++ {
			if a == (netsim.Addr{Host: ensemble.HostStorage0 + uint32(i), Port: ensemble.ServicePort}) {
				t.Fatalf("drained node %v still bound", a)
			}
		}
	}
	FsckClean(t, e)
}

// TestGrowRefusedForMappedAndMirrored pins the documented scope-outs:
// elastic reconfiguration must refuse configurations whose placement
// the driver cannot recompute from storage listings (DESIGN.md §13).
func TestGrowRefusedForMappedAndMirrored(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*ensemble.Config)
	}{
		{"block-maps", func(cfg *ensemble.Config) { cfg.UseBlockMaps = true }},
		{"mirrored", func(cfg *ensemble.Config) { cfg.MirrorDegree = 2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnsemble(t, func(cfg *ensemble.Config) {
				cfg.StorageNodes = 4
				tc.mutate(cfg)
			})
			if err := e.Grow(2); err == nil {
				t.Fatal("Grow accepted a configuration the driver cannot migrate")
			} else if want := "DESIGN.md"; !contains(err.Error(), want) {
				t.Fatalf("refusal %q does not cite the design doc", err)
			}
			if err := e.Shrink(1); err == nil {
				t.Fatal("Shrink accepted a configuration the driver cannot migrate")
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

var _ = fmt.Sprintf // keep fmt for the long-build variant's shared helpers
