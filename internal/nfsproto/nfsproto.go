// Package nfsproto defines the Slice file access protocol: an NFS-V3-style
// message set with an XDR wire encoding.
//
// Procedure numbers, status codes, and message layouts follow RFC 1813
// closely enough that the µproxy's request classification (§3 of the paper)
// operates on the same fields a real NFS V3 interposer would see: the
// request type, the target file handle, the name argument and its parent
// directory handle, and the logical offset of I/O requests.
//
// Deviations from RFC 1813 are deliberate simplifications documented in
// DESIGN.md: handles are fixed 32-byte tokens rather than variable opaque,
// post-op attributes use a single optional fattr3 (no wcc_data), and the
// unused procedures (MKNOD, READDIRPLUS, FSINFO, PATHCONF) are not
// implemented.
package nfsproto

import (
	"errors"
	"fmt"

	"slice/internal/attr"
	"slice/internal/fhandle"
	"slice/internal/xdr"
)

// Program and version identify the file service in RPC call headers.
const (
	Program = 100003 // standard NFS program number
	Version = 3
)

// Proc enumerates protocol procedures. Values match RFC 1813.
type Proc uint32

// Procedures implemented by Slice.
const (
	ProcNull     Proc = 0
	ProcGetAttr  Proc = 1
	ProcSetAttr  Proc = 2
	ProcLookup   Proc = 3
	ProcAccess   Proc = 4
	ProcReadLink Proc = 5
	ProcRead     Proc = 6
	ProcWrite    Proc = 7
	ProcCreate   Proc = 8
	ProcMkdir    Proc = 9
	ProcSymlink  Proc = 10
	ProcRemove   Proc = 12
	ProcRmdir    Proc = 13
	ProcRename   Proc = 14
	ProcLink     Proc = 15
	ProcReadDir  Proc = 16
	ProcFsStat   Proc = 18
	ProcCommit   Proc = 21
)

// String returns the conventional procedure name.
func (p Proc) String() string {
	switch p {
	case ProcNull:
		return "NULL"
	case ProcGetAttr:
		return "GETATTR"
	case ProcSetAttr:
		return "SETATTR"
	case ProcLookup:
		return "LOOKUP"
	case ProcAccess:
		return "ACCESS"
	case ProcReadLink:
		return "READLINK"
	case ProcRead:
		return "READ"
	case ProcWrite:
		return "WRITE"
	case ProcCreate:
		return "CREATE"
	case ProcMkdir:
		return "MKDIR"
	case ProcSymlink:
		return "SYMLINK"
	case ProcRemove:
		return "REMOVE"
	case ProcRmdir:
		return "RMDIR"
	case ProcRename:
		return "RENAME"
	case ProcLink:
		return "LINK"
	case ProcReadDir:
		return "READDIR"
	case ProcFsStat:
		return "FSSTAT"
	case ProcCommit:
		return "COMMIT"
	default:
		return fmt.Sprintf("PROC(%d)", uint32(p))
	}
}

// Status is an NFS V3 status code (nfsstat3).
type Status uint32

// Status codes. Values match RFC 1813.
const (
	OK             Status = 0
	ErrPerm        Status = 1
	ErrNoEnt       Status = 2
	ErrIO          Status = 5
	ErrAccess      Status = 13
	ErrExist       Status = 17
	ErrXDev        Status = 18
	ErrNoDev       Status = 19
	ErrNotDir      Status = 20
	ErrIsDir       Status = 21
	ErrInval       Status = 22
	ErrFBig        Status = 27
	ErrNoSpc       Status = 28
	ErrROFS        Status = 30
	ErrNameTooLong Status = 63
	ErrNotEmpty    Status = 66
	ErrStale       Status = 70
	ErrBadHandle   Status = 10001
	ErrNotSync     Status = 10002
	ErrBadCookie   Status = 10003
	ErrNotSupp     Status = 10004
	ErrServerFault Status = 10006
	ErrJukebox     Status = 10008
	// ErrMisrouted is a Slice extension: a server received a request whose
	// routing key does not map to it, indicating the µproxy holds a stale
	// routing table (§3.3.1). The µproxy refreshes its table and retries.
	ErrMisrouted Status = 10100
)

// String returns the conventional status name.
func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case ErrPerm:
		return "EPERM"
	case ErrNoEnt:
		return "ENOENT"
	case ErrIO:
		return "EIO"
	case ErrAccess:
		return "EACCES"
	case ErrExist:
		return "EEXIST"
	case ErrXDev:
		return "EXDEV"
	case ErrNotDir:
		return "ENOTDIR"
	case ErrIsDir:
		return "EISDIR"
	case ErrInval:
		return "EINVAL"
	case ErrFBig:
		return "EFBIG"
	case ErrNoSpc:
		return "ENOSPC"
	case ErrROFS:
		return "EROFS"
	case ErrNameTooLong:
		return "ENAMETOOLONG"
	case ErrNotEmpty:
		return "ENOTEMPTY"
	case ErrStale:
		return "ESTALE"
	case ErrBadHandle:
		return "EBADHANDLE"
	case ErrNotSync:
		return "ENOTSYNC"
	case ErrBadCookie:
		return "EBADCOOKIE"
	case ErrNotSupp:
		return "ENOTSUPP"
	case ErrServerFault:
		return "ESERVERFAULT"
	case ErrJukebox:
		return "EJUKEBOX"
	case ErrMisrouted:
		return "EMISROUTED"
	default:
		return fmt.Sprintf("nfsstat(%d)", uint32(s))
	}
}

// Error converts a non-OK status into a Go error; OK yields nil.
func (s Status) Error() error {
	if s == OK {
		return nil
	}
	return &StatusError{Status: s}
}

// StatusError wraps a protocol status as a Go error.
type StatusError struct{ Status Status }

// Error implements the error interface.
func (e *StatusError) Error() string { return "nfs: " + e.Status.String() }

// StatusOf extracts the protocol status from err: nil maps to OK, a
// StatusError maps to its code, anything else to ErrServerFault.
func StatusOf(err error) Status {
	if err == nil {
		return OK
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status
	}
	return ErrServerFault
}

// Stability levels for WRITE (RFC 1813 stable_how).
const (
	Unstable = 0
	DataSync = 1
	FileSync = 2
)

// Access permission bits for ACCESS (RFC 1813).
const (
	AccessRead    = 0x01
	AccessLookup  = 0x02
	AccessModify  = 0x04
	AccessExtend  = 0x08
	AccessDelete  = 0x10
	AccessExecute = 0x20
)

// MaxName bounds the length of a single name component.
const MaxName = 255

// Msg is a protocol message body (arguments or results).
type Msg interface {
	Encode(e *xdr.Encoder)
	Decode(d *xdr.Decoder) error
}

// OptAttr is an optional post-op attribute block (post_op_attr).
type OptAttr struct {
	Present bool
	Attr    attr.Attr
}

// Some returns a present OptAttr holding a.
func Some(a attr.Attr) OptAttr { return OptAttr{Present: true, Attr: a} }

// Encode appends the optional attribute block to e.
func (o *OptAttr) Encode(e *xdr.Encoder) {
	e.PutBool(o.Present)
	if o.Present {
		o.Attr.Encode(e)
	}
}

// Decode reads the optional attribute block from d.
func (o *OptAttr) Decode(d *xdr.Decoder) error {
	p, err := d.Bool()
	if err != nil {
		return err
	}
	o.Present = p
	if p {
		return o.Attr.Decode(d)
	}
	o.Attr = attr.Attr{}
	return nil
}

// ---------------------------------------------------------------- GETATTR

// GetAttrArgs are the arguments of GETATTR.
type GetAttrArgs struct {
	FH fhandle.Handle
}

// Encode implements Msg.
func (m *GetAttrArgs) Encode(e *xdr.Encoder) { m.FH.Encode(e) }

// Decode implements Msg.
func (m *GetAttrArgs) Decode(d *xdr.Decoder) (err error) {
	m.FH, err = fhandle.Decode(d)
	return err
}

// GetAttrRes are the results of GETATTR.
type GetAttrRes struct {
	Status Status
	Attr   attr.Attr
}

// Encode implements Msg.
func (m *GetAttrRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	if m.Status == OK {
		m.Attr.Encode(e)
	}
}

// Decode implements Msg.
func (m *GetAttrRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if m.Status == OK {
		return m.Attr.Decode(d)
	}
	return nil
}

// ---------------------------------------------------------------- SETATTR

// SetAttrArgs are the arguments of SETATTR.
type SetAttrArgs struct {
	FH    fhandle.Handle
	Sattr attr.SetAttr
}

// Encode implements Msg.
func (m *SetAttrArgs) Encode(e *xdr.Encoder) {
	m.FH.Encode(e)
	m.Sattr.Encode(e)
}

// Decode implements Msg.
func (m *SetAttrArgs) Decode(d *xdr.Decoder) (err error) {
	if m.FH, err = fhandle.Decode(d); err != nil {
		return err
	}
	return m.Sattr.Decode(d)
}

// SetAttrRes are the results of SETATTR.
type SetAttrRes struct {
	Status Status
	Attr   OptAttr
}

// Encode implements Msg.
func (m *SetAttrRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.Attr.Encode(e)
}

// Decode implements Msg.
func (m *SetAttrRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	return m.Attr.Decode(d)
}

// ---------------------------------------------------------------- LOOKUP

// LookupArgs are the arguments of LOOKUP.
type LookupArgs struct {
	Dir  fhandle.Handle
	Name string
}

// Encode implements Msg.
func (m *LookupArgs) Encode(e *xdr.Encoder) {
	m.Dir.Encode(e)
	e.PutString(m.Name)
}

// Decode implements Msg.
func (m *LookupArgs) Decode(d *xdr.Decoder) (err error) {
	if m.Dir, err = fhandle.Decode(d); err != nil {
		return err
	}
	m.Name, err = d.String()
	return err
}

// LookupRes are the results of LOOKUP.
type LookupRes struct {
	Status  Status
	FH      fhandle.Handle
	Attr    OptAttr
	DirAttr OptAttr
}

// Encode implements Msg.
func (m *LookupRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	if m.Status == OK {
		m.FH.Encode(e)
		m.Attr.Encode(e)
	}
	m.DirAttr.Encode(e)
}

// Decode implements Msg.
func (m *LookupRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if m.Status == OK {
		if m.FH, err = fhandle.Decode(d); err != nil {
			return err
		}
		if err = m.Attr.Decode(d); err != nil {
			return err
		}
	}
	return m.DirAttr.Decode(d)
}

// ---------------------------------------------------------------- ACCESS

// AccessArgs are the arguments of ACCESS.
type AccessArgs struct {
	FH     fhandle.Handle
	Access uint32
}

// Encode implements Msg.
func (m *AccessArgs) Encode(e *xdr.Encoder) {
	m.FH.Encode(e)
	e.PutUint32(m.Access)
}

// Decode implements Msg.
func (m *AccessArgs) Decode(d *xdr.Decoder) (err error) {
	if m.FH, err = fhandle.Decode(d); err != nil {
		return err
	}
	m.Access, err = d.Uint32()
	return err
}

// AccessRes are the results of ACCESS.
type AccessRes struct {
	Status Status
	Attr   OptAttr
	Access uint32
}

// Encode implements Msg.
func (m *AccessRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.Attr.Encode(e)
	if m.Status == OK {
		e.PutUint32(m.Access)
	}
}

// Decode implements Msg.
func (m *AccessRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if err = m.Attr.Decode(d); err != nil {
		return err
	}
	if m.Status == OK {
		m.Access, err = d.Uint32()
		return err
	}
	return nil
}

// ---------------------------------------------------------------- READ

// ReadArgs are the arguments of READ.
type ReadArgs struct {
	FH     fhandle.Handle
	Offset uint64
	Count  uint32
}

// Encode implements Msg.
func (m *ReadArgs) Encode(e *xdr.Encoder) {
	m.FH.Encode(e)
	e.PutUint64(m.Offset)
	e.PutUint32(m.Count)
}

// Decode implements Msg.
func (m *ReadArgs) Decode(d *xdr.Decoder) (err error) {
	if m.FH, err = fhandle.Decode(d); err != nil {
		return err
	}
	if m.Offset, err = d.Uint64(); err != nil {
		return err
	}
	m.Count, err = d.Uint32()
	return err
}

// ReadRes are the results of READ.
type ReadRes struct {
	Status Status
	Attr   OptAttr
	Count  uint32
	EOF    bool
	Data   []byte
}

// Encode implements Msg.
func (m *ReadRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.Attr.Encode(e)
	if m.Status == OK {
		e.PutUint32(m.Count)
		e.PutBool(m.EOF)
		e.PutOpaque(m.Data)
	}
}

// Decode implements Msg.
func (m *ReadRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if err = m.Attr.Decode(d); err != nil {
		return err
	}
	if m.Status != OK {
		return nil
	}
	if m.Count, err = d.Uint32(); err != nil {
		return err
	}
	if m.EOF, err = d.Bool(); err != nil {
		return err
	}
	m.Data, err = d.Opaque()
	return err
}

// ---------------------------------------------------------------- WRITE

// WriteArgs are the arguments of WRITE.
type WriteArgs struct {
	FH     fhandle.Handle
	Offset uint64
	Count  uint32
	Stable uint32
	Data   []byte
}

// Encode implements Msg.
func (m *WriteArgs) Encode(e *xdr.Encoder) {
	m.FH.Encode(e)
	e.PutUint64(m.Offset)
	e.PutUint32(m.Count)
	e.PutUint32(m.Stable)
	e.PutOpaque(m.Data)
}

// Decode implements Msg.
func (m *WriteArgs) Decode(d *xdr.Decoder) (err error) {
	if m.FH, err = fhandle.Decode(d); err != nil {
		return err
	}
	if m.Offset, err = d.Uint64(); err != nil {
		return err
	}
	if m.Count, err = d.Uint32(); err != nil {
		return err
	}
	if m.Stable, err = d.Uint32(); err != nil {
		return err
	}
	m.Data, err = d.Opaque()
	return err
}

// WriteRes are the results of WRITE.
type WriteRes struct {
	Status    Status
	Attr      OptAttr
	Count     uint32
	Committed uint32
	Verf      uint64
}

// Encode implements Msg.
func (m *WriteRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.Attr.Encode(e)
	if m.Status == OK {
		e.PutUint32(m.Count)
		e.PutUint32(m.Committed)
		e.PutUint64(m.Verf)
	}
}

// Decode implements Msg.
func (m *WriteRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if err = m.Attr.Decode(d); err != nil {
		return err
	}
	if m.Status != OK {
		return nil
	}
	if m.Count, err = d.Uint32(); err != nil {
		return err
	}
	if m.Committed, err = d.Uint32(); err != nil {
		return err
	}
	m.Verf, err = d.Uint64()
	return err
}

// ---------------------------------------------------------------- CREATE / MKDIR

// CreateArgs are the arguments of CREATE and MKDIR.
type CreateArgs struct {
	Dir       fhandle.Handle
	Name      string
	Sattr     attr.SetAttr
	Exclusive bool // CREATE only: fail if the name exists
}

// Encode implements Msg.
func (m *CreateArgs) Encode(e *xdr.Encoder) {
	m.Dir.Encode(e)
	e.PutString(m.Name)
	e.PutBool(m.Exclusive)
	m.Sattr.Encode(e)
}

// Decode implements Msg.
func (m *CreateArgs) Decode(d *xdr.Decoder) (err error) {
	if m.Dir, err = fhandle.Decode(d); err != nil {
		return err
	}
	if m.Name, err = d.String(); err != nil {
		return err
	}
	if m.Exclusive, err = d.Bool(); err != nil {
		return err
	}
	return m.Sattr.Decode(d)
}

// CreateRes are the results of CREATE and MKDIR.
type CreateRes struct {
	Status  Status
	FH      fhandle.Handle
	Attr    OptAttr
	DirAttr OptAttr
}

// Encode implements Msg.
func (m *CreateRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	if m.Status == OK {
		m.FH.Encode(e)
		m.Attr.Encode(e)
	}
	m.DirAttr.Encode(e)
}

// Decode implements Msg.
func (m *CreateRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if m.Status == OK {
		if m.FH, err = fhandle.Decode(d); err != nil {
			return err
		}
		if err = m.Attr.Decode(d); err != nil {
			return err
		}
	}
	return m.DirAttr.Decode(d)
}

// ---------------------------------------------------------------- REMOVE / RMDIR

// RemoveArgs are the arguments of REMOVE and RMDIR.
type RemoveArgs struct {
	Dir  fhandle.Handle
	Name string
}

// Encode implements Msg.
func (m *RemoveArgs) Encode(e *xdr.Encoder) {
	m.Dir.Encode(e)
	e.PutString(m.Name)
}

// Decode implements Msg.
func (m *RemoveArgs) Decode(d *xdr.Decoder) (err error) {
	if m.Dir, err = fhandle.Decode(d); err != nil {
		return err
	}
	m.Name, err = d.String()
	return err
}

// RemoveRes are the results of REMOVE and RMDIR.
type RemoveRes struct {
	Status  Status
	DirAttr OptAttr
}

// Encode implements Msg.
func (m *RemoveRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.DirAttr.Encode(e)
}

// Decode implements Msg.
func (m *RemoveRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	return m.DirAttr.Decode(d)
}

// ---------------------------------------------------------------- RENAME

// RenameArgs are the arguments of RENAME.
type RenameArgs struct {
	FromDir  fhandle.Handle
	FromName string
	ToDir    fhandle.Handle
	ToName   string
}

// Encode implements Msg.
func (m *RenameArgs) Encode(e *xdr.Encoder) {
	m.FromDir.Encode(e)
	e.PutString(m.FromName)
	m.ToDir.Encode(e)
	e.PutString(m.ToName)
}

// Decode implements Msg.
func (m *RenameArgs) Decode(d *xdr.Decoder) (err error) {
	if m.FromDir, err = fhandle.Decode(d); err != nil {
		return err
	}
	if m.FromName, err = d.String(); err != nil {
		return err
	}
	if m.ToDir, err = fhandle.Decode(d); err != nil {
		return err
	}
	m.ToName, err = d.String()
	return err
}

// RenameRes are the results of RENAME.
type RenameRes struct {
	Status      Status
	FromDirAttr OptAttr
	ToDirAttr   OptAttr
}

// Encode implements Msg.
func (m *RenameRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.FromDirAttr.Encode(e)
	m.ToDirAttr.Encode(e)
}

// Decode implements Msg.
func (m *RenameRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if err = m.FromDirAttr.Decode(d); err != nil {
		return err
	}
	return m.ToDirAttr.Decode(d)
}

// ---------------------------------------------------------------- LINK

// LinkArgs are the arguments of LINK.
type LinkArgs struct {
	FH   fhandle.Handle // existing file
	Dir  fhandle.Handle // directory for the new name
	Name string
}

// Encode implements Msg.
func (m *LinkArgs) Encode(e *xdr.Encoder) {
	m.FH.Encode(e)
	m.Dir.Encode(e)
	e.PutString(m.Name)
}

// Decode implements Msg.
func (m *LinkArgs) Decode(d *xdr.Decoder) (err error) {
	if m.FH, err = fhandle.Decode(d); err != nil {
		return err
	}
	if m.Dir, err = fhandle.Decode(d); err != nil {
		return err
	}
	m.Name, err = d.String()
	return err
}

// LinkRes are the results of LINK.
type LinkRes struct {
	Status  Status
	Attr    OptAttr
	DirAttr OptAttr
}

// Encode implements Msg.
func (m *LinkRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.Attr.Encode(e)
	m.DirAttr.Encode(e)
}

// Decode implements Msg.
func (m *LinkRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if err = m.Attr.Decode(d); err != nil {
		return err
	}
	return m.DirAttr.Decode(d)
}

// ---------------------------------------------------------------- READDIR

// DirEntry is one entry in a READDIR reply.
type DirEntry struct {
	FileID uint64
	Name   string
	Cookie uint64
}

// ReadDirArgs are the arguments of READDIR.
type ReadDirArgs struct {
	Dir    fhandle.Handle
	Cookie uint64
	Count  uint32 // maximum reply bytes
}

// Encode implements Msg.
func (m *ReadDirArgs) Encode(e *xdr.Encoder) {
	m.Dir.Encode(e)
	e.PutUint64(m.Cookie)
	e.PutUint32(m.Count)
}

// Decode implements Msg.
func (m *ReadDirArgs) Decode(d *xdr.Decoder) (err error) {
	if m.Dir, err = fhandle.Decode(d); err != nil {
		return err
	}
	if m.Cookie, err = d.Uint64(); err != nil {
		return err
	}
	m.Count, err = d.Uint32()
	return err
}

// ReadDirRes are the results of READDIR.
type ReadDirRes struct {
	Status  Status
	DirAttr OptAttr
	Entries []DirEntry
	EOF     bool
}

// MaxDirEntries bounds the entries in one READDIR reply.
const MaxDirEntries = 4096

// Encode implements Msg.
func (m *ReadDirRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.DirAttr.Encode(e)
	if m.Status != OK {
		return
	}
	e.PutUint32(uint32(len(m.Entries)))
	for i := range m.Entries {
		ent := &m.Entries[i]
		e.PutUint64(ent.FileID)
		e.PutString(ent.Name)
		e.PutUint64(ent.Cookie)
	}
	e.PutBool(m.EOF)
}

// Decode implements Msg.
func (m *ReadDirRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if err = m.DirAttr.Decode(d); err != nil {
		return err
	}
	if m.Status != OK {
		return nil
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if err = xdr.CheckLen(n, MaxDirEntries); err != nil {
		return err
	}
	m.Entries = make([]DirEntry, n)
	for i := range m.Entries {
		ent := &m.Entries[i]
		if ent.FileID, err = d.Uint64(); err != nil {
			return err
		}
		if ent.Name, err = d.String(); err != nil {
			return err
		}
		if ent.Cookie, err = d.Uint64(); err != nil {
			return err
		}
	}
	m.EOF, err = d.Bool()
	return err
}

// ---------------------------------------------------------------- FSSTAT

// FsStatArgs are the arguments of FSSTAT.
type FsStatArgs struct {
	FH fhandle.Handle
}

// Encode implements Msg.
func (m *FsStatArgs) Encode(e *xdr.Encoder) { m.FH.Encode(e) }

// Decode implements Msg.
func (m *FsStatArgs) Decode(d *xdr.Decoder) (err error) {
	m.FH, err = fhandle.Decode(d)
	return err
}

// FsStatRes are the results of FSSTAT.
type FsStatRes struct {
	Status     Status
	Attr       OptAttr
	TotalBytes uint64
	FreeBytes  uint64
	TotalFiles uint64
	FreeFiles  uint64
}

// Encode implements Msg.
func (m *FsStatRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.Attr.Encode(e)
	if m.Status == OK {
		e.PutUint64(m.TotalBytes)
		e.PutUint64(m.FreeBytes)
		e.PutUint64(m.TotalFiles)
		e.PutUint64(m.FreeFiles)
	}
}

// Decode implements Msg.
func (m *FsStatRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if err = m.Attr.Decode(d); err != nil {
		return err
	}
	if m.Status != OK {
		return nil
	}
	if m.TotalBytes, err = d.Uint64(); err != nil {
		return err
	}
	if m.FreeBytes, err = d.Uint64(); err != nil {
		return err
	}
	if m.TotalFiles, err = d.Uint64(); err != nil {
		return err
	}
	m.FreeFiles, err = d.Uint64()
	return err
}

// ---------------------------------------------------------------- COMMIT

// CommitArgs are the arguments of COMMIT.
type CommitArgs struct {
	FH     fhandle.Handle
	Offset uint64
	Count  uint32
}

// Encode implements Msg.
func (m *CommitArgs) Encode(e *xdr.Encoder) {
	m.FH.Encode(e)
	e.PutUint64(m.Offset)
	e.PutUint32(m.Count)
}

// Decode implements Msg.
func (m *CommitArgs) Decode(d *xdr.Decoder) (err error) {
	if m.FH, err = fhandle.Decode(d); err != nil {
		return err
	}
	if m.Offset, err = d.Uint64(); err != nil {
		return err
	}
	m.Count, err = d.Uint32()
	return err
}

// CommitRes are the results of COMMIT.
type CommitRes struct {
	Status Status
	Attr   OptAttr
	Verf   uint64
}

// Encode implements Msg.
func (m *CommitRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.Attr.Encode(e)
	if m.Status == OK {
		e.PutUint64(m.Verf)
	}
}

// Decode implements Msg.
func (m *CommitRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if err = m.Attr.Decode(d); err != nil {
		return err
	}
	if m.Status == OK {
		m.Verf, err = d.Uint64()
		return err
	}
	return nil
}

// NewArgs returns a zero arguments message for proc, or nil for unknown
// procedures (and for NULL, which has an empty body).
func NewArgs(proc Proc) Msg {
	switch proc {
	case ProcSymlink:
		return &SymlinkArgs{}
	case ProcReadLink:
		return &ReadLinkArgs{}
	case ProcGetAttr:
		return &GetAttrArgs{}
	case ProcSetAttr:
		return &SetAttrArgs{}
	case ProcLookup:
		return &LookupArgs{}
	case ProcAccess:
		return &AccessArgs{}
	case ProcRead:
		return &ReadArgs{}
	case ProcWrite:
		return &WriteArgs{}
	case ProcCreate, ProcMkdir:
		return &CreateArgs{}
	case ProcRemove, ProcRmdir:
		return &RemoveArgs{}
	case ProcRename:
		return &RenameArgs{}
	case ProcLink:
		return &LinkArgs{}
	case ProcReadDir:
		return &ReadDirArgs{}
	case ProcFsStat:
		return &FsStatArgs{}
	case ProcCommit:
		return &CommitArgs{}
	default:
		return nil
	}
}

// NewRes returns a zero results message for proc, or nil for unknown
// procedures (and for NULL).
func NewRes(proc Proc) Msg {
	switch proc {
	case ProcSymlink:
		return &CreateRes{}
	case ProcReadLink:
		return &ReadLinkRes{}
	case ProcGetAttr:
		return &GetAttrRes{}
	case ProcSetAttr:
		return &SetAttrRes{}
	case ProcLookup:
		return &LookupRes{}
	case ProcAccess:
		return &AccessRes{}
	case ProcRead:
		return &ReadRes{}
	case ProcWrite:
		return &WriteRes{}
	case ProcCreate, ProcMkdir:
		return &CreateRes{}
	case ProcRemove, ProcRmdir:
		return &RemoveRes{}
	case ProcRename:
		return &RenameRes{}
	case ProcLink:
		return &LinkRes{}
	case ProcReadDir:
		return &ReadDirRes{}
	case ProcFsStat:
		return &FsStatRes{}
	case ProcCommit:
		return &CommitRes{}
	default:
		return nil
	}
}

// ---------------------------------------------------------------- SYMLINK

// SymlinkArgs are the arguments of SYMLINK.
type SymlinkArgs struct {
	Dir    fhandle.Handle
	Name   string
	Target string // link contents (the path the symlink points to)
	Sattr  attr.SetAttr
}

// Encode implements Msg.
func (m *SymlinkArgs) Encode(e *xdr.Encoder) {
	m.Dir.Encode(e)
	e.PutString(m.Name)
	e.PutString(m.Target)
	m.Sattr.Encode(e)
}

// Decode implements Msg.
func (m *SymlinkArgs) Decode(d *xdr.Decoder) (err error) {
	if m.Dir, err = fhandle.Decode(d); err != nil {
		return err
	}
	if m.Name, err = d.String(); err != nil {
		return err
	}
	if m.Target, err = d.String(); err != nil {
		return err
	}
	return m.Sattr.Decode(d)
}

// SYMLINK results reuse CreateRes: the reply layout is identical.

// ---------------------------------------------------------------- READLINK

// ReadLinkArgs are the arguments of READLINK.
type ReadLinkArgs struct {
	FH fhandle.Handle
}

// Encode implements Msg.
func (m *ReadLinkArgs) Encode(e *xdr.Encoder) { m.FH.Encode(e) }

// Decode implements Msg.
func (m *ReadLinkArgs) Decode(d *xdr.Decoder) (err error) {
	m.FH, err = fhandle.Decode(d)
	return err
}

// ReadLinkRes are the results of READLINK.
type ReadLinkRes struct {
	Status Status
	Attr   OptAttr
	Target string
}

// Encode implements Msg.
func (m *ReadLinkRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	m.Attr.Encode(e)
	if m.Status == OK {
		e.PutString(m.Target)
	}
}

// Decode implements Msg.
func (m *ReadLinkRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if err = m.Attr.Decode(d); err != nil {
		return err
	}
	if m.Status == OK {
		m.Target, err = d.String()
		return err
	}
	return nil
}
