package workload

import (
	"fmt"
	"time"

	"slice/internal/attr"
	"slice/internal/client"
	"slice/internal/fhandle"
)

// SfsConfig shapes the SPECsfs97-like generator for the live stack.
type SfsConfig struct {
	// Files in the working set; sizes follow the SFS skew (94% ≤ 64KB,
	// but small files hold only ~24% of bytes).
	Files int
	// Ops to issue.
	Ops int
	// Prefix isolates this generator's directory.
	Prefix string
	Seed   uint64
}

func (c *SfsConfig) defaults() {
	if c.Files <= 0 {
		c.Files = 100
	}
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.Prefix == "" {
		c.Prefix = "sfs"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SfsStats counts operations by class and verifies reads.
type SfsStats struct {
	NameOps  int
	Reads    int
	Writes   int
	Commits  int
	Creates  int
	Removes  int
	ReadErrs int
	Bytes    uint64
}

// sfsFileSize draws a file size from the SFS-like distribution: most
// files are small, a few are large enough to cross the 64KB threshold.
func sfsFileSize(r *prng) int {
	u := r.intn(100)
	switch {
	case u < 60:
		return 1 + r.intn(8*1024) // ≤ 8KB
	case u < 94:
		return 8*1024 + r.intn(56*1024) // 8–64KB
	case u < 99:
		return 64*1024 + r.intn(192*1024) // 64–256KB: crosses threshold
	default:
		return 256*1024 + r.intn(256*1024)
	}
}

// Sfs runs an SFS-like operation mix against the live stack and verifies
// every read against the expected contents.
func Sfs(c *client.Client, root fhandle.Handle, cfg SfsConfig) (SfsStats, error) {
	cfg.defaults()
	rng := prng{s: cfg.Seed*97 + 3}
	var st SfsStats

	dir, _, err := c.Mkdir(root, cfg.Prefix, 0o755)
	if err != nil {
		return st, fmt.Errorf("sfs: mkdir: %w", err)
	}

	// A handful of symlinks for the READLINK share of the mix (7%).
	var links []fhandle.Handle
	for i := 0; i < 5; i++ {
		lnk, _, err := c.Symlink(dir, fmt.Sprintf("l%d", i), fmt.Sprintf("/target/%d", i))
		if err != nil {
			return st, fmt.Errorf("sfs: symlink: %w", err)
		}
		links = append(links, lnk)
	}

	type file struct {
		name string
		fh   fhandle.Handle
		size int
		seed byte
	}
	var files []file

	fill := func(size int, seed byte) []byte {
		p := make([]byte, size)
		for i := range p {
			p[i] = seed + byte(i)
		}
		return p
	}

	// Populate the working set.
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("s%05d", i)
		fh, _, err := c.Create(dir, name, 0o644, true)
		if err != nil {
			return st, fmt.Errorf("sfs: create %s: %w", name, err)
		}
		size := sfsFileSize(&rng)
		seed := byte(i)
		if err := c.WriteFile(fh, fill(size, seed)); err != nil {
			return st, fmt.Errorf("sfs: populate %s: %w", name, err)
		}
		files = append(files, file{name: name, fh: fh, size: size, seed: seed})
		st.Creates++
		st.Writes++
		st.Bytes += uint64(size)
	}

	// The mix (SFS97 shares, non-implemented ops folded into lookups).
	for op := 0; op < cfg.Ops; op++ {
		f := &files[rng.intn(len(files))]
		u := rng.intn(100)
		switch {
		case u < 53: // lookup/getattr/access/readlink...
			if _, _, err := c.Lookup(dir, f.name); err != nil {
				return st, fmt.Errorf("sfs: lookup: %w", err)
			}
			st.NameOps++
		case u < 60: // readdir / fsstat
			if _, err := c.ReadDir(dir); err != nil {
				return st, fmt.Errorf("sfs: readdir: %w", err)
			}
			st.NameOps++
		case u < 64: // readlink
			lnk := links[rng.intn(len(links))]
			if _, err := c.ReadLink(lnk); err != nil {
				return st, fmt.Errorf("sfs: readlink: %w", err)
			}
			st.NameOps++
		case u < 82: // read, verified
			off := 0
			if f.size > 1024 {
				off = rng.intn(f.size - 1024)
			}
			n := 1024
			if off+n > f.size {
				n = f.size - off
			}
			buf := make([]byte, n)
			got, _, err := c.Read(f.fh, uint64(off), buf)
			if err != nil {
				return st, fmt.Errorf("sfs: read: %w", err)
			}
			for i := 0; i < got; i++ {
				if buf[i] != f.seed+byte(off+i) {
					st.ReadErrs++
					break
				}
			}
			st.Reads++
			st.Bytes += uint64(got)
		case u < 91: // write (overwrite in place, keeping the pattern)
			off := 0
			if f.size > 512 {
				off = rng.intn(f.size - 512)
			}
			n := 512
			if off+n > f.size {
				n = f.size - off
			}
			if _, err := c.Write(f.fh, uint64(off), fill(n, f.seed+byte(off)), false); err != nil {
				return st, fmt.Errorf("sfs: write: %w", err)
			}
			st.Writes++
			st.Bytes += uint64(n)
		case u < 96: // commit
			if _, err := c.Commit(f.fh); err != nil {
				return st, fmt.Errorf("sfs: commit: %w", err)
			}
			st.Commits++
		case u < 98: // setattr
			if _, err := c.SetAttr(f.fh, setMode(0o640)); err != nil {
				return st, fmt.Errorf("sfs: setattr: %w", err)
			}
			st.NameOps++
		default: // remove + recreate (keeps the set stable)
			if err := c.Remove(dir, f.name); err != nil {
				return st, fmt.Errorf("sfs: remove: %w", err)
			}
			st.Removes++
			fh, _, err := c.Create(dir, f.name, 0o644, true)
			if err != nil {
				return st, fmt.Errorf("sfs: recreate: %w", err)
			}
			f.fh = fh
			f.size = sfsFileSize(&rng)
			f.seed++
			if err := c.WriteFile(fh, fill(f.size, f.seed)); err != nil {
				return st, fmt.Errorf("sfs: refill: %w", err)
			}
			st.Creates++
			st.Writes++
			st.Bytes += uint64(f.size)
		}
	}
	return st, nil
}

// DDConfig shapes sequential bulk I/O (the dd test of Table 2).
type DDConfig struct {
	Name  string
	Bytes int
	Write bool
	// Verify checks read contents against the write pattern.
	Verify bool
}

// DDStats reports the transfer.
type DDStats struct {
	Bytes    int
	Mismatch bool
	// Elapsed is the wall time of the transfer (including the COMMIT
	// barrier on writes), so callers can report bandwidth.
	Elapsed time.Duration
}

// MBps returns the transfer bandwidth in decimal megabytes per second.
func (st DDStats) MBps() float64 {
	if st.Elapsed <= 0 {
		return 0
	}
	return float64(st.Bytes) / 1e6 / st.Elapsed.Seconds()
}

// DD performs a sequential write (creating the file) or a sequential read
// of the named file under root.
func DD(c *client.Client, root fhandle.Handle, cfg DDConfig) (DDStats, error) {
	var st DDStats
	if cfg.Name == "" {
		cfg.Name = "dd.dat"
	}
	if cfg.Bytes <= 0 {
		cfg.Bytes = 1 << 20
	}
	t0 := time.Now()
	if cfg.Write {
		fh, _, err := c.Create(root, cfg.Name, 0o644, false)
		if err != nil {
			return st, fmt.Errorf("dd: create: %w", err)
		}
		buf := make([]byte, 64*1024)
		for off := 0; off < cfg.Bytes; off += len(buf) {
			n := len(buf)
			if off+n > cfg.Bytes {
				n = cfg.Bytes - off
			}
			for i := 0; i < n; i++ {
				buf[i] = byte((off + i) * 131)
			}
			if _, err := c.Write(fh, uint64(off), buf[:n], false); err != nil {
				return st, fmt.Errorf("dd: write at %d: %w", off, err)
			}
			st.Bytes += n
		}
		if _, err := c.Commit(fh); err != nil {
			return st, fmt.Errorf("dd: commit: %w", err)
		}
		st.Elapsed = time.Since(t0)
		return st, nil
	}
	fh, _, err := c.Lookup(root, cfg.Name)
	if err != nil {
		return st, fmt.Errorf("dd: lookup: %w", err)
	}
	buf := make([]byte, 64*1024)
	for off := 0; off < cfg.Bytes; {
		n, eof, err := c.Read(fh, uint64(off), buf)
		if err != nil {
			return st, fmt.Errorf("dd: read at %d: %w", off, err)
		}
		if cfg.Verify {
			for i := 0; i < n; i++ {
				if buf[i] != byte((off+i)*131) {
					st.Mismatch = true
				}
			}
		}
		off += n
		st.Bytes += n
		if eof || n == 0 {
			break
		}
	}
	st.Elapsed = time.Since(t0)
	return st, nil
}

func setMode(mode uint32) attr.SetAttr {
	return attr.SetAttr{SetMode: true, Mode: mode}
}
