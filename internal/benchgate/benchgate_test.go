package benchgate

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: slice
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkProxyForwardParallel     	   20000	      1962 ns/op	      94 B/op	       0 allocs/op
BenchmarkProxyForwardParallel-4   	   20000	      1979 ns/op	      99 B/op	       0 allocs/op
BenchmarkProxyForwardSerial       	   20000	      1902 ns/op	       0 B/op	       0 allocs/op
BenchmarkProxyForwardSerial-4     	   20000	      1745 ns/op	       0 B/op	       0 allocs/op
BenchmarkProxyForwardSerial       	   20000	      1800 ns/op	       0 B/op	       1 allocs/op
BenchmarkAttrCacheHitParallel     	 1000000	        66.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkAttrCacheHitParallel-4   	 1000000	        72.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNameCacheHitParallel     	 1000000	        71.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNameCacheHitParallel-4   	 1000000	        74.0 ns/op	       0 B/op	       0 allocs/op
PASS
`

const baselineJSON = `{
  "current": {
    "BenchmarkProxyForwardParallel": {"cpu1": {"ns_op": 1605, "b_op": 2, "allocs_op": 0}, "cpu4": {"ns_op": 1552, "b_op": 2, "allocs_op": 0}},
    "BenchmarkProxyForwardSerial":   {"cpu1": {"ns_op": 1425, "b_op": 0, "allocs_op": 0}, "cpu4": {"ns_op": 1656, "b_op": 0, "allocs_op": 0}},
    "BenchmarkAttrCacheHitParallel": {"cpu1": {"ns_op": 65.55, "b_op": 0, "allocs_op": 0}, "cpu4": {"ns_op": 71.09, "b_op": 0, "allocs_op": 0}},
    "BenchmarkNameCacheHitParallel": {"cpu1": {"ns_op": 70.52, "b_op": 0, "allocs_op": 0}, "cpu4": {"ns_op": 72.83, "b_op": 0, "allocs_op": 0}}
  }
}`

func TestParseBench(t *testing.T) {
	res, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res["BenchmarkProxyForwardSerial"]["cpu1"]); got != 2 {
		t.Fatalf("serial cpu1 samples = %d, want 2 (count runs accumulate)", got)
	}
	if got := res["BenchmarkProxyForwardParallel"]["cpu4"][0].BOp; got != 99 {
		t.Fatalf("parallel cpu4 B/op = %v, want 99", got)
	}
	if got := res["BenchmarkAttrCacheHitParallel"]["cpu1"][0].NsOp; got != 66.1 {
		t.Fatalf("attr cpu1 ns/op = %v, want 66.1", got)
	}
}

func TestBestTakesMin(t *testing.T) {
	b := best([]Sample{
		{NsOp: 1902, BOp: 0, AllocsOp: 1},
		{NsOp: 1800, BOp: 4, AllocsOp: 0},
	})
	if b.NsOp != 1800 || b.BOp != 0 || b.AllocsOp != 0 {
		t.Fatalf("best = %+v, want min of each metric", b)
	}
}

func TestGatePasses(t *testing.T) {
	base, err := ParseBaseline([]byte(baselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Check(&buf, base, res, Config{}); err != nil {
		t.Fatalf("gate failed on in-budget results: %v\n%s", err, buf.String())
	}
}

func TestGateFailsOnAllocInflation(t *testing.T) {
	base, err := ParseBaseline([]byte(baselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	inflated := strings.ReplaceAll(sampleOutput,
		"1745 ns/op	       0 B/op	       0 allocs/op",
		"1745 ns/op	      48 B/op	       3 allocs/op")
	inflated = strings.ReplaceAll(inflated,
		"1902 ns/op	       0 B/op	       0 allocs/op",
		"1902 ns/op	      48 B/op	       3 allocs/op")
	inflated = strings.ReplaceAll(inflated,
		"1800 ns/op	       0 B/op	       1 allocs/op",
		"1800 ns/op	      48 B/op	       3 allocs/op")
	res, err := ParseBench(strings.NewReader(inflated))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = Check(&buf, base, res, Config{})
	if err == nil {
		t.Fatalf("gate passed inflated allocations:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "allocs/op 3 > 0") {
		t.Fatalf("failure does not name the alloc regression: %v", err)
	}
}

func TestGateFailsOnLatencyBlowup(t *testing.T) {
	base, err := ParseBaseline([]byte(baselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	slow := strings.ReplaceAll(sampleOutput, "1962 ns/op", "9900 ns/op")
	res, err := ParseBench(strings.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Check(&buf, base, res, Config{Tolerance: 2.5}); err == nil {
		t.Fatalf("gate passed a 5x latency regression:\n%s", buf.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base, err := ParseBaseline([]byte(baselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	partial := strings.ReplaceAll(sampleOutput, "BenchmarkNameCacheHitParallel", "BenchmarkRenamedAway")
	res, err := ParseBench(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Check(&buf, base, res, Config{}); err == nil ||
		!strings.Contains(err.Error(), "not measured") {
		t.Fatalf("gate did not flag a gated benchmark that vanished: %v", err)
	}
}

const fleetOutput = `goos: linux
BenchmarkFleetForward/proxies=1-4 	    5000	     49742 ns/op	      20 B/op	       0 allocs/op
BenchmarkFleetForward/proxies=2-4 	    5000	     27122 ns/op	      20 B/op	       0 allocs/op
BenchmarkFleetForward/proxies=4-4 	    5000	     13613 ns/op	      23 B/op	       0 allocs/op
BenchmarkFleetForward/proxies=8-4 	    5000	      8391 ns/op	      24 B/op	       0 allocs/op
PASS
`

const fleetBaselineJSON = `{
  "current": {
    "BenchmarkFleetForward/proxies=1": {"cpu4": {"ns_op": 50000, "b_op": 20, "allocs_op": 0}},
    "BenchmarkFleetForward/proxies=4": {"cpu4": {"ns_op": 13400, "b_op": 20, "allocs_op": 0}}
  },
  "ratios": [
    {"base": "BenchmarkFleetForward/proxies=1", "scaled": "BenchmarkFleetForward/proxies=4", "cpu": "cpu4", "min_speedup": 3.2}
  ]
}`

func TestRatioGatePasses(t *testing.T) {
	base, err := ParseBaseline([]byte(fleetBaselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ParseBench(strings.NewReader(fleetOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Check(&buf, base, res, Config{}); err != nil {
		t.Fatalf("ratio gate failed on 3.65x scaling: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "scaling ratio") {
		t.Fatalf("verdict table has no ratio section:\n%s", buf.String())
	}
}

func TestRatioGateFailsOnLostScaling(t *testing.T) {
	base, err := ParseBaseline([]byte(fleetBaselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	// 4 proxies barely beating 1 — the shared-nothing property broke.
	flat := strings.ReplaceAll(fleetOutput, "13613 ns/op", "40000 ns/op")
	res, err := ParseBench(strings.NewReader(flat))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = Check(&buf, base, res, Config{})
	if err == nil {
		t.Fatalf("ratio gate passed a 1.24x \"scale-out\":\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "speedup") {
		t.Fatalf("failure does not name the lost speedup: %v", err)
	}
}

func TestRatioGateFailsWhenSideMissing(t *testing.T) {
	base, err := ParseBaseline([]byte(fleetBaselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	partial := strings.ReplaceAll(fleetOutput, "proxies=4", "proxies=3")
	res, err := ParseBench(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Check(&buf, base, res, Config{}); err == nil ||
		!strings.Contains(err.Error(), "not measured") {
		t.Fatalf("ratio gate did not flag a missing side: %v", err)
	}
}

// TestRealBaselineParses guards the checked-in BENCH_proxy.json against
// schema drift: the gate must always be able to load it.
func TestRealBaselineParses(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_proxy.json")
	if err != nil {
		t.Skipf("BENCH_proxy.json: %v", err)
	}
	base, err := ParseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BenchmarkProxyForwardSerial", "BenchmarkProxyForwardParallel"} {
		m, ok := base.Current[name]
		if !ok {
			t.Fatalf("baseline missing %s", name)
		}
		for cpu, want := range m {
			if want.AllocsOp != 0 {
				t.Errorf("%s/%s: baseline allocs_op %v, the forward path budget is 0",
					name, cpu, want.AllocsOp)
			}
		}
	}
	// The fleet scaling gate must stay in force: a 4-member fleet owes at
	// least the paper's near-linear speedup over one member.
	found := false
	for _, r := range base.Ratios {
		if r.Scaled == "BenchmarkFleetForward/proxies=4" && r.MinSpeedup >= 3.2 {
			found = true
		}
	}
	if !found {
		t.Error("baseline has no 4-proxy fleet ratio rule with min_speedup >= 3.2")
	}
}
