package oncrpc

import "encoding/binary"

// The optional trace field: a fixed trailer appended after the argument
// or result body of an RPC message, carrying the request's trace id and
// (on replies) the server-side handler time in nanoseconds.
//
// A trailer — rather than a header field — keeps the extension fully
// backward compatible in both directions: XDR decoders consume exactly
// the fields they know, so an old peer that receives a trailing trace
// field simply never reads those bytes, and a new peer detects the field
// by the 8-byte magic at the end of the payload. The magic makes an
// accidental match against ordinary argument bytes a 2^-64 event, which
// is below the datagram checksum's own failure rate.
const (
	// traceMagic spells "SLICTRAC".
	traceMagic uint64 = 0x534C4943_54524143

	// CallTraceLen is the size of the call trailer: magic + trace id.
	CallTraceLen = 16
	// ReplyTraceLen is the size of the reply trailer: magic + trace id +
	// server handler nanoseconds.
	ReplyTraceLen = 24
)

// AppendCallTrace appends the trace trailer to a call payload.
func AppendCallTrace(payload []byte, traceID uint64) []byte {
	var t [CallTraceLen]byte
	binary.BigEndian.PutUint64(t[0:], traceID)
	binary.BigEndian.PutUint64(t[8:], traceMagic)
	return append(payload, t[:]...)
}

// SplitCallTrace detects and strips the trace trailer from a call body
// (the bytes after the call header). It returns the trace id and the
// body with the trailer removed; ok is false when no trailer is present.
func SplitCallTrace(body []byte) (traceID uint64, stripped []byte, ok bool) {
	n := len(body)
	if n < CallTraceLen {
		return 0, body, false
	}
	if binary.BigEndian.Uint64(body[n-8:]) != traceMagic {
		return 0, body, false
	}
	return binary.BigEndian.Uint64(body[n-16:]), body[:n-CallTraceLen], true
}

// AppendReplyTrace appends the trace trailer to a reply payload.
func AppendReplyTrace(payload []byte, traceID, serverNS uint64) []byte {
	var t [ReplyTraceLen]byte
	binary.BigEndian.PutUint64(t[0:], traceID)
	binary.BigEndian.PutUint64(t[8:], serverNS)
	binary.BigEndian.PutUint64(t[16:], traceMagic)
	return append(payload, t[:]...)
}

// PeekReplyTrace reads the trace trailer from a reply body without
// modifying it. Interposed elements use it to split a hop's round-trip
// time into server time and wire time; decoders that do not know about
// the field never touch it.
func PeekReplyTrace(body []byte) (traceID, serverNS uint64, ok bool) {
	n := len(body)
	if n < ReplyTraceLen {
		return 0, 0, false
	}
	if binary.BigEndian.Uint64(body[n-8:]) != traceMagic {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(body[n-24:]), binary.BigEndian.Uint64(body[n-16:]), true
}
