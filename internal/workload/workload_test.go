package workload_test

import (
	"testing"

	"slice/internal/ensemble"
	"slice/internal/route"
	"slice/internal/workload"
)

func newEnsemble(t *testing.T, kind route.NameKind) *ensemble.Ensemble {
	t.Helper()
	e, err := ensemble.New(ensemble.Config{
		StorageNodes:     4,
		DirServers:       3,
		SmallFileServers: 2,
		Coordinator:      true,
		NameKind:         kind,
		MkdirP:           0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestUntarAgainstLiveStack(t *testing.T) {
	for _, kind := range []route.NameKind{route.MkdirSwitching, route.NameHashing} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newEnsemble(t, kind)
			c, err := e.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			st, err := workload.Untar(c, c.Root(), workload.UntarConfig{Entries: 300})
			if err != nil {
				t.Fatalf("untar: %v", err)
			}
			if st.Files == 0 || st.Dirs == 0 {
				t.Fatalf("stats %+v", st)
			}
			// 7 NFS ops per file create, per the paper.
			if want := st.Files*7 + st.Dirs; st.NFSOps != want {
				t.Fatalf("op count %d, want %d", st.NFSOps, want)
			}
			// The tree is walkable: count entries from the top.
			top, _, err := c.Lookup(c.Root(), "untar")
			if err != nil {
				t.Fatal(err)
			}
			ents, err := c.ReadDir(top)
			if err != nil || len(ents) == 0 {
				t.Fatalf("readdir top: %d entries, %v", len(ents), err)
			}
		})
	}
}

func TestUntarSpreadsLoadAcrossDirServers(t *testing.T) {
	e := newEnsemble(t, route.MkdirSwitching)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := workload.Untar(c, c.Root(), workload.UntarConfig{Entries: 400}); err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, d := range e.Dirs {
		if d.Counters().Ops > 20 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("mkdir switching left %d of %d directory servers busy", busy, len(e.Dirs))
	}
}

func TestSfsMixAgainstLiveStack(t *testing.T) {
	e := newEnsemble(t, route.MkdirSwitching)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := workload.Sfs(c, c.Root(), workload.SfsConfig{Files: 40, Ops: 400})
	if err != nil {
		t.Fatalf("sfs: %v", err)
	}
	if st.ReadErrs != 0 {
		t.Fatalf("%d verified reads returned wrong data", st.ReadErrs)
	}
	if st.Reads == 0 || st.Writes == 0 || st.NameOps == 0 || st.Commits == 0 {
		t.Fatalf("mix did not exercise all classes: %+v", st)
	}
	// The skewed file set crosses the threshold: both the small-file
	// servers and the storage nodes must have seen traffic.
	var sfWrites, bulkWrites uint64
	for _, s := range e.Small {
		sfWrites += s.Store().Stats().Writes
	}
	for _, n := range e.Storage {
		bulkWrites += n.Store().Stats().Writes
	}
	if sfWrites == 0 || bulkWrites == 0 {
		t.Fatalf("traffic split broken: smallfile=%d bulk=%d", sfWrites, bulkWrites)
	}
}

func TestDDWriteThenReadVerifies(t *testing.T) {
	e := newEnsemble(t, route.MkdirSwitching)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const size = 512 * 1024
	w, err := workload.DD(c, c.Root(), workload.DDConfig{Name: "big", Bytes: size, Write: true})
	if err != nil || w.Bytes != size {
		t.Fatalf("dd write: %+v, %v", w, err)
	}
	r, err := workload.DD(c, c.Root(), workload.DDConfig{Name: "big", Bytes: size, Verify: true})
	if err != nil {
		t.Fatalf("dd read: %v", err)
	}
	if r.Bytes != size || r.Mismatch {
		t.Fatalf("dd verify: %+v", r)
	}
}
