package wal

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"
)

// appendRecords writes n records through a fresh log on store.
func appendRecords(t testing.TB, store Store, n int) {
	t.Helper()
	log, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := log.Append(7, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestScanBoundsCorruptLength is the regression test for the plen
// hardening: a corrupt on-disk length near 1<<31 (or any value larger
// than the remaining data) must terminate the scan as a torn tail — never
// feed int arithmetic that can overflow on 32-bit platforms — while
// records before the damage still replay.
func TestScanBoundsCorruptLength(t *testing.T) {
	for _, plen := range []uint32{1 << 31, 0x7FFFFFFF, 0xFFFFFFFF, 1000} {
		store := NewMemStore()
		appendRecords(t, store, 3)

		// Corrupt the length field of the last record.
		data, _ := store.Contents()
		frameLen := headerLen + len("payload") + crcLen
		last := len(data) - frameLen
		binary.BigEndian.PutUint32(data[last+16:], plen)
		bad := NewMemStore()
		_ = bad.Append(data)
		_ = bad.Sync()

		log, err := Open(bad)
		if err != nil {
			t.Fatalf("plen=%#x: Open: %v", plen, err)
		}
		var seen int
		err = log.Scan(func(seq uint64, recType uint32, payload []byte) error {
			seen++
			return nil
		})
		if err != nil {
			t.Fatalf("plen=%#x: Scan: %v", plen, err)
		}
		if seen != 2 {
			t.Fatalf("plen=%#x: replayed %d records, want 2 (intact prefix)", plen, seen)
		}
	}
}

// slowStore delays every Sync, simulating a stalled log device.
type slowStore struct {
	*MemStore
	delay time.Duration

	mu    sync.Mutex
	syncs int
}

func (s *slowStore) Sync() error {
	time.Sleep(s.delay)
	s.mu.Lock()
	s.syncs++
	s.mu.Unlock()
	return s.MemStore.Sync()
}

func (s *slowStore) syncCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// TestSyncDoesNotBlockLog: while one caller is stuck in a slow store
// sync, Append, Stats, and Scan on the same log must all complete — the
// log mutex is not held across the device sync.
func TestSyncDoesNotBlockLog(t *testing.T) {
	store := &slowStore{MemStore: NewMemStore(), delay: 200 * time.Millisecond}
	log, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	syncDone := make(chan error, 1)
	go func() { syncDone <- log.Sync() }()
	time.Sleep(20 * time.Millisecond) // let the syncer enter store.Sync

	opsDone := make(chan struct{})
	go func() {
		defer close(opsDone)
		if _, err := log.Append(2, []byte("second")); err != nil {
			t.Error(err)
		}
		_ = log.Stats()
		_ = log.Scan(func(uint64, uint32, []byte) error { return nil })
	}()
	select {
	case <-opsDone:
	case <-time.After(100 * time.Millisecond):
		t.Fatal("Append/Stats/Scan blocked behind an in-flight store.Sync")
	}
	if err := <-syncDone; err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCoalesces: syncers that queue behind a slow leader
// piggyback on one device sync instead of issuing their own.
func TestGroupCommitCoalesces(t *testing.T) {
	store := &slowStore{MemStore: NewMemStore(), delay: 50 * time.Millisecond}
	log, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}

	// A leader with one record enters the slow sync; while it is stuck,
	// several followers append and call Sync.
	if _, err := log.Append(1, nil); err != nil {
		t.Fatal(err)
	}
	leaderDone := make(chan error, 1)
	go func() { leaderDone <- log.Sync() }()
	time.Sleep(10 * time.Millisecond)

	const followers = 4
	var wg sync.WaitGroup
	errs := make(chan error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := log.Append(2, nil); err != nil {
				errs <- err
				return
			}
			errs <- log.Sync()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	// Leader's sync plus at most one follower-batch sync: the followers'
	// records were appended while the leader was mid-sync, so one more
	// device sync covers all of them.
	if got := store.syncCount(); got > 2 {
		t.Fatalf("%d device syncs for %d concurrent syncers, want <= 2 (group commit)", got, followers+1)
	}
}

// FuzzScan throws hostile bytes at the frame parser: Scan must never
// panic, and must either replay records, stop at a torn tail, or report
// ErrCorrupt — on any input.
func FuzzScan(f *testing.F) {
	valid := NewMemStore()
	appendRecords(f, valid, 2)
	seed, _ := valid.Contents()
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	huge := append([]byte(nil), seed...)
	binary.BigEndian.PutUint32(huge[16:], 1<<31)
	f.Add(huge) // length overflow attempt
	f.Add([]byte{})
	f.Add([]byte{0x51, 0xC3, 0x10, 0x6E})

	f.Fuzz(func(t *testing.T, data []byte) {
		store := NewMemStore()
		_ = store.Append(data)
		_ = store.Sync()
		log, err := Open(store)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				return
			}
			t.Fatalf("Open: unexpected error class: %v", err)
		}
		err = log.Scan(func(seq uint64, recType uint32, payload []byte) error {
			if len(payload) > len(data) {
				t.Fatalf("payload length %d exceeds input length %d", len(payload), len(data))
			}
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Scan: unexpected error class: %v", err)
		}
	})
}
