package bench

import (
	"fmt"
	"io"

	"slice/internal/route"
	"slice/internal/sim"
)

// Fig3 regenerates "Directory service scaling": mean untar completion
// time per client process versus the number of concurrent processes, for
// the single-server N-MFS baseline and Slice with 1, 2, and 4 directory
// servers (mkdir switching with p = 1/N; §5 notes name hashing performs
// identically on this workload).
func Fig3(w io.Writer) error {
	header(w, "Figure 3: directory service scaling",
		"untar, 36,000 files/dirs and ≈250k NFS ops per process (simulated at\n"+
			"scale 0.05 and rescaled); 5 client nodes; mean completion seconds.")

	procs := []int{1, 2, 4, 8, 16, 24, 32}
	configs := []struct {
		name    string
		servers int
		base    bool
	}{
		{"N-MFS", 1, true},
		{"Slice-1", 1, false},
		{"Slice-2", 2, false},
		{"Slice-4", 4, false},
	}

	t := newTable(append([]string{"processes"}, names(configs)...)...)
	for _, p := range procs {
		row := []string{fmt.Sprintf("%d", p)}
		for _, cfg := range configs {
			res := sim.RunUntar(sim.UntarConfig{
				DirServers: cfg.servers,
				Baseline:   cfg.base,
				Processes:  p,
				Kind:       route.MkdirSwitching,
				P:          1 / float64(cfg.servers),
			})
			row = append(row, fmt.Sprintf("%.0fs", res.MeanLatency))
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "\n  Shape checks: N-MFS wins at 1 process (no journaling) but its single")
	fmt.Fprintln(w, "  CPU saturates; Slice-N latency stays flat N× longer (each directory")
	fmt.Fprintln(w, "  server saturates at ≈6000 ops/s) — the crossovers of Figure 3.")
	return nil
}

func names(configs []struct {
	name    string
	servers int
	base    bool
}) []string {
	out := make([]string, len(configs))
	for i, c := range configs {
		out[i] = c.name
	}
	return out
}

// Fig4 regenerates "Impact of affinity for mkdir switching": mean untar
// completion time versus directory affinity (1-p), for 1, 4, 8, and 16
// client processes against 4 directory servers on 4 client nodes.
func Fig4(w io.Writer) error {
	header(w, "Figure 4: impact of directory affinity (mkdir switching)",
		"4 directory servers, 4 client nodes; X is the probability 1-p that a\n"+
			"new directory stays on its parent's server.")

	affinities := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0}
	procs := []int{1, 4, 8, 16}

	cols := []string{"affinity"}
	for _, p := range procs {
		cols = append(cols, fmt.Sprintf("%d proc", p))
	}
	t := newTable(cols...)
	for _, a := range affinities {
		row := []string{fmt.Sprintf("%.0f%%", a*100)}
		for _, p := range procs {
			res := sim.RunUntar(sim.UntarConfig{
				DirServers:  4,
				Processes:   p,
				ClientNodes: 4,
				Kind:        route.MkdirSwitching,
				P:           1 - a,
			})
			row = append(row, fmt.Sprintf("%.0fs", res.MeanLatency))
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "\n  Shape checks: light load is flat in affinity; under load, moderate")
	fmt.Fprintln(w, "  affinity helps slightly (fewer two-site operations) while affinity→100%")
	fmt.Fprintln(w, "  collapses every subtree onto the root's server and degrades sharply —")
	fmt.Fprintln(w, "  balanced distributions need <20% of mkdirs redirected (§5).")
	return nil
}

// sfsConfigs are the Figure 5/6 lines.
var sfsConfigs = []struct {
	name  string
	nodes int
	base  bool
}{
	{"NFS", 1, true},
	{"Slice-1", 1, false},
	{"Slice-2", 2, false},
	{"Slice-4", 4, false},
	{"Slice-8", 8, false},
}

var sfsOffered = []float64{250, 500, 1000, 1500, 2000, 3000, 4000, 5000, 6000, 7000, 8000}

// Fig5 regenerates "SPECsfs97 throughput at saturation": delivered IOPS
// versus offered load for the NFS baseline and Slice with 1-8 storage
// nodes (1 directory server, 2 small-file servers).
func Fig5(w io.Writer) error {
	header(w, "Figure 5: SPECsfs97 delivered throughput (IOPS)",
		"Open-loop SPECsfs97 mix; file set self-scales at 10MB per op/s.\n"+
			"Paper saturation points: NFS ≈850 IOPS; Slice-8 ≈6600 IOPS (64 disks).")

	cols := []string{"offered"}
	for _, c := range sfsConfigs {
		cols = append(cols, c.name)
	}
	t := newTable(cols...)
	for _, off := range sfsOffered {
		row := []string{fmt.Sprintf("%.0f", off)}
		for _, c := range sfsConfigs {
			res := sim.RunSfs(sim.SfsConfig{
				StorageNodes: c.nodes, Baseline: c.base, OfferedIOPS: off,
			})
			row = append(row, fmt.Sprintf("%.0f", res.DeliveredIOPS))
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "\n  Shape checks: every line tracks offered load then plateaus; the")
	fmt.Fprintln(w, "  baseline saturates ≈850; Slice-1 slightly higher (faster directory")
	fmt.Fprintln(w, "  ops); Slice saturation scales with storage nodes to ≈6600 at N=8,")
	fmt.Fprintln(w, "  bound by disk arms — Figure 5's family of curves.")
	return nil
}

// Fig6 regenerates "SPECsfs97 latency": mean response time versus
// delivered throughput for the same configurations, with the latency jump
// where the ensemble overflows its 1 GB small-file cache. The EMC Celerra
// 506 reference from spec.org (4Q99) is quoted for context, as in the
// paper.
func Fig6(w io.Writer) error {
	header(w, "Figure 6: SPECsfs97 latency vs delivered throughput",
		"Mean response time (ms) at each delivered load; the knee where each\n"+
			"line turns up is its Figure 5 saturation point.")

	for _, c := range sfsConfigs {
		fmt.Fprintf(w, "  %s:\n", c.name)
		t := newTable("delivered IOPS", "latency ms", "cache miss factor")
		for _, off := range sfsOffered {
			res := sim.RunSfs(sim.SfsConfig{
				StorageNodes: c.nodes, Baseline: c.base, OfferedIOPS: off,
			})
			t.addf("%.0f|%.2f|%.2f", res.DeliveredIOPS, res.MeanLatencyMs, res.MissFactor)
			if res.DeliveredIOPS < off*0.7 {
				break // deep in overload; the curve is vertical here
			}
		}
		t.write(w)
	}
	fmt.Fprintln(w, "\n  Reference (vendor-reported, spec.org 4Q99): EMC Celerra 506,")
	fmt.Fprintln(w, "  32 data disks + 4GB cache — better latency and throughput than the")
	fmt.Fprintln(w, "  nearest Slice configuration (Slice-4/32 disks), but via eight separate")
	fmt.Fprintln(w, "  volumes; all Slice configurations serve one unified volume (§5).")
	fmt.Fprintln(w, "  Shape checks: latency flat below saturation, rises past the cache")
	fmt.Fprintln(w, "  overflow, and turns vertical at each configuration's knee.")
	return nil
}
