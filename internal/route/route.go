// Package route implements the Slice request routing policies (§3): the
// compact routing tables mapping logical server sites to physical servers,
// the threshold policy separating small-file I/O from bulk I/O, static and
// mirrored striping placement for bulk I/O, and the two name-space
// policies, mkdir switching and name hashing.
//
// The same policy code drives both the live µproxy (internal/proxy) and
// the discrete-event performance simulator (internal/sim), so the
// experiments measure the behaviour of the code that actually routes
// requests.
package route

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"

	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/replica"
)

// Table maps logical server site IDs to physical server addresses. The
// number of logical sites fixes the table size and the minimum granularity
// of rebalancing (§3.3.1); multiple logical sites may map to one physical
// server. Tables are soft state in the µproxy: the mapping is determined
// externally, and Swap installs a new binding without disturbing readers.
//
// Lookups are routing hot path — every datagram through a µproxy resolves
// at least one table — so the binding is published as an immutable
// snapshot behind an atomic pointer: readers never take a lock and never
// contend with each other; Swap installs a fresh snapshot.
type Table struct {
	mu    sync.Mutex // serializes writers (Swap)
	state atomic.Pointer[tableState]
}

// tableState is one immutable logical→physical binding generation. A
// snapshot carries the open transition's pending binding too, so one
// atomic load gives the data path a consistent (current, pending) pair.
type tableState struct {
	sites   []netsim.Addr // logical -> physical; never mutated once stored
	ring    []ringPoint   // non-nil: consistent-hash placement (transition.go)
	next    *pendingState // open transition's pending binding (nil: none)
	version uint64
}

// ErrEmptyTable is returned when routing through a table with no sites.
var ErrEmptyTable = errors.New("route: empty table")

// NewTable builds a table with the given number of logical sites bound
// round-robin over the physical servers. logical < len(physical) is
// raised to len(physical) so that every server is reachable.
func NewTable(logical int, physical []netsim.Addr) *Table {
	if logical < len(physical) {
		logical = len(physical)
	}
	t := &Table{}
	t.bind(logical, physical, 1)
	return t
}

func (t *Table) bind(logical int, physical []netsim.Addr, version uint64) {
	st := &tableState{version: version}
	if len(physical) > 0 {
		sites := make([]netsim.Addr, logical)
		for i := range sites {
			sites[i] = physical[i%len(physical)]
		}
		st.sites = sites
	}
	t.state.Store(st)
}

// Swap rebinds the table to a new physical server set, preserving the
// number of logical sites. This is the reconfiguration step of §3.3.1:
// after adding or removing a server, only the logical→physical binding
// changes; request keys keep hashing to the same logical sites. In-flight
// lookups keep reading the snapshot they loaded. Swap abandons any open
// transition (failover rebinds outrank a background migration, whose
// epoch-guarded Commit then fails cleanly).
func (t *Table) Swap(physical []netsim.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.state.Load()
	if cur.ring != nil {
		sites := append([]netsim.Addr(nil), physical...)
		t.state.Store(&tableState{sites: sites, ring: buildRing(sites), version: cur.version + 1})
		return
	}
	t.bind(len(cur.sites), physical, cur.version+1)
}

// NumLogical returns the number of logical sites.
func (t *Table) NumLogical() int {
	return len(t.state.Load().sites)
}

// Version returns the table generation, incremented by every Swap.
func (t *Table) Version() uint64 {
	return t.state.Load().version
}

// Site returns the logical site for a 64-bit key.
func (t *Table) Site(key uint64) uint32 {
	st := t.state.Load()
	if len(st.sites) == 0 {
		return 0
	}
	if st.ring != nil {
		return ringSite(st.ring, key)
	}
	return uint32(key % uint64(len(st.sites)))
}

// Lookup returns the physical address bound to a logical site.
func (t *Table) Lookup(site uint32) (netsim.Addr, error) {
	sites := t.state.Load().sites
	if len(sites) == 0 {
		return netsim.Addr{}, ErrEmptyTable
	}
	return sites[int(site)%len(sites)], nil
}

// Route maps a key to a physical address in one step (one snapshot load:
// the site choice and the address resolve against the same generation).
func (t *Table) Route(key uint64) (netsim.Addr, error) {
	st := t.state.Load()
	if len(st.sites) == 0 {
		return netsim.Addr{}, ErrEmptyTable
	}
	if st.ring != nil {
		return st.sites[int(ringSite(st.ring, key))%len(st.sites)], nil
	}
	return st.sites[int(uint32(key%uint64(len(st.sites))))%len(st.sites)], nil
}

// Physical returns a copy of the current logical→physical binding.
func (t *Table) Physical() []netsim.Addr {
	sites := t.state.Load().sites
	out := make([]netsim.Addr, len(sites))
	copy(out, sites)
	return out
}

// NumPhysical returns the number of distinct physical addresses bound in
// the table — the real array width when several logical sites share a
// node.
func (t *Table) NumPhysical() int {
	sites := t.state.Load().sites
	seen := make(map[netsim.Addr]struct{}, len(sites))
	for _, a := range sites {
		seen[a] = struct{}{}
	}
	return len(seen)
}

// ------------------------------------------------------------- I/O policy

// Defaults for the I/O routing policy, from §3.1 and §5 of the paper.
const (
	// DefaultThreshold is the small-file threshold offset: I/O below this
	// offset goes to small-file servers, at or above it to storage nodes.
	DefaultThreshold = 64 * 1024
	// DefaultStripeUnit is the striping granularity for bulk I/O.
	DefaultStripeUnit = 32 * 1024
)

// IOTarget describes where one I/O request (or one fragment of it) goes.
type IOTarget struct {
	Addr  netsim.Addr
	Small bool // true if the target is a small-file server
}

// IOPolicy routes read/write/commit traffic. It separates small-file
// traffic from bulk I/O at a fixed threshold offset and declusters bulk
// blocks across the storage array with striping, optionally mirrored.
//
// With Replicas set, the Storage table is built over replica-group
// PRIMARIES only: placement still resolves one address per stripe, and
// the replica map expands it to the whole group underneath — writes
// must reach every member (WriteTargets does the expansion), while the
// read-side choice among members belongs to the µproxy, which alone
// knows which objects are dirty.
type IOPolicy struct {
	Threshold  uint64       // small-file threshold offset in bytes
	StripeUnit uint64       // bulk striping unit in bytes
	SmallFile  *Table       // small-file servers (nil disables separation)
	Storage    *Table       // storage nodes (group primaries when replicated)
	Replicas   *replica.Map // k-way groups under Storage (nil: none)
}

// NewIOPolicy returns an I/O policy with default threshold and stripe unit.
func NewIOPolicy(smallFile, storage *Table) *IOPolicy {
	return &IOPolicy{
		Threshold:  DefaultThreshold,
		StripeUnit: DefaultStripeUnit,
		SmallFile:  smallFile,
		Storage:    storage,
	}
}

// SmallFileTarget reports whether an I/O at offset on fh routes to a
// small-file server, per the fixed-threshold policy: small-file servers
// receive all I/O below the threshold, even on large files (§3.1).
func (p *IOPolicy) SmallFileTarget(offset uint64) bool {
	return p.SmallFile != nil && offset < p.Threshold
}

// SmallFileServer selects the small-file server for fh, keyed on the
// handle so a file's small-file blocks always live at one site.
func (p *IOPolicy) SmallFileServer(fh fhandle.Handle) (netsim.Addr, error) {
	if p.SmallFile == nil {
		return netsim.Addr{}, ErrEmptyTable
	}
	return p.SmallFile.Route(fhandle.HandleKey(fh))
}

// WindowFor sizes a client's bulk-I/O window: stripe width × the
// per-node queue depth, so a full window keeps every storage node
// perNode requests deep. An empty table yields perNode (no fan-out to
// exploit, but pipelining one node still hides round-trip latency).
func (p *IOPolicy) WindowFor(perNode int) int {
	if perNode < 1 {
		perNode = 1
	}
	width := 1
	if p.Storage != nil {
		if n := p.Storage.NumPhysical(); n > width {
			width = n
		}
	}
	return width * perNode
}

// StripeIndex returns the stripe unit index of a byte offset.
func (p *IOPolicy) StripeIndex(offset uint64) uint64 {
	if p.StripeUnit == 0 {
		return 0
	}
	return offset / p.StripeUnit
}

// placementKey spreads files across the array so all files do not start on
// storage node 0.
func placementKey(fh fhandle.Handle, stripe uint64) uint64 {
	return fhandle.HandleKey(fh) + stripe
}

// StorageSites returns the logical storage sites holding the given stripe
// of fh: one site for unmirrored files, MirrorDegree consecutive sites for
// mirrored files (§3.1, mirrored striping).
func (p *IOPolicy) StorageSites(fh fhandle.Handle, stripe uint64) []uint32 {
	n := p.Storage.NumLogical()
	if n == 0 {
		return nil
	}
	base := p.Storage.Site(placementKey(fh, stripe))
	degree := 1
	if fh.Mirrored() {
		degree = int(fh.MirrorDegree)
		if degree > n {
			degree = n
		}
	}
	sites := make([]uint32, degree)
	for i := range sites {
		sites[i] = uint32((int(base) + i) % n)
	}
	return sites
}

// WriteTargets returns every storage node that must receive a write of the
// given stripe: all replicas for mirrored files, and — when the array is
// replicated — every member of each resolved site's replica group. While
// the storage table has an open transition the result is the union of the
// current and pending bindings' targets (double-writing: the migration
// copier never chases bytes written behind it, and an abort loses
// nothing because the old binding saw every write too).
func (p *IOPolicy) WriteTargets(fh fhandle.Handle, stripe uint64) ([]netsim.Addr, error) {
	sites := p.StorageSites(fh, stripe)
	if len(sites) == 0 {
		return nil, ErrEmptyTable
	}
	addrs := make([]netsim.Addr, 0, len(sites))
	for _, s := range sites {
		a, err := p.Storage.Lookup(s)
		if err != nil {
			return nil, err
		}
		if g, ok := p.Replicas.GroupOf(a); ok {
			addrs = append(addrs, g.Members...)
			continue
		}
		addrs = append(addrs, a)
	}
	addrs = p.appendPendingTargets(addrs, fh, stripe)
	return dedupAddrs(addrs), nil
}

// appendPendingTargets adds the pending binding's targets for the
// stripe when a transition is open. The pending replica map (when the
// transition carries one) expands pending primaries; otherwise the
// current map does.
func (p *IOPolicy) appendPendingTargets(addrs []netsim.Addr, fh fhandle.Handle, stripe uint64) []netsim.Addr {
	next := p.Storage.state.Load().next
	if next == nil || len(next.sites) == 0 {
		return addrs
	}
	n := len(next.sites)
	key := placementKey(fh, stripe)
	var base uint32
	if next.ring != nil {
		base = ringSite(next.ring, key)
	} else {
		base = uint32(key % uint64(n))
	}
	degree := 1
	if fh.Mirrored() {
		degree = int(fh.MirrorDegree)
		if degree > n {
			degree = n
		}
	}
	reps := next.reps
	if reps == nil {
		reps = p.Replicas
	}
	for i := 0; i < degree; i++ {
		a := next.sites[(int(base)+i)%n]
		if g, ok := reps.GroupOf(a); ok {
			addrs = append(addrs, g.Members...)
			continue
		}
		addrs = append(addrs, a)
	}
	return addrs
}

// dedupAddrs removes repeats in place, preserving order (mirrored sites
// wrapping a small array can resolve to one node more than once).
func dedupAddrs(addrs []netsim.Addr) []netsim.Addr {
	out := addrs[:0]
	for _, a := range addrs {
		dup := false
		for _, b := range out {
			if a == b {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// ReadGroup resolves the replica group holding fh's stripe. ok is false
// when the array is unreplicated (read from ReadTarget's answer as
// always).
func (p *IOPolicy) ReadGroup(fh fhandle.Handle, stripe uint64) (replica.Group, bool) {
	if !p.Replicas.Replicated() {
		return replica.Group{}, false
	}
	a, err := p.ReadTarget(fh, stripe)
	if err != nil {
		return replica.Group{}, false
	}
	return p.Replicas.GroupOf(a)
}

// ReadTarget returns the storage node to read the given stripe from. For
// mirrored files it alternates between replicas to balance load across the
// mirrors, as the prototype's client µproxies do. The replica choice mixes
// the stripe index through a multiplicative hash: a simple stripe%degree
// alternation correlates with the striping function itself (both advance
// by one per stripe) and would concentrate all reads on half the array.
func (p *IOPolicy) ReadTarget(fh fhandle.Handle, stripe uint64) (netsim.Addr, error) {
	sites := p.StorageSites(fh, stripe)
	if len(sites) == 0 {
		return netsim.Addr{}, ErrEmptyTable
	}
	replica := (stripe * 0x9E3779B97F4A7C15) >> 32 % uint64(len(sites))
	return p.Storage.Lookup(sites[replica])
}

// SpanStripes reports the stripe indices [first, last] covered by an I/O
// of count bytes at offset.
func (p *IOPolicy) SpanStripes(offset uint64, count uint32) (uint64, uint64) {
	if count == 0 {
		s := p.StripeIndex(offset)
		return s, s
	}
	return p.StripeIndex(offset), p.StripeIndex(offset + uint64(count) - 1)
}

// ------------------------------------------------------------ name policy

// NameKind selects the name-space routing policy.
type NameKind int

// Name-space policies of §3.2.
const (
	// MkdirSwitching routes name operations to the parent directory's
	// site, except that each mkdir is redirected with probability P to a
	// site chosen by hashing (parent, name).
	MkdirSwitching NameKind = iota
	// NameHashing routes every name operation by a hash of the name and
	// its position in the tree, spreading each directory's entries over
	// all sites.
	NameHashing
)

// String names the policy.
func (k NameKind) String() string {
	if k == NameHashing {
		return "name-hashing"
	}
	return "mkdir-switching"
}

// NamePolicy routes name-space and attribute operations to directory
// servers.
type NamePolicy struct {
	Kind NameKind
	// P is the mkdir redirection probability (mkdir switching only).
	// Directory affinity is 1-P.
	P float64
	// Dirs is the directory server table.
	Dirs *Table

	redirects atomic.Uint64 // mkdirs redirected away from the parent site
	mkdirs    atomic.Uint64
}

// NewNamePolicy builds a name routing policy over the directory table.
func NewNamePolicy(kind NameKind, p float64, dirs *Table) *NamePolicy {
	return &NamePolicy{Kind: kind, P: p, Dirs: dirs}
}

// redirectDecision makes the probability-P choice for a mkdir
// deterministically from (parent, name), so retransmissions of the same
// request route identically. The low 32 bits of the name key are compared
// against P scaled to 2^32.
func (np *NamePolicy) redirectDecision(parent fhandle.Handle, name string) bool {
	if np.P <= 0 {
		return false
	}
	if np.P >= 1 {
		return true
	}
	key := fhandle.NameKey(parent, name)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], key)
	// Use an independent portion of the hash from the one used for site
	// selection, so the redirect decision and the target site are not
	// correlated.
	sample := binary.BigEndian.Uint32(b[:4])
	return float64(sample) < np.P*(1<<32)
}

// RedirectStats reports (mkdirs seen, mkdirs redirected).
func (np *NamePolicy) RedirectStats() (uint64, uint64) {
	return np.mkdirs.Load(), np.redirects.Load()
}

// SiteFor returns the logical directory site for a parsed request. The
// second result reports whether this mkdir was redirected away from its
// parent's site (an "orphan" placement, §3.3.2).
func (np *NamePolicy) SiteFor(info *nfsproto.RequestInfo) (uint32, bool) {
	switch np.Kind {
	case NameHashing:
		return np.siteNameHashing(info), false
	default:
		return np.siteMkdirSwitching(info)
	}
}

func (np *NamePolicy) siteMkdirSwitching(info *nfsproto.RequestInfo) (uint32, bool) {
	// Route by the owning site recorded in the parent handle; the
	// directory server placed it there at create time (fixed placement).
	// LINK's new entry lives under its target directory (the second
	// handle), not under the linked file's site.
	parent := info.FH
	if info.Proc == nfsproto.ProcLink && info.HasFH2 {
		parent = info.FH2
	}
	parentSite := parent.Site % uint32(max(1, np.Dirs.NumLogical()))
	if info.Proc == nfsproto.ProcMkdir {
		np.mkdirs.Add(1)
		if np.redirectDecision(info.FH, info.Name) {
			site := np.Dirs.Site(fhandle.NameKey(info.FH, info.Name))
			if site != parentSite {
				np.redirects.Add(1)
				return site, true
			}
			return site, false
		}
	}
	return parentSite, false
}

func (np *NamePolicy) siteNameHashing(info *nfsproto.RequestInfo) uint32 {
	switch info.Proc {
	case nfsproto.ProcLookup, nfsproto.ProcCreate, nfsproto.ProcMkdir,
		nfsproto.ProcSymlink, nfsproto.ProcRemove, nfsproto.ProcRmdir:
		// Conflicting operations on a name entry hash to the same site
		// and serialize on its hash chain.
		return np.Dirs.Site(fhandle.NameKey(info.FH, info.Name))
	case nfsproto.ProcRename:
		// Route to the source entry's site; the server coordinates with
		// the destination site (implemented as link + remove, §4.3).
		return np.Dirs.Site(fhandle.NameKey(info.FH, info.Name))
	case nfsproto.ProcLink:
		// New name entry site.
		return np.Dirs.Site(fhandle.NameKey(info.FH2, info.Name2))
	default:
		// Handle-keyed operations (getattr/setattr/access/readdir) go to
		// the attribute cell's owner site recorded in the handle.
		return info.FH.Site % uint32(max(1, np.Dirs.NumLogical()))
	}
}

// AddrFor routes a request to a physical directory server.
func (np *NamePolicy) AddrFor(info *nfsproto.RequestInfo) (netsim.Addr, error) {
	site, _ := np.SiteFor(info)
	return np.Dirs.Lookup(site)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
