package xdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		e := NewEncoder(8)
		e.PutUint32(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Uint32()
		return err == nil && got == v && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		e := NewEncoder(8)
		e.PutUint64(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Uint64()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	for _, v := range []int64{0, -1, 1, -1 << 62, 1<<62 - 1} {
		e := NewEncoder(8)
		e.PutInt64(v)
		got, err := NewDecoder(e.Bytes()).Int64()
		if err != nil || got != v {
			t.Fatalf("Int64(%d) = %d, %v", v, got, err)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if len(s) > MaxOpaque {
			return true
		}
		e := NewEncoder(len(s) + 8)
		e.PutString(s)
		if e.Len()%4 != 0 {
			return false
		}
		got, err := NewDecoder(e.Bytes()).String()
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpaqueRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		if len(p) > MaxOpaque {
			return true
		}
		e := NewEncoder(len(p) + 8)
		e.PutOpaque(p)
		got, err := NewDecoder(e.Bytes()).Opaque()
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedOpaquePadding(t *testing.T) {
	for n := 0; n < 9; n++ {
		e := NewEncoder(16)
		p := bytes.Repeat([]byte{0xAB}, n)
		e.PutFixedOpaque(p)
		if e.Len()%4 != 0 {
			t.Fatalf("len %d: encoded size %d not 4-aligned", n, e.Len())
		}
		got, err := NewDecoder(e.Bytes()).FixedOpaque(n)
		if err != nil || !bytes.Equal(got, p) {
			t.Fatalf("len %d: round trip failed: %v", n, err)
		}
	}
}

func TestBool(t *testing.T) {
	e := NewEncoder(8)
	e.PutBool(true)
	e.PutBool(false)
	d := NewDecoder(e.Bytes())
	if v, err := d.Bool(); err != nil || !v {
		t.Fatalf("want true, got %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v {
		t.Fatalf("want false, got %v, %v", v, err)
	}
}

func TestBoolRejectsBadValue(t *testing.T) {
	e := NewEncoder(4)
	e.PutUint32(7)
	if _, err := NewDecoder(e.Bytes()).Bool(); err == nil {
		t.Fatal("expected error for bool value 7")
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
	d = NewDecoder(nil)
	if _, err := d.Uint64(); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
	if _, err := d.String(); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
}

func TestOpaqueRejectsHugeLength(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(MaxOpaque + 1)
	if _, err := NewDecoder(e.Bytes()).Opaque(); err == nil {
		t.Fatal("expected error for oversized opaque")
	}
}

func TestOpaqueTruncatedBody(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(100) // length prefix with no body
	if _, err := NewDecoder(e.Bytes()).Opaque(); err == nil {
		t.Fatal("expected error for truncated opaque body")
	}
}

func TestSkip(t *testing.T) {
	e := NewEncoder(32)
	e.PutUint32(1)
	e.PutString("abc") // 4 + 3 + 1 pad = 8 bytes
	e.PutUint32(2)
	d := NewDecoder(e.Bytes())
	if _, err := d.Uint32(); err != nil {
		t.Fatal(err)
	}
	if err := d.Skip(4 + 3); err != nil { // skip string incl. prefix, pad-rounded
		t.Fatal(err)
	}
	v, err := d.Uint32()
	if err != nil || v != 2 {
		t.Fatalf("after skip: got %d, %v", v, err)
	}
}

func TestOffsetTracking(t *testing.T) {
	e := NewEncoder(32)
	e.PutUint32(10)
	e.PutUint64(20)
	d := NewDecoder(e.Bytes())
	if d.Offset() != 0 {
		t.Fatalf("offset = %d, want 0", d.Offset())
	}
	if _, err := d.Uint32(); err != nil {
		t.Fatal(err)
	}
	if d.Offset() != 4 {
		t.Fatalf("offset = %d, want 4", d.Offset())
	}
	if _, err := d.Uint64(); err != nil {
		t.Fatal(err)
	}
	if d.Offset() != 12 {
		t.Fatalf("offset = %d, want 12", d.Offset())
	}
}

func TestPutUint32At(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(0xAAAAAAAA)
	e.PutUint32(0xBBBBBBBB)
	buf := e.Bytes()
	if err := PutUint32At(buf, 4, 0x12345678); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(buf)
	v1, _ := d.Uint32()
	v2, _ := d.Uint32()
	if v1 != 0xAAAAAAAA || v2 != 0x12345678 {
		t.Fatalf("got %x %x", v1, v2)
	}
	if err := PutUint32At(buf, 6, 0); err == nil {
		t.Fatal("expected error writing past end")
	}
	if err := PutUint32At(buf, -1, 0); err == nil {
		t.Fatal("expected error for negative offset")
	}
}

func TestUintAt(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(0xCAFEBABE)
	d := NewDecoder(e.Bytes())
	v, err := d.UintAt(0)
	if err != nil || v != 0xCAFEBABE {
		t.Fatalf("UintAt = %x, %v", v, err)
	}
	if d.Offset() != 0 {
		t.Fatal("UintAt must not advance the decoder")
	}
	if _, err := d.UintAt(8); err == nil {
		t.Fatal("expected error past end")
	}
}

func TestSizes(t *testing.T) {
	if OpaqueSize(0) != 4 || OpaqueSize(1) != 8 || OpaqueSize(4) != 8 || OpaqueSize(5) != 12 {
		t.Fatalf("OpaqueSize wrong: %d %d %d %d",
			OpaqueSize(0), OpaqueSize(1), OpaqueSize(4), OpaqueSize(5))
	}
	if StringSize("abc") != 8 {
		t.Fatalf("StringSize(abc) = %d", StringSize("abc"))
	}
}

func TestCheckLen(t *testing.T) {
	if err := CheckLen(10, 10); err != nil {
		t.Fatal(err)
	}
	if err := CheckLen(11, 10); err == nil {
		t.Fatal("expected error")
	}
	if err := CheckLen(1<<31+1, -1); err == nil {
		t.Fatal("expected error for > MaxInt32")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("len after reset = %d", e.Len())
	}
	e.PutUint32(2)
	v, err := NewDecoder(e.Bytes()).Uint32()
	if err != nil || v != 2 {
		t.Fatalf("got %d, %v", v, err)
	}
}
