// Command slicebench regenerates the tables and figures of the paper's
// evaluation. Run with -exp all for the full report, or name a single
// experiment:
//
//	slicebench -exp table2     # bulk I/O bandwidth
//	slicebench -exp table3     # µproxy CPU cost per stage (live)
//	slicebench -exp fig3       # directory service scaling
//	slicebench -exp fig4       # mkdir-switching affinity sweep
//	slicebench -exp fig5       # SPECsfs97 delivered throughput
//	slicebench -exp fig6       # SPECsfs97 latency
//	slicebench -exp live       # live latency breakdown -> BENCH_live.json
//	slicebench -exp fleet      # µproxy fleet scale-out (-proxies caps the sweep)
//	slicebench -exp ablation-hash | ablation-threshold |
//	           ablation-placement | ablation-affinity-policy
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"slice/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+
		strings.Join(append([]string{"all"}, bench.Experiments...), ", "))
	liveOut := flag.String("live-out", "BENCH_live.json", "output path for the live experiment's JSON report")
	proxies := flag.Int("proxies", bench.FleetProxies, "largest fleet size the fleet experiment sweeps to (powers of two from 1)")
	flag.Parse()
	bench.LiveOut = *liveOut
	bench.FleetProxies = *proxies
	if err := bench.Run(*exp, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slicebench:", err)
		os.Exit(1)
	}
}
