package chaos

import (
	"testing"
	"time"

	"slice/internal/checksum"
	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/fhandle"
)

// proxyFlowOwner finds the fleet member that owns a client's flow for
// fh: probe with the cheapest call on that flow and see whose request
// counter moves. (The hash lives in internal/front; the test goes
// through the data path instead so it keeps working if the keying
// changes.)
func proxyFlowOwner(t *testing.T, e *ensemble.Ensemble, c *client.Client, fh fhandle.Handle) int {
	t.Helper()
	before := make([]uint64, len(e.Proxies))
	for i, p := range e.Proxies {
		before[i] = p.Stats().Requests
	}
	if _, err := c.GetAttr(fh); err != nil {
		t.Fatal(err)
	}
	for i, p := range e.Proxies {
		if p.Stats().Requests > before[i] {
			return i
		}
	}
	t.Fatal("no fleet member carried the probe request")
	return -1
}

// TestProxyKillMidUntar: one member of a two-proxy fleet is killed while
// an untar is streaming through it. The µproxy holds soft state only, so
// nothing needs recovering — the fleet swap remaps the victim's flows
// and every in-flight call reaches the sibling by ordinary
// retransmission. The untar must complete with all acknowledged entries
// present and the namespace fsck-clean.
func TestProxyKillMidUntar(t *testing.T) {
	e := newEnsemble(t, func(cfg *ensemble.Config) { cfg.Proxies = 2 })
	ch := e.Chaos()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	crashAt := make(chan struct{})
	crashed := make(chan struct{})
	var once bool
	done := make(chan struct{})
	var acked []Entry
	var untarErr error
	go func() {
		defer close(done)
		acked, untarErr = Untar(c, c.Root(), UntarConfig{
			Dirs: 16, Files: 48,
			OpBudget: 15 * time.Second,
			OnEntry: func(n int) {
				if n == 12 && !once {
					once = true
					// Pause until the kill lands so a fast machine cannot
					// finish the untar before the fault exists.
					close(crashAt)
					<-crashed
				}
			},
		})
	}()

	<-crashAt
	// Kill in two beats, as a real failure unfolds: the process dies
	// first (Close — requests to it now blackhole), and only once the
	// workload demonstrably hit the corpse does the front's failure
	// detection publish the membership swap (CrashProxy). In-flight calls
	// must ride their retransmissions onto the sibling.
	e.Proxies[1].Close()
	close(crashed)
	for deadline := time.Now().Add(10 * time.Second); c.Retransmissions() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("untar never hit the killed proxy")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ch.CrashProxy(1)

	<-done
	if untarErr != nil {
		t.Fatalf("untar did not survive the proxy kill: %v", untarErr)
	}
	if lost := VerifyAcked(c, 10*time.Second, acked); len(lost) != 0 {
		t.Fatalf("%d acknowledged entries lost across the proxy kill: %v", len(lost), lost)
	}
	if c.Retransmissions() == 0 {
		t.Fatal("workload saw no retransmissions (kill window not exercised)")
	}
	if e.Proxies[0].Stats().Requests == 0 {
		t.Fatal("surviving proxy carried no traffic")
	}
	FsckClean(t, e)
}

// TestProxyKillUnderWindowedBulkRead: the fleet member owning a bulk
// flow is killed in the middle of a windowed (readahead-pipelined) read
// of a committed striped file. The read must fail over mid-window and
// still return exactly the committed bytes — equal to what a serial
// reader sees — with the namespace fsck-clean.
func TestProxyKillUnderWindowedBulkRead(t *testing.T) {
	e := newEnsemble(t, func(cfg *ensemble.Config) {
		cfg.Proxies = 2
		cfg.StorageNodes = 4
	})
	ch := e.Chaos()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "fleet-bulk", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1536*1024)
	for i := range data {
		data[i] = byte(i*2654435761 + i>>11)
	}
	if err := c.WriteFile(fh, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(fh); err != nil {
		t.Fatal(err)
	}

	owner := proxyFlowOwner(t, e, c, fh)
	retrans := c.Retransmissions()

	// Same two-beat kill as the untar test, but against the one proxy
	// this flow hashes to — every chunk of the windowed read is pointed
	// at the corpse until the swap publishes, so the fan-out itself must
	// re-resolve per transmission to survive.
	e.Proxies[owner].Close()
	type readResult struct {
		got []byte
		err error
	}
	res := make(chan readResult, 1)
	go func() {
		got, err := c.ReadAll(fh)
		res <- readResult{got, err}
	}()
	time.Sleep(10 * time.Millisecond)
	ch.CrashProxy(owner)

	r := <-res
	if r.err != nil {
		t.Fatalf("windowed read did not survive the proxy kill: %v", r.err)
	}
	want := checksum.Sum(data)
	if len(r.got) != len(data) || checksum.Sum(r.got) != want {
		t.Fatalf("windowed read under kill: %d bytes sum %#x, want %d bytes sum %#x",
			len(r.got), checksum.Sum(r.got), len(data), want)
	}
	if c.Retransmissions() == retrans {
		t.Fatal("read completed without retransmission (kill window not exercised)")
	}

	// Re-reading after the kill settles must agree with the bytes read
	// through the fault window, on both reader paths.
	VerifyBytes(t, e, c, fh, data)
	FsckClean(t, e)
}
