package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
)

// The stats RPC program: the µproxy absorbs calls to this program
// addressed to the virtual server and answers them from the ensemble's
// Collector, so `slicectl stats` / `slicectl trace` aggregate a live
// deployment over the same wire the NFS traffic uses.
const (
	Program = 200401
	Version = 1

	ProcSnapshot = 1 // -> opaque JSON ClusterSnapshot
	ProcTraces   = 2 // args: u32 max -> opaque JSON []NamedSpan

	// Elastic-ensemble admin verbs, answered by the same stats plane.
	ProcRebalanceStatus = 3 // -> opaque JSON rebalance.Status
	ProcGrow            = 4 // args: u32 nodes -> opaque JSON ack
	ProcShrink          = 5 // args: u32 nodes -> opaque JSON ack
)

// Collector aggregates the registries (and tracers) of every component
// of an ensemble into cluster-wide snapshots.
type Collector struct {
	mu      sync.Mutex
	regs    []*Registry
	tracers []namedTracer
}

type namedTracer struct {
	name string
	t    *Tracer
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// AddRegistry registers a component's registry. A later registration
// with the same component name replaces the earlier one (a restarted
// component re-registers its fresh registry).
func (c *Collector) AddRegistry(r *Registry) {
	if r == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, old := range c.regs {
		if old.Component() == r.Component() {
			c.regs[i] = r
			return
		}
	}
	c.regs = append(c.regs, r)
}

// AddTracer registers a component's trace ring under name, replacing a
// previous registration of the same name.
func (c *Collector) AddTracer(name string, t *Tracer) {
	if t == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, old := range c.tracers {
		if old.name == name {
			c.tracers[i] = namedTracer{name: name, t: t}
			return
		}
	}
	c.tracers = append(c.tracers, namedTracer{name: name, t: t})
}

// ClusterSnapshot is the JSON form served to slicectl stats.
type ClusterSnapshot struct {
	Components []RegistrySnapshot `json:"components"`
}

// Snapshot copies every registered registry.
func (c *Collector) Snapshot() ClusterSnapshot {
	c.mu.Lock()
	regs := append([]*Registry(nil), c.regs...)
	c.mu.Unlock()
	var s ClusterSnapshot
	for _, r := range regs {
		s.Components = append(s.Components, r.Snapshot())
	}
	sort.Slice(s.Components, func(i, j int) bool {
		return s.Components[i].Component < s.Components[j].Component
	})
	return s
}

// SnapshotJSON serializes the cluster snapshot.
func (c *Collector) SnapshotJSON() []byte {
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		return []byte("{}")
	}
	return b
}

// NamedSpan attributes a completed span to the component that traced it.
type NamedSpan struct {
	Component string `json:"component"`
	SpanRecord
}

// Traces returns up to max recently completed spans across all
// registered tracers, newest first.
func (c *Collector) Traces(max int) []NamedSpan {
	c.mu.Lock()
	tracers := append([]namedTracer(nil), c.tracers...)
	c.mu.Unlock()
	var out []NamedSpan
	for _, nt := range tracers {
		for _, rec := range nt.t.Recent(max) {
			out = append(out, NamedSpan{Component: nt.name, SpanRecord: rec})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].End > out[j].End })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// TracesJSON serializes up to max recent spans.
func (c *Collector) TracesJSON(max int) []byte {
	b, err := json.Marshal(c.Traces(max))
	if err != nil {
		return []byte("[]")
	}
	return b
}

// WriteText writes the whole cluster snapshot in the text exposition
// format (the periodic dump of sliced/uproxyd and the /metrics page).
func (c *Collector) WriteText(w io.Writer) {
	for _, rs := range c.Snapshot().Components {
		rs.WriteText(w)
	}
}

// MergeOpClass folds every component's histogram of the given name into
// one cluster-wide snapshot (e.g. "nfs.lookup" across all directory
// servers).
func (s ClusterSnapshot) MergeOpClass(name string) HistSnapshot {
	var out HistSnapshot
	for _, comp := range s.Components {
		if h, ok := comp.Hists[name]; ok {
			out.Merge(h)
		}
	}
	return out
}

// MergeRole folds every component filling one role — the bare role name
// or its fleet-indexed instances ("uproxy", "uproxy[1]", ...) — into a
// single synthetic component named as. Per-instance snapshots stay in
// the cluster snapshot untouched; the aggregate is the fleet-wide view
// of a scaled-out role. Returns the aggregate and how many instances
// contributed.
func (s ClusterSnapshot) MergeRole(role, as string) (RegistrySnapshot, int) {
	out := RegistrySnapshot{Component: as, Hists: make(map[string]HistSnapshot)}
	n := 0
	for _, comp := range s.Components {
		if comp.Component != role && !strings.HasPrefix(comp.Component, role+"[") {
			continue
		}
		n++
		for name, h := range comp.Hists {
			m := out.Hists[name]
			m.Merge(h)
			out.Hists[name] = m
		}
	}
	return out, n
}

// Component returns the named component's snapshot, if present.
func (s ClusterSnapshot) Component(name string) (RegistrySnapshot, bool) {
	for _, comp := range s.Components {
		if comp.Component == name {
			return comp, true
		}
	}
	return RegistrySnapshot{}, false
}
