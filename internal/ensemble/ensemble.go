// Package ensemble assembles a complete Slice deployment on a netsim
// fabric: storage nodes, a block-service coordinator, directory servers,
// small-file servers, and the interposed µproxy presenting the whole
// ensemble as a single virtual NFS server (Figure 1 of the paper).
package ensemble

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"slice/internal/attr"
	"slice/internal/client"
	"slice/internal/coord"
	"slice/internal/dirsrv"
	"slice/internal/fhandle"
	"slice/internal/front"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/proxy"
	"slice/internal/rebalance"
	"slice/internal/replica"
	"slice/internal/route"
	"slice/internal/smallfile"
	"slice/internal/storage"
	"slice/internal/wal"
	"slice/internal/wire"
)

// Host numbering plan for the fabric.
const (
	HostVirtual   = 100 // virtual server of µproxy i at HostVirtual+i (no machine behind it)
	HostProxy     = 99  // µproxy i's own client ports at HostProxy-i
	HostCoord     = 90
	HostStorage0  = 10 // storage node i at HostStorage0+i
	HostDir0      = 30 // directory server i at HostDir0+i
	HostSmall0    = 50 // small-file server i at HostSmall0+i
	HostClient0   = 200
	ServicePort   = 2049
	CoordinatorPt = 3049
)

// MaxProxies bounds the fleet: proxy virtual hosts grow up from
// HostVirtual and their client-port hosts grow down from HostProxy, and
// both must stay clear of HostCoord.
const MaxProxies = 8

// proxyVirtual returns the virtual server address µproxy i presents.
func proxyVirtual(i int) netsim.Addr {
	return netsim.Addr{Host: HostVirtual + uint32(i), Port: ServicePort}
}

// proxyHost returns the host µproxy i binds its own client ports on.
func proxyHost(i int) uint32 { return HostProxy - uint32(i) }

// VirtualOf returns the virtual server address fleet member i presents —
// the fabric destination behind Gateways[i].
func (e *Ensemble) VirtualOf(i int) netsim.Addr { return proxyVirtual(i) }

// Config sizes and parameterizes an ensemble.
type Config struct {
	StorageNodes     int
	DirServers       int
	SmallFileServers int
	// Proxies sizes the µproxy fleet (default 1, max MaxProxies). Every
	// proxy interposes on its own virtual address over the same shared
	// routing tables; clients pick the proxy owning each flow through
	// the consistent-hash front.
	Proxies int
	// Coordinator enables the block-service coordinator.
	Coordinator bool
	// NameKind selects the name-space policy; MkdirP is the mkdir
	// redirection probability (mkdir switching only).
	NameKind route.NameKind
	MkdirP   float64
	// Threshold and StripeUnit parameterize the I/O policy; zero means
	// the route defaults.
	Threshold  uint64
	StripeUnit uint64
	// MirrorDegree >1 mirrors all newly created files.
	MirrorDegree uint8
	// Replication >1 partitions the storage nodes into consecutive
	// replica groups of that many members (Harmonia-style, PAPERS.md):
	// the routing tables address only each group's primary, the µproxy
	// fans every WRITE to the whole group and spreads clean reads across
	// members via its dirty set. StorageNodes should be a multiple of
	// Replication; a remainder folds into the last group.
	Replication int
	// StorageServiceTime, when positive, paces every storage node at one
	// NFS request per StorageServiceTime — the capacity model that makes
	// replica read scaling measurable on a single machine (the replica
	// peer program is never paced, so resync is not throttled).
	StorageServiceTime time.Duration
	// UseBlockMaps routes bulk I/O through coordinator block maps.
	UseBlockMaps bool
	// LogicalSites sets routing-table granularity (default: server count).
	LogicalSites int
	// CoordProbeAfter bounds how long an intention may sit pending before
	// the coordinator finishes the operation itself (0 = coord default).
	// Chaos tests shrink it so probes fire within the test budget.
	CoordProbeAfter time.Duration
	// ClientRPC tunes every client's RPC timeouts and retries; the zero
	// value keeps the oncrpc defaults. Chaos tests raise Retries so
	// clients ride out a component's crash-to-restart window.
	ClientRPC oncrpc.ClientConfig
	// Net configures the fabric (loss, latency).
	Net netsim.Config
	// Clock injects timestamps into all servers.
	Clock func() attr.Time
	// WritebackInterval for the µproxy attribute cache (0 = manual).
	WritebackInterval time.Duration
	// ProxyServiceTime, when positive, paces every fleet member at one
	// request per ProxyServiceTime (proxy.Config.ServiceTime): a
	// capacity model that makes fleet scale-out measurable on a single
	// machine. Zero keeps the inline fast path.
	ProxyServiceTime time.Duration
	// CapabilityKey, when set, enables the §2.2 secure-object model:
	// storage nodes verify keyed capabilities that the µproxy and
	// coordinator stamp into storage-bound handles. Clients bypassing
	// the µproxy are refused by the storage nodes.
	CapabilityKey []byte
	// TCPListen, when non-empty, exposes the ensemble on real TCP
	// sockets: one record-marked wire gateway per fleet member, member i
	// fronting proxy i's virtual address. "127.0.0.1:0" picks ephemeral
	// ports; a fixed port p assigns member i port p+i.
	TCPListen string
	// PortmapListen, when non-empty, starts an embedded portmapper
	// (program 100000 v2) that registers the NFS and MOUNT programs at
	// gateway 0's TCP port. Requires TCPListen.
	PortmapListen string
}

// Ensemble is a running Slice deployment.
type Ensemble struct {
	Net *netsim.Network
	// Virtual is µproxy 0's virtual address, the address single-proxy
	// code paths (gateways, examples) present to the outside.
	Virtual netsim.Addr

	Storage   []*storage.Node
	Dirs      []*dirsrv.Server
	DirLogs   []*wal.MemStore
	Small     []*smallfile.Server
	SmallLogs []*wal.MemStore
	Coord     *coord.Coordinator
	CoordLog  *wal.MemStore
	// Proxy is µproxy 0; Proxies is the whole fleet (a crashed member
	// is nil until restarted).
	Proxy   *proxy.Proxy
	Proxies []*proxy.Proxy

	StorageTable *route.Table
	DirTable     *route.Table
	SmallTable   *route.Table
	IOPolicy     *route.IOPolicy
	NamePolicy   *route.NamePolicy
	// Replicas is the k-way group map under StorageTable (nil when
	// Config.Replication <= 1). The table routes to primaries only.
	Replicas *replica.Map
	// Fleet is the versioned µproxy membership table; Front is the
	// consistent-hash ring over it that clients resolve flows through.
	Fleet *route.Fleet
	Front *front.Ring

	// Gateways are the per-member TCP wire gateways (empty without
	// Config.TCPListen); Portmap is the embedded portmapper (nil without
	// Config.PortmapListen).
	Gateways []*wire.Gateway
	Portmap  *wire.Portmap

	// Obs aggregates every component's histograms; Tracer archives the
	// µproxy's per-request spans. Both are always on — recording is one
	// atomic add, and chaos restarts re-register the same registries so
	// counts accumulate across failovers.
	Obs    *obs.Collector
	Tracer *obs.Tracer

	obsProxy   *obs.Registry
	obsProxies []*obs.Registry
	obsCoord   *obs.Registry
	obsDirs    []*obs.Registry
	obsSmall   []*obs.Registry
	obsStorage []*obs.Registry

	proxyTracers []*obs.Tracer

	Root       fhandle.Handle
	cfg        Config
	nextClient uint32

	// rebal is the lazily-built block-migration driver; adminMu orders
	// the async stats-plane grow/shrink verbs.
	rebalMu sync.Mutex
	rebal   *rebalance.Driver
	adminMu sync.Mutex
}

// New builds and starts an ensemble.
func New(cfg Config) (*Ensemble, error) {
	if cfg.StorageNodes <= 0 {
		cfg.StorageNodes = 1
	}
	if cfg.DirServers <= 0 {
		cfg.DirServers = 1
	}
	if cfg.Proxies <= 0 {
		cfg.Proxies = 1
	}
	if cfg.Proxies > MaxProxies {
		return nil, fmt.Errorf("ensemble: %d proxies exceeds the host plan's limit of %d", cfg.Proxies, MaxProxies)
	}
	e := &Ensemble{
		Net:     netsim.New(cfg.Net),
		Virtual: netsim.Addr{Host: HostVirtual, Port: ServicePort},
		Obs:     obs.NewCollector(),
		Tracer:  obs.NewTracer(512),
		cfg:     cfg,
	}
	e.Obs.AddTracer("uproxy", e.Tracer)

	// Storage nodes.
	var storageAddrs []netsim.Addr
	for i := 0; i < cfg.StorageNodes; i++ {
		addr := netsim.Addr{Host: HostStorage0 + uint32(i), Port: ServicePort}
		port, err := e.Net.Bind(addr)
		if err != nil {
			return nil, err
		}
		node := storage.NewNode(port, storage.NewObjectStore())
		if len(cfg.CapabilityKey) > 0 {
			node.RequireCapability(cfg.CapabilityKey)
		}
		if cfg.StorageServiceTime > 0 {
			node.SetServiceTime(cfg.StorageServiceTime)
		}
		if cfg.Replication > 1 {
			node.SetReplica(uint32(i/cfg.Replication), uint32(i%cfg.Replication))
		}
		reg := obs.NewRegistry(fmt.Sprintf("storage[%d]", i))
		node.SetObs(reg)
		e.Obs.AddRegistry(reg)
		e.obsStorage = append(e.obsStorage, reg)
		e.Storage = append(e.Storage, node)
		storageAddrs = append(storageAddrs, addr)
	}
	logical := cfg.LogicalSites
	tableAddrs := storageAddrs
	if cfg.Replication > 1 {
		// The storage table is built over group primaries only: placement
		// resolves to a primary, and the µproxy's replica map expands it
		// to the whole group underneath.
		e.Replicas = replica.NewMap(cfg.Replication, storageAddrs)
		tableAddrs = nil
		for _, g := range e.Replicas.Groups() {
			tableAddrs = append(tableAddrs, g.Members[0])
		}
	}
	e.StorageTable = route.NewTable(logical, tableAddrs)

	// Small-file servers.
	var smallAddrs []netsim.Addr
	for i := 0; i < cfg.SmallFileServers; i++ {
		addr := netsim.Addr{Host: HostSmall0 + uint32(i), Port: ServicePort}
		port, err := e.Net.Bind(addr)
		if err != nil {
			return nil, err
		}
		logStore := wal.NewMemStore()
		log, err := wal.Open(logStore)
		if err != nil {
			return nil, err
		}
		// Each small-file server's backing object lives on a storage
		// node chosen by its index (dataless managers, §2.3).
		backing := e.Storage[i%len(e.Storage)].Store()
		backID := storage.ObjectID(0x5F<<56 | uint64(i))
		st := smallfile.NewStore(backing, backID, log)
		srv := smallfile.NewServer(port, st)
		reg := obs.NewRegistry(fmt.Sprintf("smallfile[%d]", i))
		srv.SetObs(reg)
		e.Obs.AddRegistry(reg)
		e.obsSmall = append(e.obsSmall, reg)
		e.Small = append(e.Small, srv)
		e.SmallLogs = append(e.SmallLogs, logStore)
		smallAddrs = append(smallAddrs, addr)
	}
	if len(smallAddrs) > 0 {
		// Small files place by consistent hashing: adding a small-file
		// server moves only the names the ring assigns it (§12).
		e.SmallTable = route.NewRingTable(smallAddrs)
	}

	// Coordinator.
	if cfg.Coordinator {
		addr := netsim.Addr{Host: HostCoord, Port: CoordinatorPt}
		port, err := e.Net.Bind(addr)
		if err != nil {
			return nil, err
		}
		e.CoordLog = wal.NewMemStore()
		log, err := wal.Open(e.CoordLog)
		if err != nil {
			return nil, err
		}
		e.Coord = coord.New(port, coord.Config{
			Log:        log,
			Storage:    e.StorageTable,
			SmallFile:  e.SmallTable,
			Net:        e.Net,
			Host:       HostCoord,
			ProbeAfter: cfg.CoordProbeAfter,
			CapKey:     cfg.CapabilityKey,
		})
		e.obsCoord = obs.NewRegistry("coord")
		e.Coord.SetObs(e.obsCoord)
		e.Obs.AddRegistry(e.obsCoord)
	}

	// Directory servers.
	var dirAddrs []netsim.Addr
	for i := 0; i < cfg.DirServers; i++ {
		dirAddrs = append(dirAddrs, netsim.Addr{Host: HostDir0 + uint32(i), Port: ServicePort})
	}
	// The name space places by consistent hashing too, so directory-
	// server membership changes keep the minimal-movement property.
	e.DirTable = route.NewRingTable(dirAddrs)
	for i := 0; i < cfg.DirServers; i++ {
		port, err := e.Net.Bind(dirAddrs[i])
		if err != nil {
			return nil, err
		}
		logStore := wal.NewMemStore()
		log, err := wal.Open(logStore)
		if err != nil {
			return nil, err
		}
		d := dirsrv.New(port, dirsrv.Config{
			Site:         uint32(i),
			Volume:       1,
			Kind:         cfg.NameKind,
			Table:        e.DirTable,
			Log:          log,
			Net:          e.Net,
			Host:         HostDir0 + uint32(i),
			Clock:        cfg.Clock,
			MirrorDegree: cfg.MirrorDegree,
			UseMaps:      cfg.UseBlockMaps && cfg.Coordinator,
		})
		reg := obs.NewRegistry(fmt.Sprintf("dirsrv[%d]", i))
		d.SetObs(reg)
		e.Obs.AddRegistry(reg)
		e.obsDirs = append(e.obsDirs, reg)
		e.Dirs = append(e.Dirs, d)
		e.DirLogs = append(e.DirLogs, logStore)
	}

	// Volume root on site 0, shared with all sites for MOUNT.
	root, err := e.Dirs[0].CreateRoot()
	if err != nil {
		return nil, err
	}
	e.Root = root
	for _, d := range e.Dirs[1:] {
		d.SetRoot(root)
	}

	// Routing policies and the µproxy.
	e.IOPolicy = route.NewIOPolicy(e.SmallTable, e.StorageTable)
	e.IOPolicy.Replicas = e.Replicas
	if cfg.Threshold > 0 {
		e.IOPolicy.Threshold = cfg.Threshold
	}
	if cfg.StripeUnit > 0 {
		e.IOPolicy.StripeUnit = cfg.StripeUnit
	}
	if cfg.SmallFileServers == 0 {
		e.IOPolicy.SmallFile = nil
		e.IOPolicy.Threshold = 0
	}
	e.NamePolicy = route.NewNamePolicy(cfg.NameKind, cfg.MkdirP, e.DirTable)

	// The µproxy fleet: shared-nothing instances over the same routing
	// tables. Sharing the Table objects is what makes fleet-wide
	// reconfiguration coordinated — one Swap atomically moves every
	// proxy to the same route-table version.
	members := make([]route.ProxyMember, cfg.Proxies)
	for i := 0; i < cfg.Proxies; i++ {
		members[i] = route.ProxyMember{
			ID:      uint32(i),
			Virtual: proxyVirtual(i),
			Host:    proxyHost(i),
		}
	}
	e.Fleet = route.NewFleet(members)
	e.Front = front.NewRing(e.Fleet, 0)
	for i := 0; i < cfg.Proxies; i++ {
		reg, tracer := e.proxyObs(i)
		e.Proxies = append(e.Proxies, e.newProxy(i, reg, tracer))
	}
	e.Proxy = e.Proxies[0]

	// Real-wire serving: TCP gateways (one per fleet member) and the
	// embedded portmapper pointing real clients at gateway 0.
	if cfg.TCPListen != "" {
		for i := 0; i < cfg.Proxies; i++ {
			listen, err := memberListen(cfg.TCPListen, i)
			if err != nil {
				e.Close()
				return nil, err
			}
			gw, err := wire.NewGateway(listen, e.Net, proxyVirtual(i))
			if err != nil {
				e.Close()
				return nil, fmt.Errorf("ensemble: wire gateway %d: %w", i, err)
			}
			name := "wire"
			if i > 0 {
				name = fmt.Sprintf("wire[%d]", i)
			}
			reg := obs.NewRegistry(name)
			gw.SetObs(reg)
			e.Obs.AddRegistry(reg)
			e.Gateways = append(e.Gateways, gw)
		}
	}
	if cfg.PortmapListen != "" {
		if len(e.Gateways) == 0 {
			e.Close()
			return nil, fmt.Errorf("ensemble: PortmapListen requires TCPListen")
		}
		pm, err := wire.NewPortmap(cfg.PortmapListen)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("ensemble: portmap: %w", err)
		}
		port := e.Gateways[0].Port()
		pm.Register(nfsproto.Program, nfsproto.Version, nfsproto.IPProtoTCP, port)
		pm.Register(nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.IPProtoTCP, port)
		reg := obs.NewRegistry("portmap")
		pm.SetObs(reg)
		e.Obs.AddRegistry(reg)
		e.Portmap = pm
	}
	return e, nil
}

// memberListen derives fleet member i's TCP listen address from the
// configured one: an explicit port p maps to p+i, port 0 stays 0.
func memberListen(listen string, i int) (string, error) {
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		return "", fmt.Errorf("ensemble: bad TCPListen %q: %w", listen, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("ensemble: bad TCPListen port %q: %w", portStr, err)
	}
	if port != 0 {
		port += i
	}
	return net.JoinHostPort(host, strconv.Itoa(port)), nil
}

// NewFleet builds an ensemble fronted by n µproxies, with every other
// parameter at its cfg value.
func NewFleet(n int, cfg Config) (*Ensemble, error) {
	cfg.Proxies = n
	return New(cfg)
}

// proxyObs builds (or, across restarts, rebuilds) µproxy i's registry
// and tracer, registered with the collector under its stable name —
// proxy 0 keeps the bare "uproxy" name single-proxy tooling expects.
// AddRegistry/AddTracer replace same-name entries, so a restarted proxy
// reports under its old label.
func (e *Ensemble) proxyObs(i int) (*obs.Registry, *obs.Tracer) {
	name := "uproxy"
	if i > 0 {
		name = fmt.Sprintf("uproxy[%d]", i)
	}
	reg := obs.NewRegistry(name)
	e.Obs.AddRegistry(reg)
	if i == 0 {
		e.obsProxy = reg
	}
	for len(e.obsProxies) <= i {
		e.obsProxies = append(e.obsProxies, nil)
	}
	e.obsProxies[i] = reg
	for len(e.proxyTracers) <= i {
		e.proxyTracers = append(e.proxyTracers, nil)
	}
	if e.proxyTracers[i] == nil {
		if i == 0 {
			e.proxyTracers[0] = e.Tracer
		} else {
			e.proxyTracers[i] = obs.NewTracer(512)
			e.Obs.AddTracer(name, e.proxyTracers[i])
		}
	}
	return reg, e.proxyTracers[i]
}

// newProxy starts µproxy i on its slot in the host plan.
func (e *Ensemble) newProxy(i int, reg *obs.Registry, tracer *obs.Tracer) *proxy.Proxy {
	var coordAddr netsim.Addr
	if e.Coord != nil {
		coordAddr = e.Coord.Addr()
	}
	return proxy.New(proxy.Config{
		Net:               e.Net,
		Host:              proxyHost(i),
		Virtual:           proxyVirtual(i),
		ID:                uint32(i),
		IO:                e.IOPolicy,
		Names:             e.NamePolicy,
		Coord:             coordAddr,
		ServiceTime:       e.cfg.ProxyServiceTime,
		WritebackInterval: e.cfg.WritebackInterval,
		CapKey:            e.cfg.CapabilityKey,
		Obs:               reg,
		Tracer:            tracer,
		StatsFn:           e.serveStats,
	})
}

// serveStats answers the absorbed stats RPC program (obs.Program) from
// the ensemble's collector: snapshots and recent traces as opaque JSON.
func (e *Ensemble) serveStats(proc, arg uint32) []byte {
	switch proc {
	case obs.ProcSnapshot:
		return e.Obs.SnapshotJSON()
	case obs.ProcTraces:
		max := int(arg)
		if max <= 0 || max > 256 {
			max = 32
		}
		return e.Obs.TracesJSON(max)
	case obs.ProcRebalanceStatus:
		return e.Rebalancer().StatusJSON()
	case obs.ProcGrow:
		e.adminGrow(int(arg))
		return []byte(fmt.Sprintf(`{"started":true,"verb":"grow","nodes":%d}`, arg))
	case obs.ProcShrink:
		e.adminShrink(int(arg))
		return []byte(fmt.Sprintf(`{"started":true,"verb":"shrink","nodes":%d}`, arg))
	}
	return nil
}

// clientQueueDepth is the per-storage-node pipeline depth used to size
// client windows: window = array width × this depth (route.WindowFor).
const clientQueueDepth = 4

// NewClient creates and mounts a windowed client on a fresh host, its
// bulk-I/O window sized to the storage array width.
func (e *Ensemble) NewClient() (*client.Client, error) {
	return e.newClient(e.IOPolicy.WindowFor(clientQueueDepth))
}

// NewSerialClient creates and mounts a client on the fully serial
// (one-chunk-at-a-time) bulk path — the baseline the windowed path must
// stay byte-exact with.
func (e *Ensemble) NewSerialClient() (*client.Client, error) {
	return e.newClient(1)
}

func (e *Ensemble) newClient(window int) (*client.Client, error) {
	e.nextClient++
	reg := obs.NewRegistry(fmt.Sprintf("client[%d]", e.nextClient))
	e.Obs.AddRegistry(reg)
	c, err := client.New(client.Config{
		Net:        e.Net,
		Host:       HostClient0 + e.nextClient,
		Server:     e.Virtual,
		Threshold:  e.IOPolicy.Threshold,
		StripeUnit: e.IOPolicy.StripeUnit,
		RPC:        e.cfg.ClientRPC,
		Window:     window,
		Obs:        reg,
		Fleet:      e.Front,
	})
	if err != nil {
		return nil, err
	}
	if err := c.Mount(); err != nil {
		c.Close()
		return nil, fmt.Errorf("ensemble: mount: %w", err)
	}
	return c, nil
}

// Close stops every component.
func (e *Ensemble) Close() {
	if e.Portmap != nil {
		e.Portmap.Close()
	}
	for _, g := range e.Gateways {
		g.Close()
	}
	for _, p := range e.Proxies {
		if p != nil {
			p.Close()
		}
	}
	if e.Coord != nil {
		e.Coord.Close()
	}
	for _, d := range e.Dirs {
		d.Close()
	}
	for _, s := range e.Small {
		s.Close()
	}
	for _, n := range e.Storage {
		n.Close()
	}
	e.rebalMu.Lock()
	if e.rebal != nil {
		e.rebal.Close()
	}
	e.rebalMu.Unlock()
}
