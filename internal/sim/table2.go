package sim

import (
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/route"
)

// BulkConfig parameterizes the Table 2 experiment: sequential dd-style
// I/O on large files through the striping and mirroring policies.
type BulkConfig struct {
	StorageNodes int
	Clients      int
	Write        bool
	Mirrored     bool
	// Tuned selects the saturation-column client model (the client NFS
	// stack is not the bottleneck in those runs).
	Tuned bool
	// BytesPerClient is the per-client transfer (the paper used 1.25 GB;
	// a scaled transfer reaches steady state much sooner).
	BytesPerClient int64
	// BlockSize is the NFS transfer size (32 KB mount option in §5).
	BlockSize int
	// Window is the number of outstanding requests (read-ahead depth 4).
	Window int
}

func (c *BulkConfig) defaults() {
	if c.StorageNodes <= 0 {
		c.StorageNodes = 8
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.BytesPerClient <= 0 {
		c.BytesPerClient = 160 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 32 * 1024
	}
	if c.Window <= 0 {
		c.Window = 4
	}
}

// BulkResult reports achieved bandwidth.
type BulkResult struct {
	AggregateMBps float64
	PerClientMBps float64
	NodeUtilMax   float64
	ClientUtilMax float64
}

// RunBulk simulates the bulk-I/O pipeline: each client keeps Window
// 32KB transfers outstanding against the striped (optionally mirrored)
// file; blocks route to storage nodes through route.IOPolicy exactly as
// the µproxy routes them. Bandwidth is emergent from the queueing between
// client CPUs and storage-node streams.
func RunBulk(cfg BulkConfig) BulkResult {
	cfg.defaults()
	eng := NewEngine()

	// Stations.
	nodes := make([]*Station, cfg.StorageNodes)
	var addrs []netsim.Addr
	for i := range nodes {
		nodes[i] = NewStation(eng, "storage", 1)
		addrs = append(addrs, netsim.Addr{Host: uint32(10 + i), Port: 2049})
	}
	clients := make([]*Station, cfg.Clients)
	for i := range clients {
		clients[i] = NewStation(eng, "client", 1)
	}
	policy := route.NewIOPolicy(nil, route.NewTable(cfg.StorageNodes, addrs))
	policy.StripeUnit = uint64(cfg.BlockSize)

	// Per-byte costs.
	var clientPB, nodePB float64
	switch {
	case cfg.Tuned:
		clientPB = TunedClientPerByte
	case cfg.Write && cfg.Mirrored:
		clientPB = ClientMirrorWritePerByte
	case cfg.Write:
		clientPB = ClientWritePerByte
	case cfg.Mirrored:
		clientPB = ClientMirrorReadPerByte
	default:
		clientPB = ClientReadPerByte
	}
	if cfg.Write {
		nodePB = 1 / NodeSinkBW
	} else {
		nodePB = 1 / NodeSourceBW
		if cfg.Mirrored {
			nodePB /= MirrorReadSourceEff
		}
	}

	nodeIndex := make(map[netsim.Addr]int, len(addrs))
	for i, a := range addrs {
		nodeIndex[a] = i
	}

	blocksPerClient := int(cfg.BytesPerClient / int64(cfg.BlockSize))
	remaining := cfg.Clients
	var lastDone float64

	for c := 0; c < cfg.Clients; c++ {
		c := c
		fh := fhandle.Handle{Volume: 1, FileID: uint64(1000 + c), Type: 1, Gen: 1}
		if cfg.Mirrored {
			fh.MirrorDegree = 2
			fh.Flags = fhandle.FlagMirrored
		}
		next := 0
		inflight := 0
		var issue func()
		finishOne := func() {
			inflight--
			if next < blocksPerClient {
				issue()
			} else if inflight == 0 {
				remaining--
				if remaining == 0 {
					lastDone = eng.Now()
				}
			}
		}
		issue = func() {
			stripe := uint64(next)
			next++
			inflight++
			clientCost := float64(cfg.BlockSize) * clientPB
			nodeCost := float64(cfg.BlockSize) * nodePB
			clients[c].Visit(clientCost, func() {
				if cfg.Write {
					targets, err := policy.WriteTargets(fh, stripe)
					if err != nil {
						finishOne()
						return
					}
					// Mirrored writes fan out; the op completes when
					// every replica has absorbed the block.
					pendingReplicas := len(targets)
					for _, tgt := range targets {
						nodes[nodeIndex[tgt]].Visit(nodeCost, func() {
							pendingReplicas--
							if pendingReplicas == 0 {
								finishOne()
							}
						})
					}
				} else {
					tgt, err := policy.ReadTarget(fh, stripe)
					if err != nil {
						finishOne()
						return
					}
					nodes[nodeIndex[tgt]].Visit(nodeCost, finishOne)
				}
			})
		}
		for i := 0; i < cfg.Window && next < blocksPerClient; i++ {
			issue()
		}
	}

	eng.Run(0)
	elapsed := lastDone
	if elapsed <= 0 {
		elapsed = eng.Now()
	}
	total := float64(cfg.Clients) * float64(blocksPerClient) * float64(cfg.BlockSize)
	res := BulkResult{
		AggregateMBps: total / elapsed / 1e6,
		PerClientMBps: total / elapsed / 1e6 / float64(cfg.Clients),
	}
	for _, n := range nodes {
		if u := n.Utilization(); u > res.NodeUtilMax {
			res.NodeUtilMax = u
		}
	}
	for _, c := range clients {
		if u := c.Utilization(); u > res.ClientUtilMax {
			res.ClientUtilMax = u
		}
	}
	return res
}
