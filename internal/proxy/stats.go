package proxy

import "sync/atomic"

// StageStats breaks down µproxy CPU time by processing stage, mirroring
// the iprobe measurement of Table 3 in the paper:
//
//	packet interception — matching datagrams against the virtual server
//	packet decode       — locating RPC/NFS fields in the raw bytes
//	redirection/rewrite — address/port replacement and checksum repair
//	soft state logic    — pending records, attribute updates, response
//	                      pairing
//
// Times are accumulated in nanoseconds with atomics; the benchmark harness
// reports each stage as a fraction of total CPU.
type StageStats struct {
	Intercepted uint64 // datagrams examined by the tap
	Requests    uint64 // requests consumed and routed
	Responses   uint64 // responses consumed and returned to clients
	Initiated   uint64 // requests the µproxy initiated itself
	Absorbed    uint64 // requests absorbed (answered without forwarding)
	Dropped     uint64 // malformed or unroutable datagrams dropped

	InterceptNS uint64
	DecodeNS    uint64
	RewriteNS   uint64
	SoftStateNS uint64
}

// stageCounters is the internal atomic form of StageStats.
type stageCounters struct {
	intercepted atomic.Uint64
	requests    atomic.Uint64
	responses   atomic.Uint64
	initiated   atomic.Uint64
	absorbed    atomic.Uint64
	dropped     atomic.Uint64

	interceptNS atomic.Uint64
	decodeNS    atomic.Uint64
	rewriteNS   atomic.Uint64
	softStateNS atomic.Uint64
}

func (c *stageCounters) snapshot() StageStats {
	return StageStats{
		Intercepted: c.intercepted.Load(),
		Requests:    c.requests.Load(),
		Responses:   c.responses.Load(),
		Initiated:   c.initiated.Load(),
		Absorbed:    c.absorbed.Load(),
		Dropped:     c.dropped.Load(),
		InterceptNS: c.interceptNS.Load(),
		DecodeNS:    c.decodeNS.Load(),
		RewriteNS:   c.rewriteNS.Load(),
		SoftStateNS: c.softStateNS.Load(),
	}
}

// TotalNS returns the µproxy CPU time across all stages.
func (s StageStats) TotalNS() uint64 {
	return s.InterceptNS + s.DecodeNS + s.RewriteNS + s.SoftStateNS
}

// ShardStat is the occupancy and hit accounting of one soft-state shard:
// its slice of the pending-request table, the attribute cache, and the
// name cache. Skew across shards indicates a hot spot (a client or file
// population hashing unevenly); uniformly high occupancy indicates the
// caches are undersized.
type ShardStat struct {
	Pending     int    // in-flight request records
	AttrEntries int    // resident attribute-cache entries
	AttrHits    uint64 // attribute-cache hits since start
	AttrMisses  uint64 // attribute-cache misses since start
	NameEntries int    // resident name-cache entries
	NameHits    uint64 // name-cache hits since start
	NameMisses  uint64 // name-cache misses since start
}

// ShardStats snapshots every soft-state shard. The slice is indexed by
// shard number.
func (p *Proxy) ShardStats() []ShardStat {
	out := make([]ShardStat, numShards)
	for i := range out {
		s := &p.shards[i]
		s.mu.Lock()
		out[i].Pending = len(s.pend)
		s.mu.Unlock()

		as := &p.attrs.shards[i]
		as.mu.Lock()
		out[i].AttrEntries = len(as.entries)
		as.mu.Unlock()
		out[i].AttrHits = as.hits.Load()
		out[i].AttrMisses = as.misses.Load()

		ns := &p.names.shards[i]
		ns.mu.Lock()
		out[i].NameEntries = len(ns.entries)
		ns.mu.Unlock()
		out[i].NameHits = ns.hits.Load()
		out[i].NameMisses = ns.misses.Load()
	}
	return out
}
