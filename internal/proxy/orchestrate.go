package proxy

import (
	"time"

	"slice/internal/attr"
	"slice/internal/coord"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/storage"
	"slice/internal/xdr"
)

// This file implements the operations the µproxy coordinates itself:
// REMOVE and truncating SETATTR (which must clear data on multiple storage
// sites), and COMMIT (which must make a multi-site write set durable).
// Each follows the intention-logging protocol of §3.3.2: declare an
// intention with the coordinator, perform the operation, then send an
// asynchronous completion. If the µproxy dies mid-operation, the
// coordinator times out, probes, and finishes the idempotent tail itself.

// coordIntend declares an intention. With no coordinator configured it
// returns id 0, which Complete ignores. The RPC is attributed to span sp
// as a coordinator hop.
func (p *Proxy) coordIntend(sp *obs.Span, op uint32, fh fhandle.Handle, size uint64) uint64 {
	if p.coord().IsZero() {
		return 0
	}
	c, err := p.coordRPC()
	if err != nil {
		return 0
	}
	body, err := p.obsCall(sp, obs.HopCoord, c, coord.Program, coord.Version, coord.ProcIntend, func(e *xdr.Encoder) {
		e.PutUint32(op)
		fh.Encode(e)
		e.PutUint64(size)
	})
	if err != nil {
		return 0
	}
	d := xdr.NewDecoder(body)
	if st, err := d.Uint32(); err != nil || nfsproto.Status(st) != nfsproto.OK {
		return 0
	}
	id, err := d.Uint64()
	if err != nil {
		return 0
	}
	return id
}

// coordComplete clears an intention.
func (p *Proxy) coordComplete(sp *obs.Span, id uint64) {
	if id == 0 || p.coord().IsZero() {
		return
	}
	c, err := p.coordRPC()
	if err != nil {
		return
	}
	_, _ = p.obsCall(sp, obs.HopCoord, c, coord.Program, coord.Version, coord.ProcComplete, func(e *xdr.Encoder) {
		e.PutUint64(id)
	})
}

// coordGetMap fetches a block-map fragment.
func (p *Proxy) coordGetMap(sp *obs.Span, fh fhandle.Handle, first uint64, count uint32) ([]uint32, error) {
	c, err := p.coordRPC()
	if err != nil {
		return nil, err
	}
	body, err := p.obsCall(sp, obs.HopCoord, c, coord.Program, coord.Version, coord.ProcGetMap, func(e *xdr.Encoder) {
		fh.Encode(e)
		e.PutUint64(first)
		e.PutUint32(count)
	})
	if err != nil {
		return nil, err
	}
	d := xdr.NewDecoder(body)
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if s := nfsproto.Status(st); s != nfsproto.OK {
		return nil, s.Error()
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if err := xdr.CheckLen(n, 1<<20); err != nil {
		return nil, err
	}
	sites := make([]uint32, n)
	for i := range sites {
		if sites[i], err = d.Uint32(); err != nil {
			return nil, err
		}
	}
	return sites, nil
}

// capFH stamps the storage capability into a handle the µproxy sends to
// data servers itself (no-op without a key; harmless for small-file
// servers, which ignore the field).
func (p *Proxy) capFH(fh fhandle.Handle) fhandle.Handle {
	if len(p.cfg.CapKey) == 0 {
		return fh
	}
	return fhandle.WithCapability(p.cfg.CapKey, fh)
}

// objOp issues a raw-object remove/truncate/stat at addr. The error
// matters to callers holding an intention: a site that could not be
// reached still holds data, so the intention must stay pending for the
// coordinator to finish.
func (p *Proxy) objOp(sp *obs.Span, addr netsim.Addr, proc uint32, fh fhandle.Handle, extra func(*xdr.Encoder)) error {
	c, err := p.rpc(addr)
	if err != nil {
		return err
	}
	p.st.initiated.Add(1)
	capped := p.capFH(fh)
	_, err = p.obsCall(sp, p.hopForSite(addr), c, storage.ObjProgram, storage.ObjVersion, proc, func(e *xdr.Encoder) {
		capped.Encode(e)
		if extra != nil {
			extra(e)
		}
	})
	return err
}

// dataSites enumerates the sites that may hold data of fh: its small-file
// server and — when the file extends past the threshold, or its size is
// unknown — every storage node, with replica-group primaries expanded to
// their whole group so removes, truncates, and commit barriers reach
// every member.
func (p *Proxy) dataSites(fh fhandle.Handle) []netsim.Addr {
	var out []netsim.Addr
	if p.cfg.IO.SmallFile != nil {
		if a, err := p.cfg.IO.SmallFileServer(fh); err == nil {
			out = append(out, a)
		}
	}
	large := true
	if at, ok := p.attrs.get(fh); ok && at.Size < p.cfg.IO.Threshold {
		large = false
	}
	if large {
		seen := make(map[netsim.Addr]bool)
		add := func(a netsim.Addr) {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
		for _, a := range p.cfg.IO.Storage.Physical() {
			if g, ok := p.cfg.IO.Replicas.GroupOf(a); ok {
				for _, m := range g.Members {
					add(m)
				}
			} else {
				add(a)
			}
		}
		// Mid-transition, the pending binding's nodes may already hold
		// double-written blocks; a remove or truncate that skipped them
		// would resurrect dead bytes at the swap.
		if pend := p.cfg.IO.Storage.PendingPhysical(); pend != nil {
			reps := p.cfg.IO.Storage.PendingReplicas()
			if reps == nil {
				reps = p.cfg.IO.Replicas
			}
			for _, a := range pend {
				if g, ok := reps.GroupOf(a); ok {
					for _, m := range g.Members {
						add(m)
					}
				} else {
					add(a)
				}
			}
		}
	}
	return out
}

// observeAttr folds authoritative attributes into the cache; if the
// insert evicted a dirty entry, its attributes are written back outside
// the shard lock, on a helper goroutine, so a slow directory server never
// stalls unrelated cache traffic.
func (p *Proxy) observeAttr(fh fhandle.Handle, at attr.Attr) {
	if e, dirty := p.attrs.observe(fh, at); dirty {
		p.writebackEvicted(e)
	}
}

// updateAttr applies a local attribute update (I/O completion) to the
// cache, with the same out-of-lock eviction writeback as observeAttr.
func (p *Proxy) updateAttr(fh fhandle.Handle, fn func(*attr.Attr)) {
	if e, dirty := p.attrs.update(fh, fn); dirty {
		p.writebackEvicted(e)
	}
}

// writebackEvicted pushes a dirty evictee's attributes to its directory
// server asynchronously.
func (p *Proxy) writebackEvicted(e attrEntry) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.pushOne(e.fh, e.at)
	}()
}

// resolveChild finds the handle bound to (dir, name), first in the name
// cache, then by an own LOOKUP to the responsible directory server.
func (p *Proxy) resolveChild(dir fhandle.Handle, name string) (fhandle.Handle, bool) {
	if fh, ok := p.names.get(dir, name); ok {
		return fh, true
	}
	info := nfsproto.RequestInfo{Proc: nfsproto.ProcLookup, FH: dir, Name: name, HasName: true}
	addr, err := p.cfg.Names.AddrFor(&info)
	if err != nil {
		return fhandle.Handle{}, false
	}
	var res nfsproto.LookupRes
	if err := p.nfsCall(nil, obs.HopDirsrv, addr, nfsproto.ProcLookup, &nfsproto.LookupArgs{Dir: dir, Name: name}, &res); err != nil {
		return fhandle.Handle{}, false
	}
	if res.Status != nfsproto.OK {
		return fhandle.Handle{}, false
	}
	if res.Attr.Present {
		p.observeAttr(res.FH, res.Attr.Attr)
	}
	p.names.put(dir, name, res.FH)
	return res.FH, true
}

// routeRemove forwards REMOVE to the directory server with an onOK hook
// that clears the victim's data across the storage sites under an
// intention, then forgets its soft state. It owns d: every path forwards
// or frees it.
func (p *Proxy) routeRemove(d []byte, key pendKey, pd *pendingReq) netsim.Verdict {
	addr, err := p.cfg.Names.AddrFor(&pd.info)
	if err != nil {
		p.dropPending(pd)
		return p.consumeDrop(d)
	}
	dir, name := pd.info.FH, pd.info.Name
	child, known := p.resolveChild(dir, name)

	// The hook runs on the response goroutine before the span is closed,
	// so its RPCs are attributed to the request's span via pd.
	pd.onOK = func() {
		p.names.drop(dir, name)
		if !known || child.Type == uint8(attr.TypeDir) {
			return
		}
		// Clear data only when the last link went away. The attribute
		// cache is soft state and its link count may be stale (e.g. a
		// LINK the µproxy never saw), so ask the directory server: after
		// a remove, a live attribute cell means other names remain;
		// ESTALE means the file is gone and its data must be cleared.
		var ga nfsproto.GetAttrRes
		gaInfo := nfsproto.RequestInfo{Proc: nfsproto.ProcGetAttr, FH: child}
		if addr, err := p.cfg.Names.AddrFor(&gaInfo); err == nil {
			if err := p.nfsCall(pd.span, obs.HopDirsrv, addr, nfsproto.ProcGetAttr, &nfsproto.GetAttrArgs{FH: child}, &ga); err == nil && ga.Status == nfsproto.OK {
				p.observeAttr(child, ga.Attr)
				return // still linked: keep the data
			}
		}
		id := p.coordIntend(pd.span, coord.OpRemove, child, 0)
		cleared := true
		for _, site := range p.dataSites(child) {
			if err := p.objOp(pd.span, site, storage.ObjProcRemove, child, nil); err != nil {
				cleared = false
			}
		}
		// Complete only when every site confirmed. Otherwise the
		// intention stays pending and the coordinator's probe finishes
		// the idempotent remove on all sites (§4.2) — never an orphan.
		if cleared {
			p.coordComplete(pd.span, id)
		}
		p.attrs.forget(child)
		p.maps.forget(child)
	}
	return p.forward(d, key, pd, addr)
}

// routeSetAttr forwards SETATTR; truncating updates additionally clear
// data beyond the new size on every data site, under an intention.
func (p *Proxy) routeSetAttr(d []byte, key pendKey, pd *pendingReq) netsim.Verdict {
	var args nfsproto.SetAttrArgs
	if err := args.Decode(xdr.NewDecoder(netsim.Payload(d)[oncrpc.CallHeader:])); err != nil {
		p.dropPending(pd)
		return p.consumeDrop(d)
	}
	addr, err := p.cfg.Names.AddrFor(&pd.info)
	if err != nil {
		p.dropPending(pd)
		return p.consumeDrop(d)
	}
	if args.Sattr.SetSize {
		fh, size := args.FH, args.Sattr.Size
		pd.onOK = func() {
			id := p.coordIntend(pd.span, coord.OpTruncate, fh, size)
			cleared := true
			for _, site := range p.dataSites(fh) {
				if err := p.objOp(pd.span, site, storage.ObjProcTruncate, fh, func(e *xdr.Encoder) {
					e.PutUint64(size)
				}); err != nil {
					cleared = false
				}
			}
			// As with remove: an unreached site keeps the intention
			// pending so the coordinator finishes the truncate itself.
			if cleared {
				p.coordComplete(pd.span, id)
			}
			now := attr.FromGo(time.Now())
			p.updateAttr(fh, func(a *attr.Attr) {
				a.Size = size
				a.Mtime = now
				a.Ctime = now
			})
			p.maps.forget(fh)
		}
	}
	return p.forward(d, key, pd, addr)
}

// absorbCommit answers COMMIT without forwarding it: the µproxy pushes the
// file's dirty attributes to the directory server, declares a commit
// intention, commits every involved data site, clears the intention, and
// synthesizes the reply. This is the consistent write commitment of §4.2.
// The span (nil when tracing is off) collects every RPC of the chain and
// is closed — and the absorbed op's end-to-end latency recorded — when
// the reply is injected.
func (p *Proxy) absorbCommit(client netsim.Addr, xid uint32, info nfsproto.RequestInfo, sp *obs.Span, startNS int64) {
	fh := info.FH
	defer func() {
		endNS := time.Now().UnixNano()
		if p.hists != nil && startNS != 0 {
			p.hists.e2e[nfsproto.ProcCommit].Record(uint64(endNS - startNS))
		}
		if sp != nil {
			p.tracer.Finish(sp, endNS)
		}
	}()
	p.pushAttrs(sp, fh)

	id := p.coordIntend(sp, coord.OpCommit, fh, uint64(info.Count))
	var verf uint64
	committed := true
	for _, site := range p.dataSites(fh) {
		var cres nfsproto.CommitRes
		if err := p.nfsCall(sp, p.hopForSite(site), site, nfsproto.ProcCommit, &nfsproto.CommitArgs{
			FH: p.capFH(fh), Offset: info.Offset, Count: info.Count,
		}, &cres); err == nil && cres.Status == nfsproto.OK {
			verf ^= cres.Verf
		} else {
			committed = false
		}
	}
	// Only a fully committed write set clears the intention. A partial
	// commit with a durable intention may still be acknowledged — the
	// coordinator's probe finishes the idempotent commit on every site
	// (§4.2), so the acknowledgement never outruns durability. Without
	// an intention there is no such guarantee: fail the commit so the
	// client retains and retries its uncommitted writes.
	if committed {
		p.coordComplete(sp, id)
		if p.dirty != nil {
			// The commit barrier drained the file's window on every
			// member: whatever over-approximated dirtiness the object
			// accumulated (lost records, partial fan-outs) is resolved,
			// and its reads may spread again.
			p.dirty.ForceClear(fh.Ident())
		}
	} else if id == 0 {
		fail := nfsproto.CommitRes{Status: nfsproto.ErrIO}
		payload := oncrpc.EncodeReply(xid, oncrpc.AcceptSuccess, fail.Encode)
		if out, err := netsim.Build(p.cfg.Virtual, client, payload); err == nil {
			p.st.absorbed.Add(1)
			p.st.responses.Add(1)
			_ = p.cfg.Net.Inject(out)
		} else {
			p.st.dropped.Add(1)
		}
		return
	}

	res := nfsproto.CommitRes{Status: nfsproto.OK, Verf: verf}
	if at, ok := p.attrs.get(fh); ok {
		res.Attr = nfsproto.Some(at)
	}
	payload := oncrpc.EncodeReply(xid, oncrpc.AcceptSuccess, res.Encode)
	out, err := netsim.Build(p.cfg.Virtual, client, payload)
	if err != nil {
		p.st.dropped.Add(1)
		return
	}
	p.st.absorbed.Add(1)
	p.st.responses.Add(1)
	_ = p.cfg.Net.Inject(out)
}

// pushAttrs writes the file's dirty cached attributes back to its
// directory server with SETATTR (§4.1: on commit interception and on
// eviction).
func (p *Proxy) pushAttrs(sp *obs.Span, fh fhandle.Handle) {
	at, ok := p.attrs.takeDirty(fh)
	if !ok {
		return
	}
	info := nfsproto.RequestInfo{Proc: nfsproto.ProcSetAttr, FH: fh}
	addr, err := p.cfg.Names.AddrFor(&info)
	if err != nil {
		p.attrs.markDirty(fh)
		return
	}
	args := nfsproto.SetAttrArgs{FH: fh, Sattr: attr.SetAttr{
		SetSize: true, Size: at.Size,
		SetMtime: true, Mtime: at.Mtime,
		SetAtime: true, Atime: at.Atime,
	}}
	var res nfsproto.SetAttrRes
	if err := p.nfsCall(sp, obs.HopDirsrv, addr, nfsproto.ProcSetAttr, &args, &res); err != nil || res.Status != nfsproto.OK {
		p.attrs.markDirty(fh)
	}
}

// WritebackAttrs pushes every dirty attribute entry to the directory
// servers. Capacity eviction happens inline at insert time (LRU per
// shard), with dirty evictees written back outside the shard lock; this
// periodic sweep only bounds the drift of entries that stay resident.
// The background flusher calls this at WritebackInterval; tests and the
// commit path call it directly.
func (p *Proxy) WritebackAttrs() {
	for _, e := range p.attrs.allDirty() {
		p.pushOne(e.fh, e.at)
	}
}

// pushOne writes one attribute set back without consulting the cache.
func (p *Proxy) pushOne(fh fhandle.Handle, at attr.Attr) {
	info := nfsproto.RequestInfo{Proc: nfsproto.ProcSetAttr, FH: fh}
	addr, err := p.cfg.Names.AddrFor(&info)
	if err != nil {
		return
	}
	args := nfsproto.SetAttrArgs{FH: fh, Sattr: attr.SetAttr{
		SetSize: true, Size: at.Size,
		SetMtime: true, Mtime: at.Mtime,
		SetAtime: true, Atime: at.Atime,
	}}
	var res nfsproto.SetAttrRes
	_ = p.nfsCall(nil, obs.HopDirsrv, addr, nfsproto.ProcSetAttr, &args, &res)
}
