// Package udpgate bridges the in-memory Slice fabric to real UDP sockets,
// so a client in another process (or on another machine) can mount the
// virtual NFS server exported by a running ensemble.
//
// Server side, a Gateway listens on a UDP socket; each remote peer is
// assigned a synthetic client address on the netsim fabric, and its
// datagrams are injected toward the virtual server — which means they
// traverse the interposed µproxy exactly like local traffic. Client side,
// Dial returns an oncrpc.Conn over UDP, usable with client.NewWithConn.
package udpgate

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"slice/internal/netsim"
	"slice/internal/obs"
)

const (
	// maxUDPPayload is the largest payload a UDP datagram can carry
	// (65535 minus IP and UDP headers). Read buffers are sized to it, not
	// to netsim.MaxDatagram: jumbo fabric datagrams never ride UDP.
	maxUDPPayload = 65507

	// synthHostBase is the base of the synthetic client host range; the
	// allocator pre-increments, so the first allocated peer host is
	// synthHostBase+1.
	synthHostBase = 0x7F000000

	// connPlaceholderHost is the fabric host a client-side Conn reports in
	// Addr(). It sits below synthHostBase so it can never collide with a
	// synthetic peer host: the placeholder used to be 0x7F000001, exactly
	// the first host a Gateway hands out.
	connPlaceholderHost = 0x7E000001

	// DefaultIdleTimeout is how long a peer may stay quiet before its
	// fabric port and pump goroutine are reclaimed.
	DefaultIdleTimeout = 2 * time.Minute
)

// synthHosts allocates synthetic peer hosts process-wide, not per
// gateway: a fleet runs one gateway per member over one shared fabric,
// and per-gateway counters would hand peers of different members the
// same host. Combined with netsim's ephemeral-port recycling (an evicted
// peer's port is freed for reuse), that could give two distinct remote
// clients identical {host, port} fabric addresses — which poisons the
// servers' duplicate-request caches across clients. Monotonic
// process-wide hosts keep every peer's fabric address unique for the
// life of the process.
var synthHosts atomic.Uint32

// Stats counts gateway events, primarily datagrams dropped on the relay
// path. Drops here are invisible to both endpoints (UDP semantics), so
// they are counted and exposed rather than silently discarded.
type Stats struct {
	Peers        int    // live synthetic peers
	DropNoPeer   uint64 // inbound datagrams dropped: peer allocation failed
	DropInject   uint64 // inbound datagrams dropped: fabric send failed
	DropWrite    uint64 // outbound replies dropped: UDP write failed
	PeersEvicted uint64 // peers reclaimed by idle eviction
}

// gateHists are the obs histograms the gateway records into; they are
// counters in histogram clothing (every sample is 1, count is the value).
type gateHists struct {
	dropNoPeer *obs.Histogram
	dropInject *obs.Histogram
	dropWrite  *obs.Histogram
	evicted    *obs.Histogram
}

// Gateway relays between a UDP socket and a netsim fabric.
type Gateway struct {
	conn    *net.UDPConn
	fabric  *netsim.Network
	virtual netsim.Addr

	idleNanos atomic.Int64
	hists     atomic.Pointer[gateHists]

	dropNoPeer atomic.Uint64
	dropInject atomic.Uint64
	dropWrite  atomic.Uint64
	evicted    atomic.Uint64

	mu     sync.Mutex
	peers  map[string]*peer
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

type peer struct {
	remote   *net.UDPAddr
	port     *netsim.Port
	lastUsed atomic.Int64 // UnixNano of the last datagram in either direction
}

func (p *peer) touch() { p.lastUsed.Store(time.Now().UnixNano()) }

// NewGateway starts a gateway on the given UDP listen address, forwarding
// to the fabric's virtual server address.
func NewGateway(listen string, fabric *netsim.Network, virtual netsim.Addr) (*Gateway, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		conn:    conn,
		fabric:  fabric,
		virtual: virtual,
		peers:   make(map[string]*peer),
		stop:    make(chan struct{}),
	}
	g.idleNanos.Store(int64(DefaultIdleTimeout))
	g.wg.Add(2)
	go g.pumpIn()
	go g.janitor()
	return g, nil
}

// SetIdleTimeout changes the idle-peer eviction threshold; it takes
// effect on the janitor's next sweep. Zero or negative disables eviction.
func (g *Gateway) SetIdleTimeout(d time.Duration) { g.idleNanos.Store(int64(d)) }

// SetObs attaches an obs registry; drop and eviction counters are
// recorded there (as count-only histograms) in addition to Stats.
func (g *Gateway) SetObs(r *obs.Registry) {
	if r == nil {
		g.hists.Store(nil)
		return
	}
	g.hists.Store(&gateHists{
		dropNoPeer: r.Hist("gate.drop_nopeer"),
		dropInject: r.Hist("gate.drop_inject"),
		dropWrite:  r.Hist("gate.drop_write"),
		evicted:    r.Hist("gate.peer_evicted"),
	})
}

// Stats returns a snapshot of the gateway counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	peers := len(g.peers)
	g.mu.Unlock()
	return Stats{
		Peers:        peers,
		DropNoPeer:   g.dropNoPeer.Load(),
		DropInject:   g.dropInject.Load(),
		DropWrite:    g.dropWrite.Load(),
		PeersEvicted: g.evicted.Load(),
	}
}

// NumPeers returns the number of live synthetic peers.
func (g *Gateway) NumPeers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.peers)
}

// Addr returns the UDP address the gateway listens on.
func (g *Gateway) Addr() net.Addr { return g.conn.LocalAddr() }

// Close stops the gateway.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	close(g.stop)
	for _, p := range g.peers {
		p.port.Close()
	}
	g.mu.Unlock()
	g.conn.Close()
	g.wg.Wait()
}

// pumpIn reads UDP datagrams (raw RPC payloads) and injects them into the
// fabric addressed to the virtual server. Both failure modes — peer
// allocation and fabric send — are counted: a drop here looks like
// network loss to the endpoints, so it must at least be observable.
func (g *Gateway) pumpIn() {
	defer g.wg.Done()
	buf := make([]byte, maxUDPPayload)
	for {
		n, remote, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p, err := g.peerFor(remote)
		if err != nil {
			g.dropNoPeer.Add(1)
			if h := g.hists.Load(); h != nil {
				h.dropNoPeer.Record(1)
			}
			continue
		}
		p.touch()
		// SendTo copies the payload into a pooled datagram buffer; no
		// intermediate allocation is needed.
		if err := p.port.SendTo(g.virtual, buf[:n]); err != nil {
			g.dropInject.Add(1)
			if h := g.hists.Load(); h != nil {
				h.dropInject.Record(1)
			}
		}
	}
}

// peerFor returns (allocating on first contact) the fabric endpoint for a
// remote UDP address.
func (g *Gateway) peerFor(remote *net.UDPAddr) (*peer, error) {
	key := remote.String()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, fmt.Errorf("udpgate: gateway closed")
	}
	if p, ok := g.peers[key]; ok {
		return p, nil
	}
	port, err := g.fabric.BindAny(synthHostBase + synthHosts.Add(1))
	if err != nil {
		return nil, err
	}
	p := &peer{remote: remote, port: port}
	p.touch()
	g.peers[key] = p
	g.wg.Add(1)
	go g.pumpOut(p)
	return p, nil
}

// pumpOut forwards replies from the fabric back to the remote peer. It
// exits when the peer's port closes (gateway shutdown or idle eviction).
func (g *Gateway) pumpOut(p *peer) {
	defer g.wg.Done()
	for {
		d, err := p.port.Recv(0)
		if err != nil {
			return
		}
		p.touch()
		_, err = g.conn.WriteToUDP(netsim.Payload(d), p.remote)
		netsim.FreeBuf(d)
		if err != nil {
			// A failed UDP write is one lost reply, not a dead peer; RPC
			// retransmission recovers. Count it and keep pumping.
			g.dropWrite.Add(1)
			if h := g.hists.Load(); h != nil {
				h.dropWrite.Record(1)
			}
		}
	}
}

// janitor periodically reclaims peers that have been idle longer than the
// configured timeout: the peer's fabric port is closed, which drains its
// pumpOut goroutine. Without this, every remote address that ever sent a
// datagram pinned a port and a goroutine for the life of the gateway.
func (g *Gateway) janitor() {
	defer g.wg.Done()
	for {
		idle := time.Duration(g.idleNanos.Load())
		tick := idle / 4
		if tick <= 0 || tick > 15*time.Second {
			tick = 15 * time.Second
		}
		if tick < 5*time.Millisecond {
			tick = 5 * time.Millisecond
		}
		select {
		case <-g.stop:
			return
		case <-time.After(tick):
		}
		if idle <= 0 {
			continue
		}
		g.evictIdle(time.Now(), idle)
	}
}

func (g *Gateway) evictIdle(now time.Time, idle time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	for key, p := range g.peers {
		if now.Sub(time.Unix(0, p.lastUsed.Load())) < idle {
			continue
		}
		delete(g.peers, key)
		p.port.Close()
		g.evicted.Add(1)
		if h := g.hists.Load(); h != nil {
			h.evicted.Record(1)
		}
	}
}

// Conn is a client-side oncrpc.Conn over UDP.
type Conn struct {
	conn *net.UDPConn

	// peer is the fabric address the caller last sent to. The dialed UDP
	// socket only delivers datagrams from the gateway (the kernel's
	// connected-socket filter is the real peer check), so received
	// replies are stamped with this address — the fabric-level reflection
	// the RPC client's peer-address check expects.
	mu   sync.Mutex
	peer netsim.Addr
}

// Dial connects to a gateway's UDP address.
func Dial(server string) (*Conn, error) {
	addr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, err
	}
	c, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	return &Conn{conn: c}, nil
}

// SendTo implements oncrpc.Conn. The destination fabric address is
// implied by the dialed gateway (it always targets the virtual server),
// so dst is ignored.
func (c *Conn) SendTo(dst netsim.Addr, payload []byte) error {
	c.mu.Lock()
	c.peer = dst
	c.mu.Unlock()
	_, err := c.conn.Write(payload)
	return err
}

// Recv implements oncrpc.Conn. The datagram is read directly into the
// payload region of a single pooled header-prefixed buffer — the receiver
// returns it to the pool with netsim.FreeBuf, so the steady-state receive
// path allocates nothing.
func (c *Conn) Recv(timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	} else {
		if err := c.conn.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	buf := netsim.GetBuf(netsim.HeaderSize + maxUDPPayload)
	n, err := c.conn.Read(buf[netsim.HeaderSize:])
	if err != nil {
		netsim.FreeBuf(buf)
		return nil, err
	}
	out := buf[:netsim.HeaderSize+n]
	c.mu.Lock()
	src := c.peer
	c.mu.Unlock()
	binary.BigEndian.PutUint32(out[netsim.OffSrcHost:], src.Host)
	binary.BigEndian.PutUint16(out[netsim.OffSrcPort:], src.Port)
	return out, nil
}

// Addr implements oncrpc.Conn with a placeholder fabric address, chosen
// outside the gateway's synthetic peer range.
func (c *Conn) Addr() netsim.Addr { return netsim.Addr{Host: connPlaceholderHost, Port: 1} }

// Close implements oncrpc.Conn.
func (c *Conn) Close() { _ = c.conn.Close() }
