package ensemble

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"slice/internal/dirsrv"
	"slice/internal/fhandle"
	"slice/internal/nfsproto"
	"slice/internal/route"
)

// The oracle test drives the full distributed stack with a random
// operation stream and mirrors every operation against a trivially
// correct in-memory model. Divergence in any result — resolution, file
// contents, directory listings, link targets — is a bug in the ensemble.

type oracleFile struct {
	data  []byte
	links int
}

type oracleNode struct {
	isDir    bool
	isLink   bool
	target   string
	file     *oracleFile // shared between hard links
	children map[string]*oracleNode
}

func newOracleDir() *oracleNode {
	return &oracleNode{isDir: true, children: make(map[string]*oracleNode)}
}

// TestOracleRandomOps runs the random-operation equivalence check under
// both name-space policies and several seeds.
func TestOracleRandomOps(t *testing.T) {
	for _, kind := range []route.NameKind{route.MkdirSwitching, route.NameHashing} {
		for _, seed := range []int64{7, 21, 1023} {
			t.Run(fmt.Sprintf("%s/seed=%d", kind, seed), func(t *testing.T) {
				runOracle(t, kind, 2000, seed, oracleOpts{})
			})
		}
	}
}

// TestOracleUnderAdversity repeats the equivalence check over a lossy
// fabric with periodic µproxy soft-state loss: retransmission and
// soft-state recovery must keep the live system equal to the model.
func TestOracleUnderAdversity(t *testing.T) {
	runOracle(t, route.MkdirSwitching, 500, 99, oracleOpts{
		lossRate:      0.02,
		flushEvery:    100,
		capabilityKey: []byte("adversity"),
	})
}

type oracleOpts struct {
	lossRate      float64
	flushEvery    int // drop µproxy soft state every N steps (0 = never)
	capabilityKey []byte
}

func runOracle(t *testing.T, kind route.NameKind, steps int, seed int64, opts oracleOpts) {
	e := newTest(t, func(cfg *Config) {
		cfg.NameKind = kind
		cfg.DirServers = 3
		cfg.StorageNodes = 3
		cfg.MkdirP = 0.5
		cfg.Net.LossRate = opts.lossRate
		cfg.Net.Seed = seed
		cfg.CapabilityKey = opts.capabilityKey
	})
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(seed))
	rootModel := newOracleDir()

	// Trackers: model path <-> live handle, kept in sync.
	type dirRef struct {
		model *oracleNode
		fh    fhandle.Handle
		path  string
	}
	dirs := []dirRef{{model: rootModel, fh: c.Root(), path: "/"}}
	nameOf := func(i int) string { return fmt.Sprintf("n%02d", i) }

	verifyDir := func(d dirRef) {
		ents, err := c.ReadDir(d.fh)
		if err != nil {
			t.Fatalf("readdir %s: %v", d.path, err)
		}
		var got []string
		for _, ent := range ents {
			got = append(got, ent.Name)
		}
		var want []string
		for name := range d.model.children {
			want = append(want, name)
		}
		sort.Strings(got)
		sort.Strings(want)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("readdir %s diverged:\n live: %v\nmodel: %v", d.path, got, want)
		}
	}

	for step := 0; step < steps; step++ {
		if opts.flushEvery > 0 && step%opts.flushEvery == opts.flushEvery-1 {
			e.Proxy.FlushSoftState()
		}
		d := dirs[rng.Intn(len(dirs))]
		name := nameOf(rng.Intn(20))
		child, exists := d.model.children[name]

		switch op := rng.Intn(10); op {
		case 0: // mkdir
			fh, _, err := c.Mkdir(d.fh, name, 0o755)
			if exists {
				if nfsproto.StatusOf(err) != nfsproto.ErrExist {
					t.Fatalf("step %d mkdir %s/%s over existing: %v", step, d.path, name, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d mkdir %s/%s: %v", step, d.path, name, err)
			}
			n := newOracleDir()
			d.model.children[name] = n
			dirs = append(dirs, dirRef{model: n, fh: fh, path: d.path + name + "/"})

		case 1, 2: // create + write
			if exists {
				continue
			}
			fh, _, err := c.Create(d.fh, name, 0o644, true)
			if err != nil {
				t.Fatalf("step %d create %s/%s: %v", step, d.path, name, err)
			}
			size := rng.Intn(100 * 1024)
			data := make([]byte, size)
			rng.Read(data)
			if err := c.WriteFile(fh, data); err != nil {
				t.Fatalf("step %d write %s/%s (%d bytes): %v", step, d.path, name, size, err)
			}
			d.model.children[name] = &oracleNode{file: &oracleFile{data: data, links: 1}}

		case 3: // read back and compare
			if !exists || child.isDir || child.isLink {
				continue
			}
			fh, _, err := c.Lookup(d.fh, name)
			if err != nil {
				t.Fatalf("step %d lookup %s/%s: %v", step, d.path, name, err)
			}
			got, err := c.ReadAll(fh)
			if err != nil {
				t.Fatalf("step %d read %s/%s: %v", step, d.path, name, err)
			}
			if !bytes.Equal(got, child.file.data) {
				t.Fatalf("step %d content of %s/%s diverged: %d vs %d bytes",
					step, d.path, name, len(got), len(child.file.data))
			}

		case 4: // remove file/symlink
			if !exists || child.isDir {
				continue
			}
			if err := c.Remove(d.fh, name); err != nil {
				t.Fatalf("step %d remove %s/%s: %v", step, d.path, name, err)
			}
			if child.file != nil {
				child.file.links--
			}
			delete(d.model.children, name)

		case 5: // overwrite a slice of an existing file
			if !exists || child.isDir || child.isLink || len(child.file.data) == 0 {
				continue
			}
			fh, _, err := c.Lookup(d.fh, name)
			if err != nil {
				t.Fatalf("step %d lookup: %v", step, err)
			}
			off := rng.Intn(len(child.file.data))
			n := rng.Intn(len(child.file.data)-off) + 1
			patch := make([]byte, n)
			rng.Read(patch)
			if _, err := c.Write(fh, uint64(off), patch, false); err != nil {
				t.Fatalf("step %d overwrite: %v", step, err)
			}
			copy(child.file.data[off:], patch)

		case 6: // symlink + readlink
			if exists {
				continue
			}
			target := fmt.Sprintf("/points/at/%d", step)
			fh, _, err := c.Symlink(d.fh, name, target)
			if err != nil {
				t.Fatalf("step %d symlink: %v", step, err)
			}
			got, err := c.ReadLink(fh)
			if err != nil || got != target {
				t.Fatalf("step %d readlink: %q, %v", step, got, err)
			}
			d.model.children[name] = &oracleNode{isLink: true, target: target}

		case 7: // hard link into another directory
			if !exists || child.isDir || child.isLink {
				continue
			}
			d2 := dirs[rng.Intn(len(dirs))]
			name2 := nameOf(rng.Intn(20))
			if _, dup := d2.model.children[name2]; dup {
				continue
			}
			fh, _, err := c.Lookup(d.fh, name)
			if err != nil {
				t.Fatalf("step %d lookup for link: %v", step, err)
			}
			if err := c.Link(fh, d2.fh, name2); err != nil {
				t.Fatalf("step %d link %s/%s -> %s/%s: %v",
					step, d.path, name, d2.path, name2, err)
			}
			child.file.links++
			d2.model.children[name2] = &oracleNode{file: child.file}

		case 8: // rename within/between directories
			if !exists || child.isDir {
				continue
			}
			d2 := dirs[rng.Intn(len(dirs))]
			name2 := nameOf(rng.Intn(20))
			_, dup := d2.model.children[name2]
			err := c.Rename(d.fh, name, d2.fh, name2)
			if dup {
				if nfsproto.StatusOf(err) != nfsproto.ErrExist {
					t.Fatalf("step %d rename onto existing: %v", step, err)
				}
				continue
			}
			if d.model == d2.model && name == name2 {
				continue
			}
			if err != nil {
				t.Fatalf("step %d rename %s/%s -> %s/%s: %v",
					step, d.path, name, d2.path, name2, err)
			}
			d2.model.children[name2] = child
			delete(d.model.children, name)

		case 9: // verify a random directory listing
			verifyDir(dirs[rng.Intn(len(dirs))])
		}
	}

	// Final sweep: every directory listing, every file body, every link
	// target, then a cross-site fsck.
	for _, d := range dirs {
		verifyDir(d)
		for name, n := range d.model.children {
			fh, _, err := c.Lookup(d.fh, name)
			if err != nil {
				t.Fatalf("final lookup %s/%s: %v", d.path, name, err)
			}
			switch {
			case n.isLink:
				got, err := c.ReadLink(fh)
				if err != nil || got != n.target {
					t.Fatalf("final readlink %s/%s: %q, %v", d.path, name, got, err)
				}
			case !n.isDir:
				got, err := c.ReadAll(fh)
				if err != nil || !bytes.Equal(got, n.file.data) {
					t.Fatalf("final content %s/%s: %d vs %d bytes, %v",
						d.path, name, len(got), len(n.file.data), err)
				}
			}
		}
	}
	e.Proxy.WritebackAttrs()
	if problems := dirsrv.Check(e.Dirs, e.Root); len(problems) != 0 {
		t.Fatalf("fsck after %d random ops:\n%s", steps, strings.Join(problems, "\n"))
	}
}
