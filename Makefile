GO ?= go

.PHONY: check vet build test race bench bench-proxy bench-gate lint cover fuzz corpus

# The full gate: everything a change must pass before it lands.
check: vet build race bench-proxy

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short run of every benchmark, as a smoke test.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The contended data-path benchmarks (compare against BENCH_proxy.json).
bench-proxy:
	$(GO) test -run xxx -bench 'ProxyForward|CacheHit' -benchmem -benchtime 1s -cpu 1,4 .

# Benchmark regression gate: repeated short runs of the gated data-path
# benchmarks, reduced to their minimum and compared against the
# checked-in baselines. Allocation counts are held exactly (the forward
# path must stay 0 allocs/op; the bulk path's budgets carry headroom in
# BENCH_bulkio.json); ns/op gets BENCH_TOLERANCE headroom for machine
# noise. bench.out/bench_bulk.out are kept for CI artifact upload. The
# bulk benchmarks run at -cpu 4 only (the windowed fan-out needs
# GOMAXPROCS>1 to overlap) and a few long iterations, not thousands of
# short ones.
BENCH_COUNT ?= 6
BENCH_TIME ?= 20000x
BENCH_BULK_TIME ?= 3x
BENCH_FLEET_TIME ?= 5000x
BENCH_REPLICA_TIME ?= 2000x
BENCH_WIRE_TIME ?= 3x
BENCH_TOLERANCE ?= 2.5
bench-gate:
	$(GO) test -run xxx -bench 'ProxyForward|CacheHit' -benchmem \
	    -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) -cpu 1,4 . > bench.out \
	    || { cat bench.out; exit 1; }
	$(GO) test -run xxx -bench 'FleetForward' -benchmem \
	    -benchtime $(BENCH_FLEET_TIME) -count $(BENCH_COUNT) -cpu 4 . >> bench.out \
	    || { cat bench.out; exit 1; }
	$(GO) run ./cmd/benchgate -baseline BENCH_proxy.json -input bench.out -tolerance $(BENCH_TOLERANCE)
	$(GO) test -run xxx -bench 'BenchmarkBulk(Read|Write)' -benchmem \
	    -benchtime $(BENCH_BULK_TIME) -count $(BENCH_COUNT) -cpu 4 . > bench_bulk.out \
	    || { cat bench_bulk.out; exit 1; }
	$(GO) run ./cmd/benchgate -baseline BENCH_bulkio.json -input bench_bulk.out -tolerance $(BENCH_TOLERANCE)
	$(GO) test -run xxx -bench 'BenchmarkReplicaRead' -benchmem \
	    -benchtime $(BENCH_REPLICA_TIME) -count $(BENCH_COUNT) -cpu 4 . > bench_replica.out \
	    || { cat bench_replica.out; exit 1; }
	$(GO) run ./cmd/benchgate -baseline BENCH_replica.json -input bench_replica.out -tolerance $(BENCH_TOLERANCE)
	$(GO) test -run xxx -bench 'BenchmarkWire(Read|Write)' -benchmem \
	    -benchtime $(BENCH_WIRE_TIME) -count $(BENCH_COUNT) -cpu 4 . > bench_wire.out \
	    || { cat bench_wire.out; exit 1; }
	$(GO) run ./cmd/benchgate -baseline BENCH_wire.json -input bench_wire.out -tolerance $(BENCH_TOLERANCE)

# Static analysis beyond vet. The tools are not vendored: CI installs
# them; offline checkouts skip with a note rather than failing.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
	    staticcheck ./... ; \
	else echo "lint: staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
	    govulncheck ./... ; \
	else echo "lint: govulncheck not installed; skipping"; fi

# Coverage with a floor: the suite must keep covering at least
# COVER_FLOOR% of statements overall, and internal/replica (the
# correctness-critical replica map + resync protocol) must also meet the
# floor on its own — cross-package chaos tests don't count toward it.
COVER_FLOOR ?= 65
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/,"",$$3); print $$3 }'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
	    if (t+0 < f+0) { printf "cover: %.1f%% is below the %s%% floor\n", t, f; exit 1 } \
	    else { printf "cover: %.1f%% >= %s%% floor\n", t, f } }'
	@pkg=$$($(GO) test -cover ./internal/replica/ | awk '{ for (i=1;i<=NF;i++) if ($$i ~ /%$$/) { sub(/%/,"",$$i); print $$i } }'); \
	awk -v t="$$pkg" -v f="$(COVER_FLOOR)" 'BEGIN { \
	    if (t+0 < f+0) { printf "cover: internal/replica %.1f%% is below the %s%% floor\n", t, f; exit 1 } \
	    else { printf "cover: internal/replica %.1f%% >= %s%% floor\n", t, f } }'

# Regenerate the checked-in fuzz seed corpora (testdata/fuzz/...).
corpus:
	$(GO) run ./tools/gencorpus

# Fixed-budget run of every fuzz target (wire parsers and the WAL scanner).
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/wal/ -run '^$$' -fuzz FuzzScan -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oncrpc/ -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/nfsproto/ -run '^$$' -fuzz FuzzParseCall -fuzztime $(FUZZTIME)
	$(GO) test ./internal/nfsproto/ -run '^$$' -fuzz FuzzParseMountPortmap -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netsim/ -run '^$$' -fuzz FuzzParseDatagram -fuzztime $(FUZZTIME)
