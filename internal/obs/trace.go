package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// HopKind classifies one hop of a request's path through the ensemble.
type HopKind uint8

// Hop kinds, in the order a request can cross them.
const (
	HopNone      HopKind = iota
	HopDirsrv            // a directory server served the request
	HopSmallfile         // a small-file server served the request
	HopStorage           // a storage node served the request
	HopCoord             // a coordinator RPC (intend/complete/getmap)
	HopMount             // the MOUNT program hop (served by a directory site)
)

// String names the hop kind for exposition.
func (k HopKind) String() string {
	switch k {
	case HopDirsrv:
		return "dirsrv"
	case HopSmallfile:
		return "smallfile"
	case HopStorage:
		return "storage"
	case HopCoord:
		return "coord"
	case HopMount:
		return "mount"
	default:
		return "none"
	}
}

// MaxHops bounds the hops one span records. Orchestrated operations
// (remove, absorbed commit) cross several; beyond the bound the span
// keeps its earliest hops and counts the rest in NHops.
const MaxHops = 8

// Hop is one recorded hop: the total round-trip observed by the
// initiator and, when the server's reply carried the trace field, the
// server-side handler time (the difference is wire + queueing).
type Hop struct {
	Kind     HopKind `json:"kind"`
	TotalNS  uint64  `json:"total_ns"`
	ServerNS uint64  `json:"server_ns"`
}

// Span is the per-request trace context: an xid-keyed record of where
// one request's time went. Spans are pooled — Start/Finish recycle them
// — so tracing adds no allocation to the steady-state data path.
type Span struct {
	ID    uint64 `json:"id"`   // the client RPC xid
	Prog  uint32 `json:"prog"` // RPC program (NFS or MOUNT)
	Proc  uint32 `json:"proc"` // procedure number within Prog
	Start int64  `json:"start"`

	// Per-stage µproxy costs for this request (Table 3's stages).
	ClassifyNS uint64 `json:"classify_ns"`
	RouteNS    uint64 `json:"route_ns"`
	RewriteNS  uint64 `json:"rewrite_ns"`

	Hops  [MaxHops]Hop `json:"hops"`
	NHops int          `json:"nhops"` // hops crossed (may exceed len(Hops))
}

// AddHop records one hop. It is safe to call more than MaxHops times;
// overflow hops are counted but not itemized.
func (s *Span) AddHop(k HopKind, totalNS, serverNS uint64) {
	if s.NHops < MaxHops {
		s.Hops[s.NHops] = Hop{Kind: k, TotalNS: totalNS, ServerNS: serverNS}
	}
	s.NHops++
}

// HopTotal sums the recorded time across hops of the given kind.
func (s *Span) HopTotal(k HopKind) uint64 {
	var n uint64
	hops := s.NHops
	if hops > MaxHops {
		hops = MaxHops
	}
	for _, h := range s.Hops[:hops] {
		if h.Kind == k {
			n += h.TotalNS
		}
	}
	return n
}

// SpanRecord is a completed span archived in the trace ring.
type SpanRecord struct {
	Span
	End int64 `json:"end"`
}

// nRings shards the completed-span ring so closing spans from concurrent
// response paths does not serialize on one lock.
const nRings = 8

type traceRing struct {
	mu    sync.Mutex
	slots []SpanRecord
	next  int
	full  bool
}

// Tracer owns the span pool and a sharded ring of recently completed
// spans (for `slicectl trace` and the exposition endpoints).
type Tracer struct {
	pool sync.Pool
	ring [nRings]traceRing
	seq  atomic.Uint64
}

// NewTracer creates a tracer retaining about ringSize completed spans
// (0 means a default of 512).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 512
	}
	per := (ringSize + nRings - 1) / nRings
	t := &Tracer{}
	t.pool.New = func() any { return new(Span) }
	for i := range t.ring {
		t.ring[i].slots = make([]SpanRecord, per)
	}
	return t
}

// Start returns a zeroed pooled span stamped with the caller's clock
// reading (UnixNano); callers on a hot path pass the timestamp they
// already took rather than reading the clock again.
func (t *Tracer) Start(id uint64, proc uint32, startNS int64) *Span {
	s := t.pool.Get().(*Span)
	*s = Span{ID: id, Proc: proc, Start: startNS}
	return s
}

// Finish archives the span into the ring and recycles it. The span must
// not be used after Finish.
func (t *Tracer) Finish(s *Span, endNS int64) {
	r := &t.ring[t.seq.Add(1)%nRings]
	r.mu.Lock()
	r.slots[r.next] = SpanRecord{Span: *s, End: endNS}
	r.next++
	if r.next == len(r.slots) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	t.pool.Put(s)
}

// Abort recycles a span without archiving it (the request was dropped
// before it crossed any hop).
func (t *Tracer) Abort(s *Span) { t.pool.Put(s) }

// Recent returns up to max completed spans, newest first.
func (t *Tracer) Recent(max int) []SpanRecord {
	var out []SpanRecord
	for i := range t.ring {
		r := &t.ring[i]
		r.mu.Lock()
		n := r.next
		if r.full {
			n = len(r.slots)
		}
		out = append(out, r.slots[:n]...)
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].End > out[j].End })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
