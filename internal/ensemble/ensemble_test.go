package ensemble

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"slice/internal/attr"
	"slice/internal/client"
	"slice/internal/dirsrv"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/route"
	"slice/internal/wal"
)

// newTest builds a default ensemble for integration tests: 4 storage
// nodes, 2 directory servers, 2 small-file servers, a coordinator.
func newTest(t *testing.T, mutate func(*Config)) *Ensemble {
	t.Helper()
	cfg := Config{
		StorageNodes:     4,
		DirServers:       2,
		SmallFileServers: 2,
		Coordinator:      true,
		NameKind:         route.MkdirSwitching,
		MkdirP:           0.5,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("ensemble: %v", err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestMountAndNull(t *testing.T) {
	e := newTest(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Root().IsZero() {
		t.Fatal("mounted a zero root handle")
	}
	if err := c.Null(); err != nil {
		t.Fatalf("NULL: %v", err)
	}
}

func TestCreateWriteReadSmallFile(t *testing.T) {
	e := newTest(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "hello.txt", 0o644, true)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	data := []byte("hello, slice storage")
	if _, err := c.Write(fh, 0, data, false); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := c.Commit(fh); err != nil {
		t.Fatalf("commit: %v", err)
	}
	got := make([]byte, len(data))
	n, _, err := c.Read(fh, 0, got)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got[:n], data) {
		t.Fatalf("read back %q, want %q", got[:n], data)
	}
	// The small-file servers, not the storage nodes, must hold the data.
	var sfWrites uint64
	for _, s := range e.Small {
		sfWrites += s.Store().Stats().Writes
	}
	if sfWrites == 0 {
		t.Fatal("small-file servers saw no writes for a below-threshold file")
	}
}

func TestLargeFileStriping(t *testing.T) {
	e := newTest(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "big.dat", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	// 256KB spans the 64KB threshold and stripes over the array.
	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := c.Write(fh, 0, data, false); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := c.Commit(fh); err != nil {
		t.Fatalf("commit: %v", err)
	}
	got := make([]byte, len(data))
	n, _, err := c.Read(fh, 0, got)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if n != len(data) {
		t.Fatalf("read %d bytes, want %d", n, len(data))
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large file content mismatch")
	}
	at, err := c.GetAttr(fh)
	if err != nil {
		t.Fatal(err)
	}
	if at.Size != uint64(len(data)) {
		t.Fatalf("size attribute %d, want %d (attr writeback through commit)", at.Size, len(data))
	}
	// Bulk I/O must bypass the managers: multiple storage nodes hold data.
	nodesWithData := 0
	for _, sn := range e.Storage {
		if sn.Store().Stats().Writes > 0 {
			nodesWithData++
		}
	}
	if nodesWithData < 2 {
		t.Fatalf("striping used %d storage nodes, want >=2", nodesWithData)
	}
}

func TestDirectoryTreeBothPolicies(t *testing.T) {
	for _, kind := range []route.NameKind{route.MkdirSwitching, route.NameHashing} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newTest(t, func(cfg *Config) {
				cfg.NameKind = kind
				cfg.DirServers = 3
				cfg.MkdirP = 0.7
			})
			c, err := e.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			// Build a tree and verify it can be walked back.
			dir, err := c.MkdirAll(c.Root(), "usr", "src", "sys")
			if err != nil {
				t.Fatalf("mkdir tree: %v", err)
			}
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("file%02d.c", i)
				if _, _, err := c.Create(dir, name, 0o644, true); err != nil {
					t.Fatalf("create %s: %v", name, err)
				}
			}
			ents, err := c.ReadDir(dir)
			if err != nil {
				t.Fatalf("readdir: %v", err)
			}
			if len(ents) != 20 {
				t.Fatalf("readdir found %d entries, want 20", len(ents))
			}
			// Lookup through the tree from the root.
			usr, _, err := c.Lookup(c.Root(), "usr")
			if err != nil {
				t.Fatalf("lookup usr: %v", err)
			}
			src, _, err := c.Lookup(usr, "src")
			if err != nil {
				t.Fatalf("lookup src: %v", err)
			}
			sys, at, err := c.Lookup(src, "sys")
			if err != nil {
				t.Fatalf("lookup sys: %v", err)
			}
			if sys.Ident() != dir.Ident() {
				t.Fatal("lookup resolved a different handle than mkdir returned")
			}
			if at.Nlink != 2 {
				t.Fatalf("leaf dir nlink %d, want 2", at.Nlink)
			}
		})
	}
}

func TestRemoveClearsData(t *testing.T) {
	e := newTest(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "victim", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(fh, bytes.Repeat([]byte("x"), 200*1024)); err != nil {
		t.Fatal(err)
	}
	before := int64(0)
	for _, sn := range e.Storage {
		before += sn.Store().TotalBytes()
	}
	if before == 0 {
		t.Fatal("expected bulk data on storage nodes before remove")
	}
	if err := c.Remove(c.Root(), "victim"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, _, err := c.Lookup(c.Root(), "victim"); nfsproto.StatusOf(err) != nfsproto.ErrNoEnt {
		t.Fatalf("lookup after remove: %v, want ENOENT", err)
	}
	after := int64(0)
	for _, sn := range e.Storage {
		after += sn.Store().TotalBytes()
	}
	// Only the coordinator/small-file backing objects may remain.
	if after >= before {
		t.Fatalf("storage bytes did not shrink after remove: before %d after %d", before, after)
	}
	if e.Coord.PendingIntentions() != 0 {
		t.Fatalf("%d intentions left pending after clean remove", e.Coord.PendingIntentions())
	}
}

func TestRenameAndLink(t *testing.T) {
	e := newTest(t, func(cfg *Config) { cfg.DirServers = 3 })
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dirA, err := c.MkdirAll(c.Root(), "a")
	if err != nil {
		t.Fatal(err)
	}
	dirB, err := c.MkdirAll(c.Root(), "b")
	if err != nil {
		t.Fatal(err)
	}
	fh, _, err := c.Create(dirA, "orig", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(fh, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(dirA, "orig", dirB, "moved"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, _, err := c.Lookup(dirA, "orig"); nfsproto.StatusOf(err) != nfsproto.ErrNoEnt {
		t.Fatalf("old name still resolves: %v", err)
	}
	got, at, err := c.Lookup(dirB, "moved")
	if err != nil {
		t.Fatalf("lookup moved: %v", err)
	}
	if got.Ident() != fh.Ident() {
		t.Fatal("rename changed the file identity")
	}
	_ = at

	// Hard link and verify the link count.
	if err := c.Link(fh, dirA, "alias"); err != nil {
		t.Fatalf("link: %v", err)
	}
	at2, err := c.GetAttr(fh)
	if err != nil {
		t.Fatal(err)
	}
	if at2.Nlink != 2 {
		t.Fatalf("nlink after link = %d, want 2", at2.Nlink)
	}
	// Removing one name keeps the data reachable through the other.
	if err := c.Remove(dirB, "moved"); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadAll(fh)
	if err != nil || string(data) != "payload" {
		t.Fatalf("data lost after removing one of two links: %q, %v", data, err)
	}
}

func TestRmdirSemantics(t *testing.T) {
	e := newTest(t, func(cfg *Config) { cfg.DirServers = 3; cfg.MkdirP = 1.0 })
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dir, err := c.MkdirAll(c.Root(), "parent", "child")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Create(dir, "f", 0o644, true); err != nil {
		t.Fatal(err)
	}
	parent, _, err := c.Lookup(c.Root(), "parent")
	if err != nil {
		t.Fatal(err)
	}
	// Non-empty rmdir must fail.
	if err := c.Rmdir(parent, "child"); nfsproto.StatusOf(err) != nfsproto.ErrNotEmpty {
		t.Fatalf("rmdir non-empty: %v, want ENOTEMPTY", err)
	}
	if err := c.Remove(dir, "f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir(parent, "child"); err != nil {
		t.Fatalf("rmdir empty: %v", err)
	}
	if _, _, err := c.Lookup(parent, "child"); nfsproto.StatusOf(err) != nfsproto.ErrNoEnt {
		t.Fatalf("child still resolves after rmdir: %v", err)
	}
}

func TestMirroredFiles(t *testing.T) {
	e := newTest(t, func(cfg *Config) { cfg.MirrorDegree = 2 })
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "mirrored", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if !fh.Mirrored() {
		t.Fatal("handle not marked mirrored")
	}
	data := make([]byte, 192*1024)
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.WriteFile(fh, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, _, err := c.Read(fh, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mirrored read mismatch")
	}
	// Each bulk stripe must exist on two storage nodes: total bulk bytes
	// stored ≈ 2× the above-threshold portion.
	var stored int64
	for _, sn := range e.Storage {
		stored += int64(sn.Store().Stats().BytesWritten)
	}
	bulk := int64(len(data) - 64*1024)
	if stored < 2*bulk {
		t.Fatalf("stored %d bulk bytes, want >= %d (two replicas)", stored, 2*bulk)
	}

	// Reads survive the loss of one replica: crash one storage node that
	// holds data, then read again through the alternating-replica policy.
	// (Mirrored reads alternate by stripe; with one node wiped every
	// stripe still has a live replica.)
	for _, sn := range e.Storage {
		if sn.Store().Stats().Writes > 0 {
			sn.Store().Crash()
			break
		}
	}
	// A crashed node loses uncommitted data; committed data survives, so
	// the file must still read back correctly from the mirrors.
	got2 := make([]byte, len(data))
	if _, _, err := c.Read(fh, 0, got2); err != nil {
		t.Fatalf("read after replica crash: %v", err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("mirrored read after crash mismatch")
	}
}

func TestProxySoftStateLoss(t *testing.T) {
	e := newTest(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "softstate", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(fh, []byte("before flush")); err != nil {
		t.Fatal(err)
	}
	// The µproxy may discard all soft state at any time (§2.1).
	e.Proxy.FlushSoftState()
	data, err := c.ReadAll(fh)
	if err != nil || string(data) != "before flush" {
		t.Fatalf("read after soft-state flush: %q, %v", data, err)
	}
	// New operations keep working.
	fh2, _, err := c.Create(c.Root(), "after", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(fh2, []byte("after flush")); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadAll(fh2)
	if err != nil || string(got) != "after flush" {
		t.Fatalf("read new file after flush: %q, %v", got, err)
	}
}

func TestTruncateThroughProxy(t *testing.T) {
	e := newTest(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "trunc", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(fh, bytes.Repeat([]byte("ab"), 80*1024)); err != nil {
		t.Fatal(err)
	}
	if err := c.Truncate(fh, 100); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	at, err := c.GetAttr(fh)
	if err != nil {
		t.Fatal(err)
	}
	if at.Size != 100 {
		t.Fatalf("size after truncate = %d, want 100", at.Size)
	}
	data, err := c.ReadAll(fh)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 100 {
		t.Fatalf("read %d bytes after truncate, want 100", len(data))
	}
}

func TestManyClientsConcurrent(t *testing.T) {
	e := newTest(t, func(cfg *Config) { cfg.DirServers = 4; cfg.NameKind = route.NameHashing })
	const clients = 4
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		c, err := e.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		go func(i int) {
			dir, err := c.MkdirAll(c.Root(), fmt.Sprintf("client%d", i), "work")
			if err != nil {
				errs <- fmt.Errorf("client %d mkdir: %w", i, err)
				return
			}
			for j := 0; j < 10; j++ {
				fh, _, err := c.Create(dir, fmt.Sprintf("f%d", j), 0o644, true)
				if err != nil {
					errs <- fmt.Errorf("client %d create %d: %w", i, j, err)
					return
				}
				payload := []byte(fmt.Sprintf("client %d file %d", i, j))
				if err := c.WriteFile(fh, payload); err != nil {
					errs <- fmt.Errorf("client %d write %d: %w", i, j, err)
					return
				}
				back, err := c.ReadAll(fh)
				if err != nil || !bytes.Equal(back, payload) {
					errs <- fmt.Errorf("client %d readback %d: %q %v", i, j, back, err)
					return
				}
			}
			ents, err := c.ReadDir(dir)
			if err != nil || len(ents) != 10 {
				errs <- fmt.Errorf("client %d readdir: %d entries, %v", i, len(ents), err)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDirectoryServerFailover exercises the §2.3 failover story end to
// end: a directory server dies; a surviving site assumes its role by
// recovering its state from the snapshot (backing object) plus the
// write-ahead log; the µproxy's routing table is rebound to the
// replacement; clients continue without visible volume changes.
func TestDirectoryServerFailover(t *testing.T) {
	e := newTest(t, func(cfg *Config) { cfg.DirServers = 2; cfg.MkdirP = 0 })
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// State before the failure: a tree with files, all on site 0 (p=0).
	dir, err := c.MkdirAll(c.Root(), "projects", "slice")
	if err != nil {
		t.Fatal(err)
	}
	fh, _, err := c.Create(dir, "paper.tex", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(fh, []byte("interposed request routing")); err != nil {
		t.Fatal(err)
	}

	// Checkpoint site 0 to its backing object, then fail it.
	snapshot := e.Dirs[0].Snapshot()
	oldAddr := e.Dirs[0].Addr()
	e.Dirs[0].Close()

	// A replacement assumes the role at a NEW address, rebuilt from the
	// checkpoint plus the durable log suffix.
	crashedLog, err := wal.Open(e.DirLogs[0].CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	newAddr := netsim.Addr{Host: 70, Port: ServicePort}
	port, err := e.Net.Bind(newAddr)
	if err != nil {
		t.Fatal(err)
	}
	freshLog, err := wal.Open(wal.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	replacement := dirsrv.New(port, dirsrv.Config{
		Site: 0, Volume: 1, Kind: route.MkdirSwitching,
		Table: e.DirTable, Log: freshLog, Net: e.Net, Host: 70,
	})
	defer replacement.Close()
	if err := replacement.Recover(snapshot, crashedLog); err != nil {
		t.Fatalf("recover: %v", err)
	}
	replacement.SetRoot(e.Root)

	// Rebind logical site 0 to the replacement. The µproxy shares this
	// table; no client-visible change occurs.
	phys := e.DirTable.Physical()
	newPhys := []netsim.Addr{newAddr}
	for _, a := range phys[1:] {
		if a != oldAddr {
			newPhys = append(newPhys, a)
		}
	}
	e.DirTable.Swap(newPhys[:2])

	// The volume is intact through the same client.
	got, _, err := c.Lookup(dir, "paper.tex")
	if err != nil {
		t.Fatalf("lookup after failover: %v", err)
	}
	if got.Ident() != fh.Ident() {
		t.Fatal("failover changed file identity")
	}
	data, err := c.ReadAll(fh)
	if err != nil || string(data) != "interposed request routing" {
		t.Fatalf("read after failover: %q, %v", data, err)
	}
	// And it keeps accepting updates.
	if _, _, err := c.Create(dir, "revision.tex", 0o644, true); err != nil {
		t.Fatalf("create after failover: %v", err)
	}
	ents, err := c.ReadDir(dir)
	if err != nil || len(ents) != 2 {
		t.Fatalf("readdir after failover: %d entries, %v", len(ents), err)
	}
}

// TestCapabilityProtection exercises the §2.2 secure-object model: with a
// capability key configured, the full client path works (the µproxy mints
// capabilities in flight), while a client that bypasses the µproxy and
// addresses a storage node directly is refused.
func TestCapabilityProtection(t *testing.T) {
	key := []byte("ensemble secret")
	e := newTest(t, func(cfg *Config) { cfg.CapabilityKey = key })
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Normal path through the µproxy: unaffected.
	fh, _, err := c.Create(c.Root(), "protected", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("s"), 128*1024) // bulk: hits storage nodes
	if err := c.WriteFile(fh, data); err != nil {
		t.Fatalf("write through µproxy: %v", err)
	}
	got, err := c.ReadAll(fh)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read through µproxy: %d bytes, %v", len(got), err)
	}
	// Remove (proxy-orchestrated, capability-stamped) works too.
	if err := c.Remove(c.Root(), "protected"); err != nil {
		t.Fatalf("remove through µproxy: %v", err)
	}

	// Bypass path: talk to a storage node directly with the raw handle
	// (no capability). Every node must refuse.
	fh2, _, err := c.Create(c.Root(), "target", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(fh2, bytes.Repeat([]byte("x"), 128*1024)); err != nil {
		t.Fatal(err)
	}
	// Window 1: the rogue probe needs synchronous per-write errors, not
	// the windowed path's deferred write-behind reporting.
	rogue, err := client.New(client.Config{
		Net: e.Net, Host: 250, Server: e.Storage[0].Addr(), Window: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	buf := make([]byte, 1024)
	_, _, err = rogue.Read(fh2, 64*1024, buf)
	if nfsproto.StatusOf(err) != nfsproto.ErrAccess {
		t.Fatalf("direct storage read without capability: %v, want EACCES", err)
	}
	if _, err := rogue.Write(fh2, 64*1024, []byte("corrupt"), false); nfsproto.StatusOf(err) != nfsproto.ErrAccess {
		t.Fatalf("direct storage write without capability: %v, want EACCES", err)
	}
	var denied uint64
	for _, n := range e.Storage {
		denied += n.DeniedRequests()
	}
	if denied < 2 {
		t.Fatalf("denied counter = %d, want >= 2", denied)
	}

	// A forged capability (wrong key) is also refused.
	forged := fhandle.WithCapability([]byte("wrong key"), fh2)
	if _, _, err := rogue.Read(forged, 64*1024, buf); nfsproto.StatusOf(err) != nfsproto.ErrAccess {
		t.Fatalf("forged capability accepted: %v", err)
	}

	// A correctly keyed capability IS accepted (this is how the µproxy
	// and coordinator address storage).
	minted := fhandle.WithCapability(key, fh2)
	if _, _, err := rogue.Read(minted, 64*1024, buf); err != nil {
		t.Fatalf("valid capability refused: %v", err)
	}
}

// TestNamespaceIntegrityAfterMixedWorkload runs a busy mixed workload
// through the full stack (µproxy orchestration included) and then fscks
// the distributed name space across all directory servers.
func TestNamespaceIntegrityAfterMixedWorkload(t *testing.T) {
	for _, kind := range []route.NameKind{route.MkdirSwitching, route.NameHashing} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newTest(t, func(cfg *Config) {
				cfg.NameKind = kind
				cfg.DirServers = 3
				cfg.MkdirP = 0.6
			})
			c, err := e.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			dirs := []fhandle.Handle{c.Root()}
			for i := 0; i < 8; i++ {
				d, _, err := c.Mkdir(dirs[i%len(dirs)], fmt.Sprintf("d%d", i), 0o755)
				if err != nil {
					t.Fatal(err)
				}
				dirs = append(dirs, d)
			}
			for i := 0; i < 30; i++ {
				dir := dirs[i%len(dirs)]
				fh, _, err := c.Create(dir, fmt.Sprintf("f%d", i), 0o644, true)
				if err != nil {
					t.Fatal(err)
				}
				if i%3 == 0 {
					if err := c.WriteFile(fh, bytes.Repeat([]byte("w"), 100+i*1000)); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Links, renames, removes, truncates, one rmdir.
			f0, _, err := c.Lookup(dirs[1], "f1")
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Link(f0, dirs[2], "hardlink"); err != nil {
				t.Fatal(err)
			}
			if err := c.Rename(dirs[1], "f1", dirs[3], "renamed"); err != nil {
				t.Fatal(err)
			}
			if err := c.Remove(dirs[2], "hardlink"); err != nil {
				t.Fatal(err)
			}
			if err := c.Truncate(f0, 10); err != nil {
				t.Fatal(err)
			}
			empty, _, err := c.Mkdir(dirs[4], "doomed", 0o755)
			if err != nil {
				t.Fatal(err)
			}
			_ = empty
			if err := c.Rmdir(dirs[4], "doomed"); err != nil {
				t.Fatal(err)
			}
			e.Proxy.WritebackAttrs()

			if problems := dirsrv.Check(e.Dirs, e.Root); len(problems) != 0 {
				t.Fatalf("namespace integrity violated:\n%s", strings.Join(problems, "\n"))
			}
		})
	}
}

// TestSymlinksThroughFullStack: symlinks are name-service objects; they
// create, resolve, and remove through the µproxy like any name op.
func TestSymlinksThroughFullStack(t *testing.T) {
	for _, kind := range []route.NameKind{route.MkdirSwitching, route.NameHashing} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newTest(t, func(cfg *Config) { cfg.NameKind = kind; cfg.DirServers = 3 })
			c, err := e.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			dir, err := c.MkdirAll(c.Root(), "bin")
			if err != nil {
				t.Fatal(err)
			}
			lnk, at, err := c.Symlink(dir, "sh", "/bin/dash")
			if err != nil {
				t.Fatalf("symlink: %v", err)
			}
			if at.Type != attr.TypeLink || at.Size != uint64(len("/bin/dash")) {
				t.Fatalf("symlink attrs: %+v", at)
			}
			target, err := c.ReadLink(lnk)
			if err != nil || target != "/bin/dash" {
				t.Fatalf("readlink: %q, %v", target, err)
			}
			// Resolvable by lookup; readlink on the looked-up handle.
			got, _, err := c.Lookup(dir, "sh")
			if err != nil {
				t.Fatal(err)
			}
			target, err = c.ReadLink(got)
			if err != nil || target != "/bin/dash" {
				t.Fatalf("readlink after lookup: %q, %v", target, err)
			}
			// READLINK on a regular file is EINVAL.
			reg, _, err := c.Create(dir, "regular", 0o644, true)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.ReadLink(reg); nfsproto.StatusOf(err) != nfsproto.ErrInval {
				t.Fatalf("readlink of regular file: %v, want EINVAL", err)
			}
			// Duplicate symlink name rejected; removal works.
			if _, _, err := c.Symlink(dir, "sh", "/elsewhere"); nfsproto.StatusOf(err) != nfsproto.ErrExist {
				t.Fatalf("duplicate symlink: %v, want EEXIST", err)
			}
			if err := c.Remove(dir, "sh"); err != nil {
				t.Fatalf("remove symlink: %v", err)
			}
			if _, _, err := c.Lookup(dir, "sh"); nfsproto.StatusOf(err) != nfsproto.ErrNoEnt {
				t.Fatalf("symlink survives remove: %v", err)
			}
			// Name space stays consistent.
			if problems := dirsrv.Check(e.Dirs, e.Root); len(problems) != 0 {
				t.Fatalf("integrity after symlink ops:\n%s", strings.Join(problems, "\n"))
			}
		})
	}
}

// TestSymlinkSurvivesDirServerFailover: symlink targets recover from the
// snapshot+log path like all other cell state.
func TestSymlinkSurvivesFailover(t *testing.T) {
	e := newTest(t, func(cfg *Config) { cfg.DirServers = 1 })
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Symlink(c.Root(), "cfg", "/etc/slice.conf"); err != nil {
		t.Fatal(err)
	}
	snap := e.Dirs[0].Snapshot()
	crashedLog, err := wal.Open(e.DirLogs[0].CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	freshLog, _ := wal.Open(wal.NewMemStore())
	port, err := e.Net.Bind(netsim.Addr{Host: 71, Port: ServicePort})
	if err != nil {
		t.Fatal(err)
	}
	replacement := dirsrv.New(port, dirsrv.Config{
		Site: 0, Volume: 1, Kind: route.MkdirSwitching,
		Table: e.DirTable, Log: freshLog, Net: e.Net, Host: 71,
	})
	defer replacement.Close()
	if err := replacement.Recover(snap, crashedLog); err != nil {
		t.Fatal(err)
	}
	replacement.SetRoot(e.Root)
	e.Dirs[0].Close()
	e.DirTable.Swap([]netsim.Addr{{Host: 71, Port: ServicePort}})
	target, err := c.ReadLink(fhandleOf(t, c, "cfg"))
	if err != nil || target != "/etc/slice.conf" {
		t.Fatalf("readlink after failover: %q, %v", target, err)
	}
}

func fhandleOf(t *testing.T, c *client.Client, name string) fhandle.Handle {
	t.Helper()
	fh, _, err := c.Lookup(c.Root(), name)
	if err != nil {
		t.Fatal(err)
	}
	return fh
}
