package client_test

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/netsim"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/route"
	"slice/internal/server"
)

// Tests for the windowed bulk-I/O engine: EOF parity with the serial
// path, write-behind coalescing and deferred errors, readahead
// correctness, and the WriteFile empty-file fast path.

func newBulkEnsemble(t *testing.T, nodes int) (*ensemble.Ensemble, func() *client.Client) {
	t.Helper()
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: nodes, DirServers: 1, SmallFileServers: 1,
		Coordinator: true, NameKind: route.MkdirSwitching,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, func() *client.Client {
		c, err := e.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
}

// TestReadEOFAtExactBoundary: a full-buffer read that ends exactly at
// EOF must report eof=true from the last chunk's server-reported flag,
// on both the windowed and the serial path — including when the file
// size is an exact chunk multiple, so no short read hints at the end.
func TestReadEOFAtExactBoundary(t *testing.T) {
	e, newWindowed := newBulkEnsemble(t, 4)
	serial, err := e.NewSerialClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(serial.Close)
	clients := map[string]*client.Client{"windowed": newWindowed(), "serial": serial}
	// 64KB (threshold), 160KB (chunk multiple), and an odd size.
	for _, size := range []int{64 * 1024, 160 * 1024, 96*1024 + 17} {
		data := bytes.Repeat([]byte{0xa5}, size)
		for name, c := range clients {
			fh, _, err := c.Create(c.Root(), name+strconv.Itoa(size), 0o644, true)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.WriteFile(fh, data); err != nil {
				t.Fatal(err)
			}
			p := make([]byte, size) // len(p) == file size exactly
			n, eof, err := c.Read(fh, 0, p)
			if err != nil || n != size {
				t.Fatalf("%s size=%d: read %d, %v", name, size, n, err)
			}
			if !eof {
				t.Fatalf("%s size=%d: full-buffer read ending at EOF reported eof=false", name, size)
			}
			if !bytes.Equal(p, data) {
				t.Fatalf("%s size=%d: data mismatch", name, size)
			}
		}
	}
}

// TestWriteFileEmptySkipsCommit: writing an empty file must not spend a
// COMMIT round trip (nor any WRITE) on the wire.
func TestWriteFileEmptySkipsCommit(t *testing.T) {
	e, newClient := newBulkEnsemble(t, 2)
	c := newClient()
	fh, _, err := c.Create(c.Root(), "empty", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Net.Stats().Sent
	if err := c.WriteFile(fh, nil); err != nil {
		t.Fatal(err)
	}
	if after := e.Net.Stats().Sent; after != before {
		t.Fatalf("WriteFile(empty) sent %d datagrams, want 0", after-before)
	}
	if data, err := c.ReadAll(fh); err != nil || len(data) != 0 {
		t.Fatalf("empty file after WriteFile: %d bytes, %v", len(data), err)
	}
}

// TestWindowedSerialEquivalence writes a file through the windowed
// client with a mix of sequential, unaligned, and overlapping writes,
// mirrors every operation on an in-memory reference, and checks both a
// windowed and a serial reader observe byte-identical content.
func TestWindowedSerialEquivalence(t *testing.T) {
	e, newWindowed := newBulkEnsemble(t, 4)
	w := newWindowed()
	serial, err := e.NewSerialClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(serial.Close)

	fh, _, err := w.Create(w.Root(), "equiv", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	ref := make([]byte, 0)
	off := uint64(0)
	for i := 0; i < 40; i++ {
		n := 1 + rng.Intn(50*1024)
		chunk := make([]byte, n)
		rng.Read(chunk)
		switch rng.Intn(4) {
		case 0: // rewind: overlapping rewrite
			if off > uint64(n) {
				off -= uint64(n) / 2
			}
		case 1: // hole-free jump back to a random earlier offset
			if len(ref) > 0 {
				off = uint64(rng.Intn(len(ref)))
			}
		}
		if _, err := w.Write(fh, off, chunk, rng.Intn(3) == 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		end := off + uint64(n)
		if uint64(len(ref)) < end {
			ref = append(ref, make([]byte, end-uint64(len(ref)))...)
		}
		copy(ref[off:end], chunk)
		off = end
	}
	if _, err := w.Commit(fh); err != nil {
		t.Fatal(err)
	}

	got, err := w.ReadAll(fh)
	if err != nil || !bytes.Equal(got, ref) {
		t.Fatalf("windowed ReadAll: %d bytes (want %d), %v", len(got), len(ref), err)
	}
	got2, err := serial.ReadAll(fh)
	if err != nil || !bytes.Equal(got2, ref) {
		t.Fatalf("serial ReadAll: %d bytes (want %d), %v", len(got2), len(ref), err)
	}
	// Random windows must agree between the two paths, including eof.
	for i := 0; i < 25; i++ {
		o := uint64(rng.Intn(len(ref)))
		l := 1 + rng.Intn(len(ref))
		pw := make([]byte, l)
		ps := make([]byte, l)
		nw, eofW, errW := w.Read(fh, o, pw)
		ns, eofS, errS := serial.Read(fh, o, ps)
		if errW != nil || errS != nil {
			t.Fatalf("read off=%d len=%d: windowed %v serial %v", o, l, errW, errS)
		}
		if nw != ns || eofW != eofS || !bytes.Equal(pw[:nw], ps[:ns]) {
			t.Fatalf("read off=%d len=%d: windowed (n=%d eof=%v) != serial (n=%d eof=%v)",
				o, l, nw, eofW, ns, eofS)
		}
	}
}

// newDirectClient runs a client against the baseline in-process server
// so the test can see the client's own observability registry and stop
// the server underneath it.
func newDirectClient(t *testing.T, cfg client.Config) (*client.Client, *obs.Registry, *server.Server) {
	t.Helper()
	net := netsim.New(netsim.Config{})
	port, err := net.Bind(netsim.Addr{Host: 2, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(port, 1, nil)
	t.Cleanup(srv.Close)
	reg := obs.NewRegistry("client")
	cfg.Net, cfg.Host, cfg.Server, cfg.Obs = net, 100, srv.Addr(), reg
	c, err := client.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Mount(); err != nil {
		t.Fatal(err)
	}
	return c, reg, srv
}

// TestWriteBehindCoalesces: many small strictly sequential unstable
// writes must be coalesced into stripe-unit chunk RPCs, not sent
// one WRITE per call.
func TestWriteBehindCoalesces(t *testing.T) {
	c, reg, _ := newDirectClient(t, client.Config{})
	fh, _, err := c.Create(c.Root(), "seq", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	const (
		start = 64 * 1024 // above the threshold, stripe-aligned
		step  = 512
		count = 256 // 128KB total = exactly 4 stripe units
	)
	payload := bytes.Repeat([]byte{7}, step)
	for i := 0; i < count; i++ {
		if _, err := c.Write(fh, uint64(start+i*step), payload, false); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := c.Flush(fh); err != nil {
		t.Fatal(err)
	}
	if chunks := reg.Hist(obs.HistBulkWriteChunk).Count(); chunks != 4 {
		t.Fatalf("%d sub-stripe writes dispatched as %d chunk RPCs, want 4", count, chunks)
	}
	got := make([]byte, count*step)
	if n, _, err := c.Read(fh, start, got); err != nil || n != len(got) {
		t.Fatalf("read back: %d, %v", n, err)
	}
	for i, b := range got {
		if b != 7 {
			t.Fatalf("byte %d = %d after coalesced write-behind", i, b)
		}
	}
}

// TestReadaheadSequentialStream reads a large file in chunk-sized steps
// and verifies every byte plus the final EOF; the occupancy histogram
// proves prefetch actually put concurrent chunks in flight.
func TestReadaheadSequentialStream(t *testing.T) {
	c, reg, _ := newDirectClient(t, client.Config{})
	fh, _, err := c.Create(c.Root(), "stream", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512*1024+333)
	rng := rand.New(rand.NewSource(5))
	rng.Read(data)
	if err := c.WriteFile(fh, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32*1024)
	pos := 0
	for {
		n, eof, err := c.Read(fh, uint64(pos), buf)
		if err != nil {
			t.Fatalf("read at %d: %v", pos, err)
		}
		if !bytes.Equal(buf[:n], data[pos:pos+n]) {
			t.Fatalf("readahead stream corrupt at offset %d", pos)
		}
		pos += n
		if eof {
			break
		}
	}
	if pos != len(data) {
		t.Fatalf("stream ended at %d, want %d", pos, len(data))
	}
	if reg.Hist(obs.HistBulkWindow).Count() == 0 {
		t.Fatal("window occupancy histogram never sampled — no pipelining happened")
	}
}

// TestDeferredWriteErrorSurfaces: an asynchronous write-behind failure
// must surface at the Commit barrier (exactly once), not vanish.
func TestDeferredWriteErrorSurfaces(t *testing.T) {
	c, _, srv := newDirectClient(t, client.Config{
		RPC: oncrpc.ClientConfig{Timeout: 5 * time.Millisecond, Retries: 1},
	})
	fh, _, err := c.Create(c.Root(), "doomed", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	// First write succeeds end to end.
	if _, err := c.Write(fh, 64*1024, bytes.Repeat([]byte{1}, 32*1024), false); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(fh); err != nil {
		t.Fatal(err)
	}
	// Take the server down; the next unstable write is accepted into the
	// window and its chunks fail asynchronously.
	srv.Close()
	if _, err := c.Write(fh, 96*1024, bytes.Repeat([]byte{2}, 64*1024), false); err != nil {
		t.Fatalf("unstable write should be accepted into write-behind: %v", err)
	}
	if _, err := c.Commit(fh); err == nil {
		t.Fatal("Commit after failed async writes returned nil")
	}
}
