package bench

import (
	"fmt"
	"io"

	"slice/internal/sim"
)

// Table2 regenerates "Bulk I/O bandwidth in the test ensemble": read and
// write, unmirrored and mirrored (2 replicas), for a single client and at
// array saturation, on 8 storage nodes.
func Table2(w io.Writer) error {
	header(w, "Table 2: bulk I/O bandwidth (MB/s)",
		"dd on large files; 32KB transfers, read-ahead 4, striped over 8 storage nodes.\n"+
			"Single-client columns are bound by the client NFS/UDP stack; saturation\n"+
			"columns by the storage nodes (55 MB/s source / 60 MB/s sink each).")

	type rowCfg struct {
		name     string
		write    bool
		mirrored bool
		paper1   float64 // paper: single client
		paperSat float64 // paper: saturation
	}
	rows := []rowCfg{
		{"read", false, false, 62.5, 437},
		{"write", true, false, 38.9, 479},
		{"read-mirrored", false, true, 52.9, 222},
		{"write-mirrored", true, true, 32.2, 251},
	}

	t := newTable("workload", "single client", "paper", "saturation", "paper ")
	for _, r := range rows {
		one := sim.RunBulk(sim.BulkConfig{
			StorageNodes: 8, Clients: 1, Write: r.write, Mirrored: r.mirrored,
		})
		sat := sim.RunBulk(sim.BulkConfig{
			StorageNodes: 8, Clients: 16, Write: r.write, Mirrored: r.mirrored, Tuned: true,
		})
		t.addf("%s|%.1f MB/s|%.1f|%.0f MB/s|%.0f",
			r.name, one.PerClientMBps, r.paper1, sat.AggregateMBps, r.paperSat)
	}
	t.write(w)
	fmt.Fprintln(w, "\n  Shape checks: reads > writes per client; mirroring costs ≈2x at")
	fmt.Fprintln(w, "  saturation (write: two replicas; read: unused prefetch on the mirrors);")
	fmt.Fprintln(w, "  saturation scales with storage nodes (see BenchmarkTable2 sweep).")
	return nil
}
