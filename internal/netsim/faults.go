package netsim

// This file is the runtime fault-injection plane: every fault the Slice
// resilience story must tolerate (§2.3, §4.2) can be injected into a live
// fabric without rebuilding it — a host can crash (its ports are torn down
// exactly as a dead machine's sockets vanish) and later restart, links can
// be cut directionally or a host isolated entirely, and individual links
// can be degraded with loss, added latency, duplication, and reordering.
//
// Fault state is published as an immutable snapshot behind an atomic
// pointer, mirroring the tap and routing-table design: the datagram hot
// path pays one pointer load when no faults are configured, and mutators
// copy-on-write under a small mutex. Faults compose with the static
// Config (LossRate, Latency), which stays untouched.

import (
	"time"
)

// LinkFault degrades one directional host→host link.
type LinkFault struct {
	// Drop is the probability in [0,1) that a datagram on the link is
	// discarded.
	Drop float64
	// Latency is added to every delivery on the link (a latency spike).
	Latency time.Duration
	// Duplicate is the probability that a datagram is delivered twice —
	// the failure mode duplicate-request caches exist for.
	Duplicate float64
	// Reorder is the probability that a datagram is held back by a random
	// extra delay of up to ReorderWindow, letting later traffic overtake.
	Reorder float64
	// ReorderWindow bounds the reorder delay (default 2ms).
	ReorderWindow time.Duration
}

// IsZero reports whether the fault does nothing.
func (f LinkFault) IsZero() bool { return f == LinkFault{} }

// hostPair is a directional src→dst host link.
type hostPair struct{ src, dst uint32 }

// faultState is one immutable snapshot of the fault plane. A nil snapshot
// means "no faults": the hot path does a single pointer load and moves on.
type faultState struct {
	down     map[uint32]bool   // crashed hosts (ports torn down)
	isolated map[uint32]bool   // partitioned hosts (ports stay bound)
	cut      map[hostPair]bool // directional link cuts
	links    map[hostPair]LinkFault
}

// empty reports whether the snapshot injects nothing.
func (fs *faultState) empty() bool {
	return len(fs.down) == 0 && len(fs.isolated) == 0 &&
		len(fs.cut) == 0 && len(fs.links) == 0
}

// clone deep-copies a snapshot (or makes a fresh one from nil).
func (fs *faultState) clone() *faultState {
	c := &faultState{
		down:     make(map[uint32]bool),
		isolated: make(map[uint32]bool),
		cut:      make(map[hostPair]bool),
		links:    make(map[hostPair]LinkFault),
	}
	if fs != nil {
		for h := range fs.down {
			c.down[h] = true
		}
		for h := range fs.isolated {
			c.isolated[h] = true
		}
		for p := range fs.cut {
			c.cut[p] = true
		}
		for p, lf := range fs.links {
			c.links[p] = lf
		}
	}
	return c
}

// mutateFaults applies fn to a copy of the fault state and publishes it.
// An empty resulting state is stored as nil so the fast path stays a
// nil-check.
func (n *Network) mutateFaults(fn func(*faultState)) {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	next := n.faults.Load().clone()
	fn(next)
	if next.empty() {
		var nilState *faultState
		n.faults.Store(nilState)
		return
	}
	n.faults.Store(next)
}

// CrashHost fails a host: every port bound on it is closed (as a dead
// machine's sockets vanish, waking blocked receivers with ErrClosed) and
// all traffic to or from it is dropped until RestartHost. It returns the
// number of ports torn down.
func (n *Network) CrashHost(host uint32) int {
	n.mutateFaults(func(fs *faultState) { fs.down[host] = true })
	n.mu.RLock()
	var victims []*Port
	for a, p := range n.ports {
		if a.Host == host {
			victims = append(victims, p)
		}
	}
	n.mu.RUnlock()
	for _, p := range victims {
		p.Close()
	}
	return len(victims)
}

// RestartHost brings a crashed host back: new ports may bind on it and
// traffic flows again. Ports torn down by CrashHost stay closed; the
// restarted component binds fresh ones.
func (n *Network) RestartHost(host uint32) {
	n.mutateFaults(func(fs *faultState) { delete(fs.down, host) })
}

// HostDown reports whether a host is currently crashed.
func (n *Network) HostDown(host uint32) bool {
	fs := n.faults.Load()
	return fs != nil && fs.down[host]
}

// IsolateHost partitions a host from the entire fabric: its ports stay
// bound and its processes keep running, but every datagram to or from it
// is dropped — the classic network partition, distinct from a crash.
func (n *Network) IsolateHost(host uint32) {
	n.mutateFaults(func(fs *faultState) { fs.isolated[host] = true })
}

// RejoinHost heals an IsolateHost partition.
func (n *Network) RejoinHost(host uint32) {
	n.mutateFaults(func(fs *faultState) { delete(fs.isolated, host) })
}

// PartitionOneWay cuts the directional link src→dst: datagrams from src
// hosts to dst hosts are dropped, while the reverse direction still
// flows. Asymmetric partitions are the hardest case for request/response
// protocols; the harness injects them deliberately.
func (n *Network) PartitionOneWay(src, dst uint32) {
	n.mutateFaults(func(fs *faultState) { fs.cut[hostPair{src, dst}] = true })
}

// Partition cuts both directions between hosts a and b.
func (n *Network) Partition(a, b uint32) {
	n.mutateFaults(func(fs *faultState) {
		fs.cut[hostPair{a, b}] = true
		fs.cut[hostPair{b, a}] = true
	})
}

// Heal removes both directional cuts between a and b.
func (n *Network) Heal(a, b uint32) {
	n.mutateFaults(func(fs *faultState) {
		delete(fs.cut, hostPair{a, b})
		delete(fs.cut, hostPair{b, a})
	})
}

// SetLinkFault installs (or, for a zero fault, clears) a degradation on
// the directional link src→dst.
func (n *Network) SetLinkFault(src, dst uint32, f LinkFault) {
	n.mutateFaults(func(fs *faultState) {
		if f.IsZero() {
			delete(fs.links, hostPair{src, dst})
			return
		}
		fs.links[hostPair{src, dst}] = f
	})
}

// HealAll clears every injected fault: partitions, isolations, link
// degradations, and down markers (crashed hosts' ports stay closed).
func (n *Network) HealAll() {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	var nilState *faultState
	n.faults.Store(nilState)
}

// defaultReorderWindow bounds reorder hold-back when the fault does not
// specify one.
const defaultReorderWindow = 2 * time.Millisecond

// faultVerdict consults the fault plane for one delivery. It returns
// whether to drop the datagram, any extra delivery delay, and whether to
// duplicate the delivery.
func (n *Network) faultVerdict(srcHost, dstHost uint32) (drop bool, delay time.Duration, dup bool) {
	fs := n.faults.Load()
	if fs == nil {
		return false, 0, false
	}
	if fs.down[srcHost] || fs.down[dstHost] ||
		fs.isolated[srcHost] || fs.isolated[dstHost] ||
		fs.cut[hostPair{srcHost, dstHost}] {
		return true, 0, false
	}
	lf, ok := fs.links[hostPair{srcHost, dstHost}]
	if !ok {
		return false, 0, false
	}
	if lf.Drop > 0 && n.randFloat() < lf.Drop {
		return true, 0, false
	}
	delay = lf.Latency
	if lf.Reorder > 0 && n.randFloat() < lf.Reorder {
		window := lf.ReorderWindow
		if window <= 0 {
			window = defaultReorderWindow
		}
		delay += time.Duration(n.randFloat() * float64(window))
	}
	dup = lf.Duplicate > 0 && n.randFloat() < lf.Duplicate
	return false, delay, dup
}

// randFloat draws from the network's seeded generator.
func (n *Network) randFloat() float64 {
	n.rngMu.Lock()
	v := n.rng.Float64()
	n.rngMu.Unlock()
	return v
}
