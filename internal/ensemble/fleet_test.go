package ensemble

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"slice/internal/oncrpc"
	"slice/internal/route"
)

// TestFleetServesAcrossProxies runs a workload through a 4-proxy fleet
// and checks both correctness (every operation lands) and distribution
// (more than one proxy actually carried traffic — the flow hash spreads
// clients over the fleet instead of funneling them through one member).
func TestFleetServesAcrossProxies(t *testing.T) {
	e := newTest(t, func(cfg *Config) { cfg.Proxies = 4 })
	if len(e.Proxies) != 4 || e.Fleet.Len() != 4 {
		t.Fatalf("fleet size = %d proxies, %d members", len(e.Proxies), e.Fleet.Len())
	}
	// Several clients, each writing and reading its own file tree.
	payload := bytes.Repeat([]byte("fleet"), 64*1024) // crosses the bulk threshold
	for i := 0; i < 4; i++ {
		c, err := e.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		dir, _, err := c.Mkdir(c.Root(), fmt.Sprintf("d%d", i), 0o755)
		if err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		fh, _, err := c.Create(dir, "data", 0o644, false)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := c.WriteFile(fh, payload); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := c.ReadAll(fh)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("read back: %d bytes, err %v", len(got), err)
		}
		c.Close()
	}
	busy := 0
	for i, p := range e.Proxies {
		if n := p.Stats().Requests; n > 0 {
			busy++
			t.Logf("proxy %d forwarded %d requests", i, n)
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 proxies carried traffic; flows are not spreading", busy)
	}
}

// TestFleetCoordinatedRouteSwap checks the coordinated-retarget
// property: the fleet shares its routing tables, so one Swap moves
// every member to the identical route-table version — no member can
// keep forwarding by the superseded binding.
func TestFleetCoordinatedRouteSwap(t *testing.T) {
	e := newTest(t, func(cfg *Config) { cfg.Proxies = 4 })
	before := e.Proxies[0].RouteVersion()
	for i, p := range e.Proxies {
		if v := p.RouteVersion(); v != before {
			t.Fatalf("proxy %d at route version %d, proxy 0 at %d", i, v, before)
		}
	}
	e.DirTable.Swap(e.DirTable.Physical())
	for i, p := range e.Proxies {
		if v := p.RouteVersion(); v != before+1 {
			t.Fatalf("after swap, proxy %d at route version %d, want %d", i, v, before+1)
		}
	}
}

// TestProxyCrashDoesNotStrandRequest is the pinned-resolution
// regression test: a call in flight when its owning proxy dies must
// reach a sibling by ordinary retransmission — before the fix, the
// client resolved its proxy at mount time and every retry of that call
// hammered the corpse until the RPC budget ran out.
func TestProxyCrashDoesNotStrandRequest(t *testing.T) {
	e := newTest(t, func(cfg *Config) {
		cfg.Proxies = 2
		cfg.ClientRPC = oncrpc.ClientConfig{Timeout: 25 * time.Millisecond, Retries: 9}
	})
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, _, err := c.Create(c.Root(), "f", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}

	// Find the proxy owning this file's flow: probe with the same call
	// the test will strand, and see whose request counter moves.
	before := make([]uint64, len(e.Proxies))
	for i, p := range e.Proxies {
		before[i] = p.Stats().Requests
	}
	if _, err := c.GetAttr(fh); err != nil {
		t.Fatal(err)
	}
	owner := -1
	for i, p := range e.Proxies {
		if p.Stats().Requests > before[i] {
			owner = i
		}
	}
	if owner < 0 {
		t.Fatal("no proxy carried the probe request")
	}

	// The owner dies before the call's first transmission (Close is what
	// CrashProxy does first, so this is the same fault with deterministic
	// timing), but the fleet table has not noticed yet: the transmission
	// blackholes exactly as it would against a freshly dead machine. The
	// membership swap lands 10ms in — before the first 25ms retransmit —
	// so that same in-flight call must fail over to the sibling.
	e.Proxies[owner].Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.GetAttr(fh)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	e.Chaos().CrashProxy(owner)
	if err := <-done; err != nil {
		t.Fatalf("request stranded by proxy crash: %v", err)
	}
	if c.Retransmissions() == 0 {
		t.Fatal("call completed without retransmission; crash timing did not exercise failover")
	}

	// The sibling keeps serving new flows too.
	if _, _, err := c.Create(c.Root(), "g", 0o644, false); err != nil {
		t.Fatalf("create after failover: %v", err)
	}
}

// TestProxyRestartRejoinsFleet crashes a member, verifies the fleet
// table shrank, restarts it, and checks it takes traffic again under
// its old identity.
func TestProxyRestartRejoinsFleet(t *testing.T) {
	e := newTest(t, func(cfg *Config) {
		cfg.Proxies = 2
		cfg.ClientRPC = oncrpc.ClientConfig{Timeout: 25 * time.Millisecond, Retries: 9}
	})
	ver := e.Fleet.Version()
	e.Chaos().CrashProxy(1)
	if e.Fleet.Len() != 1 || e.Fleet.Version() != ver+1 {
		t.Fatalf("after crash: %d members at version %d", e.Fleet.Len(), e.Fleet.Version())
	}
	if _, err := e.Chaos().RestartProxy(1); err != nil {
		t.Fatal(err)
	}
	if e.Fleet.Len() != 2 {
		t.Fatalf("after restart: %d members", e.Fleet.Len())
	}
	if m, ok := e.Fleet.Member(1); !ok || m.Virtual != (route.ProxyMember{ID: 1, Virtual: proxyVirtual(1), Host: proxyHost(1)}).Virtual {
		t.Fatalf("restarted member = %+v, %v", m, ok)
	}
	// A fresh client mounts and works against the full fleet.
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Create(c.Root(), "h", 0o644, false); err != nil {
		t.Fatal(err)
	}
}
