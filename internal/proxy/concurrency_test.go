package proxy_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"slice/internal/client"
)

// TestConcurrentTrafficDuringFlush hammers the µproxy from several
// clients while another goroutine repeatedly discards the soft state
// (FlushSoftState) and forces attribute writeback. Soft state is
// recoverable by construction (§2.1): every request must still complete —
// at worst via end-to-end retransmission — and no reply may be lost or
// misdelivered. Run under -race this also exercises the shard locking,
// the pooled pending records, and the out-of-lock eviction writeback
// against concurrent flushes.
func TestConcurrentTrafficDuringFlush(t *testing.T) {
	e := newEnsemble(t, nil)

	const workers = 6
	const opsPer = 40

	stop := make(chan struct{})
	flusherDone := make(chan struct{})
	go func() {
		defer close(flusherDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.Proxy.WritebackAttrs()
			e.Proxy.FlushSoftState()
		}
	}()

	// NewClient mutates ensemble bookkeeping and is not meant to be called
	// concurrently, so each worker's client is created up front.
	clients := make([]*client.Client, workers)
	for w := range clients {
		c, err := e.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		clients[w] = c
		defer c.Close()
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := clients[w]
			name := fmt.Sprintf("flush-%d", w)
			fh, _, err := c.Create(c.Root(), name, 0o644, true)
			if err != nil {
				errs <- fmt.Errorf("worker %d: create: %w", w, err)
				return
			}
			payload := bytes.Repeat([]byte{byte('a' + w)}, 512)
			for i := 0; i < opsPer; i++ {
				if _, err := c.Write(fh, uint64(i)*512, payload, true); err != nil {
					errs <- fmt.Errorf("worker %d op %d: write: %w", w, i, err)
					return
				}
				buf := make([]byte, 512)
				if _, _, err := c.Read(fh, uint64(i)*512, buf); err != nil {
					errs <- fmt.Errorf("worker %d op %d: read: %w", w, i, err)
					return
				}
				if !bytes.Equal(buf, payload) {
					errs <- fmt.Errorf("worker %d op %d: read returned wrong bytes", w, i)
					return
				}
				if _, err := c.GetAttr(fh); err != nil {
					errs <- fmt.Errorf("worker %d op %d: getattr: %w", w, i, err)
					return
				}
				if _, _, err := c.Lookup(c.Root(), name); err != nil {
					errs <- fmt.Errorf("worker %d op %d: lookup: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-flusherDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Flushing may legitimately discard not-yet-written-back attribute
	// updates (soft state), but the data itself lives on the storage
	// nodes and must all be there: read everything back through a fresh
	// client whose caches saw none of the traffic.
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for w := 0; w < workers; w++ {
		fh, _, err := c.Lookup(c.Root(), fmt.Sprintf("flush-%d", w))
		if err != nil {
			t.Fatalf("final lookup worker %d: %v", w, err)
		}
		want := bytes.Repeat([]byte{byte('a' + w)}, 512)
		buf := make([]byte, 512)
		for i := 0; i < opsPer; i++ {
			if _, _, err := c.Read(fh, uint64(i)*512, buf); err != nil {
				t.Fatalf("final read worker %d chunk %d: %v", w, i, err)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("worker %d chunk %d: lost or corrupt data after flushes", w, i)
			}
		}
	}
}
