package ensemble

import (
	"time"

	"fmt"

	"slice/internal/netsim"
	"slice/internal/obs"
	"slice/internal/rebalance"
	"slice/internal/replica"
	"slice/internal/route"
	"slice/internal/storage"
)

// HostRebalance is where the rebalance driver binds its client ports
// (between the proxy range growing down from HostProxy and HostCoord).
const HostRebalance = 91

// AddStorageNodes starts n more storage nodes on the next slots of the
// host plan, fully wired (capability key, pacing, obs) but NOT yet bound
// into any routing table — Grow binds them. Returns their addresses.
func (e *Ensemble) AddStorageNodes(n int) ([]netsim.Addr, error) {
	var added []netsim.Addr
	for j := 0; j < n; j++ {
		i := len(e.Storage)
		addr := netsim.Addr{Host: HostStorage0 + uint32(i), Port: ServicePort}
		port, err := e.Net.Bind(addr)
		if err != nil {
			return nil, err
		}
		node := storage.NewNode(port, storage.NewObjectStore())
		if len(e.cfg.CapabilityKey) > 0 {
			node.RequireCapability(e.cfg.CapabilityKey)
		}
		if e.cfg.StorageServiceTime > 0 {
			node.SetServiceTime(e.cfg.StorageServiceTime)
		}
		reg := obs.NewRegistry(fmt.Sprintf("storage[%d]", i))
		node.SetObs(reg)
		e.Obs.AddRegistry(reg)
		e.obsStorage = append(e.obsStorage, reg)
		e.Storage = append(e.Storage, node)
		added = append(added, addr)
	}
	return added, nil
}

// Rebalancer returns the ensemble's block-migration driver (built on
// first use). One driver serves all transitions; Run refuses overlap.
func (e *Ensemble) Rebalancer() *rebalance.Driver {
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	if e.rebal == nil {
		var coordAddr netsim.Addr
		if e.Coord != nil {
			coordAddr = e.Coord.Addr()
		}
		reg := obs.NewRegistry("rebalance")
		e.Obs.AddRegistry(reg)
		// The intention heartbeat must beat the coordinator's probe, or
		// a healthy migration reads as a dead driver and gets rolled
		// back (chaos ensembles shrink the probe window well below the
		// driver's default).
		var hb time.Duration
		if e.cfg.CoordProbeAfter > 0 {
			hb = e.cfg.CoordProbeAfter / 4
		}
		e.rebal = rebalance.New(rebalance.Config{
			Net:       e.Net,
			Host:      HostRebalance,
			IO:        e.IOPolicy,
			Coord:     coordAddr,
			CapKey:    e.cfg.CapabilityKey,
			Heartbeat: hb,
			Obs:       reg,
		})
	}
	return e.rebal
}

// RebalanceStatus reports the driver's migration progress (idle when no
// transition ever ran).
func (e *Ensemble) RebalanceStatus() rebalance.Status {
	return e.Rebalancer().Status()
}

// elasticOK rejects configurations whose placement the rebalance driver
// cannot recompute from storage listings alone: block-mapped files
// consult per-file coordinator maps, and mirrored striping needs the
// MirrorDegree only the handle carries.
func (e *Ensemble) elasticOK() error {
	if e.cfg.UseBlockMaps {
		return fmt.Errorf("ensemble: elastic reconfiguration is incompatible with UseBlockMaps (block-mapped placement is per-file coordinator state, DESIGN.md §13)")
	}
	if e.cfg.MirrorDegree > 1 {
		return fmt.Errorf("ensemble: elastic reconfiguration is incompatible with MirrorDegree > 1 (mirror fan-out is handle state the driver cannot recover, DESIGN.md §13)")
	}
	return nil
}

// Grow adds n storage nodes and migrates blocks onto them online: new
// nodes are started, the transition opens (every foreground write fans
// out to both bindings), the driver copies and verifies until the
// bindings agree, and the commit swaps reads and new writes to the
// wider stripe class in one table generation. Blocks move from old
// nodes only onto new ones (minimal movement).
func (e *Ensemble) Grow(n int) error {
	if err := e.elasticOK(); err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("ensemble: Grow(%d)", n)
	}
	k := e.cfg.Replication
	if k > 1 && n%k != 0 {
		return fmt.Errorf("ensemble: Grow(%d) must add whole replica groups of %d", n, k)
	}
	added, err := e.AddStorageNodes(n)
	if err != nil {
		return err
	}
	cur := e.StorageTable.Physical()
	if k > 1 {
		// Replicated: groups stay consecutive, so the old groups (and
		// their primaries) are unchanged and only whole new groups
		// appear. The pending map expands pending-side writes during the
		// copy; the live map swaps in preCommit, just before the commit
		// publishes the new primaries.
		old := e.Replicas.Groups()
		all := make([]netsim.Addr, 0, len(e.Storage))
		for _, g := range old {
			all = append(all, g.Members...)
		}
		all = append(all, added...)
		nextReps := replica.NewMap(k, all)
		var newPrims []netsim.Addr
		for _, g := range nextReps.Groups()[len(old):] {
			newPrims = append(newPrims, g.Members[0])
		}
		for gi, g := range nextReps.Groups() {
			for mi, a := range g.Members {
				if node := e.nodeAt(a); node != nil {
					node.SetReplica(uint32(gi), uint32(mi))
				}
			}
		}
		next, err := route.PlanGrow(cur, newPrims, e.StorageTable.NumLogical())
		if err != nil {
			return err
		}
		return e.Rebalancer().Run(next, nextReps, func() error {
			e.Replicas.Swap(all)
			return nil
		})
	}
	next, err := route.PlanGrow(cur, added, e.StorageTable.NumLogical())
	if err != nil {
		return err
	}
	return e.Rebalancer().Run(next, nil, nil)
}

// Shrink migrates blocks off the last n storage nodes and removes them
// from placement. The nodes keep running (their stale bytes are
// garbage, not state) until the caller closes them.
func (e *Ensemble) Shrink(n int) error {
	if err := e.elasticOK(); err != nil {
		return err
	}
	k := e.cfg.Replication
	if k > 1 && n%k != 0 {
		return fmt.Errorf("ensemble: Shrink(%d) must remove whole replica groups of %d", n, k)
	}
	cur := e.StorageTable.Physical()
	if k > 1 {
		old := e.Replicas.Groups()
		drop := n / k
		if drop >= len(old) {
			return fmt.Errorf("ensemble: Shrink(%d) would empty the array", n)
		}
		keep := old[:len(old)-drop]
		var all, removedPrims []netsim.Addr
		for _, g := range keep {
			all = append(all, g.Members...)
		}
		for _, g := range old[len(keep):] {
			removedPrims = append(removedPrims, g.Members[0])
		}
		nextReps := replica.NewMap(k, all)
		next, err := route.PlanShrink(cur, removedPrims)
		if err != nil {
			return err
		}
		return e.Rebalancer().Run(next, nextReps, func() error {
			e.Replicas.Swap(all)
			return nil
		})
	}
	if n <= 0 || n >= e.StorageTable.NumPhysical() {
		return fmt.Errorf("ensemble: Shrink(%d) of a %d-node array", n, e.StorageTable.NumPhysical())
	}
	removed := make([]netsim.Addr, 0, n)
	for i := len(e.Storage) - n; i < len(e.Storage); i++ {
		removed = append(removed, netsim.Addr{Host: HostStorage0 + uint32(i), Port: ServicePort})
	}
	next, err := route.PlanShrink(cur, removed)
	if err != nil {
		return err
	}
	return e.Rebalancer().Run(next, nil, nil)
}

// nodeAt finds the running storage node bound at addr (by host-plan
// slot), nil if none.
func (e *Ensemble) nodeAt(addr netsim.Addr) *storage.Node {
	i := int(addr.Host) - HostStorage0
	if i < 0 || i >= len(e.Storage) {
		return nil
	}
	return e.Storage[i]
}

// adminGrow runs Grow in the background for the stats-plane verb; the
// admin mutex keeps concurrent verbs from interleaving transitions
// (overlap is also refused by Table.Begin, this just orders them).
func (e *Ensemble) adminGrow(n int) {
	go func() {
		e.adminMu.Lock()
		defer e.adminMu.Unlock()
		_ = e.Grow(n)
	}()
}

func (e *Ensemble) adminShrink(n int) {
	go func() {
		e.adminMu.Lock()
		defer e.adminMu.Unlock()
		_ = e.Shrink(n)
	}()
}
