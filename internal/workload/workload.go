// Package workload implements the paper's workload generators for the
// *live* Slice stack (protocol servers over the in-memory network):
//
//   - Untar: the name-intensive benchmark of §5 — unpacking a tree of
//     zero-length files shaped like the FreeBSD source distribution, each
//     create generating seven NFS operations.
//   - Sfs: a SPECsfs97-like mix generator (op mix and small-file skew of
//     the SFS file set) used to exercise the full ensemble and to measure
//     the µproxy's per-stage costs under realistic traffic.
//   - DD: sequential bulk I/O on large files (Table 2's access pattern).
//
// The simulator in internal/sim reproduces the paper's *performance*
// figures; these generators validate the *functional* behaviour of the
// real implementation under the same workload shapes, and drive the
// Table 3 measurement.
package workload

import (
	"fmt"

	"slice/internal/client"
	"slice/internal/fhandle"
	"slice/internal/nfsproto"
)

// UntarConfig shapes the untar benchmark.
type UntarConfig struct {
	// Entries is the number of files+directories to create (the paper
	// used 36,000 per process; tests use less).
	Entries int
	// DirFraction is the share of entries that are directories.
	DirFraction float64
	// Branching bounds children per directory before a sibling is used.
	Branching int
	// Prefix distinguishes concurrent processes' subtrees.
	Prefix string
	// Seed varies tree shape.
	Seed uint64
}

func (c *UntarConfig) defaults() {
	if c.Entries <= 0 {
		c.Entries = 1000
	}
	if c.DirFraction <= 0 {
		c.DirFraction = 0.08
	}
	if c.Branching <= 0 {
		c.Branching = 16
	}
	if c.Prefix == "" {
		c.Prefix = "untar"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// UntarStats reports what the run did.
type UntarStats struct {
	Dirs    int
	Files   int
	NFSOps  int // operations issued, counting the 7-op create sequence
	Renames int
}

// xorshift for deterministic tree shapes without math/rand plumbing.
type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	return p.s * 0x2545F4914F6CDD1D
}
func (p *prng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(p.next() % uint64(n))
}

// Untar unpacks a synthetic source tree under root using c, issuing the
// same seven-operation sequence per file create that the paper's untar
// generates: lookup, access, create, getattr, lookup, setattr, setattr.
func Untar(c *client.Client, root fhandle.Handle, cfg UntarConfig) (UntarStats, error) {
	cfg.defaults()
	rng := prng{s: cfg.Seed*2654435761 + 11}
	var st UntarStats

	top, _, err := c.Mkdir(root, cfg.Prefix, 0o755)
	if err != nil {
		return st, fmt.Errorf("untar: top mkdir: %w", err)
	}
	st.Dirs++
	st.NFSOps++

	dirs := []fhandle.Handle{top}
	nDirs := int(float64(cfg.Entries) * cfg.DirFraction)
	if nDirs < 1 {
		nDirs = 1
	}

	for len(dirs) < nDirs {
		parent := dirs[rng.intn(len(dirs))]
		name := fmt.Sprintf("d%05d", len(dirs))
		fh, _, err := c.Mkdir(parent, name, 0o755)
		if err != nil {
			return st, fmt.Errorf("untar: mkdir %s: %w", name, err)
		}
		dirs = append(dirs, fh)
		st.Dirs++
		st.NFSOps++
	}

	for f := nDirs; f < cfg.Entries; f++ {
		parent := dirs[rng.intn(len(dirs))]
		name := fmt.Sprintf("f%05d.c", f)
		// The paper's seven-op create sequence, issued literally.
		if _, _, err := c.Lookup(parent, name); nfsproto.StatusOf(err) != nfsproto.ErrNoEnt {
			if err == nil {
				continue // already exists from a previous pass
			}
			return st, fmt.Errorf("untar: pre-lookup %s: %w", name, err)
		}
		if _, err := c.Access(parent, nfsproto.AccessModify); err != nil {
			return st, fmt.Errorf("untar: access: %w", err)
		}
		fh, _, err := c.Create(parent, name, 0o644, true)
		if err != nil {
			return st, fmt.Errorf("untar: create %s: %w", name, err)
		}
		if _, err := c.GetAttr(fh); err != nil {
			return st, fmt.Errorf("untar: getattr: %w", err)
		}
		if _, _, err := c.Lookup(parent, name); err != nil {
			return st, fmt.Errorf("untar: post-lookup: %w", err)
		}
		if _, err := c.SetAttr(fh, setMode(0o644)); err != nil {
			return st, fmt.Errorf("untar: setattr1: %w", err)
		}
		if _, err := c.SetAttr(fh, setMode(0o444)); err != nil {
			return st, fmt.Errorf("untar: setattr2: %w", err)
		}
		st.Files++
		st.NFSOps += 7
	}
	return st, nil
}
