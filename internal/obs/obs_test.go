package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the power-of-two bucket layout: bucket 0
// holds only zero, bucket i holds [2^(i-1), 2^i).
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21},
		{1<<20 - 1, 20},
		{1 << 62, NumBuckets - 1}, // clamped into the last bucket
		{^uint64(0), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Boundary consistency: every bucket's upper bound lands in that
	// bucket, and upper+1 lands in the next.
	for i := 1; i < NumBuckets-1; i++ {
		up := BucketUpper(i)
		if got := bucketIndex(up); got != i {
			t.Errorf("BucketUpper(%d)=%d maps to bucket %d", i, up, got)
		}
		if got := bucketIndex(up + 1); got != i+1 {
			t.Errorf("BucketUpper(%d)+1 maps to bucket %d, want %d", i, got, i+1)
		}
	}
}

// TestPercentiles checks percentile extraction on a known distribution.
func TestPercentiles(t *testing.T) {
	var h Histogram
	if got := h.Snapshot(); got.Percentile(0.5) != 0 || got.Max() != 0 {
		t.Fatalf("empty histogram: p50=%d max=%d, want 0", got.Percentile(0.5), got.Max())
	}

	// 90 samples in bucket 10 ([512,1024)), 9 in bucket 14, 1 in bucket 20.
	for i := 0; i < 90; i++ {
		h.Record(600)
	}
	for i := 0; i < 9; i++ {
		h.Record(10_000)
	}
	h.Record(1_000_000)

	s := h.Snapshot()
	if s.Count() != 100 {
		t.Fatalf("count = %d, want 100", s.Count())
	}
	if got, want := s.Percentile(0.50), BucketUpper(10); got != want {
		t.Errorf("p50 = %d, want %d", got, want)
	}
	if got, want := s.Percentile(0.90), BucketUpper(10); got != want {
		t.Errorf("p90 = %d, want %d (rank 90 is the last sample of bucket 10)", got, want)
	}
	if got, want := s.Percentile(0.95), BucketUpper(14); got != want {
		t.Errorf("p95 = %d, want %d", got, want)
	}
	if got, want := s.Percentile(0.99), BucketUpper(14); got != want {
		t.Errorf("p99 = %d, want %d (rank 99 is the last bucket-14 sample)", got, want)
	}
	if got, want := s.Percentile(1.0), BucketUpper(20); got != want {
		t.Errorf("p100 = %d, want %d", got, want)
	}
	if got, want := s.Max(), BucketUpper(20); got != want {
		t.Errorf("max = %d, want %d", got, want)
	}
	if mean := s.Mean(); mean <= 0 {
		t.Errorf("mean = %v, want > 0", mean)
	}
}

// TestMerge checks that merged snapshots equal recording into one.
func TestMerge(t *testing.T) {
	var a, b, both Histogram
	vals := []uint64{0, 1, 5, 100, 5000, 1 << 30}
	for i, v := range vals {
		both.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	if sa != both.Snapshot() {
		t.Fatalf("merged snapshot differs from combined recording:\n%v\n%v", sa, both.Snapshot())
	}
}

// TestConcurrentRecording hammers one histogram from many goroutines and
// checks no samples are lost (run under -race by `make check`).
func TestConcurrentRecording(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20_000
	)
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(uint64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 3, 900, 1 << 33} {
		h.Record(v)
	}
	s := h.Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back HistSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip mismatch: %v != %v", back, s)
	}
}

func TestRegistryAndCollector(t *testing.T) {
	r1 := NewRegistry("dirsrv[0]")
	r2 := NewRegistry("dirsrv[1]")
	r1.Hist("nfs.lookup").Record(1000)
	r1.Hist("nfs.lookup").Record(2000)
	r2.Hist("nfs.lookup").Record(4000)

	c := NewCollector()
	c.AddRegistry(r1)
	c.AddRegistry(r2)

	snap := c.Snapshot()
	merged := snap.MergeOpClass("nfs.lookup")
	if merged.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", merged.Count())
	}

	// Same-name registration replaces (restart path).
	r1b := NewRegistry("dirsrv[0]")
	r1b.Hist("nfs.lookup").Record(8000)
	c.AddRegistry(r1b)
	if got := c.Snapshot().MergeOpClass("nfs.lookup").Count(); got != 2 {
		t.Fatalf("after replace, merged count = %d, want 2", got)
	}

	var buf bytes.Buffer
	c.WriteText(&buf)
	if !strings.Contains(buf.String(), "dirsrv[1] nfs.lookup count=1") {
		t.Fatalf("text exposition missing dirsrv[1] line:\n%s", buf.String())
	}

	// JSON snapshot decodes back into a ClusterSnapshot.
	var back ClusterSnapshot
	if err := json.Unmarshal(c.SnapshotJSON(), &back); err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Component("dirsrv[1]"); !ok {
		t.Fatal("decoded snapshot missing dirsrv[1]")
	}
}

func TestMergeRole(t *testing.T) {
	c := NewCollector()
	p0 := NewRegistry("uproxy")
	p1 := NewRegistry("uproxy[1]")
	d := NewRegistry("dirsrv[0]")
	p0.Hist("e2e.nfs.lookup").Record(1000)
	p0.Hist("e2e.nfs.lookup").Record(2000)
	p1.Hist("e2e.nfs.lookup").Record(4000)
	p1.Hist("e2e.nfs.create").Record(4000)
	d.Hist("e2e.nfs.lookup").Record(8000) // other role: must not leak in
	c.AddRegistry(p0)
	c.AddRegistry(p1)
	c.AddRegistry(d)

	fleet, n := c.Snapshot().MergeRole("uproxy", "uproxy(fleet)")
	if n != 2 {
		t.Fatalf("merged %d instances, want 2", n)
	}
	if fleet.Component != "uproxy(fleet)" {
		t.Fatalf("aggregate named %q", fleet.Component)
	}
	if got := fleet.Hists["e2e.nfs.lookup"].Count(); got != 3 {
		t.Fatalf("aggregate lookup count = %d, want 3 (dirsrv leaked in?)", got)
	}
	if got := fleet.Hists["e2e.nfs.create"].Count(); got != 1 {
		t.Fatalf("aggregate create count = %d, want 1", got)
	}
}

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(64)
	start := time.Now().UnixNano()
	s := tr.Start(42, 3, start)
	s.ClassifyNS = 100
	s.AddHop(HopDirsrv, 5000, 3000)
	s.AddHop(HopCoord, 7000, 6000)
	tr.Finish(s, start+12_000)

	recent := tr.Recent(10)
	if len(recent) != 1 {
		t.Fatalf("recent = %d spans, want 1", len(recent))
	}
	got := recent[0]
	if got.ID != 42 || got.NHops != 2 || got.Hops[0].Kind != HopDirsrv {
		t.Fatalf("unexpected span record: %+v", got)
	}
	if got.HopTotal(HopCoord) != 7000 {
		t.Fatalf("HopTotal(coord) = %d, want 7000", got.HopTotal(HopCoord))
	}

	// Hop overflow is counted but bounded.
	s2 := tr.Start(43, 1, start)
	for i := 0; i < MaxHops+3; i++ {
		s2.AddHop(HopStorage, 1, 0)
	}
	if s2.NHops != MaxHops+3 {
		t.Fatalf("NHops = %d, want %d", s2.NHops, MaxHops+3)
	}
	tr.Abort(s2)

	// Ring wraps without losing the newest entries.
	for i := 0; i < 500; i++ {
		sp := tr.Start(uint64(i), 0, int64(i))
		tr.Finish(sp, int64(i+1))
	}
	recent = tr.Recent(4)
	if len(recent) != 4 {
		t.Fatalf("recent = %d, want 4", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i-1].End < recent[i].End {
			t.Fatalf("recent not newest-first: %d before %d", recent[i-1].End, recent[i].End)
		}
	}
}
