package bench

import (
	"fmt"
	"io"

	"slice/internal/ensemble"
	"slice/internal/route"
	"slice/internal/workload"
)

// Table3 regenerates "µproxy CPU cost": the per-stage cost breakdown of
// the interposed request router under the name-intensive untar workload.
// Unlike the performance figures, this experiment measures the LIVE
// µproxy implementation: the same packet decode, rewrite, and soft-state
// code that routed every request in the functional tests.
//
// The paper reports each stage as a percentage of a 500 MHz client's CPU
// at 6250 packets/second (totalling 6.1%). We report the measured
// nanoseconds per packet by stage, each stage's share of total µproxy
// time, and the CPU share the measured costs would consume at the same
// 6250 packets/second on one core.
func Table3(w io.Writer) error {
	header(w, "Table 3: µproxy CPU cost per stage",
		"Live µproxy under the untar workload (zero-length file creates,\n"+
			"7 NFS ops per create), as in §5 of the paper.")

	e, err := ensemble.New(ensemble.Config{
		StorageNodes:     2,
		DirServers:       2,
		SmallFileServers: 1,
		Coordinator:      true,
		NameKind:         route.MkdirSwitching,
		MkdirP:           0.5,
	})
	if err != nil {
		return err
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		return err
	}
	defer c.Close()

	if _, err := workload.Untar(c, c.Root(), workload.UntarConfig{Entries: 2000}); err != nil {
		return err
	}

	st := e.Proxy.Stats()
	packets := st.Requests + st.Responses
	if packets == 0 {
		return fmt.Errorf("table3: no packets traversed the µproxy")
	}
	total := st.TotalNS()

	type stage struct {
		name     string
		ns       uint64
		paperCPU float64 // paper's % of client CPU at 6250 pkts/s
	}
	stages := []stage{
		{"packet interception", st.InterceptNS, 0.7},
		{"packet decode", st.DecodeNS, 4.1},
		{"redirection/rewriting", st.RewriteNS, 0.5},
		{"soft state logic", st.SoftStateNS, 0.8},
	}

	t := newTable("stage", "ns/packet", "share", "cpu@6250pkt/s", "paper cpu", "paper share")
	paperTotal := 6.1
	for _, s := range stages {
		perPkt := float64(s.ns) / float64(packets)
		share := float64(s.ns) / float64(total) * 100
		cpuAt := perPkt * 6250 / 1e9 * 100
		t.addf("%s|%.0f|%.1f%%|%.2f%%|%.1f%%|%.1f%%",
			s.name, perPkt, share, cpuAt, s.paperCPU, s.paperCPU/paperTotal*100)
	}
	totalPerPkt := float64(total) / float64(packets)
	t.addf("total|%.0f|100.0%%|%.2f%%|%.1f%%|100.0%%",
		totalPerPkt, totalPerPkt*6250/1e9*100, paperTotal)
	t.write(w)

	fmt.Fprintf(w, "\n  packets intercepted: %d (requests %d, responses %d, absorbed %d)\n",
		st.Intercepted, st.Requests, st.Responses, st.Absorbed)
	fmt.Fprintln(w, "  Shape check: packet decode dominates (locating variable-length RPC/NFS")
	fmt.Fprintln(w, "  fields), redirection itself is cheap — the paper's central claim about")
	fmt.Fprintln(w, "  wire-speed feasibility of interposed request routing.")
	return nil
}
