package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"slice/internal/netsim"
	"slice/internal/nfsproto"
)

func TestRecordRoundTrip(t *testing.T) {
	sizes := []int{0, 1, 3, 4095, 64 << 10, 96*1024 + 17, 100 << 10, MaxRecord}
	frags := []int{0, 1, 1000, 64 << 10, MaxRecord}
	for _, size := range sizes {
		payload := bytes.Repeat([]byte{byte(size)}, size)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		for _, frag := range frags {
			if frag > 0 && frag < 1024 && size > 8192 {
				continue // tiny fragments over big payloads: O(size/frag) frames, no extra coverage
			}
			var stream bytes.Buffer
			bw := bufio.NewWriter(&stream)
			if err := writeRecord(bw, payload, frag); err != nil {
				t.Fatalf("writeRecord(size=%d frag=%d): %v", size, frag, err)
			}
			if err := bw.Flush(); err != nil {
				t.Fatal(err)
			}
			got, err := readRecord(&stream, 0)
			if err != nil {
				t.Fatalf("readRecord(size=%d frag=%d): %v", size, frag, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("payload mismatch at size=%d frag=%d", size, frag)
			}
			netsim.FreeBuf(got)
			if stream.Len() != 0 {
				t.Fatalf("%d trailing bytes after record at size=%d frag=%d", stream.Len(), size, frag)
			}
		}
	}
}

// TestRecordExceedsOldDatagramCap is the headline property of the wire
// layer: a single reassembled record is bigger than the 96 KiB that used
// to bound every transfer chunk through udpgate.
func TestRecordExceedsOldDatagramCap(t *testing.T) {
	const oldCap = 96 * 1024
	payload := make([]byte, oldCap+32*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	var stream bytes.Buffer
	if err := writeRecord(&stream, payload, DefaultFragSize); err != nil {
		t.Fatal(err)
	}
	// With 64 KiB fragments this must be a multi-fragment record.
	first := binary.BigEndian.Uint32(stream.Bytes()[:4])
	if first&lastFrag != 0 {
		t.Fatalf("%d-byte record fit one fragment", len(payload))
	}
	got, err := readRecord(&stream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) <= oldCap {
		t.Fatalf("reassembled %d bytes, want > %d", len(got), oldCap)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	netsim.FreeBuf(got)
}

func TestRecordHdrRoom(t *testing.T) {
	payload := []byte("stamp me")
	var stream bytes.Buffer
	if err := writeRecord(&stream, payload, 0); err != nil {
		t.Fatal(err)
	}
	got, err := readRecord(&stream, netsim.HeaderSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != netsim.HeaderSize+len(payload) {
		t.Fatalf("len = %d", len(got))
	}
	if !bytes.Equal(got[netsim.HeaderSize:], payload) {
		t.Fatal("payload mismatch after hdrRoom")
	}
	netsim.FreeBuf(got)
}

func TestReadRecordTornStream(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 10000)
	var stream bytes.Buffer
	if err := writeRecord(&stream, payload, 4096); err != nil {
		t.Fatal(err)
	}
	full := stream.Bytes()
	for _, cut := range []int{1, 3, 4, 7, 4100, len(full) - 1} {
		_, err := readRecord(bytes.NewReader(full[:cut]), 0)
		if err == nil {
			t.Fatalf("torn stream (cut at %d) produced a record", cut)
		}
		if err == io.EOF && cut > 0 {
			// Only a cut before any byte is a clean EOF.
			t.Fatalf("mid-record cut at %d reported clean EOF", cut)
		}
	}
	if _, err := readRecord(bytes.NewReader(nil), 0); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestReadRecordHostileFrames(t *testing.T) {
	// A non-terminal zero-length fragment would loop forever.
	var zero [4]byte
	if _, err := readRecord(bytes.NewReader(zero[:]), 0); err == nil {
		t.Fatal("zero-length non-terminal fragment accepted")
	}
	// A fragment claiming more than MaxRecord must be rejected before
	// any allocation of that size.
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], lastFrag|uint32(MaxRecord+1))
	if _, err := readRecord(bytes.NewReader(huge[:]), 0); err != ErrRecordTooLarge {
		t.Fatalf("oversize fragment: err = %v, want ErrRecordTooLarge", err)
	}
	// Many fragments whose sum overflows MaxRecord.
	var stream bytes.Buffer
	var fh [4]byte
	chunk := bytes.Repeat([]byte{9}, 64<<10)
	binary.BigEndian.PutUint32(fh[:], uint32(len(chunk)))
	for i := 0; i < MaxRecord/len(chunk)+2; i++ {
		stream.Write(fh[:])
		stream.Write(chunk)
	}
	if _, err := readRecord(&stream, 0); err != ErrRecordTooLarge {
		t.Fatalf("runaway fragments: err = %v, want ErrRecordTooLarge", err)
	}
}

func TestWriteRecordRejectsOversize(t *testing.T) {
	var stream bytes.Buffer
	if err := writeRecord(&stream, make([]byte, MaxRecord+1), 0); err != ErrRecordTooLarge {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}

func TestBackToBackRecords(t *testing.T) {
	var stream bytes.Buffer
	bw := bufio.NewWriter(&stream)
	msgs := [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte{2}, 70000), []byte("omega")}
	for _, m := range msgs {
		if err := writeRecord(bw, m, 16<<10); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, want := range msgs {
		got, err := readRecord(&stream, 0)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
		netsim.FreeBuf(got)
	}
	if _, err := readRecord(&stream, 0); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
}

func TestPortmapGetPortAndDump(t *testing.T) {
	pm, err := NewPortmap("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pm.Close()
	pm.Register(nfsproto.Program, nfsproto.Version, nfsproto.IPProtoTCP, 2049)
	pm.Register(nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.IPProtoTCP, 2049)
	pm.Register(nfsproto.Program, nfsproto.Version, nfsproto.IPProtoTCP, 3049) // replace

	addr := pm.Addr().String()
	port, err := GetPort(addr, nfsproto.Program, nfsproto.Version, nfsproto.IPProtoTCP)
	if err != nil {
		t.Fatal(err)
	}
	if port != 3049 {
		t.Fatalf("GETPORT nfs = %d, want 3049 (replaced registration)", port)
	}
	port, err = GetPort(addr, nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.IPProtoTCP)
	if err != nil || port != 2049 {
		t.Fatalf("GETPORT mount = %d, %v", port, err)
	}
	port, err = GetPort(addr, 300999, 1, nfsproto.IPProtoUDP)
	if err != nil || port != 0 {
		t.Fatalf("GETPORT unregistered = %d, %v (want 0, nil)", port, err)
	}

	maps, err := Dump(addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 2 {
		t.Fatalf("DUMP returned %d mappings, want 2", len(maps))
	}
	want := map[uint32]uint32{nfsproto.Program: 3049, nfsproto.MountProgram: 2049}
	for _, m := range maps {
		if want[m.Prog] != m.Port {
			t.Fatalf("DUMP %d -> %d, want %d", m.Prog, m.Port, want[m.Prog])
		}
	}
}

func BenchmarkRecordRoundTrip(b *testing.B) {
	payload := make([]byte, 128<<10)
	var stream bytes.Buffer
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Reset()
		if err := writeRecord(&stream, payload, DefaultFragSize); err != nil {
			b.Fatal(err)
		}
		got, err := readRecord(&stream, 0)
		if err != nil {
			b.Fatal(err)
		}
		netsim.FreeBuf(got)
	}
}
