package proxy

import (
	"time"

	"slice/internal/attr"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/xdr"
)

// handleResponse pairs a server reply with its pending record, harvests
// and patches attributes, restores the virtual server as the source, and
// forwards the reply to the client. It runs inline on the sender's
// goroutine; only responses with an orchestration hook (which issues
// blocking RPCs) are finished on a helper goroutine.
func (p *Proxy) handleResponse(d []byte, key pendKey) netsim.Verdict {
	t0 := time.Now()
	h, err := netsim.Parse(d)
	if err != nil {
		return p.consumeDrop(d)
	}
	rep, err := oncrpc.ParseReply(netsim.Payload(d))
	if err != nil {
		return p.consumeDrop(d)
	}
	s := p.shardFor(key)
	s.mu.Lock()
	pd := s.pend[key]
	if pd == nil {
		s.mu.Unlock()
		// Soft state was lost (or a duplicate reply). For a single-site
		// request the server's answer IS the virtual server's answer, so
		// let it through untouched — the client's RPC layer matches by
		// xid, or ignores. Not so over a replicated array: a WRITE fans
		// out to the whole group, and one member's stray reply must not
		// ack the client as if every replica applied it (the other
		// members would silently diverge). Drop it instead; the client's
		// retransmission rebuilds the record — and re-marks the dirty
		// set — with a full fan-out.
		if p.dirty != nil {
			if g, ok := p.cfg.IO.Replicas.MemberOf(h.Src); ok && len(g.Members) > 1 {
				return p.consumeDrop(d)
			}
		}
		return netsim.Pass
	}
	if len(pd.targets) > 1 {
		// Mirrored fan-out: count each replica once, even when
		// retransmissions made it reply several times.
		if pd.replied == nil {
			pd.replied = make(map[netsim.Addr]bool, len(pd.targets))
		}
		if pd.replied[h.Src] {
			s.mu.Unlock()
			netsim.FreeBuf(d)
			return netsim.Consumed
		}
		pd.replied[h.Src] = true
	}
	pd.expect--
	if pd.expect > 0 {
		// A mirrored write still awaiting replicas. Remember the first
		// failure so the client sees the worst outcome.
		if rep.Accept == oncrpc.AcceptSuccess && replyStatus(pd.proc, rep.Body) != nfsproto.OK && pd.errReply == nil {
			pd.errReply = append([]byte(nil), rep.Body...)
		}
		s.mu.Unlock()
		p.st.softStateNS.Add(uint64(time.Since(t0)))
		netsim.FreeBuf(d)
		return netsim.Consumed
	}
	delete(s.pend, key)
	s.mu.Unlock()
	// The record is now exclusively owned by this goroutine: lookups and
	// deletion are serialized by the shard lock.
	p.st.softStateNS.Add(uint64(time.Since(t0)))

	// Attribute the forwarded hop now that its last reply arrived; the
	// reply trailer, when the server appended one, splits out its
	// handler time.
	p.recordHop(pd, rep.Body)

	if pd.errReply != nil {
		rep.Body = pd.errReply
	}

	if rep.Accept == oncrpc.AcceptSuccess && pd.onOK != nil &&
		replyStatus(pd.proc, rep.Body) == nfsproto.OK {
		// The hook blocks on µproxy-originated RPCs; run it (and the
		// forwarding that must follow it) off the sender's goroutine.
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			pd.onOK()
			p.finishResponse(d, key, pd, rep)
		}()
		return netsim.Consumed
	}
	p.finishResponse(d, key, pd, rep)
	return netsim.Consumed
}

// settleReplica retires a completed request's replica bookkeeping: a
// spread read releases its load slot; a fanned-out write clears its
// dirty mark only when every replica acknowledged success. A failed or
// partial fan-out leaves the object dirty — the safe over-approximation:
// its reads pin to the primary until a retransmission completes the
// fan-out or a COMMIT barrier force-clears the entry.
func (p *Proxy) settleReplica(pd *pendingReq, rep oncrpc.Reply) {
	if slot := int(pd.readSlot) - 1; slot >= 0 && slot < len(p.loads) {
		p.loads[slot].Add(-1)
	}
	if !pd.dirtyMark {
		return
	}
	// rep.Body already holds the worst outcome (errReply) of the fan-out.
	if rep.Accept == oncrpc.AcceptSuccess && replyStatus(pd.proc, rep.Body) == nfsproto.OK {
		p.dirty.ClearWrite(pd.dirtyKey)
	}
}

// finishResponse dispatches a fully-paired reply to its per-procedure
// handler, then recycles the pending record.
func (p *Proxy) finishResponse(d []byte, key pendKey, pd *pendingReq, rep oncrpc.Reply) {
	if p.dirty != nil {
		p.settleReplica(pd, rep)
	}
	if pd.prog != nfsproto.Program || rep.Accept != oncrpc.AcceptSuccess {
		p.passThrough(d)
	} else {
		switch pd.proc {
		case nfsproto.ProcRead, nfsproto.ProcWrite:
			p.respondIO(d, key, pd, rep)
		case nfsproto.ProcLookup, nfsproto.ProcCreate, nfsproto.ProcMkdir, nfsproto.ProcSymlink:
			p.respondChild(d, key, pd, rep)
		case nfsproto.ProcGetAttr:
			p.respondGetAttr(d, key, pd, rep)
		case nfsproto.ProcLink:
			// Harvest the updated link count: the remove orchestration's
			// fast path depends on the cache tracking links it routed.
			var res nfsproto.LinkRes
			if err := res.Decode(xdr.NewDecoder(rep.Body)); err == nil && res.Status == nfsproto.OK {
				if res.Attr.Present {
					p.observeAttr(pd.info.FH, res.Attr.Attr)
				}
				if pd.info.HasName2 {
					p.names.put(pd.info.FH2, pd.info.Name2, pd.info.FH)
				}
			}
			p.passThrough(d)
		case nfsproto.ProcRename:
			p.names.drop(pd.info.FH, pd.info.Name)
			if pd.info.HasName2 {
				p.names.drop(pd.info.FH2, pd.info.Name2)
			}
			p.passThrough(d)
		case nfsproto.ProcRmdir:
			p.names.drop(pd.info.FH, pd.info.Name)
			p.passThrough(d)
		default:
			p.passThrough(d)
		}
	}
	p.endObs(pd)
	putPending(pd)
}

// replyStatus peeks at the leading NFS status of a reply body.
func replyStatus(proc nfsproto.Proc, body []byte) nfsproto.Status {
	if proc == nfsproto.ProcNull {
		return nfsproto.OK
	}
	d := xdr.NewDecoder(body)
	st, err := d.Uint32()
	if err != nil {
		return nfsproto.ErrServerFault
	}
	return nfsproto.Status(st)
}

// passThrough restores the virtual server address as the packet source
// with an incremental checksum fix, and delivers it to the client.
// Ownership of d transfers to the network.
func (p *Proxy) passThrough(d []byte) {
	t0 := time.Now()
	netsim.RewriteSrc(d, p.cfg.Virtual)
	p.st.rewriteNS.Add(uint64(time.Since(t0)))
	p.st.responses.Add(1)
	_ = p.cfg.Net.Inject(d)
}

// respondIO patches a complete attribute set into a storage-node or
// small-file-server reply, which carries none, and updates the attribute
// cache to reflect the I/O (§4.1). The reply is re-encoded because the
// optional attribute block changes the body length; the original reply
// datagram goes back to the buffer pool.
func (p *Proxy) respondIO(d []byte, key pendKey, pd *pendingReq, rep oncrpc.Reply) {
	t0 := time.Now()
	fh := pd.info.FH
	now := attr.FromGo(time.Now())

	var body func(*xdr.Encoder)
	switch pd.proc {
	case nfsproto.ProcRead:
		var res nfsproto.ReadRes
		if err := res.Decode(xdr.NewDecoder(rep.Body)); err != nil {
			p.st.dropped.Add(1)
			netsim.FreeBuf(d)
			return
		}
		if res.Status == nfsproto.OK {
			p.updateAttr(fh, func(a *attr.Attr) { a.Atime = now })
		}
		at, ok := p.attrs.get(fh)
		if !ok && res.Status == nfsproto.OK && res.EOF {
			// EOF from a storage or small-file server reflects only its
			// local region of a striped file; with no cached size to
			// correct against (soft state was lost), fetch authoritative
			// attributes rather than surface a false EOF mid-file.
			var ga nfsproto.GetAttrRes
			gaInfo := nfsproto.RequestInfo{Proc: nfsproto.ProcGetAttr, FH: fh}
			if addr, err := p.cfg.Names.AddrFor(&gaInfo); err == nil {
				if err := p.nfsCall(pd.span, obs.HopDirsrv, addr, nfsproto.ProcGetAttr, &nfsproto.GetAttrArgs{FH: fh}, &ga); err == nil && ga.Status == nfsproto.OK {
					p.observeAttr(fh, ga.Attr)
					at, ok = p.attrs.get(fh)
				}
			}
		}
		if ok {
			res.Attr = nfsproto.Some(at)
			// EOF from a data server reflects only its local object;
			// correct it against the authoritative size.
			if res.Status == nfsproto.OK {
				res.EOF = pd.info.Offset+uint64(res.Count) >= at.Size
			}
		}
		body = res.Encode

	case nfsproto.ProcWrite:
		var res nfsproto.WriteRes
		if err := res.Decode(xdr.NewDecoder(rep.Body)); err != nil {
			p.st.dropped.Add(1)
			netsim.FreeBuf(d)
			return
		}
		if res.Status == nfsproto.OK {
			end := pd.info.Offset + uint64(res.Count)
			p.updateAttr(fh, func(a *attr.Attr) {
				if end > a.Size {
					a.Size = end
					a.Used = (end + 8191) &^ 8191
				}
				a.Mtime = now
				a.Ctime = now
			})
		}
		if at, ok := p.attrs.get(fh); ok {
			res.Attr = nfsproto.Some(at)
		}
		body = res.Encode

	default:
		p.passThrough(d)
		return
	}
	p.st.softStateNS.Add(uint64(time.Since(t0)))
	p.respondEncoded(key, body)
	netsim.FreeBuf(d)
}

// respondChild harvests the (name → handle) binding and child attributes
// from LOOKUP/CREATE/MKDIR replies, then forwards the reply with the
// child's attributes patched from the (possibly fresher) attribute cache:
// the µproxy's view of size and timestamps reflects I/O the directory
// server has not yet seen (§4.1). LookupRes and CreateRes share a wire
// layout, so one decode path serves all three procedures.
func (p *Proxy) respondChild(d []byte, key pendKey, pd *pendingReq, rep oncrpc.Reply) {
	t0 := time.Now()
	var res nfsproto.LookupRes
	if err := res.Decode(xdr.NewDecoder(rep.Body)); err != nil {
		p.st.dropped.Add(1)
		netsim.FreeBuf(d)
		return
	}
	if res.Status != nfsproto.OK {
		p.st.softStateNS.Add(uint64(time.Since(t0)))
		p.passThrough(d)
		return
	}
	if pd.info.HasName {
		p.names.put(pd.info.FH, pd.info.Name, res.FH)
	}
	if res.Attr.Present {
		p.observeAttr(res.FH, res.Attr.Attr)
	}
	if res.DirAttr.Present {
		p.observeAttr(pd.info.FH, res.DirAttr.Attr)
	}
	if at, ok := p.attrs.get(res.FH); ok {
		res.Attr = nfsproto.Some(at)
	}
	p.st.softStateNS.Add(uint64(time.Since(t0)))
	p.respondEncoded(key, res.Encode)
	netsim.FreeBuf(d)
}

// respondGetAttr folds a GETATTR reply into the attribute cache, then
// answers the client with the merged attributes (local dirty size/mtime
// win over the directory server's stale view).
func (p *Proxy) respondGetAttr(d []byte, key pendKey, pd *pendingReq, rep oncrpc.Reply) {
	t0 := time.Now()
	var res nfsproto.GetAttrRes
	if err := res.Decode(xdr.NewDecoder(rep.Body)); err != nil {
		p.st.dropped.Add(1)
		netsim.FreeBuf(d)
		return
	}
	if res.Status != nfsproto.OK {
		p.st.softStateNS.Add(uint64(time.Since(t0)))
		p.passThrough(d)
		return
	}
	p.observeAttr(pd.info.FH, res.Attr)
	if at, ok := p.attrs.get(pd.info.FH); ok {
		res.Attr = at
	}
	p.st.softStateNS.Add(uint64(time.Since(t0)))
	p.respondEncoded(key, res.Encode)
	netsim.FreeBuf(d)
}

// respondEncoded builds a fresh reply datagram from the virtual server to
// the client and injects it.
func (p *Proxy) respondEncoded(key pendKey, body func(*xdr.Encoder)) {
	t1 := time.Now()
	payload := oncrpc.EncodeReply(key.xid, oncrpc.AcceptSuccess, body)
	out, err := netsim.Build(p.cfg.Virtual, key.client, payload)
	p.st.rewriteNS.Add(uint64(time.Since(t1)))
	if err != nil {
		p.st.dropped.Add(1)
		return
	}
	p.st.responses.Add(1)
	_ = p.cfg.Net.Inject(out)
}
