package server_test

import (
	"bytes"
	"testing"

	"slice/internal/client"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/server"
)

// newBaseline runs the monolithic server with a client talking directly
// to it (no µproxy: the point of the baseline).
func newBaseline(t *testing.T) (*server.Server, *client.Client) {
	t.Helper()
	net := netsim.New(netsim.Config{})
	port, err := net.Bind(netsim.Addr{Host: 2, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(port, 1, nil)
	c, err := client.New(client.Config{Net: net, Host: 100, Server: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mount(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); srv.Close() })
	return srv, c
}

func TestBaselineFullFileLifecycle(t *testing.T) {
	_, c := newBaseline(t)
	dir, err := c.MkdirAll(c.Root(), "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	fh, _, err := c.Create(dir, "f", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("base"), 10000)
	if err := c.WriteFile(fh, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadAll(fh)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back %d bytes, %v", len(got), err)
	}
	at, err := c.GetAttr(fh)
	if err != nil || at.Size != uint64(len(data)) {
		t.Fatalf("size %d, %v", at.Size, err)
	}
	if err := c.Remove(dir, "f"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Lookup(dir, "f"); nfsproto.StatusOf(err) != nfsproto.ErrNoEnt {
		t.Fatalf("lookup after remove: %v", err)
	}
}

func TestBaselineNamespaceSemantics(t *testing.T) {
	_, c := newBaseline(t)
	d, err := c.MkdirAll(c.Root(), "dir")
	if err != nil {
		t.Fatal(err)
	}
	// rmdir non-empty fails.
	if _, _, err := c.Create(d, "x", 0o644, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir(c.Root(), "dir"); nfsproto.StatusOf(err) != nfsproto.ErrNotEmpty {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	// rename.
	if err := c.Rename(d, "x", c.Root(), "y"); err != nil {
		t.Fatal(err)
	}
	fh, _, err := c.Lookup(c.Root(), "y")
	if err != nil {
		t.Fatal(err)
	}
	// link + nlink accounting.
	if err := c.Link(fh, d, "z"); err != nil {
		t.Fatal(err)
	}
	at, _ := c.GetAttr(fh)
	if at.Nlink != 2 {
		t.Fatalf("nlink %d", at.Nlink)
	}
	// remove one name: data still reachable.
	if err := c.Remove(c.Root(), "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetAttr(fh); err != nil {
		t.Fatalf("file vanished with one link left: %v", err)
	}
	// rmdir after emptying.
	if err := c.Remove(d, "z"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir(c.Root(), "dir"); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineTruncateViaSetattr(t *testing.T) {
	_, c := newBaseline(t)
	fh, _, err := c.Create(c.Root(), "t", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(fh, bytes.Repeat([]byte{7}, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := c.Truncate(fh, 10); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadAll(fh)
	if err != nil || len(data) != 10 {
		t.Fatalf("after truncate: %d bytes, %v", len(data), err)
	}
	// Extend exposes zeros.
	if err := c.Truncate(fh, 20); err != nil {
		t.Fatal(err)
	}
	data, _ = c.ReadAll(fh)
	if len(data) != 20 || data[15] != 0 {
		t.Fatalf("extend: %v", data)
	}
}

func TestBaselineReaddirPaging(t *testing.T) {
	_, c := newBaseline(t)
	for i := 0; i < 50; i++ {
		if _, _, err := c.Create(c.Root(), string(rune('a'+i%26))+string(rune('0'+i/26)), 0o644, true); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := c.ReadDir(c.Root())
	if err != nil || len(ents) != 50 {
		t.Fatalf("readdir: %d, %v", len(ents), err)
	}
}

func TestBaselineOpsCounter(t *testing.T) {
	srv, c := newBaseline(t)
	before := srv.Ops()
	if _, err := c.GetAttr(c.Root()); err != nil {
		t.Fatal(err)
	}
	if srv.Ops() <= before {
		t.Fatal("ops counter did not advance")
	}
}
