// Package netsim provides the in-memory datagram network that stands in
// for the switched Gigabit Ethernet LAN of the paper's testbed.
//
// Every datagram carries a 20-byte pseudo IP/UDP header (source and
// destination host and port, a 32-bit length, and a 16-bit Internet
// checksum), so an
// interposed element such as the Slice µproxy can do exactly what the
// FreeBSD packet-filter prototype did: decode layer-3/4 fields from raw
// bytes, rewrite addresses and ports, and fix the checksum incrementally.
//
// Taps model interposition "along the network path": a tap sees every
// datagram before delivery and may pass, drop, or consume it (injecting
// rewritten traffic instead). Datagram delivery is unreliable by design —
// ports have bounded queues and the network can be configured with loss —
// because the Slice architecture depends on end-to-end RPC retransmission
// to mask drops in the µproxy (§2.1).
package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"slice/internal/checksum"
)

// Addr identifies a network endpoint: a pseudo-IPv4 host and a port.
type Addr struct {
	Host uint32
	Port uint16
}

// String renders the address as a dotted quad with port.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d",
		byte(a.Host>>24), byte(a.Host>>16), byte(a.Host>>8), byte(a.Host), a.Port)
}

// IsZero reports whether a is the zero address.
func (a Addr) IsZero() bool { return a == Addr{} }

// HeaderSize is the fixed size of the pseudo IP/UDP header. The length
// field is 32 bits wide: a 16-bit field (as in real UDP) silently wraps
// for jumbo datagrams above 64 KiB, which made every such datagram fail
// Parse even though MaxDatagram nominally allowed them.
const HeaderSize = 20

// MaxDatagram bounds a single datagram, mimicking a jumbo-frame MTU
// comfortably above the largest NFS transfer plus headers. It is sized so
// a record-marked TCP transfer relayed through the wire gateway can carry
// stripe-unit-sized READ/WRITE bodies well past the 64 KiB UDP limit.
const MaxDatagram = 256 * 1024

// Header is the decoded pseudo IP/UDP header of a datagram.
type Header struct {
	Src      Addr
	Dst      Addr
	Length   uint32 // total datagram length including header
	Checksum uint16 // Internet checksum over the datagram with this field zero
}

// Offsets of header fields within a datagram, exported for rewriters.
// The two bytes after the checksum are reserved and always zero.
const (
	OffSrcHost  = 0
	OffDstHost  = 4
	OffSrcPort  = 8
	OffDstPort  = 10
	OffLength   = 12
	OffChecksum = 16
	offReserved = 18
)

// Build assembles a datagram from src to dst carrying payload, computing
// the checksum. The payload is copied into a pooled buffer owned by the
// caller (see FreeBuf for the ownership rules).
func Build(src, dst Addr, payload []byte) ([]byte, error) {
	total := HeaderSize + len(payload)
	if total > MaxDatagram {
		return nil, fmt.Errorf("netsim: datagram size %d exceeds max %d", total, MaxDatagram)
	}
	d := GetBuf(total)
	binary.BigEndian.PutUint32(d[OffSrcHost:], src.Host)
	binary.BigEndian.PutUint32(d[OffDstHost:], dst.Host)
	binary.BigEndian.PutUint16(d[OffSrcPort:], src.Port)
	binary.BigEndian.PutUint16(d[OffDstPort:], dst.Port)
	binary.BigEndian.PutUint32(d[OffLength:], uint32(total))
	copy(d[HeaderSize:], payload)
	// Zero the checksum and reserved fields before summing: the pooled
	// buffer may hold stale bytes of its previous datagram at these offsets.
	binary.BigEndian.PutUint16(d[OffChecksum:], 0)
	binary.BigEndian.PutUint16(d[offReserved:], 0)
	binary.BigEndian.PutUint16(d[OffChecksum:], checksum.Sum(d))
	return d, nil
}

// ErrBadDatagram indicates a malformed or corrupt datagram.
var ErrBadDatagram = errors.New("netsim: bad datagram")

// Parse decodes and validates the header of a datagram, verifying length
// and checksum.
func Parse(d []byte) (Header, error) {
	if len(d) < HeaderSize {
		return Header{}, fmt.Errorf("%w: short datagram (%d bytes)", ErrBadDatagram, len(d))
	}
	h := Header{
		Src: Addr{
			Host: binary.BigEndian.Uint32(d[OffSrcHost:]),
			Port: binary.BigEndian.Uint16(d[OffSrcPort:]),
		},
		Dst: Addr{
			Host: binary.BigEndian.Uint32(d[OffDstHost:]),
			Port: binary.BigEndian.Uint16(d[OffDstPort:]),
		},
		Length:   binary.BigEndian.Uint32(d[OffLength:]),
		Checksum: binary.BigEndian.Uint16(d[OffChecksum:]),
	}
	if int(h.Length) != len(d) {
		return h, fmt.Errorf("%w: length field %d != size %d", ErrBadDatagram, h.Length, len(d))
	}
	if !VerifyChecksum(d) {
		return h, fmt.Errorf("%w: checksum mismatch", ErrBadDatagram)
	}
	return h, nil
}

// VerifyChecksum reports whether the datagram's checksum is valid.
func VerifyChecksum(d []byte) bool {
	if len(d) < HeaderSize {
		return false
	}
	stored := binary.BigEndian.Uint16(d[OffChecksum:])
	binary.BigEndian.PutUint16(d[OffChecksum:], 0)
	ok := checksum.Sum(d) == stored
	binary.BigEndian.PutUint16(d[OffChecksum:], stored)
	return ok
}

// Payload returns the payload bytes of a datagram (aliasing d).
func Payload(d []byte) []byte {
	if len(d) < HeaderSize {
		return nil
	}
	return d[HeaderSize:]
}

// RewriteSrc replaces the source address of the datagram in place,
// adjusting the checksum incrementally.
func RewriteSrc(d []byte, src Addr) {
	rewriteAddr(d, OffSrcHost, OffSrcPort, src)
}

// RewriteDst replaces the destination address of the datagram in place,
// adjusting the checksum incrementally.
func RewriteDst(d []byte, dst Addr) {
	rewriteAddr(d, OffDstHost, OffDstPort, dst)
}

// RewriteUint64 replaces the 8 bytes at even offset off in place,
// adjusting the checksum incrementally. The µproxy uses it to patch
// capability fields into forwarded requests without re-encoding.
func RewriteUint64(d []byte, off int, v uint64) error {
	if off < 0 || off%2 != 0 || off+8 > len(d) {
		return fmt.Errorf("%w: rewrite at offset %d", ErrBadDatagram, off)
	}
	sum := binary.BigEndian.Uint16(d[OffChecksum:])
	old := binary.BigEndian.Uint64(d[off:])
	sum = checksum.Update64(sum, old, v)
	binary.BigEndian.PutUint64(d[off:], v)
	binary.BigEndian.PutUint16(d[OffChecksum:], sum)
	return nil
}

func rewriteAddr(d []byte, hostOff, portOff int, a Addr) {
	sum := binary.BigEndian.Uint16(d[OffChecksum:])
	oldHost := binary.BigEndian.Uint32(d[hostOff:])
	oldPort := binary.BigEndian.Uint16(d[portOff:])
	sum = checksum.Update32(sum, oldHost, a.Host)
	sum = checksum.Update(sum, oldPort, a.Port)
	binary.BigEndian.PutUint32(d[hostOff:], a.Host)
	binary.BigEndian.PutUint16(d[portOff:], a.Port)
	binary.BigEndian.PutUint16(d[OffChecksum:], sum)
}

// Verdict is a tap's decision about a datagram.
type Verdict int

// Tap verdicts.
const (
	// Pass lets the datagram continue to the next tap and then delivery.
	Pass Verdict = iota
	// Drop silently discards the datagram.
	Drop
	// Consumed means the tap took ownership; it typically injects one or
	// more rewritten datagrams in its place.
	Consumed
)

// Tap observes datagrams in flight. Handle runs on the sender's goroutine
// with the network unlocked; it may call Network.Inject.
type Tap interface {
	Handle(dgram []byte) Verdict
}

// TapFunc adapts a function to the Tap interface.
type TapFunc func(dgram []byte) Verdict

// Handle implements Tap.
func (f TapFunc) Handle(dgram []byte) Verdict { return f(dgram) }

// Config holds network fault-injection and delay parameters.
type Config struct {
	// LossRate is the probability in [0,1) that a datagram is dropped
	// after passing the taps.
	LossRate float64
	// Latency delays delivery of each datagram.
	Latency time.Duration
	// QueueLen is the per-port receive queue length (default 512).
	QueueLen int
	// Seed seeds the loss generator; 0 means a fixed default.
	Seed int64
}

// Stats aggregates network counters.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Lost      uint64 // dropped by configured loss
	Dropped   uint64 // dropped by taps or full queues or unbound ports
	Faulted   uint64 // dropped by the runtime fault plane (crash/partition/link drop)
	Bytes     uint64
}

// statCounters is the internal atomic form of Stats, so the datagram path
// never serializes on a stats lock.
type statCounters struct {
	sent      atomic.Uint64
	delivered atomic.Uint64
	lost      atomic.Uint64
	dropped   atomic.Uint64
	faulted   atomic.Uint64
	bytes     atomic.Uint64
}

// TapToken identifies one tap registration; AddTap returns it and
// RemoveTap consumes it. Matching registrations by token keeps the
// datagram path free of reflection and lets uncomparable taps (function
// values) register safely.
type TapToken struct {
	tap Tap
}

// Network is an in-memory datagram fabric.
type Network struct {
	mu    sync.RWMutex // guards ports
	ports map[Addr]*Port

	tapMu sync.Mutex                  // serializes AddTap/RemoveTap
	taps  atomic.Pointer[[]*TapToken] // snapshot read lock-free by send

	cfg   Config
	rngMu sync.Mutex
	rng   *rand.Rand
	stats statCounters

	faultMu sync.Mutex                 // serializes fault-plane mutators
	faults  atomic.Pointer[faultState] // snapshot read lock-free by deliver
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 512
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		ports: make(map[Addr]*Port),
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:      n.stats.sent.Load(),
		Delivered: n.stats.delivered.Load(),
		Lost:      n.stats.lost.Load(),
		Dropped:   n.stats.dropped.Load(),
		Faulted:   n.stats.faulted.Load(),
		Bytes:     n.stats.bytes.Load(),
	}
}

// AddTap registers a tap; taps run in registration order. The returned
// token unregisters it via RemoveTap.
func (n *Network) AddTap(t Tap) *TapToken {
	tok := &TapToken{tap: t}
	n.tapMu.Lock()
	defer n.tapMu.Unlock()
	var cur []*TapToken
	if p := n.taps.Load(); p != nil {
		cur = *p
	}
	next := make([]*TapToken, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = tok
	n.taps.Store(&next)
	return tok
}

// RemoveTap unregisters the tap registration identified by tok. Removing
// a nil or already-removed token is a no-op. Handlers already running
// against the previous snapshot may still observe in-flight datagrams.
func (n *Network) RemoveTap(tok *TapToken) {
	if tok == nil {
		return
	}
	n.tapMu.Lock()
	defer n.tapMu.Unlock()
	p := n.taps.Load()
	if p == nil {
		return
	}
	cur := *p
	for i, x := range cur {
		if x == tok {
			next := make([]*TapToken, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			n.taps.Store(&next)
			return
		}
	}
}

// ErrPortInUse is returned by Bind for an already-bound address.
var ErrPortInUse = errors.New("netsim: port in use")

// ErrClosed is returned by operations on a closed port.
var ErrClosed = errors.New("netsim: port closed")

// Port is a bound endpoint that can send and receive datagrams.
type Port struct {
	net    *Network
	addr   Addr
	ch     chan []byte
	closed chan struct{}
	once   sync.Once
}

// Bind claims addr and returns its port.
func (n *Network) Bind(addr Addr) (*Port, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.ports[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrPortInUse, addr)
	}
	p := &Port{
		net:    n,
		addr:   addr,
		ch:     make(chan []byte, n.cfg.QueueLen),
		closed: make(chan struct{}),
	}
	n.ports[addr] = p
	return p, nil
}

// ephemeralBase is the first port number BindAny hands out.
const ephemeralBase = 40000

// BindAny binds the first free ephemeral port on the given host.
func (n *Network) BindAny(host uint32) (*Port, error) {
	for p := uint16(ephemeralBase); p != 0; p++ { // wraps to 0 after 65535
		port, err := n.Bind(Addr{Host: host, Port: p})
		if err == nil {
			return port, nil
		}
		if !errors.Is(err, ErrPortInUse) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("netsim: no free ephemeral ports on host %d", host)
}

// Addr returns the port's bound address.
func (p *Port) Addr() Addr { return p.addr }

// Close releases the port. Pending datagrams are discarded.
func (p *Port) Close() {
	p.once.Do(func() {
		p.net.mu.Lock()
		delete(p.net.ports, p.addr)
		p.net.mu.Unlock()
		close(p.closed)
	})
}

// SendTo builds a datagram to dst carrying payload and sends it.
func (p *Port) SendTo(dst Addr, payload []byte) error {
	d, err := Build(p.addr, dst, payload)
	if err != nil {
		return err
	}
	return p.net.send(d)
}

// Recv blocks until a datagram arrives, the timeout expires (zero means no
// timeout), or the port is closed. The returned slice is owned by the
// caller, who should hand it back with FreeBuf once it (and anything
// aliasing it) is no longer needed.
func (p *Port) Recv(timeout time.Duration) ([]byte, error) {
	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case d := <-p.ch:
		return d, nil
	case <-timeoutCh:
		return nil, ErrTimeout
	case <-p.closed:
		return nil, ErrClosed
	}
}

// TryRecv returns a queued datagram without blocking; ok is false when the
// queue is empty. The wire gateway uses it to coalesce every datagram
// already queued for a connection into one TCP write burst.
func (p *Port) TryRecv() (d []byte, ok bool) {
	select {
	case d := <-p.ch:
		return d, true
	default:
		return nil, false
	}
}

// ErrTimeout is returned by Recv when the timeout expires.
var ErrTimeout = errors.New("netsim: receive timeout")

// Inject sends a fully formed datagram (with header and checksum) into the
// network, transferring ownership of the buffer. Taps do NOT see injected
// datagrams; this is how a consuming tap forwards rewritten traffic
// without re-intercepting it.
func (n *Network) Inject(d []byte) error {
	return n.deliver(d)
}

// send runs taps, then delivers. Ownership of d transfers to the network
// (and onward to a consuming tap, or to the receiving port).
func (n *Network) send(d []byte) error {
	n.stats.sent.Add(1)
	n.stats.bytes.Add(uint64(len(d)))

	// A crashed or isolated source host cannot put traffic on the wire at
	// all — its datagrams vanish before any interposed element sees them.
	if fs := n.faults.Load(); fs != nil && len(d) >= HeaderSize {
		src := binary.BigEndian.Uint32(d[OffSrcHost:])
		if fs.down[src] || fs.isolated[src] {
			n.stats.faulted.Add(1)
			FreeBuf(d)
			return nil
		}
	}

	if p := n.taps.Load(); p != nil {
		for _, tok := range *p {
			switch tok.tap.Handle(d) {
			case Drop:
				n.stats.dropped.Add(1)
				FreeBuf(d)
				return nil
			case Consumed:
				return nil
			}
		}
	}
	return n.deliver(d)
}

// deliver applies configured loss and places the datagram on the
// destination port's queue. Loss is applied here, after interposition, so
// that traffic a µproxy rewrites and reinjects is just as lossy as direct
// traffic — drops can happen anywhere on the path (§2.1).
func (n *Network) deliver(d []byte) error {
	if len(d) < HeaderSize {
		return fmt.Errorf("%w: short datagram", ErrBadDatagram)
	}
	srcHost := binary.BigEndian.Uint32(d[OffSrcHost:])
	dst := Addr{
		Host: binary.BigEndian.Uint32(d[OffDstHost:]),
		Port: binary.BigEndian.Uint16(d[OffDstPort:]),
	}
	// The fault plane is consulted here, after interposition, for the same
	// reason loss is: rewritten traffic from a µproxy crosses the same
	// failed links and dead hosts as direct traffic.
	drop, extraDelay, dup := n.faultVerdict(srcHost, dst.Host)
	if drop {
		n.stats.faulted.Add(1)
		FreeBuf(d)
		return nil
	}
	if n.cfg.LossRate > 0 {
		n.rngMu.Lock()
		lose := n.rng.Float64() < n.cfg.LossRate
		n.rngMu.Unlock()
		if lose {
			n.stats.lost.Add(1)
			FreeBuf(d)
			return nil
		}
	}
	n.mu.RLock()
	p, ok := n.ports[dst]
	n.mu.RUnlock()
	if !ok {
		// Unbound destination: a real network drops it on the floor.
		n.stats.dropped.Add(1)
		FreeBuf(d)
		return nil
	}
	if dup {
		c := GetBuf(len(d))
		copy(c, d)
		n.enqueueAfter(p, c, extraDelay)
	}
	n.enqueueAfter(p, d, extraDelay)
	return nil
}

// enqueueAfter enqueues d on p after the configured base latency plus any
// fault-injected extra delay.
func (n *Network) enqueueAfter(p *Port, d []byte, extra time.Duration) {
	delay := n.cfg.Latency + extra
	if delay > 0 {
		time.AfterFunc(delay, func() { n.enqueue(p, d) })
		return
	}
	n.enqueue(p, d)
}

func (n *Network) enqueue(p *Port, d []byte) {
	select {
	case p.ch <- d:
		n.stats.delivered.Add(1)
	default:
		// Queue overrun: drop, like a NIC ring buffer.
		n.stats.dropped.Add(1)
		FreeBuf(d)
	}
}
