package storage

import (
	"bytes"
	"testing"
	"time"

	"slice/internal/netsim"
	"slice/internal/oncrpc"
	"slice/internal/replica"
)

func TestListAfterPaginates(t *testing.T) {
	s := NewObjectStore()
	for id := ObjectID(1); id <= 7; id++ {
		if err := s.WriteAt(id, 0, []byte{byte(id)}, true); err != nil {
			t.Fatal(err)
		}
	}
	var got []ObjEntry
	after := ObjectID(0)
	for {
		page := s.ListAfter(after, 3)
		if len(page) == 0 {
			break
		}
		got = append(got, page...)
		after = page[len(page)-1].ID
	}
	if len(got) != 7 {
		t.Fatalf("paged %d entries, want 7", len(got))
	}
	for i, e := range got {
		if e.ID != ObjectID(i+1) || e.Size != 1 {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

func TestResyncRebuildsStore(t *testing.T) {
	net := netsim.New(netsim.Config{})
	sp, err := net.Bind(netsim.Addr{Host: 2, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	peerStore := NewObjectStore()
	// A multi-chunk object, a sparse object, and a zero-length object.
	big := bytes.Repeat([]byte("replicate-me!"), 10*1024) // ~130KB, > 4 chunks
	if err := peerStore.WriteAt(10, 0, big, true); err != nil {
		t.Fatal(err)
	}
	if err := peerStore.WriteAt(11, 5*BlockSize, []byte("tail"), true); err != nil {
		t.Fatal(err)
	}
	if err := peerStore.Truncate(12, 0); err != nil {
		t.Fatal(err)
	}
	key := []byte("array-cap-key")
	peer := NewNode(sp, peerStore)
	peer.RequireCapability(key)
	defer peer.Close()

	cp, _ := net.Bind(netsim.Addr{Host: 1, Port: 100})
	cli := oncrpc.NewClient(cp, peer.Addr(), oncrpc.ClientConfig{Timeout: 100 * time.Millisecond})
	defer cli.Close()

	// The wrong token is refused before anything is listed.
	if _, err := ResyncFrom(cli, 12345, 4, NewObjectStore()); err == nil {
		t.Fatal("resync with a forged token succeeded")
	}

	dst := NewObjectStore()
	st, err := ResyncFrom(cli, replica.PeerToken(key), 4, dst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 3 {
		t.Fatalf("resynced %d objects, want 3", st.Objects)
	}
	if st.Bytes < int64(len(big)) {
		t.Fatalf("resynced %d bytes, want >= %d", st.Bytes, len(big))
	}
	if dst.NumObjects() != 3 {
		t.Fatalf("dst has %d objects, want 3", dst.NumObjects())
	}
	for _, id := range []ObjectID{10, 11, 12} {
		want, _ := peerStore.Size(id)
		got, ok := dst.Size(id)
		if !ok || got != want {
			t.Fatalf("object %d size %d, want %d", id, got, want)
		}
		if want == 0 {
			continue
		}
		wb := make([]byte, want)
		gb := make([]byte, want)
		if _, _, err := peerStore.ReadAt(id, 0, wb); err != nil {
			t.Fatal(err)
		}
		if _, _, err := dst.ReadAt(id, 0, gb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Fatalf("object %d bytes differ after resync", id)
		}
	}
	// Resynced data is durable: a crash on the reborn node must not
	// shed it (it was acknowledged state on the survivor).
	dst.Crash()
	if got, _ := dst.Size(10); got != int64(len(big)) {
		t.Fatalf("crash shed resynced data: size %d, want %d", got, len(big))
	}
}

func TestReplicaIdentity(t *testing.T) {
	net := netsim.New(netsim.Config{})
	sp, _ := net.Bind(netsim.Addr{Host: 2, Port: 2049})
	n := NewNode(sp, NewObjectStore())
	defer n.Close()
	if _, _, ok := n.Replica(); ok {
		t.Fatal("fresh node claims a replica identity")
	}
	n.SetReplica(2, 1)
	g, m, ok := n.Replica()
	if !ok || g != 2 || m != 1 {
		t.Fatalf("Replica() = %d,%d,%v", g, m, ok)
	}
}
