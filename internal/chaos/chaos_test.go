package chaos

import (
	"bytes"
	"testing"
	"time"

	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/oncrpc"
	"slice/internal/route"
	"slice/internal/storage"
)

// newEnsemble builds a full deployment tuned for fault injection: a
// short coordinator probe interval so intention recovery fires within
// the test budget, and patient clients whose retry window rides out a
// crash-to-restart gap.
func newEnsemble(t *testing.T, mutate func(*ensemble.Config)) *ensemble.Ensemble {
	t.Helper()
	cfg := ensemble.Config{
		StorageNodes:     2,
		DirServers:       2,
		SmallFileServers: 1,
		Coordinator:      true,
		NameKind:         route.MkdirSwitching,
		MkdirP:           0.5,
		CoordProbeAfter:  250 * time.Millisecond,
		ClientRPC:        oncrpc.ClientConfig{Timeout: 25 * time.Millisecond, Retries: 9},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := ensemble.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	ArtifactsOnFailure(t, e)
	return e
}

// TestCoordinatorCrashMidRemoveLeavesNoOrphans: a storage site is
// unreachable while a REMOVE's data is being cleared, so the µproxy
// leaves the intention pending; then the coordinator itself crashes.
// Restarting the coordinator from its journal must finish the remove on
// every data site — no orphaned blocks — and the acknowledged namespace
// update must stand.
func TestCoordinatorCrashMidRemoveLeavesNoOrphans(t *testing.T) {
	e := newEnsemble(t, nil)
	ch := e.Chaos()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "victim", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("v"), 200*1024) // spans small-file + both storage nodes
	if err := c.WriteFile(fh, data); err != nil {
		t.Fatal(err)
	}

	// Storage node 0 drops off the fabric; the remove's data clearing
	// cannot reach it. The client is still acknowledged quickly — the
	// first transmission's orchestration chain withholds its reply while
	// it grinds against the dead site, but the retransmission is answered
	// from the directory server's duplicate-request cache — and the
	// durable intention stands in for the unreachable site.
	ch.PartitionStorage(0)
	retransBefore := c.Retransmissions()
	if err := Retry(15*time.Second, func() error { return c.Remove(c.Root(), "victim") }); err != nil {
		t.Fatalf("remove during partition: %v", err)
	}
	if c.Retransmissions() == retransBefore {
		t.Fatal("remove acknowledged on the first transmission (fault window not exercised)")
	}
	if !WaitFor(5*time.Second, func() bool { return e.Coord.PendingIntentions() >= 1 }) {
		t.Fatalf("intention completed despite unreachable site (pending=%d)", e.Coord.PendingIntentions())
	}

	// Now the coordinator dies too. Restart it from the durable prefix
	// of its journal after the partition heals: recovery replays the
	// intention and finishes the remove everywhere.
	ch.CrashCoordinator()
	ch.HealStorage(0)
	co, err := ch.RestartCoordinator(3050)
	if err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}

	if !WaitFor(10*time.Second, func() bool { return co.PendingIntentions() == 0 }) {
		t.Fatalf("intentions still pending after recovery: %d", co.PendingIntentions())
	}
	if co.Stats().Finished < 1 {
		t.Fatal("restarted coordinator finished no operations")
	}
	obj := storage.ObjectOf(fh)
	for i, sn := range e.Storage {
		store := sn.Store()
		if !WaitFor(5*time.Second, func() bool { _, ok := store.Size(obj); return !ok }) {
			t.Fatalf("storage node %d still holds blocks of the removed file (orphan)", i)
		}
	}
	if _, ok := e.Small[0].Store().Size(fh); ok {
		t.Fatal("small-file server still holds data of the removed file (orphan)")
	}
	// The acknowledged remove stands, and the volume stays consistent
	// and writable.
	err = Retry(5*time.Second, func() error {
		_, _, err := c.Lookup(c.Root(), "victim")
		return err
	})
	if nfsproto.StatusOf(err) != nfsproto.ErrNoEnt {
		t.Fatalf("removed file reappeared: %v", err)
	}
	if _, _, err := c.Create(c.Root(), "after", 0o644, true); err != nil {
		t.Fatalf("create after recovery: %v", err)
	}
	FsckClean(t, e)
}

// TestStoragePartitionMidCommitNoLostAckedWrites: a storage node is
// partitioned across several RPC timeouts while the µproxy absorbs a
// COMMIT. The client's commit must still be acknowledged in bounded
// time — the durable intention stands in for the unreachable site — and
// once the partition heals, the coordinator's probe finishes the commit,
// so the acknowledged bytes survive a storage crash that discards
// uncommitted data.
func TestStoragePartitionMidCommitNoLostAckedWrites(t *testing.T) {
	e := newEnsemble(t, nil)
	ch := e.Chaos()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "bulk", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i >> 9)
	}
	if _, err := c.Write(fh, 0, data, false); err != nil { // unstable: durability rides on COMMIT
		t.Fatal(err)
	}
	if err := c.Flush(fh); err != nil { // all WRITEs land pre-partition; only COMMIT rides it
		t.Fatal(err)
	}

	ch.PartitionStorage(1)
	retransBefore := c.Retransmissions()
	t0 := time.Now()
	if _, err := c.Commit(fh); err != nil {
		t.Fatalf("commit during partition not acknowledged: %v", err)
	}
	if lat := time.Since(t0); lat > 8*time.Second {
		t.Fatalf("commit latency %v exceeds bound", lat)
	}
	if c.Retransmissions() == retransBefore {
		t.Fatal("commit answered before the partition cost any timeouts (fault not exercised)")
	}
	if n := e.Coord.PendingIntentions(); n < 1 {
		t.Fatalf("commit intention cleared despite unreachable site (pending=%d)", n)
	}

	// Heal; the coordinator's probe must finish the commit on its own.
	ch.HealStorage(1)
	if !WaitFor(5*time.Second, func() bool {
		return e.Coord.PendingIntentions() == 0 && e.Coord.Stats().Finished >= 1
	}) {
		t.Fatalf("coordinator never finished the interrupted commit (pending=%d finished=%d)",
			e.Coord.PendingIntentions(), e.Coord.Stats().Finished)
	}

	// The crash test: node 1 loses everything not made durable. The
	// acknowledged commit means the file must read back intact.
	e.Storage[1].Store().Crash()
	got := make([]byte, len(data))
	err = Retry(10*time.Second, func() error {
		_, _, err := c.Read(fh, 0, got)
		return err
	})
	if err != nil {
		t.Fatalf("read after storage crash: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("acknowledged committed data lost in storage crash")
	}
	FsckClean(t, e)
}

// TestDirServerRestartFromWALMidUntar: a directory server crashes in the
// middle of an untar under mkdir switching and is rebuilt purely from
// its write-ahead log at a brand-new address. The shared table swap must
// redirect the in-flight retransmissions (the µproxy re-resolves
// recorded paths on a route-version change), the workload must complete,
// and no acknowledged entry may be lost.
func TestDirServerRestartFromWALMidUntar(t *testing.T) {
	e := newEnsemble(t, nil)
	ch := e.Chaos()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	crashAt := make(chan struct{})
	crashed := make(chan struct{})
	var once bool
	done := make(chan struct{})
	var acked []Entry
	var untarErr error
	go func() {
		defer close(done)
		acked, untarErr = Untar(c, c.Root(), UntarConfig{
			Dirs: 16, Files: 48,
			OpBudget: 15 * time.Second,
			OnEntry: func(n int) {
				if n == 12 && !once {
					once = true
					// Pause until the crash lands: otherwise a fast
					// machine finishes the whole untar before CrashDir
					// runs and the test exercises nothing.
					close(crashAt)
					<-crashed
				}
			},
		})
	}()

	<-crashAt
	ch.CrashDir(1)
	close(crashed)
	// Hold the dead window open until the workload demonstrably hit it:
	// the untar stalls on the first op routed to the dead site and
	// retransmits. A fixed sleep races the workload on fast machines —
	// the restart could land before any request ever timed out.
	for deadline := time.Now().Add(10 * time.Second); c.Retransmissions() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("untar never hit the crashed directory server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := ch.RestartDir(1, nil, 70); err != nil {
		t.Fatalf("dir restart from WAL: %v", err)
	}

	<-done
	if untarErr != nil {
		t.Fatalf("untar did not survive the dir-server restart: %v", untarErr)
	}
	if lost := VerifyAcked(c, 10*time.Second, acked); len(lost) != 0 {
		t.Fatalf("%d acknowledged entries lost across restart: %v", len(lost), lost)
	}
	if c.Retransmissions() == 0 {
		t.Fatal("workload saw no retransmissions (crash window not exercised)")
	}
	FsckClean(t, e)
}

// TestCoordinatorRecoveryFinishesExactlyOnce is the end-to-end version
// of the coordinator crash-recovery contract: an intention is durable
// but its storage operations never ran (the site was unreachable and the
// client gave up after one transmission, so no duplicate orchestration
// chains exist). The restarted coordinator must finish the operation
// exactly once — before serving — and leave nothing pending.
func TestCoordinatorRecoveryFinishesExactlyOnce(t *testing.T) {
	e := newEnsemble(t, nil)
	ch := e.Chaos()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "gone", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(fh, bytes.Repeat([]byte("g"), 150*1024)); err != nil {
		t.Fatal(err)
	}

	// A one-shot client: a single transmission triggers exactly one
	// orchestration chain, keeping the storage op count deterministic.
	oneShot, err := client.New(client.Config{
		Net: e.Net, Host: 231, Server: e.Virtual,
		RPC: oncrpc.ClientConfig{Timeout: 50 * time.Millisecond, Retries: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer oneShot.Close()
	if err := oneShot.Mount(); err != nil {
		t.Fatal(err)
	}

	node0 := e.Storage[0].Store()
	node1 := e.Storage[1].Store()
	removes0, removes1 := node0.Stats().Removes, node1.Stats().Removes

	ch.PartitionStorage(0)
	_ = oneShot.Remove(c.Root(), "gone") // times out client-side; the chain runs on
	if !WaitFor(5*time.Second, func() bool { return e.Coord.PendingIntentions() >= 1 }) {
		t.Fatal("remove intention never became durable")
	}
	// The chain visits node 1 last; once its remove lands, the chain is
	// done and nothing else will touch node 0.
	if !WaitFor(10*time.Second, func() bool { return node1.Stats().Removes == removes1+1 }) {
		t.Fatal("orchestration chain never reached the live storage node")
	}
	if got := node0.Stats().Removes; got != removes0 {
		t.Fatalf("partitioned node saw %d removes mid-chain", got-removes0)
	}

	ch.CrashCoordinator()
	ch.HealStorage(0)
	co, err := ch.RestartCoordinator(3051)
	if err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}
	// Recovery completes before the new port serves: the pending remove
	// is already finished when Restart returns.
	if n := co.PendingIntentions(); n != 0 {
		t.Fatalf("%d intentions pending after restart", n)
	}
	if got := co.Stats().Finished; got != 1 {
		t.Fatalf("recovery finished %d operations, want exactly 1", got)
	}
	if got := node0.Stats().Removes; got != removes0+1 {
		t.Fatalf("node 0 removed %d times, want exactly once", got-removes0)
	}
	if _, ok := node0.Size(storage.ObjectOf(fh)); ok {
		t.Fatal("recovered remove left blocks on the partitioned node (orphan)")
	}
	FsckClean(t, e)
}

// TestWindowedBulkEquivalenceUnderChaos: a windowed client streams a
// large striped file while the fabric drops 2% of datagrams, one storage
// node rides out a partition, and another restarts mid-transfer. After
// the Commit barrier, a windowed reader (readahead on) and a serial
// reader must both observe exactly the bytes written — same checksum,
// same length — proving the pipelined path stays byte-identical to the
// serial one under faults.
func TestWindowedBulkEquivalenceUnderChaos(t *testing.T) {
	e := newEnsemble(t, func(cfg *ensemble.Config) {
		cfg.StorageNodes = 4
		cfg.Net = netsim.Config{LossRate: 0.02, Seed: 31}
		cfg.ClientRPC = oncrpc.ClientConfig{Timeout: 25 * time.Millisecond, Retries: 11}
	})
	ch := e.Chaos()
	w, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	fh, _, err := w.Create(w.Root(), "bulk-chaos", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1536*1024)
	for i := range data {
		data[i] = byte(i*2654435761 + i>>11)
	}

	// Fault script runs alongside the transfer: partition node 1, heal
	// it, then reboot node 2 while chunks are still in flight.
	faults := make(chan struct{})
	go func() {
		defer close(faults)
		time.Sleep(75 * time.Millisecond)
		ch.PartitionStorage(1)
		time.Sleep(300 * time.Millisecond)
		ch.HealStorage(1)
		if _, err := ch.RestartStorage(2); err != nil {
			t.Errorf("storage restart: %v", err)
		}
	}()

	const slice = 96 * 1024
	for off := 0; off < len(data); off += slice {
		end := off + slice
		if end > len(data) {
			end = len(data)
		}
		if _, err := w.Write(fh, uint64(off), data[off:end], false); err != nil {
			t.Fatalf("windowed write at %d under faults: %v", off, err)
		}
	}
	<-faults
	if _, err := w.Commit(fh); err != nil {
		t.Fatalf("commit barrier under faults: %v", err)
	}

	VerifyBytes(t, e, w, fh, data)
	FsckClean(t, e)
}
