// Command sliced runs a complete Slice ensemble — storage nodes, a
// block-service coordinator, directory servers, small-file servers, and
// the interposed µproxy — and exports the resulting virtual NFS server
// over a real UDP socket via the udpgate bridge. Point cmd/slicectl at
// the printed address.
//
//	sliced -storage 8 -dirs 4 -small 2 -policy switch -p 0.25 -listen 127.0.0.1:20490
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"slice/internal/ensemble"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/route"
	"slice/internal/udpgate"
)

func main() {
	var (
		storage = flag.Int("storage", 4, "number of storage nodes")
		dirs    = flag.Int("dirs", 2, "number of directory servers")
		small   = flag.Int("small", 2, "number of small-file servers")
		policy  = flag.String("policy", "switch", "name-space policy: switch | hash")
		p       = flag.Float64("p", 0.25, "mkdir redirection probability (switch policy)")
		mirror  = flag.Int("mirror", 0, "mirror degree for new files (0/1 = unmirrored)")
		maps    = flag.Bool("blockmaps", false, "route bulk I/O through coordinator block maps")
		capkey  = flag.String("capkey", "", "storage capability key (enables the secure-object model)")
		listen  = flag.String("listen", "127.0.0.1:20490", "UDP listen address")
		tcp     = flag.String("tcp", "", "TCP listen address for record-marked ONC-RPC (empty = UDP only)")
		portmap = flag.String("portmap", "", "portmapper TCP listen address (requires -tcp; use :111 for real mount clients)")
		stats   = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
	)
	flag.Parse()

	kind := route.MkdirSwitching
	if *policy == "hash" {
		kind = route.NameHashing
	}
	e, err := ensemble.New(ensemble.Config{
		StorageNodes:      *storage,
		DirServers:        *dirs,
		SmallFileServers:  *small,
		Coordinator:       true,
		NameKind:          kind,
		MkdirP:            *p,
		MirrorDegree:      uint8(*mirror),
		UseBlockMaps:      *maps,
		WritebackInterval: 2 * time.Second,
		CapabilityKey:     []byte(*capkey),
		TCPListen:         *tcp,
		PortmapListen:     *portmap,
	})
	if err != nil {
		log.Fatalf("sliced: ensemble: %v", err)
	}
	defer e.Close()

	gw, err := udpgate.NewGateway(*listen, e.Net, e.Virtual)
	if err != nil {
		log.Fatalf("sliced: gateway: %v", err)
	}
	defer gw.Close()
	// Surface the UDP gateway's drop counters (no-peer, inject, write)
	// alongside every other component in `slicectl stats`.
	udpObs := obs.NewRegistry("udpgate")
	gw.SetObs(udpObs)
	e.Obs.AddRegistry(udpObs)

	fmt.Printf("sliced: serving volume %v\n", e.Root)
	fmt.Printf("  storage nodes      : %d\n", len(e.Storage))
	fmt.Printf("  directory servers  : %d (%s, p=%.2f)\n", len(e.Dirs), kind, *p)
	fmt.Printf("  small-file servers : %d\n", len(e.Small))
	fmt.Printf("  virtual server     : %v (fabric)\n", e.Virtual)
	fmt.Printf("  UDP endpoint       : %v\n", gw.Addr())
	if len(e.Gateways) > 0 {
		fmt.Printf("  TCP endpoint       : %v (record-marked ONC-RPC)\n", e.Gateways[0].Addr())
	}
	if e.Portmap != nil {
		fmt.Printf("  portmapper         : %v (program %d v%d)\n", e.Portmap.Addr(),
			nfsproto.PortmapProgram, nfsproto.PortmapVersion)
	}
	fmt.Printf("connect with: slicectl -connect %v <command>\n", gw.Addr())
	if len(e.Gateways) > 0 {
		fmt.Printf("          or: slicectl -tcp -connect %v <command>\n", e.Gateways[0].Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	var tick <-chan time.Time
	if *stats > 0 {
		t := time.NewTicker(*stats)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-sig:
			fmt.Println("\nsliced: shutting down")
			printStats(e, gw)
			return
		case <-tick:
			printStats(e, gw)
		}
	}
}

func printStats(e *ensemble.Ensemble, gw *udpgate.Gateway) {
	st := e.Proxy.Stats()
	fmt.Printf("[stats] µproxy: %d reqs, %d resps, %d absorbed, %d initiated\n",
		st.Requests, st.Responses, st.Absorbed, st.Initiated)
	for i, d := range e.Dirs {
		c := d.Counters()
		fmt.Printf("[stats] dir[%d]: %d ops, %d peer calls, %d cross-site\n",
			i, c.Ops, c.PeerCalls, c.CrossSite)
	}
	for i, n := range e.Storage {
		s := n.Store().Stats()
		fmt.Printf("[stats] storage[%d]: %d reads, %d writes, %.1f MB stored\n",
			i, s.Reads, s.Writes, float64(n.Store().PhysicalBytes())/1e6)
	}
	for i, s := range e.Small {
		st := s.Store().Stats()
		fmt.Printf("[stats] smallfile[%d]: %d reads, %d writes, %d files\n",
			i, st.Reads, st.Writes, s.Store().NumFiles())
	}
	us := gw.Stats()
	fmt.Printf("[stats] udpgate: %d peers (%d evicted), drops: %d no-peer, %d inject, %d write\n",
		us.Peers, us.PeersEvicted, us.DropNoPeer, us.DropInject, us.DropWrite)
	for i, g := range e.Gateways {
		ws := g.Stats()
		fmt.Printf("[stats] wire[%d]: %d conns (%d total), rx %d recs / %d B (max %d), tx %d recs / %d B (max %d), %d drops\n",
			i, ws.Conns, ws.TotalConns, ws.RxRecords, ws.RxBytes, ws.MaxRxRecord,
			ws.TxRecords, ws.TxBytes, ws.MaxTxRecord, ws.Drops)
	}
	// Latency exposition: every component's op-class histograms plus the
	// µproxy's stage/hop/e2e breakdowns, in the text format `slicectl
	// stats` renders from the same collector over the wire.
	e.Obs.WriteText(os.Stdout)
}
