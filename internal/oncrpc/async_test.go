package oncrpc

import (
	"sync"
	"testing"
	"time"

	"slice/internal/netsim"
	"slice/internal/xdr"
)

// TestCallStartAwait exercises the asynchronous call API on a clean
// network: many calls started before any is awaited, results matched to
// their own arguments.
func TestCallStartAwait(t *testing.T) {
	cli, _ := newPair(t, netsim.Config{}, echoHandler, ClientConfig{})
	const n = 64
	pendings := make([]*Pending, n)
	for i := range pendings {
		v := uint32(i)
		pendings[i] = cli.CallStart(7, 1, 3, func(e *xdr.Encoder) { e.PutUint32(v) })
	}
	for i, p := range pendings {
		body, err := p.Await()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		got, err := xdr.NewDecoder(body).Uint32()
		if err != nil || got != uint32(i) {
			t.Fatalf("call %d echoed %d, %v", i, got, err)
		}
	}
}

// TestConcurrentCallsUnderFaults drives concurrent async windows from
// several goroutines through a link injected with loss, duplication, and
// reordering in both directions, and asserts reply matching never
// cross-wires two in-flight calls: every reply body must carry the exact
// (caller, sequence) pair its call sent. Run under -race this also
// checks the sharded pending map for data races.
func TestConcurrentCallsUnderFaults(t *testing.T) {
	n := netsim.New(netsim.Config{Seed: 7})
	sp, err := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sp, echoHandler)
	cp, err := n.Bind(netsim.Addr{Host: 1, Port: 100})
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cp, srv.Addr(), ClientConfig{
		Timeout: 20 * time.Millisecond,
		Retries: 8,
	})
	t.Cleanup(func() { cli.Close(); srv.Close() })
	fault := netsim.LinkFault{
		Drop:          0.15,
		Duplicate:     0.15,
		Reorder:       0.3,
		ReorderWindow: 4 * time.Millisecond,
	}
	n.SetLinkFault(1, 2, fault)
	n.SetLinkFault(2, 1, fault)

	const (
		callers = 8
		window  = 16
		rounds  = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for caller := 0; caller < callers; caller++ {
		wg.Add(1)
		go func(caller uint32) {
			defer wg.Done()
			seq := uint32(0)
			for r := 0; r < rounds; r++ {
				pendings := make([]*Pending, window)
				sent := make([][2]uint32, window)
				for i := range pendings {
					a, b := caller, seq
					seq++
					sent[i] = [2]uint32{a, b}
					pendings[i] = cli.CallStart(7, 1, 3, func(e *xdr.Encoder) {
						e.PutUint32(a)
						e.PutUint32(b)
					})
				}
				for i, p := range pendings {
					body, err := p.Await()
					if err != nil {
						errs <- err
						return
					}
					d := xdr.NewDecoder(body)
					ga, _ := d.Uint32()
					gb, err := d.Uint32()
					if err != nil || ga != sent[i][0] || gb != sent[i][1] {
						t.Errorf("cross-wired reply: sent (%d,%d) got (%d,%d) err=%v",
							sent[i][0], sent[i][1], ga, gb, err)
						return
					}
				}
			}
		}(uint32(caller))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		// Residual timeouts are possible at 15% loss with finite
		// retries, but should be absent with 8 attempts; surface them.
		t.Fatalf("call failed under faults: %v", err)
	}
}

// TestAsyncCallsAfterClose verifies CallStart on a closed client fails
// fast instead of hanging.
func TestAsyncCallsAfterClose(t *testing.T) {
	cli, _ := newPair(t, netsim.Config{}, echoHandler, ClientConfig{})
	cli.Close()
	p := cli.CallStart(7, 1, 3, nil)
	if _, err := p.Await(); err == nil {
		t.Fatal("CallStart after Close succeeded")
	}
}
