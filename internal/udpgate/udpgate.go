// Package udpgate bridges the in-memory Slice fabric to real UDP sockets,
// so a client in another process (or on another machine) can mount the
// virtual NFS server exported by a running ensemble.
//
// Server side, a Gateway listens on a UDP socket; each remote peer is
// assigned a synthetic client address on the netsim fabric, and its
// datagrams are injected toward the virtual server — which means they
// traverse the interposed µproxy exactly like local traffic. Client side,
// Dial returns an oncrpc.Conn over UDP, usable with client.NewWithConn.
package udpgate

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"slice/internal/netsim"
)

// Gateway relays between a UDP socket and a netsim fabric.
type Gateway struct {
	conn    *net.UDPConn
	fabric  *netsim.Network
	virtual netsim.Addr

	mu       sync.Mutex
	peers    map[string]*peer
	nextHost uint32
	closed   bool
	wg       sync.WaitGroup
}

type peer struct {
	remote *net.UDPAddr
	port   *netsim.Port
}

// NewGateway starts a gateway on the given UDP listen address, forwarding
// to the fabric's virtual server address.
func NewGateway(listen string, fabric *netsim.Network, virtual netsim.Addr) (*Gateway, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		conn:     conn,
		fabric:   fabric,
		virtual:  virtual,
		peers:    make(map[string]*peer),
		nextHost: 0x7F000000, // synthetic client hosts
	}
	g.wg.Add(1)
	go g.pumpIn()
	return g, nil
}

// Addr returns the UDP address the gateway listens on.
func (g *Gateway) Addr() net.Addr { return g.conn.LocalAddr() }

// Close stops the gateway.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	for _, p := range g.peers {
		p.port.Close()
	}
	g.mu.Unlock()
	g.conn.Close()
	g.wg.Wait()
}

// pumpIn reads UDP datagrams (raw RPC payloads) and injects them into the
// fabric addressed to the virtual server.
func (g *Gateway) pumpIn() {
	defer g.wg.Done()
	buf := make([]byte, netsim.MaxDatagram)
	for {
		n, remote, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p, err := g.peerFor(remote)
		if err != nil {
			continue
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		_ = p.port.SendTo(g.virtual, payload)
	}
}

// peerFor returns (allocating on first contact) the fabric endpoint for a
// remote UDP address.
func (g *Gateway) peerFor(remote *net.UDPAddr) (*peer, error) {
	key := remote.String()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, fmt.Errorf("udpgate: gateway closed")
	}
	if p, ok := g.peers[key]; ok {
		return p, nil
	}
	g.nextHost++
	port, err := g.fabric.BindAny(g.nextHost)
	if err != nil {
		return nil, err
	}
	p := &peer{remote: remote, port: port}
	g.peers[key] = p
	g.wg.Add(1)
	go g.pumpOut(p)
	return p, nil
}

// pumpOut forwards replies from the fabric back to the remote peer.
func (g *Gateway) pumpOut(p *peer) {
	defer g.wg.Done()
	for {
		d, err := p.port.Recv(0)
		if err != nil {
			return
		}
		_, err = g.conn.WriteToUDP(netsim.Payload(d), p.remote)
		netsim.FreeBuf(d)
		if err != nil {
			return
		}
	}
}

// Conn is a client-side oncrpc.Conn over UDP.
type Conn struct {
	conn *net.UDPConn

	// peer is the fabric address the caller last sent to. The dialed UDP
	// socket only delivers datagrams from the gateway (the kernel's
	// connected-socket filter is the real peer check), so received
	// replies are stamped with this address — the fabric-level reflection
	// the RPC client's peer-address check expects.
	mu   sync.Mutex
	peer netsim.Addr
}

// Dial connects to a gateway's UDP address.
func Dial(server string) (*Conn, error) {
	addr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, err
	}
	c, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	return &Conn{conn: c}, nil
}

// SendTo implements oncrpc.Conn. The destination fabric address is
// implied by the dialed gateway (it always targets the virtual server),
// so dst is ignored.
func (c *Conn) SendTo(dst netsim.Addr, payload []byte) error {
	c.mu.Lock()
	c.peer = dst
	c.mu.Unlock()
	_, err := c.conn.Write(payload)
	return err
}

// Recv implements oncrpc.Conn.
func (c *Conn) Recv(timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	} else {
		if err := c.conn.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, netsim.MaxDatagram)
	n, err := c.conn.Read(buf)
	if err != nil {
		return nil, err
	}
	out := make([]byte, netsim.HeaderSize+n)
	c.mu.Lock()
	src := c.peer
	c.mu.Unlock()
	binary.BigEndian.PutUint32(out[netsim.OffSrcHost:], src.Host)
	binary.BigEndian.PutUint16(out[netsim.OffSrcPort:], src.Port)
	copy(out[netsim.HeaderSize:], buf[:n])
	return out, nil
}

// Addr implements oncrpc.Conn with a placeholder fabric address.
func (c *Conn) Addr() netsim.Addr { return netsim.Addr{Host: 0x7F000001, Port: 1} }

// Close implements oncrpc.Conn.
func (c *Conn) Close() { _ = c.conn.Close() }
