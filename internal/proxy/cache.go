// Package proxy implements the Slice µproxy: an interposed request router
// that virtualizes the file service (§2.1, §3, §4.1).
//
// The µproxy is a network element on each client's path to the service.
// It intercepts datagrams addressed to the virtual server, classifies each
// request (bulk I/O, small-file I/O, name space, attributes), selects a
// physical server with the configured routing policies, rewrites the
// destination address and port with an incremental checksum update, and
// forwards the packet. Responses are intercepted on the way back, have the
// virtual server address restored, and — for I/O responses from storage
// and small-file servers, which carry no attributes — are patched with a
// complete attribute set from the µproxy's attribute cache.
//
// All µproxy state is soft: pending-request records, routing tables, the
// attribute cache, the name cache, and block-map fragments can be
// discarded at any time; end-to-end RPC retransmission recovers.
//
// Soft state is sharded: the pending-request table and every cache are
// split into numShards independently locked shards keyed by a hash of the
// record identity, so concurrent clients touch disjoint locks and the
// data path scales across cores (the paper's kernel packet filter had no
// global lock to serialize on; neither does this).
package proxy

import (
	"sync"
	"sync/atomic"
	"time"

	"slice/internal/attr"
	"slice/internal/fhandle"
)

// numShards is the soft-state shard count (power of two). 16 shards keep
// the per-shard footprint trivial while making cross-client lock
// collisions rare even at high core counts.
const numShards = 16

// keyHash mixes a handle identity into a well-distributed 64-bit hash.
func keyHash(k fhandle.Key) uint64 {
	h := k.FileID ^ uint64(k.Volume)<<32 ^ uint64(k.Gen)
	h *= 0x9E3779B97F4A7C15 // Fibonacci hashing: spread low-entropy IDs
	return h
}

// shardIndex selects a shard from a hash, using the high bits (the
// multiplicative hash concentrates entropy there).
func shardIndex(h uint64) int { return int(h>>60) & (numShards - 1) }

// ------------------------------------------------------- attribute cache

// attrEntry is one attribute-cache entry. Dirty entries hold attribute
// changes (size/mtime from I/O traffic) not yet pushed to the directory
// server with SETATTR. prev/next chain the shard's intrusive LRU list.
type attrEntry struct {
	fh      fhandle.Handle
	at      attr.Attr
	dirty   bool
	touched time.Time

	prev, next *attrEntry
}

// attrShard is one lock's worth of the attribute cache: a map for lookup
// plus an intrusive LRU list (head = most recent) for eviction.
type attrShard struct {
	mu      sync.Mutex
	entries map[fhandle.Key]*attrEntry
	head    *attrEntry
	tail    *attrEntry
	cap     int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// attrCache caches file attributes observed in responses and updated by
// I/O completions (§4.1). It is bounded per shard; inserting over
// capacity evicts the least-recently-used entry, and a dirty evictee is
// returned to the caller for writeback OUTSIDE the shard lock, so a slow
// directory server never stalls unrelated cache hits.
type attrCache struct {
	shards [numShards]attrShard
}

func newAttrCache(capacity int) *attrCache {
	if capacity <= 0 {
		capacity = 4096
	}
	per := capacity / numShards
	if per < 1 {
		per = 1
	}
	c := &attrCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[fhandle.Key]*attrEntry)
		c.shards[i].cap = per
	}
	return c
}

func (c *attrCache) shard(k fhandle.Key) *attrShard {
	return &c.shards[shardIndex(keyHash(k))]
}

// moveToFront makes e the shard's most-recently-used entry, linking it in
// if it is fresh.
func (s *attrShard) moveToFront(e *attrEntry) {
	if s.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.tail == e {
		s.tail = e.prev
	}
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the shard's LRU list.
func (s *attrShard) unlink(e *attrEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictOver pops the least-recently-used entry if the shard exceeds its
// capacity. Called with the shard locked; the caller writes back a dirty
// evictee after unlocking.
func (s *attrShard) evictOver() (attrEntry, bool) {
	if len(s.entries) <= s.cap || s.tail == nil {
		return attrEntry{}, false
	}
	victim := s.tail
	s.unlink(victim)
	delete(s.entries, victim.fh.Ident())
	return *victim, victim.dirty
}

// get returns a copy of the cached attributes for fh.
func (c *attrCache) get(fh fhandle.Handle) (attr.Attr, bool) {
	s := c.shard(fh.Ident())
	s.mu.Lock()
	e := s.entries[fh.Ident()]
	if e == nil {
		s.mu.Unlock()
		s.misses.Add(1)
		return attr.Attr{}, false
	}
	s.moveToFront(e)
	at := e.at
	s.mu.Unlock()
	s.hits.Add(1)
	return at, true
}

// observe folds authoritative attributes from a server response into the
// cache. If the entry is dirty, locally known size/mtime win: they reflect
// I/O the directory server has not seen yet. A dirty entry evicted to make
// room is returned for writeback by the caller, outside the shard lock.
func (c *attrCache) observe(fh fhandle.Handle, at attr.Attr) (attrEntry, bool) {
	s := c.shard(fh.Ident())
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[fh.Ident()]
	if e == nil {
		e = &attrEntry{fh: fh, at: at}
		s.entries[fh.Ident()] = e
	} else if e.dirty {
		merged := at
		if e.at.Size > merged.Size {
			merged.Size = e.at.Size
		}
		if merged.Mtime.Before(e.at.Mtime) {
			merged.Mtime = e.at.Mtime
		}
		e.at = merged
	} else {
		e.at = at
	}
	e.touched = time.Now()
	s.moveToFront(e)
	return s.evictOver()
}

// update applies fn to the entry for fh, creating it if absent, and marks
// it dirty. Used on I/O completions to track size and timestamps. A dirty
// evictee is returned for out-of-lock writeback, as with observe.
func (c *attrCache) update(fh fhandle.Handle, fn func(*attr.Attr)) (attrEntry, bool) {
	s := c.shard(fh.Ident())
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[fh.Ident()]
	if e == nil {
		e = &attrEntry{fh: fh, at: attr.Attr{
			Type:   attr.FileType(fh.Type),
			FileID: fh.FileID,
			Nlink:  1,
		}}
		s.entries[fh.Ident()] = e
	}
	fn(&e.at)
	e.dirty = true
	e.touched = time.Now()
	s.moveToFront(e)
	return s.evictOver()
}

// takeDirty returns and clears the dirty flag of fh's entry, for SETATTR
// writeback. ok is false if there was nothing dirty.
func (c *attrCache) takeDirty(fh fhandle.Handle) (attr.Attr, bool) {
	s := c.shard(fh.Ident())
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[fh.Ident()]
	if e == nil || !e.dirty {
		return attr.Attr{}, false
	}
	e.dirty = false
	return e.at, true
}

// markDirty re-marks an entry dirty (writeback failed; retry later).
func (c *attrCache) markDirty(fh fhandle.Handle) {
	s := c.shard(fh.Ident())
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[fh.Ident()]; e != nil {
		e.dirty = true
	}
}

// allDirty snapshots every dirty entry and clears the flags; the periodic
// writeback uses it to bound attribute drift (§4.1).
func (c *attrCache) allDirty() []attrEntry {
	var out []attrEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.entries {
			if e.dirty {
				out = append(out, *e)
				e.dirty = false
			}
		}
		s.mu.Unlock()
	}
	return out
}

// forget drops the entry for fh (file removed).
func (c *attrCache) forget(fh fhandle.Handle) {
	s := c.shard(fh.Ident())
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[fh.Ident()]; e != nil {
		s.unlink(e)
		delete(s.entries, fh.Ident())
	}
}

// len returns the number of cached entries across all shards.
func (c *attrCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// clear drops all entries (soft-state loss).
func (c *attrCache) clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[fhandle.Key]*attrEntry)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// ------------------------------------------------------------ name cache

// nameKey identifies a directory entry.
type nameKey struct {
	parent fhandle.Key
	name   string
}

// nameKeyHash extends the parent's identity hash with an FNV-1a fold of
// the entry name. Allocation-free.
func nameKeyHash(k nameKey) uint64 {
	h := keyHash(k.parent)
	for i := 0; i < len(k.name); i++ {
		h = (h ^ uint64(k.name[i])) * 1099511628211
	}
	return h
}

// nameEntry is one (directory, name) → child binding in a shard's LRU.
type nameEntry struct {
	key   nameKey
	child fhandle.Handle

	prev, next *nameEntry
}

// nameShard is one lock's worth of the name cache.
type nameShard struct {
	mu      sync.Mutex
	entries map[nameKey]*nameEntry
	head    *nameEntry
	tail    *nameEntry
	cap     int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// nameCache remembers (directory, name) → child handle bindings harvested
// from LOOKUP/CREATE/MKDIR responses. The µproxy uses it to orchestrate
// REMOVE (it must know the victim's handle to clear its data). Soft
// state, sharded like the attribute cache, evicted LRU per shard.
type nameCache struct {
	shards [numShards]nameShard
}

func newNameCache(capacity int) *nameCache {
	if capacity <= 0 {
		capacity = 8192
	}
	per := capacity / numShards
	if per < 1 {
		per = 1
	}
	c := &nameCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[nameKey]*nameEntry)
		c.shards[i].cap = per
	}
	return c
}

func (c *nameCache) shard(k nameKey) *nameShard {
	return &c.shards[shardIndex(nameKeyHash(k))]
}

func (s *nameShard) moveToFront(e *nameEntry) {
	if s.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.tail == e {
		s.tail = e.prev
	}
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *nameShard) unlink(e *nameEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *nameCache) put(parent fhandle.Handle, name string, child fhandle.Handle) {
	k := nameKey{parent.Ident(), name}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[k]
	if e == nil {
		e = &nameEntry{key: k}
		s.entries[k] = e
	}
	e.child = child
	s.moveToFront(e)
	if len(s.entries) > s.cap && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
	}
}

func (c *nameCache) get(parent fhandle.Handle, name string) (fhandle.Handle, bool) {
	k := nameKey{parent.Ident(), name}
	s := c.shard(k)
	s.mu.Lock()
	e := s.entries[k]
	if e == nil {
		s.mu.Unlock()
		s.misses.Add(1)
		return fhandle.Handle{}, false
	}
	s.moveToFront(e)
	child := e.child
	s.mu.Unlock()
	s.hits.Add(1)
	return child, true
}

func (c *nameCache) drop(parent fhandle.Handle, name string) {
	k := nameKey{parent.Ident(), name}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[k]; e != nil {
		s.unlink(e)
		delete(s.entries, k)
	}
}

func (c *nameCache) clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[nameKey]*nameEntry)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// --------------------------------------------------------- block-map cache

// mapShard is one lock's worth of the block-map cache.
type mapShard struct {
	mu      sync.Mutex
	entries map[fhandle.Key][]uint32
}

// mapCache caches per-file block-map fragments supplied by a coordinator
// (§3.1). Fragments are fetched in chunks. Sharded by file identity.
type mapCache struct {
	shards [numShards]mapShard
}

// mapChunk is how many stripes one coordinator fetch returns.
const mapChunk = 64

func newMapCache() *mapCache {
	c := &mapCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[fhandle.Key][]uint32)
	}
	return c
}

func (c *mapCache) shard(k fhandle.Key) *mapShard {
	return &c.shards[shardIndex(keyHash(k))]
}

// get returns the cached site of a stripe, or ok=false on a miss.
func (c *mapCache) get(fh fhandle.Handle, stripe uint64) (uint32, bool) {
	s := c.shard(fh.Ident())
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.entries[fh.Ident()]
	if stripe < uint64(len(m)) {
		return m[stripe], true
	}
	return 0, false
}

// fill installs a fetched fragment starting at stripe first.
func (c *mapCache) fill(fh fhandle.Handle, first uint64, sites []uint32) {
	s := c.shard(fh.Ident())
	s.mu.Lock()
	defer s.mu.Unlock()
	key := fh.Ident()
	m := s.entries[key]
	need := first + uint64(len(sites))
	for uint64(len(m)) < need {
		m = append(m, 0)
	}
	copy(m[first:], sites)
	s.entries[key] = m
}

func (c *mapCache) forget(fh fhandle.Handle) {
	s := c.shard(fh.Ident())
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, fh.Ident())
}

func (c *mapCache) clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[fhandle.Key][]uint32)
		s.mu.Unlock()
	}
}
