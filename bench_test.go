// Benchmarks regenerating each table and figure of the paper (§5). Every
// benchmark reports the experiment's headline metric with b.ReportMetric,
// so `go test -bench=.` doubles as a compact reproduction run. For the
// full formatted report, use `go run ./cmd/slicebench -exp all`.
package slice_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/fhandle"
	"slice/internal/front"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/proxy"
	"slice/internal/route"
	"slice/internal/sim"
	"slice/internal/wire"
	"slice/internal/workload"
	"slice/internal/xdr"
)

// BenchmarkTable2BulkIO regenerates Table 2: bulk I/O bandwidth per
// workload, single-client and at saturation.
func BenchmarkTable2BulkIO(b *testing.B) {
	rows := []struct {
		name     string
		write    bool
		mirrored bool
	}{
		{"read", false, false},
		{"write", true, false},
		{"read-mirrored", false, true},
		{"write-mirrored", true, true},
	}
	for _, r := range rows {
		b.Run(r.name+"/single-client", func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				res := sim.RunBulk(sim.BulkConfig{
					StorageNodes: 8, Clients: 1,
					Write: r.write, Mirrored: r.mirrored,
					BytesPerClient: 64 << 20,
				})
				mbps = res.PerClientMBps
			}
			b.ReportMetric(mbps, "MB/s")
		})
		b.Run(r.name+"/saturation", func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				res := sim.RunBulk(sim.BulkConfig{
					StorageNodes: 8, Clients: 16, Tuned: true,
					Write: r.write, Mirrored: r.mirrored,
					BytesPerClient: 32 << 20,
				})
				mbps = res.AggregateMBps
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkTable3ProxyCPU regenerates Table 3: per-stage µproxy CPU cost
// measured on the live implementation under the untar workload.
func BenchmarkTable3ProxyCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := ensemble.New(ensemble.Config{
			StorageNodes: 2, DirServers: 2, SmallFileServers: 1,
			Coordinator: true, NameKind: route.MkdirSwitching, MkdirP: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		c, err := e.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if _, err := workload.Untar(c, c.Root(), workload.UntarConfig{Entries: 500}); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		st := e.Proxy.Stats()
		if pkts := st.Requests + st.Responses; pkts > 0 {
			b.ReportMetric(float64(st.InterceptNS)/float64(pkts), "intercept-ns/pkt")
			b.ReportMetric(float64(st.DecodeNS)/float64(pkts), "decode-ns/pkt")
			b.ReportMetric(float64(st.RewriteNS)/float64(pkts), "rewrite-ns/pkt")
			b.ReportMetric(float64(st.SoftStateNS)/float64(pkts), "softstate-ns/pkt")
		}
		c.Close()
		e.Close()
		b.StartTimer()
	}
}

// BenchmarkFig3DirScaling regenerates Figure 3: mean untar completion
// time for the N-MFS baseline and Slice-N at a representative load.
func BenchmarkFig3DirScaling(b *testing.B) {
	const procs = 16
	configs := []struct {
		name     string
		servers  int
		baseline bool
	}{
		{"N-MFS", 1, true},
		{"Slice-1", 1, false},
		{"Slice-2", 2, false},
		{"Slice-4", 4, false},
	}
	for _, cfg := range configs {
		b.Run(fmt.Sprintf("%s/procs=%d", cfg.name, procs), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res := sim.RunUntar(sim.UntarConfig{
					DirServers: cfg.servers, Baseline: cfg.baseline,
					Processes: procs, Kind: route.MkdirSwitching,
					P: 1 / float64(cfg.servers),
				})
				lat = res.MeanLatency
			}
			b.ReportMetric(lat, "untar-sec")
		})
	}
}

// BenchmarkFig4Affinity regenerates Figure 4: untar latency across the
// directory-affinity sweep at 16 processes on 4 directory servers.
func BenchmarkFig4Affinity(b *testing.B) {
	for _, affinity := range []float64{0, 0.4, 0.8, 1.0} {
		b.Run(fmt.Sprintf("affinity=%.0f%%", affinity*100), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res := sim.RunUntar(sim.UntarConfig{
					DirServers: 4, Processes: 16, ClientNodes: 4,
					Kind: route.MkdirSwitching, P: 1 - affinity,
				})
				lat = res.MeanLatency
			}
			b.ReportMetric(lat, "untar-sec")
		})
	}
}

// BenchmarkFig5SfsThroughput regenerates Figure 5: SPECsfs97 delivered
// IOPS at saturation for each configuration.
func BenchmarkFig5SfsThroughput(b *testing.B) {
	configs := []struct {
		name     string
		nodes    int
		baseline bool
	}{
		{"NFS", 1, true},
		{"Slice-1", 1, false},
		{"Slice-2", 2, false},
		{"Slice-4", 4, false},
		{"Slice-8", 8, false},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var iops float64
			for i := 0; i < b.N; i++ {
				res := sim.RunSfs(sim.SfsConfig{
					StorageNodes: cfg.nodes, Baseline: cfg.baseline,
					OfferedIOPS: 9000, Duration: 20, Warmup: 4,
				})
				iops = res.DeliveredIOPS
			}
			b.ReportMetric(iops, "IOPS")
		})
	}
}

// BenchmarkFig6SfsLatency regenerates Figure 6: mean SPECsfs latency at a
// below-saturation and a past-cache-overflow operating point.
func BenchmarkFig6SfsLatency(b *testing.B) {
	points := []struct {
		name    string
		nodes   int
		offered float64
	}{
		{"Slice-8/light", 8, 500},
		{"Slice-8/overflowed", 8, 4000},
		{"Slice-8/near-saturation", 8, 6000},
	}
	for _, p := range points {
		b.Run(p.name, func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				res := sim.RunSfs(sim.SfsConfig{
					StorageNodes: p.nodes, OfferedIOPS: p.offered,
					Duration: 20, Warmup: 4,
				})
				ms = res.MeanLatencyMs
			}
			b.ReportMetric(ms, "latency-ms")
		})
	}
}

// --- Micro-benchmarks of the µproxy-critical code paths -----------------

// BenchmarkProxyDecode measures the packet-decode stage in isolation: the
// dominant µproxy cost in Table 3.
func BenchmarkProxyDecode(b *testing.B) {
	fh := fhandle.Handle{Volume: 1, FileID: 42, Type: 1, CellKey: 42, Site: 1, Gen: 1}
	args := nfsproto.LookupArgs{Dir: fh, Name: "src"}
	e := xdr.NewEncoder(128)
	args.Encode(e)
	body := e.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nfsproto.ParseCall(nfsproto.ProcLookup, body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNameKey measures the MD5 fingerprint that keys both hash
// chains and the name-hashing policy.
func BenchmarkNameKey(b *testing.B) {
	fh := fhandle.Handle{Volume: 1, FileID: 42, Gen: 1}
	for i := 0; i < b.N; i++ {
		fhandle.NameKey(fh, "some-file-name.c")
	}
}

func benchAddrs(n int) []netsim.Addr {
	out := make([]netsim.Addr, n)
	for i := range out {
		out[i] = netsim.Addr{Host: uint32(10 + i), Port: 2049}
	}
	return out
}

// BenchmarkRouteIO measures bulk-I/O target selection.
func BenchmarkRouteIO(b *testing.B) {
	table := route.NewTable(8, benchAddrs(8))
	policy := route.NewIOPolicy(nil, table)
	fh := fhandle.Handle{Volume: 1, FileID: 7, Gen: 1}
	for i := 0; i < b.N; i++ {
		if _, err := policy.ReadTarget(fh, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Contended data-path benchmarks -------------------------------------
//
// These exercise the sharded soft state and the pooled-buffer forward path
// under concurrency (run with -cpu 1,4 to see scaling). Baselines from
// before the sharding/pooling rework live in BENCH_proxy.json.

// forwardHarness is a self-contained proxy forward-path rig: one µproxy
// interposed between per-goroutine client ports and per-goroutine
// directory-server ports, exercising tap → classify → route → rewrite →
// forward and the pass-through response path with no real servers.
type forwardHarness struct {
	net     *netsim.Network
	p       *proxy.Proxy
	virtual netsim.Addr
	lanes   atomic.Uint32
	logical int
	servers []*netsim.Port
}

const fwdLanes = 64

func newForwardHarness(b *testing.B) *forwardHarness {
	b.Helper()
	n := netsim.New(netsim.Config{QueueLen: 1024})
	dirAddrs := make([]netsim.Addr, fwdLanes)
	servers := make([]*netsim.Port, fwdLanes)
	for i := range dirAddrs {
		dirAddrs[i] = netsim.Addr{Host: uint32(1000 + i), Port: 2049}
		port, err := n.Bind(dirAddrs[i])
		if err != nil {
			b.Fatal(err)
		}
		servers[i] = port
	}
	dirs := route.NewTable(fwdLanes, dirAddrs)
	storage := route.NewTable(fwdLanes, dirAddrs)
	virtual := netsim.Addr{Host: 9999, Port: 2049}
	// Tracing and histograms stay on in the benchmark: the observability
	// layer is always-on in deployments, so its cost (one pooled span and
	// a handful of atomic adds per request) is part of the budget the
	// 0 allocs/op gate protects.
	p := proxy.New(proxy.Config{
		Net:     n,
		Host:    9998,
		Virtual: virtual,
		IO:      route.NewIOPolicy(nil, storage),
		Names:   route.NewNamePolicy(route.MkdirSwitching, 0, dirs),
		Obs:     obs.NewRegistry("uproxy"),
		Tracer:  obs.NewTracer(256),
	})
	b.Cleanup(p.Close)
	return &forwardHarness{net: n, p: p, virtual: virtual, logical: fwdLanes, servers: servers}
}

// fwdLane is one goroutine's private client endpoint + request template.
// The FH site pins each lane to its own directory server. target is the
// virtual address the lane's requests are sent to — the single proxy in
// the forward benchmarks, the lane's ring-resolved owner in the fleet
// benchmark.
type fwdLane struct {
	target  netsim.Addr
	client  *netsim.Port
	server  *netsim.Port
	request []byte
	reply   []byte
	xid     uint32
}

func (h *forwardHarness) newLane(b *testing.B) *fwdLane {
	i := h.lanes.Add(1) - 1
	client, err := h.net.Bind(netsim.Addr{Host: uint32(2000 + i), Port: 999})
	if err != nil {
		b.Fatal(err)
	}
	server := h.servers[i%fwdLanes]
	fh := fhandle.Handle{Volume: 1, FileID: uint64(100 + i), Gen: 1, Site: i % uint32(h.logical)}
	args := nfsproto.AccessArgs{FH: fh, Access: 1}
	request := oncrpc.EncodeCall(1, nfsproto.Program, nfsproto.Version, uint32(nfsproto.ProcAccess), args.Encode)
	reply := oncrpc.EncodeReply(1, oncrpc.AcceptSuccess, func(e *xdr.Encoder) { e.PutUint32(0) })
	return &fwdLane{target: h.virtual, client: client, server: server, request: request, reply: reply}
}

func (l *fwdLane) roundTrip(b *testing.B) {
	l.xid++
	binary.BigEndian.PutUint32(l.request[oncrpc.OffXid:], l.xid)
	binary.BigEndian.PutUint32(l.reply[oncrpc.OffXid:], l.xid)
	if err := l.client.SendTo(l.target, l.request); err != nil {
		b.Fatal(err)
	}
	d, err := l.server.Recv(0)
	if err != nil {
		b.Fatal(err)
	}
	src := netsim.Addr{
		Host: binary.BigEndian.Uint32(d[netsim.OffSrcHost:]),
		Port: binary.BigEndian.Uint16(d[netsim.OffSrcPort:]),
	}
	netsim.FreeBuf(d)
	if err := l.server.SendTo(src, l.reply); err != nil {
		b.Fatal(err)
	}
	d, err = l.client.Recv(0)
	if err != nil {
		b.Fatal(err)
	}
	netsim.FreeBuf(d)
}

// BenchmarkProxyForwardParallel drives concurrent request/response round
// trips through the µproxy data path from independent clients.
func BenchmarkProxyForwardParallel(b *testing.B) {
	h := newForwardHarness(b)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		l := h.newLane(b)
		for pb.Next() {
			l.roundTrip(b)
		}
	})
}

// BenchmarkProxyForwardSerial is the same path single-threaded, for
// per-op cost and allocation accounting.
func BenchmarkProxyForwardSerial(b *testing.B) {
	h := newForwardHarness(b)
	l := h.newLane(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.roundTrip(b)
	}
}

// --- Fleet scale-out benchmark ------------------------------------------
//
// BenchmarkFleetForward measures aggregate forwarded throughput as the
// proxy fleet grows. Raw forwarding is far too cheap to expose scaling on
// this container (one core; see BENCH_proxy.json), so every fleet member
// runs with a paced service loop (Config.ServiceTime) that caps it at a
// fixed per-proxy rate — the saturated-CPU regime of §5. Scaling then
// shows up the way it does in the paper: N shared-nothing proxies deliver
// N times the aggregate rate, because no request ever crosses two members
// and nothing is shared but the (read-mostly) routing tables.

// fleetServiceTime is each member's paced per-request cost: one proxy
// saturates at 1/fleetServiceTime = 20k fwd-ops/s.
const fleetServiceTime = 50 * time.Microsecond

// fleetHarness is the forward-path rig scaled out: n paced µproxies over
// one set of shared routing tables, fronted by the consistent-hash ring
// that assigns each lane's flow to its owner.
type fleetHarness struct {
	net     *netsim.Network
	proxies []*proxy.Proxy
	ring    *front.Ring
	servers []*netsim.Port
}

func newFleetHarness(b *testing.B, n int) *fleetHarness {
	b.Helper()
	net := netsim.New(netsim.Config{QueueLen: 1024})
	dirAddrs := make([]netsim.Addr, fwdLanes)
	servers := make([]*netsim.Port, fwdLanes)
	for i := range dirAddrs {
		dirAddrs[i] = netsim.Addr{Host: uint32(1000 + i), Port: 2049}
		port, err := net.Bind(dirAddrs[i])
		if err != nil {
			b.Fatal(err)
		}
		servers[i] = port
	}
	dirs := route.NewTable(fwdLanes, dirAddrs)
	storage := route.NewTable(fwdLanes, dirAddrs)
	members := make([]route.ProxyMember, n)
	proxies := make([]*proxy.Proxy, n)
	for i := 0; i < n; i++ {
		virtual := netsim.Addr{Host: uint32(9000 + i), Port: 2049}
		host := uint32(8900 + i)
		// Per-member observability stays on, as in the single-proxy
		// benchmarks: the 0 allocs/op budget covers tracing.
		p := proxy.New(proxy.Config{
			Net:         net,
			Host:        host,
			Virtual:     virtual,
			ID:          uint32(i),
			ServiceTime: fleetServiceTime,
			IO:          route.NewIOPolicy(nil, storage),
			Names:       route.NewNamePolicy(route.MkdirSwitching, 0, dirs),
			Obs:         obs.NewRegistry(fmt.Sprintf("uproxy[%d]", i)),
			Tracer:      obs.NewTracer(256),
		})
		b.Cleanup(p.Close)
		proxies[i] = p
		members[i] = route.ProxyMember{ID: uint32(i), Virtual: virtual, Host: host}
	}
	return &fleetHarness{
		net:     net,
		proxies: proxies,
		ring:    front.NewRing(route.NewFleet(members), 0),
		servers: servers,
	}
}

// newLane builds lane i exactly like the single-proxy harness, except the
// lane's target is whichever fleet member the front ring hashes its flow
// to. Returns the owning member's ID so the benchmark can check coverage.
func (h *fleetHarness) newLane(b *testing.B, i uint32) (*fwdLane, uint32) {
	clientAddr := netsim.Addr{Host: uint32(2000 + i), Port: 999}
	client, err := h.net.Bind(clientAddr)
	if err != nil {
		b.Fatal(err)
	}
	fh := fhandle.Handle{Volume: 1, FileID: uint64(100 + i), Gen: 1, Site: i % fwdLanes}
	owner, ok := h.ring.Owner(front.FlowKey(clientAddr, fhandle.HandleKey(fh)))
	if !ok {
		b.Fatal("empty fleet")
	}
	args := nfsproto.AccessArgs{FH: fh, Access: 1}
	request := oncrpc.EncodeCall(1, nfsproto.Program, nfsproto.Version, uint32(nfsproto.ProcAccess), args.Encode)
	reply := oncrpc.EncodeReply(1, oncrpc.AcceptSuccess, func(e *xdr.Encoder) { e.PutUint32(0) })
	return &fwdLane{
		target:  owner.Virtual,
		client:  client,
		server:  h.servers[i%fwdLanes],
		request: request,
		reply:   reply,
	}, owner.ID
}

// BenchmarkFleetForward drives fwdLanes concurrent closed-loop clients
// through a 1/2/4/8-member fleet of rate-paced proxies. ns/op should
// track fleetServiceTime/N — near-linear aggregate scaling — and each
// member must stay at 0 allocs per forwarded request with tracing on.
// Gated by BENCH_proxy.json (ratio rules + exact allocs).
func BenchmarkFleetForward(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("proxies=%d", n), func(b *testing.B) {
			h := newFleetHarness(b, n)
			lanes := make([]*fwdLane, fwdLanes)
			owned := make(map[uint32]bool)
			for i := range lanes {
				lane, owner := h.newLane(b, uint32(i))
				lanes[i] = lane
				owned[owner] = true
			}
			if len(owned) != n {
				b.Fatalf("lanes land on %d of %d fleet members", len(owned), n)
			}
			var wg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			for i, l := range lanes {
				// Split b.N across the closed-loop lanes; GOMAXPROCS may be 1
				// here, so RunParallel would collapse to a single lane and
				// starve all but one member.
				ops := b.N / len(lanes)
				if i < b.N%len(lanes) {
					ops++
				}
				if ops == 0 {
					continue
				}
				wg.Add(1)
				go func(l *fwdLane, ops int) {
					defer wg.Done()
					for j := 0; j < ops; j++ {
						l.roundTrip(b)
					}
				}(l, ops)
			}
			wg.Wait()
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)/s, "fwd-ops/s")
			}
		})
	}
}

// BenchmarkAttrCacheHitParallel measures the sharded attribute-cache hit
// path under concurrent readers.
func BenchmarkAttrCacheHitParallel(b *testing.B) {
	e, c, fh := cacheHitEnsemble(b)
	defer e.Close()
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if ok, _ := e.Proxy.CachedAttr(fh); !ok {
				b.Fatal("attr cache miss")
			}
		}
	})
}

// BenchmarkNameCacheHitParallel measures the sharded name-cache hit path
// under concurrent readers.
func BenchmarkNameCacheHitParallel(b *testing.B) {
	e, c, _ := cacheHitEnsemble(b)
	defer e.Close()
	defer c.Close()
	root := c.Root()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := e.Proxy.CachedName(root, "hot"); !ok {
				b.Fatal("name cache miss")
			}
		}
	})
}

// cacheHitEnsemble stands up an ensemble with one file whose attributes
// and name binding are resident in the µproxy caches.
func cacheHitEnsemble(b *testing.B) (*ensemble.Ensemble, *client.Client, fhandle.Handle) {
	b.Helper()
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: 2, DirServers: 2, SmallFileServers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := e.NewClient()
	if err != nil {
		e.Close()
		b.Fatal(err)
	}
	fh, _, err := c.Create(c.Root(), "hot", 0o644, true)
	if err != nil {
		e.Close()
		b.Fatal(err)
	}
	if _, err := c.Write(fh, 0, []byte("x"), false); err != nil {
		e.Close()
		b.Fatal(err)
	}
	return e, c, fh
}

// BenchmarkLiveUntarThroughput measures end-to-end live-stack throughput
// for the name-intensive workload (ops/sec through the full µproxy and
// directory-server path).
func BenchmarkLiveUntarThroughput(b *testing.B) {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: 2, DirServers: 2, SmallFileServers: 1,
		Coordinator: true, NameKind: route.MkdirSwitching, MkdirP: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	ops := 0
	for i := 0; i < b.N; i++ {
		st, err := workload.Untar(c, c.Root(), workload.UntarConfig{
			Entries: 200, Prefix: fmt.Sprintf("bench%d", i),
		})
		if err != nil {
			b.Fatal(err)
		}
		ops += st.NFSOps
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "nfs-ops/s")
}

// ----------------------------------------------------- windowed bulk I/O

// newBulkArray builds an all-striped storage array — no small-file
// servers, so every byte takes the striped READ/WRITE path — over a
// fabric with per-datagram latency. With wire latency rather than host
// CPU as the bottleneck (the regime a real network presents), the
// serial client pays a full round trip per chunk while the windowed
// client overlaps a window's worth; the gap between the two is the
// pipelining win the bulk-I/O gate holds.
func newBulkArray(b *testing.B, nodes int) *ensemble.Ensemble {
	b.Helper()
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: nodes, DirServers: 1, SmallFileServers: 0,
		Coordinator: true, NameKind: route.MkdirSwitching,
		Net: netsim.Config{Latency: 200 * time.Microsecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	return e
}

func bulkClient(b *testing.B, e *ensemble.Ensemble, serial bool) *client.Client {
	b.Helper()
	var (
		c   *client.Client
		err error
	)
	if serial {
		c, err = e.NewSerialClient()
	} else {
		c, err = e.NewClient()
	}
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// bulkBenchBytes is the per-iteration transfer; 64KB application I/O
// matches the dd workload (and the stripe-unit multiple), so serial and
// windowed runs issue identical chunk sequences.
const (
	bulkBenchBytes = 2 << 20
	bulkBenchIO    = 64 << 10
)

func reportBulkMBps(b *testing.B) {
	b.ReportMetric(float64(b.N)*bulkBenchBytes/1e6/b.Elapsed().Seconds(), "MB/s")
}

func benchBulkWrite(b *testing.B, nodes int, serial bool) {
	e := newBulkArray(b, nodes)
	c := bulkClient(b, e, serial)
	data := make([]byte, bulkBenchBytes)
	for i := range data {
		data[i] = byte(i * 131)
	}
	fh, _, err := c.Create(c.Root(), "bulk", 0o644, false)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(bulkBenchBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < bulkBenchBytes; off += bulkBenchIO {
			if _, err := c.Write(fh, uint64(off), data[off:off+bulkBenchIO], false); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Commit(fh); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportBulkMBps(b)
}

func benchBulkRead(b *testing.B, nodes int, serial bool) {
	e := newBulkArray(b, nodes)
	c := bulkClient(b, e, serial)
	data := make([]byte, bulkBenchBytes)
	for i := range data {
		data[i] = byte(i * 131)
	}
	fh, _, err := c.Create(c.Root(), "bulk", 0o644, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.WriteFile(fh, data); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, bulkBenchIO)
	b.SetBytes(bulkBenchBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < bulkBenchBytes; off += bulkBenchIO {
			n, _, err := c.Read(fh, uint64(off), buf)
			if err != nil || n != bulkBenchIO {
				b.Fatalf("read at %d: n=%d, %v", off, n, err)
			}
		}
	}
	b.StopTimer()
	reportBulkMBps(b)
}

// BenchmarkBulkRead measures dd-style sequential read bandwidth over
// arrays of 1/2/4/8 storage nodes through the windowed client (window =
// stripe width × per-node queue depth), plus the serial (window=1)
// baseline on the 4-node array. The windowed nodes=N entries gate via
// BENCH_bulkio.json; the serial run is the recorded baseline the ≥2×
// speedup claim is measured against.
func BenchmarkBulkRead(b *testing.B) {
	b.Run("serial/nodes=4", func(b *testing.B) { benchBulkRead(b, 4, true) })
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) { benchBulkRead(b, n, false) })
	}
}

// BenchmarkBulkWrite is the write-side twin: unstable 64KB writes
// coalesced and fanned out by the write-behind engine, one COMMIT
// barrier per 2MB transfer.
func BenchmarkBulkWrite(b *testing.B) {
	b.Run("serial/nodes=4", func(b *testing.B) { benchBulkWrite(b, 4, true) })
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) { benchBulkWrite(b, n, false) })
	}
}

// ------------------------------------------------ replica read scaling
//
// BenchmarkReplicaRead measures aggregate read throughput as one replica
// group grows from k=1 to k=3 members. Raw storage reads are too cheap
// to expose scaling on one core, so every storage node is paced
// (Config.StorageServiceTime) at a fixed per-node rate — the
// saturated-server regime Harmonia-style read spreading exists for. The
// file is written and committed before the timer starts, so the object
// is clean and the µproxy's dirty set lets every read spread across the
// group by power-of-two-choices; throughput should then track k times
// the single-node rate. Gated by BENCH_replica.json (ratio rules
// measured within one run, so no machine tolerance is needed).

const (
	// replicaServiceTime paces each storage node: one node saturates at
	// 1/replicaServiceTime ≈ 6.7k reads/s, so k clean replicas deliver
	// ~k× that in aggregate.
	replicaServiceTime = 150 * time.Microsecond
	// replicaReadLanes closed-loop readers keep every member busy
	// without flooding the paced queues.
	replicaReadLanes = 8
	// One stripe unit per op: each read is exactly one storage READ RPC.
	replicaReadIO    = 32 << 10
	replicaFileBytes = 1 << 20
)

// newReplicaArray builds a k-member single-group replicated array with
// paced nodes. All-striped (no small-file servers), so every read takes
// the spread-capable bulk path.
func newReplicaArray(b *testing.B, k int) *ensemble.Ensemble {
	b.Helper()
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: k, Replication: k,
		DirServers: 1, SmallFileServers: 0,
		Coordinator: true, NameKind: route.MkdirSwitching,
		StorageServiceTime: replicaServiceTime,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	return e
}

func benchReplicaRead(b *testing.B, k int) {
	e := newReplicaArray(b, k)
	w := bulkClient(b, e, false)
	data := make([]byte, replicaFileBytes)
	for i := range data {
		data[i] = byte(i * 131)
	}
	fh, _, err := w.Create(w.Root(), "rep", 0o644, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.WriteFile(fh, data); err != nil {
		b.Fatal(err)
	}
	// Serial clients (window=1): one paced storage READ per op, no
	// readahead inflating the offered load.
	lanes := make([]*client.Client, replicaReadLanes)
	for i := range lanes {
		lanes[i] = bulkClient(b, e, true)
	}
	const nchunks = replicaFileBytes / replicaReadIO
	var wg sync.WaitGroup
	b.SetBytes(replicaReadIO)
	b.ReportAllocs()
	b.ResetTimer()
	for i, c := range lanes {
		// Split b.N across the closed-loop lanes (GOMAXPROCS may be 1;
		// RunParallel would collapse to one lane).
		ops := b.N / len(lanes)
		if i < b.N%len(lanes) {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(c *client.Client, lane, ops int) {
			defer wg.Done()
			buf := make([]byte, replicaReadIO)
			for j := 0; j < ops; j++ {
				off := uint64((lane*nchunks/replicaReadLanes + j) % nchunks * replicaReadIO)
				n, _, err := c.Read(fh, off, buf)
				if err != nil || n != replicaReadIO {
					b.Errorf("read at %d: n=%d, %v", off, n, err)
					return
				}
			}
		}(c, i, ops)
	}
	wg.Wait()
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "reads/s")
	}
}

// BenchmarkReplicaRead drives the closed-loop read lanes against
// replica groups of 1/2/3 paced members. ns/op should track
// replicaServiceTime/k; BENCH_replica.json gates the k=2/k=3 speedups
// over k=1 at ≥1.6×/2.2×.
func BenchmarkReplicaRead(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) { benchReplicaRead(b, k) })
	}
}

// --------------------------------------------------- real-wire serving
//
// BenchmarkWireRead/BenchmarkWireWrite measure the full TCP serving
// path: a client on a real loopback socket, record-marked ONC-RPC
// through the wire gateway, the interposed µproxy, and a 4-node striped
// array. At a 128 KiB stripe unit every bulk chunk rides a single
// record bigger than the old 96 KiB datagram cap — the property
// BENCH_wire.json gates alongside throughput.

const (
	wireStripe    = 128 << 10
	wireFileBytes = 2 << 20
)

// newWireBench builds an all-striped TCP-served ensemble and a client
// dialed through its gateway.
func newWireBench(b *testing.B) (*ensemble.Ensemble, *client.Client) {
	b.Helper()
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: 4, DirServers: 1, SmallFileServers: 0,
		Coordinator: true, StripeUnit: wireStripe,
		TCPListen: "127.0.0.1:0",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	conn, err := wire.Dial(e.Gateways[0].Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	c := client.NewWithConn(conn, client.Config{Server: e.Virtual, StripeUnit: wireStripe})
	b.Cleanup(c.Close)
	if err := c.Mount(); err != nil {
		b.Fatal(err)
	}
	return e, c
}

// assertWireRecords fails the benchmark if no record crossed the old
// datagram cap: the stream path must not be silently datagram-bound.
func assertWireRecords(b *testing.B, e *ensemble.Ensemble) {
	b.Helper()
	const oldCap = 96 * 1024
	st := e.Gateways[0].Stats()
	if st.MaxRxRecord <= oldCap && st.MaxTxRecord <= oldCap {
		b.Fatalf("no record exceeded %d bytes (rx max %d, tx max %d)",
			oldCap, st.MaxRxRecord, st.MaxTxRecord)
	}
}

func BenchmarkWireRead(b *testing.B) {
	e, c := newWireBench(b)
	data := make([]byte, wireFileBytes)
	for i := range data {
		data[i] = byte(i * 37)
	}
	fh, _, err := c.Create(c.Root(), "wire-read", 0o644, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.WriteFile(fh, data); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, wireStripe)
	b.SetBytes(wireFileBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < wireFileBytes; off += wireStripe {
			n, _, err := c.Read(fh, uint64(off), buf)
			if err != nil || n != wireStripe {
				b.Fatalf("read at %d: n=%d, %v", off, n, err)
			}
		}
	}
	b.StopTimer()
	assertWireRecords(b, e)
}

func BenchmarkWireWrite(b *testing.B) {
	e, c := newWireBench(b)
	data := make([]byte, wireFileBytes)
	for i := range data {
		data[i] = byte(i * 41)
	}
	fh, _, err := c.Create(c.Root(), "wire-write", 0o644, false)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(wireFileBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WriteFile(fh, data); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	assertWireRecords(b, e)
}

// ------------------------------------------------ rebalance throughput
//
// BenchmarkRebalanceThroughput measures online migration bandwidth:
// grow a four-node array to six while a SPECsfs-like foreground mix
// runs against it, and report the driver's copy traffic as MB/s (only
// bytes the migration itself moved count — double-written foreground
// traffic lands via the I/O policy, not the driver). Each op is a full
// ensemble lifecycle, so run it with a small -benchtime count. Gated by
// BENCH_rebalance.json.
func BenchmarkRebalanceThroughput(b *testing.B) {
	var movedMB, secs float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := ensemble.New(ensemble.Config{
			StorageNodes: 4, DirServers: 2, SmallFileServers: 1,
			Coordinator: true, NameKind: route.MkdirSwitching,
			LogicalSites: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		c, err := e.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		// Bulk ballast is what the driver actually has to move.
		if _, err := workload.DD(c, c.Root(), workload.DDConfig{
			Name: "rebal-ballast", Bytes: 8 << 20, Write: true,
		}); err != nil {
			b.Fatal(err)
		}
		loadDone := make(chan error, 1)
		go func() {
			_, err := workload.Sfs(c, c.Root(), workload.SfsConfig{
				Files: 40, Ops: 600, Prefix: "rebal-load", Seed: 3,
			})
			loadDone <- err
		}()
		b.StartTimer()
		start := time.Now()
		if err := e.Grow(2); err != nil {
			b.Fatal(err)
		}
		secs += time.Since(start).Seconds()
		b.StopTimer()
		movedMB += float64(e.RebalanceStatus().BytesMoved) / (1 << 20)
		if err := <-loadDone; err != nil {
			b.Fatalf("foreground mix failed during grow: %v", err)
		}
		c.Close()
		e.Close()
	}
	if secs > 0 {
		b.ReportMetric(movedMB/secs, "MB/s")
	}
}
