GO ?= go

.PHONY: check vet build test race bench bench-proxy fuzz

# The full gate: everything a change must pass before it lands.
check: vet build race bench-proxy

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short run of every benchmark, as a smoke test.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The contended data-path benchmarks (compare against BENCH_proxy.json).
bench-proxy:
	$(GO) test -run xxx -bench 'ProxyForward|CacheHit' -benchmem -benchtime 1s -cpu 1,4 .

# Fixed-budget run of every fuzz target (wire parsers and the WAL scanner).
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/wal/ -run '^$$' -fuzz FuzzScan -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oncrpc/ -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/nfsproto/ -run '^$$' -fuzz FuzzParseCall -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netsim/ -run '^$$' -fuzz FuzzParseDatagram -fuzztime $(FUZZTIME)
