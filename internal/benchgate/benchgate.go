// Package benchgate compares `go test -bench` output against the
// checked-in baseline (BENCH_proxy.json) and fails on regression: it is
// the CI gate that keeps the µproxy data path within its performance
// budget. Allocation counts are held exactly — the steady-state forward
// path earned 0 allocs/op and may not lose it — while ns/op gets a
// tolerance factor for machine-to-machine noise.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark line's metrics.
type Sample struct {
	NsOp     float64
	BOp      float64
	AllocsOp float64
}

// Metrics is one baseline entry: per-CPU-count expected numbers.
type Metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// RatioRule gates a scaling property between two benchmarks in the same
// run: Scaled must be at least MinSpeedup times faster (ns/op) than Base
// at the given CPU count. Both sides are measured on the same machine in
// the same invocation, so — unlike the absolute ns/op gates — the ratio
// needs no machine-noise tolerance and holds the speedup itself.
type RatioRule struct {
	Base       string  `json:"base"`
	Scaled     string  `json:"scaled"`
	CPU        string  `json:"cpu"`
	MinSpeedup float64 `json:"min_speedup"`
}

// Baseline is the BENCH_proxy.json schema; only "current" and "ratios"
// gate.
type Baseline struct {
	Current map[string]map[string]Metrics `json:"current"`
	Ratios  []RatioRule                   `json:"ratios"`
}

// ParseBaseline decodes a BENCH_proxy.json.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchgate: baseline: %w", err)
	}
	if len(b.Current) == 0 {
		return nil, fmt.Errorf("benchgate: baseline has no \"current\" section")
	}
	return &b, nil
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([\d.]+) ns/op(?:\s+(.*))?$`)

// ParseBench reads `go test -bench -benchmem` output and groups samples
// by benchmark name and CPU count ("cpu1", "cpu4", ... — go appends a
// -N suffix for GOMAXPROCS=N>1). Repeated runs (-count=N) accumulate.
// Sub-benchmark names keep their slash-separated path.
func ParseBench(r io.Reader) (map[string]map[string][]Sample, error) {
	out := make(map[string]map[string][]Sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, cpu := m[1], "cpu1"
		if m[2] != "" {
			cpu = "cpu" + m[2]
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		s := Sample{NsOp: ns}
		for _, field := range strings.Split(m[4], "\t") {
			field = strings.TrimSpace(field)
			switch {
			case strings.HasSuffix(field, " B/op"):
				s.BOp, _ = strconv.ParseFloat(strings.TrimSuffix(field, " B/op"), 64)
			case strings.HasSuffix(field, " allocs/op"):
				s.AllocsOp, _ = strconv.ParseFloat(strings.TrimSuffix(field, " allocs/op"), 64)
			}
		}
		if out[name] == nil {
			out[name] = make(map[string][]Sample)
		}
		out[name][cpu] = append(out[name][cpu], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines in input")
	}
	return out, nil
}

// best reduces repeated runs to their least-noisy representative: the
// minimum of each metric. Benchmarks only get slower under load, so the
// minimum across -count runs is the machine's honest capability; for
// allocations the minimum discards warm-up artifacts (pool fills) that
// only the first run pays.
func best(samples []Sample) Sample {
	b := samples[0]
	for _, s := range samples[1:] {
		if s.NsOp < b.NsOp {
			b.NsOp = s.NsOp
		}
		if s.BOp < b.BOp {
			b.BOp = s.BOp
		}
		if s.AllocsOp < b.AllocsOp {
			b.AllocsOp = s.AllocsOp
		}
	}
	return b
}

// Config tunes the gate.
type Config struct {
	// Tolerance multiplies the baseline ns/op: measured > baseline×Tolerance
	// fails. CI machines differ from the baseline machine, so this is
	// deliberately loose; allocation regressions are what the gate holds
	// exactly.
	Tolerance float64
	// BOpSlack is the absolute B/op headroom on top of the baseline.
	// Parallel benchmarks amortize per-lane setup over the measured
	// iterations, so short runs report spurious tens of B/op at
	// 0 allocs/op; the slack absorbs that while still catching
	// buffer-copy regressions (hundreds of B/op). Per-op allocation
	// regressions always surface in allocs/op, which is gated exactly.
	BOpSlack float64
}

// Check compares parsed results against the baseline and writes a
// verdict table to w. It returns an error listing every regression; nil
// means every gated benchmark is within budget.
func Check(w io.Writer, base *Baseline, results map[string]map[string][]Sample, cfg Config) error {
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 2.5
	}
	if cfg.BOpSlack <= 0 {
		cfg.BOpSlack = 128
	}
	names := make([]string, 0, len(base.Current))
	for name := range base.Current {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Fprintf(w, "%-34s %-5s %12s %12s %10s %8s  verdict\n",
		"benchmark", "cpu", "ns/op", "base ns/op", "B/op", "allocs")
	for _, name := range names {
		cpus := make([]string, 0, len(base.Current[name]))
		for cpu := range base.Current[name] {
			cpus = append(cpus, cpu)
		}
		sort.Strings(cpus)
		for _, cpu := range cpus {
			want := base.Current[name][cpu]
			samples := results[name][cpu]
			if len(samples) == 0 {
				failures = append(failures, fmt.Sprintf("%s/%s: not measured", name, cpu))
				fmt.Fprintf(w, "%-34s %-5s %12s %12.0f %10s %8s  MISSING\n",
					name, cpu, "-", want.NsOp, "-", "-")
				continue
			}
			got := best(samples)
			var bad []string
			if got.AllocsOp > want.AllocsOp {
				bad = append(bad, fmt.Sprintf("allocs/op %.0f > %.0f", got.AllocsOp, want.AllocsOp))
			}
			if got.NsOp > want.NsOp*cfg.Tolerance {
				bad = append(bad, fmt.Sprintf("ns/op %.0f > %.0f×%.1f", got.NsOp, want.NsOp, cfg.Tolerance))
			}
			if got.BOp > want.BOp*cfg.Tolerance+cfg.BOpSlack {
				bad = append(bad, fmt.Sprintf("B/op %.0f > %.0f×%.1f+%.0f", got.BOp, want.BOp, cfg.Tolerance, cfg.BOpSlack))
			}
			verdict := "ok"
			if len(bad) > 0 {
				verdict = "FAIL: " + strings.Join(bad, "; ")
				failures = append(failures, fmt.Sprintf("%s/%s: %s", name, cpu, strings.Join(bad, "; ")))
			}
			fmt.Fprintf(w, "%-34s %-5s %12.1f %12.1f %10.0f %8.0f  %s\n",
				name, cpu, got.NsOp, want.NsOp, got.BOp, got.AllocsOp, verdict)
		}
	}
	if len(base.Ratios) > 0 {
		fmt.Fprintf(w, "\n%-60s %9s %9s  verdict\n", "scaling ratio", "speedup", "min")
		for _, r := range base.Ratios {
			label := fmt.Sprintf("%s / %s @%s", r.Scaled, r.Base, r.CPU)
			bs, ss := results[r.Base][r.CPU], results[r.Scaled][r.CPU]
			if len(bs) == 0 || len(ss) == 0 {
				failures = append(failures, fmt.Sprintf("ratio %s: not measured", label))
				fmt.Fprintf(w, "%-60s %9s %9.2f  MISSING\n", label, "-", r.MinSpeedup)
				continue
			}
			speedup := best(bs).NsOp / best(ss).NsOp
			verdict := "ok"
			if speedup < r.MinSpeedup {
				verdict = fmt.Sprintf("FAIL: speedup %.2f < %.2f", speedup, r.MinSpeedup)
				failures = append(failures, fmt.Sprintf("ratio %s: %s", label, verdict))
			}
			fmt.Fprintf(w, "%-60s %9.2f %9.2f  %s\n", label, speedup, r.MinSpeedup, verdict)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchgate: %d regression(s):\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}
