package dirsrv

import (
	"fmt"
	"testing"

	"strings"

	"slice/internal/attr"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/oncrpc"
	"slice/internal/route"
	"slice/internal/wal"
	"slice/internal/xdr"
)

// harness runs N directory servers and routes requests to them with the
// same policy code the µproxy uses, playing the µproxy's role for tests.
type harness struct {
	t       *testing.T
	net     *netsim.Network
	servers []*Server
	stores  []*wal.MemStore
	table   *route.Table
	policy  *route.NamePolicy
	clients map[netsim.Addr]*oncrpc.Client
	root    fhandle.Handle
}

func newHarness(t *testing.T, n int, kind route.NameKind, p float64) *harness {
	t.Helper()
	h := &harness{
		t:       t,
		net:     netsim.New(netsim.Config{}),
		clients: make(map[netsim.Addr]*oncrpc.Client),
	}
	var addrs []netsim.Addr
	for i := 0; i < n; i++ {
		addrs = append(addrs, netsim.Addr{Host: uint32(10 + i), Port: 2049})
	}
	h.table = route.NewTable(n, addrs)
	h.policy = route.NewNamePolicy(kind, p, h.table)
	for i := 0; i < n; i++ {
		port, err := h.net.Bind(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		store := wal.NewMemStore()
		log, err := wal.Open(store)
		if err != nil {
			t.Fatal(err)
		}
		h.servers = append(h.servers, New(port, Config{
			Site: uint32(i), Volume: 1, Kind: kind, Table: h.table,
			Log: log, Net: h.net, Host: addrs[i].Host,
		}))
		h.stores = append(h.stores, store)
	}
	root, err := h.servers[0].CreateRoot()
	if err != nil {
		t.Fatal(err)
	}
	h.root = root
	t.Cleanup(func() {
		for _, s := range h.servers {
			s.Close()
		}
		for _, c := range h.clients {
			c.Close()
		}
	})
	return h
}

func (h *harness) client(a netsim.Addr) *oncrpc.Client {
	if c, ok := h.clients[a]; ok {
		return c
	}
	port, err := h.net.BindAny(200)
	if err != nil {
		h.t.Fatal(err)
	}
	c := oncrpc.NewClient(port, a, oncrpc.ClientConfig{})
	h.clients[a] = c
	return c
}

// call routes one NFS call by policy (as the µproxy would) and decodes.
func (h *harness) call(proc nfsproto.Proc, args nfsproto.Msg, res nfsproto.Msg) error {
	e := xdr.NewEncoder(256)
	args.Encode(e)
	info, err := nfsproto.ParseCall(proc, e.Bytes())
	if err != nil {
		return err
	}
	addr, err := h.policy.AddrFor(&info)
	if err != nil {
		return err
	}
	body, err := h.client(addr).Call(nfsproto.Program, nfsproto.Version, uint32(proc), args.Encode)
	if err != nil {
		return err
	}
	return res.Decode(xdr.NewDecoder(body))
}

func (h *harness) mkdir(dir fhandle.Handle, name string) fhandle.Handle {
	h.t.Helper()
	var res nfsproto.CreateRes
	if err := h.call(nfsproto.ProcMkdir, &nfsproto.CreateArgs{Dir: dir, Name: name}, &res); err != nil {
		h.t.Fatalf("mkdir %s: %v", name, err)
	}
	if res.Status != nfsproto.OK {
		h.t.Fatalf("mkdir %s: %v", name, res.Status)
	}
	return res.FH
}

func (h *harness) create(dir fhandle.Handle, name string) fhandle.Handle {
	h.t.Helper()
	var res nfsproto.CreateRes
	if err := h.call(nfsproto.ProcCreate, &nfsproto.CreateArgs{Dir: dir, Name: name, Exclusive: true}, &res); err != nil {
		h.t.Fatalf("create %s: %v", name, err)
	}
	if res.Status != nfsproto.OK {
		h.t.Fatalf("create %s: %v", name, res.Status)
	}
	return res.FH
}

func (h *harness) lookup(dir fhandle.Handle, name string) (nfsproto.LookupRes, error) {
	var res nfsproto.LookupRes
	err := h.call(nfsproto.ProcLookup, &nfsproto.LookupArgs{Dir: dir, Name: name}, &res)
	return res, err
}

func (h *harness) getattr(fh fhandle.Handle) (nfsproto.GetAttrRes, error) {
	var res nfsproto.GetAttrRes
	err := h.call(nfsproto.ProcGetAttr, &nfsproto.GetAttrArgs{FH: fh}, &res)
	return res, err
}

func TestCreateLookupSingleSite(t *testing.T) {
	h := newHarness(t, 1, route.MkdirSwitching, 0)
	fh := h.create(h.root, "file")
	res, err := h.lookup(h.root, "file")
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("lookup: %v %v", res.Status, err)
	}
	if res.FH != fh {
		t.Fatal("lookup returned a different handle")
	}
	if !res.Attr.Present || res.Attr.Attr.Type != attr.TypeReg {
		t.Fatalf("attrs: %+v", res.Attr)
	}
	if !res.DirAttr.Present {
		t.Fatal("dir attrs absent")
	}
}

func TestExclusiveCreateConflict(t *testing.T) {
	h := newHarness(t, 2, route.NameHashing, 0)
	h.create(h.root, "dup")
	var res nfsproto.CreateRes
	if err := h.call(nfsproto.ProcCreate, &nfsproto.CreateArgs{Dir: h.root, Name: "dup", Exclusive: true}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != nfsproto.ErrExist {
		t.Fatalf("second exclusive create: %v, want EEXIST", res.Status)
	}
	// Unchecked create returns the existing file.
	if err := h.call(nfsproto.ProcCreate, &nfsproto.CreateArgs{Dir: h.root, Name: "dup"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != nfsproto.OK {
		t.Fatalf("unchecked create of existing: %v", res.Status)
	}
}

// TestOrphanMkdir exercises the two-site redirected-mkdir path: with P=1
// every mkdir is redirected, so child cells live away from the parent and
// lookups must follow cross-site references.
func TestOrphanMkdir(t *testing.T) {
	h := newHarness(t, 4, route.MkdirSwitching, 1.0)
	sub := h.mkdir(h.root, "away")
	if sub.Site == h.root.Site && h.table.NumLogical() > 1 {
		// With P=1 the target is hash-selected; it can land home, but
		// across several names at least one must move. Try more names.
		moved := false
		for i := 0; i < 8; i++ {
			d := h.mkdir(h.root, fmt.Sprintf("away%d", i))
			if d.Site != h.root.Site {
				moved = true
				break
			}
		}
		if !moved {
			t.Fatal("P=1 never redirected a mkdir off the parent site")
		}
	}
	// The entry lives at the parent's site; the cell at the child's.
	res, err := h.lookup(h.root, "away")
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("lookup orphan: %v %v", res.Status, err)
	}
	if !res.Attr.Present || res.Attr.Attr.Type != attr.TypeDir {
		t.Fatal("orphan attrs not fetched across sites")
	}
	// Files created inside the orphan live at the orphan's site.
	f := h.create(sub, "inner")
	if f.Site != sub.Site {
		t.Fatalf("inner file minted at site %d, want orphan's site %d", f.Site, sub.Site)
	}
	ga, err := h.getattr(f)
	if err != nil || ga.Status != nfsproto.OK {
		t.Fatalf("getattr inner: %v %v", ga.Status, err)
	}
}

// TestParentNlinkTracksSubdirs: mkdir/rmdir adjust the parent link count
// even when the child is placed on another site.
func TestParentNlinkTracksSubdirs(t *testing.T) {
	h := newHarness(t, 3, route.MkdirSwitching, 1.0)
	base, _ := h.getattr(h.root)
	if base.Attr.Nlink != 2 {
		t.Fatalf("fresh root nlink %d", base.Attr.Nlink)
	}
	h.mkdir(h.root, "d1")
	h.mkdir(h.root, "d2")
	ga, _ := h.getattr(h.root)
	if ga.Attr.Nlink != 4 {
		t.Fatalf("root nlink after two mkdirs = %d, want 4", ga.Attr.Nlink)
	}
	var rm nfsproto.RemoveRes
	if err := h.call(nfsproto.ProcRmdir, &nfsproto.RemoveArgs{Dir: h.root, Name: "d1"}, &rm); err != nil || rm.Status != nfsproto.OK {
		t.Fatalf("rmdir: %v %v", rm.Status, err)
	}
	ga, _ = h.getattr(h.root)
	if ga.Attr.Nlink != 3 {
		t.Fatalf("root nlink after rmdir = %d, want 3", ga.Attr.Nlink)
	}
}

func TestRmdirNonEmptyOrphan(t *testing.T) {
	h := newHarness(t, 4, route.MkdirSwitching, 1.0)
	sub := h.mkdir(h.root, "busy")
	h.create(sub, "occupant")
	var rm nfsproto.RemoveRes
	if err := h.call(nfsproto.ProcRmdir, &nfsproto.RemoveArgs{Dir: h.root, Name: "busy"}, &rm); err != nil {
		t.Fatal(err)
	}
	if rm.Status != nfsproto.ErrNotEmpty {
		t.Fatalf("rmdir of occupied orphan: %v, want ENOTEMPTY", rm.Status)
	}
	// Lookup still works afterwards (nothing was half-removed).
	if res, err := h.lookup(h.root, "busy"); err != nil || res.Status != nfsproto.OK {
		t.Fatalf("dir damaged by failed rmdir: %v %v", res.Status, err)
	}
}

// TestNameHashingScattersEntries: with several sites, a directory's
// entries spread across servers, and readdir reassembles them all.
func TestNameHashingScattersEntries(t *testing.T) {
	const sites = 4
	h := newHarness(t, sites, route.NameHashing, 0)
	const files = 64
	for i := 0; i < files; i++ {
		h.create(h.root, fmt.Sprintf("f%03d", i))
	}
	// Entries must exist on more than one server.
	populated := 0
	for _, s := range h.servers {
		if len(s.localListDir(h.root.Ident())) > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("entries on %d sites, want scattered", populated)
	}
	// readdir spans sites (routed to the root's home site).
	var rd nfsproto.ReadDirRes
	if err := h.call(nfsproto.ProcReadDir, &nfsproto.ReadDirArgs{Dir: h.root, Count: 1 << 20}, &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Status != nfsproto.OK || len(rd.Entries) != files || !rd.EOF {
		t.Fatalf("readdir: %v, %d entries, eof=%v", rd.Status, len(rd.Entries), rd.EOF)
	}
	// Sorted merge.
	for i := 1; i < len(rd.Entries); i++ {
		if rd.Entries[i-1].Name >= rd.Entries[i].Name {
			t.Fatal("readdir not sorted across sites")
		}
	}
}

func TestNameHashingRemoveAndRmdir(t *testing.T) {
	h := newHarness(t, 4, route.NameHashing, 0)
	d := h.mkdir(h.root, "dir")
	h.create(d, "f1")
	var rm nfsproto.RemoveRes
	// Non-empty rmdir fails after a global count.
	if err := h.call(nfsproto.ProcRmdir, &nfsproto.RemoveArgs{Dir: h.root, Name: "dir"}, &rm); err != nil {
		t.Fatal(err)
	}
	if rm.Status != nfsproto.ErrNotEmpty {
		t.Fatalf("rmdir: %v", rm.Status)
	}
	if err := h.call(nfsproto.ProcRemove, &nfsproto.RemoveArgs{Dir: d, Name: "f1"}, &rm); err != nil || rm.Status != nfsproto.OK {
		t.Fatalf("remove: %v %v", rm.Status, err)
	}
	if err := h.call(nfsproto.ProcRmdir, &nfsproto.RemoveArgs{Dir: h.root, Name: "dir"}, &rm); err != nil || rm.Status != nfsproto.OK {
		t.Fatalf("rmdir empty: %v %v", rm.Status, err)
	}
}

func TestRenameAcrossSites(t *testing.T) {
	h := newHarness(t, 4, route.NameHashing, 0)
	da := h.mkdir(h.root, "da")
	db := h.mkdir(h.root, "db")
	child := h.create(da, "move-me")
	var rn nfsproto.RenameRes
	err := h.call(nfsproto.ProcRename, &nfsproto.RenameArgs{
		FromDir: da, FromName: "move-me", ToDir: db, ToName: "moved",
	}, &rn)
	if err != nil || rn.Status != nfsproto.OK {
		t.Fatalf("rename: %v %v", rn.Status, err)
	}
	if res, _ := h.lookup(da, "move-me"); res.Status != nfsproto.ErrNoEnt {
		t.Fatalf("source name survives rename: %v", res.Status)
	}
	res, err := h.lookup(db, "moved")
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("target lookup: %v %v", res.Status, err)
	}
	if res.FH.Ident() != child.Ident() {
		t.Fatal("rename changed identity")
	}
}

func TestRenameOntoExistingRejected(t *testing.T) {
	h := newHarness(t, 2, route.NameHashing, 0)
	h.create(h.root, "a")
	h.create(h.root, "b")
	var rn nfsproto.RenameRes
	if err := h.call(nfsproto.ProcRename, &nfsproto.RenameArgs{
		FromDir: h.root, FromName: "a", ToDir: h.root, ToName: "b",
	}, &rn); err != nil {
		t.Fatal(err)
	}
	if rn.Status != nfsproto.ErrExist {
		t.Fatalf("rename onto existing: %v, want EEXIST (documented deviation)", rn.Status)
	}
}

func TestLinkAcrossSites(t *testing.T) {
	h := newHarness(t, 4, route.NameHashing, 0)
	f := h.create(h.root, "orig")
	var lr nfsproto.LinkRes
	if err := h.call(nfsproto.ProcLink, &nfsproto.LinkArgs{FH: f, Dir: h.root, Name: "alias"}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Status != nfsproto.OK {
		t.Fatalf("link: %v", lr.Status)
	}
	ga, _ := h.getattr(f)
	if ga.Attr.Nlink != 2 {
		t.Fatalf("nlink = %d after link", ga.Attr.Nlink)
	}
	// Removing the original keeps the alias resolvable.
	var rm nfsproto.RemoveRes
	if err := h.call(nfsproto.ProcRemove, &nfsproto.RemoveArgs{Dir: h.root, Name: "orig"}, &rm); err != nil || rm.Status != nfsproto.OK {
		t.Fatalf("remove: %v %v", rm.Status, err)
	}
	res, err := h.lookup(h.root, "alias")
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("alias lookup: %v %v", res.Status, err)
	}
	if !res.Attr.Present || res.Attr.Attr.Nlink != 1 {
		t.Fatalf("alias nlink: %+v", res.Attr)
	}
}

func TestLinkToDirectoryRejected(t *testing.T) {
	h := newHarness(t, 2, route.MkdirSwitching, 0)
	d := h.mkdir(h.root, "dir")
	var lr nfsproto.LinkRes
	if err := h.call(nfsproto.ProcLink, &nfsproto.LinkArgs{FH: d, Dir: h.root, Name: "dirlink"}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Status != nfsproto.ErrIsDir {
		t.Fatalf("link to directory: %v, want EISDIR", lr.Status)
	}
}

func TestSetAttrAndStaleHandles(t *testing.T) {
	h := newHarness(t, 2, route.MkdirSwitching, 0)
	f := h.create(h.root, "f")
	var sr nfsproto.SetAttrRes
	err := h.call(nfsproto.ProcSetAttr, &nfsproto.SetAttrArgs{
		FH: f, Sattr: attr.SetAttr{SetSize: true, Size: 4096, SetMode: true, Mode: 0o600},
	}, &sr)
	if err != nil || sr.Status != nfsproto.OK {
		t.Fatalf("setattr: %v %v", sr.Status, err)
	}
	if sr.Attr.Attr.Size != 4096 || sr.Attr.Attr.Mode != 0o600 {
		t.Fatalf("attrs after setattr: %+v", sr.Attr.Attr)
	}
	// A handle with a wrong generation is stale.
	bad := f
	bad.Gen++
	ga, _ := h.getattr(bad)
	if ga.Status != nfsproto.ErrStale {
		t.Fatalf("stale-gen getattr: %v", ga.Status)
	}
}

func TestMisroutedRequestDetected(t *testing.T) {
	h := newHarness(t, 2, route.MkdirSwitching, 0)
	// Send a create for a site-0 parent directly to site 1, simulating a
	// stale routing table in the µproxy.
	wrong := h.servers[1].Addr()
	args := nfsproto.CreateArgs{Dir: h.root, Name: "lost", Exclusive: true}
	body, err := h.client(wrong).Call(nfsproto.Program, nfsproto.Version,
		uint32(nfsproto.ProcCreate), args.Encode)
	if err != nil {
		t.Fatal(err)
	}
	var res nfsproto.CreateRes
	if err := res.Decode(xdr.NewDecoder(body)); err != nil {
		t.Fatal(err)
	}
	if res.Status != nfsproto.ErrMisrouted {
		t.Fatalf("misrouted create: %v, want EMISROUTED", res.Status)
	}
}

// TestRecoveryFromSnapshotAndLog is the failover path: rebuild a dir
// server from its checkpoint plus the durable log suffix.
func TestRecoveryFromSnapshotAndLog(t *testing.T) {
	h := newHarness(t, 1, route.MkdirSwitching, 0)
	s := h.servers[0]
	d := h.mkdir(h.root, "pre-snapshot")
	snap := s.Snapshot()

	// More activity after the checkpoint, journaled only.
	h.create(d, "post-snapshot-file")

	// Failover: fresh server from snapshot + crashed (durable) log.
	crashedLog, err := wal.Open(h.stores[0].CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	net2 := netsim.New(netsim.Config{})
	port, _ := net2.Bind(netsim.Addr{Host: 10, Port: 2049})
	freshStore := wal.NewMemStore()
	freshLog, _ := wal.Open(freshStore)
	s2 := New(port, Config{
		Site: 0, Volume: 1, Kind: route.MkdirSwitching,
		Table: h.table, Log: freshLog, Net: net2, Host: 10,
	})
	defer s2.Close()
	if err := s2.Recover(snap, crashedLog); err != nil {
		t.Fatalf("recover: %v", err)
	}

	// The recovered server resolves both pre- and post-snapshot state.
	s2.SetRoot(h.root)
	st, at := s2.localGetAttrByKey(d.FileID)
	if st != nfsproto.OK || at.Type != attr.TypeDir {
		t.Fatalf("pre-snapshot dir missing after recovery: %v", st)
	}
	if got := s2.localListDir(d.Ident()); len(got) != 1 || got[0].name != "post-snapshot-file" {
		t.Fatalf("post-snapshot entry missing after recovery: %+v", got)
	}
}

func TestRecoveryIdempotentReplay(t *testing.T) {
	h := newHarness(t, 1, route.MkdirSwitching, 0)
	s := h.servers[0]
	h.create(h.root, "a")
	h.mkdir(h.root, "b")
	// Recover from a nil snapshot and the full log — then replay the
	// same log again over the recovered state.
	log, _ := wal.Open(h.stores[0].CrashCopy())
	if err := s.Recover(nil, log); err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(nil, log); err != nil {
		t.Fatal(err)
	}
	ents := s.localListDir(h.root.Ident())
	if len(ents) != 2 {
		t.Fatalf("%d entries after double replay, want 2", len(ents))
	}
}

func TestCountersTrackCrossSite(t *testing.T) {
	h := newHarness(t, 4, route.NameHashing, 0)
	for i := 0; i < 16; i++ {
		h.create(h.root, fmt.Sprintf("x%d", i))
	}
	var cross uint64
	for _, s := range h.servers {
		cross += s.Counters().CrossSite
	}
	if cross == 0 {
		t.Fatal("no cross-site operations counted under name hashing")
	}
}

func TestMountProgram(t *testing.T) {
	h := newHarness(t, 2, route.MkdirSwitching, 0)
	body, err := h.client(h.servers[0].Addr()).Call(MountProgram, MountVersion, MountProcMnt, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := xdr.NewDecoder(body)
	st, _ := d.Uint32()
	if nfsproto.Status(st) != nfsproto.OK {
		t.Fatalf("mount: %v", nfsproto.Status(st))
	}
	fh, err := fhandle.Decode(d)
	if err != nil || fh != h.root {
		t.Fatalf("mount handle %v, %v", fh, err)
	}
}

// TestCheckCleanAfterWorkload: after a busy mixed workload across sites
// and policies, the distributed name space satisfies every invariant.
func TestCheckCleanAfterWorkload(t *testing.T) {
	for _, kind := range []route.NameKind{route.MkdirSwitching, route.NameHashing} {
		t.Run(kind.String(), func(t *testing.T) {
			h := newHarness(t, 4, kind, 0.6)
			// Build, link, rename, remove.
			var dirs []fhandle.Handle
			dirs = append(dirs, h.root)
			for i := 0; i < 10; i++ {
				d := h.mkdir(dirs[i%len(dirs)], fmt.Sprintf("dir%d", i))
				dirs = append(dirs, d)
			}
			var files []struct {
				dir  fhandle.Handle
				name string
				fh   fhandle.Handle
			}
			for i := 0; i < 40; i++ {
				dir := dirs[i%len(dirs)]
				name := fmt.Sprintf("f%d", i)
				fh := h.create(dir, name)
				files = append(files, struct {
					dir  fhandle.Handle
					name string
					fh   fhandle.Handle
				}{dir, name, fh})
			}
			// Hard links across directories.
			for i := 0; i < 10; i++ {
				f := files[i]
				target := dirs[(i+3)%len(dirs)]
				var lr nfsproto.LinkRes
				if err := h.call(nfsproto.ProcLink, &nfsproto.LinkArgs{
					FH: f.fh, Dir: target, Name: fmt.Sprintf("ln%d", i),
				}, &lr); err != nil || lr.Status != nfsproto.OK {
					t.Fatalf("link %d: %v %v", i, lr.Status, err)
				}
			}
			// Renames.
			for i := 10; i < 20; i++ {
				f := files[i]
				target := dirs[(i+5)%len(dirs)]
				var rn nfsproto.RenameRes
				if err := h.call(nfsproto.ProcRename, &nfsproto.RenameArgs{
					FromDir: f.dir, FromName: f.name,
					ToDir: target, ToName: fmt.Sprintf("mv%d", i),
				}, &rn); err != nil || rn.Status != nfsproto.OK {
					t.Fatalf("rename %d: %v %v", i, rn.Status, err)
				}
			}
			// Removes.
			for i := 20; i < 30; i++ {
				f := files[i]
				var rm nfsproto.RemoveRes
				if err := h.call(nfsproto.ProcRemove, &nfsproto.RemoveArgs{
					Dir: f.dir, Name: f.name,
				}, &rm); err != nil || rm.Status != nfsproto.OK {
					t.Fatalf("remove %d: %v %v", i, rm.Status, err)
				}
			}
			if problems := Check(h.servers, h.root); len(problems) != 0 {
				t.Fatalf("integrity violations after workload:\n%s",
					strings.Join(problems, "\n"))
			}
		})
	}
}

// TestCheckDetectsCorruption: the checker actually notices damage.
func TestCheckDetectsCorruption(t *testing.T) {
	h := newHarness(t, 2, route.MkdirSwitching, 0)
	h.create(h.root, "f")
	s := h.servers[0]
	// Damage: delete the attr cell behind the entry.
	s.mu.Lock()
	for id, c := range s.st.attrs {
		if c.at.Type == attr.TypeReg {
			delete(s.st.attrs, id)
			break
		}
	}
	s.mu.Unlock()
	if problems := Check(h.servers, h.root); len(problems) == 0 {
		t.Fatal("checker missed a dangling name cell")
	}
}

// TestCheckCleanAfterFailedOrphanMkdir: when the two-site redirected
// mkdir aborts (name collision at the parent), the coordinator site must
// roll back its local cell — no orphan survives.
func TestCheckCleanAfterFailedOrphanMkdir(t *testing.T) {
	h := newHarness(t, 4, route.MkdirSwitching, 1.0)
	h.mkdir(h.root, "taken")
	// Second mkdir of the same name must fail cleanly wherever it routes.
	var res nfsproto.CreateRes
	if err := h.call(nfsproto.ProcMkdir, &nfsproto.CreateArgs{Dir: h.root, Name: "taken"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != nfsproto.ErrExist {
		t.Fatalf("duplicate mkdir: %v, want EEXIST", res.Status)
	}
	if problems := Check(h.servers, h.root); len(problems) != 0 {
		t.Fatalf("aborted orphan mkdir left damage:\n%s", strings.Join(problems, "\n"))
	}
}

// TestConcurrentExclusiveCreates: racing exclusive creates of one name
// from many clients yield exactly one winner and a consistent name space.
func TestConcurrentExclusiveCreates(t *testing.T) {
	for _, kind := range []route.NameKind{route.MkdirSwitching, route.NameHashing} {
		t.Run(kind.String(), func(t *testing.T) {
			h := newHarness(t, 3, kind, 0.5)
			const racers = 8
			results := make(chan nfsproto.Status, racers)
			for i := 0; i < racers; i++ {
				port, err := h.net.BindAny(uint32(210 + i))
				if err != nil {
					t.Fatal(err)
				}
				// Route as the µproxy would, per racer.
				args := nfsproto.CreateArgs{Dir: h.root, Name: "contested", Exclusive: true}
				e := xdr.NewEncoder(256)
				args.Encode(e)
				info, err := nfsproto.ParseCall(nfsproto.ProcCreate, e.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				addr, err := h.policy.AddrFor(&info)
				if err != nil {
					t.Fatal(err)
				}
				cli := oncrpc.NewClient(port, addr, oncrpc.ClientConfig{})
				defer cli.Close()
				go func() {
					body, err := cli.Call(nfsproto.Program, nfsproto.Version,
						uint32(nfsproto.ProcCreate), args.Encode)
					if err != nil {
						results <- nfsproto.ErrServerFault
						return
					}
					var res nfsproto.CreateRes
					if err := res.Decode(xdr.NewDecoder(body)); err != nil {
						results <- nfsproto.ErrServerFault
						return
					}
					results <- res.Status
				}()
			}
			winners, losers := 0, 0
			for i := 0; i < racers; i++ {
				switch <-results {
				case nfsproto.OK:
					winners++
				case nfsproto.ErrExist:
					losers++
				default:
					t.Fatal("unexpected status in create race")
				}
			}
			if winners != 1 || losers != racers-1 {
				t.Fatalf("%d winners, %d losers; want exactly 1 winner", winners, losers)
			}
			if problems := Check(h.servers, h.root); len(problems) != 0 {
				t.Fatalf("race left damage:\n%s", strings.Join(problems, "\n"))
			}
		})
	}
}

// TestReadDirPagingAcrossSites: READDIR with a small byte budget pages
// through a scattered (name-hashed) directory with stable cookies.
func TestReadDirPagingAcrossSites(t *testing.T) {
	h := newHarness(t, 4, route.NameHashing, 0)
	const files = 40
	for i := 0; i < files; i++ {
		h.create(h.root, fmt.Sprintf("page%03d", i))
	}
	var got []string
	var cookie uint64
	pages := 0
	for {
		var rd nfsproto.ReadDirRes
		if err := h.call(nfsproto.ProcReadDir, &nfsproto.ReadDirArgs{
			Dir: h.root, Cookie: cookie, Count: 256, // tiny budget forces paging
		}, &rd); err != nil {
			t.Fatal(err)
		}
		if rd.Status != nfsproto.OK {
			t.Fatalf("page %d: %v", pages, rd.Status)
		}
		for _, ent := range rd.Entries {
			got = append(got, ent.Name)
		}
		pages++
		if rd.EOF {
			break
		}
		if len(rd.Entries) == 0 {
			t.Fatal("empty non-EOF page")
		}
		cookie = rd.Entries[len(rd.Entries)-1].Cookie
		if pages > files {
			t.Fatal("paging did not terminate")
		}
	}
	if pages < 3 {
		t.Fatalf("expected multiple pages, got %d", pages)
	}
	if len(got) != files {
		t.Fatalf("paged readdir returned %d entries, want %d", len(got), files)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("paged entries out of order at %d: %q >= %q", i, got[i-1], got[i])
		}
	}
	// A bogus cookie is rejected.
	var rd nfsproto.ReadDirRes
	if err := h.call(nfsproto.ProcReadDir, &nfsproto.ReadDirArgs{
		Dir: h.root, Cookie: 1 << 40, Count: 1024,
	}, &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Status != nfsproto.ErrBadCookie {
		t.Fatalf("bogus cookie: %v, want EBADCOOKIE", rd.Status)
	}
}

// TestSymlinkRoutesAndRecovers: symlink cells work across both policies
// at the dirsrv level, including log replay.
func TestSymlinkCellsAndReplay(t *testing.T) {
	h := newHarness(t, 2, route.MkdirSwitching, 0)
	var res nfsproto.CreateRes
	if err := h.call(nfsproto.ProcSymlink, &nfsproto.SymlinkArgs{
		Dir: h.root, Name: "ln", Target: "/the/target",
	}, &res); err != nil || res.Status != nfsproto.OK {
		t.Fatalf("symlink: %v %v", res.Status, err)
	}
	// Replay from the durable log onto a fresh state.
	log, err := wal.Open(h.stores[0].CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.servers[0].Recover(nil, log); err != nil {
		t.Fatal(err)
	}
	var rl nfsproto.ReadLinkRes
	if err := h.call(nfsproto.ProcReadLink, &nfsproto.ReadLinkArgs{FH: res.FH}, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Status != nfsproto.OK || rl.Target != "/the/target" {
		t.Fatalf("readlink after replay: %v %q", rl.Status, rl.Target)
	}
}
