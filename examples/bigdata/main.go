// Bigdata: high-bandwidth I/O on large files — the workload of Table 2.
// Demonstrates striped placement across the storage array, per-file
// mirrored striping for fault tolerance, and reads surviving the crash of
// a replica node.
package main

import (
	"bytes"
	"fmt"
	"log"

	"slice/internal/ensemble"
	"slice/internal/route"
	"slice/internal/workload"
)

func main() {
	// Unmirrored ensemble first: watch a 2MB file decluster.
	e, err := ensemble.New(ensemble.Config{
		StorageNodes:     8,
		DirServers:       1,
		SmallFileServers: 1,
		Coordinator:      true,
		NameKind:         route.MkdirSwitching,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	const size = 2 << 20
	if _, err := workload.DD(c, c.Root(), workload.DDConfig{
		Name: "dataset.bin", Bytes: size, Write: true,
	}); err != nil {
		log.Fatal(err)
	}
	rd, err := workload.DD(c, c.Root(), workload.DDConfig{
		Name: "dataset.bin", Bytes: size, Verify: true,
	})
	if err != nil || rd.Mismatch {
		log.Fatalf("verify failed: %+v %v", rd, err)
	}
	fmt.Printf("wrote and verified %d MB, striped over the array:\n", size>>20)
	for i, n := range e.Storage {
		fmt.Printf("  node %d: %4d KB\n", i, n.Store().PhysicalBytes()/1024)
	}

	// Mirrored ensemble: every block lives on two nodes; losing one
	// node's uncommitted state does not lose data.
	em, err := ensemble.New(ensemble.Config{
		StorageNodes:     4,
		DirServers:       1,
		SmallFileServers: 1,
		Coordinator:      true,
		NameKind:         route.MkdirSwitching,
		MirrorDegree:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer em.Close()
	cm, err := em.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cm.Close()

	fh, _, err := cm.Create(cm.Root(), "critical.db", 0o644, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncritical.db mirrored=%v degree=%d\n", fh.Mirrored(), fh.MirrorDegree)
	payload := bytes.Repeat([]byte("durable"), 64*1024) // 448 KB
	if err := cm.WriteFile(fh, payload); err != nil {
		log.Fatal(err)
	}

	// Crash a storage node that holds replicas.
	for i, n := range em.Storage {
		if n.Store().Stats().Writes > 0 {
			fmt.Printf("crashing storage node %d...\n", i)
			n.Store().Crash()
			break
		}
	}
	got, err := cm.ReadAll(fh)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("mirrored read returned wrong data after replica crash")
	}
	fmt.Printf("read back %d bytes intact from the surviving mirrors\n", len(got))
}
