package ensemble

import (
	"fmt"

	"slice/internal/coord"
	"slice/internal/dirsrv"
	"slice/internal/netsim"
	"slice/internal/proxy"
	"slice/internal/route"
	"slice/internal/smallfile"
	"slice/internal/storage"
	"slice/internal/wal"
)

// Chaos drives component failures and recoveries against a running
// ensemble. Crashes go through the fabric's fault plane — the victim's
// ports are torn down and in-flight datagrams to it are lost, exactly as
// a machine failure would look from the network — and restarts rebuild
// the component from the durable prefix of its journal (§2.3), rewiring
// the shared routing tables or the µproxy's coordinator address so
// clients recover through ordinary retransmission (§2.1).
type Chaos struct {
	e *Ensemble
}

// Chaos returns the fault controller for this ensemble.
func (e *Ensemble) Chaos() *Chaos { return &Chaos{e: e} }

// rebind swaps old for new in a routing table, preserving every other
// logical site's binding.
func rebind(t *route.Table, oldA, newA netsim.Addr) {
	phys := t.Physical()
	for i, a := range phys {
		if a == oldA {
			phys[i] = newA
		}
	}
	t.Swap(phys)
}

// --------------------------------------------------------- coordinator

// CrashCoordinator kills the coordinator host: its ports (server and
// client side) are torn down, in-flight RPCs are lost, and only the
// durable prefix of the intentions journal survives for restart.
func (c *Chaos) CrashCoordinator() {
	if c.e.Coord == nil {
		return
	}
	c.e.Net.CrashHost(HostCoord)
	c.e.Coord.Close()
	c.e.Coord = nil
	c.e.CoordLog = c.e.CoordLog.CrashCopy()
}

// RestartCoordinator rebuilds the coordinator from the durable prefix of
// its journal on a fresh port of the same host. Recovery — replaying the
// log and finishing every pending intention — completes before the new
// port accepts calls, and the µproxy is re-pointed at the new address so
// its stuck coordinator RPCs fail over mid-retry.
func (c *Chaos) RestartCoordinator(port uint16) (*coord.Coordinator, error) {
	if c.e.Coord != nil {
		return nil, fmt.Errorf("ensemble: coordinator still running")
	}
	c.e.Net.RestartHost(HostCoord)
	addr := netsim.Addr{Host: HostCoord, Port: port}
	p, err := c.e.Net.Bind(addr)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(c.e.CoordLog)
	if err != nil {
		return nil, err
	}
	co, err := coord.Restart(p, coord.Config{
		Storage:    c.e.StorageTable,
		SmallFile:  c.e.SmallTable,
		Net:        c.e.Net,
		Host:       HostCoord,
		ProbeAfter: c.e.cfg.CoordProbeAfter,
		CapKey:     c.e.cfg.CapabilityKey,
	}, log)
	if err != nil {
		return nil, err
	}
	if c.e.obsCoord != nil {
		co.SetObs(c.e.obsCoord)
	}
	c.e.Coord = co
	// Re-point every live fleet member; a crashed proxy picks the new
	// address up from RestartProxy's rebuild.
	for _, p := range c.e.Proxies {
		if p != nil {
			p.SetCoord(addr)
		}
	}
	return co, nil
}

// -------------------------------------------------------------- µproxies

// CrashProxy kills µproxy i: its hosts (virtual address and client
// ports) are torn down, every in-flight request it was brokering is
// lost with its soft state, and the fleet table drops the member — the
// front's failure detection, folded into one membership swap. Flows the
// victim owned remap to the surviving siblings; in-flight calls reach
// them on their next retransmission, new calls immediately.
func (c *Chaos) CrashProxy(i int) {
	if i < 0 || i >= len(c.e.Proxies) || c.e.Proxies[i] == nil {
		return
	}
	c.e.Net.CrashHost(proxyVirtual(i).Host)
	c.e.Net.CrashHost(proxyHost(i))
	c.e.Proxies[i].Close()
	c.e.Proxies[i] = nil
	if i == 0 {
		c.e.Proxy = nil
	}
	members := c.e.Fleet.Members()
	survivors := make([]route.ProxyMember, 0, len(members))
	for _, m := range members {
		if m.ID != uint32(i) {
			survivors = append(survivors, m)
		}
	}
	c.e.Fleet.Swap(survivors)
}

// RestartProxy revives µproxy i on its original slot with empty soft
// state — the architecture's whole point is that nothing else is needed
// (§2.1). The member rejoins the fleet under its old ID, so consistent
// hashing hands it back exactly the flows it owned before the crash,
// and it reports under its old observability labels.
func (c *Chaos) RestartProxy(i int) (*proxy.Proxy, error) {
	if i < 0 || i >= len(c.e.Proxies) {
		return nil, fmt.Errorf("ensemble: no proxy slot %d", i)
	}
	if c.e.Proxies[i] != nil {
		return nil, fmt.Errorf("ensemble: proxy %d still running", i)
	}
	c.e.Net.RestartHost(proxyVirtual(i).Host)
	c.e.Net.RestartHost(proxyHost(i))
	reg, tracer := c.e.proxyObs(i)
	p := c.e.newProxy(i, reg, tracer)
	c.e.Proxies[i] = p
	if i == 0 {
		c.e.Proxy = p
	}
	members := c.e.Fleet.Members()
	rejoined := make([]route.ProxyMember, 0, len(members)+1)
	rejoined = append(rejoined, members...)
	rejoined = append(rejoined, route.ProxyMember{
		ID:      uint32(i),
		Virtual: proxyVirtual(i),
		Host:    proxyHost(i),
	})
	c.e.Fleet.Swap(rejoined)
	return p, nil
}

// --------------------------------------------------- directory servers

// CrashDir kills directory server i's host. The snapshot of its backing
// object must have been taken before the crash (checkpoints are
// periodic in a deployment); pass it to RestartDir.
func (c *Chaos) CrashDir(i int) {
	c.e.Net.CrashHost(HostDir0 + uint32(i))
	c.e.Dirs[i].Close()
	c.e.DirLogs[i] = c.e.DirLogs[i].CrashCopy()
}

// RestartDir rebuilds directory server i from snapshot plus the durable
// suffix of its journal, serving at host (a fresh site, or the original
// host revived). The shared directory table is rebound to the new
// address, which the µproxy observes as a route-version change: pending
// requests re-resolve on their next client retransmission.
func (c *Chaos) RestartDir(i int, snapshot []byte, host uint32) (*dirsrv.Server, error) {
	oldAddr := netsim.Addr{Host: HostDir0 + uint32(i), Port: ServicePort}
	if host == HostDir0+uint32(i) {
		c.e.Net.RestartHost(host)
	}
	addr := netsim.Addr{Host: host, Port: ServicePort}
	port, err := c.e.Net.Bind(addr)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(c.e.DirLogs[i])
	if err != nil {
		return nil, err
	}
	srv, err := dirsrv.Restart(port, dirsrv.Config{
		Site:         uint32(i),
		Volume:       1,
		Kind:         c.e.cfg.NameKind,
		Table:        c.e.DirTable,
		Net:          c.e.Net,
		Host:         host,
		Clock:        c.e.cfg.Clock,
		MirrorDegree: c.e.cfg.MirrorDegree,
		UseMaps:      c.e.cfg.UseBlockMaps && c.e.cfg.Coordinator,
	}, snapshot, log)
	if err != nil {
		return nil, err
	}
	srv.SetRoot(c.e.Root)
	// The restarted server keeps the original registry: counts accumulate
	// across the failover rather than resetting with the process.
	srv.SetObs(c.e.obsDirs[i])
	c.e.Dirs[i] = srv
	rebind(c.e.DirTable, oldAddr, addr)
	return srv, nil
}

// -------------------------------------------------- small-file servers

// CrashSmall kills small-file server i's host. Its store is dataless:
// everything needed for restart is the backing object (on a storage
// node) plus the durable journal prefix.
func (c *Chaos) CrashSmall(i int) {
	c.e.Net.CrashHost(HostSmall0 + uint32(i))
	c.e.Small[i].Close()
	c.e.SmallLogs[i] = c.e.SmallLogs[i].CrashCopy()
}

// RestartSmall rebuilds small-file server i against its backing object
// at host and rebinds the small-file table.
func (c *Chaos) RestartSmall(i int, host uint32) (*smallfile.Server, error) {
	oldAddr := netsim.Addr{Host: HostSmall0 + uint32(i), Port: ServicePort}
	if host == HostSmall0+uint32(i) {
		c.e.Net.RestartHost(host)
	}
	addr := netsim.Addr{Host: host, Port: ServicePort}
	port, err := c.e.Net.Bind(addr)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(c.e.SmallLogs[i])
	if err != nil {
		return nil, err
	}
	backing := c.e.Storage[i%len(c.e.Storage)].Store()
	backID := storage.ObjectID(0x5F<<56 | uint64(i))
	srv, err := smallfile.Restart(port, backing, backID, log)
	if err != nil {
		return nil, err
	}
	srv.SetObs(c.e.obsSmall[i])
	c.e.Small[i] = srv
	rebind(c.e.SmallTable, oldAddr, addr)
	return srv, nil
}

// ------------------------------------------------------- storage nodes

// PartitionStorage cuts storage node i off the fabric in both directions
// without killing it: its ports stay bound, so healing restores service
// with all state intact — the classic transient-partition fault.
func (c *Chaos) PartitionStorage(i int) {
	c.e.Net.IsolateHost(HostStorage0 + uint32(i))
}

// HealStorage reconnects a partitioned storage node.
func (c *Chaos) HealStorage(i int) {
	c.e.Net.RejoinHost(HostStorage0 + uint32(i))
}

// RestartStorage reboots storage node i mid-flight: the host's ports are
// torn down (in-flight datagrams to and from it are lost) and the node
// comes back at the same address over the same backing store — a machine
// reboot that keeps its disk. No table rebind is needed.
func (c *Chaos) RestartStorage(i int) (*storage.Node, error) {
	host := HostStorage0 + uint32(i)
	c.e.Net.CrashHost(host)
	c.e.Storage[i].Close()
	c.e.Net.RestartHost(host)
	port, err := c.e.Net.Bind(netsim.Addr{Host: host, Port: ServicePort})
	if err != nil {
		return nil, err
	}
	node := storage.NewNode(port, c.e.Storage[i].Store())
	if len(c.e.cfg.CapabilityKey) > 0 {
		node.RequireCapability(c.e.cfg.CapabilityKey)
	}
	node.SetObs(c.e.obsStorage[i])
	c.e.Storage[i] = node
	return node, nil
}
