package front

import (
	"sync"
	"testing"

	"slice/internal/netsim"
	"slice/internal/route"
)

// TestSwapUnderConcurrentResolveRace hammers Ring.Resolve from many
// goroutines while fleet membership churns through Swap — the exact
// interleaving a proxy crash publishes under live traffic. Run under
// -race this proves the lock-free snapshot discipline: every resolve
// must land on a member of some published generation (never a torn or
// zero address while the fleet is non-empty).
func TestSwapUnderConcurrentResolveRace(t *testing.T) {
	member := func(id uint32) route.ProxyMember {
		return route.ProxyMember{
			ID:      id,
			Virtual: netsim.Addr{Host: 100 + id, Port: 2049},
			Host:    200 + id,
		}
	}
	all := []route.ProxyMember{member(0), member(1), member(2), member(3)}
	valid := make(map[netsim.Addr]bool)
	for _, m := range all {
		valid[m.Virtual] = true
	}
	fleet := route.NewFleet(all)
	ring := NewRing(fleet, 64)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			key := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				key = key*6364136223846793005 + 1442695040888963407
				addr := ring.Resolve(key)
				if !valid[addr] {
					t.Errorf("resolve returned %+v, not a member of any generation", addr)
					return
				}
			}
		}(uint64(g) + 1)
	}

	// Churn: members leave and rejoin, one at a time, never emptying the
	// fleet — each Swap is a crash or a restart as CrashProxy/RestartProxy
	// publish them.
	for i := 0; i < 2000; i++ {
		gone := uint32(i % len(all))
		survivors := make([]route.ProxyMember, 0, len(all)-1)
		for _, m := range all {
			if m.ID != gone {
				survivors = append(survivors, m)
			}
		}
		fleet.Swap(survivors)
		fleet.Swap(all)
	}
	close(stop)
	wg.Wait()
}
