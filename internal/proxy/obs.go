package proxy

import (
	"fmt"
	"time"

	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/replica"
	"slice/internal/xdr"
)

// This file is the µproxy's observability wiring: per-stage and per-hop
// latency histograms, pooled per-request trace spans keyed by the client
// xid, and the absorbed stats RPC program that lets slicectl aggregate a
// live ensemble over the wire.
//
// The discipline matches the pooled data path: histogram pointers are
// resolved once at construction (the registry's map and lock are never
// touched per request), a span is a pool object stamped and recycled by
// the tracer, and every obs field of a pending record is written before
// the record becomes reachable from the pending table — so the response
// path, which owns the record exclusively after pairing, never races the
// request path.

// proxyHists caches direct histogram pointers for the data path.
type proxyHists struct {
	classify *obs.Histogram
	route    *obs.Histogram
	rewrite  *obs.Histogram
	hop      [obs.HopMount + 1]*obs.Histogram
	e2e      [nfsproto.ProcCommit + 1]*obs.Histogram
	mount    *obs.Histogram

	// Replica-layer counters (empty/nil when the array is unreplicated):
	// dirtyOcc samples dirty-set occupancy at each write fan-out, pinned
	// counts reads pinned to a primary by a dirty object, and
	// readSpread[slot] counts spread reads sent to each member slot —
	// the per-replica read balance slicectl reports.
	dirtyOcc   *obs.Histogram
	pinned     *obs.Histogram
	readSpread []*obs.Histogram
}

func newProxyHists(reg *obs.Registry, replicas *replica.Map) *proxyHists {
	h := &proxyHists{
		classify: reg.Hist("stage.classify"),
		route:    reg.Hist("stage.route"),
		rewrite:  reg.Hist("stage.rewrite"),
		mount:    reg.Hist("e2e.mount.mnt"),
	}
	for k := obs.HopDirsrv; k <= obs.HopMount; k++ {
		h.hop[k] = reg.Hist("hop." + k.String())
	}
	for proc := range h.e2e {
		h.e2e[proc] = reg.Hist("e2e." + obs.OpName(nfsproto.Program, uint32(proc)))
	}
	if replicas.Replicated() {
		h.dirtyOcc = reg.Hist("replica.dirty_occupancy")
		h.pinned = reg.Hist("replica.pinned_reads")
		// One histogram per member slot, named group.member so slicectl
		// can report per-group balance without knowing the topology.
		h.readSpread = make([]*obs.Histogram, replicas.Slots())
		for _, g := range replicas.Groups() {
			for m := range g.Members {
				h.readSpread[g.Slot0+m] = reg.Hist(fmt.Sprintf("replica.read[%d.%d]", g.ID, m))
			}
		}
	}
	return h
}

// histE2E returns the end-to-end histogram for a request's op class.
func (p *Proxy) histE2E(prog uint32, proc nfsproto.Proc) *obs.Histogram {
	if prog == mountProgram {
		return p.hists.mount
	}
	if int(proc) < len(p.hists.e2e) {
		return p.hists.e2e[proc]
	}
	return nil
}

// beginObs stamps a fresh pending record with its observability state:
// the request start, the classify (intercept + decode) cost, and — when
// tracing is on — a pooled span. It runs before the record is published
// to the pending table.
func (p *Proxy) beginObs(pd *pendingReq, xid, proc uint32, t0 time.Time, classify time.Duration) {
	if p.hists == nil && p.tracer == nil {
		return
	}
	pd.startNS = t0.UnixNano()
	pd.clsNS = uint64(classify)
	if p.hists != nil {
		p.hists.classify.Record(pd.clsNS)
	}
	if p.tracer != nil {
		sp := p.tracer.Start(uint64(xid), proc, pd.startNS)
		sp.Prog = pd.prog
		sp.ClassifyNS = pd.clsNS
		pd.span = sp
	}
}

// markSent records the route and rewrite stages and the forward
// timestamp. It must run before the record is inserted into the pending
// table: once inserted, the reply may pair with it concurrently.
func (p *Proxy) markSent(pd *pendingReq, now time.Time, rewrite time.Duration) {
	if pd.startNS == 0 {
		return
	}
	nowNS := now.UnixNano()
	pd.sentAt = nowNS
	var routeNS uint64
	if elapsed := uint64(nowNS - pd.startNS); elapsed > pd.clsNS {
		routeNS = elapsed - pd.clsNS
	}
	if sp := pd.span; sp != nil {
		sp.RouteNS = routeNS
		sp.RewriteNS = uint64(rewrite)
	}
	if p.hists != nil {
		p.hists.route.Record(routeNS)
		p.hists.rewrite.Record(uint64(rewrite))
	}
}

// recordHop attributes the forwarded hop's round trip when its (last)
// reply pairs. The reply trailer, when present, splits out the server's
// handler time; the caller owns pd exclusively.
func (p *Proxy) recordHop(pd *pendingReq, replyBody []byte) {
	if pd.sentAt == 0 {
		return
	}
	total := uint64(time.Now().UnixNano() - pd.sentAt)
	var srvNS uint64
	if _, ns, ok := oncrpc.PeekReplyTrace(replyBody); ok {
		srvNS = ns
	}
	if pd.span != nil {
		pd.span.AddHop(pd.hop, total, srvNS)
	}
	if p.hists != nil {
		if h := p.hists.hop[pd.hop]; h != nil {
			h.Record(total)
		}
	}
	pd.sentAt = 0
}

// endObs closes out a request: records its end-to-end latency and
// archives the span. The caller owns pd exclusively.
func (p *Proxy) endObs(pd *pendingReq) {
	if pd.startNS == 0 {
		return
	}
	endNS := time.Now().UnixNano()
	if p.hists != nil {
		if h := p.histE2E(pd.prog, pd.proc); h != nil {
			h.Record(uint64(endNS - pd.startNS))
		}
	}
	if pd.span != nil {
		p.tracer.Finish(pd.span, endNS)
		pd.span = nil
	}
}

// dropPending recycles a pending record on a request-path error,
// returning its span (never archived: the request crossed no hop).
func (p *Proxy) dropPending(pd *pendingReq) {
	if pd.span != nil {
		p.tracer.Abort(pd.span)
		pd.span = nil
	}
	putPending(pd)
}

// hopForSite classifies a data-site address for hop attribution.
func (p *Proxy) hopForSite(addr netsim.Addr) obs.HopKind {
	if p.cfg.IO.SmallFile != nil {
		for _, a := range p.cfg.IO.SmallFile.Physical() {
			if a == addr {
				return obs.HopSmallfile
			}
		}
	}
	return obs.HopStorage
}

// obsCall wraps a µproxy-originated RPC: it carries the span's trace id
// on the wire (so the server's reply trailer attributes its handler
// time), times the round trip, and records the hop.
func (p *Proxy) obsCall(sp *obs.Span, hop obs.HopKind, c *oncrpc.Client, prog, vers, proc uint32, args func(*xdr.Encoder)) ([]byte, error) {
	if sp == nil && p.hists == nil {
		return c.Call(prog, vers, proc, args)
	}
	t0 := time.Now()
	var body []byte
	var err error
	if sp != nil {
		body, err = c.CallTraced(sp.ID, prog, vers, proc, args)
	} else {
		body, err = c.Call(prog, vers, proc, args)
	}
	total := uint64(time.Since(t0))
	var srvNS uint64
	if err == nil {
		if _, ns, ok := oncrpc.PeekReplyTrace(body); ok {
			srvNS = ns
		}
	}
	if sp != nil {
		sp.AddHop(hop, total, srvNS)
	}
	if p.hists != nil {
		if h := p.hists.hop[hop]; h != nil {
			h.Record(total)
		}
	}
	return body, err
}

// answerStats serves one absorbed stats-program call (obs.Program) from
// the configured StatsFn, replying as the virtual server. Runs on a
// helper goroutine: StatsFn walks registries under their locks.
func (p *Proxy) answerStats(client netsim.Addr, xid, proc, arg uint32) {
	out := p.cfg.StatsFn(proc, arg)
	var payload []byte
	if out == nil {
		payload = oncrpc.EncodeReply(xid, oncrpc.AcceptProcUnavail, nil)
	} else {
		payload = oncrpc.EncodeReply(xid, oncrpc.AcceptSuccess, func(e *xdr.Encoder) {
			e.PutOpaque(out)
		})
	}
	// An oversized snapshot (beyond the fabric MTU) fails Build and is
	// counted as dropped; the caller times out and can ask for less
	// (fewer traces) rather than the µproxy fragmenting.
	d, err := netsim.Build(p.cfg.Virtual, client, payload)
	if err != nil {
		p.st.dropped.Add(1)
		return
	}
	p.st.absorbed.Add(1)
	p.st.responses.Add(1)
	_ = p.cfg.Net.Inject(d)
}
