// Package attr defines file attributes in the style of the NFS V3 fattr3
// structure, together with the timestamp conventions Slice relies on.
//
// In Slice, directory servers hold the authoritative attributes for each
// file, but the µproxy caches attributes and patches them into responses so
// that clients always observe a complete, current attribute set (§4.1 of
// the paper). Timestamps are assigned by whichever site performs an update;
// the architecture assumes NTP-synchronized clocks.
package attr

import (
	"fmt"
	"time"

	"slice/internal/xdr"
)

// FileType enumerates NFS V3 file types (subset used by Slice).
type FileType uint32

// File types. Values match the NFS V3 ftype3 enumeration.
const (
	TypeNone FileType = 0
	TypeReg  FileType = 1 // regular file
	TypeDir  FileType = 2 // directory
	TypeLink FileType = 5 // symbolic link
)

// String returns a short name for the file type.
func (t FileType) String() string {
	switch t {
	case TypeReg:
		return "REG"
	case TypeDir:
		return "DIR"
	case TypeLink:
		return "LNK"
	default:
		return fmt.Sprintf("ftype(%d)", uint32(t))
	}
}

// Time is an NFS wire timestamp: seconds and nanoseconds since the epoch.
type Time struct {
	Sec  uint64
	Nsec uint32
}

// FromGo converts a time.Time to a wire timestamp.
func FromGo(t time.Time) Time {
	return Time{Sec: uint64(t.Unix()), Nsec: uint32(t.Nanosecond())}
}

// Go converts a wire timestamp to a time.Time.
func (t Time) Go() time.Time { return time.Unix(int64(t.Sec), int64(t.Nsec)) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool {
	return t.Sec < u.Sec || (t.Sec == u.Sec && t.Nsec < u.Nsec)
}

// Encode appends the timestamp to e.
func (t Time) Encode(e *xdr.Encoder) {
	e.PutUint64(t.Sec)
	e.PutUint32(t.Nsec)
}

// DecodeTime reads a timestamp from d.
func DecodeTime(d *xdr.Decoder) (Time, error) {
	sec, err := d.Uint64()
	if err != nil {
		return Time{}, err
	}
	nsec, err := d.Uint32()
	if err != nil {
		return Time{}, err
	}
	return Time{Sec: sec, Nsec: nsec}, nil
}

// Attr is the Slice analogue of the NFS V3 fattr3 attribute block.
type Attr struct {
	Type   FileType
	Mode   uint32
	Nlink  uint32
	UID    uint32
	GID    uint32
	Size   uint64 // file size in bytes
	Used   uint64 // bytes of storage consumed
	FileID uint64 // unique file identifier within the volume
	Atime  Time   // last access
	Mtime  Time   // last data modification
	Ctime  Time   // last attribute change
}

// EncodedSize is the fixed wire size of an Attr in bytes.
const EncodedSize = 4*5 + 8*3 + 12*3

// Encode appends the attribute block to e.
func (a *Attr) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(a.Type))
	e.PutUint32(a.Mode)
	e.PutUint32(a.Nlink)
	e.PutUint32(a.UID)
	e.PutUint32(a.GID)
	e.PutUint64(a.Size)
	e.PutUint64(a.Used)
	e.PutUint64(a.FileID)
	a.Atime.Encode(e)
	a.Mtime.Encode(e)
	a.Ctime.Encode(e)
}

// Decode reads an attribute block from d.
func (a *Attr) Decode(d *xdr.Decoder) error {
	t, err := d.Uint32()
	if err != nil {
		return err
	}
	a.Type = FileType(t)
	if a.Mode, err = d.Uint32(); err != nil {
		return err
	}
	if a.Nlink, err = d.Uint32(); err != nil {
		return err
	}
	if a.UID, err = d.Uint32(); err != nil {
		return err
	}
	if a.GID, err = d.Uint32(); err != nil {
		return err
	}
	if a.Size, err = d.Uint64(); err != nil {
		return err
	}
	if a.Used, err = d.Uint64(); err != nil {
		return err
	}
	if a.FileID, err = d.Uint64(); err != nil {
		return err
	}
	if a.Atime, err = DecodeTime(d); err != nil {
		return err
	}
	if a.Mtime, err = DecodeTime(d); err != nil {
		return err
	}
	if a.Ctime, err = DecodeTime(d); err != nil {
		return err
	}
	return nil
}

// SetAttr describes a partial attribute update (NFS V3 sattr3). Each field
// applies only when its Set flag is true.
type SetAttr struct {
	SetMode  bool
	Mode     uint32
	SetUID   bool
	UID      uint32
	SetGID   bool
	GID      uint32
	SetSize  bool
	Size     uint64
	SetAtime bool
	Atime    Time
	SetMtime bool
	Mtime    Time
}

// Encode appends the partial update to e.
func (s *SetAttr) Encode(e *xdr.Encoder) {
	e.PutBool(s.SetMode)
	if s.SetMode {
		e.PutUint32(s.Mode)
	}
	e.PutBool(s.SetUID)
	if s.SetUID {
		e.PutUint32(s.UID)
	}
	e.PutBool(s.SetGID)
	if s.SetGID {
		e.PutUint32(s.GID)
	}
	e.PutBool(s.SetSize)
	if s.SetSize {
		e.PutUint64(s.Size)
	}
	e.PutBool(s.SetAtime)
	if s.SetAtime {
		s.Atime.Encode(e)
	}
	e.PutBool(s.SetMtime)
	if s.SetMtime {
		s.Mtime.Encode(e)
	}
}

// Decode reads a partial update from d.
func (s *SetAttr) Decode(d *xdr.Decoder) error {
	var err error
	if s.SetMode, err = d.Bool(); err != nil {
		return err
	}
	if s.SetMode {
		if s.Mode, err = d.Uint32(); err != nil {
			return err
		}
	}
	if s.SetUID, err = d.Bool(); err != nil {
		return err
	}
	if s.SetUID {
		if s.UID, err = d.Uint32(); err != nil {
			return err
		}
	}
	if s.SetGID, err = d.Bool(); err != nil {
		return err
	}
	if s.SetGID {
		if s.GID, err = d.Uint32(); err != nil {
			return err
		}
	}
	if s.SetSize, err = d.Bool(); err != nil {
		return err
	}
	if s.SetSize {
		if s.Size, err = d.Uint64(); err != nil {
			return err
		}
	}
	if s.SetAtime, err = d.Bool(); err != nil {
		return err
	}
	if s.SetAtime {
		if s.Atime, err = DecodeTime(d); err != nil {
			return err
		}
	}
	if s.SetMtime, err = d.Bool(); err != nil {
		return err
	}
	if s.SetMtime {
		if s.Mtime, err = DecodeTime(d); err != nil {
			return err
		}
	}
	return nil
}

// Apply folds the partial update into a, stamping Ctime with now.
func (s *SetAttr) Apply(a *Attr, now Time) {
	if s.SetMode {
		a.Mode = s.Mode
	}
	if s.SetUID {
		a.UID = s.UID
	}
	if s.SetGID {
		a.GID = s.GID
	}
	if s.SetSize {
		a.Size = s.Size
		a.Mtime = now
	}
	if s.SetAtime {
		a.Atime = s.Atime
	}
	if s.SetMtime {
		a.Mtime = s.Mtime
	}
	a.Ctime = now
}
