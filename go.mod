module slice

go 1.22
