// Package proxy implements the Slice µproxy: an interposed request router
// that virtualizes the file service (§2.1, §3, §4.1).
//
// The µproxy is a network element on each client's path to the service.
// It intercepts datagrams addressed to the virtual server, classifies each
// request (bulk I/O, small-file I/O, name space, attributes), selects a
// physical server with the configured routing policies, rewrites the
// destination address and port with an incremental checksum update, and
// forwards the packet. Responses are intercepted on the way back, have the
// virtual server address restored, and — for I/O responses from storage
// and small-file servers, which carry no attributes — are patched with a
// complete attribute set from the µproxy's attribute cache.
//
// All µproxy state is soft: pending-request records, routing tables, the
// attribute cache, the name cache, and block-map fragments can be
// discarded at any time; end-to-end RPC retransmission recovers.
package proxy

import (
	"sync"
	"time"

	"slice/internal/attr"
	"slice/internal/fhandle"
)

// attrEntry is one attribute-cache entry. Dirty entries hold attribute
// changes (size/mtime from I/O traffic) not yet pushed to the directory
// server with SETATTR.
type attrEntry struct {
	fh      fhandle.Handle
	at      attr.Attr
	dirty   bool
	touched time.Time
}

// attrCache caches file attributes observed in responses and updated by
// I/O completions (§4.1). It is bounded; evicting a dirty entry triggers
// writeback by the caller.
type attrCache struct {
	mu      sync.Mutex
	entries map[fhandle.Key]*attrEntry
	cap     int
}

func newAttrCache(capacity int) *attrCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &attrCache{
		entries: make(map[fhandle.Key]*attrEntry),
		cap:     capacity,
	}
}

// get returns a copy of the cached attributes for fh.
func (c *attrCache) get(fh fhandle.Handle) (attr.Attr, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[fh.Ident()]
	if e == nil {
		return attr.Attr{}, false
	}
	return e.at, true
}

// observe folds authoritative attributes from a server response into the
// cache. If the entry is dirty, locally known size/mtime win: they reflect
// I/O the directory server has not seen yet.
func (c *attrCache) observe(fh fhandle.Handle, at attr.Attr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[fh.Ident()]
	if e == nil {
		e = &attrEntry{fh: fh}
		c.entries[fh.Ident()] = e
		e.at = at
	} else if e.dirty {
		merged := at
		if e.at.Size > merged.Size {
			merged.Size = e.at.Size
		}
		if merged.Mtime.Before(e.at.Mtime) {
			merged.Mtime = e.at.Mtime
		}
		e.at = merged
	} else {
		e.at = at
	}
	e.touched = time.Now()
}

// update applies fn to the entry for fh, creating it if absent, and marks
// it dirty. Used on I/O completions to track size and timestamps.
func (c *attrCache) update(fh fhandle.Handle, fn func(*attr.Attr)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[fh.Ident()]
	if e == nil {
		e = &attrEntry{fh: fh, at: attr.Attr{
			Type:   attr.FileType(fh.Type),
			FileID: fh.FileID,
			Nlink:  1,
		}}
		c.entries[fh.Ident()] = e
	}
	fn(&e.at)
	e.dirty = true
	e.touched = time.Now()
}

// takeDirty returns and clears the dirty flag of fh's entry, for SETATTR
// writeback. ok is false if there was nothing dirty.
func (c *attrCache) takeDirty(fh fhandle.Handle) (attr.Attr, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[fh.Ident()]
	if e == nil || !e.dirty {
		return attr.Attr{}, false
	}
	e.dirty = false
	return e.at, true
}

// markDirty re-marks an entry dirty (writeback failed; retry later).
func (c *attrCache) markDirty(fh fhandle.Handle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[fh.Ident()]; e != nil {
		e.dirty = true
	}
}

// allDirty snapshots every dirty entry and clears the flags; the periodic
// writeback uses it to bound attribute drift (§4.1).
func (c *attrCache) allDirty() []attrEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []attrEntry
	for _, e := range c.entries {
		if e.dirty {
			out = append(out, *e)
			e.dirty = false
		}
	}
	return out
}

// forget drops the entry for fh (file removed).
func (c *attrCache) forget(fh fhandle.Handle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, fh.Ident())
}

// evictOver returns entries evicted to bring the cache under capacity;
// dirty evictees must be written back by the caller.
func (c *attrCache) evictOver() []attrEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []attrEntry
	for k, e := range c.entries {
		if len(c.entries) <= c.cap {
			break
		}
		out = append(out, *e)
		delete(c.entries, k)
	}
	return out
}

// len returns the number of cached entries.
func (c *attrCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// clear drops all entries (soft-state loss).
func (c *attrCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[fhandle.Key]*attrEntry)
}

// ------------------------------------------------------------ name cache

// nameKey identifies a directory entry.
type nameKey struct {
	parent fhandle.Key
	name   string
}

// nameCache remembers (directory, name) → child handle bindings harvested
// from LOOKUP/CREATE/MKDIR responses. The µproxy uses it to orchestrate
// REMOVE (it must know the victim's handle to clear its data). Soft state.
type nameCache struct {
	mu      sync.Mutex
	entries map[nameKey]fhandle.Handle
	cap     int
}

func newNameCache(capacity int) *nameCache {
	if capacity <= 0 {
		capacity = 8192
	}
	return &nameCache{entries: make(map[nameKey]fhandle.Handle), cap: capacity}
}

func (c *nameCache) put(parent fhandle.Handle, name string, child fhandle.Handle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.cap {
		for k := range c.entries { // random eviction
			delete(c.entries, k)
			break
		}
	}
	c.entries[nameKey{parent.Ident(), name}] = child
}

func (c *nameCache) get(parent fhandle.Handle, name string) (fhandle.Handle, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fh, ok := c.entries[nameKey{parent.Ident(), name}]
	return fh, ok
}

func (c *nameCache) drop(parent fhandle.Handle, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, nameKey{parent.Ident(), name})
}

func (c *nameCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[nameKey]fhandle.Handle)
}

// --------------------------------------------------------- block-map cache

// mapCache caches per-file block-map fragments supplied by a coordinator
// (§3.1). Fragments are fetched in chunks.
type mapCache struct {
	mu      sync.Mutex
	entries map[fhandle.Key][]uint32
}

// mapChunk is how many stripes one coordinator fetch returns.
const mapChunk = 64

func newMapCache() *mapCache {
	return &mapCache{entries: make(map[fhandle.Key][]uint32)}
}

// get returns the cached site of a stripe, or ok=false on a miss.
func (c *mapCache) get(fh fhandle.Handle, stripe uint64) (uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.entries[fh.Ident()]
	if stripe < uint64(len(m)) {
		return m[stripe], true
	}
	return 0, false
}

// fill installs a fetched fragment starting at stripe first.
func (c *mapCache) fill(fh fhandle.Handle, first uint64, sites []uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := fh.Ident()
	m := c.entries[key]
	need := first + uint64(len(sites))
	for uint64(len(m)) < need {
		m = append(m, 0)
	}
	copy(m[first:], sites)
	c.entries[key] = m
}

func (c *mapCache) forget(fh fhandle.Handle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, fh.Ident())
}

func (c *mapCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[fhandle.Key][]uint32)
}
