package client_test

import (
	"bytes"
	"testing"

	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/route"
	"slice/internal/server"
)

// The client is exercised heavily through ensemble/workload tests; these
// tests cover client-specific behaviour: I/O splitting at policy
// boundaries, retransmission accounting, and error mapping.

func TestChunkingNeverCrossesBoundaries(t *testing.T) {
	// Drive a client against the baseline server and verify with a large
	// unaligned write+read: correctness implies splitting worked; the
	// sizes below are chosen to straddle both the 64KB threshold and
	// many 32KB stripe-unit boundaries at odd offsets.
	net := netsim.New(netsim.Config{})
	port, err := net.Bind(netsim.Addr{Host: 2, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(port, 1, nil)
	defer srv.Close()
	c, err := client.New(client.Config{Net: net, Host: 100, Server: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Mount(); err != nil {
		t.Fatal(err)
	}
	fh, _, err := c.Create(c.Root(), "odd", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200*1024+13)
	for i := range data {
		data[i] = byte(i * 7)
	}
	const off = 61*1024 + 5 // straddles the threshold mid-chunk
	if _, err := c.Write(fh, off, data, false); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, _, err := c.Read(fh, off, got)
	if err != nil || n != len(data) {
		t.Fatalf("read %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("unaligned round trip mismatch")
	}
}

func TestRetransmissionCounting(t *testing.T) {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: 2, DirServers: 1, SmallFileServers: 1,
		Coordinator: true, NameKind: route.MkdirSwitching,
		Net: netsim.Config{LossRate: 0.15, Seed: 21},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		if _, _, err := c.Create(c.Root(), string(rune('a'+i)), 0o644, true); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	if c.Retransmissions() == 0 {
		t.Fatal("no retransmissions recorded under 15% loss")
	}
}

func TestErrorMapping(t *testing.T) {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: 1, DirServers: 1, SmallFileServers: 1,
		Coordinator: false, NameKind: route.MkdirSwitching,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Lookup(c.Root(), "ghost")
	if nfsproto.StatusOf(err) != nfsproto.ErrNoEnt {
		t.Fatalf("lookup ghost: %v", err)
	}
	if _, _, err := c.Create(c.Root(), "dup", 0o644, true); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.Create(c.Root(), "dup", 0o644, true)
	if nfsproto.StatusOf(err) != nfsproto.ErrExist {
		t.Fatalf("dup create: %v", err)
	}
	err = c.Rmdir(c.Root(), "dup")
	if nfsproto.StatusOf(err) != nfsproto.ErrNotDir {
		t.Fatalf("rmdir of file: %v", err)
	}
}

func TestMkdirAllIdempotent(t *testing.T) {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: 1, DirServers: 2, SmallFileServers: 1,
		Coordinator: false, NameKind: route.MkdirSwitching, MkdirP: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d1, err := c.MkdirAll(c.Root(), "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.MkdirAll(c.Root(), "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	if d1.Ident() != d2.Ident() {
		t.Fatal("second MkdirAll resolved a different directory")
	}
}

func TestReadAllEmptyFile(t *testing.T) {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: 1, DirServers: 1, SmallFileServers: 1,
		Coordinator: false, NameKind: route.MkdirSwitching,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, _, err := c.Create(c.Root(), "empty", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadAll(fh)
	if err != nil || len(data) != 0 {
		t.Fatalf("empty read: %d bytes, %v", len(data), err)
	}
}
