package storage

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/oncrpc"
	"slice/internal/xdr"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewObjectStore()
	data := []byte("hello object storage")
	if err := s.WriteAt(1, 0, data, true); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	n, eof, err := s.ReadAt(1, 0, buf)
	if err != nil || n != len(data) || !eof {
		t.Fatalf("read: n=%d eof=%v err=%v", n, eof, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("content mismatch")
	}
}

func TestSparseHolesReadZero(t *testing.T) {
	s := NewObjectStore()
	// Write one block far into the object.
	if err := s.WriteAt(1, 5*BlockSize, []byte("tail"), true); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _, err := s.ReadAt(1, BlockSize, buf)
	if err != nil || n != 64 {
		t.Fatalf("hole read: n=%d err=%v", n, err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole byte %d = %d, want 0", i, b)
		}
	}
	if size, ok := s.Size(1); !ok || size != 5*BlockSize+4 {
		t.Fatalf("size = %d, want %d", size, 5*BlockSize+4)
	}
}

func TestReadPastEOF(t *testing.T) {
	s := NewObjectStore()
	_ = s.WriteAt(1, 0, []byte("xy"), true)
	buf := make([]byte, 8)
	n, eof, err := s.ReadAt(1, 100, buf)
	if err != nil || n != 0 || !eof {
		t.Fatalf("past-EOF read: n=%d eof=%v err=%v", n, eof, err)
	}
}

func TestReadMissingObject(t *testing.T) {
	s := NewObjectStore()
	if _, _, err := s.ReadAt(42, 0, make([]byte, 4)); err == nil {
		t.Fatal("read of missing object succeeded")
	}
}

func TestCrashDropsUncommitted(t *testing.T) {
	s := NewObjectStore()
	_ = s.WriteAt(1, 0, bytes.Repeat([]byte("d"), BlockSize), false)
	s.Commit(1)
	_ = s.WriteAt(1, BlockSize, bytes.Repeat([]byte("v"), BlockSize), false)
	v1 := s.Verifier()
	s.Crash()
	if s.Verifier() == v1 {
		t.Fatal("verifier unchanged across crash")
	}
	size, ok := s.Size(1)
	if !ok || size != BlockSize {
		t.Fatalf("size after crash = %d, want %d (committed prefix only)", size, BlockSize)
	}
	buf := make([]byte, BlockSize)
	n, _, err := s.ReadAt(1, 0, buf)
	if err != nil || n != BlockSize || buf[0] != 'd' {
		t.Fatalf("committed data lost: n=%d err=%v", n, err)
	}
}

func TestStableWriteSurvivesCrash(t *testing.T) {
	s := NewObjectStore()
	_ = s.WriteAt(1, 0, []byte("stable!!"), true)
	s.Crash()
	buf := make([]byte, 8)
	n, _, err := s.ReadAt(1, 0, buf)
	if err != nil || n == 0 {
		t.Fatalf("stable write lost in crash: n=%d err=%v", n, err)
	}
}

func TestTruncateShrinkAndZero(t *testing.T) {
	s := NewObjectStore()
	_ = s.WriteAt(1, 0, bytes.Repeat([]byte{0xFF}, 2*BlockSize), true)
	if err := s.Truncate(1, 100); err != nil {
		t.Fatal(err)
	}
	if size, _ := s.Size(1); size != 100 {
		t.Fatalf("size = %d", size)
	}
	// Growing back must expose zeros, not stale bytes.
	_ = s.Truncate(1, 200)
	buf := make([]byte, 100)
	_, _, _ = s.ReadAt(1, 100, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("stale byte %d = %x after shrink+grow", i, b)
		}
	}
}

func TestRemoveIdempotent(t *testing.T) {
	s := NewObjectStore()
	_ = s.WriteAt(1, 0, []byte("x"), true)
	s.Remove(1)
	s.Remove(1) // must not panic or error
	if _, ok := s.Size(1); ok {
		t.Fatal("object still present after remove")
	}
}

// TestWriteReadProperty: arbitrary writes at arbitrary offsets read back.
func TestWriteReadProperty(t *testing.T) {
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		s := NewObjectStore()
		if err := s.WriteAt(7, int64(off), data, true); err != nil {
			return false
		}
		buf := make([]byte, len(data))
		n, _, err := s.ReadAt(7, int64(off), buf)
		return err == nil && n == len(data) && bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlappingWrites(t *testing.T) {
	s := NewObjectStore()
	_ = s.WriteAt(1, 0, bytes.Repeat([]byte("a"), 100), true)
	_ = s.WriteAt(1, 50, bytes.Repeat([]byte("b"), 100), true)
	buf := make([]byte, 150)
	n, _, _ := s.ReadAt(1, 0, buf)
	if n != 150 {
		t.Fatalf("n = %d", n)
	}
	if buf[49] != 'a' || buf[50] != 'b' || buf[149] != 'b' {
		t.Fatalf("overlap wrong: %c %c %c", buf[49], buf[50], buf[149])
	}
}

func TestPrefetchDetection(t *testing.T) {
	s := NewObjectStore()
	_ = s.WriteAt(1, 0, make([]byte, 4*BlockSize), true)
	buf := make([]byte, BlockSize)
	for off := int64(0); off < 4*BlockSize; off += BlockSize {
		_, _, _ = s.ReadAt(1, off, buf)
	}
	if st := s.Stats(); st.PrefetchStarts < 3 {
		t.Fatalf("sequential stream not detected: %d prefetch starts", st.PrefetchStarts)
	}
}

// ---------------------------------------------------------- RPC node

func newNode(t *testing.T) (*Node, *oncrpc.Client) {
	t.Helper()
	n := netsim.New(netsim.Config{})
	sp, err := n.Bind(netsim.Addr{Host: 2, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(sp, NewObjectStore())
	cp, _ := n.Bind(netsim.Addr{Host: 1, Port: 100})
	cli := oncrpc.NewClient(cp, node.Addr(), oncrpc.ClientConfig{Timeout: 100 * time.Millisecond})
	t.Cleanup(func() { cli.Close(); node.Close() })
	return node, cli
}

func testFH(id uint64) fhandle.Handle {
	return fhandle.Handle{Volume: 1, FileID: id, Type: 1, Gen: 1}
}

func TestNodeWriteReadCommitRPC(t *testing.T) {
	_, cli := newNode(t)
	fh := testFH(5)

	wargs := nfsproto.WriteArgs{FH: fh, Offset: 0, Count: 5, Stable: nfsproto.Unstable, Data: []byte("12345")}
	body, err := cli.Call(nfsproto.Program, nfsproto.Version, uint32(nfsproto.ProcWrite), wargs.Encode)
	if err != nil {
		t.Fatal(err)
	}
	var wres nfsproto.WriteRes
	if err := wres.Decode(xdr.NewDecoder(body)); err != nil {
		t.Fatal(err)
	}
	if wres.Status != nfsproto.OK || wres.Count != 5 || wres.Committed != nfsproto.Unstable {
		t.Fatalf("write res %+v", wres)
	}
	if wres.Attr.Present {
		t.Fatal("storage node must not fabricate attributes; the µproxy patches them")
	}

	cargs := nfsproto.CommitArgs{FH: fh}
	body, err = cli.Call(nfsproto.Program, nfsproto.Version, uint32(nfsproto.ProcCommit), cargs.Encode)
	if err != nil {
		t.Fatal(err)
	}
	var cres nfsproto.CommitRes
	_ = cres.Decode(xdr.NewDecoder(body))
	if cres.Status != nfsproto.OK || cres.Verf == 0 {
		t.Fatalf("commit res %+v", cres)
	}

	rargs := nfsproto.ReadArgs{FH: fh, Offset: 0, Count: 5}
	body, err = cli.Call(nfsproto.Program, nfsproto.Version, uint32(nfsproto.ProcRead), rargs.Encode)
	if err != nil {
		t.Fatal(err)
	}
	var rres nfsproto.ReadRes
	_ = rres.Decode(xdr.NewDecoder(body))
	if rres.Status != nfsproto.OK || string(rres.Data) != "12345" {
		t.Fatalf("read res %+v", rres)
	}
}

func TestNodeObjProgramRPC(t *testing.T) {
	node, cli := newNode(t)
	fh := testFH(9)
	if err := node.Store().WriteAt(ObjectOf(fh), 0, []byte("to be removed"), true); err != nil {
		t.Fatal(err)
	}

	// Stat sees it.
	body, err := cli.Call(ObjProgram, ObjVersion, ObjProcStat, func(e *xdr.Encoder) { fh.Encode(e) })
	if err != nil {
		t.Fatal(err)
	}
	var st ObjStatRes
	if err := st.Decode(xdr.NewDecoder(body)); err != nil {
		t.Fatal(err)
	}
	if st.Status != nfsproto.OK || st.Size != 13 {
		t.Fatalf("stat %+v", st)
	}

	// Truncate.
	_, err = cli.Call(ObjProgram, ObjVersion, ObjProcTruncate, func(e *xdr.Encoder) {
		fh.Encode(e)
		e.PutUint64(4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if size, _ := node.Store().Size(ObjectOf(fh)); size != 4 {
		t.Fatalf("size after RPC truncate = %d", size)
	}

	// Remove.
	_, err = cli.Call(ObjProgram, ObjVersion, ObjProcRemove, func(e *xdr.Encoder) { fh.Encode(e) })
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := node.Store().Size(ObjectOf(fh)); ok {
		t.Fatal("object survived RPC remove")
	}

	// Stat now reports ENOENT.
	body, _ = cli.Call(ObjProgram, ObjVersion, ObjProcStat, func(e *xdr.Encoder) { fh.Encode(e) })
	_ = st.Decode(xdr.NewDecoder(body))
	if st.Status != nfsproto.ErrNoEnt {
		t.Fatalf("stat of removed object: %v", st.Status)
	}
}

func TestObjectOfIgnoresHints(t *testing.T) {
	a := testFH(3)
	b := a
	b.MirrorDegree = 2
	b.Flags = fhandle.FlagMirrored
	if ObjectOf(a) != ObjectOf(b) {
		t.Fatal("placement hints changed the backing object identity")
	}
}
