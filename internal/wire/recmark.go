// Package wire is the real-socket serving layer: it exposes a running
// Slice ensemble on TCP with standard ONC-RPC record marking (RFC 1831
// §10), an embedded portmapper (RFC 1833), and the MOUNT program, so a
// stock NFSv3-style client can discover, mount, and drive the sliced
// file service over an ordinary network.
//
// The TCP gateway plays the same trick as udpgate: each accepted
// connection is assigned a synthetic client address on the netsim
// fabric, and decoded records are sent toward the virtual server — so
// real-wire traffic traverses the interposed µproxy fleet exactly like
// in-fabric traffic. Unlike UDP, record-marked TCP has no 64 KiB
// datagram ceiling: whole stripe-unit READ/WRITE bodies ride a single
// record, fragmented and reassembled at the marking layer.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"slice/internal/netsim"
)

const (
	// MaxRecord bounds one reassembled RPC record. It comfortably covers
	// the largest READ/WRITE body (xdr.MaxOpaque = 1 MiB) plus headers.
	MaxRecord = 1<<20 + 4096

	// DefaultFragSize is the fragment size writers cut records into.
	// 64 KiB keeps any single fragment within the pool's mid classes and
	// exercises multi-fragment reassembly on every jumbo transfer.
	DefaultFragSize = 64 << 10

	// lastFrag is the record-marking terminal bit (RFC 1831 §10).
	lastFrag = 0x80000000
)

// ErrRecordTooLarge indicates a record beyond MaxRecord; the connection
// carrying it is unrecoverable (framing cannot be resynchronized).
var ErrRecordTooLarge = errors.New("wire: record exceeds maximum size")

// readRecord reads one record-marked RPC message from r, reassembling
// fragments into a single pooled buffer with hdrRoom bytes reserved at
// the front (for a netsim pseudo header). The caller owns the result and
// returns it with netsim.FreeBuf. A clean EOF before the first byte of a
// record returns io.EOF; EOF mid-record returns io.ErrUnexpectedEOF.
func readRecord(r io.Reader, hdrRoom int) ([]byte, error) {
	var fh [4]byte
	var buf []byte
	total := 0
	for {
		if _, err := io.ReadFull(r, fh[:]); err != nil {
			if buf != nil {
				netsim.FreeBuf(buf)
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
			}
			return nil, err
		}
		v := binary.BigEndian.Uint32(fh[:])
		last := v&lastFrag != 0
		flen := int(v &^ lastFrag)
		if flen == 0 && !last {
			netsim.FreeBuf(buf)
			return nil, fmt.Errorf("wire: zero-length non-terminal fragment")
		}
		if total+flen > MaxRecord {
			netsim.FreeBuf(buf)
			return nil, ErrRecordTooLarge
		}
		need := hdrRoom + total + flen
		switch {
		case buf == nil:
			buf = netsim.GetBuf(need)
		case need > cap(buf):
			grown := netsim.GetBuf(need)
			copy(grown, buf)
			netsim.FreeBuf(buf)
			buf = grown
		default:
			buf = buf[:need]
		}
		if _, err := io.ReadFull(r, buf[hdrRoom+total:need]); err != nil {
			netsim.FreeBuf(buf)
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		total += flen
		if last {
			return buf, nil
		}
	}
}

// writeRecord writes payload to w as one record-marked message, cut into
// fragments of at most fragSize bytes (DefaultFragSize if <= 0). Callers
// pass a buffered writer and flush once per burst, so consecutive small
// records coalesce into one TCP write.
func writeRecord(w io.Writer, payload []byte, fragSize int) error {
	if fragSize <= 0 {
		fragSize = DefaultFragSize
	}
	if len(payload) > MaxRecord {
		return ErrRecordTooLarge
	}
	var fh [4]byte
	off := 0
	for {
		n := len(payload) - off
		last := n <= fragSize
		if !last {
			n = fragSize
		}
		v := uint32(n)
		if last {
			v |= lastFrag
		}
		binary.BigEndian.PutUint32(fh[:], v)
		if _, err := w.Write(fh[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload[off : off+n]); err != nil {
			return err
		}
		off += n
		if last {
			return nil
		}
	}
}
