package replica

import (
	"bytes"
	"strings"
	"testing"

	"slice/internal/netsim"
	"slice/internal/oncrpc"
	"slice/internal/xdr"
)

// fakeTarget is a ResyncTarget over a plain map (the real one is
// storage.ObjectStore, which imports this package and so cannot be used
// here).
type fakeTarget struct {
	objs map[uint64][]byte
}

func (f *fakeTarget) Truncate(id, size uint64) error {
	b := make([]byte, size)
	copy(b, f.objs[id])
	f.objs[id] = b
	return nil
}

func (f *fakeTarget) WriteAt(id uint64, off uint64, p []byte) error {
	copy(f.objs[id][off:], p)
	return nil
}

// fakePeer serves the replica-peer program from an in-memory object map,
// with the real wire encoding: paged List, chunked Read, bearer-token
// checks, and a set of ids that vanish between List and Read.
type fakePeer struct {
	token uint64
	ids   []uint64 // ascending
	objs  map[uint64][]byte
	gone  map[uint64]bool // listed, then PeerNoObj on read
}

func (p *fakePeer) ServeRPC(call oncrpc.Call, _ netsim.Addr) (func(*xdr.Encoder), uint32) {
	if call.Program != PeerProgram || call.Version != PeerVersion {
		return nil, oncrpc.AcceptProgUnavail
	}
	d := xdr.NewDecoder(call.Body)
	token, _ := d.Uint64()
	if token != p.token {
		return func(e *xdr.Encoder) { e.PutUint32(PeerDenied) }, oncrpc.AcceptSuccess
	}
	switch call.Proc {
	case PeerProcList:
		after, _ := d.Uint64()
		max, _ := d.Uint32()
		if max > PeerListMax {
			max = PeerListMax
		}
		var page []uint64
		for _, id := range p.ids {
			if id > after {
				page = append(page, id)
				if uint32(len(page)) == max {
					break
				}
			}
		}
		return func(e *xdr.Encoder) {
			e.PutUint32(PeerOK)
			e.PutUint32(uint32(len(page)))
			for _, id := range page {
				e.PutUint64(id)
				e.PutUint64(uint64(len(p.objs[id])))
			}
		}, oncrpc.AcceptSuccess
	case PeerProcRead:
		id, _ := d.Uint64()
		off, _ := d.Uint64()
		count, _ := d.Uint32()
		if p.gone[id] {
			return func(e *xdr.Encoder) { e.PutUint32(PeerNoObj) }, oncrpc.AcceptSuccess
		}
		data := p.objs[id]
		if off > uint64(len(data)) {
			off = uint64(len(data))
		}
		end := off + uint64(count)
		if end > uint64(len(data)) {
			end = uint64(len(data))
		}
		return func(e *xdr.Encoder) {
			e.PutUint32(PeerOK)
			e.PutOpaque(data[off:end])
		}, oncrpc.AcceptSuccess
	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}

func startPeer(t *testing.T, peer *fakePeer) *oncrpc.Client {
	t.Helper()
	n := netsim.New(netsim.Config{})
	sp, err := n.Bind(netsim.Addr{Host: 1, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	srv := oncrpc.NewServer(sp, peer)
	t.Cleanup(srv.Close)
	cp, err := n.Bind(netsim.Addr{Host: 2, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := oncrpc.NewClient(cp, srv.Addr(), oncrpc.ClientConfig{})
	t.Cleanup(c.Close)
	return c
}

// TestResyncPullsEverything drives Resync against a peer holding more
// objects than one List page (forcing the paging loop), a multi-chunk
// object (forcing the pipelined read window to drain mid-object), a
// zero-length object, and an object removed between List and Read. The
// rebuilt store must be byte-identical for everything that survived.
func TestResyncPullsEverything(t *testing.T) {
	peer := &fakePeer{
		token: PeerToken([]byte("array-key")),
		objs:  make(map[uint64][]byte),
		gone:  map[uint64]bool{7: true},
	}
	big := make([]byte, 3*PeerChunk+100)
	for i := range big {
		big[i] = byte(i * 31)
	}
	peer.objs[3] = big
	peer.objs[5] = nil            // zero-length: Truncate only, no reads
	peer.objs[7] = []byte("bye")  // listed, then PeerNoObj on every read
	peer.objs[9] = []byte("tiny") // single sub-chunk read
	// Pad past one List page so the ids > PeerListMax force a second page.
	for id := uint64(100); id < 100+PeerListMax; id++ {
		peer.objs[id] = nil
	}
	for id := range peer.objs {
		peer.ids = append(peer.ids, id)
	}
	for i := range peer.ids { // ascending, as ListAfter yields
		for j := i + 1; j < len(peer.ids); j++ {
			if peer.ids[j] < peer.ids[i] {
				peer.ids[i], peer.ids[j] = peer.ids[j], peer.ids[i]
			}
		}
	}

	c := startPeer(t, peer)
	dst := &fakeTarget{objs: make(map[uint64][]byte)}
	st, err := Resync(c, peer.token, 4, dst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != len(peer.ids) {
		t.Fatalf("resynced %d objects, want %d", st.Objects, len(peer.ids))
	}
	if want := int64(len(big) + len("tiny")); st.Bytes != want {
		t.Fatalf("resynced %d bytes, want %d", st.Bytes, want)
	}
	if !bytes.Equal(dst.objs[3], big) {
		t.Fatal("multi-chunk object not byte-identical after resync")
	}
	if got := dst.objs[5]; len(got) != 0 {
		t.Fatalf("zero-length object came back with %d bytes", len(got))
	}
	if got := dst.objs[7]; !bytes.Equal(got, make([]byte, 3)) {
		// Listed size 3, but every read said gone: the hole stays zeroed
		// (the remove that raced the resync also fanned out here).
		t.Fatalf("removed-under-us object = %q, want zeroes", got)
	}
	if !bytes.Equal(dst.objs[9], []byte("tiny")) {
		t.Fatalf("small object = %q after resync", dst.objs[9])
	}
}

// TestResyncBadToken proves the bearer check: a wrong token is refused
// at the first List, before any object data moves.
func TestResyncBadToken(t *testing.T) {
	peer := &fakePeer{
		token: PeerToken([]byte("array-key")),
		ids:   []uint64{1},
		objs:  map[uint64][]byte{1: []byte("secret")},
	}
	c := startPeer(t, peer)
	dst := &fakeTarget{objs: make(map[uint64][]byte)}
	_, err := Resync(c, PeerToken([]byte("wrong-key")), 4, dst)
	if err == nil || !strings.Contains(err.Error(), "peer status 1") {
		t.Fatalf("resync with wrong token: err = %v, want PeerDenied", err)
	}
	if len(dst.objs) != 0 {
		t.Fatal("denied resync still wrote objects")
	}
}

// TestPeerTokenDerivation pins the token semantics: nil key means open
// (zero token), and distinct keys derive distinct tokens.
func TestPeerTokenDerivation(t *testing.T) {
	if PeerToken(nil) != 0 {
		t.Fatal("nil key must derive the zero (open) token")
	}
	if PeerToken([]byte("a")) == PeerToken([]byte("b")) {
		t.Fatal("distinct keys derived the same token")
	}
	if PeerToken([]byte("a")) == 0 {
		t.Fatal("a real key derived the open token")
	}
}
