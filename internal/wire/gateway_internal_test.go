package wire

import (
	"net"
	"testing"
	"time"

	"slice/internal/netsim"
)

// TestGatewaySyntheticHostsUniqueAcrossGateways pins the process-wide
// synthetic-host allocator: two fleet members' gateways share one fabric,
// and independent per-gateway counters used to hand their first
// connections the same fabric host. Combined with netsim's
// ephemeral-port recycling that could give two distinct clients
// identical {host, port} source addresses — which poisons the servers'
// duplicate-request caches across clients.
func TestGatewaySyntheticHostsUniqueAcrossGateways(t *testing.T) {
	n := netsim.New(netsim.Config{})
	virtual := netsim.Addr{Host: 100, Port: 2049}
	if _, err := n.Bind(virtual); err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for i := 0; i < 2; i++ {
		gw, err := NewGateway("127.0.0.1:0", n, virtual)
		if err != nil {
			t.Fatal(err)
		}
		defer gw.Close()
		for j := 0; j < 2; j++ {
			tcp, err := net.Dial("tcp", gw.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer tcp.Close()
		}
		deadline := time.Now().Add(2 * time.Second)
		for gw.Stats().Conns < 2 {
			if time.Now().After(deadline) {
				t.Fatalf("gateway %d admitted %d conns, want 2", i, gw.Stats().Conns)
			}
			time.Sleep(time.Millisecond)
		}
		gw.mu.Lock()
		for c := range gw.conns {
			host := c.port.Addr().Host
			if host <= synthHostBase {
				t.Errorf("gateway %d conn host %#x outside synthetic range (base %#x)", i, host, uint32(synthHostBase))
			}
			if seen[host] {
				t.Errorf("gateway %d handed out host %#x twice across the fleet", i, host)
			}
			seen[host] = true
		}
		gw.mu.Unlock()
	}
	if len(seen) != 4 {
		t.Fatalf("distinct synthetic hosts = %d, want 4", len(seen))
	}
}
