package route

import (
	"math/rand"
	"testing"

	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/replica"
)

// addrN is the i'th address of the addrs(n) helper in route_test.go.
func addrN(i int) netsim.Addr {
	return netsim.Addr{Host: uint32(10 + i), Port: 2049}
}

func TestBeginCommit(t *testing.T) {
	phys := addrs(4)
	tbl := NewTable(12, phys)
	v0 := tbl.Version()

	next, err := PlanGrow(tbl.Physical(), []netsim.Addr{addrN(4), addrN(5)}, 12)
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := tbl.Begin(next, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Transitioning() || tbl.PendingEpoch() != epoch {
		t.Fatalf("transition not open: %v %d", tbl.Transitioning(), tbl.PendingEpoch())
	}
	if tbl.Version() <= v0 {
		t.Fatalf("Begin must bump version: %d <= %d", tbl.Version(), v0)
	}
	// Reads stay on the old binding until commit.
	for key := uint64(0); key < 100; key++ {
		a, err := tbl.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if a == addrN(4) || a == addrN(5) {
			t.Fatalf("key %d routed to a pending-only node before commit", key)
		}
	}
	if tbl.PendingNumLogical() != 12 {
		t.Fatalf("pending logical = %d", tbl.PendingNumLogical())
	}
	// A second Begin while one is open must fail.
	if _, err := tbl.Begin(next, nil); err != ErrTransitionPending {
		t.Fatalf("second Begin: %v", err)
	}
	// Commit with the wrong epoch must refuse.
	if tbl.Commit(epoch + 7) {
		t.Fatal("Commit accepted a wrong epoch")
	}
	vPre := tbl.Version()
	if !tbl.Commit(epoch) {
		t.Fatal("Commit refused the right epoch")
	}
	if tbl.Transitioning() || tbl.Version() <= vPre {
		t.Fatal("commit did not close the transition with a version bump")
	}
	// The new nodes now own sites.
	seen := map[netsim.Addr]bool{}
	for _, a := range tbl.Physical() {
		seen[a] = true
	}
	if !seen[addrN(4)] || !seen[addrN(5)] {
		t.Fatal("committed binding is missing the added nodes")
	}
	// Commit/Abort after close are no-ops.
	if tbl.Commit(epoch) || tbl.Abort(epoch) {
		t.Fatal("closed transition still commits/aborts")
	}
}

func TestAbortKeepsBinding(t *testing.T) {
	tbl := NewTable(8, addrs(4))
	before := tbl.Physical()
	next, err := PlanGrow(before, []netsim.Addr{addrN(9)}, 8)
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := tbl.Begin(next, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Abort(epoch + 1) {
		t.Fatal("Abort accepted a wrong epoch")
	}
	if !tbl.Abort(epoch) {
		t.Fatal("Abort refused the right epoch")
	}
	if tbl.Transitioning() {
		t.Fatal("transition still open after abort")
	}
	after := tbl.Physical()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("site %d moved across an abort: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestSwapAbandonsTransition(t *testing.T) {
	tbl := NewTable(8, addrs(4))
	next, _ := PlanGrow(tbl.Physical(), []netsim.Addr{addrN(7)}, 8)
	epoch, err := tbl.Begin(next, nil)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Swap(addrs(3)) // failover rebind mid-transition
	if tbl.Transitioning() {
		t.Fatal("Swap left the transition open")
	}
	if tbl.Commit(epoch) {
		t.Fatal("stale driver committed across a Swap")
	}
}

// ownerCounts tallies sites per node.
func ownerCounts(sites []netsim.Addr) map[netsim.Addr]int {
	c := make(map[netsim.Addr]int)
	for _, a := range sites {
		c[a]++
	}
	return c
}

// TestPlanGrowMinimalMovement: for random topologies, PlanGrow moves
// exactly the provable minimum number of sites (every node keeps
// min(owned, quota) of its sites) and lands balanced within one site.
func TestPlanGrowMinimalMovement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		oldN := 1 + rng.Intn(8)
		addN := 1 + rng.Intn(6)
		logical := oldN + rng.Intn(24)
		cur := NewTable(logical, addrs(oldN)).Physical()
		add := make([]netsim.Addr, addN)
		for i := range add {
			add[i] = addrN(oldN + i)
		}
		next, err := PlanGrow(cur, add, logical)
		if err != nil {
			t.Fatal(err)
		}
		if len(next) < len(cur) {
			t.Fatalf("trial %d: plan shrank the site list", trial)
		}
		n := oldN + addN
		base, extra := len(next)/n, len(next)%n
		counts := ownerCounts(next)
		// Lower bound: sites old nodes certainly cannot keep (anything
		// beyond the generous base+1 share).
		minMoves := 0
		for _, c := range ownerCounts(cur) {
			over := c - (base + 1)
			if extra == 0 {
				over = c - base
			}
			if over > 0 {
				minMoves += over
			}
		}
		moves := 0
		for i := range cur {
			if next[i] != cur[i] {
				moves++
			}
		}
		for a, c := range counts {
			if c < base || c > base+1 {
				t.Fatalf("trial %d: node %v owns %d sites, want %d..%d", trial, a, c, base, base+1)
			}
		}
		// Upper bound on moves: the total quota the new nodes must
		// receive plus rounding slack — never more than the whole
		// new-node share plus one per old node.
		maxMoves := addN*(base+1) + oldN
		if moves > maxMoves {
			t.Fatalf("trial %d: %d sites moved, bound %d (old=%d add=%d logical=%d)",
				trial, moves, maxMoves, oldN, addN, logical)
		}
		if moves < minMoves {
			t.Fatalf("trial %d: impossible: %d moves < lower bound %d", trial, moves, minMoves)
		}
		// A moved site must land on a node that needed it (a new node,
		// or an old node under its floor share) — never shuffled
		// between two comfortable survivors.
		oldCounts := ownerCounts(cur)
		for i := range cur {
			if next[i] == cur[i] {
				continue
			}
			if oldCounts[next[i]] > base {
				t.Fatalf("trial %d: site %d moved to already-full node %v", trial, i, next[i])
			}
		}
	}
}

// TestPlanGrow4to6Exact pins the acceptance-criteria shape: growing
// 4→6 nodes at 12 logical sites moves exactly 4 sites — the 1/3 of the
// key space the two new nodes must own, i.e. the consistent-hash
// minimum.
func TestPlanGrow4to6Exact(t *testing.T) {
	cur := NewTable(12, addrs(4)).Physical()
	next, err := PlanGrow(cur, []netsim.Addr{addrN(4), addrN(5)}, 12)
	if err != nil {
		t.Fatal(err)
	}
	moves := 0
	for i := range cur {
		if next[i] != cur[i] {
			moves++
		}
	}
	if moves != 4 {
		t.Fatalf("grow 4→6 over 12 sites moved %d sites, want exactly 4", moves)
	}
	counts := ownerCounts(next)
	for a, c := range counts {
		if c != 2 {
			t.Fatalf("node %v owns %d sites, want 2", a, c)
		}
	}
}

func TestPlanShrinkMovesOnlyRemoved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		oldN := 2 + rng.Intn(8)
		logical := oldN + rng.Intn(24)
		cur := NewTable(logical, addrs(oldN)).Physical()
		removeN := 1 + rng.Intn(oldN-1)
		remove := make([]netsim.Addr, removeN)
		for i := range remove {
			remove[i] = addrN(i) // remove a prefix
		}
		next, err := PlanShrink(cur, remove)
		if err != nil {
			t.Fatal(err)
		}
		removed := map[netsim.Addr]bool{}
		for _, a := range remove {
			removed[a] = true
		}
		for i := range cur {
			if removed[next[i]] {
				t.Fatalf("trial %d: site %d still bound to removed node", trial, i)
			}
			if next[i] != cur[i] && !removed[cur[i]] {
				t.Fatalf("trial %d: survivor site %d moved (%v -> %v)", trial, i, cur[i], next[i])
			}
		}
	}
	if _, err := PlanShrink(addrs(2), addrs(2)); err == nil {
		t.Fatal("shrinking to zero nodes must error")
	}
}

// TestRingMinimalMovement: keys only ever move to added nodes on grow,
// and only away from removed nodes on shrink.
func TestRingMinimalMovement(t *testing.T) {
	tbl := NewRingTable(addrs(4))
	if !tbl.Ring() {
		t.Fatal("not a ring table")
	}
	before := make(map[uint64]netsim.Addr)
	for key := uint64(0); key < 5000; key++ {
		a, err := tbl.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		before[key] = a
	}
	epoch, err := tbl.Begin(addrs(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for key := uint64(0); key < 5000; key++ {
		// Pending placement: only keys landing on the new nodes' arcs move.
		site := tbl.PendingSite(key)
		a, err := tbl.PendingLookup(site)
		if err != nil {
			t.Fatal(err)
		}
		if a != before[key] {
			moved++
			if a != addrN(4) && a != addrN(5) {
				t.Fatalf("key %d moved between survivors: %v -> %v", key, before[key], a)
			}
		}
	}
	if moved == 0 {
		t.Fatal("grow moved no keys at all")
	}
	// The moved share should be roughly the new nodes' fair share (2/6
	// = 33%); 1.2× of it bounds consistent-hash imbalance.
	if frac := float64(moved) / 5000; frac > 1.2*(2.0/6.0) {
		t.Fatalf("ring grow moved %.1f%% of keys, above 1.2× the 33%% minimum", 100*frac)
	}
	if !tbl.Commit(epoch) {
		t.Fatal("commit failed")
	}

	// Shrink back: only node 5's keys move.
	next, err := tbl.Begin(addrs(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	after := make(map[uint64]netsim.Addr)
	for key := uint64(0); key < 5000; key++ {
		a, _ := tbl.Route(key)
		after[key] = a
	}
	if !tbl.Commit(next) {
		t.Fatal("commit failed")
	}
	for key := uint64(0); key < 5000; key++ {
		a, _ := tbl.Route(key)
		if a != after[key] && after[key] != addrN(5) {
			t.Fatalf("key %d moved between survivors on shrink", key)
		}
	}
}

// TestRingBalance: the per-node share of a ring table stays within a
// modest factor of the mean (Chord's "roughly equal share").
func TestRingBalance(t *testing.T) {
	tbl := NewRingTable(addrs(6))
	counts := make(map[netsim.Addr]int)
	const keys = 60000
	for key := uint64(0); key < keys; key++ {
		a, err := tbl.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("only %d of 6 nodes own keys", len(counts))
	}
	mean := float64(keys) / 6
	for a, c := range counts {
		if r := float64(c) / mean; r > 1.45 || r < 0.55 {
			t.Fatalf("node %v owns %.2f× the mean share", a, r)
		}
	}
}

func TestRingSwapRebuildsRing(t *testing.T) {
	tbl := NewRingTable(addrs(4))
	tbl.Swap(addrs(6))
	if !tbl.Ring() {
		t.Fatal("Swap dropped ring placement")
	}
	counts := make(map[netsim.Addr]int)
	for key := uint64(0); key < 6000; key++ {
		a, err := tbl.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("only %d of 6 nodes own keys after Swap", len(counts))
	}
}

// TestWriteTargetsUnionDuringTransition: writes fan out to both
// bindings while a transition is open, and collapse to the new binding
// after commit.
func TestWriteTargetsUnionDuringTransition(t *testing.T) {
	tbl := NewTable(12, addrs(4))
	pol := NewIOPolicy(nil, tbl)
	fh := fhandle.Handle{FileID: 0x1234}

	oldT, err := pol.WriteTargets(fh, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(oldT) != 1 {
		t.Fatalf("unmirrored pre-transition write has %d targets", len(oldT))
	}
	next, err := PlanGrow(tbl.Physical(), []netsim.Addr{addrN(4), addrN(5)}, 12)
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := tbl.Begin(next, nil)
	if err != nil {
		t.Fatal(err)
	}
	during, err := pol.WriteTargets(fh, 3)
	if err != nil {
		t.Fatal(err)
	}
	hasOld := false
	for _, a := range during {
		if a == oldT[0] {
			hasOld = true
		}
	}
	if !hasOld {
		t.Fatalf("transition write targets %v dropped the old target %v", during, oldT[0])
	}
	site := tbl.PendingSite(fhandle.HandleKey(fh) + 3)
	want, err := tbl.PendingLookup(site)
	if err != nil {
		t.Fatal(err)
	}
	hasNew := false
	for _, a := range during {
		if a == want {
			hasNew = true
		}
	}
	if !hasNew {
		t.Fatalf("transition write targets %v missing pending target %v", during, want)
	}
	if !tbl.Commit(epoch) {
		t.Fatal("commit failed")
	}
	after, err := pol.WriteTargets(fh, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || after[0] != want {
		t.Fatalf("post-commit targets %v, want just %v", after, want)
	}
}

// TestWriteTargetsPendingReplicas: a transition carrying a replica map
// expands pending primaries through it.
func TestWriteTargetsPendingReplicas(t *testing.T) {
	nodes := addrs(2) // group primaries today
	tbl := NewTable(2, nodes)
	pol := NewIOPolicy(nil, tbl)

	// Pending world: 4 nodes in 2 groups of 2.
	all := addrs(4)
	reps := replica.NewMap(2, all)
	next := []netsim.Addr{all[0], all[2]} // primaries of the two groups
	if _, err := tbl.Begin(next, reps); err != nil {
		t.Fatal(err)
	}
	if tbl.PendingReplicas() != reps {
		t.Fatal("PendingReplicas lost the map")
	}
	fh := fhandle.Handle{FileID: 7}
	ts, err := pol.WriteTargets(fh, 0)
	if err != nil {
		t.Fatal(err)
	}
	site := tbl.PendingSite(fhandle.HandleKey(fh))
	primary, _ := tbl.PendingLookup(site)
	g, ok := reps.GroupOf(primary)
	if !ok {
		t.Fatalf("pending primary %v has no group", primary)
	}
	for _, m := range g.Members {
		found := false
		for _, a := range ts {
			if a == m {
				found = true
			}
		}
		if !found {
			t.Fatalf("write targets %v missing pending group member %v", ts, m)
		}
	}
}

// FuzzTableTransition drives random grow/shrink/begin/commit/abort/swap
// sequences over both table kinds and asserts the structural
// invariants: routing always resolves, versions only grow, the epoch
// guard holds, and pending state exists exactly while a transition is
// open.
func FuzzTableTransition(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{1, 0, 0, 1, 5, 2, 9})
	f.Add([]byte{0, 3, 0, 4, 1, 1, 2, 2, 0, 1})
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) == 0 {
			return
		}
		var tbl *Table
		if prog[0]%2 == 0 {
			tbl = NewTable(12, addrs(4))
		} else {
			tbl = NewRingTable(addrs(4))
		}
		nextNode := 4
		lastVersion := tbl.Version()
		var openEpoch uint64
		for _, b := range prog[1:] {
			switch b % 5 {
			case 0: // begin a grow
				var next []netsim.Addr
				var err error
				if tbl.Ring() {
					next = append(tbl.Physical(), addrN(nextNode))
				} else {
					next, err = PlanGrow(tbl.Physical(), []netsim.Addr{addrN(nextNode)}, tbl.NumLogical())
					if err != nil {
						t.Fatal(err)
					}
				}
				epoch, err := tbl.Begin(next, nil)
				if err == nil {
					if openEpoch != 0 {
						t.Fatal("Begin succeeded while a transition was open")
					}
					openEpoch = epoch
					nextNode++
				} else if err == ErrTransitionPending && openEpoch == 0 {
					t.Fatal("Begin refused with no transition open")
				}
			case 1: // commit
				ok := tbl.Commit(openEpoch)
				if ok != (openEpoch != 0) {
					t.Fatalf("Commit(%d) = %v with open=%v", openEpoch, ok, openEpoch != 0)
				}
				openEpoch = 0
			case 2: // abort
				ok := tbl.Abort(openEpoch)
				if ok != (openEpoch != 0) {
					t.Fatalf("Abort(%d) = %v with open=%v", openEpoch, ok, openEpoch != 0)
				}
				openEpoch = 0
			case 3: // failover swap abandons any transition
				tbl.Swap(addrs(3 + int(b%4)))
				openEpoch = 0
			case 4: // route some keys
				for key := uint64(b); key < uint64(b)+16; key++ {
					if _, err := tbl.Route(key); err != nil {
						t.Fatalf("Route(%d): %v", key, err)
					}
				}
			}
			if v := tbl.Version(); v < lastVersion {
				t.Fatalf("version went backwards: %d -> %d", lastVersion, v)
			} else {
				lastVersion = v
			}
			if tbl.Transitioning() != (openEpoch != 0) {
				t.Fatalf("Transitioning=%v but openEpoch=%d", tbl.Transitioning(), openEpoch)
			}
			if tbl.Transitioning() {
				if _, err := tbl.PendingLookup(tbl.PendingSite(99)); err != nil {
					t.Fatalf("pending lookup failed mid-transition: %v", err)
				}
				if len(tbl.PendingPhysical()) == 0 {
					t.Fatal("open transition with no pending physical nodes")
				}
			} else if tbl.PendingEpoch() != 0 || tbl.PendingPhysical() != nil {
				t.Fatal("closed transition left pending state behind")
			}
			if tbl.NumLogical() == 0 {
				t.Fatal("table lost all sites")
			}
		}
	})
}
