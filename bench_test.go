// Benchmarks regenerating each table and figure of the paper (§5). Every
// benchmark reports the experiment's headline metric with b.ReportMetric,
// so `go test -bench=.` doubles as a compact reproduction run. For the
// full formatted report, use `go run ./cmd/slicebench -exp all`.
package slice_test

import (
	"fmt"
	"testing"

	"slice/internal/ensemble"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/route"
	"slice/internal/sim"
	"slice/internal/workload"
	"slice/internal/xdr"
)

// BenchmarkTable2BulkIO regenerates Table 2: bulk I/O bandwidth per
// workload, single-client and at saturation.
func BenchmarkTable2BulkIO(b *testing.B) {
	rows := []struct {
		name     string
		write    bool
		mirrored bool
	}{
		{"read", false, false},
		{"write", true, false},
		{"read-mirrored", false, true},
		{"write-mirrored", true, true},
	}
	for _, r := range rows {
		b.Run(r.name+"/single-client", func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				res := sim.RunBulk(sim.BulkConfig{
					StorageNodes: 8, Clients: 1,
					Write: r.write, Mirrored: r.mirrored,
					BytesPerClient: 64 << 20,
				})
				mbps = res.PerClientMBps
			}
			b.ReportMetric(mbps, "MB/s")
		})
		b.Run(r.name+"/saturation", func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				res := sim.RunBulk(sim.BulkConfig{
					StorageNodes: 8, Clients: 16, Tuned: true,
					Write: r.write, Mirrored: r.mirrored,
					BytesPerClient: 32 << 20,
				})
				mbps = res.AggregateMBps
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkTable3ProxyCPU regenerates Table 3: per-stage µproxy CPU cost
// measured on the live implementation under the untar workload.
func BenchmarkTable3ProxyCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := ensemble.New(ensemble.Config{
			StorageNodes: 2, DirServers: 2, SmallFileServers: 1,
			Coordinator: true, NameKind: route.MkdirSwitching, MkdirP: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		c, err := e.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if _, err := workload.Untar(c, c.Root(), workload.UntarConfig{Entries: 500}); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		st := e.Proxy.Stats()
		if pkts := st.Requests + st.Responses; pkts > 0 {
			b.ReportMetric(float64(st.InterceptNS)/float64(pkts), "intercept-ns/pkt")
			b.ReportMetric(float64(st.DecodeNS)/float64(pkts), "decode-ns/pkt")
			b.ReportMetric(float64(st.RewriteNS)/float64(pkts), "rewrite-ns/pkt")
			b.ReportMetric(float64(st.SoftStateNS)/float64(pkts), "softstate-ns/pkt")
		}
		c.Close()
		e.Close()
		b.StartTimer()
	}
}

// BenchmarkFig3DirScaling regenerates Figure 3: mean untar completion
// time for the N-MFS baseline and Slice-N at a representative load.
func BenchmarkFig3DirScaling(b *testing.B) {
	const procs = 16
	configs := []struct {
		name     string
		servers  int
		baseline bool
	}{
		{"N-MFS", 1, true},
		{"Slice-1", 1, false},
		{"Slice-2", 2, false},
		{"Slice-4", 4, false},
	}
	for _, cfg := range configs {
		b.Run(fmt.Sprintf("%s/procs=%d", cfg.name, procs), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res := sim.RunUntar(sim.UntarConfig{
					DirServers: cfg.servers, Baseline: cfg.baseline,
					Processes: procs, Kind: route.MkdirSwitching,
					P: 1 / float64(cfg.servers),
				})
				lat = res.MeanLatency
			}
			b.ReportMetric(lat, "untar-sec")
		})
	}
}

// BenchmarkFig4Affinity regenerates Figure 4: untar latency across the
// directory-affinity sweep at 16 processes on 4 directory servers.
func BenchmarkFig4Affinity(b *testing.B) {
	for _, affinity := range []float64{0, 0.4, 0.8, 1.0} {
		b.Run(fmt.Sprintf("affinity=%.0f%%", affinity*100), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res := sim.RunUntar(sim.UntarConfig{
					DirServers: 4, Processes: 16, ClientNodes: 4,
					Kind: route.MkdirSwitching, P: 1 - affinity,
				})
				lat = res.MeanLatency
			}
			b.ReportMetric(lat, "untar-sec")
		})
	}
}

// BenchmarkFig5SfsThroughput regenerates Figure 5: SPECsfs97 delivered
// IOPS at saturation for each configuration.
func BenchmarkFig5SfsThroughput(b *testing.B) {
	configs := []struct {
		name     string
		nodes    int
		baseline bool
	}{
		{"NFS", 1, true},
		{"Slice-1", 1, false},
		{"Slice-2", 2, false},
		{"Slice-4", 4, false},
		{"Slice-8", 8, false},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var iops float64
			for i := 0; i < b.N; i++ {
				res := sim.RunSfs(sim.SfsConfig{
					StorageNodes: cfg.nodes, Baseline: cfg.baseline,
					OfferedIOPS: 9000, Duration: 20, Warmup: 4,
				})
				iops = res.DeliveredIOPS
			}
			b.ReportMetric(iops, "IOPS")
		})
	}
}

// BenchmarkFig6SfsLatency regenerates Figure 6: mean SPECsfs latency at a
// below-saturation and a past-cache-overflow operating point.
func BenchmarkFig6SfsLatency(b *testing.B) {
	points := []struct {
		name    string
		nodes   int
		offered float64
	}{
		{"Slice-8/light", 8, 500},
		{"Slice-8/overflowed", 8, 4000},
		{"Slice-8/near-saturation", 8, 6000},
	}
	for _, p := range points {
		b.Run(p.name, func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				res := sim.RunSfs(sim.SfsConfig{
					StorageNodes: p.nodes, OfferedIOPS: p.offered,
					Duration: 20, Warmup: 4,
				})
				ms = res.MeanLatencyMs
			}
			b.ReportMetric(ms, "latency-ms")
		})
	}
}

// --- Micro-benchmarks of the µproxy-critical code paths -----------------

// BenchmarkProxyDecode measures the packet-decode stage in isolation: the
// dominant µproxy cost in Table 3.
func BenchmarkProxyDecode(b *testing.B) {
	fh := fhandle.Handle{Volume: 1, FileID: 42, Type: 1, CellKey: 42, Site: 1, Gen: 1}
	args := nfsproto.LookupArgs{Dir: fh, Name: "src"}
	e := xdr.NewEncoder(128)
	args.Encode(e)
	body := e.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nfsproto.ParseCall(nfsproto.ProcLookup, body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNameKey measures the MD5 fingerprint that keys both hash
// chains and the name-hashing policy.
func BenchmarkNameKey(b *testing.B) {
	fh := fhandle.Handle{Volume: 1, FileID: 42, Gen: 1}
	for i := 0; i < b.N; i++ {
		fhandle.NameKey(fh, "some-file-name.c")
	}
}

func benchAddrs(n int) []netsim.Addr {
	out := make([]netsim.Addr, n)
	for i := range out {
		out[i] = netsim.Addr{Host: uint32(10 + i), Port: 2049}
	}
	return out
}

// BenchmarkRouteIO measures bulk-I/O target selection.
func BenchmarkRouteIO(b *testing.B) {
	table := route.NewTable(8, benchAddrs(8))
	policy := route.NewIOPolicy(nil, table)
	fh := fhandle.Handle{Volume: 1, FileID: 7, Gen: 1}
	for i := 0; i < b.N; i++ {
		if _, err := policy.ReadTarget(fh, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveUntarThroughput measures end-to-end live-stack throughput
// for the name-intensive workload (ops/sec through the full µproxy and
// directory-server path).
func BenchmarkLiveUntarThroughput(b *testing.B) {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: 2, DirServers: 2, SmallFileServers: 1,
		Coordinator: true, NameKind: route.MkdirSwitching, MkdirP: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	ops := 0
	for i := 0; i < b.N; i++ {
		st, err := workload.Untar(c, c.Root(), workload.UntarConfig{
			Entries: 200, Prefix: fmt.Sprintf("bench%d", i),
		})
		if err != nil {
			b.Fatal(err)
		}
		ops += st.NFSOps
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "nfs-ops/s")
}
