package nfsproto

// MOUNT v3 and portmapper v2 message definitions.
//
// These two side programs are what make the file service reachable from
// the outside world: a client asks the portmapper (RFC 1833, program
// 100000) where a program listens, then asks MOUNT (RFC 1813 appendix I,
// program 100005) for the root file handle. Message layouts follow the
// RFCs with the same deliberate simplifications as the file protocol:
// handles are fixed 32-byte tokens, and MNT results carry no auth-flavor
// list.

import (
	"errors"

	"slice/internal/fhandle"
	"slice/internal/xdr"
)

// ErrBadMessage indicates a structurally invalid MOUNT or portmap
// message (oversized path, runaway linked list).
var ErrBadMessage = errors.New("nfsproto: bad mount/portmap message")

// Portmapper program constants (RFC 1833).
const (
	PortmapProgram = 100000
	PortmapVersion = 2

	PortmapProcNull    = 0
	PortmapProcGetPort = 3
	PortmapProcDump    = 4

	// Transport protocol numbers used in portmap mappings.
	IPProtoTCP = 6
	IPProtoUDP = 17
)

// MOUNT program constants (RFC 1813 appendix I).
const (
	MountProgram = 100005
	MountVersion = 3

	MountProcNull    = 0
	MountProcMnt     = 1
	MountProcDump    = 2
	MountProcUmnt    = 3
	MountProcUmntAll = 4
	MountProcExport  = 5

	// MountPathLen bounds a dirpath argument (MNTPATHLEN).
	MountPathLen = 1024
)

// maxListEntries bounds XDR linked-list decoding so a hostile stream
// cannot drive an unbounded loop.
const maxListEntries = 4096

// Mapping is one portmap registration; it doubles as the GETPORT
// argument (Port is ignored there).
type Mapping struct {
	Prog uint32
	Vers uint32
	Prot uint32 // IPProtoTCP or IPProtoUDP
	Port uint32
}

// Encode implements Msg.
func (m *Mapping) Encode(e *xdr.Encoder) {
	e.PutUint32(m.Prog)
	e.PutUint32(m.Vers)
	e.PutUint32(m.Prot)
	e.PutUint32(m.Port)
}

// Decode implements Msg.
func (m *Mapping) Decode(d *xdr.Decoder) (err error) {
	if m.Prog, err = d.Uint32(); err != nil {
		return err
	}
	if m.Vers, err = d.Uint32(); err != nil {
		return err
	}
	if m.Prot, err = d.Uint32(); err != nil {
		return err
	}
	m.Port, err = d.Uint32()
	return err
}

// GetPortRes is the GETPORT result: the port the queried program listens
// on, or 0 if it is not registered.
type GetPortRes struct {
	Port uint32
}

// Encode implements Msg.
func (m *GetPortRes) Encode(e *xdr.Encoder) { e.PutUint32(m.Port) }

// Decode implements Msg.
func (m *GetPortRes) Decode(d *xdr.Decoder) (err error) {
	m.Port, err = d.Uint32()
	return err
}

// DumpRes is the DUMP result: every current mapping, encoded as the
// RFC's XDR linked list (bool follows, then the entry).
type DumpRes struct {
	Mappings []Mapping
}

// Encode implements Msg.
func (m *DumpRes) Encode(e *xdr.Encoder) {
	for i := range m.Mappings {
		e.PutBool(true)
		m.Mappings[i].Encode(e)
	}
	e.PutBool(false)
}

// Decode implements Msg.
func (m *DumpRes) Decode(d *xdr.Decoder) error {
	m.Mappings = m.Mappings[:0]
	for {
		more, err := d.Bool()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		if len(m.Mappings) >= maxListEntries {
			return ErrBadMessage
		}
		var e Mapping
		if err := e.Decode(d); err != nil {
			return err
		}
		m.Mappings = append(m.Mappings, e)
	}
}

// MountPathArgs is the dirpath argument of MNT and UMNT.
type MountPathArgs struct {
	Path string
}

// Encode implements Msg.
func (m *MountPathArgs) Encode(e *xdr.Encoder) { e.PutString(m.Path) }

// Decode implements Msg.
func (m *MountPathArgs) Decode(d *xdr.Decoder) error {
	s, err := d.String()
	if err != nil {
		return err
	}
	if len(s) > MountPathLen {
		return ErrBadMessage
	}
	m.Path = s
	return nil
}

// MountMntRes is the MNT result: the volume's root file handle.
type MountMntRes struct {
	Status Status
	FH     fhandle.Handle
}

// Encode implements Msg.
func (m *MountMntRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(m.Status))
	if m.Status == OK {
		m.FH.Encode(e)
	}
}

// Decode implements Msg.
func (m *MountMntRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if m.Status != OK {
		return nil
	}
	m.FH, err = fhandle.Decode(d)
	return err
}

// ExportEntry is one exported directory and the groups allowed to mount
// it (empty means world-mountable).
type ExportEntry struct {
	Dir    string
	Groups []string
}

// ExportRes is the EXPORT result: the export list as nested XDR linked
// lists.
type ExportRes struct {
	Entries []ExportEntry
}

// Encode implements Msg.
func (m *ExportRes) Encode(e *xdr.Encoder) {
	for i := range m.Entries {
		e.PutBool(true)
		e.PutString(m.Entries[i].Dir)
		for _, g := range m.Entries[i].Groups {
			e.PutBool(true)
			e.PutString(g)
		}
		e.PutBool(false)
	}
	e.PutBool(false)
}

// Decode implements Msg.
func (m *ExportRes) Decode(d *xdr.Decoder) error {
	m.Entries = m.Entries[:0]
	for {
		more, err := d.Bool()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		if len(m.Entries) >= maxListEntries {
			return ErrBadMessage
		}
		var ent ExportEntry
		if ent.Dir, err = d.String(); err != nil {
			return err
		}
		if len(ent.Dir) > MountPathLen {
			return ErrBadMessage
		}
		for {
			g, err := d.Bool()
			if err != nil {
				return err
			}
			if !g {
				break
			}
			if len(ent.Groups) >= maxListEntries {
				return ErrBadMessage
			}
			s, err := d.String()
			if err != nil {
				return err
			}
			ent.Groups = append(ent.Groups, s)
		}
		m.Entries = append(m.Entries, ent)
	}
}
