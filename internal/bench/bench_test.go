package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The experiment drivers must run cleanly and report every row they
// promise; the numeric shape assertions live in internal/sim's tests.

func runExp(t *testing.T, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(name, &buf); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return buf.String()
}

func TestTable2Report(t *testing.T) {
	out := runExp(t, "table2")
	for _, want := range []string{"read", "write", "read-mirrored", "write-mirrored", "MB/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Report(t *testing.T) {
	out := runExp(t, "table3")
	for _, want := range []string{
		"packet interception", "packet decode", "redirection/rewriting",
		"soft state logic", "ns/packet",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Report(t *testing.T) {
	out := runExp(t, "fig3")
	for _, want := range []string{"N-MFS", "Slice-1", "Slice-2", "Slice-4", "processes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3 output missing %q", want)
		}
	}
}

func TestFig4Report(t *testing.T) {
	out := runExp(t, "fig4")
	for _, want := range []string{"affinity", "100%", "16 proc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 output missing %q", want)
		}
	}
}

func TestAblationReports(t *testing.T) {
	for _, name := range []string{
		"ablation-hash", "ablation-threshold",
		"ablation-placement", "ablation-affinity-policy",
	} {
		out := runExp(t, name)
		if !strings.Contains(out, "Ablation") {
			t.Fatalf("%s output missing banner", name)
		}
	}
}

func TestSfsReports(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5/fig6 sweeps take several seconds")
	}
	out := runExp(t, "fig5")
	for _, want := range []string{"NFS", "Slice-8", "offered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5 output missing %q", want)
		}
	}
	out = runExp(t, "fig6")
	if !strings.Contains(out, "Celerra") {
		t.Fatal("fig6 output missing the Celerra reference")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableFormatter(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable("a", "bb")
	tb.addf("x|1")
	tb.addf("longer|2")
	tb.write(&buf)
	out := buf.String()
	if !strings.Contains(out, "longer") || !strings.Contains(out, "bb") {
		t.Fatalf("formatter output:\n%s", out)
	}
}

func TestLiveReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_live.json")
	var buf bytes.Buffer
	if err := Live(&buf, out); err != nil {
		t.Fatalf("live: %v", err)
	}
	text := buf.String()
	for _, want := range []string{"phase untar", "phase sfs-mix", "phase dd", "p99"} {
		if !strings.Contains(text, want) {
			t.Fatalf("live output missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Phases []struct {
			Name      string `json:"name"`
			Ops       int    `json:"ops"`
			OpClasses map[string]struct {
				Count uint64 `json:"count"`
				P50   uint64 `json:"p50_ns"`
				P99   uint64 `json:"p99_ns"`
			} `json:"op_classes"`
			Hops map[string]struct {
				Count uint64 `json:"count"`
				P50   uint64 `json:"p50_ns"`
			} `json:"hops"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_live.json: %v", err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(rep.Phases))
	}
	wantHops := map[string]string{"untar": "dirsrv", "dd": "storage"}
	for _, ph := range rep.Phases {
		if ph.Ops == 0 {
			t.Errorf("phase %s: zero ops", ph.Name)
		}
		if len(ph.OpClasses) == 0 {
			t.Errorf("phase %s: no op classes", ph.Name)
		}
		for name, h := range ph.OpClasses {
			if h.Count > 0 && h.P99 == 0 {
				t.Errorf("phase %s op %s: zero p99", ph.Name, name)
			}
		}
		if hop, ok := wantHops[ph.Name]; ok {
			if h, ok := ph.Hops[hop]; !ok || h.Count == 0 {
				t.Errorf("phase %s: no %s hop samples", ph.Name, hop)
			}
		}
	}
}
