// Command benchgate gates benchmark results against the checked-in
// baseline. Pipe `go test -bench` output through it:
//
//	go test -run xxx -bench 'ProxyForward|CacheHit' -benchmem \
//	    -count 6 -cpu 1,4 . | benchgate -baseline BENCH_proxy.json
//
// Exit status 1 means a gated benchmark regressed (or disappeared):
// allocations above the baseline fail outright, ns/op beyond
// baseline×tolerance fails. Repeated -count runs are reduced to their
// minimum before comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"slice/internal/benchgate"
)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_proxy.json", "baseline JSON to gate against")
		input     = flag.String("input", "-", "bench output to check (- = stdin)")
		tolerance = flag.Float64("tolerance", 2.5, "allowed ns/op factor over baseline")
	)
	flag.Parse()

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	base, err := benchgate.ParseBaseline(data)
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	// Echo the raw bench output while parsing it, so the CI log keeps the
	// full run next to the verdict table.
	results, err := benchgate.ParseBench(io.TeeReader(in, os.Stdout))
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := benchgate.Check(os.Stdout, base, results, benchgate.Config{Tolerance: *tolerance}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
