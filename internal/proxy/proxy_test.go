package proxy_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"slice/internal/ensemble"
	"slice/internal/netsim"
	"slice/internal/route"
)

func newEnsemble(t *testing.T, mutate func(*ensemble.Config)) *ensemble.Ensemble {
	t.Helper()
	cfg := ensemble.Config{
		StorageNodes:     4,
		DirServers:       2,
		SmallFileServers: 1,
		Coordinator:      true,
		NameKind:         route.MkdirSwitching,
		MkdirP:           0.5,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := ensemble.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestStageAccounting(t *testing.T) {
	e := newEnsemble(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, _, err := c.Create(c.Root(), "f", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(fh, []byte("stats")); err != nil {
		t.Fatal(err)
	}
	st := e.Proxy.Stats()
	if st.Requests == 0 || st.Responses == 0 {
		t.Fatalf("no traffic accounted: %+v", st)
	}
	if st.DecodeNS == 0 || st.RewriteNS == 0 || st.SoftStateNS == 0 || st.InterceptNS == 0 {
		t.Fatalf("a processing stage reported zero time: %+v", st)
	}
	if st.Absorbed == 0 {
		t.Fatalf("commit not absorbed: %+v", st)
	}
	if st.TotalNS() < st.DecodeNS {
		t.Fatal("TotalNS inconsistent")
	}
}

// TestIOResponsesCarryAttributes: storage and small-file replies have no
// attributes; the client must still observe a populated attribute block,
// patched in by the µproxy (§4.1).
func TestIOResponsesCarryAttributes(t *testing.T) {
	e := newEnsemble(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, at0, err := c.Create(c.Root(), "attrs", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if at0.FileID == 0 {
		t.Fatal("create returned empty attrs")
	}
	payload := bytes.Repeat([]byte("a"), 100*1024) // crosses the threshold
	if _, err := c.Write(fh, 0, payload, false); err != nil {
		t.Fatal(err)
	}
	// GETATTR before any commit: the directory server does not know the
	// size yet, but the µproxy cache does and overlays it.
	at, err := c.GetAttr(fh)
	if err != nil {
		t.Fatal(err)
	}
	if at.Size != uint64(len(payload)) {
		t.Fatalf("observed size %d before writeback, want %d (proxy overlay)", at.Size, len(payload))
	}
	// After the proxy pushes attributes, the directory server agrees.
	e.Proxy.WritebackAttrs()
	e.Proxy.DropSoftState() // force GETATTR to reflect the dir server
	at, err = c.GetAttr(fh)
	if err != nil {
		t.Fatal(err)
	}
	if at.Size != uint64(len(payload)) {
		t.Fatalf("directory server size %d after writeback, want %d", at.Size, len(payload))
	}
}

func TestMirroredWriteFanout(t *testing.T) {
	e := newEnsemble(t, func(cfg *ensemble.Config) { cfg.MirrorDegree = 2 })
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, _, err := c.Create(c.Root(), "m", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128*1024)
	if err := c.WriteFile(fh, data); err != nil {
		t.Fatal(err)
	}
	// Above-threshold bytes appear twice across the array.
	var bulk uint64
	for _, sn := range e.Storage {
		bulk += sn.Store().Stats().BytesWritten
	}
	want := uint64(2 * (128 - 64) * 1024)
	if bulk < want {
		t.Fatalf("bulk bytes %d, want >= %d for two replicas", bulk, want)
	}
}

func TestBlockMapRouting(t *testing.T) {
	e := newEnsemble(t, func(cfg *ensemble.Config) { cfg.UseBlockMaps = true })
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, _, err := c.Create(c.Root(), "mapped", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if !fh.Mapped() {
		t.Fatal("handle not marked mapped")
	}
	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i >> 8)
	}
	if err := c.WriteFile(fh, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, _, err := c.Read(fh, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mapped-file round trip mismatch")
	}
	if e.Coord.Stats().MapAllocs == 0 {
		t.Fatal("coordinator allocated no block-map entries")
	}
	// Routing must follow the map even after the proxy loses its cache.
	e.Proxy.DropSoftState()
	if _, _, err := c.Read(fh, 64*1024, got[:32*1024]); err != nil {
		t.Fatalf("read after map-cache loss: %v", err)
	}
	if e.Coord.Stats().MapFetches < 2 {
		t.Fatal("proxy did not refetch the map after losing soft state")
	}
}

// TestRetransmissionsAcrossLossyNetwork drives the full stack over a
// dropping fabric: end-to-end retransmission must recover everything.
func TestRetransmissionsAcrossLossyNetwork(t *testing.T) {
	e := newEnsemble(t, func(cfg *ensemble.Config) {
		cfg.Net = netsim.Config{LossRate: 0.05, Seed: 11}
	})
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dir, err := c.MkdirAll(c.Root(), "lossy")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		fh, _, err := c.Create(dir, string(rune('a'+i)), 0o644, true)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if err := c.WriteFile(fh, []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	ents, err := c.ReadDir(dir)
	if err != nil || len(ents) != 10 {
		t.Fatalf("readdir over lossy net: %d entries, %v", len(ents), err)
	}
}

func TestUnrelatedTrafficPassesThrough(t *testing.T) {
	e := newEnsemble(t, nil)
	// Two endpoints exchanging non-NFS datagrams across the tapped
	// fabric must be left alone by the µproxy.
	a, err := e.Net.Bind(netsim.Addr{Host: 150, Port: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Net.Bind(netsim.Addr{Host: 151, Port: 7})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("not rpc traffic at all......")
	if err := a.SendTo(b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	d, err := b.Recv(time.Second)
	if err != nil {
		t.Fatalf("bystander traffic not delivered: %v", err)
	}
	if !bytes.Equal(netsim.Payload(d), msg) {
		t.Fatal("bystander traffic modified")
	}
}

func TestProxyCloseDetaches(t *testing.T) {
	e := newEnsemble(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Create(c.Root(), "pre", 0o644, true); err != nil {
		t.Fatal(err)
	}
	e.Proxy.Close()
	// With the µproxy gone, calls to the virtual server time out: nothing
	// else answers that address.
	if err := c.Null(); err == nil {
		t.Fatal("virtual server answered without the µproxy")
	}
}

func TestCachedAttrExposure(t *testing.T) {
	e := newEnsemble(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, _, err := c.Create(c.Root(), "cached", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fh, 0, []byte("12345"), false); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(fh); err != nil { // write-behind: force the WRITE out
		t.Fatal(err)
	}
	ok, size := e.Proxy.CachedAttr(fh)
	if !ok || size != 5 {
		t.Fatalf("cached attr: ok=%v size=%d", ok, size)
	}
	e.Proxy.DropSoftState()
	if ok, _ := e.Proxy.CachedAttr(fh); ok {
		t.Fatal("cache survived DropSoftState")
	}
}

// TestAttrCacheEvictionWritesBack: a bounded attribute cache must push
// dirty entries to the directory servers when they are evicted (§4.1).
func TestAttrCacheEvictionWritesBack(t *testing.T) {
	e := newEnsemble(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var fhs []struct {
		name string
		size int
	}
	handles := make(map[string]uint64)
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("evict%02d", i)
		fh, _, err := c.Create(c.Root(), name, 0o644, true)
		if err != nil {
			t.Fatal(err)
		}
		size := 100 + i
		if _, err := c.Write(fh, 0, bytes.Repeat([]byte("e"), size), false); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(fh); err != nil { // write-behind: land it before eviction
			t.Fatal(err)
		}
		fhs = append(fhs, struct {
			name string
			size int
		}{name, size})
		handles[name] = fh.FileID
	}

	// Push everything (dirty flush + capacity eviction) and drop the
	// cache so GETATTR reflects only the directory servers' state.
	e.Proxy.WritebackAttrs()
	e.Proxy.DropSoftState()

	for _, f := range fhs {
		fh, at, err := c.Lookup(c.Root(), f.name)
		if err != nil {
			t.Fatalf("lookup %s: %v", f.name, err)
		}
		if fh.FileID != handles[f.name] {
			t.Fatalf("%s: handle changed", f.name)
		}
		if at.Size != uint64(f.size) {
			t.Fatalf("%s: directory server size %d, want %d (writeback lost)",
				f.name, at.Size, f.size)
		}
	}
}
