package netsim

import (
	"bytes"
	"testing"
	"time"
)

func TestBufPoolRecycles(t *testing.T) {
	d := GetBuf(100)
	if len(d) != 100 || cap(d) != 256 {
		t.Fatalf("len=%d cap=%d, want 100/256", len(d), cap(d))
	}
	for i := range d {
		d[i] = 0xAB
	}
	FreeBuf(d)
	// The next same-class Get should not corrupt sizing even if it reuses
	// the freed buffer.
	e := GetBuf(200)
	if len(e) != 200 || cap(e) != 256 {
		t.Fatalf("len=%d cap=%d, want 200/256", len(e), cap(e))
	}
	FreeBuf(e)
}

func TestBufPoolClasses(t *testing.T) {
	for _, n := range []int{1, 256, 257, 4096, 5000, 64 << 10, MaxDatagram} {
		d := GetBuf(n)
		if len(d) != n {
			t.Fatalf("GetBuf(%d): len %d", n, len(d))
		}
		if cls := classOf(cap(d)); cls < 0 {
			t.Fatalf("GetBuf(%d): cap %d is not a pool class", n, cap(d))
		}
		FreeBuf(d)
	}
	// Oversized requests fall back to plain allocation and are ignored on
	// free.
	big := GetBuf(MaxDatagram + 1)
	if len(big) != MaxDatagram+1 {
		t.Fatal("oversized GetBuf wrong length")
	}
	FreeBuf(big)
	// Foreign buffers are ignored, not pooled.
	FreeBuf(make([]byte, 10, 33))
	FreeBuf(nil)
}

// TestPooledRoundTrip checks that a datagram built from the pool survives
// the full send/deliver/recv cycle intact and can be freed by the
// receiver.
func TestPooledRoundTrip(t *testing.T) {
	n := New(Config{})
	a, _ := n.Bind(Addr{Host: 1, Port: 1})
	b, _ := n.Bind(Addr{Host: 2, Port: 2})
	payload := bytes.Repeat([]byte("pool"), 32)
	for i := 0; i < 100; i++ {
		if err := a.SendTo(b.Addr(), payload); err != nil {
			t.Fatal(err)
		}
		d, err := b.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(Payload(d), payload) {
			t.Fatalf("iteration %d: payload corrupted", i)
		}
		FreeBuf(d)
	}
	if st := PoolStats(); st.Gets == 0 {
		t.Fatal("pool unused")
	}
}
