package netsim

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestBuildParseRoundTrip(t *testing.T) {
	src := Addr{Host: 0x0A000001, Port: 1234}
	dst := Addr{Host: 0x0A000002, Port: 2049}
	payload := []byte("request body")
	d, err := Build(src, dst, payload)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Parse(d)
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != src || h.Dst != dst {
		t.Fatalf("header %+v, want src %v dst %v", h, src, dst)
	}
	if !bytes.Equal(Payload(d), payload) {
		t.Fatal("payload mismatch")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	d, _ := Build(Addr{Host: 1, Port: 1}, Addr{Host: 2, Port: 2}, []byte("data"))
	d[HeaderSize] ^= 0xFF
	if _, err := Parse(d); err == nil {
		t.Fatal("corrupt payload passed checksum verification")
	}
	if _, err := Parse(d[:4]); err == nil {
		t.Fatal("short datagram accepted")
	}
}

func TestBuildRejectsOversize(t *testing.T) {
	if _, err := Build(Addr{}, Addr{}, make([]byte, MaxDatagram)); err == nil {
		t.Fatal("oversized datagram accepted")
	}
}

// TestJumboDatagramRoundTrip pins the fix for the length-field wrap bug: the
// header's length used to be 16 bits wide, so any datagram above 64 KiB —
// nominally allowed by MaxDatagram — wrapped its length and failed Parse.
func TestJumboDatagramRoundTrip(t *testing.T) {
	for _, size := range []int{64*1024 - HeaderSize, 64 * 1024, 96 * 1024, 128 * 1024, MaxDatagram - HeaderSize} {
		payload := bytes.Repeat([]byte{0xA5}, size)
		d, err := Build(Addr{Host: 1, Port: 1}, Addr{Host: 2, Port: 2}, payload)
		if err != nil {
			t.Fatalf("Build(%d bytes): %v", size, err)
		}
		h, err := Parse(d)
		if err != nil {
			t.Fatalf("Parse(%d-byte payload): %v", size, err)
		}
		if int(h.Length) != HeaderSize+size {
			t.Fatalf("length %d, want %d", h.Length, HeaderSize+size)
		}
		if !bytes.Equal(Payload(d), payload) {
			t.Fatalf("payload mismatch at size %d", size)
		}
		FreeBuf(d)
	}
}

func TestTryRecv(t *testing.T) {
	n := New(Config{})
	a, _ := n.Bind(Addr{Host: 1, Port: 1})
	b, _ := n.Bind(Addr{Host: 2, Port: 2})
	if _, ok := b.TryRecv(); ok {
		t.Fatal("TryRecv returned a datagram from an empty queue")
	}
	_ = a.SendTo(b.Addr(), []byte("one"))
	_ = a.SendTo(b.Addr(), []byte("two"))
	d1, ok1 := b.TryRecv()
	d2, ok2 := b.TryRecv()
	if !ok1 || !ok2 || string(Payload(d1)) != "one" || string(Payload(d2)) != "two" {
		t.Fatalf("TryRecv drained %v/%v", ok1, ok2)
	}
	if _, ok := b.TryRecv(); ok {
		t.Fatal("TryRecv returned a third datagram")
	}
}

// TestRewritePreservesChecksum is the property the µproxy's redirection
// depends on: after an in-place address rewrite with incremental checksum
// update, the datagram still verifies.
func TestRewritePreservesChecksum(t *testing.T) {
	d, _ := Build(Addr{Host: 1, Port: 10}, Addr{Host: 2, Port: 20}, []byte("hello world, this is nfs traffic"))
	RewriteDst(d, Addr{Host: 77, Port: 2049})
	if !VerifyChecksum(d) {
		t.Fatal("checksum invalid after RewriteDst")
	}
	h, err := Parse(d)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dst != (Addr{Host: 77, Port: 2049}) {
		t.Fatalf("dst = %v after rewrite", h.Dst)
	}
	RewriteSrc(d, Addr{Host: 88, Port: 9})
	if !VerifyChecksum(d) {
		t.Fatal("checksum invalid after RewriteSrc")
	}
	h, _ = Parse(d)
	if h.Src != (Addr{Host: 88, Port: 9}) {
		t.Fatalf("src = %v after rewrite", h.Src)
	}
}

func TestSendRecv(t *testing.T) {
	n := New(Config{})
	a, err := n.Bind(Addr{Host: 1, Port: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Bind(Addr{Host: 2, Port: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendTo(b.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	d, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(Payload(d)) != "ping" {
		t.Fatalf("payload %q", Payload(d))
	}
}

func TestRecvTimeout(t *testing.T) {
	n := New(Config{})
	p, _ := n.Bind(Addr{Host: 1, Port: 1})
	if _, err := p.Recv(10 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestDoubleBindRejected(t *testing.T) {
	n := New(Config{})
	if _, err := n.Bind(Addr{Host: 1, Port: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Bind(Addr{Host: 1, Port: 1}); err == nil {
		t.Fatal("double bind succeeded")
	}
}

func TestClosedPortRecv(t *testing.T) {
	n := New(Config{})
	p, _ := n.Bind(Addr{Host: 1, Port: 1})
	p.Close()
	if _, err := p.Recv(0); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Re-binding the freed address succeeds.
	if _, err := n.Bind(Addr{Host: 1, Port: 1}); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestBindAnyAllocatesDistinctPorts(t *testing.T) {
	n := New(Config{})
	seen := make(map[Addr]bool)
	for i := 0; i < 20; i++ {
		p, err := n.BindAny(7)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.Addr()] {
			t.Fatalf("duplicate ephemeral address %v", p.Addr())
		}
		seen[p.Addr()] = true
	}
}

func TestUnboundDestinationDropped(t *testing.T) {
	n := New(Config{})
	a, _ := n.Bind(Addr{Host: 1, Port: 1})
	if err := a.SendTo(Addr{Host: 9, Port: 9}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s := n.Stats(); s.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", s.Dropped)
	}
}

func TestTapDrop(t *testing.T) {
	n := New(Config{})
	a, _ := n.Bind(Addr{Host: 1, Port: 1})
	b, _ := n.Bind(Addr{Host: 2, Port: 2})
	n.AddTap(TapFunc(func(d []byte) Verdict { return Drop }))
	_ = a.SendTo(b.Addr(), []byte("blocked"))
	if _, err := b.Recv(20 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("datagram delivered despite dropping tap: %v", err)
	}
}

func TestTapConsumeAndInject(t *testing.T) {
	n := New(Config{})
	a, _ := n.Bind(Addr{Host: 1, Port: 1})
	b, _ := n.Bind(Addr{Host: 2, Port: 2})
	c, _ := n.Bind(Addr{Host: 3, Port: 3})
	// A redirecting tap: traffic for b is rewritten to c, like a µproxy.
	tap := TapFunc(func(d []byte) Verdict {
		h, err := Parse(d)
		if err != nil || h.Dst != b.Addr() {
			return Pass
		}
		RewriteDst(d, c.Addr())
		_ = n.Inject(d)
		return Consumed
	})
	tok := n.AddTap(tap)
	_ = a.SendTo(b.Addr(), []byte("redirect me"))
	d, err := c.Recv(time.Second)
	if err != nil {
		t.Fatalf("redirected datagram not delivered: %v", err)
	}
	if string(Payload(d)) != "redirect me" {
		t.Fatalf("payload %q", Payload(d))
	}
	if _, err := b.Recv(20 * time.Millisecond); err != ErrTimeout {
		t.Fatal("original destination also received the datagram")
	}
	// Removing the tap restores direct delivery.
	n.RemoveTap(tok)
	_ = a.SendTo(b.Addr(), []byte("direct"))
	if _, err := b.Recv(time.Second); err != nil {
		t.Fatalf("delivery after tap removal: %v", err)
	}
}

func TestLossRate(t *testing.T) {
	n := New(Config{LossRate: 0.5, Seed: 99})
	a, _ := n.Bind(Addr{Host: 1, Port: 1})
	b, _ := n.Bind(Addr{Host: 2, Port: 2})
	const total = 400
	for i := 0; i < total; i++ {
		_ = a.SendTo(b.Addr(), []byte("x"))
	}
	s := n.Stats()
	if s.Lost == 0 || s.Lost == total {
		t.Fatalf("lost %d of %d with 50%% loss", s.Lost, total)
	}
	if got := float64(s.Lost) / total; got < 0.35 || got > 0.65 {
		t.Fatalf("loss fraction %.2f far from configured 0.5", got)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(Config{Latency: 30 * time.Millisecond})
	a, _ := n.Bind(Addr{Host: 1, Port: 1})
	b, _ := n.Bind(Addr{Host: 2, Port: 2})
	start := time.Now()
	_ = a.SendTo(b.Addr(), []byte("slow"))
	if _, err := b.Recv(time.Second); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("delivered in %v despite 30ms latency", el)
	}
}

func TestQueueOverrunDrops(t *testing.T) {
	n := New(Config{QueueLen: 4})
	a, _ := n.Bind(Addr{Host: 1, Port: 1})
	b, _ := n.Bind(Addr{Host: 2, Port: 2})
	for i := 0; i < 10; i++ {
		_ = a.SendTo(b.Addr(), []byte("x"))
	}
	s := n.Stats()
	if s.Delivered != 4 || s.Dropped != 6 {
		t.Fatalf("delivered %d dropped %d, want 4/6", s.Delivered, s.Dropped)
	}
}

func TestConcurrentSendersNoRace(t *testing.T) {
	// Queue sized for the full burst: this test checks races, not drops.
	n := New(Config{QueueLen: 1000})
	dst, _ := n.Bind(Addr{Host: 99, Port: 1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		p, err := n.BindAny(uint32(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p *Port) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = p.SendTo(dst.Addr(), []byte("concurrent"))
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 800; i++ {
			if _, err := dst.Recv(time.Second); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
}

func TestAddrString(t *testing.T) {
	a := Addr{Host: 0x0A000102, Port: 2049}
	if a.String() != "10.0.1.2:2049" {
		t.Fatalf("String = %q", a.String())
	}
}

// FuzzParseDatagram ensures the datagram parser never panics on hostile
// bytes and rejects anything whose checksum does not verify.
func FuzzParseDatagram(f *testing.F) {
	good, _ := Build(Addr{Host: 1, Port: 2}, Addr{Host: 3, Port: 4}, []byte("payload"))
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize))
	f.Fuzz(func(t *testing.T, d []byte) {
		h, err := Parse(d)
		if err == nil {
			// Anything that parses must re-verify after a round trip of
			// rewrites (the µproxy invariant).
			RewriteDst(d, Addr{Host: 9, Port: 9})
			RewriteSrc(d, Addr{Host: 8, Port: 8})
			if !VerifyChecksum(d) {
				t.Fatalf("rewrite broke checksum for header %+v", h)
			}
		}
	})
}

func TestRewriteUint64PreservesChecksum(t *testing.T) {
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	d, _ := Build(Addr{Host: 1, Port: 1}, Addr{Host: 2, Port: 2}, payload)
	if err := RewriteUint64(d, HeaderSize+16, 0xDEADBEEFCAFEF00D); err != nil {
		t.Fatal(err)
	}
	if !VerifyChecksum(d) {
		t.Fatal("checksum broken by RewriteUint64")
	}
	got := Payload(d)[16:24]
	want := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xCA, 0xFE, 0xF0, 0x0D}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %x, want %x", i, got[i], want[i])
		}
	}
	// Bounds and alignment are enforced.
	if err := RewriteUint64(d, len(d)-4, 0); err == nil {
		t.Fatal("out-of-bounds rewrite accepted")
	}
	if err := RewriteUint64(d, HeaderSize+1, 0); err == nil {
		t.Fatal("odd-offset rewrite accepted")
	}
}
