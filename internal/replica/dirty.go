package replica

import (
	"sync"
	"sync/atomic"

	"slice/internal/fhandle"
)

// dirtyShards is the dirty-set shard count (power of two), matching the
// µproxy's other soft-state tables.
const dirtyShards = 16

// DirtySet tracks, per object, how many WRITEs are in flight to the
// object's replica group. It is µproxy soft state: a writer marks the
// object before fanning the WRITE out, and clears its mark only when
// every replica has acknowledged, so Dirty()==false proves all members
// hold identical acknowledged contents and a read may go to any of them.
//
// The count (rather than a set bit) is what makes overlapping writes
// safe: the object stays dirty until the LAST in-flight write drains.
// Failure handling leans on over-approximation in one direction only —
// a mark that can no longer be cleared (fanned-out copy lost with its
// pending record, proxy failover re-marking via client retransmission)
// merely pins reads to the primary until the next COMMIT forces the
// entry clear; a clear without an all-replica ack would be a
// consistency bug, so nothing ever clears eagerly.
type DirtySet struct {
	shards [dirtyShards]dirtyShard
	total  atomic.Int64
}

type dirtyShard struct {
	mu sync.Mutex
	m  map[fhandle.Key]int32
}

// NewDirtySet returns an empty dirty set.
func NewDirtySet() *DirtySet {
	d := &DirtySet{}
	for i := range d.shards {
		d.shards[i].m = make(map[fhandle.Key]int32)
	}
	return d
}

// dirtyHash mixes a handle identity exactly like the µproxy cache
// shards do (Fibonacci hashing; the high bits carry the entropy).
func dirtyHash(k fhandle.Key) uint64 {
	h := k.FileID ^ uint64(k.Volume)<<32 ^ uint64(k.Gen)
	return h * 0x9E3779B97F4A7C15
}

func (d *DirtySet) shard(k fhandle.Key) *dirtyShard {
	return &d.shards[int(dirtyHash(k)>>60)&(dirtyShards-1)]
}

// MarkWrite records one more in-flight write on the object. The caller
// must pair it with exactly one ClearWrite (or rely on a later COMMIT's
// ForceClear): mark once per pending-request record, not per
// transmission, so retransmissions of a tracked request do not inflate
// the count.
func (d *DirtySet) MarkWrite(k fhandle.Key) {
	s := d.shard(k)
	s.mu.Lock()
	if s.m[k]++; s.m[k] == 1 {
		d.total.Add(1)
	}
	s.mu.Unlock()
}

// ClearWrite records that one in-flight write fully acknowledged on
// every replica. The object becomes clean when the last one drains.
func (d *DirtySet) ClearWrite(k fhandle.Key) {
	s := d.shard(k)
	s.mu.Lock()
	if c, ok := s.m[k]; ok {
		if c <= 1 {
			delete(s.m, k)
			d.total.Add(-1)
		} else {
			s.m[k] = c - 1
		}
	}
	s.mu.Unlock()
}

// ForceClear drops the object's entry whatever its count: the COMMIT
// barrier. A client only commits after draining its own write window,
// and the µproxy only calls this once every replica acknowledged the
// COMMIT, so any count still standing belongs to writes whose pending
// records died with a failed replica or a crashed fleet member — their
// data is nevertheless covered by the committed state.
func (d *DirtySet) ForceClear(k fhandle.Key) {
	s := d.shard(k)
	s.mu.Lock()
	if _, ok := s.m[k]; ok {
		delete(s.m, k)
		d.total.Add(-1)
	}
	s.mu.Unlock()
}

// Dirty reports whether the object has writes in flight (or marks no
// completed write ever cleared).
func (d *DirtySet) Dirty(k fhandle.Key) bool {
	s := d.shard(k)
	s.mu.Lock()
	_, ok := s.m[k]
	s.mu.Unlock()
	return ok
}

// Len returns the number of dirty objects.
func (d *DirtySet) Len() int { return int(d.total.Load()) }

// Reset empties the set (soft-state drop).
func (d *DirtySet) Reset() {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		d.total.Add(-int64(len(s.m)))
		s.m = make(map[fhandle.Key]int32)
		s.mu.Unlock()
	}
}
