// Package xdr implements the subset of XDR (RFC 1832) external data
// representation used by the Slice wire protocols.
//
// All quantities are encoded big-endian in multiples of four bytes, as in
// ONC RPC. Opaque data is padded to a four-byte boundary. The Encoder and
// Decoder operate on byte slices rather than streams because the µproxy
// must decode and rewrite datagrams in place without copying.
package xdr

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the decoder. ErrShortBuffer indicates truncated input;
// ErrBadValue indicates structurally invalid input (e.g. a boolean that is
// neither 0 nor 1, or a string length beyond the decoder limit).
var (
	ErrShortBuffer = errors.New("xdr: short buffer")
	ErrBadValue    = errors.New("xdr: bad value")
)

// MaxOpaque bounds variable-length opaque and string fields to guard
// against hostile or corrupt length prefixes. 1 MiB comfortably exceeds the
// largest NFS transfer the prototype uses (64 KiB writes plus headers).
const MaxOpaque = 1 << 20

// pad returns the number of zero bytes needed to round n up to 4.
func pad(n int) int { return (4 - n&3) & 3 }

// Encoder appends XDR-encoded values to an internal buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder whose buffer has the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The slice is owned by the encoder and
// is invalidated by further Put calls.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents but keeps the allocation.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint32 appends a 32-bit unsigned integer.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// PutInt32 appends a 32-bit signed integer.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint64 appends a 64-bit unsigned integer (XDR hyper).
func (e *Encoder) PutUint64(v uint64) {
	e.PutUint32(uint32(v >> 32))
	e.PutUint32(uint32(v))
}

// PutInt64 appends a 64-bit signed integer.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutBool appends an XDR boolean (0 or 1).
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFixedOpaque appends fixed-length opaque data (no length prefix),
// padded to a four-byte boundary.
func (e *Encoder) PutFixedOpaque(p []byte) {
	e.buf = append(e.buf, p...)
	for i := 0; i < pad(len(p)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutOpaque appends variable-length opaque data with a length prefix.
func (e *Encoder) PutOpaque(p []byte) {
	e.PutUint32(uint32(len(p)))
	e.PutFixedOpaque(p)
}

// PutString appends an XDR string.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	for i := 0; i < pad(len(s)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// Decoder consumes XDR-encoded values from a byte slice.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder reading from p. The decoder does not copy p.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Offset returns the current decode offset from the start of the buffer.
// The µproxy uses it to locate fields for in-place rewriting.
func (d *Decoder) Offset() int { return d.off }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Skip advances the decoder by n bytes (rounded up to a 4-byte boundary).
func (d *Decoder) Skip(n int) error {
	n += pad(n)
	if d.Remaining() < n {
		return ErrShortBuffer
	}
	d.off += n
	return nil
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	b := d.buf[d.off:]
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	d.off += 4
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	hi, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	lo, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

// Int64 decodes a 64-bit signed integer.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes an XDR boolean, rejecting values other than 0 and 1.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("%w: bool %d", ErrBadValue, v)
}

// FixedOpaque decodes n bytes of fixed-length opaque data. The returned
// slice aliases the decoder's buffer.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 || d.Remaining() < n+pad(n) {
		return nil, ErrShortBuffer
	}
	p := d.buf[d.off : d.off+n]
	d.off += n + pad(n)
	return p, nil
}

// Opaque decodes variable-length opaque data. The returned slice aliases
// the decoder's buffer.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > MaxOpaque {
		return nil, fmt.Errorf("%w: opaque length %d", ErrBadValue, n)
	}
	return d.FixedOpaque(int(n))
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	p, err := d.Opaque()
	return string(p), err
}

// UintAt reads the uint32 at byte offset off without advancing the decoder.
func (d *Decoder) UintAt(off int) (uint32, error) {
	if off < 0 || off+4 > len(d.buf) {
		return 0, ErrShortBuffer
	}
	b := d.buf[off:]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// PutUint32At overwrites the uint32 at byte offset off in buf.
// It is the primitive used for in-place datagram rewriting.
func PutUint32At(buf []byte, off int, v uint32) error {
	if off < 0 || off+4 > len(buf) {
		return ErrShortBuffer
	}
	buf[off] = byte(v >> 24)
	buf[off+1] = byte(v >> 16)
	buf[off+2] = byte(v >> 8)
	buf[off+3] = byte(v)
	return nil
}

// Uint32Size is the encoded size of a uint32.
const Uint32Size = 4

// OpaqueSize returns the encoded size of variable-length opaque data of n
// bytes, including the length prefix and padding.
func OpaqueSize(n int) int { return 4 + n + pad(n) }

// StringSize returns the encoded size of the string s.
func StringSize(s string) int { return OpaqueSize(len(s)) }

// CheckLen validates that a length prefix n (already decoded) can describe
// at most max elements; it guards slice preallocation from hostile input.
func CheckLen(n uint32, max int) error {
	if max >= 0 && n > uint32(max) {
		return fmt.Errorf("%w: length %d exceeds %d", ErrBadValue, n, max)
	}
	if n > math.MaxInt32 {
		return fmt.Errorf("%w: length %d", ErrBadValue, n)
	}
	return nil
}
