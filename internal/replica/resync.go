package replica

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"

	"slice/internal/oncrpc"
	"slice/internal/xdr"
)

// The replica-peer RPC program: storage nodes serve it to their group
// siblings so a member restarting with an empty store can pull every
// object back from a survivor BEFORE it binds its service port —
// rebuilding a replica is a peer-to-peer bulk transfer, invisible to
// clients and the µproxy alike.
const (
	PeerProgram = 200102
	PeerVersion = 1

	PeerProcList     = 1 // token u64, after u64, max u32 -> status, n, n×(id u64, size u64)
	PeerProcRead     = 2 // token u64, id u64, off u64, count u32 -> status, opaque data
	PeerProcWrite    = 3 // token u64, id u64, off u64, opaque data -> status (durable write)
	PeerProcRemove   = 4 // token u64, id u64 -> status
	PeerProcTruncate = 5 // token u64, id u64, size u64 -> status (creates if absent)
)

// Peer-program status codes (the program is internal; NFS statuses
// would only obscure it).
const (
	PeerOK     = 0
	PeerDenied = 1
	PeerNoObj  = 2
)

// PeerListMax bounds one PeerProcList page.
const PeerListMax = 512

// PeerChunk is the PeerProcRead transfer unit.
const PeerChunk = 32 * 1024

// PeerToken derives the peer-program bearer token from the array's
// capability key. Nodes outside the trust boundary never see the key,
// so they cannot list or read raw objects; a nil key (trusted-network
// mode) makes the token zero and nodes accept any.
func PeerToken(key []byte) uint64 {
	if len(key) == 0 {
		return 0
	}
	sum := md5.Sum(append(append([]byte(nil), key...), "replica-peer"...))
	return binary.BigEndian.Uint64(sum[:8])
}

// ResyncStats reports what one Resync transferred.
type ResyncStats struct {
	Objects int
	Bytes   int64
}

// ResyncTarget is the store a resync fills: stable writes only, sized
// exactly. (An interface, not *storage.ObjectStore: storage serves the
// peer program and so imports this package.)
type ResyncTarget interface {
	// Truncate creates the object if needed and sets its exact size.
	Truncate(id uint64, size uint64) error
	// WriteAt writes a durable chunk at off.
	WriteAt(id uint64, off uint64, p []byte) error
}

// Resync pulls every object a peer holds into dst: page through
// PeerProcList, size each object with Truncate (so zero-length objects
// and sparse tails come back too), then fetch its bytes in PeerChunk
// reads pipelined through the async call window — the same
// CallStart/Await machinery the client's bulk engine rides, reused here
// between storage peers. window bounds the in-flight reads.
func Resync(c *oncrpc.Client, token uint64, window int, dst ResyncTarget) (ResyncStats, error) {
	var st ResyncStats
	if window < 1 {
		window = 1
	}
	type chunk struct {
		pd  *oncrpc.Pending
		id  uint64
		off uint64
	}
	inflight := make([]chunk, 0, window)
	drain := func(min int) error {
		for len(inflight) > min {
			ck := inflight[0]
			inflight = inflight[1:]
			body, err := ck.pd.Await()
			if err != nil {
				return fmt.Errorf("replica: resync read obj %d @%d: %w", ck.id, ck.off, err)
			}
			d := xdr.NewDecoder(body)
			status, err := d.Uint32()
			if err != nil {
				return err
			}
			if status == PeerNoObj {
				// Removed under us; the remove also fanned out here.
				continue
			}
			if status != PeerOK {
				return fmt.Errorf("replica: resync read obj %d: peer status %d", ck.id, status)
			}
			data, err := d.Opaque()
			if err != nil {
				return err
			}
			if len(data) == 0 {
				continue
			}
			if err := dst.WriteAt(ck.id, ck.off, data); err != nil {
				return err
			}
			st.Bytes += int64(len(data))
		}
		return nil
	}

	after := uint64(0)
	for {
		body, err := c.Call(PeerProgram, PeerVersion, PeerProcList, func(e *xdr.Encoder) {
			e.PutUint64(token)
			e.PutUint64(after)
			e.PutUint32(PeerListMax)
		})
		if err != nil {
			return st, fmt.Errorf("replica: resync list: %w", err)
		}
		d := xdr.NewDecoder(body)
		status, err := d.Uint32()
		if err != nil {
			return st, err
		}
		if status != PeerOK {
			return st, fmt.Errorf("replica: resync list: peer status %d", status)
		}
		n, err := d.Uint32()
		if err != nil {
			return st, err
		}
		for i := uint32(0); i < n; i++ {
			id, err := d.Uint64()
			if err != nil {
				return st, err
			}
			size, err := d.Uint64()
			if err != nil {
				return st, err
			}
			after = id
			if err := dst.Truncate(id, size); err != nil {
				return st, err
			}
			st.Objects++
			for off := uint64(0); off < size; off += PeerChunk {
				count := uint32(PeerChunk)
				if size-off < uint64(count) {
					count = uint32(size - off)
				}
				if err := drain(window - 1); err != nil {
					return st, err
				}
				id, off := id, off
				pd := c.CallStart(PeerProgram, PeerVersion, PeerProcRead, func(e *xdr.Encoder) {
					e.PutUint64(token)
					e.PutUint64(id)
					e.PutUint64(off)
					e.PutUint32(count)
				})
				inflight = append(inflight, chunk{pd: pd, id: id, off: off})
			}
		}
		if n < PeerListMax {
			break
		}
	}
	return st, drain(0)
}
