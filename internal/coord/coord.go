// Package coord implements the Slice block-service coordinator (§2.2,
// §3.3.2, §4.2).
//
// A coordinator manages a subset of files, selected by fileID. It has two
// jobs. First, it maintains optional per-file block maps that give the
// storage site for each logical block, enabling dynamic I/O placement
// policies beyond static striping. Second, it preserves the atomicity of
// operations that span multiple storage sites — remove/truncate, NFS V3
// write commitment, and mirrored writes — with an intention-logging
// protocol: the µproxy declares an intention before the operation, the
// coordinator logs it to stable storage, and the µproxy clears it with a
// completion message afterwards. If the completion never arrives, the
// coordinator finishes the operation itself: the finishing actions
// (remove/truncate/commit on every possible site) are idempotent, so
// re-execution after a coordinator crash is safe. A recovering coordinator
// scans its intentions log and completes or discards operations that were
// in flight at the time of the failure.
package coord

import (
	"fmt"
	"sync"
	"time"

	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/route"
	"slice/internal/wal"
	"slice/internal/xdr"
)

// Program identifies the coordinator RPC service.
const (
	Program = 200301
	Version = 1
)

// Coordinator procedures.
const (
	ProcIntend   = 1 // declare an intention; returns its id
	ProcComplete = 2 // clear an intention
	ProcGetMap   = 3 // fetch/allocate block-map fragments
)

// Intention operation types.
const (
	OpRemove   = 1 // remove file data from all sites
	OpTruncate = 2 // truncate file data on all sites
	OpCommit   = 3 // commit (make durable) a multi-site write set
	OpMirror   = 4 // mirrored write in progress
	OpMigrate  = 5 // topology transition in progress; Size carries the epoch
)

// opName renders an op type for errors and logs.
func opName(op uint32) string {
	switch op {
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpCommit:
		return "commit"
	case OpMirror:
		return "mirror-write"
	case OpMigrate:
		return "migrate"
	default:
		return fmt.Sprintf("op(%d)", op)
	}
}

// intent is one logged intention.
type intent struct {
	ID     uint64
	Op     uint32
	FH     fhandle.Handle
	Size   uint64 // truncate target size; commit/mirror byte count
	Logged time.Time
}

// WAL record types.
const (
	recIntent   = 1
	recComplete = 2
	recMapAlloc = 3
)

// Stats counts coordinator activity.
type Stats struct {
	Intentions  uint64
	Completions uint64
	Finished    uint64 // operations the coordinator finished itself
	MapAllocs   uint64
	MapFetches  uint64
}

// Config configures a coordinator.
type Config struct {
	// Log is the intentions journal (backed by the storage service via a
	// static placement function, per §4.2).
	Log *wal.Log
	// Storage maps logical storage sites to storage nodes.
	Storage *route.Table
	// SmallFile maps logical small-file sites to small-file servers; may
	// be nil when no small-file servers are configured.
	SmallFile *route.Table
	// Net and Host are used to bind client ports toward the data servers.
	Net  *netsim.Network
	Host uint32
	// ProbeAfter is how long an intention may sit unacknowledged before
	// the coordinator finishes the operation itself (default 2s).
	ProbeAfter time.Duration
	// MapStripeSpread controls dynamic placement: block-map allocation
	// assigns stripes round-robin over the storage sites starting at a
	// per-file base.
	MapStripeSpread bool
	// CapKey is the storage capability key (§2.2); the coordinator is
	// inside the trust boundary and stamps capabilities into the handles
	// of its recovery-time storage operations.
	CapKey []byte
}

// Coordinator is one block-service coordinator site.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*intent
	maps    map[fhandle.Key][]uint32 // stripe -> logical storage site
	rr      uint64                   // round-robin allocation cursor
	stats   Stats

	clientsMu sync.Mutex
	clients   map[netsim.Addr]*oncrpc.Client

	srv       *oncrpc.Server
	stopCh    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New starts a coordinator serving on port.
func New(port *netsim.Port, cfg Config) *Coordinator {
	c := newCoordinator(cfg)
	c.start(port)
	return c
}

// Restart builds a coordinator from its intentions log: state is rebuilt
// and in-flight operations of the failed incarnation are finished BEFORE
// the server begins accepting calls on port, so no new intention can race
// recovery or collide with a recovered id. This is the uniform
// crash-restart path the chaos harness uses (§4.2: a restarted
// coordinator scans its log and completes interrupted operations).
func Restart(port *netsim.Port, cfg Config, log *wal.Log) (*Coordinator, error) {
	c := newCoordinator(cfg)
	if err := c.recoverState(log); err != nil {
		return nil, err
	}
	c.finishRecovered()
	c.start(port)
	return c, nil
}

func newCoordinator(cfg Config) *Coordinator {
	if cfg.ProbeAfter <= 0 {
		cfg.ProbeAfter = 2 * time.Second
	}
	return &Coordinator{
		cfg:     cfg,
		nextID:  1,
		pending: make(map[uint64]*intent),
		maps:    make(map[fhandle.Key][]uint32),
		clients: make(map[netsim.Addr]*oncrpc.Client),
		stopCh:  make(chan struct{}),
	}
}

func (c *Coordinator) start(port *netsim.Port) {
	c.srv = oncrpc.NewServer(port, oncrpc.HandlerFunc(c.serve))
	c.wg.Add(1)
	go c.probeLoop()
}

// Addr returns the coordinator's address.
func (c *Coordinator) Addr() netsim.Addr { return c.srv.Addr() }

// SetObs attaches a histogram registry recording per-procedure handler
// latency (nil detaches).
func (c *Coordinator) SetObs(reg *obs.Registry) {
	if reg == nil {
		c.srv.SetObserver(nil)
		return
	}
	c.srv.SetObserver(reg.ObserveRPC)
}

// Stats returns a snapshot of the coordinator counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// PendingIntentions returns the number of unacknowledged intentions.
func (c *Coordinator) PendingIntentions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Close stops the coordinator. Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.stopCh)
		c.srv.Close()
		c.wg.Wait()
		c.clientsMu.Lock()
		for _, cl := range c.clients {
			cl.Close()
		}
		c.clientsMu.Unlock()
	})
}

func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.ProbeAfter / 2)
	defer tick.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-tick.C:
			c.CheckIntentions(time.Now())
		}
	}
}

// CheckIntentions finishes every intention older than ProbeAfter,
// returning how many it completed. An intention whose operation could
// not be confirmed on every site stays pending — completing it anyway
// would silently orphan the unreachable site's blocks — and the next
// probe retries it. It is exported so tests can drive the probe
// deterministically.
func (c *Coordinator) CheckIntentions(now time.Time) int {
	c.mu.Lock()
	var stale []*intent
	for _, in := range c.pending {
		if now.Sub(in.Logged) >= c.cfg.ProbeAfter {
			stale = append(stale, in)
		}
	}
	c.mu.Unlock()
	done := 0
	for _, in := range stale {
		if c.finish(in) != nil {
			continue
		}
		c.clearIntent(in.ID, true)
		done++
	}
	return done
}

// clearIntent removes an intention and journals the completion. The
// completion record is appended under c.mu (so the journal order matches
// the state-change order) but synced after the lock is dropped: a slow
// log device must not stall every other coordinator RPC. Group commit in
// wal.Log.Sync coalesces the device syncs of concurrent completions.
func (c *Coordinator) clearIntent(id uint64, finished bool) {
	c.mu.Lock()
	if _, ok := c.pending[id]; !ok {
		c.mu.Unlock()
		return
	}
	delete(c.pending, id)
	if finished {
		c.stats.Finished++
	} else {
		c.stats.Completions++
	}
	e := xdr.NewEncoder(8)
	e.PutUint64(id)
	log := c.cfg.Log
	_, _ = log.Append(recComplete, e.Bytes())
	c.mu.Unlock()
	_ = log.Sync()
}

// finish performs the idempotent completing actions for an intention whose
// initiator may have failed: it drives every site that could hold state
// for the operation to the operation's final state.
func (c *Coordinator) finish(in *intent) error {
	fh := in.FH
	if len(c.cfg.CapKey) > 0 {
		fh = fhandle.WithCapability(c.cfg.CapKey, fh)
	}
	in = &intent{ID: in.ID, Op: in.Op, FH: fh, Size: in.Size, Logged: in.Logged}
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	switch in.Op {
	case OpRemove:
		c.forEachDataSite(in.FH, func(addr netsim.Addr) {
			record(c.objCall(addr, storageObjProcRemove, in.FH, nil))
		})
	case OpTruncate:
		c.forEachDataSite(in.FH, func(addr netsim.Addr) {
			record(c.objCall(addr, storageObjProcTruncate, in.FH, func(e *xdr.Encoder) { e.PutUint64(in.Size) }))
		})
	case OpCommit, OpMirror:
		// Commit on every replica/site the file's blocks could live on;
		// NFS commit of clean data is a no-op, so over-commit is safe.
		c.forEachStorage(func(addr netsim.Addr) {
			record(c.nfsCommit(addr, in.FH))
		})
	case OpMigrate:
		// A migration intention gone stale means its rebalance driver
		// died mid-copy: roll the topology transition back so the old
		// binding (which saw every double-written byte) stays
		// authoritative. The epoch guard makes this a no-op against a
		// newer — or already closed — transition, and a live driver
		// keeps its intention fresh by chaining Complete+Intend, so a
		// probe never reaches a healthy migration.
		if c.cfg.Storage != nil {
			c.cfg.Storage.Abort(in.Size)
		}
	}
	return firstErr
}

// forEachStorage visits every storage node address once — including the
// nodes of a pending topology transition, so recovery-time removes,
// truncates, and commits reach the binding about to take over (a
// remove finished against only the old nodes could resurrect its bytes
// at the swap).
func (c *Coordinator) forEachStorage(f func(netsim.Addr)) {
	seen := make(map[netsim.Addr]bool)
	for _, a := range c.cfg.Storage.Physical() {
		if !seen[a] {
			seen[a] = true
			f(a)
		}
	}
	for _, a := range c.cfg.Storage.PendingPhysical() {
		if !seen[a] {
			seen[a] = true
			f(a)
		}
	}
}

// forEachDataSite visits every storage node and (if configured) the
// small-file server responsible for fh.
func (c *Coordinator) forEachDataSite(fh fhandle.Handle, f func(netsim.Addr)) {
	c.forEachStorage(f)
	if c.cfg.SmallFile != nil {
		if a, err := c.cfg.SmallFile.Route(fhandle.HandleKey(fh)); err == nil {
			f(a)
		}
	}
}

// client returns (creating if needed) an RPC client to addr.
func (c *Coordinator) client(a netsim.Addr) (*oncrpc.Client, error) {
	c.clientsMu.Lock()
	defer c.clientsMu.Unlock()
	if cl, ok := c.clients[a]; ok {
		return cl, nil
	}
	port, err := c.cfg.Net.BindAny(c.cfg.Host)
	if err != nil {
		return nil, err
	}
	cl := oncrpc.NewClient(port, a, oncrpc.ClientConfig{})
	c.clients[a] = cl
	return cl, nil
}

// Program/proc constants of the storage raw-object service, duplicated
// here to avoid an import cycle with the storage package's tests.
const (
	storageObjProgram      = 200101
	storageObjVersion      = 1
	storageObjProcRemove   = 1
	storageObjProcTruncate = 2
)

// objCall issues a raw-object procedure for fh at addr; extra (optional)
// appends procedure-specific arguments after the handle.
func (c *Coordinator) objCall(addr netsim.Addr, proc uint32, fh fhandle.Handle, extra func(*xdr.Encoder)) error {
	cl, err := c.client(addr)
	if err != nil {
		return err
	}
	_, err = cl.Call(storageObjProgram, storageObjVersion, proc, func(e *xdr.Encoder) {
		fh.Encode(e)
		if extra != nil {
			extra(e)
		}
	})
	return err
}

// nfsCommit issues an NFS COMMIT for fh at addr.
func (c *Coordinator) nfsCommit(addr netsim.Addr, fh fhandle.Handle) error {
	cl, err := c.client(addr)
	if err != nil {
		return err
	}
	_, err = cl.Call(nfsproto.Program, nfsproto.Version, uint32(nfsproto.ProcCommit), func(e *xdr.Encoder) {
		args := nfsproto.CommitArgs{FH: fh}
		args.Encode(e)
	})
	return err
}

// ---------------------------------------------------------------- serving

func (c *Coordinator) serve(call oncrpc.Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
	if call.Program != Program {
		return nil, oncrpc.AcceptProgUnavail
	}
	d := xdr.NewDecoder(call.Body)
	switch call.Proc {
	case ProcIntend:
		op, err := d.Uint32()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		fh, err := fhandle.Decode(d)
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		size, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		id, err := c.Intend(op, fh, size)
		st := nfsproto.OK
		if err != nil {
			st = nfsproto.ErrIO
		}
		return func(e *xdr.Encoder) {
			e.PutUint32(uint32(st))
			e.PutUint64(id)
		}, oncrpc.AcceptSuccess

	case ProcComplete:
		id, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		c.Complete(id)
		return func(e *xdr.Encoder) { e.PutUint32(uint32(nfsproto.OK)) }, oncrpc.AcceptSuccess

	case ProcGetMap:
		fh, err := fhandle.Decode(d)
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		first, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		count, err := d.Uint32()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		sites, err := c.GetMap(fh, first, count)
		st := nfsproto.OK
		if err != nil {
			st = nfsproto.ErrIO
		}
		return func(e *xdr.Encoder) {
			e.PutUint32(uint32(st))
			e.PutUint32(uint32(len(sites)))
			for _, s := range sites {
				e.PutUint32(s)
			}
		}, oncrpc.AcceptSuccess

	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}

// Intend logs a new intention and returns its id. The record is appended
// to the journal under c.mu — keeping journal order identical to id
// order — but the durability sync runs outside the critical section, so
// one slow log sync cannot block every other coordinator RPC. The
// "logged before acknowledged" invariant holds: Intend does not return
// (and the RPC reply is not sent) until Sync says the record is durable,
// and concurrent intentions' syncs coalesce via group commit.
func (c *Coordinator) Intend(op uint32, fh fhandle.Handle, size uint64) (uint64, error) {
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	in := &intent{ID: id, Op: op, FH: fh, Size: size, Logged: time.Now()}
	c.pending[id] = in
	c.stats.Intentions++
	e := xdr.NewEncoder(64)
	e.PutUint64(id)
	e.PutUint32(op)
	fh.Encode(e)
	e.PutUint64(size)
	log := c.cfg.Log
	_, err := log.Append(recIntent, e.Bytes())
	c.mu.Unlock()
	if err == nil {
		err = log.Sync()
	}
	if err != nil {
		// Not durable: withdraw the intention rather than acknowledge an
		// operation recovery would never see.
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return 0, err
	}
	return id, nil
}

// Complete clears an intention after the initiator finished the operation.
func (c *Coordinator) Complete(id uint64) {
	c.clearIntent(id, false)
}

// GetMap returns the logical storage sites of stripes [first, first+count)
// of fh, allocating map entries for unmapped stripes. Allocation is
// round-robin from a per-file base so concurrent large files interleave
// over the array.
func (c *Coordinator) GetMap(fh fhandle.Handle, first uint64, count uint32) ([]uint32, error) {
	n := c.cfg.Storage.NumLogical()
	if n == 0 {
		return nil, route.ErrEmptyTable
	}
	c.mu.Lock()
	c.stats.MapFetches++
	key := fh.Ident()
	m := c.maps[key]
	end := first + uint64(count)
	grew := false
	for uint64(len(m)) < end {
		var site uint32
		if c.cfg.MapStripeSpread {
			site = uint32(c.rr % uint64(n))
			c.rr++
		} else {
			site = uint32((fhandle.HandleKey(fh) + uint64(len(m))) % uint64(n))
		}
		m = append(m, site)
		c.stats.MapAllocs++
		grew = true
	}
	c.maps[key] = m
	out := make([]uint32, count)
	copy(out, m[first:end])
	if !grew {
		c.mu.Unlock()
		return out, nil
	}
	// Journal the post-state map under c.mu (records for the same file
	// must hit the log in growth order — replay keeps the last one), then
	// sync outside it; see Intend for the locking rationale.
	e := xdr.NewEncoder(32 + 4*len(m))
	fh.Encode(e)
	e.PutUint32(uint32(len(m)))
	for _, s := range m {
		e.PutUint32(s)
	}
	log := c.cfg.Log
	_, err := log.Append(recMapAlloc, e.Bytes())
	c.mu.Unlock()
	if err == nil {
		err = log.Sync()
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Recover rebuilds coordinator state from its intentions log and finishes
// every operation that was in flight when the previous incarnation failed.
func (c *Coordinator) Recover(log *wal.Log) error {
	if err := c.recoverState(log); err != nil {
		return err
	}
	c.finishRecovered()
	return nil
}

// recoverState replays the log and installs the rebuilt state; it does
// not finish pending operations.
func (c *Coordinator) recoverState(log *wal.Log) error {
	pending := make(map[uint64]*intent)
	maps := make(map[fhandle.Key][]uint32)
	var maxID uint64
	err := log.Scan(func(seq uint64, recType uint32, payload []byte) error {
		d := xdr.NewDecoder(payload)
		switch recType {
		case recIntent:
			id, err := d.Uint64()
			if err != nil {
				return err
			}
			op, err := d.Uint32()
			if err != nil {
				return err
			}
			fh, err := fhandle.Decode(d)
			if err != nil {
				return err
			}
			size, err := d.Uint64()
			if err != nil {
				return err
			}
			pending[id] = &intent{ID: id, Op: op, FH: fh, Size: size, Logged: time.Now()}
			if id > maxID {
				maxID = id
			}
		case recComplete:
			id, err := d.Uint64()
			if err != nil {
				return err
			}
			delete(pending, id)
		case recMapAlloc:
			fh, err := fhandle.Decode(d)
			if err != nil {
				return err
			}
			n, err := d.Uint32()
			if err != nil {
				return err
			}
			if err := xdr.CheckLen(n, 1<<20); err != nil {
				return err
			}
			m := make([]uint32, n)
			for i := range m {
				if m[i], err = d.Uint32(); err != nil {
					return err
				}
			}
			maps[fh.Ident()] = m
		}
		return nil
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.cfg.Log = log
	c.pending = pending
	c.maps = maps
	c.nextID = maxID + 1
	c.mu.Unlock()
	return nil
}

// finishRecovered completes or aborts the operations that were in flight
// when the previous incarnation failed. The finishing actions are
// idempotent, so re-finishing after a second crash is safe. An operation
// whose sites cannot all be reached stays pending — the probe loop keeps
// retrying it once the coordinator is serving.
func (c *Coordinator) finishRecovered() {
	c.mu.Lock()
	pending := make([]*intent, 0, len(c.pending))
	for _, in := range c.pending {
		pending = append(pending, in)
	}
	c.mu.Unlock()
	for _, in := range pending {
		if c.finish(in) != nil {
			continue
		}
		c.clearIntent(in.ID, true)
	}
}
