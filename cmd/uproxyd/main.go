// Command uproxyd demonstrates that µproxies are freely replicable
// (§2.1): it runs an ensemble fronted by an N-member µproxy fleet —
// shared-nothing soft state, one set of routing tables — and exposes
// each member's virtual address behind its own UDP endpoint at
// consecutive ports. The constraint the architecture imposes is only
// that each client's request stream passes through a single µproxy;
// clients of different endpoints share the volume with no coordination
// between the members beyond their (read-mostly) routing tables. The
// in-process ensemble clients additionally exercise the flow-hashed
// front: their flows spread across all N members.
//
//	uproxyd -listen 127.0.0.1:20490 -proxies 4
//
// serves members at :20490 .. :20493.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"time"

	"slice/internal/ensemble"
	"slice/internal/netsim"
	"slice/internal/obs"
	"slice/internal/proxy"
	"slice/internal/route"
	"slice/internal/udpgate"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:20490", "UDP endpoint of fleet member 0; member i listens at port+i")
		tcp       = flag.String("tcp", "", "TCP endpoint of fleet member 0 (record-marked ONC-RPC); member i listens at port+i")
		portmap   = flag.String("portmap", "", "portmapper TCP listen address (requires -tcp)")
		proxies   = flag.Int("proxies", 2, "µproxy fleet size (1..8)")
		stats     = flag.Duration("stats", 10*time.Second, "stats print interval")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
		mutexFrac = flag.Int("mutexprofile", 0, "runtime.SetMutexProfileFraction rate (0 = off)")
		blockRate = flag.Int("blockprofile", 0, "runtime.SetBlockProfileRate rate in ns (0 = off)")
	)
	flag.Parse()

	// Contention profiling of the sharded data path: sample mutex hold/wait
	// times and serve them at /debug/pprof/{mutex,block}.
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("uproxyd: pprof server: %v", err)
			}
		}()
		fmt.Printf("uproxyd: pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}

	e, err := ensemble.New(ensemble.Config{
		StorageNodes:      4,
		DirServers:        2,
		SmallFileServers:  2,
		Proxies:           *proxies,
		Coordinator:       true,
		NameKind:          route.MkdirSwitching,
		MkdirP:            0.25,
		WritebackInterval: 2 * time.Second,
		TCPListen:         *tcp,
		PortmapListen:     *portmap,
	})
	if err != nil {
		log.Fatalf("uproxyd: ensemble: %v", err)
	}
	defer e.Close()

	// One UDP gateway per fleet member, at consecutive ports: a kernel
	// client is one flow source, so its endpoint choice IS its front
	// assignment.
	host, portStr, err := net.SplitHostPort(*listen)
	if err != nil {
		log.Fatalf("uproxyd: -listen %q: %v", *listen, err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatalf("uproxyd: -listen port %q: %v", portStr, err)
	}
	fmt.Printf("uproxyd: one volume, %d interposed µproxies\n", len(e.Proxies))
	for i, p := range e.Proxies {
		addr := net.JoinHostPort(host, strconv.Itoa(basePort+i))
		gw, err := udpgate.NewGateway(addr, e.Net, p.Virtual())
		if err != nil {
			log.Fatalf("uproxyd: gateway %d: %v", i, err)
		}
		defer gw.Close()
		// Per-member drop counters under their own stats label.
		name := "udpgate"
		if i > 0 {
			name = fmt.Sprintf("udpgate[%d]", i)
		}
		reg := obs.NewRegistry(name)
		gw.SetObs(reg)
		e.Obs.AddRegistry(reg)
		fmt.Printf("  µproxy #%d: %v (fabric %v)\n", i, gw.Addr(), p.Virtual())
	}
	for i, g := range e.Gateways {
		fmt.Printf("  µproxy #%d TCP: %v (record-marked ONC-RPC)\n", i, g.Addr())
	}
	if e.Portmap != nil {
		fmt.Printf("  portmapper: %v -> member 0\n", e.Portmap.Addr())
	}
	fmt.Printf("mount any endpoint with: slicectl -connect <addr> ls /\n")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*stats)
	defer tick.Stop()
	dumpAll := func() {
		for i, p := range e.Proxies {
			if p != nil {
				dump(fmt.Sprintf("µproxy#%d", i), p)
			}
		}
		dumpPool()
	}
	for {
		select {
		case <-sig:
			fmt.Println("\nuproxyd: shutting down")
			dumpAll()
			return
		case <-tick.C:
			dumpAll()
			e.Obs.WriteText(os.Stdout)
		}
	}
}

func dump(name string, p *proxy.Proxy) {
	st := p.Stats()
	pkts := st.Requests + st.Responses
	fmt.Printf("[%s] %d pkts (%d req / %d resp / %d absorbed / %d dropped)", name, pkts,
		st.Requests, st.Responses, st.Absorbed, st.Dropped)
	if pkts > 0 {
		fmt.Printf("; ns/pkt: intercept %.0f decode %.0f rewrite %.0f softstate %.0f",
			float64(st.InterceptNS)/float64(pkts),
			float64(st.DecodeNS)/float64(pkts),
			float64(st.RewriteNS)/float64(pkts),
			float64(st.SoftStateNS)/float64(pkts))
	}
	fmt.Println()

	// Aggregate the per-shard soft-state occupancy and hit rates, noting
	// the hottest shard so routing skew is visible at a glance.
	var pend, attrs, names, maxPend int
	var ahits, amiss, nhits, nmiss uint64
	for _, sh := range p.ShardStats() {
		pend += sh.Pending
		attrs += sh.AttrEntries
		names += sh.NameEntries
		ahits += sh.AttrHits
		amiss += sh.AttrMisses
		nhits += sh.NameHits
		nmiss += sh.NameMisses
		if sh.Pending > maxPend {
			maxPend = sh.Pending
		}
	}
	fmt.Printf("[%s] shards: %d pending (max/shard %d), %d attrs (hit %s), %d names (hit %s)\n",
		name, pend, maxPend, attrs, pct(ahits, amiss), names, pct(nhits, nmiss))
}

func dumpPool() {
	ps := netsim.PoolStats()
	fmt.Printf("[bufpool] %d gets / %d puts / %d fresh allocs / %d foreign frees\n",
		ps.Gets, ps.Puts, ps.News, ps.Ignored)
}

func pct(hits, misses uint64) string {
	if hits+misses == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(hits+misses))
}
