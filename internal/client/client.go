// Package client implements the Slice NFS client stack used by the
// examples, workloads, and tests.
//
// The client is deliberately ordinary: it speaks the plain NFS-style
// protocol to a single (virtual) server address, retransmits on timeout,
// and knows nothing about the ensemble behind the µproxy — that is the
// compatibility the interposed architecture preserves (§1). The one
// concession is mechanical: I/O is split so no single transfer crosses a
// stripe-unit or threshold boundary, matching how the prototype's 32KB NFS
// block size aligned with the µproxy's stripe unit.
//
// Bulk I/O is pipelined: Read and Write keep a bounded window of chunk
// RPCs in flight across the storage array (sequential readahead on the
// read side, write-behind with sub-stripe-unit coalescing on the write
// side), so aggregate bandwidth scales with array width instead of being
// bound by one round trip at a time. See bulk.go. Window ≤ 1 selects the
// fully serial path.
package client

import (
	"fmt"
	"sync"
	"sync/atomic"

	"slice/internal/attr"
	"slice/internal/fhandle"
	"slice/internal/front"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/route"
	"slice/internal/xdr"
)

// mount protocol constants (shared with dirsrv).
const (
	mountProgram = 100005
	mountVersion = 3
	mountProcMnt = 1
)

// Config configures a client.
type Config struct {
	// Net is the fabric; Host is this client's host address.
	Net  *netsim.Network
	Host uint32
	// Server is the (virtual) NFS server address.
	Server netsim.Addr
	// BlockSize is the maximum bytes per READ/WRITE (default: the stripe
	// unit).
	BlockSize uint32
	// Threshold and StripeUnit are the I/O split boundaries; defaults
	// match route defaults.
	Threshold  uint64
	StripeUnit uint64
	// RPC tunes timeouts and retries.
	RPC oncrpc.ClientConfig
	// Window bounds the number of chunk RPCs kept in flight by bulk
	// Read/Write. 0 means DefaultWindow; 1 or negative selects the fully
	// serial path (one chunk round trip at a time). Size it to stripe
	// width × per-node queue depth (route.IOPolicy.WindowFor).
	Window int
	// Readahead bounds sequential read prefetch, in chunks beyond the
	// current request. 0 means the window depth; negative disables
	// readahead.
	Readahead int
	// Obs, when set, receives window-occupancy and per-chunk-latency
	// histograms for the bulk path.
	Obs *obs.Registry
	// Fleet, when set, routes each call to the µproxy owning its flow
	// (consistent hash of this client's address and the file handle),
	// re-resolving before every transmission: if that proxy dies and
	// the fleet table swaps, the next retransmission of an in-flight
	// call lands on the flow's new owner. Server then only names the
	// fallback for an empty fleet. The client stays protocol-ordinary —
	// the fleet is just an address book consulted at send time.
	Fleet *front.Ring
}

// DefaultWindow is the bulk-I/O window depth when Config.Window is 0.
const DefaultWindow = 8

// Client is a Slice NFS client bound to one server address.
//
// A Client may be shared by concurrent goroutines for calls on distinct
// files; bulk operations on the same file must be externally ordered
// (the write-behind and readahead state assume one stream per file).
type Client struct {
	cfg  Config
	rpc  *oncrpc.Client
	root fhandle.Handle
	self netsim.Addr // this client's bound address, half of every flow key

	// Bulk-I/O engine state (bulk.go). win is the window semaphore; a
	// slot is held for the duration of each in-flight chunk RPC.
	win     chan struct{}
	occ     atomic.Int64 // current window occupancy, sampled into winHist
	winHist *obs.Histogram
	readNS  *obs.Histogram
	writeNS *obs.Histogram

	bulkMu  sync.Mutex
	bulkCnd *sync.Cond
	files   map[fhandle.Key]*fileIO // files with write-behind state
	tail    *writeTail              // buffered sequential write tail
	ra      raState                 // sequential readahead cache
}

// New creates a client on the netsim fabric. Call Mount before file
// operations.
func New(cfg Config) (*Client, error) {
	port, err := cfg.Net.BindAny(cfg.Host)
	if err != nil {
		return nil, err
	}
	return NewWithConn(port, cfg), nil
}

// NewWithConn creates a client over an existing datagram endpoint — e.g.
// a udpgate connection to a remote ensemble.
func NewWithConn(conn oncrpc.Conn, cfg Config) *Client {
	if cfg.StripeUnit == 0 {
		cfg.StripeUnit = route.DefaultStripeUnit
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = route.DefaultThreshold
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = uint32(cfg.StripeUnit)
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Readahead == 0 {
		cfg.Readahead = cfg.Window
	}
	if cfg.Fleet != nil && cfg.RPC.ResolveKey == nil {
		cfg.RPC.ResolveKey = cfg.Fleet.Resolve
	}
	c := &Client{
		cfg:  cfg,
		self: conn.Addr(),
		rpc:  oncrpc.NewClient(conn, cfg.Server, cfg.RPC),
	}
	c.bulkCnd = sync.NewCond(&c.bulkMu)
	c.files = make(map[fhandle.Key]*fileIO)
	if cfg.Window > 1 {
		c.win = make(chan struct{}, cfg.Window)
	}
	if cfg.Obs != nil {
		c.winHist = cfg.Obs.Hist(obs.HistBulkWindow)
		c.readNS = cfg.Obs.Hist(obs.HistBulkReadChunk)
		c.writeNS = cfg.Obs.Hist(obs.HistBulkWriteChunk)
	}
	return c
}

// Close drains outstanding write-behind traffic (best effort) and
// releases the client's port.
func (c *Client) Close() {
	if c.windowed() {
		c.drainAll()
	}
	c.rpc.Close()
}

// Retransmissions exposes the RPC retransmission count for tests.
func (c *Client) Retransmissions() uint64 { return c.rpc.Retransmissions() }

// flowKey identifies the (client, file) flow of a call against fh, the
// unit of µproxy affinity: all of one flow's calls resolve to one proxy,
// so its soft state sees the whole stream. Handle-less traffic (MOUNT,
// NULL) keys on the zero handle — its own flow, owned like any other.
func (c *Client) flowKey(fh fhandle.Handle) uint64 {
	if c.cfg.Fleet == nil {
		return 0
	}
	return front.FlowKey(c.self, fhandle.HandleKey(fh))
}

// call issues one NFS procedure against fh and decodes the reply. fh is
// the handle the operation targets (the directory for namespace ops);
// it keys the flow that picks the owning µproxy.
func (c *Client) call(fh fhandle.Handle, proc nfsproto.Proc, args nfsproto.Msg, res nfsproto.Msg) error {
	var enc func(*xdr.Encoder)
	if args != nil {
		enc = args.Encode
	}
	body, err := c.rpc.CallKeyed(c.flowKey(fh), nfsproto.Program, nfsproto.Version, uint32(proc), enc)
	if err != nil {
		return err
	}
	if res == nil {
		return nil
	}
	return res.Decode(xdr.NewDecoder(body))
}

// Mount retrieves the volume root handle.
func (c *Client) Mount() error {
	body, err := c.rpc.CallKeyed(c.flowKey(fhandle.Handle{}), mountProgram, mountVersion, mountProcMnt, nil)
	if err != nil {
		return err
	}
	d := xdr.NewDecoder(body)
	st, err := d.Uint32()
	if err != nil {
		return err
	}
	if s := nfsproto.Status(st); s != nfsproto.OK {
		return fmt.Errorf("client: mount failed: %w", s.Error())
	}
	c.root, err = fhandle.Decode(d)
	return err
}

// Root returns the mounted volume root.
func (c *Client) Root() fhandle.Handle { return c.root }

// Null issues the NULL procedure (a ping).
func (c *Client) Null() error {
	_, err := c.rpc.CallKeyed(c.flowKey(fhandle.Handle{}), nfsproto.Program, nfsproto.Version, uint32(nfsproto.ProcNull), nil)
	return err
}

// GetAttr fetches the attributes of fh.
func (c *Client) GetAttr(fh fhandle.Handle) (attr.Attr, error) {
	if c.windowed() {
		// Buffered write-behind extends the file; attributes must
		// reflect every write already accepted.
		if err := c.drainFile(fh); err != nil {
			return attr.Attr{}, err
		}
	}
	var res nfsproto.GetAttrRes
	if err := c.call(fh, nfsproto.ProcGetAttr, &nfsproto.GetAttrArgs{FH: fh}, &res); err != nil {
		return attr.Attr{}, err
	}
	return res.Attr, res.Status.Error()
}

// SetAttr applies a partial attribute update.
func (c *Client) SetAttr(fh fhandle.Handle, sa attr.SetAttr) (attr.Attr, error) {
	if c.windowed() {
		if err := c.drainFile(fh); err != nil {
			return attr.Attr{}, err
		}
		c.invalidateRA(fh.Ident())
	}
	var res nfsproto.SetAttrRes
	if err := c.call(fh, nfsproto.ProcSetAttr, &nfsproto.SetAttrArgs{FH: fh, Sattr: sa}, &res); err != nil {
		return attr.Attr{}, err
	}
	return res.Attr.Attr, res.Status.Error()
}

// Truncate sets the file size.
func (c *Client) Truncate(fh fhandle.Handle, size uint64) error {
	_, err := c.SetAttr(fh, attr.SetAttr{SetSize: true, Size: size})
	return err
}

// Access checks permissions (the prototype grants all requested bits).
func (c *Client) Access(fh fhandle.Handle, mask uint32) (uint32, error) {
	var res nfsproto.AccessRes
	if err := c.call(fh, nfsproto.ProcAccess, &nfsproto.AccessArgs{FH: fh, Access: mask}, &res); err != nil {
		return 0, err
	}
	return res.Access, res.Status.Error()
}

// Lookup resolves name within dir.
func (c *Client) Lookup(dir fhandle.Handle, name string) (fhandle.Handle, attr.Attr, error) {
	var res nfsproto.LookupRes
	if err := c.call(dir, nfsproto.ProcLookup, &nfsproto.LookupArgs{Dir: dir, Name: name}, &res); err != nil {
		return fhandle.Handle{}, attr.Attr{}, err
	}
	return res.FH, res.Attr.Attr, res.Status.Error()
}

// Create makes a regular file.
func (c *Client) Create(dir fhandle.Handle, name string, mode uint32, exclusive bool) (fhandle.Handle, attr.Attr, error) {
	args := nfsproto.CreateArgs{
		Dir: dir, Name: name, Exclusive: exclusive,
		Sattr: attr.SetAttr{SetMode: true, Mode: mode},
	}
	var res nfsproto.CreateRes
	if err := c.call(dir, nfsproto.ProcCreate, &args, &res); err != nil {
		return fhandle.Handle{}, attr.Attr{}, err
	}
	return res.FH, res.Attr.Attr, res.Status.Error()
}

// Mkdir makes a directory.
func (c *Client) Mkdir(dir fhandle.Handle, name string, mode uint32) (fhandle.Handle, attr.Attr, error) {
	args := nfsproto.CreateArgs{
		Dir: dir, Name: name,
		Sattr: attr.SetAttr{SetMode: true, Mode: mode},
	}
	var res nfsproto.CreateRes
	if err := c.call(dir, nfsproto.ProcMkdir, &args, &res); err != nil {
		return fhandle.Handle{}, attr.Attr{}, err
	}
	return res.FH, res.Attr.Attr, res.Status.Error()
}

// Remove unlinks a file. Namespace changes are identified by (dir, name)
// rather than file handle, so the windowed path conservatively drains all
// write-behind traffic and drops the readahead cache first.
func (c *Client) Remove(dir fhandle.Handle, name string) error {
	if c.windowed() {
		if err := c.drainAll(); err != nil {
			return err
		}
	}
	var res nfsproto.RemoveRes
	if err := c.call(dir, nfsproto.ProcRemove, &nfsproto.RemoveArgs{Dir: dir, Name: name}, &res); err != nil {
		return err
	}
	return res.Status.Error()
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(dir fhandle.Handle, name string) error {
	var res nfsproto.RemoveRes
	if err := c.call(dir, nfsproto.ProcRmdir, &nfsproto.RemoveArgs{Dir: dir, Name: name}, &res); err != nil {
		return err
	}
	return res.Status.Error()
}

// Rename moves an entry. Like Remove it drains the window first.
func (c *Client) Rename(fromDir fhandle.Handle, fromName string, toDir fhandle.Handle, toName string) error {
	if c.windowed() {
		if err := c.drainAll(); err != nil {
			return err
		}
	}
	args := nfsproto.RenameArgs{FromDir: fromDir, FromName: fromName, ToDir: toDir, ToName: toName}
	var res nfsproto.RenameRes
	if err := c.call(fromDir, nfsproto.ProcRename, &args, &res); err != nil {
		return err
	}
	return res.Status.Error()
}

// Link creates a hard link to fh named name in dir.
func (c *Client) Link(fh, dir fhandle.Handle, name string) error {
	var res nfsproto.LinkRes
	if err := c.call(fh, nfsproto.ProcLink, &nfsproto.LinkArgs{FH: fh, Dir: dir, Name: name}, &res); err != nil {
		return err
	}
	return res.Status.Error()
}

// ReadDir returns all entries of dir, following cookies.
func (c *Client) ReadDir(dir fhandle.Handle) ([]nfsproto.DirEntry, error) {
	var out []nfsproto.DirEntry
	var cookie uint64
	for {
		var res nfsproto.ReadDirRes
		err := c.call(dir, nfsproto.ProcReadDir, &nfsproto.ReadDirArgs{
			Dir: dir, Cookie: cookie, Count: 32 * 1024,
		}, &res)
		if err != nil {
			return out, err
		}
		if res.Status != nfsproto.OK {
			return out, res.Status.Error()
		}
		out = append(out, res.Entries...)
		if res.EOF || len(res.Entries) == 0 {
			return out, nil
		}
		cookie = res.Entries[len(res.Entries)-1].Cookie
	}
}

// FsStat returns volume statistics.
func (c *Client) FsStat(fh fhandle.Handle) (nfsproto.FsStatRes, error) {
	var res nfsproto.FsStatRes
	if err := c.call(fh, nfsproto.ProcFsStat, &nfsproto.FsStatArgs{FH: fh}, &res); err != nil {
		return res, err
	}
	return res, res.Status.Error()
}

// chunkEnd returns the end of the I/O chunk starting at off: transfers
// never cross a stripe-unit or threshold boundary, and never exceed the
// block size.
func (c *Client) chunkEnd(off uint64) uint64 {
	end := off + uint64(c.cfg.BlockSize)
	if b := (off/c.cfg.StripeUnit + 1) * c.cfg.StripeUnit; b < end {
		end = b
	}
	if off < c.cfg.Threshold && c.cfg.Threshold < end {
		end = c.cfg.Threshold
	}
	return end
}

// Read fills p from fh starting at off. It returns the bytes read and
// whether end of file was reached.
func (c *Client) Read(fh fhandle.Handle, off uint64, p []byte) (int, bool, error) {
	if c.windowed() {
		return c.windowedRead(fh, off, p)
	}
	return c.serialRead(fh, off, p)
}

// serialRead is the one-chunk-at-a-time read loop; the windowed path
// must stay byte-exact with it.
func (c *Client) serialRead(fh fhandle.Handle, off uint64, p []byte) (int, bool, error) {
	read := 0
	for read < len(p) {
		cur := off + uint64(read)
		end := c.chunkEnd(cur)
		want := uint32(end - cur)
		if rem := uint32(len(p) - read); rem < want {
			want = rem
		}
		var res nfsproto.ReadRes
		err := c.call(fh, nfsproto.ProcRead, &nfsproto.ReadArgs{FH: fh, Offset: cur, Count: want}, &res)
		if err != nil {
			return read, false, err
		}
		if res.Status != nfsproto.OK {
			return read, false, res.Status.Error()
		}
		n := copy(p[read:], res.Data)
		read += n
		if res.EOF || n == 0 {
			return read, true, nil
		}
	}
	return read, false, nil
}

// Write stores p at off. stable selects FILE_SYNC semantics per chunk.
//
// On the windowed path, unstable writes are asynchronous (write-behind):
// a successful return means the bytes are buffered or in flight, and a
// chunk failure is reported by a later Write, Commit, or drain on the
// same file — the NFSv3 deferred-error model.
func (c *Client) Write(fh fhandle.Handle, off uint64, p []byte, stable bool) (int, error) {
	if c.windowed() {
		return c.windowedWrite(fh, off, p, stable)
	}
	return c.serialWrite(fh, off, p, stable)
}

// serialWrite is the one-chunk-at-a-time write loop.
func (c *Client) serialWrite(fh fhandle.Handle, off uint64, p []byte, stable bool) (int, error) {
	written := 0
	stability := uint32(nfsproto.Unstable)
	if stable {
		stability = nfsproto.FileSync
	}
	for written < len(p) {
		cur := off + uint64(written)
		end := c.chunkEnd(cur)
		want := int(end - cur)
		if rem := len(p) - written; rem < want {
			want = rem
		}
		args := nfsproto.WriteArgs{
			FH: fh, Offset: cur, Count: uint32(want),
			Stable: stability, Data: p[written : written+want],
		}
		var res nfsproto.WriteRes
		if err := c.call(fh, nfsproto.ProcWrite, &args, &res); err != nil {
			return written, err
		}
		if res.Status != nfsproto.OK {
			return written, res.Status.Error()
		}
		written += int(res.Count)
		if res.Count == 0 {
			return written, fmt.Errorf("client: zero-length write progress at offset %d", cur)
		}
	}
	return written, nil
}

// Flush pushes out fh's buffered write-behind bytes and waits for every
// in-flight chunk, surfacing any deferred write error. Unlike Commit it
// costs no round trip and asks for no durability — it only restores the
// serial path's "Write returned, so the server saw it" guarantee. No-op
// on the serial path.
func (c *Client) Flush(fh fhandle.Handle) error {
	if !c.windowed() {
		return nil
	}
	return c.drainFile(fh)
}

// Commit flushes unstable writes on fh and returns the write verifier.
// On the windowed path it is the barrier that drains the write-behind
// window (and surfaces any deferred async write error) before the COMMIT
// round trip.
func (c *Client) Commit(fh fhandle.Handle) (uint64, error) {
	if c.windowed() {
		if err := c.drainFile(fh); err != nil {
			return 0, err
		}
	}
	var res nfsproto.CommitRes
	if err := c.call(fh, nfsproto.ProcCommit, &nfsproto.CommitArgs{FH: fh}, &res); err != nil {
		return 0, err
	}
	return res.Verf, res.Status.Error()
}

// ReadAll reads the whole file, sizing the buffer from GETATTR.
func (c *Client) ReadAll(fh fhandle.Handle) ([]byte, error) {
	at, err := c.GetAttr(fh)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, at.Size)
	n, _, err := c.Read(fh, 0, buf)
	return buf[:n], err
}

// WriteFile writes data at offset 0 and commits it. An empty file needs
// no WRITE and therefore nothing to commit; the COMMIT round trip is
// skipped.
func (c *Client) WriteFile(fh fhandle.Handle, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if _, err := c.Write(fh, 0, data, false); err != nil {
		return err
	}
	_, err := c.Commit(fh)
	return err
}

// MkdirAll walks/creates the path components under base and returns the
// final directory handle.
func (c *Client) MkdirAll(base fhandle.Handle, parts ...string) (fhandle.Handle, error) {
	cur := base
	for _, part := range parts {
		fh, _, err := c.Mkdir(cur, part, 0o755)
		if err != nil {
			if nfsproto.StatusOf(err) == nfsproto.ErrExist {
				fh, _, err = c.Lookup(cur, part)
			}
			if err != nil {
				return fhandle.Handle{}, err
			}
		}
		cur = fh
	}
	return cur, nil
}

// Symlink creates a symbolic link named name in dir pointing at target.
func (c *Client) Symlink(dir fhandle.Handle, name, target string) (fhandle.Handle, attr.Attr, error) {
	args := nfsproto.SymlinkArgs{Dir: dir, Name: name, Target: target}
	var res nfsproto.CreateRes
	if err := c.call(dir, nfsproto.ProcSymlink, &args, &res); err != nil {
		return fhandle.Handle{}, attr.Attr{}, err
	}
	return res.FH, res.Attr.Attr, res.Status.Error()
}

// ReadLink returns a symbolic link's target path.
func (c *Client) ReadLink(fh fhandle.Handle) (string, error) {
	var res nfsproto.ReadLinkRes
	if err := c.call(fh, nfsproto.ProcReadLink, &nfsproto.ReadLinkArgs{FH: fh}, &res); err != nil {
		return "", err
	}
	return res.Target, res.Status.Error()
}
