package ensemble

import (
	"encoding/json"
	"testing"

	"slice/internal/netsim"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/route"
	"slice/internal/workload"
	"slice/internal/xdr"
)

// obsWorkload drives traffic across every hop kind: mount (NewClient),
// directory ops (untar), a small write (small-file server), a large
// write (storage nodes), and a commit (coordinator intend/complete plus
// per-site commits).
func obsWorkload(t *testing.T, e *Ensemble) {
	t.Helper()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := workload.Untar(c, c.Root(), workload.UntarConfig{Entries: 40}); err != nil {
		t.Fatalf("untar: %v", err)
	}

	small, _, err := c.Create(c.Root(), "small", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(small, 0, make([]byte, 1024), true); err != nil {
		t.Fatal(err)
	}

	big, _, err := c.Create(c.Root(), "big", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256<<10)
	if _, err := c.Write(big, 0, data, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(big); err != nil {
		t.Fatal(err)
	}
}

// TestObsHopAttribution runs a traced workload across the full ensemble
// and asserts that the observability layer attributed >0 time to every
// hop the requests crossed — per-stage and per-hop histograms at the
// µproxy, per-op histograms at every server class, and archived spans
// whose hops cover the whole path.
func TestObsHopAttribution(t *testing.T) {
	e, err := New(Config{
		StorageNodes: 2, DirServers: 2, SmallFileServers: 1,
		Coordinator: true, NameKind: route.MkdirSwitching, MkdirP: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	obsWorkload(t, e)

	snap := e.Obs.Snapshot()
	up, ok := snap.Component("uproxy")
	if !ok {
		t.Fatal("no uproxy component in snapshot")
	}
	nonzero := func(name string) {
		t.Helper()
		h, ok := up.Hists[name]
		if !ok || h.Count() == 0 {
			t.Errorf("uproxy %s: no samples", name)
			return
		}
		if h.Percentile(0.5) == 0 {
			t.Errorf("uproxy %s: p50 is zero", name)
		}
	}
	for _, name := range []string{
		"stage.classify", "stage.route", "stage.rewrite",
		"hop.mount", "hop.dirsrv", "hop.smallfile", "hop.storage", "hop.coord",
		"e2e.mount.mnt", "e2e.nfs.create", "e2e.nfs.write", "e2e.nfs.commit",
	} {
		nonzero(name)
	}

	// Every server class timed its handlers.
	for _, comp := range []string{"dirsrv[0]", "smallfile[0]", "coord"} {
		cs, ok := snap.Component(comp)
		if !ok {
			t.Errorf("no %s component in snapshot", comp)
			continue
		}
		var total uint64
		for _, h := range cs.Hists {
			total += h.Count()
		}
		if total == 0 {
			t.Errorf("%s: no handler samples", comp)
		}
	}
	if snap.MergeOpClass("nfs.create").Count() == 0 {
		t.Error("no nfs.create samples across directory servers")
	}
	if snap.MergeOpClass("coord.intend").Count() == 0 {
		t.Error("no coord.intend samples at the coordinator")
	}

	// Archived spans cover every hop kind the workload crossed, each with
	// time attributed to it.
	covered := map[obs.HopKind]bool{}
	traced := map[obs.HopKind]bool{}
	for _, rec := range e.Obs.Traces(0) {
		n := rec.NHops
		if n > obs.MaxHops {
			n = obs.MaxHops
		}
		for _, h := range rec.Hops[:n] {
			if h.TotalNS > 0 {
				covered[h.Kind] = true
			}
			if h.ServerNS > 0 {
				traced[h.Kind] = true
			}
		}
	}
	for _, k := range []obs.HopKind{obs.HopMount, obs.HopDirsrv, obs.HopSmallfile, obs.HopStorage, obs.HopCoord} {
		if !covered[k] {
			t.Errorf("no span attributes time to hop %s", k)
		}
	}
	// µproxy-originated RPCs carry the trace id, so those hops must also
	// have server-side handler time from the reply trailer.
	for _, k := range []obs.HopKind{obs.HopStorage, obs.HopCoord} {
		if !traced[k] {
			t.Errorf("no span carries server-side time for hop %s", k)
		}
	}
}

// TestObsStatsOverWire exercises the absorbed stats program end to end:
// an ordinary RPC client asks the virtual server for a snapshot and for
// recent traces, and gets the collector's JSON back.
func TestObsStatsOverWire(t *testing.T) {
	e, err := New(Config{
		StorageNodes: 2, DirServers: 1, SmallFileServers: 1,
		Coordinator: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	obsWorkload(t, e)

	port, err := e.Net.Bind(netsim.Addr{Host: HostClient0 + 90, Port: 901})
	if err != nil {
		t.Fatal(err)
	}
	rc := oncrpc.NewClient(port, e.Virtual, oncrpc.ClientConfig{})
	defer rc.Close()

	body, err := rc.Call(obs.Program, obs.Version, obs.ProcSnapshot, func(enc *xdr.Encoder) {
		enc.PutUint32(0)
	})
	if err != nil {
		t.Fatalf("snapshot call: %v", err)
	}
	raw, err := xdr.NewDecoder(body).Opaque()
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.ClusterSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot json: %v", err)
	}
	if _, ok := snap.Component("uproxy"); !ok {
		t.Error("wire snapshot missing uproxy component")
	}
	if snap.MergeOpClass("nfs.create").Count() == 0 {
		t.Error("wire snapshot has no nfs.create samples")
	}

	body, err = rc.Call(obs.Program, obs.Version, obs.ProcTraces, func(enc *xdr.Encoder) {
		enc.PutUint32(16)
	})
	if err != nil {
		t.Fatalf("traces call: %v", err)
	}
	raw, err = xdr.NewDecoder(body).Opaque()
	if err != nil {
		t.Fatal(err)
	}
	var spans []obs.NamedSpan
	if err := json.Unmarshal(raw, &spans); err != nil {
		t.Fatalf("traces json: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("wire traces empty")
	}
	if len(spans) > 16 {
		t.Fatalf("wire traces: got %d spans, asked for 16", len(spans))
	}
	for _, s := range spans {
		if s.Component != "uproxy" {
			t.Fatalf("span component %q", s.Component)
		}
	}
}
