package nfsproto

import (
	"slice/internal/fhandle"
	"slice/internal/xdr"
)

// RequestInfo is the µproxy's view of a request: the minimal set of fields
// the routing policies key on (§3 of the paper), extracted from the raw
// call body without a full decode. Byte offsets of the handle fields are
// recorded so that a rewriting µproxy can patch them in place.
type RequestInfo struct {
	Proc Proc

	// FH is the primary handle: the target file for I/O and attribute
	// operations, or the parent directory for namespace operations.
	FH       fhandle.Handle
	FHOffset int // byte offset of FH within the call body

	// Name is the name argument of namespace operations.
	Name    string
	HasName bool

	// FH2/Name2 carry the second (handle, name) pair of RENAME, and the
	// target directory of LINK.
	FH2       fhandle.Handle
	FH2Offset int
	Name2     string
	HasFH2    bool
	HasName2  bool

	// Offset and Count describe I/O requests (READ, WRITE, COMMIT).
	Offset uint64
	Count  uint32
	IsIO   bool
}

// ParseCall extracts routing fields from an encoded call body for proc.
// It performs the same work the Slice packet filter does when it decodes
// a request to prepare for rewriting (§4.1); its cost is what Table 3
// reports as "packet decode".
func ParseCall(proc Proc, body []byte) (RequestInfo, error) {
	info := RequestInfo{Proc: proc}
	d := xdr.NewDecoder(body)
	var err error

	switch proc {
	case ProcNull:
		return info, nil

	case ProcGetAttr, ProcFsStat, ProcReadLink:
		info.FHOffset = d.Offset()
		info.FH, err = fhandle.Decode(d)
		return info, err

	case ProcSetAttr:
		info.FHOffset = d.Offset()
		info.FH, err = fhandle.Decode(d)
		return info, err

	case ProcAccess:
		info.FHOffset = d.Offset()
		info.FH, err = fhandle.Decode(d)
		return info, err

	case ProcLookup, ProcRemove, ProcRmdir, ProcCreate, ProcMkdir, ProcSymlink:
		info.FHOffset = d.Offset()
		if info.FH, err = fhandle.Decode(d); err != nil {
			return info, err
		}
		info.Name, err = d.String()
		info.HasName = err == nil
		return info, err

	case ProcRename:
		info.FHOffset = d.Offset()
		if info.FH, err = fhandle.Decode(d); err != nil {
			return info, err
		}
		if info.Name, err = d.String(); err != nil {
			return info, err
		}
		info.HasName = true
		info.FH2Offset = d.Offset()
		if info.FH2, err = fhandle.Decode(d); err != nil {
			return info, err
		}
		info.HasFH2 = true
		info.Name2, err = d.String()
		info.HasName2 = err == nil
		return info, err

	case ProcLink:
		info.FHOffset = d.Offset()
		if info.FH, err = fhandle.Decode(d); err != nil {
			return info, err
		}
		info.FH2Offset = d.Offset()
		if info.FH2, err = fhandle.Decode(d); err != nil {
			return info, err
		}
		info.HasFH2 = true
		info.Name2, err = d.String()
		info.HasName2 = err == nil
		return info, err

	case ProcRead, ProcCommit:
		info.FHOffset = d.Offset()
		if info.FH, err = fhandle.Decode(d); err != nil {
			return info, err
		}
		if info.Offset, err = d.Uint64(); err != nil {
			return info, err
		}
		if info.Count, err = d.Uint32(); err != nil {
			return info, err
		}
		info.IsIO = true
		return info, nil

	case ProcWrite:
		info.FHOffset = d.Offset()
		if info.FH, err = fhandle.Decode(d); err != nil {
			return info, err
		}
		if info.Offset, err = d.Uint64(); err != nil {
			return info, err
		}
		if info.Count, err = d.Uint32(); err != nil {
			return info, err
		}
		info.IsIO = true
		return info, nil

	case ProcReadDir:
		info.FHOffset = d.Offset()
		if info.FH, err = fhandle.Decode(d); err != nil {
			return info, err
		}
		info.Offset, err = d.Uint64() // cookie doubles as offset
		return info, err

	default:
		return info, &StatusError{Status: ErrNotSupp}
	}
}

// Class partitions requests into the three workload components of Fig. 1:
// bulk/small I/O, namespace operations, and attribute operations.
type Class int

// Request classes.
const (
	ClassNone Class = iota
	ClassIO         // READ / WRITE / COMMIT: routed by offset and placement
	ClassName       // namespace ops: routed to directory servers
	ClassAttr       // GETATTR / SETATTR / ACCESS / FSSTAT: directory servers
	ClassDir        // READDIR: directory servers (may span sites)
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassIO:
		return "io"
	case ClassName:
		return "name"
	case ClassAttr:
		return "attr"
	case ClassDir:
		return "dir"
	default:
		return "none"
	}
}

// ClassOf returns the request class for proc.
func ClassOf(proc Proc) Class {
	switch proc {
	case ProcRead, ProcWrite, ProcCommit:
		return ClassIO
	case ProcLookup, ProcCreate, ProcMkdir, ProcSymlink, ProcRemove,
		ProcRmdir, ProcRename, ProcLink:
		return ClassName
	case ProcGetAttr, ProcSetAttr, ProcAccess, ProcFsStat, ProcReadLink:
		return ClassAttr
	case ProcReadDir:
		return ClassDir
	default:
		return ClassNone
	}
}
