package route

import (
	"math"
	"testing"

	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
)

func addrs(n int) []netsim.Addr {
	out := make([]netsim.Addr, n)
	for i := range out {
		out[i] = netsim.Addr{Host: uint32(10 + i), Port: 2049}
	}
	return out
}

func regFH(id uint64, site uint32) fhandle.Handle {
	return fhandle.Handle{Volume: 1, FileID: id, Type: 1, CellKey: id, Site: site, Gen: 1}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable(8, addrs(3))
	if tb.NumLogical() != 8 {
		t.Fatalf("logical sites = %d", tb.NumLogical())
	}
	for key := uint64(0); key < 100; key++ {
		site := tb.Site(key)
		if site >= 8 {
			t.Fatalf("site %d out of range", site)
		}
		a, err := tb.Lookup(site)
		if err != nil {
			t.Fatal(err)
		}
		want := addrs(3)[site%3]
		if a != want {
			t.Fatalf("site %d -> %v, want %v", site, a, want)
		}
	}
}

func TestTableRaisesLogicalToPhysical(t *testing.T) {
	tb := NewTable(2, addrs(5))
	if tb.NumLogical() != 5 {
		t.Fatalf("logical %d, want raised to 5", tb.NumLogical())
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable(4, nil)
	if _, err := tb.Lookup(0); err == nil {
		t.Fatal("empty table lookup succeeded")
	}
}

// TestSwapPreservesKeys is the reconfiguration property of §3.3.1: after
// rebinding physical servers, a key maps to the same logical site.
func TestSwapPreservesKeys(t *testing.T) {
	tb := NewTable(16, addrs(4))
	var sites []uint32
	for key := uint64(0); key < 64; key++ {
		sites = append(sites, tb.Site(key))
	}
	v1 := tb.Version()
	tb.Swap(addrs(8))
	if tb.Version() == v1 {
		t.Fatal("version unchanged by swap")
	}
	if tb.NumLogical() != 16 {
		t.Fatalf("swap changed logical sites to %d", tb.NumLogical())
	}
	for key := uint64(0); key < 64; key++ {
		if tb.Site(key) != sites[key] {
			t.Fatalf("key %d moved logical site after swap", key)
		}
	}
}

func TestNumPhysicalDeduplicates(t *testing.T) {
	// 8 logical sites over 3 physical nodes: width is 3, not 8.
	tb := NewTable(8, addrs(3))
	if n := tb.NumPhysical(); n != 3 {
		t.Fatalf("NumPhysical = %d, want 3", n)
	}
	if n := NewTable(4, nil).NumPhysical(); n != 0 {
		t.Fatalf("empty table NumPhysical = %d, want 0", n)
	}
}

func TestWindowFor(t *testing.T) {
	p := NewIOPolicy(nil, NewTable(8, addrs(4)))
	if w := p.WindowFor(4); w != 16 {
		t.Fatalf("WindowFor(4) over 4 nodes = %d, want 16", w)
	}
	if w := p.WindowFor(0); w != 4 {
		t.Fatalf("WindowFor(0) = %d, want 4 (per-node floor of 1)", w)
	}
	empty := NewIOPolicy(nil, NewTable(4, nil))
	if w := empty.WindowFor(4); w != 4 {
		t.Fatalf("WindowFor(4) over empty table = %d, want 4", w)
	}
}

func TestIOPolicyThreshold(t *testing.T) {
	p := NewIOPolicy(NewTable(2, addrs(2)), NewTable(4, addrs(4)))
	if !p.SmallFileTarget(0) || !p.SmallFileTarget(DefaultThreshold-1) {
		t.Fatal("offsets below threshold not sent to small-file servers")
	}
	if p.SmallFileTarget(DefaultThreshold) {
		t.Fatal("threshold offset sent to small-file server")
	}
	// Without small-file servers everything goes to storage.
	p2 := NewIOPolicy(nil, NewTable(4, addrs(4)))
	if p2.SmallFileTarget(0) {
		t.Fatal("no small-file servers configured but target selected")
	}
}

func TestSmallFileServerStableForFile(t *testing.T) {
	p := NewIOPolicy(NewTable(4, addrs(4)), NewTable(4, addrs(4)))
	fh := regFH(77, 0)
	a1, err := p.SmallFileServer(fh)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := p.SmallFileServer(fh)
	if a1 != a2 {
		t.Fatal("small-file server changed between calls")
	}
}

func TestStripingDeclusters(t *testing.T) {
	p := NewIOPolicy(nil, NewTable(8, addrs(8)))
	fh := regFH(42, 0)
	seen := make(map[uint32]bool)
	for stripe := uint64(0); stripe < 16; stripe++ {
		sites := p.StorageSites(fh, stripe)
		if len(sites) != 1 {
			t.Fatalf("unmirrored file got %d sites", len(sites))
		}
		seen[sites[0]] = true
	}
	if len(seen) < 8 {
		t.Fatalf("16 stripes used only %d of 8 sites", len(seen))
	}
	// Consecutive stripes land on different sites.
	s0 := p.StorageSites(fh, 0)[0]
	s1 := p.StorageSites(fh, 1)[0]
	if s0 == s1 {
		t.Fatal("consecutive stripes colocated")
	}
}

func TestDifferentFilesStartDifferently(t *testing.T) {
	p := NewIOPolicy(nil, NewTable(8, addrs(8)))
	starts := make(map[uint32]int)
	for id := uint64(1); id <= 64; id++ {
		starts[p.StorageSites(regFH(id, 0), 0)[0]]++
	}
	if len(starts) < 4 {
		t.Fatalf("64 files start on only %d sites", len(starts))
	}
}

func TestMirroredPlacement(t *testing.T) {
	p := NewIOPolicy(nil, NewTable(4, addrs(4)))
	fh := regFH(5, 0)
	fh.MirrorDegree = 2
	fh.Flags = fhandle.FlagMirrored
	sites := p.StorageSites(fh, 3)
	if len(sites) != 2 {
		t.Fatalf("mirror degree 2 got %d sites", len(sites))
	}
	if sites[0] == sites[1] {
		t.Fatal("replicas colocated")
	}
	targets, err := p.WriteTargets(fh, 3)
	if err != nil || len(targets) != 2 {
		t.Fatalf("write targets: %v, %v", targets, err)
	}
	// Reads alternate between the replicas by stripe index.
	r0, _ := p.ReadTarget(fh, 0)
	r1, _ := p.ReadTarget(fh, 1)
	if r0 == r1 {
		t.Fatal("mirrored reads do not alternate replicas")
	}
}

func TestMirrorDegreeClampedToArray(t *testing.T) {
	p := NewIOPolicy(nil, NewTable(2, addrs(2)))
	fh := regFH(5, 0)
	fh.MirrorDegree = 8
	fh.Flags = fhandle.FlagMirrored
	if got := len(p.StorageSites(fh, 0)); got != 2 {
		t.Fatalf("degree clamp: %d sites from a 2-node array", got)
	}
}

func TestSpanStripes(t *testing.T) {
	p := NewIOPolicy(nil, NewTable(4, addrs(4)))
	first, last := p.SpanStripes(0, 32768)
	if first != 0 || last != 0 {
		t.Fatalf("aligned 32K: %d..%d", first, last)
	}
	first, last = p.SpanStripes(32768, 32768)
	if first != 1 || last != 1 {
		t.Fatalf("second unit: %d..%d", first, last)
	}
	first, last = p.SpanStripes(1000, 64*1024)
	if first != 0 || last != 2 {
		t.Fatalf("unaligned span: %d..%d", first, last)
	}
	first, last = p.SpanStripes(5000, 0)
	if first != last {
		t.Fatalf("zero-length span: %d..%d", first, last)
	}
}

func mkInfo(proc nfsproto.Proc, parent fhandle.Handle, name string) nfsproto.RequestInfo {
	return nfsproto.RequestInfo{Proc: proc, FH: parent, Name: name, HasName: name != ""}
}

func TestMkdirSwitchingParentAffinity(t *testing.T) {
	np := NewNamePolicy(MkdirSwitching, 0, NewTable(4, addrs(4)))
	parent := regFH(100, 2)
	// Non-mkdir ops always go to the parent's site.
	for _, proc := range []nfsproto.Proc{nfsproto.ProcLookup, nfsproto.ProcCreate, nfsproto.ProcRemove} {
		info := mkInfo(proc, parent, "n")
		site, orphan := np.SiteFor(&info)
		if site != 2 || orphan {
			t.Fatalf("%v routed to %d (orphan=%v), want parent site 2", proc, site, orphan)
		}
	}
	// With P=0 mkdirs stay home too.
	info := mkInfo(nfsproto.ProcMkdir, parent, "sub")
	if site, _ := np.SiteFor(&info); site != 2 {
		t.Fatalf("P=0 mkdir redirected to %d", site)
	}
}

func TestMkdirSwitchingRedirectionRate(t *testing.T) {
	for _, p := range []float64{0.25, 0.5, 1.0} {
		np := NewNamePolicy(MkdirSwitching, p, NewTable(8, addrs(8)))
		parent := regFH(100, 1)
		redirected := 0
		const n = 4000
		for i := 0; i < n; i++ {
			info := mkInfo(nfsproto.ProcMkdir, parent, "dir"+string(rune(i))+string(rune(i>>8)))
			if _, orphan := np.SiteFor(&info); orphan {
				redirected++
			}
		}
		got := float64(redirected) / n
		// The decision hashes to "redirect" with probability p, but a
		// redirect landing back on the parent site is not an orphan, so
		// expect p*(L-1)/L with L=8 logical sites.
		want := p * 7 / 8
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("P=%.2f: redirect fraction %.3f, want ≈%.3f", p, got, want)
		}
	}
}

func TestMkdirSwitchingDeterministic(t *testing.T) {
	np := NewNamePolicy(MkdirSwitching, 0.5, NewTable(8, addrs(8)))
	parent := regFH(100, 1)
	info := mkInfo(nfsproto.ProcMkdir, parent, "the-dir")
	s1, o1 := np.SiteFor(&info)
	for i := 0; i < 10; i++ {
		s2, o2 := np.SiteFor(&info)
		if s1 != s2 || o1 != o2 {
			t.Fatal("mkdir routing not deterministic for identical requests")
		}
	}
}

func TestNameHashingConflictsColocate(t *testing.T) {
	np := NewNamePolicy(NameHashing, 0, NewTable(8, addrs(8)))
	parent := regFH(100, 3)
	// create/remove/lookup of the same name must hash to the same site.
	procs := []nfsproto.Proc{nfsproto.ProcCreate, nfsproto.ProcRemove, nfsproto.ProcLookup}
	var first uint32
	for i, proc := range procs {
		info := mkInfo(proc, parent, "contested")
		site, _ := np.SiteFor(&info)
		if i == 0 {
			first = site
		} else if site != first {
			t.Fatalf("%v hashed to %d, create to %d", proc, site, first)
		}
	}
	// Handle-keyed ops go to the handle's site.
	info := nfsproto.RequestInfo{Proc: nfsproto.ProcGetAttr, FH: parent}
	if site, _ := np.SiteFor(&info); site != 3 {
		t.Fatalf("getattr routed to %d, want handle site", site)
	}
}

func TestNameHashingBalance(t *testing.T) {
	const sites = 8
	np := NewNamePolicy(NameHashing, 0, NewTable(sites, addrs(sites)))
	parent := regFH(100, 0)
	counts := make([]int, sites)
	const names = 8000
	for i := 0; i < names; i++ {
		info := mkInfo(nfsproto.ProcCreate, parent, "f"+string(rune(i))+string(rune(i>>8)))
		site, _ := np.SiteFor(&info)
		counts[site]++
	}
	mean := names / sites
	for s, c := range counts {
		if c < mean*7/10 || c > mean*13/10 {
			t.Fatalf("site %d holds %d names (mean %d): unbalanced", s, c, mean)
		}
	}
}

func TestNameHashingLinkRoutesToNewEntry(t *testing.T) {
	np := NewNamePolicy(NameHashing, 0, NewTable(8, addrs(8)))
	info := nfsproto.RequestInfo{
		Proc: nfsproto.ProcLink,
		FH:   regFH(5, 1),
		FH2:  regFH(6, 2), HasFH2: true,
		Name2: "newname", HasName2: true,
	}
	site, _ := np.SiteFor(&info)
	want := np.Dirs.Site(fhandle.NameKey(fhandle.Handle{Volume: 1, FileID: 6, Gen: 1}, "newname"))
	if site != want {
		t.Fatalf("link routed to %d, want new-entry site %d", site, want)
	}
}

func TestRedirectStats(t *testing.T) {
	np := NewNamePolicy(MkdirSwitching, 1.0, NewTable(8, addrs(8)))
	parent := regFH(1, 0)
	for i := 0; i < 100; i++ {
		info := mkInfo(nfsproto.ProcMkdir, parent, "d"+string(rune(i)))
		np.SiteFor(&info)
	}
	mkdirs, redirects := np.RedirectStats()
	if mkdirs != 100 {
		t.Fatalf("mkdirs = %d", mkdirs)
	}
	if redirects < 75 { // 1/8 of hash targets land home and do not count
		t.Fatalf("redirects = %d with P=1", redirects)
	}
}

func TestAddrFor(t *testing.T) {
	np := NewNamePolicy(MkdirSwitching, 0, NewTable(4, addrs(4)))
	info := mkInfo(nfsproto.ProcLookup, regFH(9, 1), "x")
	a, err := np.AddrFor(&info)
	if err != nil {
		t.Fatal(err)
	}
	if a != addrs(4)[1] {
		t.Fatalf("AddrFor = %v", a)
	}
}
