// Package chaos exercises Slice's failure model end to end: components
// are crashed, partitioned, and restarted from their write-ahead logs
// while clients keep issuing work, and the tests assert the paper's
// recovery guarantees — acknowledged updates survive, no data blocks are
// orphaned, and clients ride out every fault through ordinary end-to-end
// retransmission (§2.1, §2.3, §4.2).
//
// This file is the workload harness the chaos tests share; the fault
// scenarios themselves live in the test files.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"os"
	"path/filepath"
	"strings"

	"slice/internal/checksum"
	"slice/internal/client"
	"slice/internal/dirsrv"
	"slice/internal/ensemble"
	"slice/internal/fhandle"
	"slice/internal/nfsproto"
	"slice/internal/oncrpc"
	"slice/internal/storage"
	"slice/internal/wal"
)

// Retry runs op until it succeeds, fails with a permanent (non-timeout)
// error, or the budget expires. Timeouts are the signature of a crashed
// or partitioned component, and retrying through them is exactly the
// end-to-end recovery the architecture prescribes for clients.
func Retry(budget time.Duration, op func() error) error {
	deadline := time.Now().Add(budget)
	for {
		err := op()
		if err == nil || !errors.Is(err, oncrpc.ErrTimedOut) {
			return err
		}
		if time.Now().After(deadline) {
			return err
		}
	}
}

// WaitFor polls cond every few milliseconds until it holds or the budget
// expires, reporting whether it held.
func WaitFor(budget time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(budget)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Entry is one acknowledged namespace update made by the workload.
type Entry struct {
	Parent fhandle.Handle
	Name   string
	FH     fhandle.Handle
	Dir    bool
}

// UntarConfig shapes the fault-tolerant untar workload.
type UntarConfig struct {
	Dirs  int // directories created first, nested under each other
	Files int // files spread round-robin over the directories
	// OpBudget bounds the retries of one operation across injected
	// faults; it must exceed the longest crash-to-restart window.
	OpBudget time.Duration
	// OnEntry, when set, observes each acknowledged entry (1-based
	// count); chaos tests use it to trigger faults mid-workload.
	OnEntry func(n int)
}

// Untar unpacks a synthetic tree under root, tolerating the transient
// failures chaos injects: timed-out operations are retried, and a
// retried create that finds its entry already present (the first attempt
// landed; only its acknowledgement was lost) resolves the existing entry
// and counts it as acknowledged. It returns every acknowledged entry so
// the caller can assert none were lost.
func Untar(c *client.Client, root fhandle.Handle, cfg UntarConfig) ([]Entry, error) {
	if cfg.OpBudget <= 0 {
		cfg.OpBudget = 10 * time.Second
	}
	acked := make([]Entry, 0, cfg.Dirs+cfg.Files)
	note := func(e Entry) {
		acked = append(acked, e)
		if cfg.OnEntry != nil {
			cfg.OnEntry(len(acked))
		}
	}

	parents := []fhandle.Handle{root}
	for i := 0; i < cfg.Dirs; i++ {
		parent := parents[i%len(parents)]
		name := fmt.Sprintf("d%03d", i)
		fh, err := ensure(c, cfg.OpBudget, parent, name, true)
		if err != nil {
			return acked, fmt.Errorf("chaos untar: mkdir %s: %w", name, err)
		}
		parents = append(parents, fh)
		note(Entry{Parent: parent, Name: name, FH: fh, Dir: true})
	}
	for i := 0; i < cfg.Files; i++ {
		parent := parents[1+i%(len(parents)-1)]
		name := fmt.Sprintf("f%04d.c", i)
		fh, err := ensure(c, cfg.OpBudget, parent, name, false)
		if err != nil {
			return acked, fmt.Errorf("chaos untar: create %s: %w", name, err)
		}
		note(Entry{Parent: parent, Name: name, FH: fh})
	}
	return acked, nil
}

// ensure creates (dir or file) the named entry, resolving it instead if
// a lost acknowledgement made the retry collide with its own earlier
// success.
func ensure(c *client.Client, budget time.Duration, parent fhandle.Handle, name string, dir bool) (fhandle.Handle, error) {
	var fh fhandle.Handle
	err := Retry(budget, func() error {
		var h fhandle.Handle
		var err error
		if dir {
			h, _, err = c.Mkdir(parent, name, 0o755)
		} else {
			h, _, err = c.Create(parent, name, 0o644, true)
		}
		if err != nil && nfsproto.StatusOf(err) == nfsproto.ErrExist {
			h, _, err = c.Lookup(parent, name)
		}
		if err == nil {
			fh = h
		}
		return err
	})
	return fh, err
}

// FsckClean asserts the namespace passes the cross-server consistency
// check — the closing assertion of every chaos scenario.
func FsckClean(t testing.TB, e *ensemble.Ensemble) {
	t.Helper()
	if problems := dirsrv.Check(e.Dirs, e.Root); len(problems) != 0 {
		t.Fatalf("fsck found %d problems after recovery: %v", len(problems), problems)
	}
}

// VerifyBytes reads fh back through both the windowed (readahead
// pipelined) path and a serial client and asserts each returns exactly
// want — the byte-identity check the bulk chaos scenarios share.
func VerifyBytes(t testing.TB, e *ensemble.Ensemble, c *client.Client, fh fhandle.Handle, want []byte) {
	t.Helper()
	sum := checksum.Sum(want)
	got, err := c.ReadAll(fh)
	if err != nil {
		t.Fatalf("windowed read back: %v", err)
	}
	if len(got) != len(want) || checksum.Sum(got) != sum {
		t.Fatalf("windowed read: %d bytes sum %#x, want %d bytes sum %#x",
			len(got), checksum.Sum(got), len(want), sum)
	}
	serial, err := e.NewSerialClient()
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	got2, err := serial.ReadAll(fh)
	if err != nil {
		t.Fatalf("serial read back: %v", err)
	}
	if !bytes.Equal(got, got2) {
		t.Fatal("windowed and serial readers disagree byte-for-byte")
	}
}

// ReplicaGroupsIdentical asserts every live member of every replica
// group holds byte-identical copies of every object. Small-file backing
// objects (ID top byte 0x5F) are excluded: they live on one node by
// design and never take the replicated path.
func ReplicaGroupsIdentical(t testing.TB, e *ensemble.Ensemble) {
	t.Helper()
	if e.Replicas == nil {
		t.Fatal("ensemble is not replicated")
	}
	for _, g := range e.Replicas.Groups() {
		var members []*storage.Node
		for _, a := range g.Members {
			i := int(a.Host - ensemble.HostStorage0)
			if i < 0 || i >= len(e.Storage) || e.Storage[i] == nil {
				t.Fatalf("replica group %d member %v is down", g.ID, a)
			}
			members = append(members, e.Storage[i])
		}
		ref := members[0].Store()
		var after storage.ObjectID
		for {
			page := ref.ListAfter(after, 128)
			if len(page) == 0 {
				break
			}
			for _, ent := range page {
				after = ent.ID
				if uint64(ent.ID)>>56 == 0x5F {
					continue
				}
				want := make([]byte, ent.Size)
				if ent.Size > 0 {
					ref.ReadAt(ent.ID, 0, want)
				}
				for mi, m := range members[1:] {
					size, ok := m.Store().Size(ent.ID)
					if !ok || size != ent.Size {
						t.Fatalf("group %d member %d: object %d size %d, want %d (ok=%v)",
							g.ID, mi+1, ent.ID, size, ent.Size, ok)
					}
					got := make([]byte, ent.Size)
					if ent.Size > 0 {
						m.Store().ReadAt(ent.ID, 0, got)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("group %d member %d: object %d differs from primary", g.ID, mi+1, ent.ID)
					}
				}
			}
		}
	}
}

// VerifyAcked resolves every acknowledged entry through the live stack
// and returns the ones that no longer exist or changed identity — the
// lost-update check the chaos scenarios assert empty.
func VerifyAcked(c *client.Client, budget time.Duration, acked []Entry) []string {
	var lost []string
	for _, e := range acked {
		var got fhandle.Handle
		err := Retry(budget, func() error {
			h, _, err := c.Lookup(e.Parent, e.Name)
			got = h
			return err
		})
		switch {
		case err != nil:
			lost = append(lost, fmt.Sprintf("%s: %v", e.Name, err))
		case got.Ident() != e.FH.Ident():
			lost = append(lost, fmt.Sprintf("%s: identity changed", e.Name))
		}
	}
	return lost
}

// ArtifactsOnFailure registers a cleanup that, when the test fails and
// CHAOS_ARTIFACT_DIR is set (the nightly CI matrix points it at the
// upload directory), dumps the ensemble's forensic state there: every
// intention log (coordinator, directory servers, small-file servers) as
// raw WAL bytes plus a cluster-wide obs snapshot. Without the env var
// this is a no-op, so local runs stay clean.
func ArtifactsOnFailure(t testing.TB, e *ensemble.Ensemble) {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		sub := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_"))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Logf("artifacts: %v", err)
			return
		}
		if err := os.WriteFile(filepath.Join(sub, "obs_snapshot.json"), e.Obs.SnapshotJSON(), 0o644); err != nil {
			t.Logf("artifacts: %v", err)
		}
		dump := func(name string, store *wal.MemStore) {
			if store == nil {
				return
			}
			b, err := store.Contents()
			if err != nil {
				t.Logf("artifacts: %s: %v", name, err)
				return
			}
			if err := os.WriteFile(filepath.Join(sub, name), b, 0o644); err != nil {
				t.Logf("artifacts: %s: %v", name, err)
			}
		}
		dump("coord.wal", e.CoordLog)
		for i, s := range e.DirLogs {
			dump(fmt.Sprintf("dir%d.wal", i), s)
		}
		for i, s := range e.SmallLogs {
			dump(fmt.Sprintf("small%d.wal", i), s)
		}
		t.Logf("artifacts: dumped WALs and obs snapshot to %s", sub)
	})
}
