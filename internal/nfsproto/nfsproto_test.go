package nfsproto

import (
	"bytes"
	"reflect"
	"testing"

	"slice/internal/attr"
	"slice/internal/fhandle"
	"slice/internal/xdr"
)

func fh(id uint64) fhandle.Handle {
	return fhandle.Handle{Volume: 1, FileID: id, Type: 1, CellKey: id, Site: 2, Gen: 1}
}

func at() attr.Attr {
	return attr.Attr{Type: attr.TypeReg, Mode: 0o644, Nlink: 1, Size: 10,
		FileID: 9, Mtime: attr.Time{Sec: 5}}
}

// roundTrip encodes a message and decodes it into a fresh instance.
func roundTrip(t *testing.T, in Msg, out Msg) {
	t.Helper()
	e := xdr.NewEncoder(256)
	in.Encode(e)
	if err := out.Decode(xdr.NewDecoder(e.Bytes())); err != nil {
		t.Fatalf("%T decode: %v", in, err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("%T round trip:\n in: %+v\nout: %+v", in, in, out)
	}
}

func TestAllMessagesRoundTrip(t *testing.T) {
	pairs := []struct{ in, out Msg }{
		{&GetAttrArgs{FH: fh(1)}, &GetAttrArgs{}},
		{&GetAttrRes{Status: OK, Attr: at()}, &GetAttrRes{}},
		{&GetAttrRes{Status: ErrStale}, &GetAttrRes{}},
		{&SetAttrArgs{FH: fh(2), Sattr: attr.SetAttr{SetSize: true, Size: 77}}, &SetAttrArgs{}},
		{&SetAttrRes{Status: OK, Attr: Some(at())}, &SetAttrRes{}},
		{&LookupArgs{Dir: fh(3), Name: "file.c"}, &LookupArgs{}},
		{&LookupRes{Status: OK, FH: fh(4), Attr: Some(at()), DirAttr: Some(at())}, &LookupRes{}},
		{&LookupRes{Status: ErrNoEnt, DirAttr: Some(at())}, &LookupRes{}},
		{&AccessArgs{FH: fh(5), Access: AccessRead | AccessModify}, &AccessArgs{}},
		{&AccessRes{Status: OK, Attr: Some(at()), Access: AccessRead}, &AccessRes{}},
		{&ReadArgs{FH: fh(6), Offset: 1 << 33, Count: 32768}, &ReadArgs{}},
		{&ReadRes{Status: OK, Attr: Some(at()), Count: 4, EOF: true, Data: []byte("data")}, &ReadRes{}},
		{&ReadRes{Status: ErrIO, Attr: OptAttr{}}, &ReadRes{}},
		{&WriteArgs{FH: fh(7), Offset: 8192, Count: 3, Stable: FileSync, Data: []byte("abc")}, &WriteArgs{}},
		{&WriteRes{Status: OK, Count: 3, Committed: FileSync, Verf: 99}, &WriteRes{}},
		{&CreateArgs{Dir: fh(8), Name: "new", Exclusive: true,
			Sattr: attr.SetAttr{SetMode: true, Mode: 0o600}}, &CreateArgs{}},
		{&CreateRes{Status: OK, FH: fh(9), Attr: Some(at()), DirAttr: Some(at())}, &CreateRes{}},
		{&RemoveArgs{Dir: fh(10), Name: "victim"}, &RemoveArgs{}},
		{&RemoveRes{Status: OK, DirAttr: Some(at())}, &RemoveRes{}},
		{&RenameArgs{FromDir: fh(11), FromName: "a", ToDir: fh(12), ToName: "b"}, &RenameArgs{}},
		{&RenameRes{Status: OK, FromDirAttr: Some(at()), ToDirAttr: Some(at())}, &RenameRes{}},
		{&LinkArgs{FH: fh(13), Dir: fh(14), Name: "alias"}, &LinkArgs{}},
		{&LinkRes{Status: OK, Attr: Some(at()), DirAttr: Some(at())}, &LinkRes{}},
		{&ReadDirArgs{Dir: fh(15), Cookie: 3, Count: 1024}, &ReadDirArgs{}},
		{&ReadDirRes{Status: OK, DirAttr: Some(at()), EOF: true, Entries: []DirEntry{
			{FileID: 1, Name: "x", Cookie: 1}, {FileID: 2, Name: "yy", Cookie: 2},
		}}, &ReadDirRes{}},
		{&FsStatArgs{FH: fh(16)}, &FsStatArgs{}},
		{&FsStatRes{Status: OK, Attr: Some(at()), TotalBytes: 1, FreeBytes: 2,
			TotalFiles: 3, FreeFiles: 4}, &FsStatRes{}},
		{&CommitArgs{FH: fh(17), Offset: 5, Count: 6}, &CommitArgs{}},
		{&CommitRes{Status: OK, Attr: Some(at()), Verf: 88}, &CommitRes{}},
	}
	for _, p := range pairs {
		roundTrip(t, p.in, p.out)
	}
}

func TestNewArgsNewResCoverage(t *testing.T) {
	procs := []Proc{ProcGetAttr, ProcSetAttr, ProcLookup, ProcAccess, ProcRead,
		ProcWrite, ProcCreate, ProcMkdir, ProcRemove, ProcRmdir, ProcRename,
		ProcLink, ProcReadDir, ProcFsStat, ProcCommit}
	for _, p := range procs {
		if NewArgs(p) == nil {
			t.Errorf("NewArgs(%v) = nil", p)
		}
		if NewRes(p) == nil {
			t.Errorf("NewRes(%v) = nil", p)
		}
	}
	if NewArgs(ProcNull) != nil || NewArgs(Proc(99)) != nil {
		t.Error("NewArgs invented a message for NULL/unknown")
	}
}

func TestStatusError(t *testing.T) {
	if OK.Error() != nil {
		t.Fatal("OK produced an error")
	}
	err := ErrNoEnt.Error()
	if err == nil || StatusOf(err) != ErrNoEnt {
		t.Fatalf("status error round trip: %v", err)
	}
	if StatusOf(nil) != OK {
		t.Fatal("StatusOf(nil)")
	}
	if StatusOf(bytes.ErrTooLarge) != ErrServerFault {
		t.Fatal("foreign error should map to ErrServerFault")
	}
}

func TestProcAndStatusStrings(t *testing.T) {
	if ProcLookup.String() != "LOOKUP" || ProcCommit.String() != "COMMIT" {
		t.Fatal("proc names")
	}
	if Proc(99).String() == "" {
		t.Fatal("unknown proc name empty")
	}
	if ErrNotEmpty.String() != "ENOTEMPTY" || ErrMisrouted.String() != "EMISROUTED" {
		t.Fatal("status names")
	}
}

func TestClassOf(t *testing.T) {
	cases := map[Proc]Class{
		ProcRead: ClassIO, ProcWrite: ClassIO, ProcCommit: ClassIO,
		ProcLookup: ClassName, ProcCreate: ClassName, ProcMkdir: ClassName,
		ProcRemove: ClassName, ProcRmdir: ClassName, ProcRename: ClassName,
		ProcLink:    ClassName,
		ProcGetAttr: ClassAttr, ProcSetAttr: ClassAttr, ProcAccess: ClassAttr,
		ProcFsStat:  ClassAttr,
		ProcReadDir: ClassDir,
		ProcNull:    ClassNone,
	}
	for p, want := range cases {
		if got := ClassOf(p); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestReadDirResRejectsHugeCount(t *testing.T) {
	e := xdr.NewEncoder(64)
	e.PutUint32(uint32(OK))
	(&OptAttr{}).Encode(e)
	e.PutUint32(1 << 30) // entry count
	var res ReadDirRes
	if err := res.Decode(xdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("hostile entry count accepted")
	}
}

func TestTruncatedMessagesError(t *testing.T) {
	msgs := []Msg{&LookupArgs{}, &WriteArgs{}, &ReadRes{}, &CreateRes{}, &RenameArgs{}}
	for _, m := range msgs {
		if err := m.Decode(xdr.NewDecoder([]byte{0, 1})); err == nil {
			t.Errorf("%T decoded from garbage", m)
		}
	}
}

func TestSymlinkMessagesRoundTrip(t *testing.T) {
	roundTrip(t, &SymlinkArgs{Dir: fh(20), Name: "ln", Target: "/a/b/c",
		Sattr: attr.SetAttr{SetMode: true, Mode: 0o777}}, &SymlinkArgs{})
	roundTrip(t, &ReadLinkArgs{FH: fh(21)}, &ReadLinkArgs{})
	roundTrip(t, &ReadLinkRes{Status: OK, Attr: Some(at()), Target: "/x"}, &ReadLinkRes{})
	roundTrip(t, &ReadLinkRes{Status: ErrStale}, &ReadLinkRes{})
	if ClassOf(ProcSymlink) != ClassName || ClassOf(ProcReadLink) != ClassAttr {
		t.Fatal("symlink procedure classes")
	}
	if NewArgs(ProcSymlink) == nil || NewArgs(ProcReadLink) == nil ||
		NewRes(ProcSymlink) == nil || NewRes(ProcReadLink) == nil {
		t.Fatal("symlink message registry")
	}
	if ProcSymlink.String() != "SYMLINK" || ProcReadLink.String() != "READLINK" {
		t.Fatal("symlink procedure names")
	}
}
