// Package replica implements k-way storage replication underneath the
// routing tables, in the style of Harmonia's in-network conflict
// detection (PAPERS.md): the placement policy keeps routing to one
// *primary* per logical site, and a replica Map expands that primary to
// its whole group — writes fan out to every member, reads spread across
// members that are provably consistent. Consistency is tracked by a
// per-object dirty set in the µproxy's soft state: an object is dirty
// while any WRITE to its group is in flight and becomes clean again only
// when every replica has acknowledged (or a COMMIT barrier has drained
// the window), so a clean object may be read from ANY member and a dirty
// one is pinned to the primary, whose reply order defines the file's
// contents.
//
// Like every other µproxy table, the Map is an immutable snapshot behind
// an atomic pointer (data-path readers never lock; Swap installs a new
// generation and bumps the version so pending-request retargeting
// notices), and the dirty set is sharded soft state: losing it is safe
// because a fresh µproxy over-approximates — absent knowledge an entry
// re-marked by a retransmitted WRITE pins reads to the primary until the
// next COMMIT clears it.
package replica

import (
	"sync"
	"sync/atomic"

	"slice/internal/netsim"
)

// Group is one replica group: Members[0] is the primary — the address
// the routing tables resolve to — and the rest are its mirrors. Slot0 is
// the group's first index into the flat per-member slot space (see
// Map.Slots); member i of the group occupies slot Slot0+i.
type Group struct {
	ID      uint32
	Slot0   int
	Members []netsim.Addr // never mutated once published
}

// mapState is one immutable group-topology generation.
type mapState struct {
	degree    int
	groups    []Group
	slots     int // total members across groups
	byPrimary map[netsim.Addr]int32 // primary address -> group index
	byMember  map[netsim.Addr]int32 // any member address -> group index
	version   uint64
}

// Map is the versioned replica-group table layered under route.Table's
// physical-node map: the table routes to primaries, the Map expands a
// primary to its group. Members marked down (a failed node, folded into
// a topology swap like route.Fleet) are filtered out of their group
// until marked up again.
type Map struct {
	mu     sync.Mutex // serializes writers (Swap, MarkDown, MarkUp)
	nodes  []netsim.Addr
	degree int
	down   map[netsim.Addr]bool
	state  atomic.Pointer[mapState]
}

// NewMap partitions nodes into groups of degree consecutive members
// (the last group absorbs any remainder) and returns the versioned
// table. degree <= 1 yields an empty map that expands nothing.
func NewMap(degree int, nodes []netsim.Addr) *Map {
	m := &Map{
		nodes:  append([]netsim.Addr(nil), nodes...),
		degree: degree,
		down:   make(map[netsim.Addr]bool),
	}
	m.store(1)
	return m
}

// store rebuilds the published snapshot from nodes/degree/down. Callers
// other than NewMap hold m.mu. A group whose members are all down keeps
// its first (dead) member so lookups still resolve somewhere — requests
// to it stall and clients retransmit, exactly as an unreplicated outage
// behaves.
func (m *Map) store(version uint64) {
	st := &mapState{degree: m.degree, version: version,
		byPrimary: make(map[netsim.Addr]int32),
		byMember:  make(map[netsim.Addr]int32)}
	if m.degree > 1 {
		for base := 0; base < len(m.nodes); base += m.degree {
			end := base + m.degree
			if end > len(m.nodes) || len(m.nodes)-end < m.degree {
				end = len(m.nodes)
			}
			var members []netsim.Addr
			for _, a := range m.nodes[base:end] {
				if !m.down[a] {
					members = append(members, a)
				}
			}
			if len(members) == 0 {
				members = append(members, m.nodes[base])
			}
			g := Group{
				ID:      uint32(len(st.groups)),
				Slot0:   st.slots,
				Members: members,
			}
			st.byPrimary[g.Members[0]] = int32(len(st.groups))
			for _, a := range g.Members {
				st.byMember[a] = int32(len(st.groups))
			}
			st.groups = append(st.groups, g)
			st.slots += len(g.Members)
			if end == len(m.nodes) {
				break
			}
		}
	}
	m.state.Store(st)
}

// Swap installs a new node list at the same degree, clearing any down
// marks and bumping the version. In-flight lookups keep the snapshot
// they loaded.
func (m *Map) Swap(nodes []netsim.Addr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.state.Load()
	m.nodes = append(m.nodes[:0], nodes...)
	m.down = make(map[netsim.Addr]bool)
	m.store(cur.version + 1)
}

// MarkDown filters addr out of its group in a new generation — failure
// detection folded into one topology swap: writes stop awaiting the
// dead member, reads stop spreading to it, and the version bump makes
// retransmitted in-flight requests re-resolve onto the survivors. When
// addr was its group's primary the next member is promoted; the caller
// owns rebinding the routing table to the new primary.
func (m *Map) MarkDown(addr netsim.Addr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.state.Load()
	m.down[addr] = true
	m.store(cur.version + 1)
}

// MarkUp restores a member marked down (after its resync completed),
// bumping the version so spread reads start reaching it again.
func (m *Map) MarkUp(addr netsim.Addr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.state.Load()
	delete(m.down, addr)
	m.store(cur.version + 1)
}

// Degree returns the replication degree (members per group).
func (m *Map) Degree() int {
	if m == nil {
		return 1
	}
	return m.state.Load().degree
}

// Version returns the topology generation, incremented by every Swap.
// A nil map is generation 0 forever.
func (m *Map) Version() uint64 {
	if m == nil {
		return 0
	}
	return m.state.Load().version
}

// NumGroups returns the group count.
func (m *Map) NumGroups() int { return len(m.state.Load().groups) }

// Groups returns the current groups. The slice is the immutable
// snapshot itself; callers must not mutate it.
func (m *Map) Groups() []Group { return m.state.Load().groups }

// Replicated reports whether the map actually expands anything: a nil
// map or degree <= 1 routes exactly as an unreplicated array.
func (m *Map) Replicated() bool {
	return m != nil && len(m.state.Load().groups) > 0
}

// GroupOf returns the group whose primary is addr. The data path calls
// this with addresses freshly resolved from the same storage table the
// map was built against; a miss means addr is not a primary. Safe on a
// nil map (unreplicated policies carry none).
func (m *Map) GroupOf(addr netsim.Addr) (Group, bool) {
	if m == nil {
		return Group{}, false
	}
	st := m.state.Load()
	if i, ok := st.byPrimary[addr]; ok {
		return st.groups[i], true
	}
	return Group{}, false
}

// MemberOf returns the group addr currently belongs to — primary or
// mirror. Unlike GroupOf (which resolves routing-table primaries), this
// answers "is this address one of a replica set" for reply
// classification: a reply arriving from any member of a multi-member
// group is only a partial answer to a fanned-out request.
func (m *Map) MemberOf(addr netsim.Addr) (Group, bool) {
	if m == nil {
		return Group{}, false
	}
	st := m.state.Load()
	if i, ok := st.byMember[addr]; ok {
		return st.groups[i], true
	}
	return Group{}, false
}

// Slots returns the flat per-member slot count (total members across all
// groups — remainder groups may exceed the nominal degree), the size of
// the load arrays Pick2 choices are weighed against.
func (m *Map) Slots() int {
	if m == nil {
		return 0
	}
	return m.state.Load().slots
}

// Pick2 derives two distinct member slots in [0, n) from a request hash,
// the candidate pair for a power-of-two-choices read placement: the
// caller compares its own outstanding-read counts for both and sends to
// the less loaded. One member (n <= 1) returns (0, 0). The two halves of
// the multiplied hash are independent enough that the pair itself is
// near-uniform over ordered pairs.
func Pick2(n int, h uint64) (int, int) {
	if n <= 1 {
		return 0, 0
	}
	h *= 0x9E3779B97F4A7C15
	i := int((h >> 32) % uint64(n))
	j := int(uint64(uint32(h)) % uint64(n-1))
	if j >= i {
		j++ // skew the second draw around the first: i != j, still uniform
	}
	return i, j
}
