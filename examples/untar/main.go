// Untar: the paper's name-intensive workload against the live stack,
// under both name-space policies. Shows how mkdir switching and name
// hashing distribute one volume's namespace across directory servers
// without visible volume boundaries (§3.2).
package main

import (
	"fmt"
	"log"
	"time"

	"slice/internal/ensemble"
	"slice/internal/route"
	"slice/internal/workload"
)

func run(kind route.NameKind, p float64) {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes:     2,
		DirServers:       4,
		SmallFileServers: 1,
		Coordinator:      true,
		NameKind:         kind,
		MkdirP:           p,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	st, err := workload.Untar(c, c.Root(), workload.UntarConfig{Entries: 1500})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("%s (p=%.2f): %d dirs + %d files, %d NFS ops in %v (%.0f ops/s)\n",
		kind, p, st.Dirs, st.Files, st.NFSOps, elapsed.Round(time.Millisecond),
		float64(st.NFSOps)/elapsed.Seconds())
	var total uint64
	for _, d := range e.Dirs {
		total += d.Counters().Ops
	}
	for i, d := range e.Dirs {
		ct := d.Counters()
		fmt.Printf("  dir server %d: %5d ops (%4.1f%%), %d cross-site, %d peer calls\n",
			i, ct.Ops, float64(ct.Ops)/float64(total)*100, ct.CrossSite, ct.PeerCalls)
	}
	mkdirs, redirects := e.NamePolicy.RedirectStats()
	if kind == route.MkdirSwitching {
		fmt.Printf("  mkdirs: %d, redirected: %d (%.0f%%)\n",
			mkdirs, redirects, float64(redirects)/float64(mkdirs)*100)
	}
	fmt.Println()
}

func main() {
	fmt.Println("one volume, four directory servers, no mount points:")
	fmt.Println()
	run(route.MkdirSwitching, 0.0) // full affinity: everything on one site
	run(route.MkdirSwitching, 0.25)
	run(route.NameHashing, 0)
}
