// Failover: the recovery mechanisms of §2.3 and §3.3.2 in action.
//
//  1. Dataless manager failover: a small-file server is rebuilt from its
//     backing storage object plus its write-ahead log; file contents
//     survive.
//  2. Coordinator intention recovery: a µproxy "dies" between declaring a
//     remove intention and clearing the data; the coordinator's probe
//     finishes the remove.
//  3. µproxy soft-state loss: all caches and pending records dropped
//     mid-run; clients notice nothing.
package main

import (
	"fmt"
	"log"
	"time"

	"slice/internal/coord"
	"slice/internal/ensemble"
	"slice/internal/fhandle"
	"slice/internal/route"
	"slice/internal/smallfile"
	"slice/internal/storage"
	"slice/internal/wal"
)

func main() {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes:     2,
		DirServers:       2,
		SmallFileServers: 1,
		Coordinator:      true,
		NameKind:         route.MkdirSwitching,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// ---- 1. Small-file server failover ------------------------------
	fh, _, err := c.Create(c.Root(), "precious.txt", 0o644, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.WriteFile(fh, []byte("survives manager failure")); err != nil {
		log.Fatal(err)
	}

	// Simulate failover: rebuild the manager's state from its (durable)
	// log and the shared backing object, the way a surviving site would
	// assume a failed server's role.
	old := e.Small[0].Store()
	crashedLog, err := wal.Open(e.SmallLogs[0].CrashCopy())
	if err != nil {
		log.Fatal(err)
	}
	rebuilt := smallfile.NewStore(e.Storage[0].Store(), storage.ObjectID(0x5F<<56), crashedLog)
	if err := rebuilt.Recover(crashedLog); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _, err := rebuilt.Read(fh, 0, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. small-file failover: %d files before, %d after recovery; read %q\n",
		old.NumFiles(), rebuilt.NumFiles(), buf[:n])

	// ---- 2. Coordinator finishes an abandoned remove ----------------
	victim, _, err := c.Create(c.Root(), "leak.dat", 0o644, true)
	if err != nil {
		log.Fatal(err)
	}
	big := make([]byte, 200*1024)
	if err := c.WriteFile(victim, big); err != nil {
		log.Fatal(err)
	}
	before := e.Storage[0].Store().TotalBytes() + e.Storage[1].Store().TotalBytes()

	// A faulty µproxy declares the remove intention... and dies before
	// clearing the data.
	id, err := e.Coord.Intend(coord.OpRemove, victim, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. intention %d logged; initiator gone; pending=%d\n",
		id, e.Coord.PendingIntentions())
	finished := e.Coord.CheckIntentions(time.Now().Add(time.Hour)) // probe deadline passes
	after := e.Storage[0].Store().TotalBytes() + e.Storage[1].Store().TotalBytes()
	fmt.Printf("   coordinator finished %d abandoned op(s): storage %d -> %d bytes, pending=%d\n",
		finished, before, after, e.Coord.PendingIntentions())

	// ---- 3. µproxy drops all soft state mid-run ----------------------
	fh2, _, err := c.Create(c.Root(), "during.txt", 0o644, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.WriteFile(fh2, []byte("before the flush")); err != nil {
		log.Fatal(err)
	}
	e.Proxy.FlushSoftState()
	data, err := c.ReadAll(fh2)
	if err != nil {
		log.Fatal(err)
	}
	var zero fhandle.Handle
	_ = zero
	fmt.Printf("3. after µproxy soft-state flush, client still reads %q\n", data)
	fmt.Println("\nall three recovery paths held.")
}
