package wire

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"slice/internal/netsim"
	"slice/internal/obs"
)

// synthHostBase is the base of the gateway's synthetic client host
// range. It is disjoint from udpgate's (0x7F000000): an ensemble serving
// both transports must never hand two transports the same fabric host.
const synthHostBase = 0x7F100000

// synthHosts allocates synthetic hosts process-wide, not per gateway: a
// fleet runs one gateway per member over one shared fabric, and
// per-gateway counters would hand connections on different members the
// same host. Since netsim recycles ephemeral ports after close, two such
// connections could end up with identical {host, port} source addresses
// — and identical addresses poison the servers' duplicate-request
// caches across clients. Monotonic process-wide hosts make every
// connection's fabric address unique for the life of the process.
var synthHosts atomic.Uint32

// Stats counts gateway activity. Record maxima are what the conformance
// tests assert: a transfer whose records exceed the old 96 KiB datagram
// cap proves the stream path is no longer datagram-bound.
type Stats struct {
	Conns       int    // live connections
	TotalConns  uint64 // connections ever accepted
	RxRecords   uint64 // records read from clients
	TxRecords   uint64 // records written to clients
	RxBytes     uint64
	TxBytes     uint64
	MaxRxRecord uint64 // largest single record received
	MaxTxRecord uint64 // largest single record sent
	Drops       uint64 // records dropped: fabric send or TCP write failed
}

// gwHists are the obs histograms a gateway records into.
type gwHists struct {
	rxRecord *obs.Histogram // bytes per received record
	txRecord *obs.Histogram // bytes per sent record
	connRx   *obs.Histogram // bytes per connection lifetime, inbound
	connTx   *obs.Histogram // bytes per connection lifetime, outbound
	connNS   *obs.Histogram // connection lifetime in nanoseconds
}

// Gateway accepts record-marked ONC-RPC TCP connections and relays each
// onto the netsim fabric under a synthetic per-connection client
// address, so the traffic traverses the interposed µproxy fleet.
type Gateway struct {
	ln      net.Listener
	fabric  *netsim.Network
	virtual netsim.Addr

	fragSize int
	hists    atomic.Pointer[gwHists]

	totalConns  atomic.Uint64
	rxRecords   atomic.Uint64
	txRecords   atomic.Uint64
	rxBytes     atomic.Uint64
	txBytes     atomic.Uint64
	maxRxRecord atomic.Uint64
	maxTxRecord atomic.Uint64
	drops       atomic.Uint64

	mu     sync.Mutex
	conns  map[*gwConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

type gwConn struct {
	tcp  net.Conn
	port *netsim.Port
}

// NewGateway starts a gateway listening on the given TCP address,
// forwarding to the fabric's virtual server address.
func NewGateway(listen string, fabric *netsim.Network, virtual netsim.Addr) (*Gateway, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		ln:       ln,
		fabric:   fabric,
		virtual:  virtual,
		fragSize: DefaultFragSize,
		conns:    make(map[*gwConn]struct{}),
	}
	g.wg.Add(1)
	go g.acceptLoop()
	return g, nil
}

// SetObs attaches an obs registry for per-connection wire histograms.
func (g *Gateway) SetObs(r *obs.Registry) {
	if r == nil {
		g.hists.Store(nil)
		return
	}
	g.hists.Store(&gwHists{
		rxRecord: r.Hist(obs.HistWireRxRecord),
		txRecord: r.Hist(obs.HistWireTxRecord),
		connRx:   r.Hist(obs.HistWireConnRx),
		connTx:   r.Hist(obs.HistWireConnTx),
		connNS:   r.Hist(obs.HistWireConnNS),
	})
}

// Addr returns the TCP address the gateway listens on.
func (g *Gateway) Addr() net.Addr { return g.ln.Addr() }

// Port returns the TCP port the gateway listens on.
func (g *Gateway) Port() uint32 {
	if a, ok := g.ln.Addr().(*net.TCPAddr); ok {
		return uint32(a.Port)
	}
	return 0
}

// Stats returns a snapshot of the gateway counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	conns := len(g.conns)
	g.mu.Unlock()
	return Stats{
		Conns:       conns,
		TotalConns:  g.totalConns.Load(),
		RxRecords:   g.rxRecords.Load(),
		TxRecords:   g.txRecords.Load(),
		RxBytes:     g.rxBytes.Load(),
		TxBytes:     g.txBytes.Load(),
		MaxRxRecord: g.maxRxRecord.Load(),
		MaxTxRecord: g.maxTxRecord.Load(),
		Drops:       g.drops.Load(),
	}
}

// Close stops the gateway and tears down every connection.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	for c := range g.conns {
		c.tcp.Close()
		c.port.Close()
	}
	g.mu.Unlock()
	g.ln.Close()
	g.wg.Wait()
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		tcp, err := g.ln.Accept()
		if err != nil {
			return
		}
		c, err := g.admit(tcp)
		if err != nil {
			tcp.Close()
			continue
		}
		g.totalConns.Add(1)
		g.wg.Add(2)
		go g.connReader(c)
		go g.connWriter(c)
	}
}

// admit allocates the connection's synthetic fabric endpoint.
func (g *Gateway) admit(tcp net.Conn) (*gwConn, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, netsim.ErrClosed
	}
	port, err := g.fabric.BindAny(synthHostBase + synthHosts.Add(1))
	if err != nil {
		return nil, err
	}
	c := &gwConn{tcp: tcp, port: port}
	g.conns[c] = struct{}{}
	return c, nil
}

// drop removes a connection; idempotent across the reader and writer.
func (g *Gateway) drop(c *gwConn) {
	g.mu.Lock()
	delete(g.conns, c)
	g.mu.Unlock()
	c.tcp.Close()
	c.port.Close()
}

// connReader reassembles records off the TCP stream and sends each onto
// the fabric toward the virtual server from the connection's synthetic
// address, so the µproxy fleet intercepts it like any client datagram.
func (g *Gateway) connReader(c *gwConn) {
	defer g.wg.Done()
	defer g.drop(c)

	start := time.Now()
	var connRx uint64
	defer func() {
		if h := g.hists.Load(); h != nil {
			h.connRx.Record(connRx)
			h.connNS.Record(uint64(time.Since(start)))
		}
	}()

	br := bufio.NewReaderSize(c.tcp, 64<<10)
	for {
		rec, err := readRecord(br, 0)
		if err != nil {
			return
		}
		n := uint64(len(rec))
		g.rxRecords.Add(1)
		g.rxBytes.Add(n)
		connRx += n
		maxUp(&g.maxRxRecord, n)
		if h := g.hists.Load(); h != nil {
			h.rxRecord.Record(n)
		}
		// SendTo copies the record into a pooled datagram; drops (e.g. a
		// record larger than the fabric MTU) are counted, and RPC
		// retransmission recovers exactly as for datagram loss.
		if err := c.port.SendTo(g.virtual, rec); err != nil {
			g.drops.Add(1)
		}
		netsim.FreeBuf(rec)
	}
}

// connWriter drains the connection's fabric port and writes each reply
// payload as one record, coalescing everything already queued into a
// single flush (one TCP write burst per wakeup, not per record).
func (g *Gateway) connWriter(c *gwConn) {
	defer g.wg.Done()
	defer g.drop(c)

	var connTx uint64
	defer func() {
		if h := g.hists.Load(); h != nil {
			h.connTx.Record(connTx)
		}
	}()

	bw := bufio.NewWriterSize(c.tcp, 128<<10)
	for {
		d, err := c.port.Recv(0)
		if err != nil {
			return
		}
		for {
			if err := g.writeOne(bw, d, &connTx); err != nil {
				g.drops.Add(1)
				return
			}
			var ok bool
			if d, ok = c.port.TryRecv(); !ok {
				break
			}
		}
		if err := bw.Flush(); err != nil {
			g.drops.Add(1)
			return
		}
	}
}

func (g *Gateway) writeOne(bw *bufio.Writer, d []byte, connTx *uint64) error {
	payload := netsim.Payload(d)
	n := uint64(len(payload))
	err := writeRecord(bw, payload, g.fragSize)
	netsim.FreeBuf(d)
	if err != nil {
		return err
	}
	g.txRecords.Add(1)
	g.txBytes.Add(n)
	*connTx += n
	maxUp(&g.maxTxRecord, n)
	if h := g.hists.Load(); h != nil {
		h.txRecord.Record(n)
	}
	return nil
}

func maxUp(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
