package proxy

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/replica"
	"slice/internal/route"
	"slice/internal/xdr"
)

// MountProgram mirrors dirsrv.MountProgram without importing the package
// (the µproxy layers below the servers).
const (
	mountProgram = 100005
)

// capFieldOffset is the byte offset of the CellKey/capability field within
// a marshalled file handle (see fhandle.Handle layout).
const capFieldOffset = 16

// Config configures a µproxy.
type Config struct {
	// Net is the fabric the µproxy taps.
	Net *netsim.Network
	// Host is the host address the µproxy binds its own client ports on.
	Host uint32
	// Virtual is the virtual NFS server address presented to clients.
	Virtual netsim.Addr
	// ID is this instance's stable fleet identity (route.ProxyMember.ID).
	// A single-proxy deployment leaves it 0.
	ID uint32
	// ServiceTime, when positive, meters the request path through a
	// single paced service loop at one request per ServiceTime — a
	// capacity model for a µproxy core: one instance saturates at
	// 1/ServiceTime forwarded ops/s, so fleet scaling is measurable on
	// any host, independent of how many real CPUs back the simulation.
	// Zero (the default) keeps the inline fast path: requests are
	// processed on the sender's goroutine with no added cost.
	ServiceTime time.Duration
	// ServiceQueue bounds the paced loop's ingress queue (default 256).
	// Requests arriving at a full queue are dropped — an overloaded
	// router sheds load and clients retransmit, as §2.1 prescribes.
	ServiceQueue int
	// IO routes read/write/commit traffic.
	IO *route.IOPolicy
	// Names routes name-space and attribute traffic.
	Names *route.NamePolicy
	// Coord is the block-service coordinator; zero disables intention
	// logging and block maps.
	Coord netsim.Addr
	// MountSite is the directory site serving MOUNT (default 0).
	MountSite uint32
	// AttrCacheSize bounds the attribute cache (default 4096).
	AttrCacheSize int
	// NameCacheSize bounds the name cache (default 8192).
	NameCacheSize int
	// WritebackInterval bounds attribute drift: dirty attributes are
	// pushed to the directory servers at this period. Zero disables the
	// background flusher (tests drive writeback explicitly).
	WritebackInterval time.Duration
	// CapKey, when set, is the storage-service capability key: the
	// µproxy stamps a keyed fingerprint into the handle of every request
	// it routes to a storage node (in place, with an incremental
	// checksum fix), authorizing the access under the §2.2 secure-object
	// model. Clients that bypass the µproxy cannot mint capabilities and
	// are refused by the storage nodes.
	CapKey []byte
	// Obs, when set, receives the µproxy's per-stage, per-hop, and
	// end-to-end latency histograms. Histogram pointers are resolved at
	// construction; recording is one atomic add per sample.
	Obs *obs.Registry
	// Tracer, when set, archives a pooled per-request span for every
	// routed request: per-stage µproxy costs plus per-hop round-trip and
	// server time.
	Tracer *obs.Tracer
	// StatsFn, when set, answers the stats program (obs.Program) sent to
	// the virtual server: the µproxy absorbs the call and replies with
	// the returned bytes as an opaque result (nil = proc unavailable).
	// The ensemble points this at its cluster-wide obs.Collector.
	StatsFn func(proc, arg uint32) []byte
}

// pendKey identifies a pending request record: the client endpoint plus
// the RPC transaction id.
type pendKey struct {
	client netsim.Addr
	xid    uint32
}

// pendHash mixes a pending-request identity for shard selection.
func pendHash(k pendKey) uint64 {
	h := uint64(k.client.Host)<<32 ^ uint64(k.client.Port)<<16 ^ uint64(k.xid)
	h *= 0x9E3779B97F4A7C15
	return h
}

// pendingReq is the soft-state record of one in-flight request. Records
// are pooled: the steady-state forward path recycles them instead of
// allocating.
type pendingReq struct {
	proc nfsproto.Proc
	prog uint32
	info nfsproto.RequestInfo

	// targets are the physical servers the request was routed to, kept
	// so client retransmissions are re-forwarded along the same path
	// (the servers' duplicate-request caches absorb the repeats). For
	// the common fan-outs it aliases targetsBuf, so recording the path
	// costs no allocation.
	targets    []netsim.Addr
	targetsBuf [4]netsim.Addr

	// expect is the number of replies still awaited (mirrored writes
	// expect one per replica); replied dedups per-replica replies, since
	// retransmissions make servers replay theirs.
	expect  int
	replied map[netsim.Addr]bool
	// errReply holds the first non-OK reply body of a multi-target
	// request so the worst outcome is what the client sees.
	errReply []byte

	// routeVer is the combined routing-table version the path was
	// resolved under. A retransmission arriving after the tables changed
	// (failover republished a server) re-resolves instead of replaying
	// the recorded — possibly dead — path.
	routeVer uint64

	// onOK runs when a successful reply arrives, before it is forwarded;
	// orchestration hooks use it. Responses with a hook are finished on
	// a helper goroutine because hooks issue blocking RPCs.
	onOK func()

	// Replica bookkeeping (nil dirty set disables all of it). dirtyMark
	// says this record holds one dirty-set count on dirtyKey, released
	// only when every replica acknowledged success; readSlot is 1 + the
	// load-array slot charged for a spread read (0: none).
	dirtyMark bool
	dirtyKey  fhandle.Key
	readSlot  int32

	// Observability state (see obs.go). All of it is written before the
	// record is published to the pending table; after pairing, the
	// response path owns the record exclusively.
	span    *obs.Span   // pooled trace span, nil when tracing is off
	startNS int64       // request intercept time (UnixNano)
	sentAt  int64       // forward time (UnixNano), 0 after hop recorded
	clsNS   uint64      // classify-stage cost
	hop     obs.HopKind // where the request was forwarded
}

var pendPool = sync.Pool{New: func() any { return new(pendingReq) }}

// getPending returns a zeroed pending record from the pool.
func getPending() *pendingReq { return pendPool.Get().(*pendingReq) }

// putPending recycles a record. Callers own pd exclusively: it must
// already be out of the pending table.
func putPending(pd *pendingReq) {
	*pd = pendingReq{}
	pendPool.Put(pd)
}

// pendShard is one lock's worth of the pending-request table.
type pendShard struct {
	mu   sync.Mutex
	pend map[pendKey]*pendingReq
}

// Proxy is one interposed request router.
type Proxy struct {
	cfg Config

	// coordAddr is the current coordinator address, swappable at runtime
	// so a restarted coordinator (fresh port) can be re-targeted without
	// tearing the µproxy down. Zero disables the coordinator protocol.
	coordAddr atomic.Pointer[netsim.Addr]

	// shards holds the pending-request table, split so that concurrent
	// clients contend only when they hash to the same shard.
	shards [numShards]pendShard

	attrs *attrCache
	names *nameCache
	maps  *mapCache

	// dirty is the per-object dirty set of the replica layer: an object
	// is dirty while a fanned-out WRITE to its group is in flight, and
	// its reads pin to the primary. nil when the array is unreplicated.
	// loads counts this µproxy's outstanding spread reads per member
	// slot, the weights of the power-of-two-choices read placement.
	dirty *replica.DirtySet
	loads []atomic.Int64

	clientsMu sync.Mutex
	clients   map[netsim.Addr]*oncrpc.Client
	// coordCli is the coordinator client; unlike the per-address clients
	// it resolves its destination per transmission from coordAddr, so an
	// in-flight call retries against the coordinator's new address after
	// failover instead of timing out against the dead one.
	coordCli *oncrpc.Client

	// workCh feeds the paced service loop; nil when ServiceTime is 0
	// and requests are processed inline.
	workCh chan []byte

	tapTok    *netsim.TapToken
	st        stageCounters
	hists     *proxyHists // nil when cfg.Obs is nil
	tracer    *obs.Tracer // nil when cfg.Tracer is nil
	stopCh    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New creates a µproxy and registers it as a tap on the network.
func New(cfg Config) *Proxy {
	p := &Proxy{
		cfg:     cfg,
		attrs:   newAttrCache(cfg.AttrCacheSize),
		names:   newNameCache(cfg.NameCacheSize),
		maps:    newMapCache(),
		clients: make(map[netsim.Addr]*oncrpc.Client),
		stopCh:  make(chan struct{}),
		tracer:  cfg.Tracer,
	}
	if cfg.IO != nil && cfg.IO.Replicas.Replicated() {
		p.dirty = replica.NewDirtySet()
		p.loads = make([]atomic.Int64, cfg.IO.Replicas.Slots())
	}
	if cfg.Obs != nil {
		var rm *replica.Map
		if cfg.IO != nil {
			rm = cfg.IO.Replicas
		}
		p.hists = newProxyHists(cfg.Obs, rm)
	}
	coordAddr := cfg.Coord
	p.coordAddr.Store(&coordAddr)
	for i := range p.shards {
		p.shards[i].pend = make(map[pendKey]*pendingReq)
	}
	if cfg.ServiceTime > 0 {
		depth := cfg.ServiceQueue
		if depth <= 0 {
			depth = 256
		}
		p.workCh = make(chan []byte, depth)
		p.wg.Add(1)
		go p.serviceLoop()
	}
	p.tapTok = cfg.Net.AddTap(p)
	if cfg.WritebackInterval > 0 {
		p.wg.Add(1)
		go p.writebackLoop()
	}
	return p
}

// Close detaches the µproxy from the network and stops its helpers.
// It is idempotent.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		p.cfg.Net.RemoveTap(p.tapTok)
		close(p.stopCh)
		p.wg.Wait()
		p.clientsMu.Lock()
		for _, c := range p.clients {
			c.Close()
		}
		if p.coordCli != nil {
			p.coordCli.Close()
		}
		p.clientsMu.Unlock()
	})
}

// ID returns the µproxy's fleet identity.
func (p *Proxy) ID() uint32 { return p.cfg.ID }

// Virtual returns the virtual server address this instance answers.
func (p *Proxy) Virtual() netsim.Addr { return p.cfg.Virtual }

// coord returns the coordinator address currently in effect.
func (p *Proxy) coord() netsim.Addr { return *p.coordAddr.Load() }

// SetCoord re-targets the coordinator, e.g. after the ensemble restarts
// it on a fresh port. New coordinator RPCs use the address immediately;
// calls already retrying re-resolve it on their next retransmission.
func (p *Proxy) SetCoord(a netsim.Addr) { p.coordAddr.Store(&a) }

// routeVersion folds the versions of every table the µproxy forwards by;
// it changes exactly when a failover republishes some server's address.
func (p *Proxy) routeVersion() uint64 {
	v := p.cfg.Names.Dirs.Version() + p.cfg.IO.Storage.Version() +
		p.cfg.IO.Replicas.Version()
	if p.cfg.IO.SmallFile != nil {
		v += p.cfg.IO.SmallFile.Version()
	}
	return v
}

// RouteVersion exposes the folded routing-table version. Every proxy in
// a fleet shares the same Table objects, so a reconfiguration Swap moves
// all of them to the new version in one atomic store — the coordinated
// retarget the shared-nothing design gets for free.
func (p *Proxy) RouteVersion() uint64 { return p.routeVersion() }

// Stats returns a snapshot of the per-stage CPU accounting.
func (p *Proxy) Stats() StageStats { return p.st.snapshot() }

// shardFor returns the pending-table shard for key.
func (p *Proxy) shardFor(key pendKey) *pendShard {
	return &p.shards[shardIndex(pendHash(key))]
}

// resetPend discards every pending record. In-flight replies for the
// dropped records pass through to the client untouched; clients recover
// by retransmission, as §2.1 requires.
func (p *Proxy) resetPend() {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		s.pend = make(map[pendKey]*pendingReq)
		s.mu.Unlock()
	}
}

// FlushSoftState discards all soft state: pending request records and all
// caches. The architecture guarantees correctness across this (§2.1);
// clients recover by retransmission. Dirty attributes are pushed first so
// only timestamps within the drift bound are lost.
func (p *Proxy) FlushSoftState() {
	p.WritebackAttrs()
	p.resetPend()
	p.attrs.clear()
	p.names.clear()
	p.maps.clear()
	p.resetReplica()
}

// DropSoftState discards soft state without writeback, simulating a
// µproxy crash (uncommitted attribute updates are lost, as §4.1 permits).
func (p *Proxy) DropSoftState() {
	p.resetPend()
	p.attrs.clear()
	p.names.clear()
	p.maps.clear()
	p.resetReplica()
}

// resetReplica clears the dirty set and the read-load counters along
// with the rest of the soft state. A fresh (or rebooted) µproxy starts
// with no dirtiness knowledge; retransmitted WRITEs re-mark their
// objects, and until they do, an in-flight write's object may be read
// from any member — the same window §2.1 accepts for every other piece
// of lost soft state, closed for committed data by the COMMIT barrier.
func (p *Proxy) resetReplica() {
	if p.dirty == nil {
		return
	}
	p.dirty.Reset()
	for i := range p.loads {
		p.loads[i].Store(0)
	}
}

// DirtyLen reports the dirty-set size (0 when unreplicated).
func (p *Proxy) DirtyLen() int {
	if p.dirty == nil {
		return 0
	}
	return p.dirty.Len()
}

// ObjectDirty reports whether fh's object currently has a write in
// flight (or an over-approximated leftover mark) pinning its reads.
func (p *Proxy) ObjectDirty(fh fhandle.Handle) bool {
	return p.dirty != nil && p.dirty.Dirty(fh.Ident())
}

// CachedAttr exposes the attribute cache for tests and for the client-side
// of attribute patching.
func (p *Proxy) CachedAttr(fh fhandle.Handle) (bool, uint64) {
	at, ok := p.attrs.get(fh)
	return ok, at.Size
}

// CachedName exposes the name cache: the cached child handle bound to
// (dir, name), if any.
func (p *Proxy) CachedName(dir fhandle.Handle, name string) (fhandle.Handle, bool) {
	return p.names.get(dir, name)
}

// consumeDrop disposes of a datagram the µproxy consumed but cannot
// process (malformed or unroutable).
func (p *Proxy) consumeDrop(d []byte) netsim.Verdict {
	p.st.dropped.Add(1)
	netsim.FreeBuf(d)
	return netsim.Consumed
}

// Handle implements netsim.Tap: the packet-filter entry point. It runs on
// the sender's goroutine and processes the fast path inline — no
// per-packet goroutine, no allocation in the steady state. Only
// operations that must block (commit absorption, remove orchestration,
// block-map fetches, response hooks) are handed to helper goroutines.
func (p *Proxy) Handle(d []byte) netsim.Verdict {
	t0 := time.Now()
	p.st.intercepted.Add(1)
	if len(d) < netsim.HeaderSize+oncrpc.ReplyHeader {
		return netsim.Pass
	}
	dst := netsim.Addr{
		Host: binary.BigEndian.Uint32(d[netsim.OffDstHost:]),
		Port: binary.BigEndian.Uint16(d[netsim.OffDstPort:]),
	}
	payload := d[netsim.HeaderSize:]
	mtype := binary.BigEndian.Uint32(payload[oncrpc.OffMsgType:])

	if dst == p.cfg.Virtual && mtype == oncrpc.MsgCall {
		p.st.interceptNS.Add(uint64(time.Since(t0)))
		if p.workCh != nil {
			// Paced mode: hand the request to the service loop. A full
			// queue means the router is saturated; shed the request and
			// let the client's retransmission find capacity.
			select {
			case p.workCh <- d:
			default:
				return p.consumeDrop(d)
			}
			return netsim.Consumed
		}
		return p.handleRequest(d)
	}
	if mtype == oncrpc.MsgReply {
		xid := binary.BigEndian.Uint32(payload[oncrpc.OffXid:])
		key := pendKey{client: dst, xid: xid}
		s := p.shardFor(key)
		s.mu.Lock()
		_, ok := s.pend[key]
		s.mu.Unlock()
		if ok {
			p.st.interceptNS.Add(uint64(time.Since(t0)))
			return p.handleResponse(d, key)
		}
	}
	p.st.interceptNS.Add(uint64(time.Since(t0)))
	return netsim.Pass
}

// handleRequest classifies and routes one intercepted call. It always
// takes ownership of d: every path forwards it, frees it, or hands it to
// a helper goroutine.
func (p *Proxy) handleRequest(d []byte) netsim.Verdict {
	t0 := time.Now()
	h, err := netsim.Parse(d)
	if err != nil {
		return p.consumeDrop(d)
	}
	call, err := oncrpc.ParseCall(netsim.Payload(d))
	if err != nil {
		return p.consumeDrop(d)
	}
	key := pendKey{client: h.Src, xid: call.Xid}

	// Retransmission while the original is in flight: the forwarded
	// packet or its reply may have been lost past the µproxy, so the
	// retransmission must be re-forwarded along the recorded path; the
	// servers' duplicate-request caches absorb genuine repeats. (A
	// µproxy that swallowed retransmissions would turn one lost packet
	// into a permanently stuck request — the end-to-end recovery of
	// §2.1 depends on the µproxy staying transparent to retries.)
	// The recorded path is copied out under the shard lock: the record
	// is pooled and may be recycled the moment the lock is released.
	s := p.shardFor(key)
	s.mu.Lock()
	if pd := s.pend[key]; pd != nil {
		var tbuf [4]netsim.Addr
		var targets []netsim.Addr
		if len(pd.targets) <= len(tbuf) {
			targets = tbuf[:copy(tbuf[:], pd.targets)]
		} else {
			targets = append([]netsim.Addr(nil), pd.targets...)
		}
		info := pd.info
		prog, proc, ver := pd.prog, pd.proc, pd.routeVer
		s.mu.Unlock()
		p.st.decodeNS.Add(uint64(time.Since(t0)))
		// If the routing tables changed since the path was recorded, the
		// recorded servers may be dead (crashed and republished at new
		// addresses): re-resolve the path so the client's end-to-end
		// retries — the §2.1 recovery mechanism — reach the survivors.
		if cur := p.routeVersion(); ver != cur {
			if fresh, ok := p.retargets(prog, proc, info); ok {
				targets = fresh
				s.mu.Lock()
				if pd2 := s.pend[key]; pd2 != nil {
					if len(fresh) <= len(pd2.targetsBuf) {
						pd2.targets = pd2.targetsBuf[:copy(pd2.targetsBuf[:], fresh)]
					} else {
						pd2.targets = append([]netsim.Addr(nil), fresh...)
					}
					pd2.routeVer = cur
				}
				s.mu.Unlock()
			}
		}
		// Storage-bound retransmissions need the capability re-stamped:
		// the client resends the raw handle.
		if len(p.cfg.CapKey) > 0 && !p.cfg.IO.SmallFileTarget(info.Offset) &&
			(nfsproto.Proc(call.Proc) == nfsproto.ProcRead ||
				nfsproto.Proc(call.Proc) == nfsproto.ProcWrite) {
			capVal := fhandle.Capability(p.cfg.CapKey, info.FH)
			off := netsim.HeaderSize + oncrpc.CallHeader + info.FHOffset + capFieldOffset
			_ = netsim.RewriteUint64(d, off, capVal)
		}
		p.injectToAll(d, targets)
		return netsim.Consumed
	}
	s.mu.Unlock()

	if call.Program == mountProgram {
		cls := time.Since(t0)
		p.st.decodeNS.Add(uint64(cls))
		addr, err := p.cfg.Names.Dirs.Lookup(p.cfg.MountSite)
		if err != nil {
			return p.consumeDrop(d)
		}
		pd := getPending()
		pd.prog = call.Program
		pd.expect = 1
		pd.hop = obs.HopMount
		p.beginObs(pd, call.Xid, call.Proc, t0, cls)
		return p.forward(d, key, pd, addr)
	}
	if call.Program == obs.Program {
		// The stats program is absorbed: the µproxy answers it from the
		// ensemble's collector so slicectl aggregates a live deployment
		// over the same wire the NFS traffic uses. Snapshotting walks
		// registries under their locks, so it runs off the sender's
		// goroutine.
		p.st.decodeNS.Add(uint64(time.Since(t0)))
		if p.cfg.StatsFn == nil {
			return p.consumeDrop(d)
		}
		var arg uint32
		if len(call.Body) >= 4 {
			arg = binary.BigEndian.Uint32(call.Body)
		}
		src, xid, proc := h.Src, call.Xid, call.Proc
		netsim.FreeBuf(d)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.answerStats(src, xid, proc, arg)
		}()
		return netsim.Consumed
	}
	if call.Program != nfsproto.Program {
		return p.consumeDrop(d)
	}

	proc := nfsproto.Proc(call.Proc)
	info, err := nfsproto.ParseCall(proc, call.Body)
	cls := time.Since(t0)
	p.st.decodeNS.Add(uint64(cls))
	if err != nil {
		return p.consumeDrop(d)
	}

	pd := getPending()
	pd.proc = proc
	pd.prog = call.Program
	pd.info = info
	pd.expect = 1
	p.beginObs(pd, call.Xid, call.Proc, t0, cls)

	switch proc {
	case nfsproto.ProcCommit:
		// Commit is absorbed: the µproxy coordinates multi-site commit
		// itself and answers the client (§3.3.2, §4.1). That is a chain
		// of blocking RPCs, so it runs off the sender's goroutine; the
		// request datagram itself is no longer needed. The span, if any,
		// moves to the absorbing goroutine with the request identity.
		sp, startNS := pd.span, pd.startNS
		pd.span = nil
		putPending(pd)
		netsim.FreeBuf(d)
		src, xid := h.Src, call.Xid
		ci := info // case-local copy: capturing info itself would heap-allocate it on every request
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.absorbCommit(src, xid, ci, sp, startNS)
		}()
		return netsim.Consumed
	case nfsproto.ProcRemove:
		// Remove orchestration resolves the victim's handle first, which
		// may issue a LOOKUP of its own: run it off the sender's
		// goroutine, which owns d until it is forwarded.
		pd.hop = obs.HopDirsrv
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.routeRemove(d, key, pd)
		}()
		return netsim.Consumed
	case nfsproto.ProcSetAttr:
		pd.hop = obs.HopDirsrv
		return p.routeSetAttr(d, key, pd)
	case nfsproto.ProcRead, nfsproto.ProcWrite:
		if info.FH.Mapped() && !p.coord().IsZero() {
			// Mapped files may need a blocking block-map fetch from the
			// coordinator before they can be routed.
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.routeIO(d, key, pd)
			}()
			return netsim.Consumed
		}
		return p.routeIO(d, key, pd)
	default:
		t1 := time.Now()
		addr, err := p.cfg.Names.AddrFor(&pd.info)
		if err != nil {
			p.dropPending(pd)
			return p.consumeDrop(d)
		}
		p.st.rewriteNS.Add(uint64(time.Since(t1)))
		pd.hop = obs.HopDirsrv
		return p.forward(d, key, pd, addr)
	}
}

// routeIO directs a read or write at the small-file server or the storage
// array per the threshold and striping policies (§3.1).
func (p *Proxy) routeIO(d []byte, key pendKey, pd *pendingReq) netsim.Verdict {
	t0 := time.Now()
	info := &pd.info
	io := p.cfg.IO

	if io.SmallFileTarget(info.Offset) {
		addr, err := io.SmallFileServer(info.FH)
		if err != nil {
			p.dropPending(pd)
			return p.consumeDrop(d)
		}
		p.st.rewriteNS.Add(uint64(time.Since(t0)))
		pd.hop = obs.HopSmallfile
		return p.forward(d, key, pd, addr)
	}

	// Requests bound for storage nodes carry a capability: rewrite the
	// handle's capability field in the raw datagram and repair the
	// checksum incrementally (same mechanism as address redirection).
	if len(p.cfg.CapKey) > 0 {
		capVal := fhandle.Capability(p.cfg.CapKey, info.FH)
		off := netsim.HeaderSize + oncrpc.CallHeader + info.FHOffset + capFieldOffset
		if err := netsim.RewriteUint64(d, off, capVal); err != nil {
			p.dropPending(pd)
			return p.consumeDrop(d)
		}
	}

	pd.hop = obs.HopStorage
	stripe := io.StripeIndex(info.Offset)
	if info.Proc == nfsproto.ProcWrite {
		// Resolve the full target set: one node for a plain write, the
		// whole replica group when replicated, both bindings' targets
		// while a topology transition is open (double-write). Anything
		// beyond one target fans out and completes only when every
		// target replied.
		targets, err := p.writeTargets(pd.span, info.FH, stripe)
		if err != nil || len(targets) == 0 {
			p.dropPending(pd)
			return p.consumeDrop(d)
		}
		if len(targets) > 1 {
			pd.expect = len(targets)
			if p.dirty != nil {
				// Mark before the packets leave: a read racing this fan-out
				// must see the object dirty and pin to the primary.
				pd.dirtyKey = info.FH.Ident()
				pd.dirtyMark = true
				p.dirty.MarkWrite(pd.dirtyKey)
				if p.hists != nil {
					p.hists.dirtyOcc.Record(uint64(p.dirty.Len()))
				}
			}
			p.st.rewriteNS.Add(uint64(time.Since(t0)))
			return p.forwardMulti(d, key, pd, targets)
		}
		p.st.rewriteNS.Add(uint64(time.Since(t0)))
		return p.forward(d, key, pd, targets[0])
	}

	addr, err := p.readTarget(pd.span, info.FH, stripe)
	if err == nil && p.dirty != nil {
		addr = p.spreadRead(pd, key, addr, stripe)
	}
	if err != nil {
		p.dropPending(pd)
		return p.consumeDrop(d)
	}
	p.st.rewriteNS.Add(uint64(time.Since(t0)))
	return p.forward(d, key, pd, addr)
}

// readTarget resolves the storage node for a read, consulting block maps
// for mapped files and the static placement function otherwise. A
// coordinator fetch on a map miss is attributed to sp, when tracing.
func (p *Proxy) readTarget(sp *obs.Span, fh fhandle.Handle, stripe uint64) (netsim.Addr, error) {
	if fh.Mapped() && !p.coord().IsZero() {
		site, err := p.mappedSite(sp, fh, stripe)
		if err != nil {
			return netsim.Addr{}, err
		}
		return p.cfg.IO.Storage.Lookup(site)
	}
	return p.cfg.IO.ReadTarget(fh, stripe)
}

// writeTargets resolves the storage nodes for a write (all replicas).
func (p *Proxy) writeTargets(sp *obs.Span, fh fhandle.Handle, stripe uint64) ([]netsim.Addr, error) {
	if fh.Mapped() && !p.coord().IsZero() && !fh.Mirrored() {
		site, err := p.mappedSite(sp, fh, stripe)
		if err != nil {
			return nil, err
		}
		a, err := p.cfg.IO.Storage.Lookup(site)
		if err != nil {
			return nil, err
		}
		if g, ok := p.cfg.IO.Replicas.GroupOf(a); ok {
			return g.Members, nil
		}
		return []netsim.Addr{a}, nil
	}
	return p.cfg.IO.WriteTargets(fh, stripe)
}

// spreadRead picks the replica-group member to serve a read that the
// placement resolved to primary. A dirty object pins to the primary —
// its reply order defines the file's contents while writes are in
// flight; a clean object goes to the less loaded of two member slots
// drawn from the request hash (power-of-two-choices over this µproxy's
// own outstanding spread reads).
func (p *Proxy) spreadRead(pd *pendingReq, key pendKey, primary netsim.Addr, stripe uint64) netsim.Addr {
	g, ok := p.cfg.IO.Replicas.GroupOf(primary)
	if !ok || len(g.Members) <= 1 {
		return primary
	}
	if p.dirty.Dirty(pd.info.FH.Ident()) {
		if p.hists != nil {
			p.hists.pinned.Record(1)
		}
		return g.Members[0]
	}
	h := pendHash(key) ^ (stripe+1)*0x9E3779B97F4A7C15
	i, j := replica.Pick2(len(g.Members), h)
	slot := g.Slot0 + i
	if alt := g.Slot0 + j; alt < len(p.loads) && slot < len(p.loads) &&
		p.loads[alt].Load() < p.loads[slot].Load() {
		i, slot = j, alt
	}
	if slot >= len(p.loads) { // topology outgrew the load array: stay safe
		return primary
	}
	p.loads[slot].Add(1)
	pd.readSlot = int32(slot + 1)
	if p.hists != nil && slot < len(p.hists.readSpread) {
		p.hists.readSpread[slot].Record(1)
	}
	return g.Members[i]
}

// mappedSite returns the block-map site for a stripe, fetching a fragment
// from the coordinator on a miss.
func (p *Proxy) mappedSite(sp *obs.Span, fh fhandle.Handle, stripe uint64) (uint32, error) {
	if site, ok := p.maps.get(fh, stripe); ok {
		return site, nil
	}
	first := stripe - stripe%mapChunk
	sites, err := p.coordGetMap(sp, fh, first, mapChunk)
	if err != nil {
		return 0, err
	}
	p.maps.fill(fh, first, sites)
	site, ok := p.maps.get(fh, stripe)
	if !ok {
		return 0, route.ErrEmptyTable
	}
	return site, nil
}

// retargets re-resolves the forwarding path of a retransmitted request
// after a routing-table change. Only paths that resolve without blocking
// are recomputed; mapped-file I/O may need a coordinator RPC, which must
// not run on the sender's goroutine, so it keeps its recorded path.
// Resolution is deterministic (mkdir switching hashes the parent handle
// and name), so a recomputed path agrees with the original whenever the
// responsible logical site is unchanged — only the physical address moves.
func (p *Proxy) retargets(prog uint32, proc nfsproto.Proc, info nfsproto.RequestInfo) ([]netsim.Addr, bool) {
	if prog == mountProgram {
		a, err := p.cfg.Names.Dirs.Lookup(p.cfg.MountSite)
		if err != nil {
			return nil, false
		}
		return []netsim.Addr{a}, true
	}
	if proc == nfsproto.ProcRead || proc == nfsproto.ProcWrite {
		if info.FH.Mapped() && !p.coord().IsZero() {
			return nil, false
		}
		if p.cfg.IO.SmallFileTarget(info.Offset) {
			a, err := p.cfg.IO.SmallFileServer(info.FH)
			if err != nil {
				return nil, false
			}
			return []netsim.Addr{a}, true
		}
		stripe := p.cfg.IO.StripeIndex(info.Offset)
		if proc == nfsproto.ProcWrite {
			// Keep the full resolved fan-out: replica members must all
			// converge, and a write retransmitted across a transition
			// boundary must reach the pending binding too.
			ts, err := p.writeTargets(nil, info.FH, stripe)
			if err != nil || len(ts) == 0 {
				return nil, false
			}
			return ts, true
		}
		a, err := p.readTarget(nil, info.FH, stripe)
		if err != nil {
			return nil, false
		}
		return []netsim.Addr{a}, true
	}
	// Name-space and attribute operations route by the name policy.
	a, err := p.cfg.Names.AddrFor(&info)
	if err != nil {
		return nil, false
	}
	return []netsim.Addr{a}, true
}

// forward registers the pending record, rewrites the destination in place
// (incremental checksum update), and reinjects the datagram. The rewrite
// and all observability stamps happen before the record is published:
// once it is in the pending table, the reply may pair with it on another
// goroutine.
func (p *Proxy) forward(d []byte, key pendKey, pd *pendingReq, target netsim.Addr) netsim.Verdict {
	t0 := time.Now()
	pd.targetsBuf[0] = target
	pd.targets = pd.targetsBuf[:1]
	pd.routeVer = p.routeVersion()

	t1 := time.Now()
	netsim.RewriteDst(d, target)
	rw := time.Since(t1)
	p.st.rewriteNS.Add(uint64(rw))
	p.markSent(pd, t1, rw)

	t2 := time.Now()
	s := p.shardFor(key)
	s.mu.Lock()
	s.pend[key] = pd
	s.mu.Unlock()
	p.st.softStateNS.Add(uint64(time.Since(t2) + t1.Sub(t0)))
	p.st.requests.Add(1)
	_ = p.cfg.Net.Inject(d)
	return netsim.Consumed
}

// forwardMulti replicates the datagram to several targets (mirrored
// writes). Each copy keeps the client's source address and xid so replies
// pair with the same pending record.
func (p *Proxy) forwardMulti(d []byte, key pendKey, pd *pendingReq, targets []netsim.Addr) netsim.Verdict {
	t0 := time.Now()
	if len(targets) <= len(pd.targetsBuf) {
		pd.targets = pd.targetsBuf[:copy(pd.targetsBuf[:], targets)]
	} else {
		pd.targets = targets
	}
	pd.routeVer = p.routeVersion()
	p.markSent(pd, t0, 0)
	s := p.shardFor(key)
	s.mu.Lock()
	s.pend[key] = pd
	s.mu.Unlock()
	p.st.softStateNS.Add(uint64(time.Since(t0)))

	t1 := time.Now()
	p.injectToAll(d, targets)
	p.st.rewriteNS.Add(uint64(time.Since(t1)))
	p.st.requests.Add(1)
	return netsim.Consumed
}

// injectToAll sends d to every target, duplicating it from the buffer
// pool for all but the first. Ownership of d transfers to the network.
func (p *Proxy) injectToAll(d []byte, targets []netsim.Addr) {
	if len(targets) == 0 {
		netsim.FreeBuf(d)
		return
	}
	// Every copy is cut BEFORE the original is injected anywhere: Inject
	// hands the buffer to the network, which may deliver, free, and
	// recycle it while this loop is still running — copying from d after
	// its first injection would mirror whatever the pool reused it for.
	for _, target := range targets[1:] {
		dup := netsim.GetBuf(len(d))
		copy(dup, d)
		netsim.RewriteDst(dup, target)
		_ = p.cfg.Net.Inject(dup)
	}
	netsim.RewriteDst(d, targets[0])
	_ = p.cfg.Net.Inject(d)
}

// rpc returns a client for addr, creating one on first use.
func (p *Proxy) rpc(addr netsim.Addr) (*oncrpc.Client, error) {
	p.clientsMu.Lock()
	defer p.clientsMu.Unlock()
	if c, ok := p.clients[addr]; ok {
		return c, nil
	}
	port, err := p.cfg.Net.BindAny(p.cfg.Host)
	if err != nil {
		return nil, err
	}
	c := oncrpc.NewClient(port, addr, oncrpc.ClientConfig{})
	p.clients[addr] = c
	return c, nil
}

// coordRPC returns the coordinator client, creating it on first use. It
// is built with a resolver reading coordAddr so each (re)transmission of
// an in-flight call chases the address current at send time: a call
// stuck against a dead coordinator completes against its replacement as
// soon as SetCoord publishes the new address.
func (p *Proxy) coordRPC() (*oncrpc.Client, error) {
	p.clientsMu.Lock()
	defer p.clientsMu.Unlock()
	if p.coordCli != nil {
		return p.coordCli, nil
	}
	port, err := p.cfg.Net.BindAny(p.cfg.Host)
	if err != nil {
		return nil, err
	}
	p.coordCli = oncrpc.NewClient(port, p.coord(), oncrpc.ClientConfig{Resolve: p.coord})
	return p.coordCli, nil
}

// nfsCall issues an NFS call the µproxy originates itself (lookups for
// remove orchestration, setattr writeback, commit fan-out). The call is
// attributed to span sp (nil for background work) as a hop of the given
// kind, carrying the trace id on the wire.
func (p *Proxy) nfsCall(sp *obs.Span, hop obs.HopKind, addr netsim.Addr, proc nfsproto.Proc, args nfsproto.Msg, res nfsproto.Msg) error {
	c, err := p.rpc(addr)
	if err != nil {
		return err
	}
	p.st.initiated.Add(1)
	body, err := p.obsCall(sp, hop, c, nfsproto.Program, nfsproto.Version, uint32(proc), args.Encode)
	if err != nil {
		return err
	}
	return res.Decode(xdr.NewDecoder(body))
}

// serviceLoop is the paced request worker: one request per ServiceTime,
// metered against an absolute deadline (next += S) so the loop tracks
// its nominal rate instead of accumulating scheduler drift — under
// saturation it forwards exactly 1/ServiceTime ops/s.
func (p *Proxy) serviceLoop() {
	defer p.wg.Done()
	var next time.Time
	for {
		select {
		case <-p.stopCh:
			for {
				select {
				case d := <-p.workCh:
					netsim.FreeBuf(d)
				default:
					return
				}
			}
		case d := <-p.workCh:
			// Bounded catch-up credit: sleep overshoot (timer slack is
			// coarser than ServiceTime) leaves next behind the clock, and
			// the deficit is repaid by serving queued requests back to
			// back. The credit is capped so an idle proxy cannot bank an
			// unlimited burst.
			now := time.Now()
			if floor := now.Add(-32 * p.cfg.ServiceTime); next.Before(floor) {
				next = floor
			} else if wait := next.Sub(now); wait > 0 {
				time.Sleep(wait)
			}
			next = next.Add(p.cfg.ServiceTime)
			p.handleRequest(d)
		}
	}
}

func (p *Proxy) writebackLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.WritebackInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-tick.C:
			p.WritebackAttrs()
		}
	}
}
