package sim

import (
	"fmt"

	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/route"
)

// UntarConfig parameterizes the name-intensive untar experiment that
// drives Figures 3 and 4: client processes unpack a FreeBSD-src-like tree
// of empty files, generating seven NFS operations per create.
type UntarConfig struct {
	// DirServers is the number of Slice directory servers (ignored for
	// the baseline).
	DirServers int
	// Baseline selects the single-server N-MFS configuration.
	Baseline bool
	// Processes is the number of concurrent untar client processes.
	Processes int
	// ClientNodes hosts the processes (round-robin); default 5 (§5).
	ClientNodes int
	// Kind and P select the name-space policy and the mkdir redirection
	// probability (affinity is 1-P).
	Kind route.NameKind
	P    float64
	// Scale shrinks the 36,000-entry tree for faster simulation; the
	// reported latency is scaled back linearly (closed-loop steady
	// state). Default 0.05.
	Scale float64
	// SingleDirectory creates every file in one shared directory instead
	// of a tree: the "very large directory" workload that motivates name
	// hashing over mkdir switching (§3.2).
	SingleDirectory bool
	// Seed makes tree shapes reproducible.
	Seed uint64
}

func (c *UntarConfig) defaults() {
	if c.DirServers <= 0 {
		c.DirServers = 1
	}
	if c.Processes <= 0 {
		c.Processes = 1
	}
	if c.ClientNodes <= 0 {
		c.ClientNodes = ClientNodes
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// UntarResult reports the closed-loop outcome.
type UntarResult struct {
	// MeanLatency is the mean per-process completion time in seconds,
	// scaled back to the full 36,000-entry tree.
	MeanLatency float64
	// OpsPerSec is the aggregate server throughput while running.
	OpsPerSec float64
	// CrossSiteOps counts operations that touched a second directory
	// server (the redirected-mkdir cost of §3.3.2).
	CrossSiteOps uint64
	// ServerUtil is per-directory-server utilization; its spread shows
	// the load imbalance that high affinity produces (Figure 4).
	ServerUtil []float64
	// RedirectedMkdirs counts mkdirs placed away from their parent.
	RedirectedMkdirs uint64
	// LogBytes estimates journal traffic across directory servers.
	LogBytes uint64
}

// untarOp is one NFS operation of the generated stream.
type untarOp struct {
	site     uint32 // primary directory server
	peerSite int32  // second site for two-site ops, -1 if none
}

// genUntarOps builds each process's operation stream, placing directories
// with the SAME policy code the µproxy uses (route.NamePolicy), so the
// figure measures the real mkdir-switching / name-hashing logic.
func genUntarOps(cfg *UntarConfig, policy *route.NamePolicy, proc int, res *UntarResult) []untarOp {
	r := newRng(cfg.Seed*1000 + uint64(proc) + 7)
	entries := int(float64(UntarFilesPerProcess) * cfg.Scale)
	if entries < 10 {
		entries = 10
	}
	nDirs := int(float64(entries) * UntarDirFraction)
	if nDirs < 1 {
		nDirs = 1
	}

	type dir struct {
		fh fhandle.Handle
	}
	// The volume root lives on site 0. Each process untars into its own
	// top-level directory.
	root := fhandle.Handle{Volume: 1, FileID: 1, Type: 2, Site: 0, Gen: 1}
	var dirs []dir
	var ops []untarOp
	nextID := uint64(proc+1) << 32

	mkdir := func(parent fhandle.Handle, name string) fhandle.Handle {
		info := nfsproto.RequestInfo{Proc: nfsproto.ProcMkdir, FH: parent, Name: name, HasName: true}
		site, orphan := policy.SiteFor(&info)
		nextID++
		child := fhandle.Handle{Volume: 1, FileID: nextID, Type: 2, Site: site, Gen: 1}
		op := untarOp{site: site, peerSite: -1}
		if orphan || (policy.Kind == route.NameHashing && site != parent.Site%uint32(max32(1, cfg.DirServers))) {
			// Two-site operation: the parent's entry/link count updates
			// happen on the parent's site.
			op.peerSite = int32(parent.Site % uint32(cfg.DirServers))
			res.CrossSiteOps++
			if orphan {
				res.RedirectedMkdirs++
			}
		}
		ops = append(ops, op)
		return child
	}

	create := func(parent fhandle.Handle, name string) {
		info := nfsproto.RequestInfo{Proc: nfsproto.ProcCreate, FH: parent, Name: name, HasName: true}
		site, _ := policy.SiteFor(&info)
		// The seven-op sequence of a file create (§5): lookup, access,
		// create, getattr, lookup, setattr, setattr. Under both policies
		// these route to the site owning the entry/attribute cells.
		for k := 0; k < UntarOpsPerCreate; k++ {
			op := untarOp{site: site, peerSite: -1}
			if k == 2 && policy.Kind == route.NameHashing &&
				site != parent.Site%uint32(cfg.DirServers) {
				// The create itself updates the remote parent's mtime.
				op.peerSite = int32(parent.Site % uint32(cfg.DirServers))
				res.CrossSiteOps++
			}
			ops = append(ops, op)
		}
	}

	if cfg.SingleDirectory {
		// All processes pour files into one shared directory under the
		// root. Under mkdir switching, that directory is bound to a
		// single site; under name hashing, its entries spread.
		shared := fhandle.Handle{Volume: 1, FileID: 2, Type: 2, Site: 0, Gen: 1}
		for f := 0; f < entries; f++ {
			create(shared, fmt.Sprintf("p%d-f%d.c", proc, f))
		}
		return ops
	}

	top := mkdir(root, fmt.Sprintf("proc%d", proc))
	dirs = append(dirs, dir{fh: top})
	for len(dirs) < nDirs {
		parent := dirs[r.Intn(len(dirs))]
		child := mkdir(parent.fh, fmt.Sprintf("d%d", len(dirs)))
		dirs = append(dirs, dir{fh: child})
	}
	for f := nDirs; f < entries; f++ {
		parent := dirs[r.Intn(len(dirs))]
		create(parent.fh, fmt.Sprintf("f%d.c", f))
	}
	return ops
}

func max32(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RunUntar runs the closed-loop untar simulation.
func RunUntar(cfg UntarConfig) UntarResult {
	cfg.defaults()
	eng := NewEngine()
	res := UntarResult{}

	nServers := cfg.DirServers
	opTime := DirOpTime
	if cfg.Baseline {
		nServers = 1
		opTime = MFSOpTime
	}
	servers := make([]*Station, nServers)
	var addrs []netsim.Addr
	for i := range servers {
		servers[i] = NewStation(eng, "dir", 1)
		addrs = append(addrs, netsim.Addr{Host: uint32(30 + i), Port: 2049})
	}
	clientCPUs := make([]*Station, cfg.ClientNodes)
	for i := range clientCPUs {
		clientCPUs[i] = NewStation(eng, "clientcpu", 1)
	}
	policy := route.NewNamePolicy(cfg.Kind, cfg.P, route.NewTable(nServers, addrs))

	var totalOps uint64
	var sumCompletion float64
	remaining := cfg.Processes

	for p := 0; p < cfg.Processes; p++ {
		var ops []untarOp
		if cfg.Baseline {
			// Everything serializes on the single server.
			entries := int(float64(UntarFilesPerProcess) * cfg.Scale)
			ops = make([]untarOp, entries*UntarOpsPerCreate)
			for i := range ops {
				ops[i] = untarOp{site: 0, peerSite: -1}
			}
		} else {
			ops = genUntarOps(&cfg, policy, p, &res)
		}
		totalOps += uint64(len(ops))
		res.LogBytes += uint64(len(ops)) * DirLogBytesPerOp

		cpu := clientCPUs[p%cfg.ClientNodes]
		i := 0
		var step func()
		step = func() {
			if i >= len(ops) {
				sumCompletion += eng.Now()
				remaining--
				return
			}
			op := ops[i]
			i++
			stops := []Stop{
				{cpu, ClientOpTime},
				{servers[int(op.site)%nServers], opTime},
			}
			if op.peerSite >= 0 {
				stops = append(stops, Stop{servers[int(op.peerSite)%nServers], DirPeerOpTime})
			}
			Chain(stops, step)
		}
		eng.At(0, step)
	}

	end := eng.Run(0)
	res.MeanLatency = sumCompletion / float64(cfg.Processes) / cfg.Scale
	if end > 0 {
		res.OpsPerSec = float64(totalOps) / end
	}
	for _, s := range servers {
		res.ServerUtil = append(res.ServerUtil, s.Utilization())
	}
	return res
}
