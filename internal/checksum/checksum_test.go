package checksum

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumKnownVector(t *testing.T) {
	// RFC 1071 example: the ones'-complement sum of 00 01 f2 03 f4 f5
	// f6 f7 is ddf2, so the transmitted checksum is its complement 220d.
	p := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Sum(p); got != ^uint16(0xddf2) {
		t.Fatalf("Sum = %04x, want %04x", got, ^uint16(0xddf2))
	}
}

func TestSumOddLength(t *testing.T) {
	// An odd trailing byte is padded with zero.
	if Sum([]byte{0xAB}) != Sum([]byte{0xAB, 0x00}) {
		t.Fatal("odd-length sum differs from zero-padded even-length sum")
	}
}

func TestSumDetectsCorruption(t *testing.T) {
	p := []byte("the quick brown fox jumps over the lazy dog")
	orig := Sum(p)
	p[7] ^= 0x01
	if Sum(p) == orig {
		t.Fatal("single-bit corruption not reflected in checksum")
	}
}

// TestUpdateMatchesRecompute is the core property the µproxy relies on:
// incrementally updating the checksum after rewriting a 16-bit word gives
// exactly the same result as recomputing over the whole buffer.
func TestUpdateMatchesRecompute(t *testing.T) {
	f := func(data []byte, idx uint16, repl uint16) bool {
		if len(data) < 2 {
			return true
		}
		if len(data)%2 == 1 {
			data = data[:len(data)-1] // keep even for word alignment
		}
		off := int(idx) % (len(data) / 2) * 2
		sum := Sum(data)
		old := binary.BigEndian.Uint16(data[off:])
		binary.BigEndian.PutUint16(data[off:], repl)
		want := Sum(data)
		got := Update(sum, old, repl)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdate32And64(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 128)
	rng.Read(data)
	sum := Sum(data)

	old32 := binary.BigEndian.Uint32(data[8:])
	binary.BigEndian.PutUint32(data[8:], 0xDEADBEEF)
	sum = Update32(sum, old32, 0xDEADBEEF)
	if sum != Sum(data) {
		t.Fatalf("Update32: incremental %04x != full %04x", sum, Sum(data))
	}

	old64 := binary.BigEndian.Uint64(data[40:])
	binary.BigEndian.PutUint64(data[40:], 0x0123456789ABCDEF)
	sum = Update64(sum, old64, 0x0123456789ABCDEF)
	if sum != Sum(data) {
		t.Fatalf("Update64: incremental %04x != full %04x", sum, Sum(data))
	}
}

func TestUpdateBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 64+rng.Intn(64)*2)
		rng.Read(data)
		sum := Sum(data)
		// Replace an even-aligned span.
		off := rng.Intn(len(data)/4) * 2
		n := 1 + rng.Intn(len(data)-off-1)
		old := append([]byte(nil), data[off:off+n]...)
		repl := make([]byte, n)
		rng.Read(repl)
		copy(data[off:], repl)
		sum = UpdateBytes(sum, old, repl)
		if sum != Sum(data) {
			t.Fatalf("trial %d: UpdateBytes incremental %04x != full %04x (off %d len %d)",
				trial, sum, Sum(data), off, n)
		}
	}
}

func TestUpdateChain(t *testing.T) {
	// Many successive updates stay consistent (the µproxy rewrites
	// several fields per packet).
	data := make([]byte, 256)
	rand.New(rand.NewSource(3)).Read(data)
	sum := Sum(data)
	for i := 0; i < 100; i++ {
		off := (i * 14) % (len(data) - 2) &^ 1
		old := binary.BigEndian.Uint16(data[off:])
		repl := uint16(i * 7919)
		binary.BigEndian.PutUint16(data[off:], repl)
		sum = Update(sum, old, repl)
	}
	if sum != Sum(data) {
		t.Fatalf("after 100 updates: incremental %04x != full %04x", sum, Sum(data))
	}
}

func BenchmarkSumFull8K(b *testing.B) {
	data := make([]byte, 8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		Sum(data)
	}
}

// BenchmarkUpdateIncremental demonstrates the point of RFC 1624 rewriting:
// adjusting for a rewritten address is O(changed bytes), not O(packet).
func BenchmarkUpdateIncremental(b *testing.B) {
	var sum uint16 = 0x1234
	for i := 0; i < b.N; i++ {
		sum = Update32(sum, uint32(i), uint32(i+1))
	}
	_ = sum
}
