package smallfile

import (
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/storage"
	"slice/internal/wal"
	"slice/internal/xdr"
)

// Server exports a small-file Store over RPC. It serves the NFS I/O subset
// {NULL, READ, WRITE, COMMIT} — the µproxy directs all I/O below the
// threshold offset here — plus the raw-object extension program for
// remove/truncate/stat, sharing procedure numbers with the storage nodes
// so the coordinator can treat both uniformly.
type Server struct {
	store *Store
	srv   *oncrpc.Server
}

// NewServer starts a small-file server on port.
func NewServer(port *netsim.Port, store *Store) *Server {
	s := &Server{store: store}
	s.srv = oncrpc.NewServer(port, oncrpc.HandlerFunc(s.serve))
	return s
}

// Restart builds a small-file server whose store is recovered from its
// journal against the backing object BEFORE the server starts accepting
// calls on port — the §2.3 dataless-manager failover path. The restarted
// store keeps journaling to the log it replayed.
func Restart(port *netsim.Port, backing *storage.ObjectStore, backID storage.ObjectID, log *wal.Log) (*Server, error) {
	store := NewStore(backing, backID, log)
	if err := store.Recover(log); err != nil {
		return nil, err
	}
	return NewServer(port, store), nil
}

// Store returns the underlying store (for stats and failover tests).
func (s *Server) Store() *Store { return s.store }

// Addr returns the server's address.
func (s *Server) Addr() netsim.Addr { return s.srv.Addr() }

// SetObs attaches a histogram registry recording per-procedure handler
// latency (nil detaches).
func (s *Server) SetObs(reg *obs.Registry) {
	if reg == nil {
		s.srv.SetObserver(nil)
		return
	}
	s.srv.SetObserver(reg.ObserveRPC)
}

// Close shuts the server down.
func (s *Server) Close() { s.srv.Close() }

func (s *Server) serve(call oncrpc.Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
	switch call.Program {
	case nfsproto.Program:
		return s.serveNFS(call)
	case storage.ObjProgram:
		return s.serveObj(call)
	default:
		return nil, oncrpc.AcceptProgUnavail
	}
}

func (s *Server) serveNFS(call oncrpc.Call) (func(*xdr.Encoder), uint32) {
	d := xdr.NewDecoder(call.Body)
	switch nfsproto.Proc(call.Proc) {
	case nfsproto.ProcNull:
		return func(e *xdr.Encoder) {}, oncrpc.AcceptSuccess

	case nfsproto.ProcRead:
		var args nfsproto.ReadArgs
		if err := args.Decode(d); err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		buf := make([]byte, args.Count)
		n, eof, err := s.store.Read(args.FH, int64(args.Offset), buf)
		res := &nfsproto.ReadRes{Status: nfsproto.OK, Count: uint32(n), EOF: eof, Data: buf[:n]}
		if err != nil {
			res = &nfsproto.ReadRes{Status: nfsproto.ErrIO}
		}
		return res.Encode, oncrpc.AcceptSuccess

	case nfsproto.ProcWrite:
		var args nfsproto.WriteArgs
		if err := args.Decode(d); err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		cnt := args.Count
		if int(cnt) > len(args.Data) {
			cnt = uint32(len(args.Data))
		}
		stable := args.Stable != nfsproto.Unstable
		res := &nfsproto.WriteRes{Status: nfsproto.OK, Count: cnt, Verf: s.store.backing.Verifier()}
		if stable {
			res.Committed = nfsproto.FileSync
		}
		if err := s.store.Write(args.FH, int64(args.Offset), args.Data[:cnt], stable); err != nil {
			res = &nfsproto.WriteRes{Status: nfsproto.ErrFBig}
		}
		return res.Encode, oncrpc.AcceptSuccess

	case nfsproto.ProcCommit:
		var args nfsproto.CommitArgs
		if err := args.Decode(d); err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		verf := s.store.Commit(args.FH)
		res := &nfsproto.CommitRes{Status: nfsproto.OK, Verf: verf}
		return res.Encode, oncrpc.AcceptSuccess

	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}

func (s *Server) serveObj(call oncrpc.Call) (func(*xdr.Encoder), uint32) {
	d := xdr.NewDecoder(call.Body)
	fh, err := fhandle.Decode(d)
	if err != nil {
		return nil, oncrpc.AcceptGarbageArgs
	}
	switch call.Proc {
	case storage.ObjProcRemove:
		s.store.Remove(fh)
		return func(e *xdr.Encoder) { e.PutUint32(uint32(nfsproto.OK)) }, oncrpc.AcceptSuccess

	case storage.ObjProcTruncate:
		size, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		st := nfsproto.OK
		if err := s.store.Truncate(fh, int64(size)); err != nil {
			st = nfsproto.ErrInval
		}
		return func(e *xdr.Encoder) { e.PutUint32(uint32(st)) }, oncrpc.AcceptSuccess

	case storage.ObjProcStat:
		size, ok := s.store.Size(fh)
		res := storage.ObjStatRes{Status: nfsproto.OK, Size: uint64(size), Used: uint64(s.store.Used(fh))}
		if !ok {
			res.Status = nfsproto.ErrNoEnt
		}
		return res.Encode, oncrpc.AcceptSuccess

	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}
