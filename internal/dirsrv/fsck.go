package dirsrv

import (
	"fmt"
	"sort"

	"slice/internal/attr"
	"slice/internal/fhandle"
)

// This file implements an offline cross-site integrity checker for the
// distributed name space. The paper's prototype left recovery tooling
// incomplete (§4.3); Check gives this implementation a verifiable
// statement of the invariants the peer protocol maintains:
//
//   - referential integrity: every name cell's child has a live attribute
//     cell (on some site) with a matching generation;
//   - link counts: a regular file's nlink equals the number of name cells
//     referencing it across all sites; a directory's nlink equals 2 plus
//     its number of child directories;
//   - no orphans: every attribute cell except the volume root is
//     referenced by at least one name cell;
//   - no duplicate names: at most one name cell per (parent, name).

// stateDump is a consistent copy of one server's cells.
type stateDump struct {
	site  uint32
	attrs map[uint64]attrCell
	cells []nameCell
}

// dump snapshots the server's state under its lock.
func (s *Server) dump() stateDump {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := stateDump{site: s.site, attrs: make(map[uint64]attrCell, len(s.st.attrs))}
	for k, c := range s.st.attrs {
		d.attrs[k] = *c
	}
	for _, chain := range s.st.chains {
		for _, c := range chain {
			d.cells = append(d.cells, *c)
		}
	}
	return d
}

// Check scans the given directory servers (one volume's full ensemble)
// and returns a sorted list of integrity violations, empty if the name
// space is consistent. root identifies the volume root, which legally has
// no referencing name cell.
func Check(servers []*Server, root fhandle.Handle) []string {
	var problems []string
	addf := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	dumps := make([]stateDump, len(servers))
	for i, s := range servers {
		dumps[i] = s.dump()
	}

	// Global indices.
	type cellLoc struct {
		cell attrCell
		site uint32
	}
	attrsByID := make(map[uint64]cellLoc)
	for _, d := range dumps {
		for id, c := range d.attrs {
			if prev, dup := attrsByID[id]; dup {
				addf("attr cell %d present on sites %d and %d", id, prev.site, d.site)
			}
			attrsByID[id] = cellLoc{cell: c, site: d.site}
		}
	}
	refCount := make(map[uint64]int)     // fileID -> referencing name cells
	subdirCount := make(map[uint64]int)  // parent fileID -> child directories
	seenNames := make(map[string]uint32) // parent/name -> site
	for _, d := range dumps {
		for _, c := range d.cells {
			key := fmt.Sprintf("%d/%d:%s", c.parent.Volume, c.parent.FileID, c.name)
			if prev, dup := seenNames[key]; dup {
				addf("duplicate name cell %q on sites %d and %d", key, prev, d.site)
			}
			seenNames[key] = d.site

			refCount[c.child.FileID]++
			if c.child.Type == uint8(attr.TypeDir) {
				subdirCount[c.parent.FileID]++
			}

			loc, ok := attrsByID[c.child.FileID]
			if !ok {
				addf("name cell %q references missing attr cell %d", key, c.child.FileID)
				continue
			}
			if loc.cell.fh.Gen != c.child.Gen {
				addf("name cell %q references generation %d, cell has %d",
					key, c.child.Gen, loc.cell.fh.Gen)
			}
		}
	}

	for id, loc := range attrsByID {
		c := loc.cell
		switch c.at.Type {
		case attr.TypeDir:
			if id == root.FileID {
				wantNlink := uint32(2 + subdirCount[id])
				if c.at.Nlink != wantNlink {
					addf("root nlink %d, want %d", c.at.Nlink, wantNlink)
				}
				continue
			}
			if refCount[id] == 0 {
				addf("orphan directory cell %d on site %d", id, loc.site)
			}
			wantNlink := uint32(2 + subdirCount[id])
			if c.at.Nlink != wantNlink {
				addf("directory %d nlink %d, want %d (2 + %d subdirs)",
					id, c.at.Nlink, wantNlink, subdirCount[id])
			}
		case attr.TypeReg, attr.TypeLink:
			if refCount[id] == 0 {
				addf("orphan file cell %d on site %d", id, loc.site)
			}
			if int(c.at.Nlink) != refCount[id] {
				addf("file %d nlink %d, but %d name cells reference it",
					id, c.at.Nlink, refCount[id])
			}
		}
	}

	sort.Strings(problems)
	return problems
}
