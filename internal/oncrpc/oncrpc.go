// Package oncrpc implements the ONC-RPC-style remote procedure call layer
// that carries the Slice file protocol over the datagram network.
//
// The wire format follows RFC 1831's essentials: every message begins with
// a transaction id (xid) and a message type; calls carry program, version,
// and procedure numbers ahead of the argument body; replies carry an accept
// status ahead of the result body. Field offsets are fixed and exported so
// the µproxy can locate the procedure number and argument body of a call
// within a raw datagram without a general decoder.
//
// Clients retransmit on timeout with exponential backoff — the end-to-end
// recovery the Slice architecture relies on when the µproxy or the network
// drops packets (§2.1). Servers keep a duplicate-request cache so that
// retransmitted non-idempotent operations (e.g. CREATE, REMOVE) observe
// their original reply rather than re-executing.
package oncrpc

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"slice/internal/netsim"
	"slice/internal/xdr"
)

// Message types.
const (
	MsgCall  = 0
	MsgReply = 1
)

// Reply accept status (RFC 1831 accept_stat).
const (
	AcceptSuccess      = 0
	AcceptProgUnavail  = 1
	AcceptProgMismatch = 2
	AcceptProcUnavail  = 3
	AcceptGarbageArgs  = 4
	AcceptSystemErr    = 5
)

// Byte offsets of call header fields within an RPC payload, exported for
// interposed rewriters.
const (
	OffXid      = 0
	OffMsgType  = 4
	OffProgram  = 8
	OffVersion  = 12
	OffProc     = 16
	CallHeader  = 20 // call body begins here
	OffAccept   = 8  // within a reply
	ReplyHeader = 12 // reply body begins here
)

// EncodeCall assembles an RPC call message.
func EncodeCall(xid, prog, vers, proc uint32, args func(*xdr.Encoder)) []byte {
	e := xdr.NewEncoder(CallHeader + 128)
	e.PutUint32(xid)
	e.PutUint32(MsgCall)
	e.PutUint32(prog)
	e.PutUint32(vers)
	e.PutUint32(proc)
	if args != nil {
		args(e)
	}
	return e.Bytes()
}

// EncodeReply assembles an RPC reply message.
func EncodeReply(xid, accept uint32, res func(*xdr.Encoder)) []byte {
	e := xdr.NewEncoder(ReplyHeader + 128)
	e.PutUint32(xid)
	e.PutUint32(MsgReply)
	e.PutUint32(accept)
	if res != nil && accept == AcceptSuccess {
		res(e)
	}
	return e.Bytes()
}

// Call is a decoded call header plus its argument body. When the call
// carried the optional trace trailer (see trace.go), the server strips
// it before dispatch and records the trace id here.
type Call struct {
	Xid     uint32
	Program uint32
	Version uint32
	Proc    uint32
	Body    []byte // aliases the datagram payload
	Trace   uint64 // trace id from the call trailer, if Traced
	Traced  bool   // the call carried a trace trailer
}

// Reply is a decoded reply header plus its result body.
type Reply struct {
	Xid    uint32
	Accept uint32
	Body   []byte // aliases the datagram payload
}

// ErrBadMessage indicates a malformed RPC payload.
var ErrBadMessage = errors.New("oncrpc: bad message")

// IsCall reports whether the payload is an RPC call (vs a reply). It reads
// only the message-type field.
func IsCall(payload []byte) (bool, error) {
	if len(payload) < OffMsgType+4 {
		return false, fmt.Errorf("%w: short payload", ErrBadMessage)
	}
	d := xdr.NewDecoder(payload)
	mt, err := d.UintAt(OffMsgType)
	if err != nil {
		return false, err
	}
	switch mt {
	case MsgCall:
		return true, nil
	case MsgReply:
		return false, nil
	}
	return false, fmt.Errorf("%w: message type %d", ErrBadMessage, mt)
}

// ParseCall decodes a call payload.
func ParseCall(payload []byte) (Call, error) {
	if len(payload) < CallHeader {
		return Call{}, fmt.Errorf("%w: short call (%d bytes)", ErrBadMessage, len(payload))
	}
	d := xdr.NewDecoder(payload)
	xid, _ := d.Uint32()
	mt, _ := d.Uint32()
	if mt != MsgCall {
		return Call{}, fmt.Errorf("%w: not a call (type %d)", ErrBadMessage, mt)
	}
	prog, _ := d.Uint32()
	vers, _ := d.Uint32()
	proc, _ := d.Uint32()
	return Call{Xid: xid, Program: prog, Version: vers, Proc: proc,
		Body: payload[CallHeader:]}, nil
}

// ParseReply decodes a reply payload.
func ParseReply(payload []byte) (Reply, error) {
	if len(payload) < ReplyHeader {
		return Reply{}, fmt.Errorf("%w: short reply (%d bytes)", ErrBadMessage, len(payload))
	}
	d := xdr.NewDecoder(payload)
	xid, _ := d.Uint32()
	mt, _ := d.Uint32()
	if mt != MsgReply {
		return Reply{}, fmt.Errorf("%w: not a reply (type %d)", ErrBadMessage, mt)
	}
	accept, _ := d.Uint32()
	return Reply{Xid: xid, Accept: accept, Body: payload[ReplyHeader:]}, nil
}

// Conn is the datagram endpoint RPC runs over. *netsim.Port implements it
// natively; internal/udpgate adapts a real UDP socket so clients can reach
// a Slice ensemble across processes.
type Conn interface {
	SendTo(dst netsim.Addr, payload []byte) error
	Recv(timeout time.Duration) ([]byte, error)
	Addr() netsim.Addr
	Close()
}

// ---------------------------------------------------------------- client

// Resolver reports the current address of a service. A client configured
// with one re-resolves the destination before every transmission —
// including retransmissions within a single Call — so a caller can
// re-target a restarted or replacement manager without tearing the client
// down (the paper's §2.3 failover: a reconfigured manager takes over and
// traffic follows it). A zero return falls back to the client's static
// server address. Resolvers are called concurrently and must be
// thread-safe.
type Resolver func() netsim.Addr

// KeyResolver resolves the destination of one transmission from the
// call's flow key — the hook the flow-hashing front plugs into: keyed
// calls re-resolve before every transmission, so when the proxy owning
// a flow crashes and the fleet table swaps, the very next
// retransmission lands on the flow's new owner. A zero return falls
// back to the plain Resolver, then to the static server address. Key 0
// is an ordinary flow key (mount-time traffic uses it), not a
// sentinel. KeyResolvers are called concurrently and must be
// thread-safe and allocation-free: they run on the bulk I/O fast path.
type KeyResolver func(key uint64) netsim.Addr

// ClientConfig tunes RPC client behaviour.
type ClientConfig struct {
	// Timeout is the initial retransmission timeout (default 50ms).
	Timeout time.Duration
	// Retries is the maximum number of transmissions (default 5).
	Retries int
	// Backoff multiplies the timeout after each retransmission (default 2).
	Backoff int
	// Jitter is the maximum fraction of each retransmission timeout added
	// as random slack, decorrelating the retry storms of clients that
	// timed out together (default 0.1; negative disables).
	Jitter float64
	// XidSeed seeds the client's xid sequence. Zero (the default) draws a
	// per-client random seed, so a client restarted on a reused host/port
	// cannot collide with its previous incarnation's entries in a server's
	// duplicate-request cache.
	XidSeed uint32
	// Resolve, when non-nil, overrides the server address per transmission.
	Resolve Resolver
	// ResolveKey, when non-nil, overrides the server address per
	// transmission for keyed calls (CallKeyed/CallStartKeyed), taking
	// precedence over Resolve when it returns a non-zero address.
	ResolveKey KeyResolver
}

func (c *ClientConfig) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = 50 * time.Millisecond
	}
	if c.Retries <= 0 {
		c.Retries = 5
	}
	if c.Backoff <= 0 {
		c.Backoff = 2
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
}

// xidCounter feeds randomUint32. A scrambled atomic counter gives every
// client process-wide unique, well-spread draws without a global rand lock.
// It MUST start from per-process entropy: a zero start would make every
// process draw the same "random" xid sequence, so two client processes
// reaching a server from a reused source address would collide in its
// duplicate-request cache and be served each other's cached replies.
var xidCounter atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// No entropy source: fall back to the clock, which still differs
		// across process starts.
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	xidCounter.Store(binary.BigEndian.Uint64(b[:]))
}

// randomUint32 returns the next draw from a splitmix64 sequence over the
// package counter: cheap, lock-free, and uniform enough that two client
// incarnations on the same host/port will not share an xid window.
func randomUint32() uint32 {
	x := xidCounter.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return uint32(x)
}

// ErrTimedOut is returned when all retransmissions of a call go unanswered.
var ErrTimedOut = errors.New("oncrpc: call timed out")

// ErrRejected is returned when the server rejects a call.
type ErrRejected struct{ Accept uint32 }

// Error implements the error interface.
func (e *ErrRejected) Error() string {
	return fmt.Sprintf("oncrpc: call rejected (accept_stat %d)", e.Accept)
}

// numPendingShards shards the xid→reply-channel map. With a windowed
// bulk client keeping dozens of calls in flight, a single pending-map
// mutex becomes the hot lock: every CallStart, every reply, and every
// retransmission timer would serialize on it. Sixteen shards keyed by
// the xid's low bits keep registration and reply matching contention-free
// (xids are sequential, so consecutive in-flight calls land on distinct
// shards).
const numPendingShards = 16

// pendingCall is one registered in-flight call: its reply channel plus
// the destinations its transmissions were sent to. A reply is matched
// only when it arrives FROM one of those destinations — the standard
// datagram-RPC peer check. Under an interposed router this is what keeps
// clients honest about the virtual server: every reply the µproxy
// forwards or synthesizes is sourced from the virtual address the client
// called, while a reply leaking straight from a physical server (e.g.
// one replica of a fanned-out write, after the router lost its soft
// state) arrives from an address the client never wrote to and must be
// ignored — accepting it would acknowledge an operation the other
// replicas may never have seen. Two slots suffice: a call only changes
// destination when a retransmission re-resolves across a
// reconfiguration, and then the first and latest destinations are the
// ones a live reply can still come from.
type pendingCall struct {
	ch   chan Reply
	dst  [2]netsim.Addr
	ndst int
}

// sentTo records a transmission destination (first + latest kept).
func (pc *pendingCall) sentTo(a netsim.Addr) {
	for i := 0; i < pc.ndst; i++ {
		if pc.dst[i] == a {
			return
		}
	}
	if pc.ndst < len(pc.dst) {
		pc.dst[pc.ndst] = a
		pc.ndst++
		return
	}
	pc.dst[len(pc.dst)-1] = a
}

// from reports whether a reply sourced at a answers this call.
func (pc *pendingCall) from(a netsim.Addr) bool {
	for i := 0; i < pc.ndst; i++ {
		if pc.dst[i] == a {
			return true
		}
	}
	return false
}

// pendingShard is one lock-striped slice of the pending-call map.
type pendingShard struct {
	mu sync.Mutex
	m  map[uint32]*pendingCall
}

// Client issues RPC calls to a fixed server address over a netsim port and
// matches replies to calls by xid. Calls may be issued concurrently from
// any number of goroutines; see CallStart for the asynchronous form.
type Client struct {
	port   Conn
	server netsim.Addr
	cfg    ClientConfig

	nextXid atomic.Uint32
	closed  atomic.Bool
	shards  [numPendingShards]pendingShard

	// retransmissions counts retransmitted calls, for tests and stats.
	retransmissions atomic.Uint64
	// strayReplies counts replies rejected by the peer-address check:
	// a matching xid from an address the call was never sent to.
	strayReplies atomic.Uint64
}

// NewClient creates a client bound to port that calls the given server
// address. The client owns the port's receive loop.
func NewClient(port Conn, server netsim.Addr, cfg ClientConfig) *Client {
	cfg.defaults()
	seed := cfg.XidSeed
	if seed == 0 {
		seed = randomUint32()
	}
	c := &Client{
		port:   port,
		server: server,
		cfg:    cfg,
	}
	c.nextXid.Store(seed - 1) // Add(1) on first register yields the seed
	for i := range c.shards {
		c.shards[i].m = make(map[uint32]*pendingCall)
	}
	go c.recvLoop()
	return c
}

// Server returns the static server address this client calls (a configured
// Resolver may override it per transmission).
func (c *Client) Server() netsim.Addr { return c.server }

// target resolves the destination for one transmission of the call
// with the given flow key.
func (c *Client) target(key uint64) netsim.Addr {
	if c.cfg.ResolveKey != nil {
		if a := c.cfg.ResolveKey(key); !a.IsZero() {
			return a
		}
	}
	if c.cfg.Resolve != nil {
		if a := c.cfg.Resolve(); !a.IsZero() {
			return a
		}
	}
	return c.server
}

// Retransmissions returns the number of retransmitted datagrams.
func (c *Client) Retransmissions() uint64 {
	return c.retransmissions.Load()
}

// StrayReplies returns the number of replies dropped because they
// arrived from an address their call was never sent to.
func (c *Client) StrayReplies() uint64 {
	return c.strayReplies.Load()
}

// Close shuts the client down; in-flight calls fail.
func (c *Client) Close() {
	c.closed.Store(true)
	c.port.Close()
}

// shard returns the pending shard owning xid.
func (c *Client) shard(xid uint32) *pendingShard {
	return &c.shards[xid%numPendingShards]
}

// register allocates an xid and its pending-call record.
func (c *Client) register() (uint32, *pendingCall, error) {
	if c.closed.Load() {
		return 0, nil, netsim.ErrClosed
	}
	xid := c.nextXid.Add(1)
	pc := &pendingCall{ch: make(chan Reply, 1)}
	s := c.shard(xid)
	s.mu.Lock()
	s.m[xid] = pc
	s.mu.Unlock()
	return xid, pc, nil
}

// noteSent records that xid's call was transmitted to dst, admitting
// replies sourced there. Serialized with reply matching by the shard
// lock; called before the datagram is handed to the network, so the
// reply can never outrun its admission.
func (c *Client) noteSent(xid uint32, dst netsim.Addr) {
	s := c.shard(xid)
	s.mu.Lock()
	if pc, ok := s.m[xid]; ok {
		pc.sentTo(dst)
	}
	s.mu.Unlock()
}

// unregister removes a call's pending entry (idempotent: the receive
// loop removes it first when a reply wins the race).
func (c *Client) unregister(xid uint32) {
	s := c.shard(xid)
	s.mu.Lock()
	delete(s.m, xid)
	s.mu.Unlock()
}

func (c *Client) recvLoop() {
	for {
		d, err := c.port.Recv(0)
		if err != nil {
			return // port closed
		}
		payload := netsim.Payload(d)
		rep, err := ParseReply(payload)
		if err != nil {
			netsim.FreeBuf(d)
			continue // not a reply; ignore
		}
		src := netsim.Addr{
			Host: binary.BigEndian.Uint32(d[netsim.OffSrcHost:]),
			Port: binary.BigEndian.Uint16(d[netsim.OffSrcPort:]),
		}
		s := c.shard(rep.Xid)
		s.mu.Lock()
		pc, ok := s.m[rep.Xid]
		if ok && !pc.from(src) {
			// Matching xid, wrong peer: a stray reply from an address
			// this call was never sent to. Leave the call registered —
			// the real peer's answer (or a retransmission's) still
			// matches — and drop the stray.
			ok = false
			c.strayReplies.Add(1)
		} else if ok {
			delete(s.m, rep.Xid)
		}
		s.mu.Unlock()
		if ok {
			// Copy the body: the datagram buffer goes back to the pool.
			// The copy is owned by the awaiting caller; duplicate
			// deliveries of the same xid find no pending entry and are
			// dropped above, so the buffered send can never block.
			body := make([]byte, len(rep.Body))
			copy(body, rep.Body)
			rep.Body = body
			pc.ch <- rep
		}
		netsim.FreeBuf(d)
	}
}

// Call issues proc of prog/vers with the encoded args and returns the
// reply body. It retransmits on timeout.
func (c *Client) Call(prog, vers, proc uint32, args func(*xdr.Encoder)) ([]byte, error) {
	return c.call(0, prog, vers, proc, args, 0, false)
}

// CallKeyed issues a call tagged with a flow key: every transmission —
// including retransmissions — resolves its destination through the
// configured ResolveKey, so the call follows its flow's owner across
// fleet reconfigurations. Without a ResolveKey it behaves exactly like
// Call.
func (c *Client) CallKeyed(key uint64, prog, vers, proc uint32, args func(*xdr.Encoder)) ([]byte, error) {
	return c.call(key, prog, vers, proc, args, 0, false)
}

// CallTraced issues a call carrying the optional trace trailer, tying
// the server-side work to the originating request's trace id. Servers
// that predate the trace field ignore the trailer; the reply body may
// end with a reply trailer readable via PeekReplyTrace.
func (c *Client) CallTraced(traceID uint64, prog, vers, proc uint32, args func(*xdr.Encoder)) ([]byte, error) {
	return c.call(0, prog, vers, proc, args, traceID, true)
}

func (c *Client) call(key uint64, prog, vers, proc uint32, args func(*xdr.Encoder), traceID uint64, traced bool) ([]byte, error) {
	xid, pc, err := c.register()
	if err != nil {
		return nil, err
	}
	defer c.unregister(xid)
	payload := EncodeCall(xid, prog, vers, proc, args)
	if traced {
		payload = AppendCallTrace(payload, traceID)
	}
	return c.transact(key, xid, proc, payload, pc.ch)
}

// transact runs the retransmit/timeout loop for one registered call. It
// is shared by the synchronous and asynchronous call paths, so every
// concurrent call gets the same backoff, jitter, and re-resolve
// behaviour.
func (c *Client) transact(key uint64, xid, proc uint32, payload []byte, ch chan Reply) ([]byte, error) {
	timeout := c.cfg.Timeout
	dst := c.target(key)
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.retransmissions.Add(1)
			// Re-resolve before every retransmission: if the server was
			// restarted elsewhere while we waited, the retry goes to the
			// replacement instead of the corpse.
			dst = c.target(key)
		}
		c.noteSent(xid, dst)
		if err := c.port.SendTo(dst, payload); err != nil {
			return nil, err
		}
		wait := timeout
		if c.cfg.Jitter > 0 {
			frac := float64(randomUint32()) / (1 << 32)
			wait += time.Duration(float64(timeout) * c.cfg.Jitter * frac)
		}
		timer := time.NewTimer(wait)
		select {
		case rep := <-ch:
			timer.Stop()
			if rep.Accept != AcceptSuccess {
				return nil, &ErrRejected{Accept: rep.Accept}
			}
			return rep.Body, nil
		case <-timer.C:
			timeout *= time.Duration(c.cfg.Backoff)
		}
	}
	return nil, fmt.Errorf("%w: proc %d to %s after %d attempts",
		ErrTimedOut, proc, dst, c.cfg.Retries)
}

// ---------------------------------------------------------- async calls

// Pending is one in-flight asynchronous call started with CallStart.
// Await collects its result; each Pending must be awaited exactly once.
type Pending struct {
	done chan pendingResult
}

type pendingResult struct {
	body []byte
	err  error
}

// CallStart issues proc of prog/vers asynchronously and returns a
// Pending handle. The argument encoder runs synchronously before
// CallStart returns — the caller may reuse or modify any buffers the
// encoder read as soon as CallStart returns (transfer of ownership is by
// copy into the call payload). Retransmission, backoff, and re-resolve
// run in the background exactly as for Call; any number of calls may be
// in flight concurrently on one client, bounded only by the caller.
func (c *Client) CallStart(prog, vers, proc uint32, args func(*xdr.Encoder)) *Pending {
	return c.CallStartKeyed(0, prog, vers, proc, args)
}

// CallStartKeyed is CallStart with a flow key: the asynchronous form of
// CallKeyed, re-resolving the destination through ResolveKey before
// every transmission.
func (c *Client) CallStartKeyed(key uint64, prog, vers, proc uint32, args func(*xdr.Encoder)) *Pending {
	p := &Pending{done: make(chan pendingResult, 1)}
	xid, pc, err := c.register()
	if err != nil {
		p.done <- pendingResult{err: err}
		return p
	}
	payload := EncodeCall(xid, prog, vers, proc, args)
	go func() {
		body, err := c.transact(key, xid, proc, payload, pc.ch)
		c.unregister(xid)
		p.done <- pendingResult{body: body, err: err}
	}()
	return p
}

// Await blocks until the call completes and returns the reply body (a
// fresh copy owned by the caller) or the call's error.
func (p *Pending) Await() ([]byte, error) {
	r := <-p.done
	return r.body, r.err
}

// ---------------------------------------------------------------- server

// Handler serves the body of a single RPC call. It returns the result
// encoder function and an accept status. Handlers run concurrently, one
// goroutine per in-flight request.
type Handler interface {
	ServeRPC(call Call, from netsim.Addr) (res func(*xdr.Encoder), accept uint32)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(call Call, from netsim.Addr) (func(*xdr.Encoder), uint32)

// ServeRPC implements Handler.
func (f HandlerFunc) ServeRPC(call Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
	return f(call, from)
}

// drcEntry is a duplicate-request cache entry.
type drcEntry struct {
	key   drcKey
	id    callID
	reply []byte
}

type drcKey struct {
	host netsim.Addr
	xid  uint32
}

// callID is the verifier a {source, xid} cache slot carries: the call's
// program, version, procedure, and argument length. A true retransmission
// repeats all four; a different call re-using the slot's {source, xid} —
// a new client incarnation on a recycled source address whose xid window
// happens to overlap — does not, and replaying the cached reply to it
// would answer the wrong procedure entirely.
type callID struct {
	prog, vers, proc uint32
	bodyLen          int
}

// ServerObserver is notified after each handled call with the call's
// identity and the handler's wall time. It runs on the per-call
// goroutine and must be cheap and thread-safe (the obs wiring records
// one histogram sample, a single atomic add).
type ServerObserver func(prog, vers, proc uint32, handlerNS uint64)

// Server accepts RPC calls on a port and dispatches them to a handler.
type Server struct {
	port    Conn
	handler Handler
	obs     atomic.Pointer[ServerObserver]

	mu       sync.Mutex
	drc      map[drcKey]int // key -> index into drcRing
	drcRing  []drcEntry
	drcNext  int
	inflight map[drcKey]callID

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// DRCSize is the number of replies retained for duplicate suppression.
const DRCSize = 1024

// NewServer starts serving calls arriving on port with handler.
func NewServer(port Conn, handler Handler) *Server {
	s := &Server{
		port:     port,
		handler:  handler,
		drc:      make(map[drcKey]int),
		drcRing:  make([]drcEntry, DRCSize),
		inflight: make(map[drcKey]callID),
		closed:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.serveLoop()
	return s
}

// Addr returns the server's bound address.
func (s *Server) Addr() netsim.Addr { return s.port.Addr() }

// SetObserver installs (or, with nil, removes) the server's observer.
// While an observer is installed the server also times every handler and
// appends the reply trace trailer, so interposed elements can split this
// hop's round-trip into server time and wire time.
func (s *Server) SetObserver(fn ServerObserver) {
	if fn == nil {
		s.obs.Store(nil)
		return
	}
	s.obs.Store(&fn)
}

// Close stops the server and waits for in-flight handlers. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.port.Close()
		close(s.closed)
		s.wg.Wait()
	})
}

func (s *Server) serveLoop() {
	defer s.wg.Done()
	for {
		d, err := s.port.Recv(0)
		if err != nil {
			return
		}
		h, err := netsim.Parse(d)
		if err != nil {
			netsim.FreeBuf(d)
			continue
		}
		call, err := ParseCall(netsim.Payload(d))
		if err != nil {
			netsim.FreeBuf(d)
			continue
		}
		if id, body, ok := SplitCallTrace(call.Body); ok {
			call.Body = body
			call.Trace = id
			call.Traced = true
		}
		key := drcKey{host: h.Src, xid: call.Xid}
		id := callID{prog: call.Program, vers: call.Version,
			proc: call.Proc, bodyLen: len(call.Body)}

		s.mu.Lock()
		if idx, ok := s.drc[key]; ok {
			if s.drcRing[idx].id == id {
				// Retransmission of a completed call: replay the reply.
				reply := s.drcRing[idx].reply
				s.mu.Unlock()
				netsim.FreeBuf(d)
				_ = s.port.SendTo(h.Src, reply)
				continue
			}
			// Same {source, xid} but a different call: not a
			// retransmission. Drop the stale entry (clearing its ring
			// slot so the eventual slot reuse cannot evict a newer entry
			// under the same key) and execute the call fresh.
			delete(s.drc, key)
			s.drcRing[idx] = drcEntry{}
		}
		if _, ok := s.inflight[key]; ok {
			// Retransmission of an in-progress call: drop; the client
			// will retry and eventually hit the DRC. A *different* call
			// colliding with the in-flight slot is also dropped — one
			// key cannot track both — but its retransmission lands
			// after the first call completes and then takes the
			// stale-entry path above, so it is executed, not wedged.
			s.mu.Unlock()
			netsim.FreeBuf(d)
			continue
		}
		s.inflight[key] = id
		s.mu.Unlock()

		s.wg.Add(1)
		go func(call Call, from netsim.Addr, key drcKey, id callID, d []byte) {
			defer s.wg.Done()
			obsFn := s.obs.Load()
			timed := obsFn != nil || call.Traced
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			res, accept := s.handler.ServeRPC(call, from)
			var handlerNS uint64
			if timed {
				handlerNS = uint64(time.Since(t0))
			}
			if obsFn != nil {
				(*obsFn)(call.Program, call.Version, call.Proc, handlerNS)
			}
			reply := EncodeReply(call.Xid, accept, res)
			if timed {
				reply = AppendReplyTrace(reply, call.Trace, handlerNS)
			}
			// call.Args (and possibly res) alias the request datagram;
			// EncodeReply copied everything out, so it can go back now.
			netsim.FreeBuf(d)

			s.mu.Lock()
			delete(s.inflight, key)
			// Evict the slot we are about to reuse.
			if old := &s.drcRing[s.drcNext]; old.reply != nil {
				delete(s.drc, old.key)
			}
			s.drcRing[s.drcNext] = drcEntry{key: key, id: id, reply: reply}
			s.drc[key] = s.drcNext
			s.drcNext = (s.drcNext + 1) % DRCSize
			s.mu.Unlock()

			_ = s.port.SendTo(from, reply)
		}(call, h.Src, key, id, d)
	}
}
