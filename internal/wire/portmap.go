package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/xdr"
)

// Portmap is an embedded portmapper (program 100000 v2) over
// record-marked TCP: GETPORT and DUMP, backed by an explicit
// registration table. A real client's first question — "where does NFS
// listen?" — is answered here, pointing at the wire gateway.
type Portmap struct {
	ln  net.Listener
	reg atomic.Pointer[obs.Registry]

	mu     sync.Mutex
	maps   map[mapKey]uint32
	order  []mapKey
	closed bool
	wg     sync.WaitGroup
}

type mapKey struct{ prog, vers, prot uint32 }

// NewPortmap starts a portmapper on the given TCP listen address.
func NewPortmap(listen string) (*Portmap, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	p := &Portmap{ln: ln, maps: make(map[mapKey]uint32)}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// SetObs attaches an obs registry; served calls are recorded by op class
// (portmap.getport, portmap.dump).
func (p *Portmap) SetObs(r *obs.Registry) { p.reg.Store(r) }

// Register maps (prog, vers, prot) to a port, replacing any previous
// registration.
func (p *Portmap) Register(prog, vers, prot, port uint32) {
	k := mapKey{prog, vers, prot}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.maps[k]; !ok {
		p.order = append(p.order, k)
	}
	p.maps[k] = port
}

// Addr returns the TCP address the portmapper listens on.
func (p *Portmap) Addr() net.Addr { return p.ln.Addr() }

// Close stops the portmapper.
func (p *Portmap) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

func (p *Portmap) acceptLoop() {
	defer p.wg.Done()
	for {
		tcp, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.serveConn(tcp)
	}
}

func (p *Portmap) serveConn(tcp net.Conn) {
	defer p.wg.Done()
	defer tcp.Close()
	br := bufio.NewReaderSize(tcp, 4<<10)
	bw := bufio.NewWriterSize(tcp, 4<<10)
	for {
		rec, err := readRecord(br, 0)
		if err != nil {
			return
		}
		call, err := oncrpc.ParseCall(rec)
		if err != nil {
			netsim.FreeBuf(rec)
			return // framing is fine but the stream isn't RPC; hang up
		}
		t0 := time.Now()
		res, accept := p.serve(call)
		reply := oncrpc.EncodeReply(call.Xid, accept, res)
		if r := p.reg.Load(); r != nil {
			r.ObserveRPC(call.Program, call.Version, call.Proc, uint64(time.Since(t0)))
		}
		netsim.FreeBuf(rec)
		if err := writeRecord(bw, reply, 0); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (p *Portmap) serve(call oncrpc.Call) (func(*xdr.Encoder), uint32) {
	if call.Program != nfsproto.PortmapProgram {
		return nil, oncrpc.AcceptProgUnavail
	}
	if call.Version != nfsproto.PortmapVersion {
		return nil, oncrpc.AcceptProgMismatch
	}
	switch call.Proc {
	case nfsproto.PortmapProcNull:
		return func(*xdr.Encoder) {}, oncrpc.AcceptSuccess
	case nfsproto.PortmapProcGetPort:
		var args nfsproto.Mapping
		if err := args.Decode(xdr.NewDecoder(call.Body)); err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		p.mu.Lock()
		port := p.maps[mapKey{args.Prog, args.Vers, args.Prot}]
		p.mu.Unlock()
		res := nfsproto.GetPortRes{Port: port}
		return res.Encode, oncrpc.AcceptSuccess
	case nfsproto.PortmapProcDump:
		p.mu.Lock()
		res := nfsproto.DumpRes{Mappings: make([]nfsproto.Mapping, 0, len(p.order))}
		for _, k := range p.order {
			res.Mappings = append(res.Mappings, nfsproto.Mapping{
				Prog: k.prog, Vers: k.vers, Prot: k.prot, Port: p.maps[k],
			})
		}
		p.mu.Unlock()
		return res.Encode, oncrpc.AcceptSuccess
	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}

// ------------------------------------------------------- client helpers

var xidCounter atomic.Uint32

// rpcOnce performs a single record-marked RPC over a fresh TCP
// connection: the one-shot discovery pattern of a mounting client.
func rpcOnce(server string, prog, vers, proc uint32, args func(*xdr.Encoder)) ([]byte, error) {
	tcp, err := net.Dial("tcp", server)
	if err != nil {
		return nil, err
	}
	defer tcp.Close()
	xid := xidCounter.Add(1)
	bw := bufio.NewWriter(tcp)
	if err := writeRecord(bw, oncrpc.EncodeCall(xid, prog, vers, proc, args), 0); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	_ = tcp.SetReadDeadline(time.Now().Add(10 * time.Second))
	rec, err := readRecord(bufio.NewReader(tcp), 0)
	if err != nil {
		return nil, err
	}
	defer netsim.FreeBuf(rec)
	rep, err := oncrpc.ParseReply(rec)
	if err != nil {
		return nil, err
	}
	if rep.Xid != xid {
		return nil, fmt.Errorf("wire: reply xid %d for call %d", rep.Xid, xid)
	}
	if rep.Accept != oncrpc.AcceptSuccess {
		return nil, &oncrpc.ErrRejected{Accept: rep.Accept}
	}
	body := make([]byte, len(rep.Body))
	copy(body, rep.Body)
	return body, nil
}

// GetPort asks the portmapper at server where (prog, vers, prot)
// listens; 0 means unregistered.
func GetPort(server string, prog, vers, prot uint32) (uint32, error) {
	body, err := rpcOnce(server, nfsproto.PortmapProgram, nfsproto.PortmapVersion,
		nfsproto.PortmapProcGetPort, (&nfsproto.Mapping{Prog: prog, Vers: vers, Prot: prot}).Encode)
	if err != nil {
		return 0, err
	}
	var res nfsproto.GetPortRes
	if err := res.Decode(xdr.NewDecoder(body)); err != nil {
		return 0, err
	}
	return res.Port, nil
}

// Dump returns every registration of the portmapper at server.
func Dump(server string) ([]nfsproto.Mapping, error) {
	body, err := rpcOnce(server, nfsproto.PortmapProgram, nfsproto.PortmapVersion,
		nfsproto.PortmapProcDump, nil)
	if err != nil {
		return nil, err
	}
	var res nfsproto.DumpRes
	if err := res.Decode(xdr.NewDecoder(body)); err != nil {
		return nil, err
	}
	return res.Mappings, nil
}
