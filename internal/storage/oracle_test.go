package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// modelObject is an independent restatement of the storage-object
// durability spec: content at byte granularity, durability at block
// granularity (NFS V3 unstable-write semantics).
type modelObject struct {
	data    []byte
	durable map[int]bool // block index -> survives a crash
	size    int
}

func newModelObject() *modelObject {
	return &modelObject{durable: make(map[int]bool)}
}

func (m *modelObject) extend(n int) {
	if len(m.data) < n {
		m.data = append(m.data, make([]byte, n-len(m.data))...)
	}
}

func (m *modelObject) write(off int, p []byte, stable bool) {
	m.extend(off + len(p))
	copy(m.data[off:], p)
	for b := off / BlockSize; b <= (off+len(p)-1)/BlockSize; b++ {
		m.durable[b] = stable
	}
	if off+len(p) > m.size {
		m.size = off + len(p)
	}
}

func (m *modelObject) commit() {
	for b := range m.durable {
		m.durable[b] = true
	}
}

func (m *modelObject) truncate(size int) {
	if size < m.size {
		lastBlock := (size + BlockSize - 1) / BlockSize
		for b := range m.durable {
			if b >= lastBlock {
				delete(m.durable, b)
			}
		}
		// Dropped blocks and the zeroed tail of the kept partial block
		// both read as zero afterwards, even if the object regrows.
		for i := size; i < len(m.data); i++ {
			m.data[i] = 0
		}
	}
	m.size = size
	m.extend(size)
}

func (m *modelObject) crash() {
	maxEnd := 0
	for b, d := range m.durable {
		if !d {
			// Volatile block: contents lost, reads as a hole.
			m.extend((b + 1) * BlockSize)
			for i := b * BlockSize; i < (b+1)*BlockSize; i++ {
				m.data[i] = 0
			}
			delete(m.durable, b)
			continue
		}
		if end := (b + 1) * BlockSize; end > maxEnd {
			maxEnd = end
		}
	}
	if m.size > maxEnd {
		m.size = maxEnd
	}
}

// read returns the expected bytes and EOF flag for a read at off.
func (m *modelObject) read(off, n int) ([]byte, bool) {
	if off >= m.size {
		return nil, true
	}
	if off+n > m.size {
		n = m.size - off
	}
	m.extend(off + n)
	return m.data[off : off+n], off+n >= m.size
}

// TestObjectStoreOracle drives the object store with random operations
// mirrored against the model, including crash/commit semantics.
func TestObjectStoreOracle(t *testing.T) {
	for _, seed := range []int64{1, 42, 777, 90210} {
		rng := rand.New(rand.NewSource(seed))
		s := NewObjectStore()
		const objects = 4
		models := make(map[ObjectID]*modelObject)

		var trace []string
		logf := func(format string, args ...interface{}) {
			trace = append(trace, fmt.Sprintf(format, args...))
			if len(trace) > 40 {
				trace = trace[1:]
			}
		}
		fail := func(format string, args ...interface{}) {
			t.Fatalf("%s\ntrace:\n  %s", fmt.Sprintf(format, args...), strings.Join(trace, "\n  "))
		}
		_ = fail
		for step := 0; step < 4000; step++ {
			id := ObjectID(rng.Intn(objects) + 1)
			m := models[id]
			switch rng.Intn(12) {
			case 0, 1, 2, 3: // write
				off := rng.Intn(4 * BlockSize)
				n := rng.Intn(2*BlockSize) + 1
				data := make([]byte, n)
				rng.Read(data)
				stable := rng.Intn(3) == 0
				logf("step %d: write id=%d off=%d n=%d stable=%v", step, id, off, n, stable)
				if err := s.WriteAt(id, int64(off), data, stable); err != nil {
					t.Fatalf("seed %d step %d write: %v", seed, step, err)
				}
				if m == nil {
					m = newModelObject()
					models[id] = m
				}
				m.write(off, data, stable)

			case 4, 5, 6, 7: // read and compare
				if m == nil {
					if _, _, err := s.ReadAt(id, 0, make([]byte, 8)); err == nil {
						t.Fatalf("seed %d step %d: read of missing object succeeded", seed, step)
					}
					continue
				}
				off := rng.Intn(m.size + 10)
				buf := make([]byte, rng.Intn(BlockSize)+1)
				n, eof, err := s.ReadAt(id, int64(off), buf)
				if err != nil {
					t.Fatalf("seed %d step %d read: %v", seed, step, err)
				}
				want, wantEOF := m.read(off, len(buf))
				if n != len(want) {
					t.Fatalf("seed %d step %d: read %d bytes at %d, want %d (size %d)",
						seed, step, n, off, len(want), m.size)
				}
				if !bytes.Equal(buf[:n], want) {
					fail("seed %d step %d: content mismatch at %d id %d", seed, step, off, id)
				}
				if eof != wantEOF {
					t.Fatalf("seed %d step %d: eof=%v want %v", seed, step, eof, wantEOF)
				}

			case 8: // commit
				logf("step %d: commit id=%d", step, id)
				s.Commit(id)
				if m != nil {
					m.commit()
				}

			case 9: // truncate
				if m == nil {
					continue
				}
				size := rng.Intn(m.size + BlockSize)
				logf("step %d: truncate id=%d size=%d", step, id, size)
				if err := s.Truncate(id, int64(size)); err != nil {
					t.Fatal(err)
				}
				m.truncate(size)

			case 10: // remove
				logf("step %d: remove id=%d", step, id)
				s.Remove(id)
				delete(models, id)

			case 11: // crash
				logf("step %d: crash", step)
				s.Crash()
				for _, mm := range models {
					mm.crash()
				}
			}
			// Sizes must agree continuously.
			if m = models[id]; m != nil {
				if size, ok := s.Size(id); !ok || int(size) != m.size {
					t.Fatalf("seed %d step %d: size %d (ok=%v), model %d",
						seed, step, size, ok, m.size)
				}
			}
		}
	}
}
