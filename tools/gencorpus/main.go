// Command gencorpus regenerates the checked-in fuzz seed corpora under
// each package's testdata/fuzz/<Target>/ directory. The seeds cover the
// interesting wire shapes — valid frames, torn tails, corrupted
// checksums, trace trailers — so plain `go test` (which replays the seed
// corpus without -fuzz) exercises the parsers' edge paths on every CI
// run, and fuzz runs start from structured inputs instead of noise.
//
//	go run ./tools/gencorpus
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/oncrpc"
	"slice/internal/wal"
	"slice/internal/xdr"
)

func main() {
	emitNetsim()
	emitNfsproto()
	emitOncrpc()
	emitWal()
	emitRoute()
	fmt.Println("gencorpus: seed corpora written")
}

// write stores one corpus entry in Go's fuzz-corpus file encoding.
func write(pkg, target, name string, args ...any) {
	dir := filepath.Join("internal", pkg, "testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := "go test fuzz v1\n"
	for _, a := range args {
		switch v := a.(type) {
		case []byte:
			body += fmt.Sprintf("[]byte(%q)\n", v)
		case uint32:
			body += fmt.Sprintf("uint32(%d)\n", v)
		default:
			log.Fatalf("unsupported corpus arg type %T", a)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}

func emitNetsim() {
	const target = "FuzzParseDatagram"
	good, err := netsim.Build(netsim.Addr{Host: 10, Port: 2049}, netsim.Addr{Host: 200, Port: 999},
		[]byte("an NFS-sized payload for the datagram parser"))
	if err != nil {
		log.Fatal(err)
	}
	write("netsim", target, "seed_valid", good)

	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xFF
	write("netsim", target, "seed_corrupt_payload", bad)

	short := append([]byte(nil), good[:netsim.HeaderSize+1]...)
	write("netsim", target, "seed_truncated", short)

	header := append([]byte(nil), good[:netsim.HeaderSize]...)
	write("netsim", target, "seed_header_only", header)
}

func emitNfsproto() {
	const target = "FuzzParseCall"
	fh := fhandle.Handle{Volume: 1, FileID: 77, Gen: 3, Site: 1, Type: 1}
	msg := func(m nfsproto.Msg) []byte {
		e := xdr.NewEncoder(256)
		m.Encode(e)
		return append([]byte(nil), e.Bytes()...)
	}
	write("nfsproto", target, "seed_lookup",
		uint32(nfsproto.ProcLookup), msg(&nfsproto.LookupArgs{Dir: fh, Name: "deep-name-component"}))
	write("nfsproto", target, "seed_write",
		uint32(nfsproto.ProcWrite), msg(&nfsproto.WriteArgs{FH: fh, Offset: 1 << 20, Count: 4, Data: []byte("data")}))
	write("nfsproto", target, "seed_create",
		uint32(nfsproto.ProcCreate), msg(&nfsproto.CreateArgs{Dir: fh, Name: "f", Exclusive: true}))
	write("nfsproto", target, "seed_rename",
		uint32(nfsproto.ProcRename), msg(&nfsproto.RenameArgs{FromDir: fh, FromName: "a", ToDir: fh, ToName: "b"}))
	lookup := msg(&nfsproto.LookupArgs{Dir: fh, Name: "torn"})
	write("nfsproto", target, "seed_lookup_torn",
		uint32(nfsproto.ProcLookup), lookup[:len(lookup)-3])
	write("nfsproto", target, "seed_commit_empty", uint32(nfsproto.ProcCommit), []byte{})

	// MOUNT and portmapper messages: the kind selector matches
	// FuzzParseMountPortmap's kind%6 switch.
	const mp = "FuzzParseMountPortmap"
	write("nfsproto", mp, "seed_mapping",
		uint32(0), msg(&nfsproto.Mapping{Prog: nfsproto.Program, Vers: nfsproto.Version,
			Prot: nfsproto.IPProtoTCP, Port: 2049}))
	write("nfsproto", mp, "seed_getport", uint32(1), msg(&nfsproto.GetPortRes{Port: 2049}))
	write("nfsproto", mp, "seed_dump",
		uint32(2), msg(&nfsproto.DumpRes{Mappings: []nfsproto.Mapping{
			{Prog: nfsproto.Program, Vers: nfsproto.Version, Prot: nfsproto.IPProtoTCP, Port: 2049},
			{Prog: nfsproto.MountProgram, Vers: nfsproto.MountVersion, Prot: nfsproto.IPProtoTCP, Port: 2049},
		}}))
	write("nfsproto", mp, "seed_mnt_args", uint32(3), msg(&nfsproto.MountPathArgs{Path: "/export/slice"}))
	write("nfsproto", mp, "seed_mnt_res", uint32(4), msg(&nfsproto.MountMntRes{Status: nfsproto.OK, FH: fh}))
	write("nfsproto", mp, "seed_export",
		uint32(5), msg(&nfsproto.ExportRes{Entries: []nfsproto.ExportEntry{
			{Dir: "/export/slice", Groups: []string{"lab"}}}}))
	// A linked list whose more-flag promises an entry the body lacks.
	write("nfsproto", mp, "seed_dump_torn_list", uint32(2), []byte{0, 0, 0, 1})
	mnt := msg(&nfsproto.MountMntRes{Status: nfsproto.OK, FH: fh})
	write("nfsproto", mp, "seed_mnt_res_torn", uint32(4), mnt[:len(mnt)-2])
}

func emitOncrpc() {
	const target = "FuzzParse"
	call := oncrpc.EncodeCall(7, 100003, 3, 6, func(e *xdr.Encoder) { e.PutUint32(42) })
	write("oncrpc", target, "seed_call", call)
	reply := oncrpc.EncodeReply(7, oncrpc.AcceptSuccess, func(e *xdr.Encoder) { e.PutUint32(42) })
	write("oncrpc", target, "seed_reply", reply)

	// Trace trailers: a traced call and a timed reply, plus a trailer
	// whose magic is one bit off (must parse as plain payload).
	traced := oncrpc.AppendCallTrace(append([]byte(nil), call...), 0xABCDEF)
	write("oncrpc", target, "seed_call_traced", traced)
	timed := oncrpc.AppendReplyTrace(append([]byte(nil), reply...), 0xABCDEF, 12345)
	write("oncrpc", target, "seed_reply_traced", timed)
	badmagic := append([]byte(nil), traced...)
	badmagic[len(badmagic)-1] ^= 0x01
	write("oncrpc", target, "seed_trace_badmagic", badmagic)

	write("oncrpc", target, "seed_call_torn", call[:9])
	write("oncrpc", target, "seed_unsupported_vers", []byte{0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 9})
}

// emitRoute seeds FuzzTableTransition's op-code programs: byte 0 picks
// the table kind (even = modulo with logical slack, odd = consistent-hash
// ring), every later byte is an op mod 5 (0 begin-grow, 1 commit,
// 2 abort, 3 failover swap, 4 route keys). The seeds walk each structural
// transition the invariants guard: clean grow+commit, abort rollback,
// swap abandoning an open transition, stale commits after close, and
// chained grows on both kinds.
func emitRoute() {
	const target = "FuzzTableTransition"
	write("route", target, "seed_modulo_grow_commit", []byte{0, 0, 4, 1, 4})
	write("route", target, "seed_ring_grow_commit", []byte{1, 0, 4, 1, 4})
	write("route", target, "seed_abort_rolls_back", []byte{0, 0, 4, 2, 4})
	write("route", target, "seed_swap_abandons_open", []byte{0, 0, 3, 4, 1, 2})
	write("route", target, "seed_stale_ops_after_close", []byte{1, 0, 1, 1, 2, 1, 2})
	write("route", target, "seed_chained_grows", []byte{0, 0, 1, 0, 1, 0, 2, 0, 1, 4})
	write("route", target, "seed_ring_churn", []byte{1, 0, 2, 0, 1, 3, 0, 1, 3, 4, 0, 2})
}

func emitWal() {
	const target = "FuzzScan"
	store := wal.NewMemStore()
	log1, err := wal.Open(store)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := log1.Append(uint32(i+1), []byte(fmt.Sprintf("intent-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := log1.Sync(); err != nil {
		log.Fatal(err)
	}
	valid, err := store.Contents()
	if err != nil {
		log.Fatal(err)
	}
	write("wal", target, "seed_valid", valid)
	write("wal", target, "seed_torn_tail", valid[:len(valid)-5])

	crc := append([]byte(nil), valid...)
	crc[len(crc)-2] ^= 0xFF
	write("wal", target, "seed_bad_crc", crc)

	huge := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(huge[16:], 1<<31)
	write("wal", target, "seed_len_overflow", huge)
}
