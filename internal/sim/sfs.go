package sim

import (
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/route"
)

// SPECsfs disk-path calibration (see EXPERIMENTS.md): the FFS-backed
// storage nodes perform several disk operations per NFS operation once
// the cache overflows (data blocks plus indirect/inode metadata).
const (
	sfsDiskOpsReadMiss   = 3.0 // disk ops per read that misses cache
	sfsDiskOpsWriteFlush = 2.0 // disk ops per write/commit (baseline FFS)
	sfsDiskOpsCreate     = 4.0 // disk ops per create/remove (baseline FFS)
	// The small-file servers lay new data out sequentially, "batching
	// newly created files into a single stream for efficient disk
	// writes" (§4.4), so the Slice write/create paths cost fewer disk
	// operations than the baseline's general-purpose FFS volume.
	sfsDiskOpsWriteSlice  = 1.5
	sfsDiskOpsCreateSlice = 3.0
	sfsMetaMissFrac       = 0.3 // name-op fraction that misses metadata cache (scaled by overflow)
	sfsActiveFraction     = 0.3 // actively re-referenced share of the file set
	sfsDiskPositioning    = 9.0e-3
)

// SfsConfig parameterizes the SPECsfs97 experiments (Figures 5 and 6).
type SfsConfig struct {
	StorageNodes     int
	SmallFileServers int
	DirServers       int
	// Baseline selects the single FreeBSD-NFS-server configuration (one
	// CPU in front of the same disk array, CCD single volume).
	Baseline bool
	// OfferedIOPS is the open-loop offered load.
	OfferedIOPS float64
	// Duration and Warmup are in simulated seconds.
	Duration float64
	Warmup   float64
	Seed     uint64
}

func (c *SfsConfig) defaults() {
	if c.StorageNodes <= 0 {
		c.StorageNodes = 1
	}
	if c.SmallFileServers <= 0 {
		c.SmallFileServers = 2
	}
	if c.DirServers <= 0 {
		c.DirServers = 1
	}
	if c.Duration <= 0 {
		c.Duration = 40
	}
	if c.Warmup <= 0 {
		c.Warmup = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SfsResult reports delivered throughput and latency, the two axes of
// Figures 5 and 6.
type SfsResult struct {
	OfferedIOPS   float64
	DeliveredIOPS float64
	MeanLatencyMs float64
	DiskUtil      float64 // max disk-arm utilization across nodes
	DirUtil       float64
	SfUtil        float64 // max small-file server CPU utilization
	MissFactor    float64
}

// RunSfs drives the SPECsfs97-like open-loop workload against either a
// Slice ensemble model or the single-server baseline. I/O placement uses
// the real routing policies; saturation emerges from disk-arm queueing.
func RunSfs(cfg SfsConfig) SfsResult {
	cfg.defaults()
	eng := NewEngine()
	r := newRng(cfg.Seed)

	// The self-scaling file set: bigger offered loads touch more data,
	// overflowing the ensemble's small-file cache (Figure 6's jumps).
	fileset := SfsFilesetBytesPerIOPS * cfg.OfferedIOPS
	active := fileset * sfsActiveFraction
	miss := 0.0
	if active > SmallFileCacheBytes {
		miss = 1 - SmallFileCacheBytes/active
	}

	// Stations.
	disks := make([]*Station, cfg.StorageNodes)
	var storageAddrs []netsim.Addr
	for i := range disks {
		disks[i] = NewStation(eng, "disks", DisksPerNode)
		storageAddrs = append(storageAddrs, netsim.Addr{Host: uint32(10 + i), Port: 2049})
	}
	var dirSrv, baseline *Station
	var sfServers []*Station
	var sfAddrs []netsim.Addr
	if cfg.Baseline {
		baseline = NewStation(eng, "nfsd", 1)
	} else {
		dirSrv = NewStation(eng, "dir", cfg.DirServers)
		for i := 0; i < cfg.SmallFileServers; i++ {
			sfServers = append(sfServers, NewStation(eng, "smallfile", 1))
			sfAddrs = append(sfAddrs, netsim.Addr{Host: uint32(50 + i), Port: 2049})
		}
	}
	storageTable := route.NewTable(cfg.StorageNodes, storageAddrs)
	var sfTable *route.Table
	if len(sfAddrs) > 0 {
		sfTable = route.NewTable(len(sfAddrs), sfAddrs)
	}
	io := route.NewIOPolicy(sfTable, storageTable)

	storageIndex := make(map[netsim.Addr]int)
	for i, a := range storageAddrs {
		storageIndex[a] = i
	}
	sfIndex := make(map[netsim.Addr]int)
	for i, a := range sfAddrs {
		sfIndex[a] = i
	}

	diskOp := sfsDiskPositioning + SfsMeanXfer/DiskTransferBW

	// diskVisits schedules n disk operations for fh's data; sync visits
	// gate the reply, async visits only consume arm time (write-behind).
	// Write-behind is not free under overload: once a disk's backlog
	// exceeds the buffer-cache window the writer throttles and the visit
	// becomes synchronous, which is what caps delivered throughput at
	// the array's arm capacity (the disk-arm-bound saturation of §5).
	const writeThrottleDepth = 4 * DisksPerNode
	diskVisits := func(fh fhandle.Handle, n float64, sync bool, done func()) {
		count := int(n)
		if r.Float64() < n-float64(count) {
			count++
		}
		if count == 0 {
			done()
			return
		}
		pendingSync := 0
		for i := 0; i < count; i++ {
			// Small files live on one (hash-selected) node's disks in
			// Slice; the baseline spreads over its single array.
			var st *Station
			if cfg.Baseline {
				st = disks[0]
			} else {
				addr, err := io.Storage.Route(fhandle.HandleKey(fh) + uint64(i))
				if err != nil {
					continue
				}
				st = disks[storageIndex[addr]]
			}
			if sync || st.Backlog() > writeThrottleDepth {
				pendingSync++
				st.Visit(diskOp, func() {
					pendingSync--
					if pendingSync == 0 {
						done()
					}
				})
			} else {
				st.Visit(diskOp, nil)
			}
		}
		if pendingSync == 0 {
			done()
		}
	}

	var completed uint64
	var latencySum float64
	warmEnd := cfg.Warmup

	// SPECsfs load generators keep a bounded number of requests in
	// flight; when data operations stall on the disks, the generators
	// block and cannot issue further name operations either. Without
	// this window, name traffic (which rightly bypasses the disks in
	// Slice) would keep "completing" at the offered rate forever and
	// saturation would never appear.
	const maxOutstanding = 256
	outstanding := 0
	var waitq []float64 // arrival times of blocked requests
	var admit func(start float64)

	// Only completions inside the measurement window count, so delivered
	// throughput plateaus at system capacity under overload, as SPECsfs
	// reports it.
	finish := func(start float64) {
		if eng.Now() >= warmEnd && eng.Now() < cfg.Duration {
			completed++
			latencySum += eng.Now() - start
		}
		outstanding--
		if len(waitq) > 0 {
			next := waitq[0]
			waitq = waitq[1:]
			admit(next)
		}
	}

	// pickOp samples the SPECsfs mix.
	pickOp := func() SfsOpKind {
		u := r.Float64()
		acc := 0.0
		for _, m := range SfsOpMix {
			acc += m.Frac
			if u < acc {
				return m.Kind
			}
		}
		return SfsOpName
	}

	issueOp := func(start float64) {
		kind := pickOp()
		fh := fhandle.Handle{Volume: 1, FileID: uint64(r.Intn(1 << 30)), Type: 1, Gen: 1}

		if cfg.Baseline {
			baseline.Visit(SfsBaselineOpTime, func() {
				switch kind {
				case SfsOpRead:
					if r.Float64() < miss {
						diskVisits(fh, sfsDiskOpsReadMiss, true, func() { finish(start) })
						return
					}
				case SfsOpWrite:
					diskVisits(fh, sfsDiskOpsWriteFlush, false, func() {})
				case SfsOpCreate:
					diskVisits(fh, sfsDiskOpsCreate, false, func() {})
				case SfsOpName:
					if r.Float64() < miss*sfsMetaMissFrac {
						diskVisits(fh, 1, true, func() { finish(start) })
						return
					}
				}
				finish(start)
			})
			return
		}

		switch kind {
		case SfsOpName:
			dirSrv.Visit(DirOpTime, func() {
				if r.Float64() < miss*sfsMetaMissFrac {
					diskVisits(fh, 1, true, func() { finish(start) })
					return
				}
				finish(start)
			})
		case SfsOpRead:
			sfAddr, err := io.SmallFileServer(fh)
			if err != nil {
				finish(start)
				return
			}
			sfServers[sfIndex[sfAddr]].Visit(SmallFileOpTime, func() {
				if r.Float64() < miss {
					diskVisits(fh, sfsDiskOpsReadMiss, true, func() { finish(start) })
					return
				}
				finish(start)
			})
		case SfsOpWrite:
			sfAddr, err := io.SmallFileServer(fh)
			if err != nil {
				finish(start)
				return
			}
			sfServers[sfIndex[sfAddr]].Visit(SmallFileOpTime, func() {
				diskVisits(fh, sfsDiskOpsWriteSlice, false, func() {})
				finish(start)
			})
		case SfsOpCreate:
			dirSrv.Visit(DirOpTime, func() {
				diskVisits(fh, sfsDiskOpsCreateSlice, false, func() {})
				finish(start)
			})
		}
	}

	admit = func(start float64) {
		outstanding++
		issueOp(start)
	}

	// Open-loop Poisson arrivals, gated by the generator window.
	var arrive func()
	arrive = func() {
		if eng.Now() >= cfg.Duration {
			return
		}
		if outstanding < maxOutstanding {
			admit(eng.Now())
		} else {
			waitq = append(waitq, eng.Now())
		}
		eng.After(r.Exp(1/cfg.OfferedIOPS), arrive)
	}
	eng.At(0, arrive)
	eng.Run(cfg.Duration + 30) // drain for up to 30s of queued work

	res := SfsResult{
		OfferedIOPS: cfg.OfferedIOPS,
		MissFactor:  miss,
	}
	window := cfg.Duration - cfg.Warmup
	if window > 0 {
		res.DeliveredIOPS = float64(completed) / window
	}
	if completed > 0 {
		res.MeanLatencyMs = latencySum / float64(completed) * 1e3
	}
	for _, d := range disks {
		if u := d.Utilization(); u > res.DiskUtil {
			res.DiskUtil = u
		}
	}
	if dirSrv != nil {
		res.DirUtil = dirSrv.Utilization()
	}
	if baseline != nil {
		res.DirUtil = baseline.Utilization()
	}
	for _, s := range sfServers {
		if u := s.Utilization(); u > res.SfUtil {
			res.SfUtil = u
		}
	}
	return res
}
