package replica

import (
	"sync"
	"testing"

	"slice/internal/netsim"
)

// TestMarkDownUnderConcurrentLookupRace churns a member through
// MarkDown/MarkUp (the failure-detection swaps KillReplica publishes)
// while readers expand primaries and pick read targets, as the µproxy
// data path does lock-free. Under -race this proves snapshot
// discipline; the assertions prove every observed generation is
// internally consistent (members non-empty, slots match).
func TestMarkDownUnderConcurrentLookupRace(t *testing.T) {
	nodes := make([]netsim.Addr, 6)
	for i := range nodes {
		nodes[i] = netsim.Addr{Host: uint32(10 + i), Port: 2049}
	}
	m := NewMap(2, nodes)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				h = h*6364136223846793005 + 1442695040888963407
				slots := 0
				for _, grp := range m.Groups() {
					if len(grp.Members) == 0 {
						t.Error("published group with no members")
						return
					}
					if grp.Slot0 != slots {
						t.Errorf("group %d slot0 %d, want %d", grp.ID, grp.Slot0, slots)
						return
					}
					slots += len(grp.Members)
					i, j := Pick2(len(grp.Members), h)
					if i == j && len(grp.Members) > 1 {
						t.Error("pick2 returned equal slots")
						return
					}
					if g, ok := m.GroupOf(grp.Members[0]); ok && g.ID != grp.ID {
						// A swap between Groups() and GroupOf may promote a
						// different primary; a hit must still be self-consistent.
						t.Errorf("GroupOf(%v) = group %d, want %d", grp.Members[0], g.ID, grp.ID)
						return
					}
				}
			}
		}(uint64(g) + 1)
	}

	for i := 0; i < 2000; i++ {
		victim := nodes[i%len(nodes)]
		m.MarkDown(victim)
		m.MarkUp(victim)
		if i%100 == 0 {
			m.Swap(nodes)
		}
	}
	close(stop)
	wg.Wait()
}
