package udpgate

import (
	"net"
	"testing"
	"time"

	"slice/internal/netsim"
	"slice/internal/obs"
)

// startEcho binds the virtual address and echoes every payload back to
// its fabric source, standing in for the ensemble behind the gateway.
func startEcho(t *testing.T, n *netsim.Network, virtual netsim.Addr) {
	t.Helper()
	p, err := n.Bind(virtual)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	go func() {
		for {
			d, err := p.Recv(0)
			if err != nil {
				return
			}
			h, err := netsim.Parse(d)
			if err == nil {
				_ = p.SendTo(h.Src, netsim.Payload(d))
			}
			netsim.FreeBuf(d)
		}
	}()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// pingPong sends one datagram from the UDP socket to the gateway and
// waits for the echoed reply.
func pingPong(t *testing.T, c *net.UDPConn, msg string) {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatalf("no echo for %q: %v", msg, err)
	}
	if string(buf[:n]) != msg {
		t.Fatalf("echo %q, want %q", buf[:n], msg)
	}
}

// TestIdlePeerEviction pins the reclamation fix: peers used to pin one
// fabric port and one pumpOut goroutine forever; now an idle peer's port
// is closed and its goroutine drained, and a returning remote is simply
// re-admitted with a fresh synthetic address.
func TestIdlePeerEviction(t *testing.T) {
	n := netsim.New(netsim.Config{})
	virtual := netsim.Addr{Host: 100, Port: 2049}
	startEcho(t, n, virtual)
	gw, err := NewGateway("127.0.0.1:0", n, virtual)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gw.SetIdleTimeout(40 * time.Millisecond)

	dial := func() *net.UDPConn {
		addr, _ := net.ResolveUDPAddr("udp", gw.Addr().String())
		c, err := net.DialUDP("udp", nil, addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	c1, c2 := dial(), dial()
	pingPong(t, c1, "one")
	pingPong(t, c2, "two")
	if got := gw.NumPeers(); got != 2 {
		t.Fatalf("peers = %d, want 2", got)
	}

	// Go quiet; both peers must be reclaimed.
	waitFor(t, "idle eviction", func() bool { return gw.NumPeers() == 0 })
	if s := gw.Stats(); s.PeersEvicted != 2 {
		t.Fatalf("evicted = %d, want 2", s.PeersEvicted)
	}

	// A returning remote is re-admitted and still works end to end.
	pingPong(t, c1, "again")
	if got := gw.NumPeers(); got != 1 {
		t.Fatalf("peers after return = %d, want 1", got)
	}
}

// TestConnAddrOutsideSyntheticRange pins the placeholder collision fix:
// Conn.Addr() used to report 0x7F000001, exactly the first synthetic peer
// host a Gateway allocates.
func TestConnAddrOutsideSyntheticRange(t *testing.T) {
	n := netsim.New(netsim.Config{})
	virtual := netsim.Addr{Host: 100, Port: 2049}
	startEcho(t, n, virtual)
	gw, err := NewGateway("127.0.0.1:0", n, virtual)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	addr, _ := net.ResolveUDPAddr("udp", gw.Addr().String())
	c, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pingPong(t, c, "hello")

	placeholder := (&Conn{}).Addr()
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if len(gw.peers) != 1 {
		t.Fatalf("peers = %d, want 1", len(gw.peers))
	}
	for _, p := range gw.peers {
		host := p.port.Addr().Host
		if host == placeholder.Host {
			t.Fatalf("first synthetic peer host %#x collides with Conn placeholder %#x", host, placeholder.Host)
		}
		if host <= synthHostBase {
			t.Fatalf("synthetic peer host %#x outside synthetic range (base %#x)", host, synthHostBase)
		}
	}
	if placeholder.Host >= synthHostBase {
		t.Fatalf("placeholder host %#x inside synthetic range (base %#x)", placeholder.Host, synthHostBase)
	}
}

// TestDropCounterNoPeer drives the peer-allocation failure path for real:
// with every ephemeral port on the first synthetic host pre-bound,
// peerFor cannot bind, and the inbound datagram — formerly discarded
// without a trace — shows up in Stats and the attached obs registry.
func TestDropCounterNoPeer(t *testing.T) {
	n := netsim.New(netsim.Config{})
	virtual := netsim.Addr{Host: 100, Port: 2049}
	startEcho(t, n, virtual)
	// Exhaust the ephemeral range of the host the gateway will pick next
	// (the allocator is process-wide, so peek at the counter).
	next := synthHostBase + synthHosts.Load() + 1
	for p := uint16(ephemeralBase()); p != 0; p++ {
		_, _ = n.Bind(netsim.Addr{Host: next, Port: p})
	}
	gw, err := NewGateway("127.0.0.1:0", n, virtual)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	reg := obs.NewRegistry("udpgate")
	gw.SetObs(reg)

	addr, _ := net.ResolveUDPAddr("udp", gw.Addr().String())
	c, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drop counter", func() bool { return gw.Stats().DropNoPeer >= 1 })
	if got := reg.Hist("gate.drop_nopeer").Count(); got < 1 {
		t.Fatalf("obs drop count = %d, want >= 1", got)
	}
	if gw.NumPeers() != 0 {
		t.Fatalf("peers = %d, want 0", gw.NumPeers())
	}
}

// ephemeralBase mirrors netsim's unexported constant for the exhaustion
// test; a drift would only make the test bind too few ports and fail
// loudly.
func ephemeralBase() uint16 { return 40000 }

// BenchmarkConnRecv measures the client-side receive path. Before the
// pooled-buffer fix it allocated a fresh 96 KiB buffer plus a second
// header-prefixed copy per datagram; now it reads into one pooled buffer.
func BenchmarkConnRecv(b *testing.B) {
	srv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.LocalAddr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	// Teach the server the client's address.
	if err := c.SendTo(netsim.Addr{Host: 100, Port: 2049}, []byte("hi")); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256)
	_, caddr, err := srv.ReadFromUDP(buf)
	if err != nil {
		b.Fatal(err)
	}

	payload := make([]byte, 8<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.WriteToUDP(payload, caddr); err != nil {
			b.Fatal(err)
		}
		d, err := c.Recv(0)
		if err != nil {
			b.Fatal(err)
		}
		if len(d) != netsim.HeaderSize+len(payload) {
			b.Fatalf("recv %d bytes", len(d))
		}
		netsim.FreeBuf(d)
	}
}
