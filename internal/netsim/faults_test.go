package netsim

import (
	"errors"
	"testing"
	"time"
)

// bindT binds addr or fails the test.
func bindT(t *testing.T, n *Network, addr Addr) *Port {
	t.Helper()
	p, err := n.Bind(addr)
	if err != nil {
		t.Fatalf("Bind(%v): %v", addr, err)
	}
	return p
}

func sendT(t *testing.T, p *Port, dst Addr, payload string) {
	t.Helper()
	if err := p.SendTo(dst, []byte(payload)); err != nil {
		t.Fatalf("SendTo: %v", err)
	}
}

func recvPayload(t *testing.T, p *Port, timeout time.Duration) (string, error) {
	t.Helper()
	d, err := p.Recv(timeout)
	if err != nil {
		return "", err
	}
	s := string(Payload(d))
	FreeBuf(d)
	return s, nil
}

func TestCrashHostTearsDownPortsAndBlocksTraffic(t *testing.T) {
	n := New(Config{})
	a := bindT(t, n, Addr{Host: 1, Port: 100})
	b := bindT(t, n, Addr{Host: 2, Port: 200})
	b2 := bindT(t, n, Addr{Host: 2, Port: 201})

	if got := n.CrashHost(2); got != 2 {
		t.Fatalf("CrashHost tore down %d ports, want 2", got)
	}
	if !n.HostDown(2) {
		t.Fatal("HostDown(2) = false after crash")
	}

	// The crashed host's receivers wake with ErrClosed, like a dead
	// machine's sockets.
	if _, err := b.Recv(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv on crashed host = %v, want ErrClosed", err)
	}
	if _, err := b2.Recv(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv on crashed host = %v, want ErrClosed", err)
	}

	// Traffic toward the dead host vanishes (counted as faulted), and the
	// dead host cannot transmit.
	sendT(t, a, Addr{Host: 2, Port: 200}, "into the void")
	if err := b.SendTo(Addr{Host: 1, Port: 100}, []byte("from the grave")); err != nil {
		t.Fatalf("SendTo from crashed host errored: %v", err)
	}
	if _, err := recvPayload(t, a, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("live host received traffic from crashed host: err=%v", err)
	}
	if st := n.Stats(); st.Faulted < 2 {
		t.Fatalf("Faulted = %d, want >= 2", st.Faulted)
	}

	// After restart the address is free to rebind and traffic flows again.
	n.RestartHost(2)
	if n.HostDown(2) {
		t.Fatal("HostDown(2) = true after restart")
	}
	nb := bindT(t, n, Addr{Host: 2, Port: 200})
	sendT(t, a, Addr{Host: 2, Port: 200}, "welcome back")
	got, err := recvPayload(t, nb, time.Second)
	if err != nil || got != "welcome back" {
		t.Fatalf("after restart: got %q, err=%v", got, err)
	}
}

func TestIsolateHostKeepsPortsBound(t *testing.T) {
	n := New(Config{})
	a := bindT(t, n, Addr{Host: 1, Port: 100})
	b := bindT(t, n, Addr{Host: 2, Port: 200})

	n.IsolateHost(2)
	sendT(t, a, Addr{Host: 2, Port: 200}, "hello?")
	if _, err := recvPayload(t, b, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("isolated host received traffic: err=%v", err)
	}

	n.RejoinHost(2)
	sendT(t, a, Addr{Host: 2, Port: 200}, "healed")
	got, err := recvPayload(t, b, time.Second)
	if err != nil || got != "healed" {
		t.Fatalf("after rejoin: got %q, err=%v", got, err)
	}
}

func TestPartitionOneWayIsDirectional(t *testing.T) {
	n := New(Config{})
	a := bindT(t, n, Addr{Host: 1, Port: 100})
	b := bindT(t, n, Addr{Host: 2, Port: 200})

	n.PartitionOneWay(1, 2)

	// 1 → 2 is cut.
	sendT(t, a, Addr{Host: 2, Port: 200}, "dropped")
	if _, err := recvPayload(t, b, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("cut direction delivered: err=%v", err)
	}
	// 2 → 1 still flows.
	sendT(t, b, Addr{Host: 1, Port: 100}, "reverse ok")
	got, err := recvPayload(t, a, time.Second)
	if err != nil || got != "reverse ok" {
		t.Fatalf("reverse direction: got %q, err=%v", got, err)
	}

	n.Heal(1, 2)
	sendT(t, a, Addr{Host: 2, Port: 200}, "healed")
	got, err = recvPayload(t, b, time.Second)
	if err != nil || got != "healed" {
		t.Fatalf("after heal: got %q, err=%v", got, err)
	}
}

func TestLinkFaultDropAndHealAll(t *testing.T) {
	n := New(Config{Seed: 7})
	a := bindT(t, n, Addr{Host: 1, Port: 100})
	b := bindT(t, n, Addr{Host: 2, Port: 200})

	n.SetLinkFault(1, 2, LinkFault{Drop: 1.0})
	sendT(t, a, Addr{Host: 2, Port: 200}, "gone")
	if _, err := recvPayload(t, b, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("fully lossy link delivered: err=%v", err)
	}

	n.HealAll()
	sendT(t, a, Addr{Host: 2, Port: 200}, "clean")
	got, err := recvPayload(t, b, time.Second)
	if err != nil || got != "clean" {
		t.Fatalf("after HealAll: got %q, err=%v", got, err)
	}
}

func TestLinkFaultDuplicate(t *testing.T) {
	n := New(Config{Seed: 7})
	a := bindT(t, n, Addr{Host: 1, Port: 100})
	b := bindT(t, n, Addr{Host: 2, Port: 200})

	n.SetLinkFault(1, 2, LinkFault{Duplicate: 1.0})
	sendT(t, a, Addr{Host: 2, Port: 200}, "twice")
	for i := 0; i < 2; i++ {
		got, err := recvPayload(t, b, time.Second)
		if err != nil || got != "twice" {
			t.Fatalf("copy %d: got %q, err=%v", i, got, err)
		}
	}
	if _, err := recvPayload(t, b, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("more than two copies delivered: err=%v", err)
	}
}

func TestLinkFaultLatencySpike(t *testing.T) {
	n := New(Config{})
	a := bindT(t, n, Addr{Host: 1, Port: 100})
	b := bindT(t, n, Addr{Host: 2, Port: 200})

	n.SetLinkFault(1, 2, LinkFault{Latency: 50 * time.Millisecond})
	start := time.Now()
	sendT(t, a, Addr{Host: 2, Port: 200}, "slow")
	got, err := recvPayload(t, b, time.Second)
	if err != nil || got != "slow" {
		t.Fatalf("got %q, err=%v", got, err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("delivery took %v, want >= ~50ms spike", elapsed)
	}

	// Clearing with a zero fault removes the entry.
	n.SetLinkFault(1, 2, LinkFault{})
	start = time.Now()
	sendT(t, a, Addr{Host: 2, Port: 200}, "fast")
	if _, err := recvPayload(t, b, time.Second); err != nil {
		t.Fatalf("after clear: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("delivery took %v after fault cleared", elapsed)
	}
}

func TestLinkFaultReorder(t *testing.T) {
	n := New(Config{Seed: 11})
	a := bindT(t, n, Addr{Host: 1, Port: 100})
	b := bindT(t, n, Addr{Host: 2, Port: 200})

	// Hold back every datagram by a random slice of a wide window; with 20
	// sends, at least one pair should arrive out of order.
	n.SetLinkFault(1, 2, LinkFault{Reorder: 1.0, ReorderWindow: 30 * time.Millisecond})
	const count = 20
	for i := 0; i < count; i++ {
		sendT(t, a, Addr{Host: 2, Port: 200}, string(rune('a'+i)))
	}
	var order []byte
	for i := 0; i < count; i++ {
		got, err := recvPayload(t, b, time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		order = append(order, got[0])
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatalf("all %d datagrams arrived in order despite reorder fault: %q", count, order)
	}
}
