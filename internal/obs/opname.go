package obs

import "fmt"

// Wire program numbers, duplicated here as literals so obs stays a leaf
// package: the components that own the canonical constants (nfsproto,
// dirsrv, storage, coord) all import obs.
const (
	progPortmap = 100000
	progNFS     = 100003
	progMount   = 100005
	progObj     = 200101
	progDirPeer = 200201
	progCoord   = 200301
)

// Histogram names for the wire gateway's per-connection TCP serving
// layer: record sizes in each direction, per-connection totals at close,
// and connection lifetime.
const (
	HistWireRxRecord = "wire.rx_record"
	HistWireTxRecord = "wire.tx_record"
	HistWireConnRx   = "wire.conn_rx_bytes"
	HistWireConnTx   = "wire.conn_tx_bytes"
	HistWireConnNS   = "wire.conn_ns"
)

// Histogram names for the client bulk-I/O engine. bulk.window samples
// window occupancy (slots, not nanoseconds) at each slot acquisition;
// the chunk histograms record per-chunk RPC latency including retries.
const (
	HistBulkWindow     = "bulk.window"
	HistBulkReadChunk  = "bulk.read_chunk"
	HistBulkWriteChunk = "bulk.write_chunk"
)

// dirPeerProcNames names the directory-server peer protocol (§4.3).
var dirPeerProcNames = [...]string{
	1: "peer.getattr",
	2: "peer.setattr",
	3: "peer.insert",
	4: "peer.remove",
	5: "peer.touchdir",
	6: "peer.rmdircell",
	7: "peer.listdir",
	8: "peer.countdir",
	9: "peer.linkdelta",
}

// nfsProcNames names the NFS procedure subset the ensemble serves.
var nfsProcNames = [...]string{
	0:  "nfs.null",
	1:  "nfs.getattr",
	2:  "nfs.setattr",
	3:  "nfs.lookup",
	4:  "nfs.access",
	5:  "nfs.readlink",
	6:  "nfs.read",
	7:  "nfs.write",
	8:  "nfs.create",
	9:  "nfs.mkdir",
	10: "nfs.symlink",
	12: "nfs.remove",
	13: "nfs.rmdir",
	14: "nfs.rename",
	15: "nfs.link",
	16: "nfs.readdir",
	18: "nfs.fsstat",
	21: "nfs.commit",
}

// OpName maps an RPC (program, procedure) pair to the histogram name of
// its op class. Unknown pairs get a numeric fallback rather than an
// error: the exposition layer never rejects traffic it merely observes.
func OpName(prog, proc uint32) string {
	switch prog {
	case progNFS:
		if proc < uint32(len(nfsProcNames)) && nfsProcNames[proc] != "" {
			return nfsProcNames[proc]
		}
	case progMount:
		switch proc {
		case 0:
			return "mount.null"
		case 1:
			return "mount.mnt"
		case 2:
			return "mount.dump"
		case 3:
			return "mount.umnt"
		case 4:
			return "mount.umntall"
		case 5:
			return "mount.export"
		}
	case progPortmap:
		switch proc {
		case 0:
			return "portmap.null"
		case 3:
			return "portmap.getport"
		case 4:
			return "portmap.dump"
		}
	case progObj:
		switch proc {
		case 1:
			return "obj.remove"
		case 2:
			return "obj.truncate"
		case 3:
			return "obj.stat"
		}
	case progDirPeer:
		if proc < uint32(len(dirPeerProcNames)) && dirPeerProcNames[proc] != "" {
			return dirPeerProcNames[proc]
		}
	case progCoord:
		switch proc {
		case 1:
			return "coord.intend"
		case 2:
			return "coord.complete"
		case 3:
			return "coord.getmap"
		}
	case Program:
		switch proc {
		case ProcSnapshot:
			return "obs.snapshot"
		case ProcTraces:
			return "obs.traces"
		case ProcRebalanceStatus:
			return "obs.rebalance-status"
		case ProcGrow:
			return "obs.grow"
		case ProcShrink:
			return "obs.shrink"
		}
	}
	return fmt.Sprintf("prog%d.proc%d", prog, proc)
}

// ObserveRPC records one served call into the registry, named by op
// class. Its signature matches oncrpc.ServerObserver, so components
// install it directly: srv.SetObserver(reg.ObserveRPC).
func (r *Registry) ObserveRPC(prog, vers, proc uint32, handlerNS uint64) {
	r.Hist(OpName(prog, proc)).Record(handlerNS)
}
