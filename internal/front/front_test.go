package front

import (
	"testing"

	"slice/internal/netsim"
	"slice/internal/route"
)

func testMembers(n int) []route.ProxyMember {
	ms := make([]route.ProxyMember, n)
	for i := range ms {
		ms[i] = route.ProxyMember{
			ID:      uint32(i),
			Virtual: netsim.Addr{Host: 100 + uint32(i), Port: 2049},
			Host:    99 - uint32(i),
		}
	}
	return ms
}

// testFlows synthesizes flow keys as the client population would: many
// clients, each touching many handles.
func testFlows(n int) []uint64 {
	keys := make([]uint64, 0, n)
	clients := 64
	perClient := (n + clients - 1) / clients
	for c := 0; c < clients && len(keys) < n; c++ {
		addr := netsim.Addr{Host: 200 + uint32(c), Port: 5000}
		for f := 0; f < perClient && len(keys) < n; f++ {
			keys = append(keys, FlowKey(addr, uint64(f)*7919))
		}
	}
	return keys
}

// TestRingBalance pins Chord's "roughly equal share" bound: with 8
// proxies and 10k flows, no proxy owns more than 1.35x the mean share.
func TestRingBalance(t *testing.T) {
	fleet := route.NewFleet(testMembers(8))
	ring := NewRing(fleet, 0)
	flows := testFlows(10000)

	counts := make(map[uint32]int)
	for _, k := range flows {
		m, ok := ring.Owner(k)
		if !ok {
			t.Fatal("empty ring")
		}
		counts[m.ID]++
	}
	if len(counts) != 8 {
		t.Fatalf("only %d of 8 proxies own flows", len(counts))
	}
	mean := float64(len(flows)) / 8
	for id, c := range counts {
		if ratio := float64(c) / mean; ratio > 1.35 {
			t.Errorf("proxy %d owns %d flows, %.2fx the mean (limit 1.35x)", id, c, ratio)
		}
	}
}

// TestRingMinimalMovement checks consistent hashing's defining
// property: removing a member moves only the flows it owned, and
// adding it back moves only flows that now belong to it — survivors'
// flows never shuffle among themselves.
func TestRingMinimalMovement(t *testing.T) {
	members := testMembers(8)
	fleet := route.NewFleet(members)
	ring := NewRing(fleet, 0)
	flows := testFlows(10000)

	before := make([]uint32, len(flows))
	for i, k := range flows {
		m, _ := ring.Owner(k)
		before[i] = m.ID
	}

	// Leave: crash proxy 3.
	const crashed = 3
	var without []route.ProxyMember
	for _, m := range members {
		if m.ID != crashed {
			without = append(without, m)
		}
	}
	fleet.Swap(without)
	moved := 0
	for i, k := range flows {
		m, _ := ring.Owner(k)
		if m.ID != before[i] {
			if before[i] != crashed {
				t.Fatalf("flow %d moved from surviving proxy %d to %d", i, before[i], m.ID)
			}
			moved++
		} else if before[i] == crashed {
			t.Fatalf("flow %d still routed to crashed proxy %d", i, crashed)
		}
	}
	if moved == 0 {
		t.Fatal("no flows moved after a member left")
	}

	// Join: the proxy restarts with the same ID; exactly its old flows
	// come home, and nothing else budges.
	fleet.Swap(members)
	for i, k := range flows {
		m, _ := ring.Owner(k)
		if m.ID != before[i] {
			t.Fatalf("flow %d owned by %d after rejoin, was %d before the crash", i, m.ID, before[i])
		}
	}
}

// TestRingTracksFleetVersion checks the lazy rebuild: lookups against a
// swapped fleet see the new membership without any explicit refresh.
func TestRingTracksFleetVersion(t *testing.T) {
	fleet := route.NewFleet(testMembers(2))
	ring := NewRing(fleet, 0)
	key := FlowKey(netsim.Addr{Host: 300, Port: 6000}, 42)

	first, ok := ring.Owner(key)
	if !ok {
		t.Fatal("empty ring")
	}
	// Collapse to the other member alone; the flow must follow.
	other := testMembers(2)[1-first.ID]
	fleet.Swap([]route.ProxyMember{other})
	m, ok := ring.Owner(key)
	if !ok || m.ID != other.ID {
		t.Fatalf("after swap, owner = %+v ok=%v, want member %d", m, ok, other.ID)
	}

	fleet.Swap(nil)
	if _, ok := ring.Owner(key); ok {
		t.Fatal("owner resolved against an empty fleet")
	}
	if a := ring.Resolve(key); a != (netsim.Addr{}) {
		t.Fatalf("Resolve on empty fleet = %v, want zero", a)
	}
}

// TestFleetTable covers the membership table itself: versioning,
// ID-sorted snapshots, and member lookup.
func TestFleetTable(t *testing.T) {
	ms := testMembers(3)
	// Feed members out of order; snapshots come back ID-sorted.
	fleet := route.NewFleet([]route.ProxyMember{ms[2], ms[0], ms[1]})
	if v := fleet.Version(); v != 1 {
		t.Fatalf("fresh fleet version = %d, want 1", v)
	}
	got := fleet.Members()
	if len(got) != 3 || got[0].ID != 0 || got[1].ID != 1 || got[2].ID != 2 {
		t.Fatalf("members not ID-sorted: %+v", got)
	}
	if m, ok := fleet.Member(2); !ok || m.Virtual != ms[2].Virtual {
		t.Fatalf("Member(2) = %+v, %v", m, ok)
	}
	if _, ok := fleet.Member(9); ok {
		t.Fatal("Member(9) found in a 3-member fleet")
	}
	fleet.Swap(ms[:2])
	if v := fleet.Version(); v != 2 {
		t.Fatalf("version after swap = %d, want 2", v)
	}
	if fleet.Len() != 2 {
		t.Fatalf("Len = %d, want 2", fleet.Len())
	}
}
