package sim

import (
	"math"
	"testing"

	"slice/internal/route"
)

// --------------------------------------------------------------- engine

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.At(2.0, func() { order = append(order, 2) })
	eng.At(1.0, func() { order = append(order, 1) })
	eng.At(1.0, func() { order = append(order, 11) }) // FIFO among ties
	eng.At(3.0, func() { order = append(order, 3) })
	end := eng.Run(0)
	if end != 3.0 {
		t.Fatalf("end time %v", end)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.At(10, func() { fired = true })
	eng.Run(5)
	if fired {
		t.Fatal("event beyond the bound fired")
	}
	if eng.Now() != 5 {
		t.Fatalf("now = %v", eng.Now())
	}
}

func TestStationFCFSSingleServer(t *testing.T) {
	eng := NewEngine()
	st := NewStation(eng, "cpu", 1)
	var done []float64
	for i := 0; i < 3; i++ {
		st.Visit(1.0, func() { done = append(done, eng.Now()) })
	}
	eng.Run(0)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(done[i]-want[i]) > 1e-9 {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
	if u := st.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("utilization %v", u)
	}
	if st.Served != 3 {
		t.Fatalf("served %d", st.Served)
	}
}

func TestStationMultiServer(t *testing.T) {
	eng := NewEngine()
	st := NewStation(eng, "disks", 2)
	var done []float64
	for i := 0; i < 4; i++ {
		st.Visit(1.0, func() { done = append(done, eng.Now()) })
	}
	eng.Run(0)
	// Two at a time: completions at 1,1,2,2.
	if done[1] != 1.0 || done[3] != 2.0 {
		t.Fatalf("completions %v", done)
	}
}

func TestChain(t *testing.T) {
	eng := NewEngine()
	a := NewStation(eng, "a", 1)
	b := NewStation(eng, "b", 1)
	var end float64
	Chain([]Stop{{a, 1}, {b, 2}}, func() { end = eng.Now() })
	eng.Run(0)
	if end != 3 {
		t.Fatalf("chain end %v", end)
	}
}

func TestRngDeterminism(t *testing.T) {
	a, b := newRng(42), newRng(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("rng not deterministic")
		}
	}
	// Exponential mean sanity.
	r := newRng(7)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	if mean := sum / n; mean < 1.9 || mean > 2.1 {
		t.Fatalf("Exp mean %v, want ≈2", mean)
	}
}

// --------------------------------------------------------------- Table 2

func TestBulkSingleClientMatchesPaperShape(t *testing.T) {
	read := RunBulk(BulkConfig{Clients: 1, Write: false})
	write := RunBulk(BulkConfig{Clients: 1, Write: true})
	// Paper: read 62.5 MB/s, write 38.9 MB/s (client-stack-bound).
	if read.PerClientMBps < 55 || read.PerClientMBps > 68 {
		t.Fatalf("single-client read %.1f MB/s, want ≈62.5", read.PerClientMBps)
	}
	if write.PerClientMBps < 34 || write.PerClientMBps > 43 {
		t.Fatalf("single-client write %.1f MB/s, want ≈38.9", write.PerClientMBps)
	}
	if read.PerClientMBps <= write.PerClientMBps {
		t.Fatal("reads should outrun writes on the client stack")
	}
}

func TestBulkSaturationScalesWithNodes(t *testing.T) {
	sat := func(nodes int) float64 {
		return RunBulk(BulkConfig{StorageNodes: nodes, Clients: 16, Write: false, Tuned: true}).AggregateMBps
	}
	s8, s4 := sat(8), sat(4)
	// Paper: 437 MB/s from 8 nodes sourcing 55 MB/s each.
	if s8 < 390 || s8 > 450 {
		t.Fatalf("8-node read saturation %.0f MB/s, want ≈437", s8)
	}
	if ratio := s8 / s4; ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("8 vs 4 nodes ratio %.2f, want ≈2 (bandwidth scales with nodes)", ratio)
	}
	w8 := RunBulk(BulkConfig{StorageNodes: 8, Clients: 16, Write: true, Tuned: true}).AggregateMBps
	if w8 < 430 || w8 > 490 {
		t.Fatalf("8-node write saturation %.0f MB/s, want ≈479", w8)
	}
}

func TestBulkMirroringCosts(t *testing.T) {
	read := RunBulk(BulkConfig{Clients: 1, Write: false})
	mread := RunBulk(BulkConfig{Clients: 1, Write: false, Mirrored: true})
	if mread.PerClientMBps >= read.PerClientMBps {
		t.Fatal("mirrored read should be slower (unused prefetch)")
	}
	write := RunBulk(BulkConfig{Clients: 1, Write: true})
	mwrite := RunBulk(BulkConfig{Clients: 1, Write: true, Mirrored: true})
	if mwrite.PerClientMBps >= write.PerClientMBps {
		t.Fatal("mirrored write should be slower (two replicas)")
	}
	// Saturation: mirrored writes consume double sink bandwidth.
	w := RunBulk(BulkConfig{StorageNodes: 8, Clients: 16, Write: true, Tuned: true})
	mw := RunBulk(BulkConfig{StorageNodes: 8, Clients: 16, Write: true, Mirrored: true, Tuned: true})
	if ratio := w.AggregateMBps / mw.AggregateMBps; ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("mirrored write halves capacity: ratio %.2f, want ≈2", ratio)
	}
	// Mirrored read saturation: prefetch waste halves source bandwidth.
	r := RunBulk(BulkConfig{StorageNodes: 8, Clients: 16, Tuned: true})
	mr := RunBulk(BulkConfig{StorageNodes: 8, Clients: 16, Mirrored: true, Tuned: true})
	if ratio := r.AggregateMBps / mr.AggregateMBps; ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("mirrored read saturation ratio %.2f, want ≈2", ratio)
	}
}

// --------------------------------------------------------------- Figure 3

func TestUntarMFSWinsAtLightLoad(t *testing.T) {
	mfs := RunUntar(UntarConfig{Baseline: true, Processes: 1})
	slice1 := RunUntar(UntarConfig{DirServers: 1, Processes: 1, Kind: route.MkdirSwitching, P: 1})
	if mfs.MeanLatency >= slice1.MeanLatency {
		t.Fatalf("MFS %.1fs vs Slice-1 %.1fs: baseline should win at light load (no journaling)",
			mfs.MeanLatency, slice1.MeanLatency)
	}
}

func TestUntarSliceScalesWithServers(t *testing.T) {
	procs := 16
	lat := func(n int) float64 {
		return RunUntar(UntarConfig{
			DirServers: n, Processes: procs,
			Kind: route.MkdirSwitching, P: 1.0 / float64(n),
		}).MeanLatency
	}
	l1, l2, l4 := lat(1), lat(2), lat(4)
	if !(l4 < l2 && l2 < l1) {
		t.Fatalf("latency not improving with servers: 1→%.1f 2→%.1f 4→%.1f", l1, l2, l4)
	}
	// Under heavy load the MFS baseline saturates and Slice-4 wins.
	mfs := RunUntar(UntarConfig{Baseline: true, Processes: procs})
	if l4 >= mfs.MeanLatency {
		t.Fatalf("Slice-4 %.1fs vs MFS %.1fs at %d processes: request routing should win",
			l4, mfs.MeanLatency, procs)
	}
}

func TestUntarPoliciesPerformIdentically(t *testing.T) {
	// §5: "in this test, in which the name space spans many directories,
	// mkdir switching and name hashing perform identically."
	sw := RunUntar(UntarConfig{DirServers: 4, Processes: 8, Kind: route.MkdirSwitching, P: 0.25})
	nh := RunUntar(UntarConfig{DirServers: 4, Processes: 8, Kind: route.NameHashing})
	diff := math.Abs(sw.MeanLatency-nh.MeanLatency) / sw.MeanLatency
	if diff > 0.15 {
		t.Fatalf("policies differ by %.0f%% (switching %.1fs, hashing %.1fs), want ≈identical",
			diff*100, sw.MeanLatency, nh.MeanLatency)
	}
}

func TestUntarServerSaturationRate(t *testing.T) {
	// A saturated directory server serves ≈6000 ops/s (§5).
	res := RunUntar(UntarConfig{DirServers: 1, Processes: 8, Kind: route.MkdirSwitching})
	if res.OpsPerSec < 5200 || res.OpsPerSec > 6800 {
		t.Fatalf("saturated throughput %.0f ops/s, want ≈6000", res.OpsPerSec)
	}
	if res.ServerUtil[0] < 0.95 {
		t.Fatalf("server utilization %.2f under 8 processes, want ≈1", res.ServerUtil[0])
	}
}

// --------------------------------------------------------------- Figure 4

func TestAffinityTradeoff(t *testing.T) {
	lat := func(affinity float64, procs int) float64 {
		return RunUntar(UntarConfig{
			DirServers: 4, Processes: procs, ClientNodes: 4,
			Kind: route.MkdirSwitching, P: 1 - affinity,
		}).MeanLatency
	}
	// Light load: affinity barely matters (a single server keeps up).
	l0, l100 := lat(0, 1), lat(1.0, 1)
	if diff := math.Abs(l0-l100) / l100; diff > 0.25 {
		t.Fatalf("1 process: affinity swings latency by %.0f%%", diff*100)
	}
	// Heavy load: full affinity collapses everything onto one server.
	h80, h100 := lat(0.8, 16), lat(1.0, 16)
	if h100 <= h80*1.5 {
		t.Fatalf("16 processes: affinity 100%% (%.1fs) should degrade well past 80%% (%.1fs)",
			h100, h80)
	}
	// Moderate affinity beats zero affinity slightly (fewer cross-site
	// operations), or at least does not lose.
	z, m := lat(0, 16), lat(0.6, 16)
	if m > z*1.10 {
		t.Fatalf("16 processes: affinity 60%% (%.1fs) much worse than 0%% (%.1fs)", m, z)
	}
}

func TestAffinityImbalanceVisibleInUtilization(t *testing.T) {
	res := RunUntar(UntarConfig{
		DirServers: 4, Processes: 16, ClientNodes: 4,
		Kind: route.MkdirSwitching, P: 0, // affinity 1.0
	})
	// Everything descends from the root's site: exactly one hot server.
	hot, cold := 0.0, 1.0
	for _, u := range res.ServerUtil {
		if u > hot {
			hot = u
		}
		if u < cold {
			cold = u
		}
	}
	if hot < 0.9 || cold > 0.1 {
		t.Fatalf("affinity 1.0 utilizations %v: expected one hot server", res.ServerUtil)
	}
}

// ------------------------------------------------------------- Figures 5/6

func TestSfsBaselineSaturatesNear850(t *testing.T) {
	res := RunSfs(SfsConfig{Baseline: true, StorageNodes: 1, OfferedIOPS: 3000})
	if res.DeliveredIOPS < 700 || res.DeliveredIOPS > 1000 {
		t.Fatalf("baseline saturation %.0f IOPS, want ≈850", res.DeliveredIOPS)
	}
}

func TestSfsSliceScalesWithStorageNodes(t *testing.T) {
	sat := func(nodes int) float64 {
		return RunSfs(SfsConfig{StorageNodes: nodes, OfferedIOPS: 9000, Seed: 3}).DeliveredIOPS
	}
	s1, s8 := sat(1), sat(8)
	if s8 < 5200 || s8 > 8000 {
		t.Fatalf("Slice-8 saturation %.0f IOPS, want ≈6600", s8)
	}
	if ratio := s8 / s1; ratio < 4 || ratio > 10 {
		t.Fatalf("Slice-8/Slice-1 ratio %.1f, want roughly linear in storage nodes", ratio)
	}
	// Slice-1 beats the 850-IOPS baseline (faster directory operations).
	base := RunSfs(SfsConfig{Baseline: true, StorageNodes: 1, OfferedIOPS: 9000}).DeliveredIOPS
	if s1 <= base {
		t.Fatalf("Slice-1 (%.0f) should beat the NFS baseline (%.0f)", s1, base)
	}
}

func TestSfsDeliveredTracksOfferedBelowSaturation(t *testing.T) {
	res := RunSfs(SfsConfig{StorageNodes: 8, OfferedIOPS: 1000})
	if math.Abs(res.DeliveredIOPS-1000)/1000 > 0.1 {
		t.Fatalf("delivered %.0f at offered 1000: should track below saturation", res.DeliveredIOPS)
	}
}

func TestSfsLatencyRisesWithLoadAndCacheOverflow(t *testing.T) {
	low := RunSfs(SfsConfig{StorageNodes: 8, OfferedIOPS: 300})
	mid := RunSfs(SfsConfig{StorageNodes: 8, OfferedIOPS: 3000})
	high := RunSfs(SfsConfig{StorageNodes: 8, OfferedIOPS: 6200})
	if !(low.MeanLatencyMs < mid.MeanLatencyMs && mid.MeanLatencyMs < high.MeanLatencyMs) {
		t.Fatalf("latency not monotone: %.2f %.2f %.2f ms",
			low.MeanLatencyMs, mid.MeanLatencyMs, high.MeanLatencyMs)
	}
	if low.MissFactor != 0 && low.OfferedIOPS < 200 {
		t.Fatalf("cache overflowed at tiny load: miss=%.2f", low.MissFactor)
	}
	if high.MissFactor < 0.5 {
		t.Fatalf("cache not overflowed at high load: miss=%.2f", high.MissFactor)
	}
}

func TestSfsDisksAreTheBottleneck(t *testing.T) {
	res := RunSfs(SfsConfig{StorageNodes: 2, OfferedIOPS: 5000})
	if res.DiskUtil < 0.9 {
		t.Fatalf("disk utilization %.2f at overload: arms should bind (§5)", res.DiskUtil)
	}
	if res.DirUtil > 0.95 {
		t.Fatalf("directory server saturated (%.2f) before the disks", res.DirUtil)
	}
}

// TestUntarScaleInsensitivity: the scaled-down untar simulation must give
// (rescaled) results close to a larger-scale run — the justification for
// simulating 5% of the tree in the figures.
func TestUntarScaleInsensitivity(t *testing.T) {
	cfg := UntarConfig{DirServers: 2, Processes: 8, Kind: route.MkdirSwitching, P: 0.5}
	small := cfg
	small.Scale = 0.03
	large := cfg
	large.Scale = 0.12
	a := RunUntar(small).MeanLatency
	b := RunUntar(large).MeanLatency
	if diff := math.Abs(a-b) / b; diff > 0.10 {
		t.Fatalf("scale sensitivity %.1f%%: %.1fs at 0.03 vs %.1fs at 0.12", diff*100, a, b)
	}
}

// TestBulkWindowEffect: deepening the read-ahead window cannot reduce
// throughput, and a window of 1 leaves the pipeline underutilized.
func TestBulkWindowEffect(t *testing.T) {
	w1 := RunBulk(BulkConfig{Clients: 1, Window: 1}).PerClientMBps
	w4 := RunBulk(BulkConfig{Clients: 1, Window: 4}).PerClientMBps
	if w4 < w1 {
		t.Fatalf("deeper window lost bandwidth: %.1f vs %.1f", w4, w1)
	}
	if w1 > w4*0.95 {
		t.Fatalf("window=1 should leave the pipeline idle: %.1f vs %.1f", w1, w4)
	}
}
