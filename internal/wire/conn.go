package wire

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"time"

	"slice/internal/netsim"
)

// connPlaceholderHost is the fabric host a client-side Conn reports in
// Addr(). Like udpgate's placeholder it sits below every synthetic peer
// range, so it can never collide with a gateway-allocated host.
const connPlaceholderHost = 0x7E000002

// Conn is a client-side oncrpc.Conn over a record-marked TCP stream,
// usable with client.NewWithConn. The TCP connection itself is the peer
// check (only the dialed gateway can write to it), so received records
// are stamped with the last-sent destination address — the fabric-level
// reflection the RPC client's peer-address check expects.
type Conn struct {
	tcp net.Conn
	br  *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	mu   sync.Mutex
	peer netsim.Addr
}

// Dial connects to a wire gateway's TCP address.
func Dial(server string) (*Conn, error) {
	tcp, err := net.Dial("tcp", server)
	if err != nil {
		return nil, err
	}
	return NewConn(tcp), nil
}

// NewConn wraps an established stream in the record-marked framing.
func NewConn(tcp net.Conn) *Conn {
	return &Conn{
		tcp: tcp,
		br:  bufio.NewReaderSize(tcp, 64<<10),
		bw:  bufio.NewWriterSize(tcp, 64<<10),
	}
}

// SendTo implements oncrpc.Conn. The destination fabric address is
// implied by the dialed gateway (it always targets the virtual server),
// so dst is only recorded for reply stamping.
func (c *Conn) SendTo(dst netsim.Addr, payload []byte) error {
	c.mu.Lock()
	c.peer = dst
	c.mu.Unlock()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeRecord(c.bw, payload, DefaultFragSize); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv implements oncrpc.Conn: it reads one reassembled record into a
// pooled header-prefixed buffer and stamps the synthetic source address.
// A timeout that fires mid-record leaves the stream unsynchronizable, so
// the connection is closed; the RPC layer treats it like a dead port.
func (c *Conn) Recv(timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		if err := c.tcp.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	} else {
		if err := c.tcp.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	d, err := readRecord(c.br, netsim.HeaderSize)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() && c.br.Buffered() > 0 {
			c.tcp.Close()
		}
		return nil, err
	}
	c.mu.Lock()
	src := c.peer
	c.mu.Unlock()
	binary.BigEndian.PutUint32(d[netsim.OffSrcHost:], src.Host)
	binary.BigEndian.PutUint16(d[netsim.OffSrcPort:], src.Port)
	return d, nil
}

// Addr implements oncrpc.Conn with a placeholder fabric address outside
// every gateway's synthetic peer range.
func (c *Conn) Addr() netsim.Addr { return netsim.Addr{Host: connPlaceholderHost, Port: 1} }

// Close implements oncrpc.Conn.
func (c *Conn) Close() { _ = c.tcp.Close() }
