package chaos

import (
	"testing"
	"time"

	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/oncrpc"
	"slice/internal/wire"
)

// TestStorageRestartMidTCPUntar kills and reboots a storage node while a
// real-TCP client is mid-untar and a second TCP connection is streaming
// a striped file through the same wire gateway. The RPC layer's
// retransmissions ride the fault (the TCP connections themselves never
// break — only fabric datagrams die), and the volume must end fsck-clean
// with the streamed bytes intact.
func TestStorageRestartMidTCPUntar(t *testing.T) {
	const stripe = 128 * 1024
	e := newEnsemble(t, func(cfg *ensemble.Config) {
		cfg.StorageNodes = 3
		cfg.StripeUnit = stripe
		cfg.TCPListen = "127.0.0.1:0"
	})
	ch := e.Chaos()
	rpc := oncrpc.ClientConfig{Timeout: 25 * time.Millisecond, Retries: 11}

	dial := func() *client.Client {
		conn, err := wire.Dial(e.Gateways[0].Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := client.NewWithConn(conn, client.Config{
			Server: e.Virtual, StripeUnit: stripe, RPC: rpc,
		})
		t.Cleanup(c.Close)
		if err := c.Mount(); err != nil {
			t.Fatalf("mount over TCP: %v", err)
		}
		return c
	}
	untarrer, writer := dial(), dial()

	// Second connection streams a striped file for the whole run, so
	// bulk chunks are in flight when the node dies.
	data := make([]byte, 1024*1024)
	for i := range data {
		data[i] = byte(i*2654435761 + i>>9)
	}
	fh, _, err := writer.Create(writer.Root(), "wire-chaos-bulk", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	streamed := make(chan error, 1)
	go func() {
		for off := 0; off < len(data); off += stripe {
			end := off + stripe
			if end > len(data) {
				end = len(data)
			}
			err := Retry(10*time.Second, func() error {
				_, err := writer.Write(fh, uint64(off), data[off:end], false)
				return err
			})
			if err != nil {
				streamed <- err
				return
			}
		}
		streamed <- Retry(10*time.Second, func() error {
			_, err := writer.Commit(fh)
			return err
		})
	}()

	// Mid-untar, reboot storage node 1: in-flight datagrams to and from
	// it are lost; the workload must not notice beyond latency.
	restarted := false
	ents, err := Untar(untarrer, untarrer.Root(), UntarConfig{
		Dirs: 5, Files: 15, OpBudget: 10 * time.Second,
		OnEntry: func(n int) {
			if n == 7 && !restarted {
				restarted = true
				if _, err := ch.RestartStorage(1); err != nil {
					t.Errorf("storage restart: %v", err)
				}
			}
		},
	})
	if err != nil {
		t.Fatalf("untar over TCP under storage restart: %v", err)
	}
	if len(ents) != 20 {
		t.Fatalf("untar acked %d entries, want 20", len(ents))
	}
	if !restarted {
		t.Fatal("fault never fired")
	}
	if err := <-streamed; err != nil {
		t.Fatalf("bulk stream under storage restart: %v", err)
	}

	VerifyBytes(t, e, writer, fh, data)
	FsckClean(t, e)
}
