// Package rebalance drives background block migration for a topology
// transition (ISSUE: elastic ensemble; paper §3.3.1's reconfiguration
// step made online). The driver owns one transition end to end:
//
//  1. Begin the transition on the storage table. From this instant every
//     foreground write fans out to BOTH bindings (route.IOPolicy
//     double-writes while Table.Transitioning()), so the copier only has
//     to move bytes written before Begin — it never chases the workload.
//  2. Log a migrate intention with the coordinator and keep it fresh by
//     chaining Complete(old)+Intend(new) every heartbeat. If the driver
//     dies, the intention goes stale, the coordinator's probe fires
//     finish(OpMigrate), and the epoch-guarded Table.Abort rolls the
//     transition back — the old binding saw every double-written byte,
//     so a crash mid-migration loses nothing and fsck stays clean.
//  3. Copy-and-verify rounds: each round re-enumerates the source nodes
//     and, for every stripe whose placement moves, compares the source
//     chunk against every destination replica, repairing mismatches
//     with the source bytes. The first round does the bulk copy (empty
//     destinations mismatch everywhere); later rounds catch chunks a
//     foreground write raced. Two consecutive clean rounds prove
//     convergence: a clean round writes nothing, so any divergence left
//     over from earlier rounds would still be visible to the next full
//     scan — only in-flight double-writes (which land on both sides)
//     can escape it.
//  4. preCommit hook (the ensemble swaps the replica map here), then the
//     epoch-guarded Commit flips reads and new writes to the wider
//     binding in one table generation.
//
// Old copies of moved stripes stay behind on their former owners:
// placement never resolves to them again and the namespace fsck does
// not see storage objects, so they are garbage, not corruption;
// reclaiming them needs sub-object hole punching the object store does
// not expose yet (DESIGN.md §13).
package rebalance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"slice/internal/coord"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/replica"
	"slice/internal/route"
	"slice/internal/xdr"
)

// smallFileIDByte tags the small-file servers' backing objects; they
// live outside the striped space and never migrate with it.
const smallFileIDByte = 0x5F

// Config wires a Driver into the ensemble.
type Config struct {
	// Net and Host bind the driver's client ports.
	Net  *netsim.Network
	Host uint32
	// IO carries the storage table being transitioned, the stripe unit,
	// and the current replica map.
	IO *route.IOPolicy
	// Coord is the coordinator's address; zero runs without an
	// intention log (tests only — a crash then leaves the transition
	// open until something aborts it).
	Coord netsim.Addr
	// CapKey derives the peer-program bearer token.
	CapKey []byte
	// Heartbeat is the intention refresh period; it must stay below the
	// coordinator's ProbeAfter or the probe will abort a live
	// migration. Default 500ms.
	Heartbeat time.Duration
	// Settle is the pause before the confirming verify round, letting
	// in-flight datagrams land. Default 20ms.
	Settle time.Duration
	// RetryBudget bounds how long one peer operation is retried before
	// the migration gives up (rides out storage-node restarts).
	// Default 10s.
	RetryBudget time.Duration
	// MaxRounds caps copy-and-verify rounds. Default 64.
	MaxRounds int
	// Obs records copy/verify chunk latency histograms (nil: none).
	Obs *obs.Registry
}

// Status is a snapshot of migration progress, JSON-encodable for the
// stats plane (slicectl rebalance-status).
type Status struct {
	State          string `json:"state"` // idle|running|done|failed
	Epoch          uint64 `json:"epoch"`
	Round          int    `json:"round"`
	Objects        int    `json:"objects"`
	ChunksChecked  uint64 `json:"chunks_checked"`
	ChunksRepaired uint64 `json:"chunks_repaired"`
	BytesMoved     uint64 `json:"bytes_moved"`
	Ghosts         uint64 `json:"ghosts_removed"`
	StartedNS      int64  `json:"started_ns"`
	DoneNS         int64  `json:"done_ns"`
	Err            string `json:"err,omitempty"`
}

// Driver migrates blocks for one transition at a time.
type Driver struct {
	cfg   Config
	token uint64

	mu      sync.Mutex
	clients map[netsim.Addr]*oncrpc.Client
	status  Status

	copyHist   *obs.Histogram
	verifyHist *obs.Histogram
}

// New builds a driver. The zero-duration config fields get defaults.
func New(cfg Config) *Driver {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 20 * time.Millisecond
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 10 * time.Second
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 64
	}
	d := &Driver{
		cfg:     cfg,
		token:   replica.PeerToken(cfg.CapKey),
		clients: make(map[netsim.Addr]*oncrpc.Client),
	}
	d.status.State = "idle"
	if cfg.Obs != nil {
		d.copyHist = cfg.Obs.Hist("rebalance.copy_chunk")
		d.verifyHist = cfg.Obs.Hist("rebalance.verify_chunk")
	}
	return d
}

// Status returns a progress snapshot.
func (d *Driver) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.status
}

// StatusJSON renders the snapshot for the stats plane.
func (d *Driver) StatusJSON() []byte {
	b, _ := json.Marshal(d.Status())
	return b
}

// Close releases the driver's RPC clients.
func (d *Driver) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.clients {
		c.Close()
	}
	d.clients = make(map[netsim.Addr]*oncrpc.Client)
}

func (d *Driver) setStatus(f func(*Status)) {
	d.mu.Lock()
	f(&d.status)
	d.mu.Unlock()
}

// Run drives one transition: Begin(next, nextReps) on the storage
// table, migrate, call preCommit (may be nil) with the copy complete
// and the transition still open, then Commit. On any failure the
// transition is aborted and the old binding stays authoritative.
func (d *Driver) Run(next []netsim.Addr, nextReps *replica.Map, preCommit func() error) error {
	table := d.cfg.IO.Storage
	epoch, err := table.Begin(next, nextReps)
	if err != nil {
		return err
	}
	d.setStatus(func(s *Status) {
		*s = Status{State: "running", Epoch: epoch, StartedNS: time.Now().UnixNano()}
	})
	stopHB := d.startHeartbeat(epoch)
	fail := func(err error) error {
		table.Abort(epoch)
		stopHB()
		d.setStatus(func(s *Status) {
			s.State = "failed"
			s.Err = err.Error()
			s.DoneNS = time.Now().UnixNano()
		})
		return err
	}

	clean := 0
	for round := 1; ; round++ {
		if round > d.cfg.MaxRounds {
			return fail(fmt.Errorf("rebalance: no convergence after %d rounds", d.cfg.MaxRounds))
		}
		d.setStatus(func(s *Status) { s.Round = round })
		if !table.Transitioning() || table.PendingEpoch() != epoch {
			return fail(fmt.Errorf("rebalance: transition %d aborted externally", epoch))
		}
		changed, err := d.round(table, round > 1)
		if err != nil {
			return fail(err)
		}
		if changed == 0 {
			clean++
			if clean >= 2 {
				break
			}
			time.Sleep(d.cfg.Settle) // let in-flight datagrams land, then confirm
		} else {
			clean = 0
		}
	}

	if preCommit != nil {
		if err := preCommit(); err != nil {
			return fail(fmt.Errorf("rebalance: preCommit: %w", err))
		}
	}
	if !table.Commit(epoch) {
		return fail(fmt.Errorf("rebalance: transition %d lost before commit (probe abort or failover swap)", epoch))
	}
	stopHB()
	d.setStatus(func(s *Status) {
		s.State = "done"
		s.DoneNS = time.Now().UnixNano()
	})
	return nil
}

// chunkMove is one stripe-sized copy obligation: src holds the bytes
// under the current binding, dsts must hold them under the pending one.
type chunkMove struct {
	id   uint64
	off  uint64
	n    uint32
	src  netsim.Addr
	dsts []netsim.Addr
}

// round re-enumerates the current binding's nodes and repairs every
// moving chunk whose destination bytes differ from the source. It
// returns how many repairs (writes, truncates, removes) it made —
// zero means the bindings agree everywhere the placement moves.
func (d *Driver) round(table *route.Table, verifyOnly bool) (int, error) {
	su := d.cfg.IO.StripeUnit
	if su == 0 {
		su = route.DefaultStripeUnit
	}

	srcNodes := distinct(table.Physical())
	sizes := make(map[uint64]uint64) // object -> max size across src nodes
	for _, a := range srcNodes {
		objs, err := d.listObjects(a)
		if err != nil {
			return 0, err
		}
		for id, size := range objs {
			if cur, ok := sizes[id]; !ok || cur < size {
				sizes[id] = size
			}
		}
	}
	d.setStatus(func(s *Status) { s.Objects = len(sizes) })

	// Destination listings, for size sync and ghost scrubbing. Every
	// node of the pending binding is listed — an incoming node may hold
	// stale bytes (earlier aborted migration) even when no move of this
	// round targets it.
	dstSizes := make(map[netsim.Addr]map[uint64]uint64)
	moves := make(map[netsim.Addr][]chunkMove) // keyed by src node
	reps := table.PendingReplicas()
	if reps == nil {
		reps = d.cfg.IO.Replicas
	}
	pend := table.PendingPhysical()
	if pend == nil {
		return 0, fmt.Errorf("rebalance: transition closed under the round")
	}
	for _, p := range pend {
		for _, a := range d.expand(p, reps) {
			if dstSizes[a] != nil {
				continue
			}
			objs, err := d.listObjects(a)
			if err != nil {
				return 0, err
			}
			dstSizes[a] = objs
		}
	}
	for id, size := range sizes {
		if id>>56 == smallFileIDByte {
			continue // small-file backing object: not in the striped space
		}
		for stripe := uint64(0); stripe == 0 || stripe*su < size; stripe++ {
			key := id + stripe
			src, err := table.Route(key)
			if err != nil {
				return 0, err
			}
			dst, err := table.PendingLookup(table.PendingSite(key))
			if err != nil {
				return 0, fmt.Errorf("rebalance: pending lookup: %w", err)
			}
			var dsts []netsim.Addr
			for _, a := range d.expand(dst, reps) {
				if a != src && !d.memberOfCurrent(src, a) {
					dsts = append(dsts, a)
				}
			}
			if len(dsts) == 0 {
				continue
			}
			// PeerProcRead caps one transfer at PeerChunk bytes, so a
			// stripe wider than that becomes several moves.
			start := stripe * su
			end := start + su
			if end > size {
				end = size
			}
			if start >= end {
				// Size-sync only (zero-length object or hole at the tail).
				moves[src] = append(moves[src], chunkMove{id: id, off: start, src: src, dsts: dsts})
				continue
			}
			for off := start; off < end; off += replica.PeerChunk {
				n := uint32(replica.PeerChunk)
				if end-off < uint64(n) {
					n = uint32(end - off)
				}
				moves[src] = append(moves[src], chunkMove{id: id, off: off, n: n, src: src, dsts: dsts})
			}
		}
	}

	// Drain each source node concurrently; chunks of one node go in
	// order through one client.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		changed  int
		firstErr error
	)
	truncated := make(map[netsim.Addr]map[uint64]bool) // size-synced this round
	for src, list := range moves {
		wg.Add(1)
		go func(src netsim.Addr, list []chunkMove) {
			defer wg.Done()
			for _, m := range list {
				c, err := d.repairChunk(m, sizes[m.id], dstSizes, truncated, &mu, verifyOnly)
				mu.Lock()
				changed += c
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(src, list)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}

	// Ghost scrub: a destination object whose source vanished (the file
	// was removed mid-copy and the remove raced our writes).
	for dst, objs := range dstSizes {
		for id := range objs {
			if _, live := sizes[id]; live || id>>56 == smallFileIDByte {
				continue
			}
			if !d.everMovesTo(table, sizes, id, dst) {
				continue // not ours: the node owned it before the transition
			}
			if err := d.peerRemove(dst, id); err != nil {
				return 0, err
			}
			changed++
			d.setStatus(func(s *Status) { s.Ghosts++ })
		}
	}
	return changed, nil
}

// everMovesTo reports whether object id has any stripe the transition
// places on dst. Sizes no longer list the object (it was removed), so
// scan a bounded stripe range — ghosts are creatures of the copy
// window, which only ever touched stripes below the listed size.
func (d *Driver) everMovesTo(table *route.Table, sizes map[uint64]uint64, id uint64, dst netsim.Addr) bool {
	reps := table.PendingReplicas()
	if reps == nil {
		reps = d.cfg.IO.Replicas
	}
	const scanStripes = 1024
	for stripe := uint64(0); stripe < scanStripes; stripe++ {
		a, err := table.PendingLookup(table.PendingSite(id + stripe))
		if err != nil {
			return false
		}
		for _, m := range d.expand(a, reps) {
			if m == dst {
				return true
			}
		}
	}
	return false
}

// repairChunk size-syncs the destinations of one chunk and rewrites any
// destination whose bytes differ from the source. Returns how many
// repairs it made.
func (d *Driver) repairChunk(m chunkMove, size uint64, dstSizes map[netsim.Addr]map[uint64]uint64,
	truncated map[netsim.Addr]map[uint64]bool, mu *sync.Mutex, verify bool) (int, error) {
	changed := 0
	var srcData []byte
	var srcOK bool
	if m.n > 0 {
		data, ok, err := d.peerRead(m.src, m.id, m.off, m.n)
		if err != nil {
			return changed, err
		}
		srcData, srcOK = data, ok
		if !ok {
			// Object vanished from the source: the remove fans out to the
			// destinations too (dataSites includes pending nodes); the
			// ghost scrub catches stragglers.
			return changed, nil
		}
	}
	hist := d.copyHist
	if verify {
		hist = d.verifyHist
	}
	for _, dst := range m.dsts {
		// Size-sync once per (object, destination) per round.
		mu.Lock()
		if truncated[dst] == nil {
			truncated[dst] = make(map[uint64]bool)
		}
		dsz, present := dstSizes[dst][m.id]
		needTrunc := !truncated[dst][m.id] && (!present || dsz != size)
		truncated[dst][m.id] = true
		mu.Unlock()
		if needTrunc {
			if err := d.peerTruncate(dst, m.id, size); err != nil {
				return changed, err
			}
			changed++
		}
		if m.n == 0 || !srcOK {
			continue
		}
		t0 := time.Now()
		dstData, ok, err := d.peerRead(dst, m.id, m.off, m.n)
		if err != nil {
			return changed, err
		}
		if ok && bytes.Equal(srcData, dstData) {
			d.setStatus(func(s *Status) { s.ChunksChecked++ })
			if hist != nil {
				hist.RecordSince(t0)
			}
			continue
		}
		if err := d.peerWrite(dst, m.id, m.off, srcData); err != nil {
			return changed, err
		}
		changed++
		d.setStatus(func(s *Status) {
			s.ChunksChecked++
			s.ChunksRepaired++
			s.BytesMoved += uint64(len(srcData))
		})
		if hist != nil {
			hist.RecordSince(t0)
		}
	}
	return changed, nil
}

// expand resolves a primary to its replica-group members under reps
// (itself when unreplicated).
func (d *Driver) expand(a netsim.Addr, reps *replica.Map) []netsim.Addr {
	if g, ok := reps.GroupOf(a); ok {
		return g.Members
	}
	return []netsim.Addr{a}
}

// memberOfCurrent reports whether cand already replicates src's data
// under the CURRENT binding (same group: no copy needed).
func (d *Driver) memberOfCurrent(src, cand netsim.Addr) bool {
	g, ok := d.cfg.IO.Replicas.GroupOf(src)
	if !ok {
		return false
	}
	for _, m := range g.Members {
		if m == cand {
			return true
		}
	}
	return false
}

// ------------------------------------------------------- peer operations

func (d *Driver) client(a netsim.Addr) (*oncrpc.Client, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.clients[a]; ok {
		return c, nil
	}
	port, err := d.cfg.Net.BindAny(d.cfg.Host)
	if err != nil {
		return nil, err
	}
	c := oncrpc.NewClient(port, a, oncrpc.ClientConfig{})
	d.clients[a] = c
	return c, nil
}

// retry runs op until it succeeds or the retry budget is spent — a
// destination node restarting mid-migration (chaos does exactly this)
// must not kill the whole transition.
func (d *Driver) retry(op func() error) error {
	deadline := time.Now().Add(d.cfg.RetryBudget)
	for {
		err := op()
		if err == nil || time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// peerCall makes one retried peer-program call and returns its status
// and the remaining decoder.
func (d *Driver) peerCall(a netsim.Addr, proc uint32, args func(*xdr.Encoder)) (uint32, *xdr.Decoder, error) {
	c, err := d.client(a)
	if err != nil {
		return 0, nil, err
	}
	var status uint32
	var dec *xdr.Decoder
	err = d.retry(func() error {
		body, err := c.Call(replica.PeerProgram, replica.PeerVersion, proc, func(e *xdr.Encoder) {
			e.PutUint64(d.token)
			args(e)
		})
		if err != nil {
			return err
		}
		dec = xdr.NewDecoder(body)
		status, err = dec.Uint32()
		return err
	})
	if err != nil {
		return 0, nil, fmt.Errorf("rebalance: peer %v proc %d: %w", a, proc, err)
	}
	if status == replica.PeerDenied {
		return status, nil, fmt.Errorf("rebalance: peer %v denied the bearer token", a)
	}
	return status, dec, nil
}

// listObjects pages a node's object directory.
func (d *Driver) listObjects(a netsim.Addr) (map[uint64]uint64, error) {
	out := make(map[uint64]uint64)
	after := uint64(0)
	for {
		n := uint32(0)
		status, dec, err := d.peerCall(a, replica.PeerProcList, func(e *xdr.Encoder) {
			e.PutUint64(after)
			e.PutUint32(replica.PeerListMax)
		})
		if err != nil {
			return nil, err
		}
		if status != replica.PeerOK {
			return nil, fmt.Errorf("rebalance: list %v: peer status %d", a, status)
		}
		if n, err = dec.Uint32(); err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			id, err := dec.Uint64()
			if err != nil {
				return nil, err
			}
			size, err := dec.Uint64()
			if err != nil {
				return nil, err
			}
			out[id] = size
			after = id
		}
		if n < replica.PeerListMax {
			return out, nil
		}
	}
}

// peerRead fetches one chunk; ok is false when the object is gone.
func (d *Driver) peerRead(a netsim.Addr, id, off uint64, n uint32) ([]byte, bool, error) {
	status, dec, err := d.peerCall(a, replica.PeerProcRead, func(e *xdr.Encoder) {
		e.PutUint64(id)
		e.PutUint64(off)
		e.PutUint32(n)
	})
	if err != nil {
		return nil, false, err
	}
	if status == replica.PeerNoObj {
		return nil, false, nil
	}
	if status != replica.PeerOK {
		return nil, false, fmt.Errorf("rebalance: read %v obj %d: peer status %d", a, id, status)
	}
	data, err := dec.Opaque()
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func (d *Driver) peerWrite(a netsim.Addr, id, off uint64, data []byte) error {
	status, _, err := d.peerCall(a, replica.PeerProcWrite, func(e *xdr.Encoder) {
		e.PutUint64(id)
		e.PutUint64(off)
		e.PutOpaque(data)
	})
	if err != nil {
		return err
	}
	if status != replica.PeerOK {
		return fmt.Errorf("rebalance: write %v obj %d: peer status %d", a, id, status)
	}
	return nil
}

func (d *Driver) peerTruncate(a netsim.Addr, id, size uint64) error {
	status, _, err := d.peerCall(a, replica.PeerProcTruncate, func(e *xdr.Encoder) {
		e.PutUint64(id)
		e.PutUint64(size)
	})
	if err != nil {
		return err
	}
	if status != replica.PeerOK {
		return fmt.Errorf("rebalance: truncate %v obj %d: peer status %d", a, id, status)
	}
	return nil
}

func (d *Driver) peerRemove(a netsim.Addr, id uint64) error {
	status, _, err := d.peerCall(a, replica.PeerProcRemove, func(e *xdr.Encoder) {
		e.PutUint64(id)
	})
	if err != nil {
		return err
	}
	if status != replica.PeerOK {
		return fmt.Errorf("rebalance: remove %v obj %d: peer status %d", a, id, status)
	}
	return nil
}

// ------------------------------------------------------ intention chain

// startHeartbeat logs the migrate intention and keeps it fresh by
// chaining a new Intend before completing the old one, so the
// transition is covered by an unexpired intention at every instant the
// driver is alive. The returned stop function completes the last
// intention.
func (d *Driver) startHeartbeat(epoch uint64) (stop func()) {
	if d.cfg.Coord.IsZero() {
		return func() {}
	}
	id := d.intend(epoch)
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(d.cfg.Heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-stopCh:
				d.complete(id)
				return
			case <-tick.C:
				if next := d.intend(epoch); next != 0 {
					d.complete(id)
					id = next
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			wg.Wait()
		})
	}
}

// intend logs one migrate intention carrying the epoch; 0 on failure
// (the previous intention stays pending and keeps covering us).
func (d *Driver) intend(epoch uint64) uint64 {
	c, err := d.client(d.cfg.Coord)
	if err != nil {
		return 0
	}
	body, err := c.Call(coord.Program, coord.Version, coord.ProcIntend, func(e *xdr.Encoder) {
		e.PutUint32(coord.OpMigrate)
		fhandle.Handle{}.Encode(e)
		e.PutUint64(epoch)
	})
	if err != nil {
		return 0
	}
	dec := xdr.NewDecoder(body)
	if st, err := dec.Uint32(); err != nil || st != 0 {
		return 0
	}
	id, err := dec.Uint64()
	if err != nil {
		return 0
	}
	return id
}

func (d *Driver) complete(id uint64) {
	if id == 0 {
		return
	}
	c, err := d.client(d.cfg.Coord)
	if err != nil {
		return
	}
	_, _ = c.Call(coord.Program, coord.Version, coord.ProcComplete, func(e *xdr.Encoder) {
		e.PutUint64(id)
	})
}

// distinct returns the distinct addresses in first-appearance order.
func distinct(sites []netsim.Addr) []netsim.Addr {
	seen := make(map[netsim.Addr]bool, len(sites))
	out := make([]netsim.Addr, 0, len(sites))
	for _, a := range sites {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
