package route

import (
	"sync"
	"sync/atomic"

	"slice/internal/netsim"
)

// ProxyMember is one µproxy in the fleet: the virtual server address it
// interposes on, the host it runs its own RPCs from, and a small stable
// ID that survives crash/restart cycles (a restarted proxy keeps its
// identity, so its ring points come back where they were and flows
// migrate minimally).
type ProxyMember struct {
	ID      uint32      // stable fleet slot, never reused for a different proxy
	Virtual netsim.Addr // the virtual NFS server address this proxy answers
	Host    uint32      // host the proxy's own client ports bind on
}

// Fleet is the versioned membership table of the µproxy tier, the
// fleet-level analogue of Table: an immutable member list behind an
// atomic pointer, so data-path readers (the flow-hashing front, clients
// re-resolving a retransmission) never take a lock, while Swap installs
// a new generation when a proxy joins, crashes, or restarts. Like the
// storage tables, fleet membership is soft state — it can be rebuilt
// from configuration at any time — so there is no write-ahead log here.
type Fleet struct {
	mu    sync.Mutex // serializes writers (Swap)
	state atomic.Pointer[fleetState]
}

// fleetState is one immutable membership generation.
type fleetState struct {
	members []ProxyMember // sorted by ID; never mutated once stored
	version uint64
}

// NewFleet builds a fleet table over the given members.
func NewFleet(members []ProxyMember) *Fleet {
	f := &Fleet{}
	f.store(members, 1)
	return f
}

func (f *Fleet) store(members []ProxyMember, version uint64) {
	st := &fleetState{version: version}
	if len(members) > 0 {
		st.members = append([]ProxyMember(nil), members...)
		sortMembers(st.members)
	}
	f.state.Store(st)
}

// Swap installs a new membership generation. In-flight lookups keep
// reading the snapshot they loaded; the front's ring rebuilds lazily
// when it observes the new version.
func (f *Fleet) Swap(members []ProxyMember) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.store(members, f.state.Load().version+1)
}

// Version returns the membership generation, incremented by every Swap.
func (f *Fleet) Version() uint64 {
	return f.state.Load().version
}

// Members returns the current membership, sorted by ID. The slice is
// the immutable snapshot itself; callers must not mutate it.
func (f *Fleet) Members() []ProxyMember {
	return f.state.Load().members
}

// Len returns the current member count.
func (f *Fleet) Len() int {
	return len(f.state.Load().members)
}

// Member returns the member with the given ID, if present.
func (f *Fleet) Member(id uint32) (ProxyMember, bool) {
	for _, m := range f.state.Load().members {
		if m.ID == id {
			return m, true
		}
	}
	return ProxyMember{}, false
}

// sortMembers orders by ID (insertion sort: fleets are small).
func sortMembers(ms []ProxyMember) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].ID < ms[j-1].ID; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
