package netsim

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Datagram buffer pool.
//
// Every datagram the fabric carries is backed by a buffer drawn from a set
// of size-class sync.Pools, so steady-state forwarding through an
// interposed µproxy does no heap allocation: Build draws a buffer, the
// datagram travels tap → queue → Recv in place, and the final receiver
// returns it with FreeBuf.
//
// Ownership rule: a datagram buffer has exactly one owner at a time, and
// handing the buffer to the network transfers ownership.
//
//   - Build/GetBuf give the caller an owned buffer.
//   - send/Inject take ownership; if the network drops the datagram (tap
//     drop, configured loss, unbound port, queue overrun) the network frees
//     it.
//   - A tap returning Consumed takes ownership and must either reinject the
//     buffer or free it.
//   - Recv transfers ownership to the receiver, who frees the buffer once
//     done with it (and with anything aliasing it, e.g. parsed RPC bodies).
//
// FreeBuf ignores buffers whose capacity is not exactly a pool class, so
// externally allocated datagrams may flow through the same paths safely.

// bufClasses are the pooled buffer capacities, smallest first. The largest
// class covers MaxDatagram.
var bufClasses = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10, MaxDatagram}

// bufPools holds one sync.Pool per size class. Pools store a *byte to the
// first element of a full-class-capacity array (a pointer stores directly
// into an interface, so Put/Get do not allocate); GetBuf rebuilds the
// slice with unsafe.Slice.
var bufPools [len(bufClasses)]sync.Pool

// BufPoolStats counts buffer pool traffic.
type BufPoolStats struct {
	Gets    uint64 // buffers handed out by GetBuf
	Puts    uint64 // buffers returned by FreeBuf
	News    uint64 // pool misses that allocated a fresh buffer
	Ignored uint64 // FreeBuf calls on foreign (non-class) buffers
}

var poolGets, poolPuts, poolNews, poolIgnored atomic.Uint64

// PoolStats returns a snapshot of the process-wide buffer pool counters.
func PoolStats() BufPoolStats {
	return BufPoolStats{
		Gets:    poolGets.Load(),
		Puts:    poolPuts.Load(),
		News:    poolNews.Load(),
		Ignored: poolIgnored.Load(),
	}
}

// classFor returns the index of the smallest class holding n bytes, or -1
// if n exceeds the largest class.
func classFor(n int) int {
	for i, c := range bufClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// classOf returns the index of the class whose capacity is exactly c, or
// -1 for foreign buffers.
func classOf(c int) int {
	for i, cc := range bufClasses {
		if c == cc {
			return i
		}
		if c < cc {
			break
		}
	}
	return -1
}

// GetBuf returns an owned buffer of length n from the pool. The contents
// are unspecified.
func GetBuf(n int) []byte {
	poolGets.Add(1)
	cls := classFor(n)
	if cls < 0 {
		poolNews.Add(1)
		return make([]byte, n)
	}
	if p, _ := bufPools[cls].Get().(*byte); p != nil {
		return unsafe.Slice(p, bufClasses[cls])[:n]
	}
	poolNews.Add(1)
	return make([]byte, n, bufClasses[cls])
}

// FreeBuf returns a buffer obtained from GetBuf (or Build, or Recv) to the
// pool. Freeing nil or a foreign buffer is a no-op; the caller must not
// touch the buffer, or anything aliasing it, afterwards.
func FreeBuf(d []byte) {
	if cap(d) == 0 {
		return
	}
	cls := classOf(cap(d))
	if cls < 0 {
		poolIgnored.Add(1)
		return
	}
	poolPuts.Add(1)
	d = d[:1]
	bufPools[cls].Put(&d[0])
}
