package ensemble

import (
	"bytes"
	"testing"
	"time"

	"slice/internal/oncrpc"
	"slice/internal/route"
	"slice/internal/storage"
)

// newReplicated builds a 2-way replicated ensemble: 4 storage nodes in
// 2 groups, no small-file tier (every byte takes the replicated path).
func newReplicated(t *testing.T, mutate func(*Config)) *Ensemble {
	t.Helper()
	cfg := Config{
		StorageNodes: 4,
		Replication:  2,
		DirServers:   1,
		Coordinator:  true,
		NameKind:     route.MkdirSwitching,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("ensemble: %v", err)
	}
	t.Cleanup(e.Close)
	return e
}

// assertGroupsIdentical checks that every member of each replica group
// holds byte-identical copies of every object, excluding small-file
// backing objects (id top byte 0x5F), which live on one node by design.
func assertGroupsIdentical(t *testing.T, e *Ensemble) {
	t.Helper()
	k := e.cfg.Replication
	for base := 0; base+k <= len(e.Storage); base += k {
		members := e.Storage[base : base+k]
		for gi := base; gi < base+k; gi++ {
			if e.Storage[gi] == nil {
				t.Fatalf("storage node %d is down", gi)
			}
		}
		ref := members[0].Store()
		var after storage.ObjectID
		for {
			page := ref.ListAfter(after, 128)
			if len(page) == 0 {
				break
			}
			for _, ent := range page {
				after = ent.ID
				if uint64(ent.ID)>>56 == 0x5F {
					continue
				}
				want := make([]byte, ent.Size)
				if ent.Size > 0 {
					ref.ReadAt(ent.ID, 0, want)
				}
				for mi, m := range members[1:] {
					size, ok := m.Store().Size(ent.ID)
					if !ok || size != ent.Size {
						t.Fatalf("group %d member %d: object %d size %d, want %d (ok=%v)",
							base/k, mi+1, ent.ID, size, ent.Size, ok)
					}
					got := make([]byte, ent.Size)
					if ent.Size > 0 {
						m.Store().ReadAt(ent.ID, 0, got)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("group %d member %d: object %d differs from primary", base/k, mi+1, ent.ID)
					}
				}
			}
		}
	}
}

func TestReplicatedWriteFansOutReadsSpread(t *testing.T) {
	e := newReplicated(t, nil)
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "fanout.dat", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i*7 + i>>9)
	}
	if _, err := c.Write(fh, 0, data, false); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := c.Commit(fh); err != nil {
		t.Fatalf("commit: %v", err)
	}

	// All fan-outs acknowledged: nothing stays dirty.
	if n := e.Proxy.DirtyLen(); n != 0 {
		t.Fatalf("dirty set holds %d entries after acked writes", n)
	}
	// Every member of every group holds identical bytes.
	assertGroupsIdentical(t, e)

	// Reads spread: a clean object is served by non-primary members too.
	got := make([]byte, len(data))
	for i := 0; i < 16; i++ {
		n, _, err := c.Read(fh, 0, got)
		if err != nil || n != len(data) {
			t.Fatalf("read %d: n=%d err=%v", i, n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read %d: content mismatch", i)
		}
	}
	nonPrimaryReads := uint64(0)
	for i, sn := range e.Storage {
		if i%e.cfg.Replication != 0 {
			nonPrimaryReads += sn.Store().Stats().Reads
		}
	}
	if nonPrimaryReads == 0 {
		t.Fatal("no read was spread to a non-primary replica")
	}
}

// TestDirtyObjectPinsReadsUntilCommit drives the dirty-set edge cases:
// a write whose fan-out cannot complete (one member partitioned) leaves
// its object dirty through every client retransmission — fresh-xid
// reissues must not double-insert, or the entry could never drain — and
// reads of the dirty object pin to the primary and stay correct. After
// the client gives up, the mark survives as a safe over-approximation
// until a COMMIT barrier force-clears it.
func TestDirtyObjectPinsReadsUntilCommit(t *testing.T) {
	e := newReplicated(t, func(cfg *Config) {
		cfg.StorageNodes = 2 // one group: {primary 0, member 1}
		cfg.ClientRPC = oncrpc.ClientConfig{Timeout: 30 * time.Millisecond, Retries: 4}
	})
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "pinned.dat", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	base := make([]byte, 128*1024)
	for i := range base {
		base[i] = byte(i * 13)
	}
	if _, err := c.Write(fh, 0, base, false); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := c.Commit(fh); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if n := e.Proxy.DirtyLen(); n != 0 {
		t.Fatalf("dirty set holds %d entries before the partition", n)
	}

	// Partition the non-primary member and write: the fan-out can never
	// complete, so the object goes (and stays) dirty while the client
	// retransmits and reissues, and the write-behind drain finally
	// surfaces the failure client-side.
	e.Chaos().PartitionStorage(1)
	tail := bytes.Repeat([]byte{0xEE}, 32*1024)
	if _, err := c.Write(fh, uint64(len(base)), tail, false); err == nil {
		err = c.Flush(fh)
		if err == nil {
			t.Fatal("write with a partitioned replica succeeded")
		}
	}
	if !e.Proxy.ObjectDirty(fh) {
		t.Fatal("object not dirty after an unacknowledged fan-out")
	}
	if got := e.Proxy.DirtyLen(); got != 1 {
		t.Fatalf("dirty set holds %d entries, want 1 (retransmits must not double-insert)", got)
	}

	// Dirty reads pin to the primary and serve the committed bytes.
	m1Reads := e.Storage[1].Store().Stats().Reads
	got := make([]byte, len(base))
	for i := 0; i < 8; i++ {
		if n, _, err := c.Read(fh, 0, got); err != nil || n != len(base) {
			t.Fatalf("pinned read %d: n=%d err=%v", i, n, err)
		}
		if !bytes.Equal(got, base) {
			t.Fatalf("pinned read %d returned wrong bytes", i)
		}
	}
	if after := e.Storage[1].Store().Stats().Reads; after != m1Reads {
		t.Fatalf("dirty object was read from the partitioned member (%d reads)", after-m1Reads)
	}

	// Heal and commit: the barrier reaches every member and force-clears
	// the over-approximated mark, so reads spread again.
	e.Chaos().HealStorage(1)
	if _, err := c.Commit(fh); err != nil {
		t.Fatalf("commit after heal: %v", err)
	}
	if e.Proxy.ObjectDirty(fh) {
		t.Fatal("COMMIT barrier did not clear the dirty mark")
	}
	m1Reads = e.Storage[1].Store().Stats().Reads
	for i := 0; i < 16; i++ {
		if _, _, err := c.Read(fh, uint64(8192*(i%4)), got[:8192]); err != nil {
			t.Fatalf("spread read %d: %v", i, err)
		}
	}
	if e.Storage[1].Store().Stats().Reads == m1Reads {
		t.Fatal("reads did not spread to the healed member after COMMIT")
	}
}

// TestDirtyMarkSurvivesSoftStateLossAsOverApproximation drops the
// µproxy's soft state mid-partitioned-write — the fleet-failover
// equivalent: the new owner starts with no dirtiness knowledge, and the
// client's retransmission re-marks the object, pinning its reads again.
func TestDirtyMarkSurvivesSoftStateLoss(t *testing.T) {
	e := newReplicated(t, func(cfg *Config) {
		cfg.StorageNodes = 2
		cfg.ClientRPC = oncrpc.ClientConfig{Timeout: 30 * time.Millisecond, Retries: 30}
	})
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "failover.dat", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 96*1024)
	for i := range data {
		data[i] = byte(i)
	}

	e.Chaos().PartitionStorage(1)
	done := make(chan error, 1)
	go func() {
		_, err := c.Write(fh, 0, data, false)
		if err == nil {
			err = c.Flush(fh) // drain the write-behind window
		}
		done <- err
	}()
	// Wait for the first fan-out to mark the object dirty, then lose the
	// soft state (what a fleet failover looks like to the dirty set).
	deadline := time.Now().Add(2 * time.Second)
	for e.Proxy.DirtyLen() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Proxy.DirtyLen() == 0 {
		t.Fatal("write never marked its object dirty")
	}
	e.Proxy.DropSoftState()
	// The client keeps retransmitting into the fresh state: the record
	// is recreated and the object re-marked (the over-approximation).
	deadline = time.Now().Add(2 * time.Second)
	for e.Proxy.DirtyLen() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Proxy.DirtyLen() == 0 {
		t.Fatal("retransmission did not re-mark the object after soft-state loss")
	}

	// Heal: the still-retrying write completes and the fan-out drains
	// the re-marked entry.
	e.Chaos().HealStorage(1)
	if err := <-done; err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if _, err := c.Commit(fh); err != nil {
		t.Fatalf("commit: %v", err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for e.Proxy.DirtyLen() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := e.Proxy.DirtyLen(); n != 0 {
		t.Fatalf("dirty set holds %d entries after the healed write drained", n)
	}
	assertGroupsIdentical(t, e)
}

func TestKillReplicaResyncRebuildsMember(t *testing.T) {
	e := newReplicated(t, func(cfg *Config) {
		cfg.ClientRPC = oncrpc.ClientConfig{Timeout: 50 * time.Millisecond, Retries: 100}
	})
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "resync.dat", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200*1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := c.Write(fh, 0, data, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(fh); err != nil {
		t.Fatal(err)
	}

	// Kill a non-primary member disk and all: group 1 = nodes {2, 3}.
	killed, err := e.Chaos().KillReplicaUnderWrite(1)
	if err != nil {
		t.Fatal(err)
	}
	if killed != 3 {
		t.Fatalf("killed node %d, want 3 (last member of group 1)", killed)
	}
	// The survivors still serve reads of the whole file.
	got := make([]byte, len(data))
	if n, _, err := c.Read(fh, 0, got); err != nil || n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("read with a dead member: n=%d err=%v", n, err)
	}

	// Restart: the member resyncs from its sibling before serving.
	if _, err := e.Chaos().RestartReplica(killed); err != nil {
		t.Fatal(err)
	}
	assertGroupsIdentical(t, e)

	// And it serves spread reads again.
	before := e.Storage[killed].Store().Stats().Reads
	for i := 0; i < 32; i++ {
		if _, _, err := c.Read(fh, 0, got); err != nil {
			t.Fatalf("read %d after resync: %v", i, err)
		}
	}
	if e.Storage[killed].Store().Stats().Reads == before && before == 0 {
		t.Log("note: no spread read landed on the reborn member (hash-dependent)")
	}
}
