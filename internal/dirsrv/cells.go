// Package dirsrv implements the Slice directory servers (§4.3).
//
// A directory server stores name entries and file attributes as fixed-size
// cells indexed by hash chains keyed on an MD5 fingerprint of (parent file
// handle, name). Cells for a directory may be distributed across servers:
// attribute cells can reference entries on other sites, which is what lets
// one code base support both the mkdir-switching and name-hashing routing
// policies. Servers use fixed placement — a cell lives where it was
// created — and a peer-peer protocol to update link counts and follow
// cross-site references.
//
// Directory servers are dataless: every mutation is journaled in a
// write-ahead log, and the full cell state can be snapshot to and restored
// from a backing object, enabling failover (§2.3).
package dirsrv

import (
	"fmt"
	"sort"
	"time"

	"slice/internal/attr"
	"slice/internal/fhandle"
	"slice/internal/wal"
	"slice/internal/xdr"
)

// attrCell is the attribute cell for one file or directory. Symbolic
// links store their target path in the cell: link contents are small,
// immutable, and read with the attributes, so they live with the name
// service rather than the data servers.
type attrCell struct {
	fh     fhandle.Handle
	at     attr.Attr
	target string
}

// nameCell is one name entry: a binding of (parent, name) to a child
// handle. The child's attribute cell may be local or on another site
// (a "remote key" in the paper's terms); child.Site says where.
type nameCell struct {
	parent fhandle.Key
	name   string
	child  fhandle.Handle
}

// state is the cell store of one directory server. All access goes through
// the server mutex.
type state struct {
	// attrs maps cell keys (fileIDs) to attribute cells.
	attrs map[uint64]*attrCell
	// chains maps name-key fingerprints to hash chains of name cells.
	chains map[uint64][]*nameCell
	// byDir indexes local name cells by parent directory for readdir.
	byDir map[fhandle.Key][]*nameCell
	// nextID mints fileIDs; the high bits carry the site so IDs are
	// unique across servers.
	nextID uint64
}

func newState() *state {
	return &state{
		attrs:  make(map[uint64]*attrCell),
		chains: make(map[uint64][]*nameCell),
		byDir:  make(map[fhandle.Key][]*nameCell),
	}
}

// findEntry returns the name cell for (parent, name), or nil.
func (st *state) findEntry(parent fhandle.Handle, name string) *nameCell {
	key := nameKeyOf(parent, name)
	for _, c := range st.chains[key] {
		if c.parent == parent.Ident() && c.name == name {
			return c
		}
	}
	return nil
}

// insertEntry adds a name cell; the caller must have checked uniqueness.
func (st *state) insertEntry(c *nameCell) {
	key := fhandle.NameKey(handleFromKey(c.parent), c.name)
	st.chains[key] = append(st.chains[key], c)
	st.byDir[c.parent] = append(st.byDir[c.parent], c)
}

// removeEntry deletes the name cell for (parent, name) and returns it.
func (st *state) removeEntry(parent fhandle.Handle, name string) *nameCell {
	key := nameKeyOf(parent, name)
	chain := st.chains[key]
	for i, c := range chain {
		if c.parent == parent.Ident() && c.name == name {
			st.chains[key] = append(chain[:i], chain[i+1:]...)
			if len(st.chains[key]) == 0 {
				delete(st.chains, key)
			}
			dl := st.byDir[c.parent]
			for j, d := range dl {
				if d == c {
					st.byDir[c.parent] = append(dl[:j], dl[j+1:]...)
					break
				}
			}
			if len(st.byDir[c.parent]) == 0 {
				delete(st.byDir, c.parent)
			}
			return c
		}
	}
	return nil
}

// entriesOf returns the local name cells under parent, sorted by name.
func (st *state) entriesOf(parent fhandle.Key) []*nameCell {
	ents := st.byDir[parent]
	out := make([]*nameCell, len(ents))
	copy(out, ents)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// handleFromKey reconstructs the identity fields of a handle from a Key.
// Only identity fields participate in NameKey fingerprints, so name-key
// computations from a Key match those from the original handle.
func handleFromKey(k fhandle.Key) fhandle.Handle {
	return fhandle.Handle{Volume: k.Volume, FileID: k.FileID, Gen: k.Gen}
}

// NameKey fingerprints must depend only on handle identity; assert the
// convention once here. A handle with hints differs from its bare identity
// handle, so the fingerprint must be computed from identity alone.
func nameKeyOf(parent fhandle.Handle, name string) uint64 {
	return fhandle.NameKey(handleFromKey(parent.Ident()), name)
}

// ------------------------------------------------------------ WAL records

// Log record types for directory server journaling.
const (
	recCreate   = 1 // entry + attr cell created together
	recMkdirIn  = 2 // redirected mkdir: local cell, remote entry
	recRemove   = 3 // entry removed (and cell, if local)
	recSetAttr  = 4
	recInsert   = 5 // entry inserted (peer or rename/link)
	recTouch    = 6 // directory nlink/mtime adjustment
	recLinkDel  = 7 // link count delta on a cell
	recCellGone = 8 // attribute cell removed
	recNewCell  = 9 // attribute cell created alone
)

// encodeCellRecord journals a cell's full post-state, including any
// symlink target.
func encodeCellRecord(fh fhandle.Handle, at *attr.Attr) []byte {
	return encodeCellRecordT(fh, at, "")
}

func encodeCellRecordT(fh fhandle.Handle, at *attr.Attr, target string) []byte {
	e := xdr.NewEncoder(96 + len(target))
	fh.Encode(e)
	at.Encode(e)
	e.PutString(target)
	return e.Bytes()
}

func decodeCellRecord(p []byte) (fhandle.Handle, attr.Attr, string, error) {
	d := xdr.NewDecoder(p)
	fh, err := fhandle.Decode(d)
	if err != nil {
		return fh, attr.Attr{}, "", err
	}
	var at attr.Attr
	if err := at.Decode(d); err != nil {
		return fh, at, "", err
	}
	target, err := d.String()
	return fh, at, target, err
}

func encodeEntryRecord(parent fhandle.Handle, name string, child fhandle.Handle) []byte {
	e := xdr.NewEncoder(96)
	parent.Encode(e)
	e.PutString(name)
	child.Encode(e)
	return e.Bytes()
}

func decodeEntryRecord(p []byte) (parent fhandle.Handle, name string, child fhandle.Handle, err error) {
	d := xdr.NewDecoder(p)
	if parent, err = fhandle.Decode(d); err != nil {
		return
	}
	if name, err = d.String(); err != nil {
		return
	}
	child, err = fhandle.Decode(d)
	return
}

// ------------------------------------------------------------- snapshot

// snapshotMagic guards snapshot decoding.
const snapshotMagic = 0x5D1C5A1D

// Snapshot serializes the full cell state for checkpoint to a backing
// object. The WAL may be truncated after a successful snapshot.
func (s *Server) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := xdr.NewEncoder(4096)
	e.PutUint32(snapshotMagic)
	e.PutUint64(s.st.nextID)
	e.PutUint32(uint32(len(s.st.attrs)))
	// Deterministic order for reproducible snapshots.
	keys := make([]uint64, 0, len(s.st.attrs))
	for k := range s.st.attrs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		c := s.st.attrs[k]
		e.PutUint64(k)
		c.fh.Encode(e)
		c.at.Encode(e)
		e.PutString(c.target)
	}
	var cells []*nameCell
	for _, chain := range s.st.chains {
		cells = append(cells, chain...)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].parent != cells[j].parent {
			return cells[i].parent.FileID < cells[j].parent.FileID
		}
		return cells[i].name < cells[j].name
	})
	e.PutUint32(uint32(len(cells)))
	for _, c := range cells {
		handleFromKey(c.parent).Encode(e)
		e.PutString(c.name)
		c.child.Encode(e)
	}
	return e.Bytes()
}

// restoreSnapshot loads cell state from a snapshot.
func (s *Server) restoreSnapshot(p []byte) error {
	d := xdr.NewDecoder(p)
	magic, err := d.Uint32()
	if err != nil || magic != snapshotMagic {
		return fmt.Errorf("dirsrv: bad snapshot (magic %x, err %v)", magic, err)
	}
	st := newState()
	if st.nextID, err = d.Uint64(); err != nil {
		return err
	}
	nAttrs, err := d.Uint32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nAttrs; i++ {
		k, err := d.Uint64()
		if err != nil {
			return err
		}
		fh, err := fhandle.Decode(d)
		if err != nil {
			return err
		}
		var at attr.Attr
		if err := at.Decode(d); err != nil {
			return err
		}
		target, err := d.String()
		if err != nil {
			return err
		}
		st.attrs[k] = &attrCell{fh: fh, at: at, target: target}
	}
	nCells, err := d.Uint32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nCells; i++ {
		parent, err := fhandle.Decode(d)
		if err != nil {
			return err
		}
		name, err := d.String()
		if err != nil {
			return err
		}
		child, err := fhandle.Decode(d)
		if err != nil {
			return err
		}
		st.insertEntry(&nameCell{parent: parent.Ident(), name: name, child: child})
	}
	s.mu.Lock()
	s.st = st
	s.mu.Unlock()
	return nil
}

// Recover rebuilds server state from a snapshot (possibly nil for an empty
// checkpoint) plus the surviving log. It implements the failover path of
// §2.3: state = backing object + write-ahead log replay.
func (s *Server) Recover(snapshot []byte, log *wal.Log) error {
	if snapshot != nil {
		if err := s.restoreSnapshot(snapshot); err != nil {
			return err
		}
	} else {
		s.mu.Lock()
		s.st = newState()
		s.mu.Unlock()
	}
	return log.Scan(func(seq uint64, recType uint32, payload []byte) error {
		return s.replay(recType, payload)
	})
}

// replay applies one journal record. Replay is idempotent: records assert
// final states rather than increments where possible, and increments are
// guarded by the presence checks below.
func (s *Server) replay(recType uint32, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch recType {
	case recCreate, recMkdirIn, recNewCell:
		fh, at, target, err := decodeCellRecord(payload)
		if err != nil {
			return err
		}
		s.st.attrs[fh.FileID] = &attrCell{fh: fh, at: at, target: target}
		if fh.FileID >= s.st.nextID {
			s.st.nextID = fh.FileID + 1
		}
	case recInsert:
		parent, name, child, err := decodeEntryRecord(payload)
		if err != nil {
			return err
		}
		if s.st.findEntry(parent, name) == nil {
			s.st.insertEntry(&nameCell{parent: parent.Ident(), name: name, child: child})
		}
	case recRemove:
		parent, name, _, err := decodeEntryRecord(payload)
		if err != nil {
			return err
		}
		s.st.removeEntry(parent, name)
	case recSetAttr:
		fh, at, _, err := decodeCellRecord(payload)
		if err != nil {
			return err
		}
		if c := s.st.attrs[fh.FileID]; c != nil {
			c.at = at
		}
	case recTouch, recLinkDel:
		fh, at, _, err := decodeCellRecord(payload)
		if err != nil {
			return err
		}
		if c := s.st.attrs[fh.FileID]; c != nil {
			c.at = at // records carry the post-state for idempotent replay
		}
	case recCellGone:
		fh, _, _, err := decodeCellRecord(payload)
		if err != nil {
			return err
		}
		delete(s.st.attrs, fh.FileID)
	default:
		return fmt.Errorf("dirsrv: unknown log record type %d", recType)
	}
	return nil
}

// now returns the current wire timestamp via the injectable clock.
func (s *Server) now() attr.Time {
	if s.clock != nil {
		return s.clock()
	}
	return attr.FromGo(time.Now())
}

// Counters aggregates directory server activity for the experiments.
type Counters struct {
	Ops        uint64 // NFS operations served
	PeerCalls  uint64 // outbound peer-protocol calls
	PeerServed uint64 // inbound peer-protocol calls
	CrossSite  uint64 // NFS operations that required a peer call
}
