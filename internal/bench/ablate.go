package bench

import (
	"fmt"
	"hash/fnv"
	"io"

	"slice/internal/coord"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/route"
	"slice/internal/sim"
	"slice/internal/wal"
)

// Ablation benches probe the design choices DESIGN.md calls out, beyond
// the paper's own figures.

// AblationHash compares the MD5 name fingerprint (the paper determined
// "empirically that MD5 yields a combination of balanced distribution and
// low cost superior to competing hash functions") against FNV-1a, across
// site counts.
func AblationHash(w io.Writer) error {
	header(w, "Ablation: name-hash balance (MD5 vs FNV-1a)",
		"Peak-to-mean load ratio routing 100k names across N logical sites;\n"+
			"1.00 is perfect balance.")

	parent := fhandle.Handle{Volume: 1, FileID: 42, Gen: 1}
	const names = 100000
	fnvKey := func(name string) uint64 {
		h := fnv.New64a()
		h.Write(parent.Marshal())
		h.Write([]byte(name))
		return h.Sum64()
	}

	t := newTable("sites", "md5 peak/mean", "fnv peak/mean")
	for _, sites := range []int{2, 4, 8, 16, 64} {
		md5Counts := make([]int, sites)
		fnvCounts := make([]int, sites)
		for i := 0; i < names; i++ {
			name := fmt.Sprintf("file-%d.c", i)
			md5Counts[int(fhandle.NameKey(parent, name)%uint64(sites))]++
			fnvCounts[int(fnvKey(name)%uint64(sites))]++
		}
		peak := func(c []int) float64 {
			m := 0
			for _, v := range c {
				if v > m {
					m = v
				}
			}
			return float64(m) / (float64(names) / float64(sites))
		}
		t.addf("%d|%.3f|%.3f", sites, peak(md5Counts), peak(fnvCounts))
	}
	t.write(w)
	fmt.Fprintln(w, "\n  Both spread structured names well on this input; MD5's advantage in")
	fmt.Fprintln(w, "  the paper was robustness across adversarial/structured key sets.")
	return nil
}

// AblationThreshold sweeps the small-file threshold offset and reports
// how the SPECsfs-skewed file population splits between the small-file
// servers and the storage array (§3.1's separation policy).
func AblationThreshold(w io.Writer) error {
	header(w, "Ablation: small-file threshold offset",
		"SFS-skewed file sizes (94% ≤64KB holding ≈24% of bytes): share of\n"+
			"requests and bytes absorbed by the small-file servers per threshold.")

	// Deterministic SFS-like size sample.
	sizes := make([]int, 0, 20000)
	var rng uint64 = 99
	next := func(n int) int {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return int((rng * 0x2545F4914F6CDD1D) % uint64(n))
	}
	for i := 0; i < 20000; i++ {
		u := next(100)
		switch {
		case u < 60:
			sizes = append(sizes, 1+next(8<<10))
		case u < 94:
			sizes = append(sizes, 8<<10+next(56<<10))
		case u < 99:
			// The 6% of large files hold ≈3/4 of the bytes ("the large
			// files serve to pollute the disks", §5).
			sizes = append(sizes, 64<<10+next(448<<10))
		default:
			sizes = append(sizes, 1<<20+next(3<<20))
		}
	}

	t := newTable("threshold", "reqs to small-file", "bytes to small-file", "files fully small")
	for _, thr := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10} {
		var reqSF, reqAll, bytesSF, bytesAll, fullySmall int
		for _, size := range sizes {
			// Sequential whole-file access in 8KB requests.
			for off := 0; off < size; off += 8 << 10 {
				reqAll++
				n := 8 << 10
				if off+n > size {
					n = size - off
				}
				bytesAll += n
				if off < thr {
					reqSF++
					bytesSF += n
				}
			}
			if size <= thr {
				fullySmall++
			}
		}
		t.addf("%dKB|%.1f%%|%.1f%%|%.1f%%",
			thr>>10,
			float64(reqSF)/float64(reqAll)*100,
			float64(bytesSF)/float64(bytesAll)*100,
			float64(fullySmall)/float64(len(sizes))*100)
	}
	t.write(w)
	fmt.Fprintln(w, "\n  The paper's 64KB threshold keeps ≈94% of files entirely on the")
	fmt.Fprintln(w, "  small-file servers while most BYTES of large files still bypass them —")
	fmt.Fprintln(w, "  the separation §3.1 is after.")
	return nil
}

// AblationPlacement compares static striping against coordinator block
// maps: stripe balance across the array and the map-fetch overhead the
// µproxy pays for the added placement flexibility.
func AblationPlacement(w io.Writer) error {
	header(w, "Ablation: static striping vs coordinator block maps",
		"Distributing 64 files × 64 stripes over 8 storage nodes.")

	const nodes, files, stripes = 8, 64, 64
	var addrs []netsim.Addr
	for i := 0; i < nodes; i++ {
		addrs = append(addrs, netsim.Addr{Host: uint32(10 + i), Port: 2049})
	}
	table := route.NewTable(nodes, addrs)
	io2 := route.NewIOPolicy(nil, table)

	// Static placement.
	static := make([]int, nodes)
	for f := 0; f < files; f++ {
		fh := fhandle.Handle{Volume: 1, FileID: uint64(f + 1), Gen: 1}
		for s := uint64(0); s < stripes; s++ {
			static[int(io2.StorageSites(fh, s)[0])]++
		}
	}

	// Coordinator block maps (round-robin dynamic placement).
	log, err := wal.Open(wal.NewMemStore())
	if err != nil {
		return err
	}
	net := netsim.New(netsim.Config{})
	port, err := net.Bind(netsim.Addr{Host: 90, Port: 3049})
	if err != nil {
		return err
	}
	co := coord.New(port, coord.Config{
		Log: log, Storage: table, Net: net, Host: 90, MapStripeSpread: true,
	})
	defer co.Close()
	mapped := make([]int, nodes)
	for f := 0; f < files; f++ {
		fh := fhandle.Handle{Volume: 1, FileID: uint64(f + 1), Gen: 1, Flags: fhandle.FlagMapped}
		sites, err := co.GetMap(fh, 0, stripes)
		if err != nil {
			return err
		}
		for _, s := range sites {
			mapped[int(s)%nodes]++
		}
	}

	spread := func(c []int) (int, int) {
		mn, mx := c[0], c[0]
		for _, v := range c {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return mn, mx
	}
	sMin, sMax := spread(static)
	mMin, mMax := spread(mapped)
	t := newTable("policy", "min stripes/node", "max stripes/node", "coordinator state")
	t.addf("static striping|%d|%d|none", sMin, sMax)
	t.addf("block maps|%d|%d|%d map entries + log", mMin, mMax, co.Stats().MapAllocs)
	t.write(w)
	fmt.Fprintln(w, "\n  Static placement needs no per-file state but is fixed at write time;")
	fmt.Fprintln(w, "  block maps match its balance while allowing policy-driven placement,")
	fmt.Fprintln(w, "  at the cost of coordinator state and µproxy map-fetch traffic (§3.1).")
	return nil
}

// AblationAffinityPolicy contrasts mkdir switching and name hashing on
// the workload that separates them: one very large shared directory.
func AblationAffinityPolicy(w io.Writer) error {
	header(w, "Ablation: mkdir switching vs name hashing on a large directory",
		"8 processes creating files in ONE shared directory, 4 directory\n"+
			"servers. Switching binds the directory to a single site; hashing\n"+
			"spreads its entries (§3.2).")

	t := newTable("policy", "mean latency", "server utilizations")
	for _, cfg := range []struct {
		name string
		kind route.NameKind
	}{
		{"mkdir switching", route.MkdirSwitching},
		{"name hashing", route.NameHashing},
	} {
		res := sim.RunUntar(sim.UntarConfig{
			DirServers: 4, Processes: 8,
			Kind: cfg.kind, P: 0.25, SingleDirectory: true,
		})
		utils := ""
		for i, u := range res.ServerUtil {
			if i > 0 {
				utils += " "
			}
			utils += fmt.Sprintf("%.2f", u)
		}
		t.addf("%s|%.0fs|%s", cfg.name, res.MeanLatency, utils)
	}
	t.write(w)
	fmt.Fprintln(w, "\n  The tree-shaped untar of Figure 3 hides this difference; the paper")
	fmt.Fprintln(w, "  proposes name hashing precisely for directories too large for any")
	fmt.Fprintln(w, "  single server.")
	return nil
}
