// Package wal implements the write-ahead log used by Slice file managers.
//
// Directory servers, small-file servers, and the block-service coordinator
// are "dataless": all durable state lives in backing objects on the network
// storage array plus a journal of updates (§2.3). The system recovers a
// failed manager by replaying its log against its backing objects, which is
// what enables fast failover to a surviving site.
//
// Records are framed with a magic number, a monotonically increasing
// sequence number, a record type, and a CRC-32 over the frame. A torn final
// record (from a crash mid-append) is detected by the CRC and ignored, as
// in Hagmann-style logging [10]. Group commit is supported by buffering
// appends until Sync.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// Store is the durable medium beneath a log. In the prototype it is an
// in-memory store with an explicit durability horizon so tests can simulate
// crashes; in a deployment it would be a storage-service object.
type Store interface {
	// Append adds bytes to the store buffer (not yet durable).
	Append(p []byte) error
	// Sync makes all appended bytes durable.
	Sync() error
	// Contents returns the durable byte sequence.
	Contents() ([]byte, error)
	// Reset discards all content (used at checkpoint).
	Reset() error
}

// MemStore is an in-memory Store that distinguishes buffered from durable
// bytes. CrashCopy returns a view holding only the durable prefix, which
// tests use to simulate power failure.
type MemStore struct {
	mu      sync.Mutex
	buf     []byte
	durable int // bytes guaranteed to survive a crash
	syncs   uint64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (m *MemStore) Append(p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = append(m.buf, p...)
	return nil
}

// Sync implements Store.
func (m *MemStore) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.durable = len(m.buf)
	m.syncs++
	return nil
}

// Syncs returns the number of Sync calls, for group-commit accounting.
func (m *MemStore) Syncs() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// Contents implements Store. It returns everything appended; after a
// simulated crash use CrashCopy to get only the durable prefix.
func (m *MemStore) Contents() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]byte, len(m.buf))
	copy(out, m.buf)
	return out, nil
}

// Reset implements Store.
func (m *MemStore) Reset() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = nil
	m.durable = 0
	return nil
}

// CrashCopy returns a new store containing only the bytes durable at the
// last Sync, simulating loss of buffered data in a crash.
func (m *MemStore) CrashCopy() *MemStore {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &MemStore{}
	c.buf = append(c.buf, m.buf[:m.durable]...)
	c.durable = m.durable
	return c
}

const (
	recMagic  = 0x51C3106E // "Slice log"
	headerLen = 4 + 8 + 4 + 4
	crcLen    = 4
)

// ErrCorrupt indicates a damaged log record (other than a torn tail).
var ErrCorrupt = errors.New("wal: corrupt record")

// Stats aggregates log activity for the experiments (Fig. 3 reports log
// traffic per directory server).
type Stats struct {
	Appends uint64
	Syncs   uint64
	Bytes   uint64
}

// Log is a write-ahead journal over a Store.
type Log struct {
	mu        sync.Mutex
	store     Store
	nextSeq   uint64
	appendGen uint64 // bumped by every Append
	syncGen   uint64 // appendGen horizon known durable
	stats     Stats

	// syncMu serializes store.Sync and forms the group-commit queue:
	// callers blocked here when the leader finishes usually find their
	// records already durable and return without another device sync.
	// Never held together with mu by the same goroutine except in
	// Checkpoint (syncMu before mu).
	syncMu sync.Mutex
}

// Open attaches to a store, scanning existing durable records to find the
// next sequence number.
func Open(store Store) (*Log, error) {
	l := &Log{store: store, nextSeq: 1}
	err := l.Scan(func(seq uint64, recType uint32, payload []byte) error {
		if seq >= l.nextSeq {
			l.nextSeq = seq + 1
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Stats returns a snapshot of log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Append buffers a record; it becomes durable at the next Sync.
func (l *Log) Append(recType uint32, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.nextSeq
	l.nextSeq++
	frame := make([]byte, headerLen+len(payload)+crcLen)
	binary.BigEndian.PutUint32(frame[0:], recMagic)
	binary.BigEndian.PutUint64(frame[4:], seq)
	binary.BigEndian.PutUint32(frame[12:], recType)
	binary.BigEndian.PutUint32(frame[16:], uint32(len(payload)))
	copy(frame[headerLen:], payload)
	crc := crc32.ChecksumIEEE(frame[:headerLen+len(payload)])
	binary.BigEndian.PutUint32(frame[headerLen+len(payload):], crc)
	if err := l.store.Append(frame); err != nil {
		return 0, err
	}
	l.appendGen++
	l.stats.Appends++
	l.stats.Bytes += uint64(len(frame))
	return seq, nil
}

// Sync forces buffered records to durable storage (group commit point).
// It returns once every record appended before the call is durable, but
// does not hold the log mutex across the store sync: concurrent Sync
// callers queue behind one leader and piggyback on its device sync, so a
// slow store stalls only the records actually waiting on it — not every
// Append, Scan, and Stats on the log.
func (l *Log) Sync() error {
	l.mu.Lock()
	goal := l.appendGen
	done := l.syncGen >= goal
	l.mu.Unlock()
	if done {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.syncGen >= goal {
		// The previous leader's sync covered our records: group commit.
		l.mu.Unlock()
		return nil
	}
	horizon := l.appendGen
	l.mu.Unlock()
	if err := l.store.Sync(); err != nil {
		return err
	}
	l.mu.Lock()
	if horizon > l.syncGen {
		l.syncGen = horizon
	}
	l.stats.Syncs++
	l.mu.Unlock()
	return nil
}

// AppendSync appends a record and immediately makes it durable.
func (l *Log) AppendSync(recType uint32, payload []byte) (uint64, error) {
	seq, err := l.Append(recType, payload)
	if err != nil {
		return 0, err
	}
	return seq, l.Sync()
}

// Scan replays durable records in order. A torn or corrupt tail record
// terminates the scan without error (it could not have been acknowledged);
// corruption before the tail returns ErrCorrupt.
func (l *Log) Scan(fn func(seq uint64, recType uint32, payload []byte) error) error {
	l.mu.Lock()
	data, err := l.store.Contents()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < headerLen+crcLen {
			return nil // torn tail
		}
		if binary.BigEndian.Uint32(rest[0:]) != recMagic {
			if off == 0 {
				return fmt.Errorf("%w: bad magic at offset 0", ErrCorrupt)
			}
			return nil // garbage after the last full record
		}
		seq := binary.BigEndian.Uint64(rest[4:])
		recType := binary.BigEndian.Uint32(rest[12:])
		// Bound the on-disk length against the remaining data BEFORE any
		// int arithmetic: a corrupt plen near 1<<31 would overflow
		// headerLen+plen+crcLen on 32-bit platforms and defeat the torn-
		// tail check. Comparing in uint64 space is exact for any value.
		plen64 := uint64(binary.BigEndian.Uint32(rest[16:]))
		if plen64 > uint64(len(rest)-headerLen-crcLen) {
			return nil // torn tail (or insane length: cannot be a full record)
		}
		plen := int(plen64)
		want := binary.BigEndian.Uint32(rest[headerLen+plen:])
		got := crc32.ChecksumIEEE(rest[:headerLen+plen])
		if want != got {
			if off+headerLen+plen+crcLen >= len(data) {
				return nil // torn tail
			}
			return fmt.Errorf("%w: crc mismatch at offset %d", ErrCorrupt, off)
		}
		if err := fn(seq, recType, rest[headerLen:headerLen+plen]); err != nil {
			return err
		}
		off += headerLen + plen + crcLen
	}
	return nil
}

// Checkpoint discards the log after its state has been captured in backing
// objects. The sequence counter is preserved.
func (l *Log) Checkpoint() error {
	l.syncMu.Lock() // exclude a concurrent store.Sync racing the Reset
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncGen = l.appendGen
	return l.store.Reset()
}
