package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"slice/internal/ensemble"
	"slice/internal/route"
)

// FleetProxies is the largest fleet size the fleet experiment sweeps to
// (powers of two from 1); cmd/slicebench overrides it from -proxies.
var FleetProxies = 4

// fleetServiceTime paces each fleet member for the experiment: one
// member saturates at 1/fleetServiceTime requests per second, so the
// aggregate of a scaled-out fleet should track member count — the
// shared-nothing scaling claim, measurable on one machine.
const fleetServiceTime = 200 * time.Microsecond

// fleetClients is the number of concurrent closed-loop clients. Each
// client is one flow source; the consistent-hash front spreads them
// over the fleet, so there must be comfortably more clients than fleet
// members for every member to own some.
const fleetClients = 24

// fleetMeasure is how long the saturated fleet is sampled per size.
const fleetMeasure = 400 * time.Millisecond

// Fleet measures horizontal µproxy scale-out on the live stack: N
// shared-nothing fleet members behind the flow-hashed front, each paced
// at a fixed per-request service time, driven to saturation by
// closed-loop clients. Aggregate delivered ops/s should grow near-
// linearly with the member count.
func Fleet(w io.Writer) error {
	header(w, "Fleet scale-out: aggregate µproxy throughput",
		"N shared-nothing µproxies over one ensemble, flows spread by the\n"+
			"consistent-hash front; each member is paced (ServiceTime) so one\n"+
			"machine exposes the fleet's aggregate capacity rather than raw\n"+
			"single-core forwarding speed.")

	t := newTable("proxies", "aggregate ops/s", "speedup", "ideal")
	var base float64
	for n := 1; n <= FleetProxies; n *= 2 {
		rate, err := fleetRate(n)
		if err != nil {
			return fmt.Errorf("fleet (%d proxies): %w", n, err)
		}
		if n == 1 {
			base = rate
		}
		t.addf("%d|%.0f|%.2fx|%dx", n, rate, rate/base, n)
	}
	t.write(w)
	fmt.Fprintf(w, "\n  (per-member pace %v -> one member tops out near %.0f ops/s)\n",
		fleetServiceTime, 1/fleetServiceTime.Seconds())
	return nil
}

// fleetRate saturates an n-member fleet and returns aggregate ops/s.
func fleetRate(n int) (float64, error) {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes:     2,
		DirServers:       2,
		SmallFileServers: 1,
		Proxies:          n,
		NameKind:         route.NameHashing,
		ProxyServiceTime: fleetServiceTime,
	})
	if err != nil {
		return 0, err
	}
	defer e.Close()

	stop := make(chan struct{})
	var ops atomic.Int64
	var wg sync.WaitGroup
	var startWG sync.WaitGroup
	startWG.Add(fleetClients)
	begin := make(chan struct{})
	for i := 0; i < fleetClients; i++ {
		c, err := e.NewClient()
		if err != nil {
			close(stop)
			wg.Wait()
			return 0, err
		}
		defer c.Close()
		fh, _, err := c.Create(c.Root(), fmt.Sprintf("probe%d", i), 0o644, false)
		if err != nil {
			close(stop)
			wg.Wait()
			return 0, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			startWG.Done()
			<-begin
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.GetAttr(fh); err != nil {
					return
				}
				ops.Add(1)
			}
		}()
	}
	startWG.Wait()
	close(begin)
	time.Sleep(fleetMeasure)
	total := ops.Load()
	close(stop)
	wg.Wait()
	return float64(total) / fleetMeasure.Seconds(), nil
}
