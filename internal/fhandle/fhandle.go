// Package fhandle defines Slice file handles.
//
// A handle is a fixed 32-byte token, opaque to clients, minted by the
// directory servers. Following §3 and §4.3 of the paper, the handle carries
// the fields the µproxy and the servers key their routing and lookup
// structures on:
//
//   - the volume and fileID identifying the file,
//   - the file type, so the µproxy can classify requests without state,
//   - a cell key placed by the directory server that minted the handle,
//     letting any directory server locate the resident attribute cell,
//   - the logical site that owns the attribute cell (fixed placement),
//   - per-file placement hints (mirror degree) consulted by the I/O
//     routing policies, and
//   - a generation number to fence stale handles after delete/recreate.
package fhandle

import (
	"crypto/hmac"
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"

	"slice/internal/xdr"
)

// Size is the fixed wire size of a file handle in bytes.
const Size = 32

// Flag bits carried in a handle.
const (
	// FlagMirrored marks files whose blocks are replicated across storage
	// nodes according to MirrorDegree.
	FlagMirrored = 1 << 0
	// FlagMapped marks files whose block locations are recorded in
	// per-file block maps at a coordinator, instead of computed by the
	// static placement function.
	FlagMapped = 1 << 1
)

// Handle identifies a file or directory within a Slice volume.
type Handle struct {
	Volume       uint32 // volume identifier (virtual server may host several)
	FileID       uint64 // unique file identifier within the volume
	Type         uint8  // attr.FileType truncated to a byte
	MirrorDegree uint8  // number of replicas for mirrored files (0 or 1 = none)
	Flags        uint16 // placement hint flags
	CellKey      uint64 // directory-server cell locator key
	Site         uint32 // logical site ID of the owning directory server
	Gen          uint32 // generation number
}

// ErrBadHandle indicates a malformed wire handle.
var ErrBadHandle = errors.New("fhandle: bad handle")

// Encode appends the handle to e as fixed-length opaque data.
func (h Handle) Encode(e *xdr.Encoder) {
	var b [Size]byte
	h.marshal(&b)
	e.PutFixedOpaque(b[:])
}

// Decode reads a handle from d.
func Decode(d *xdr.Decoder) (Handle, error) {
	p, err := d.FixedOpaque(Size)
	if err != nil {
		return Handle{}, err
	}
	return Unmarshal(p)
}

func (h Handle) marshal(b *[Size]byte) {
	binary.BigEndian.PutUint32(b[0:], h.Volume)
	binary.BigEndian.PutUint64(b[4:], h.FileID)
	b[12] = h.Type
	b[13] = h.MirrorDegree
	binary.BigEndian.PutUint16(b[14:], h.Flags)
	binary.BigEndian.PutUint64(b[16:], h.CellKey)
	binary.BigEndian.PutUint32(b[24:], h.Site)
	binary.BigEndian.PutUint32(b[28:], h.Gen)
}

// Marshal returns the 32-byte wire form of the handle.
func (h Handle) Marshal() []byte {
	var b [Size]byte
	h.marshal(&b)
	return b[:]
}

// Unmarshal parses a 32-byte wire handle.
func Unmarshal(p []byte) (Handle, error) {
	if len(p) != Size {
		return Handle{}, fmt.Errorf("%w: length %d", ErrBadHandle, len(p))
	}
	return Handle{
		Volume:       binary.BigEndian.Uint32(p[0:]),
		FileID:       binary.BigEndian.Uint64(p[4:]),
		Type:         p[12],
		MirrorDegree: p[13],
		Flags:        binary.BigEndian.Uint16(p[14:]),
		CellKey:      binary.BigEndian.Uint64(p[16:]),
		Site:         binary.BigEndian.Uint32(p[24:]),
		Gen:          binary.BigEndian.Uint32(p[28:]),
	}, nil
}

// IsZero reports whether the handle is the zero handle.
func (h Handle) IsZero() bool { return h == Handle{} }

// Mirrored reports whether the file is mirrored across storage nodes.
func (h Handle) Mirrored() bool { return h.Flags&FlagMirrored != 0 && h.MirrorDegree > 1 }

// Mapped reports whether the file uses coordinator block maps.
func (h Handle) Mapped() bool { return h.Flags&FlagMapped != 0 }

// String renders the handle compactly for logs and errors.
func (h Handle) String() string {
	return fmt.Sprintf("fh{vol=%d id=%d t=%d site=%d gen=%d}",
		h.Volume, h.FileID, h.Type, h.Site, h.Gen)
}

// Key returns a comparable map key for the handle identity (volume, fileID,
// generation). Placement hints are excluded so rerouted copies compare equal.
type Key struct {
	Volume uint32
	FileID uint64
	Gen    uint32
}

// Ident returns the identity key of the handle.
func (h Handle) Ident() Key {
	return Key{Volume: h.Volume, FileID: h.FileID, Gen: h.Gen}
}

// NameKey computes the MD5-based fingerprint over (parent handle, name)
// used to key directory hash chains and the name-hashing routing policy
// (§3.2, §4.3). The paper selected MD5 empirically for its balance. Only
// the parent's identity fields participate: two copies of a handle that
// differ in placement hints or type bits must fingerprint identically, or
// the µproxy and the directory servers would disagree about placement.
func NameKey(parent Handle, name string) uint64 {
	hsh := md5.New()
	var b [Size]byte
	Handle{Volume: parent.Volume, FileID: parent.FileID, Gen: parent.Gen}.marshal(&b)
	hsh.Write(b[:])
	hsh.Write([]byte(name))
	sum := hsh.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8])
}

// Capability computes the keyed fingerprint that authorizes direct access
// to a file's storage objects (§2.2: OBSDs/NASDs allow cryptographic
// protection of storage object identifiers, so untrusted clients cannot
// address storage directly; only principals holding the service key — the
// µproxy and the coordinator — can mint valid capabilities). The
// capability covers the handle's identity fields; it travels in the
// CellKey field of handles sent to storage nodes, which the µproxy
// rewrites in place.
func Capability(key []byte, h Handle) uint64 {
	mac := hmac.New(md5.New, key)
	var b [Size]byte
	Handle{Volume: h.Volume, FileID: h.FileID, Gen: h.Gen}.marshal(&b)
	mac.Write(b[:])
	sum := mac.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8])
}

// WithCapability returns a copy of h carrying the capability for key in
// its CellKey field.
func WithCapability(key []byte, h Handle) Handle {
	h.CellKey = Capability(key, h)
	return h
}

// VerifyCapability reports whether h carries a valid capability for key.
func VerifyCapability(key []byte, h Handle) bool {
	want := Capability(key, h)
	return hmac.Equal(u64bytes(want), u64bytes(h.CellKey))
}

func u64bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// HandleKey computes the MD5 fingerprint of a handle alone, used to select
// small-file servers and coordinators from the fileID, and by storage nodes
// to map handles to backing objects.
func HandleKey(h Handle) uint64 {
	var b [Size]byte
	// Identity only: placement hints must not affect routing of a file
	// whose hints change over its lifetime.
	binary.BigEndian.PutUint32(b[0:], h.Volume)
	binary.BigEndian.PutUint64(b[4:], h.FileID)
	binary.BigEndian.PutUint32(b[28:], h.Gen)
	sum := md5.Sum(b[:])
	return binary.BigEndian.Uint64(sum[:8])
}
