package udpgate_test

import (
	"bytes"
	"testing"

	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/route"
	"slice/internal/udpgate"
)

// TestCrossProcessMountOverUDP drives a full client session over a real
// UDP socket into a running ensemble: the deployment path of cmd/sliced
// and cmd/slicectl.
func TestCrossProcessMountOverUDP(t *testing.T) {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes:     2,
		DirServers:       2,
		SmallFileServers: 1,
		Coordinator:      true,
		NameKind:         route.MkdirSwitching,
		MkdirP:           0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	gw, err := udpgate.NewGateway("127.0.0.1:0", e.Net, e.Virtual)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	conn, err := udpgate.Dial(gw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewWithConn(conn, client.Config{Server: e.Virtual})
	defer c.Close()

	if err := c.Mount(); err != nil {
		t.Fatalf("mount over UDP: %v", err)
	}
	fh, _, err := c.Create(c.Root(), "over-udp", 0o644, true)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	payload := bytes.Repeat([]byte("udp"), 50000) // crosses the threshold
	if err := c.WriteFile(fh, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := c.ReadAll(fh)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read back %d bytes, err %v", len(got), err)
	}
	ents, err := c.ReadDir(c.Root())
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir: %d entries, %v", len(ents), err)
	}

	// A second independent connection sees the same volume.
	conn2, err := udpgate.Dial(gw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c2 := client.NewWithConn(conn2, client.Config{Server: e.Virtual})
	defer c2.Close()
	if err := c2.Mount(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Lookup(c2.Root(), "over-udp"); err != nil {
		t.Fatalf("second client lookup: %v", err)
	}
}
