package fhandle

import (
	"testing"
	"testing/quick"

	"slice/internal/xdr"
)

func sample() Handle {
	return Handle{
		Volume: 1, FileID: 0x123456789A, Type: 1, MirrorDegree: 2,
		Flags: FlagMirrored, CellKey: 0xDEADBEEF, Site: 3, Gen: 7,
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	h := sample()
	p := h.Marshal()
	if len(p) != Size {
		t.Fatalf("marshal size %d, want %d", len(p), Size)
	}
	got, err := Unmarshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip %+v != %+v", got, h)
	}
}

func TestXDRRoundTrip(t *testing.T) {
	h := sample()
	e := xdr.NewEncoder(Size)
	h.Encode(e)
	if e.Len() != Size {
		t.Fatalf("wire size %d", e.Len())
	}
	got, err := Decode(xdr.NewDecoder(e.Bytes()))
	if err != nil || got != h {
		t.Fatalf("decode: %+v, %v", got, err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vol uint32, id uint64, typ, mir uint8, flags uint16, cell uint64, site, gen uint32) bool {
		h := Handle{Volume: vol, FileID: id, Type: typ, MirrorDegree: mir,
			Flags: flags, CellKey: cell, Site: site, Gen: gen}
		got, err := Unmarshal(h.Marshal())
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsBadLength(t *testing.T) {
	if _, err := Unmarshal(make([]byte, Size-1)); err == nil {
		t.Fatal("short handle accepted")
	}
	if _, err := Unmarshal(make([]byte, Size+1)); err == nil {
		t.Fatal("long handle accepted")
	}
}

func TestPredicates(t *testing.T) {
	var zero Handle
	if !zero.IsZero() {
		t.Fatal("zero handle not IsZero")
	}
	h := sample()
	if h.IsZero() {
		t.Fatal("nonzero handle IsZero")
	}
	if !h.Mirrored() {
		t.Fatal("mirrored handle not Mirrored")
	}
	h.MirrorDegree = 1
	if h.Mirrored() {
		t.Fatal("degree-1 handle reported mirrored")
	}
	h.Flags = FlagMapped
	if !h.Mapped() {
		t.Fatal("mapped flag not detected")
	}
}

func TestIdentExcludesHints(t *testing.T) {
	a := sample()
	b := a
	b.MirrorDegree = 0
	b.Flags = 0
	b.Site = 9
	b.CellKey = 1
	b.Type = 2
	if a.Ident() != b.Ident() {
		t.Fatal("identity depends on non-identity fields")
	}
	c := a
	c.Gen++
	if a.Ident() == c.Ident() {
		t.Fatal("generation not part of identity")
	}
}

func TestNameKeyProperties(t *testing.T) {
	parent := sample()
	k1 := NameKey(parent, "file.txt")
	k2 := NameKey(parent, "file.txt")
	if k1 != k2 {
		t.Fatal("NameKey not deterministic")
	}
	if NameKey(parent, "file.txt") == NameKey(parent, "file.txu") {
		t.Fatal("similar names collide (suspicious)")
	}
	other := parent
	other.FileID++
	if NameKey(parent, "x") == NameKey(other, "x") {
		t.Fatal("same name under different parents collides (suspicious)")
	}
}

// TestNameKeyBalance verifies the MD5 fingerprint spreads names evenly
// over sites — the property the paper chose MD5 for (§4.1).
func TestNameKeyBalance(t *testing.T) {
	parent := sample()
	const sites = 8
	const names = 8000
	var counts [sites]int
	for i := 0; i < names; i++ {
		k := NameKey(parent, "entry"+string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)))
		counts[k%sites]++
	}
	mean := names / sites
	for s, c := range counts {
		if c < mean*7/10 || c > mean*13/10 {
			t.Fatalf("site %d holds %d of %d names (mean %d): poor balance", s, c, names, mean)
		}
	}
}

func TestHandleKeyIgnoresHints(t *testing.T) {
	a := sample()
	b := a
	b.Flags = 0
	b.MirrorDegree = 0
	b.Site = 99
	b.Type = 2
	b.CellKey = 0
	if HandleKey(a) != HandleKey(b) {
		t.Fatal("HandleKey depends on placement hints")
	}
	c := a
	c.FileID++
	if HandleKey(a) == HandleKey(c) {
		t.Fatal("different files share a handle key (suspicious)")
	}
}

func TestString(t *testing.T) {
	if sample().String() == "" {
		t.Fatal("empty String()")
	}
}

func TestCapability(t *testing.T) {
	key := []byte("service secret")
	h := sample()
	capped := WithCapability(key, h)
	if !VerifyCapability(key, capped) {
		t.Fatal("minted capability does not verify")
	}
	if VerifyCapability([]byte("other key"), capped) {
		t.Fatal("capability verified under the wrong key")
	}
	if VerifyCapability(key, h) {
		t.Fatal("raw handle verified without a capability")
	}
	// The capability covers identity only: placement hints may differ.
	hinted := capped
	hinted.Flags |= FlagMapped
	hinted.MirrorDegree = 3
	if !VerifyCapability(key, hinted) {
		t.Fatal("hint changes invalidated the capability")
	}
	// Identity changes invalidate it.
	forged := capped
	forged.FileID++
	if VerifyCapability(key, forged) {
		t.Fatal("capability transferred to another file")
	}
	forged = capped
	forged.Gen++
	if VerifyCapability(key, forged) {
		t.Fatal("capability survived a generation bump")
	}
}

func TestCapabilityDeterministic(t *testing.T) {
	key := []byte("k")
	h := sample()
	if Capability(key, h) != Capability(key, h) {
		t.Fatal("capability not deterministic")
	}
}
