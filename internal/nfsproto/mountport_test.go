package nfsproto

import (
	"bytes"
	"testing"

	"slice/internal/xdr"
)

func TestMountPortmapRoundTrip(t *testing.T) {
	pairs := []struct{ in, out Msg }{
		{&Mapping{Prog: Program, Vers: Version, Prot: IPProtoTCP, Port: 2049}, &Mapping{}},
		{&Mapping{Prog: MountProgram, Vers: MountVersion, Prot: IPProtoUDP}, &Mapping{}},
		{&GetPortRes{Port: 32771}, &GetPortRes{}},
		{&DumpRes{}, &DumpRes{}},
		{&DumpRes{Mappings: []Mapping{
			{Prog: PortmapProgram, Vers: PortmapVersion, Prot: IPProtoTCP, Port: 111},
			{Prog: Program, Vers: Version, Prot: IPProtoTCP, Port: 2049},
			{Prog: MountProgram, Vers: MountVersion, Prot: IPProtoTCP, Port: 2049},
		}}, &DumpRes{}},
		{&MountPathArgs{Path: "/"}, &MountPathArgs{}},
		{&MountPathArgs{Path: "/export/vol0"}, &MountPathArgs{}},
		{&MountMntRes{Status: OK, FH: fh(1)}, &MountMntRes{}},
		{&MountMntRes{Status: ErrNoEnt}, &MountMntRes{}},
		{&ExportRes{}, &ExportRes{}},
		{&ExportRes{Entries: []ExportEntry{
			{Dir: "/"},
			{Dir: "/export/vol0", Groups: []string{"lab", "cluster"}},
		}}, &ExportRes{}},
	}
	for _, p := range pairs {
		in, out := p.in, p.out
		e := xdr.NewEncoder(256)
		in.Encode(e)
		if err := out.Decode(xdr.NewDecoder(e.Bytes())); err != nil {
			t.Fatalf("%T decode: %v", in, err)
		}
		// Re-encode and compare bytes: DeepEqual trips over nil-vs-empty
		// slices in the list messages, byte equality does not.
		e2 := xdr.NewEncoder(256)
		out.Encode(e2)
		if !bytes.Equal(e.Bytes(), e2.Bytes()) {
			t.Fatalf("%T re-encode mismatch:\n in: %x\nout: %x", in, e.Bytes(), e2.Bytes())
		}
	}
}

func TestMountPathTooLongRejected(t *testing.T) {
	e := xdr.NewEncoder(2048)
	e.PutString(string(make([]byte, MountPathLen+1)))
	var m MountPathArgs
	if err := m.Decode(xdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("oversized dirpath accepted")
	}
}

func TestDumpResTruncatedListRejected(t *testing.T) {
	e := xdr.NewEncoder(64)
	e.PutBool(true) // "an entry follows" — but nothing does
	var m DumpRes
	if err := m.Decode(xdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("truncated mapping list accepted")
	}
}

func TestExportResRunawayListRejected(t *testing.T) {
	// maxListEntries+1 well-formed entries must be rejected, not decoded.
	e := xdr.NewEncoder(1 << 16)
	for i := 0; i <= maxListEntries; i++ {
		e.PutBool(true)
		e.PutString("/x")
		e.PutBool(false)
	}
	e.PutBool(false)
	var m ExportRes
	if err := m.Decode(xdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("runaway export list accepted")
	}
}

// FuzzParseMountPortmap ensures the MOUNT and portmap decoders never
// panic on hostile bytes, and that anything accepted re-encodes to a form
// that decodes identically (the round-trip invariant).
func FuzzParseMountPortmap(f *testing.F) {
	seed := func(m Msg) []byte {
		e := xdr.NewEncoder(256)
		m.Encode(e)
		return e.Bytes()
	}
	f.Add(uint32(0), seed(&Mapping{Prog: Program, Vers: Version, Prot: IPProtoTCP, Port: 2049}))
	f.Add(uint32(1), seed(&GetPortRes{Port: 2049}))
	f.Add(uint32(2), seed(&DumpRes{Mappings: []Mapping{{Prog: MountProgram, Vers: MountVersion, Prot: IPProtoTCP, Port: 2049}}}))
	f.Add(uint32(3), seed(&MountPathArgs{Path: "/export"}))
	f.Add(uint32(4), seed(&MountMntRes{Status: OK, FH: fh(7)}))
	f.Add(uint32(5), seed(&ExportRes{Entries: []ExportEntry{{Dir: "/", Groups: []string{"g"}}}}))
	f.Add(uint32(5), []byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, kind uint32, body []byte) {
		var m Msg
		switch kind % 6 {
		case 0:
			m = &Mapping{}
		case 1:
			m = &GetPortRes{}
		case 2:
			m = &DumpRes{}
		case 3:
			m = &MountPathArgs{}
		case 4:
			m = &MountMntRes{}
		case 5:
			m = &ExportRes{}
		}
		if err := m.Decode(xdr.NewDecoder(body)); err != nil {
			return
		}
		e := xdr.NewEncoder(len(body))
		m.Encode(e)
		if err := m.Decode(xdr.NewDecoder(e.Bytes())); err != nil {
			t.Fatalf("%T rejected its own re-encoding: %v", m, err)
		}
	})
}
