package dirsrv

import (
	"sync"

	"slice/internal/attr"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/route"
	"slice/internal/wal"
	"slice/internal/xdr"
)

// MountProgram is the RPC program returning the root file handle of a
// volume — the NFS MOUNT protocol. Constants are aliased from nfsproto,
// where the message definitions live.
const (
	MountProgram = nfsproto.MountProgram
	MountVersion = nfsproto.MountVersion
	MountProcMnt = nfsproto.MountProcMnt
)

// ExportPath is the single dirpath this volume exports. MNT accepts it,
// "/", or an empty/absent argument (the in-fabric client sends none).
const ExportPath = "/export/slice"

// Config configures a directory server.
type Config struct {
	// Site is this server's logical site ID.
	Site uint32
	// Volume is the volume this server participates in.
	Volume uint32
	// Kind selects the name-space policy the ensemble runs; it affects
	// how this server resolves cross-site structures (readdir, rmdir).
	Kind route.NameKind
	// Table maps logical directory sites to physical servers, for peer
	// calls.
	Table *route.Table
	// Log is the server's write-ahead journal.
	Log *wal.Log
	// Net is the fabric, used to bind peer-client ports.
	Net *netsim.Network
	// Host is this server's host address for peer-client ports.
	Host uint32
	// Clock supplies timestamps; nil uses the wall clock.
	Clock func() attr.Time
	// MirrorDegree, when >1, stamps newly minted regular-file handles
	// with mirrored-striping hints (per-file placement policy, §3.1).
	MirrorDegree uint8
	// UseMaps stamps newly minted regular-file handles with the
	// block-map hint, directing the µproxy to coordinator-managed
	// placement instead of the static striping function.
	UseMaps bool
}

// Server is one Slice directory server site.
type Server struct {
	site   uint32
	vol    uint32
	kind   route.NameKind
	table  *route.Table
	net    *netsim.Network
	host   uint32
	clock  func() attr.Time
	mirror uint8
	maps   bool

	mu     sync.Mutex
	st     *state
	log    *wal.Log
	rootFH fhandle.Handle
	ct     Counters

	peersMu sync.Mutex
	peers   map[netsim.Addr]*oncrpc.Client

	srv *oncrpc.Server
}

// New starts a directory server on the given service port.
func New(port *netsim.Port, cfg Config) *Server {
	s := newServer(cfg)
	s.srv = oncrpc.NewServer(port, oncrpc.HandlerFunc(s.serve))
	return s
}

// Restart builds a directory server recovered from a snapshot (nil for
// none) plus its surviving journal BEFORE it begins serving on port, so
// no request can observe pre-recovery state. The restarted server keeps
// journaling to the same log it replayed, so a later crash recovers from
// the full record sequence. This is the uniform manager failover path of
// §2.3: state = backing object + write-ahead log replay. The caller
// re-installs the volume root with SetRoot and republishes the server's
// address in the routing table.
func Restart(port *netsim.Port, cfg Config, snapshot []byte, log *wal.Log) (*Server, error) {
	cfg.Log = log
	s := newServer(cfg)
	if err := s.Recover(snapshot, log); err != nil {
		return nil, err
	}
	s.srv = oncrpc.NewServer(port, oncrpc.HandlerFunc(s.serve))
	return s, nil
}

func newServer(cfg Config) *Server {
	return &Server{
		site:   cfg.Site,
		vol:    cfg.Volume,
		kind:   cfg.Kind,
		table:  cfg.Table,
		net:    cfg.Net,
		host:   cfg.Host,
		clock:  cfg.Clock,
		mirror: cfg.MirrorDegree,
		maps:   cfg.UseMaps,
		st:     newState(),
		log:    cfg.Log,
		peers:  make(map[netsim.Addr]*oncrpc.Client),
	}
}

// Site returns the server's logical site ID.
func (s *Server) Site() uint32 { return s.site }

// Addr returns the server's service address.
func (s *Server) Addr() netsim.Addr { return s.srv.Addr() }

// SetObs attaches a histogram registry recording per-procedure handler
// latency (nil detaches). A restarted server is re-attached to the same
// registry, so counts accumulate across failovers.
func (s *Server) SetObs(reg *obs.Registry) {
	if reg == nil {
		s.srv.SetObserver(nil)
		return
	}
	s.srv.SetObserver(reg.ObserveRPC)
}

// Log returns the server's journal (for stats and failover tests).
func (s *Server) Log() *wal.Log { return s.log }

// Counters returns a snapshot of the server's activity counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ct
}

func (s *Server) addCounter(f func(*Counters)) {
	s.mu.Lock()
	f(&s.ct)
	s.mu.Unlock()
}

// Close shuts the server down.
func (s *Server) Close() {
	s.srv.Close()
	s.peersMu.Lock()
	for _, c := range s.peers {
		c.Close()
	}
	s.peersMu.Unlock()
}

// CreateRoot mints the volume root directory. The ensemble calls it once,
// on the site that owns the root.
func (s *Server) CreateRoot() (fhandle.Handle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.rootFH.IsZero() {
		return s.rootFH, nil
	}
	now := s.now()
	fh := s.mintLocked(uint8(attr.TypeDir))
	cell := &attrCell{fh: fh, at: attr.Attr{
		Type: attr.TypeDir, Mode: 0o755, Nlink: 2,
		FileID: fh.FileID, Atime: now, Mtime: now, Ctime: now,
	}}
	s.st.attrs[fh.FileID] = cell
	s.rootFH = fh
	if _, err := s.log.AppendSync(recNewCell, encodeCellRecord(fh, &cell.at)); err != nil {
		return fhandle.Handle{}, err
	}
	return fh, nil
}

// SetRoot installs an existing root handle (on non-owner sites, so they
// can serve MOUNT too).
func (s *Server) SetRoot(fh fhandle.Handle) {
	s.mu.Lock()
	s.rootFH = fh
	s.mu.Unlock()
}

// mintLocked allocates a fresh file handle owned by this site. Regular
// files carry the ensemble's per-file placement hints (mirroring, block
// maps) so the µproxy can route their I/O without extra state (§3.1).
func (s *Server) mintLocked(ftype uint8) fhandle.Handle {
	s.st.nextID++
	seq := s.st.nextID
	fh := fhandle.Handle{
		Volume:  s.vol,
		FileID:  uint64(s.site+1)<<40 | seq,
		Type:    ftype,
		CellKey: uint64(s.site+1)<<40 | seq,
		Site:    s.site,
		Gen:     1,
	}
	if ftype == uint8(attr.TypeReg) {
		if s.mirror > 1 {
			fh.MirrorDegree = s.mirror
			fh.Flags |= fhandle.FlagMirrored
		}
		if s.maps {
			fh.Flags |= fhandle.FlagMapped
		}
	}
	return fh
}

// serve dispatches RPC calls by program.
func (s *Server) serve(call oncrpc.Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
	switch call.Program {
	case nfsproto.Program:
		return s.serveNFS(call)
	case PeerProgram:
		return s.servePeer(call)
	case MountProgram:
		return s.serveMount(call)
	default:
		return nil, oncrpc.AcceptProgUnavail
	}
}

func (s *Server) serveMount(call oncrpc.Call) (func(*xdr.Encoder), uint32) {
	switch call.Proc {
	case nfsproto.MountProcNull:
		return func(*xdr.Encoder) {}, oncrpc.AcceptSuccess

	case nfsproto.MountProcMnt:
		// The dirpath argument is optional for back-compatibility: the
		// in-fabric client has always sent a bare MNT. When present it
		// must name the export (or "/").
		if len(call.Body) > 0 {
			var args nfsproto.MountPathArgs
			if err := args.Decode(xdr.NewDecoder(call.Body)); err != nil {
				return nil, oncrpc.AcceptGarbageArgs
			}
			if args.Path != "" && args.Path != "/" && args.Path != ExportPath {
				res := nfsproto.MountMntRes{Status: nfsproto.ErrNoEnt}
				return res.Encode, oncrpc.AcceptSuccess
			}
		}
		s.mu.Lock()
		fh := s.rootFH
		s.mu.Unlock()
		res := nfsproto.MountMntRes{Status: nfsproto.OK, FH: fh}
		if fh.IsZero() {
			res = nfsproto.MountMntRes{Status: nfsproto.ErrNoEnt}
		}
		return res.Encode, oncrpc.AcceptSuccess

	case nfsproto.MountProcUmnt:
		// Stateless server: nothing to tear down, but the argument must
		// still be well formed.
		if len(call.Body) > 0 {
			var args nfsproto.MountPathArgs
			if err := args.Decode(xdr.NewDecoder(call.Body)); err != nil {
				return nil, oncrpc.AcceptGarbageArgs
			}
		}
		return func(*xdr.Encoder) {}, oncrpc.AcceptSuccess

	case nfsproto.MountProcUmntAll:
		return func(*xdr.Encoder) {}, oncrpc.AcceptSuccess

	case nfsproto.MountProcExport:
		res := nfsproto.ExportRes{Entries: []nfsproto.ExportEntry{{Dir: ExportPath}}}
		return res.Encode, oncrpc.AcceptSuccess

	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}

func (s *Server) serveNFS(call oncrpc.Call) (func(*xdr.Encoder), uint32) {
	s.addCounter(func(ct *Counters) { ct.Ops++ })
	d := xdr.NewDecoder(call.Body)
	switch nfsproto.Proc(call.Proc) {
	case nfsproto.ProcNull:
		return func(e *xdr.Encoder) {}, oncrpc.AcceptSuccess
	case nfsproto.ProcGetAttr:
		var a nfsproto.GetAttrArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.getattr(&a) })
	case nfsproto.ProcSetAttr:
		var a nfsproto.SetAttrArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.setattr(&a) })
	case nfsproto.ProcLookup:
		var a nfsproto.LookupArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.lookup(&a) })
	case nfsproto.ProcAccess:
		var a nfsproto.AccessArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.access(&a) })
	case nfsproto.ProcCreate:
		var a nfsproto.CreateArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.create(&a) })
	case nfsproto.ProcSymlink:
		var a nfsproto.SymlinkArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.symlink(&a) })
	case nfsproto.ProcReadLink:
		var a nfsproto.ReadLinkArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.readlink(&a) })
	case nfsproto.ProcMkdir:
		var a nfsproto.CreateArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.mkdir(&a) })
	case nfsproto.ProcRemove:
		var a nfsproto.RemoveArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.remove(&a) })
	case nfsproto.ProcRmdir:
		var a nfsproto.RemoveArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.rmdir(&a) })
	case nfsproto.ProcRename:
		var a nfsproto.RenameArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.rename(&a) })
	case nfsproto.ProcLink:
		var a nfsproto.LinkArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.link(&a) })
	case nfsproto.ProcReadDir:
		var a nfsproto.ReadDirArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.readdir(&a) })
	case nfsproto.ProcFsStat:
		var a nfsproto.FsStatArgs
		return decodeAndRun(d, &a, func() nfsproto.Msg { return s.fsstat(&a) })
	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}

func decodeAndRun(d *xdr.Decoder, args nfsproto.Msg, run func() nfsproto.Msg) (func(*xdr.Encoder), uint32) {
	if err := args.Decode(d); err != nil {
		return nil, oncrpc.AcceptGarbageArgs
	}
	res := run()
	return res.Encode, oncrpc.AcceptSuccess
}

// dirSites returns the number of logical directory sites.
func (s *Server) dirSites() int {
	n := s.table.NumLogical()
	if n < 1 {
		return 1
	}
	return n
}

// ownsHandle reports whether fh's attribute cell should live here.
func (s *Server) ownsHandle(fh fhandle.Handle) bool {
	return fh.Site%uint32(s.dirSites()) == s.site
}

// --------------------------------------------------------- local helpers
//
// local* methods implement single-site mutations. They take s.mu, journal
// the mutation, and return NFS statuses. They never call peers, so peer
// handlers built on them are leaves of the call graph.

func (s *Server) localGetAttrByKey(key uint64) (nfsproto.Status, attr.Attr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.st.attrs[key]
	if c == nil {
		return nfsproto.ErrStale, attr.Attr{}
	}
	return nfsproto.OK, c.at
}

func (s *Server) localSetAttrByKey(key uint64, sa *attr.SetAttr) (nfsproto.Status, attr.Attr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.st.attrs[key]
	if c == nil {
		return nfsproto.ErrStale, attr.Attr{}
	}
	sa.Apply(&c.at, s.now())
	if _, err := s.log.AppendSync(recSetAttr, encodeCellRecord(c.fh, &c.at)); err != nil {
		return nfsproto.ErrIO, attr.Attr{}
	}
	return nfsproto.OK, c.at
}

// localInsertEntry inserts a name entry (and, for directory children,
// bumps the parent link count). touchParent updates the parent cell if it
// is resident.
func (s *Server) localInsertEntry(parent fhandle.Handle, name string, child fhandle.Handle, touchParent bool) nfsproto.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st.findEntry(parent, name) != nil {
		return nfsproto.ErrExist
	}
	if touchParent {
		if pc := s.st.attrs[parent.FileID]; pc != nil {
			now := s.now()
			pc.at.Mtime = now
			pc.at.Ctime = now
			if child.Type == uint8(attr.TypeDir) {
				pc.at.Nlink++
			}
			if _, err := s.log.Append(recTouch, encodeCellRecord(pc.fh, &pc.at)); err != nil {
				return nfsproto.ErrIO
			}
		} else if s.ownsHandle(parent) {
			// The parent should be here but its cell is gone: it was
			// removed concurrently.
			return nfsproto.ErrStale
		}
	}
	c := &nameCell{parent: parent.Ident(), name: name, child: child}
	s.st.insertEntry(c)
	if _, err := s.log.AppendSync(recInsert, encodeEntryRecord(parent, name, child)); err != nil {
		return nfsproto.ErrIO
	}
	return nfsproto.OK
}

// localRemoveEntry removes a name entry and returns the child handle.
func (s *Server) localRemoveEntry(parent fhandle.Handle, name string, touchParent bool) (nfsproto.Status, fhandle.Handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.st.removeEntry(parent, name)
	if c == nil {
		return nfsproto.ErrNoEnt, fhandle.Handle{}
	}
	if touchParent {
		if pc := s.st.attrs[parent.FileID]; pc != nil {
			now := s.now()
			pc.at.Mtime = now
			pc.at.Ctime = now
			if c.child.Type == uint8(attr.TypeDir) && pc.at.Nlink > 2 {
				pc.at.Nlink--
			}
			if _, err := s.log.Append(recTouch, encodeCellRecord(pc.fh, &pc.at)); err != nil {
				return nfsproto.ErrIO, fhandle.Handle{}
			}
		}
	}
	if _, err := s.log.AppendSync(recRemove, encodeEntryRecord(parent, name, c.child)); err != nil {
		return nfsproto.ErrIO, fhandle.Handle{}
	}
	return nfsproto.OK, c.child
}

// localTouchDir updates a resident directory cell's mtime and link count.
func (s *Server) localTouchDir(key uint64, nlinkDelta int32) nfsproto.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.st.attrs[key]
	if c == nil {
		return nfsproto.ErrStale
	}
	now := s.now()
	c.at.Mtime = now
	c.at.Ctime = now
	newNlink := int64(c.at.Nlink) + int64(nlinkDelta)
	if newNlink < 0 {
		newNlink = 0
	}
	c.at.Nlink = uint32(newNlink)
	if _, err := s.log.AppendSync(recTouch, encodeCellRecord(c.fh, &c.at)); err != nil {
		return nfsproto.ErrIO
	}
	return nfsproto.OK
}

// localRemoveDirCell removes a resident directory attribute cell after
// verifying the directory has no local entries. checkEmpty is false when
// the caller has already performed a global emptiness check.
func (s *Server) localRemoveDirCell(child fhandle.Handle, checkEmpty bool) nfsproto.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.st.attrs[child.FileID]
	if c == nil {
		return nfsproto.ErrStale
	}
	if c.at.Type != attr.TypeDir {
		return nfsproto.ErrNotDir
	}
	if checkEmpty && len(s.st.byDir[child.Ident()]) > 0 {
		return nfsproto.ErrNotEmpty
	}
	delete(s.st.attrs, child.FileID)
	if _, err := s.log.AppendSync(recCellGone, encodeCellRecord(child, &c.at)); err != nil {
		return nfsproto.ErrIO
	}
	return nfsproto.OK
}

// localLinkDelta adjusts a file cell's link count, removing the cell when
// it reaches zero. Returns the new link count.
func (s *Server) localLinkDelta(key uint64, delta int32) (nfsproto.Status, uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.st.attrs[key]
	if c == nil {
		return nfsproto.ErrStale, 0
	}
	newNlink := int64(c.at.Nlink) + int64(delta)
	if newNlink < 0 {
		newNlink = 0
	}
	c.at.Nlink = uint32(newNlink)
	c.at.Ctime = s.now()
	if c.at.Nlink == 0 && c.at.Type != attr.TypeDir {
		delete(s.st.attrs, key)
		if _, err := s.log.AppendSync(recCellGone, encodeCellRecord(c.fh, &c.at)); err != nil {
			return nfsproto.ErrIO, 0
		}
		return nfsproto.OK, 0
	}
	if _, err := s.log.AppendSync(recLinkDel, encodeCellRecord(c.fh, &c.at)); err != nil {
		return nfsproto.ErrIO, 0
	}
	return nfsproto.OK, c.at.Nlink
}

// localListDir returns the local entries of parent.
func (s *Server) localListDir(parent fhandle.Key) []remoteEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents := s.st.entriesOf(parent)
	out := make([]remoteEntry, len(ents))
	for i, c := range ents {
		out[i] = remoteEntry{name: c.name, child: c.child}
	}
	return out
}
