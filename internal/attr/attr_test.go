package attr

import (
	"testing"
	"testing/quick"
	"time"

	"slice/internal/xdr"
)

func TestAttrRoundTrip(t *testing.T) {
	a := Attr{
		Type: TypeReg, Mode: 0o644, Nlink: 3, UID: 10, GID: 20,
		Size: 123456789, Used: 123460000, FileID: 42,
		Atime: Time{Sec: 100, Nsec: 1}, Mtime: Time{Sec: 200, Nsec: 2},
		Ctime: Time{Sec: 300, Nsec: 3},
	}
	e := xdr.NewEncoder(EncodedSize)
	a.Encode(e)
	if e.Len() != EncodedSize {
		t.Fatalf("encoded size %d, want %d", e.Len(), EncodedSize)
	}
	var b Attr
	if err := b.Decode(xdr.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("round trip: %+v != %+v", a, b)
	}
}

func TestAttrRoundTripProperty(t *testing.T) {
	f := func(mode, nlink, uid, gid uint32, size, used, id uint64, s1, s2, s3 uint64) bool {
		a := Attr{
			Type: TypeDir, Mode: mode, Nlink: nlink, UID: uid, GID: gid,
			Size: size, Used: used, FileID: id,
			Atime: Time{Sec: s1}, Mtime: Time{Sec: s2}, Ctime: Time{Sec: s3},
		}
		e := xdr.NewEncoder(EncodedSize)
		a.Encode(e)
		var b Attr
		if err := b.Decode(xdr.NewDecoder(e.Bytes())); err != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetAttrRoundTripAllCombinations(t *testing.T) {
	// Exercise every subset of the six optional fields.
	for mask := 0; mask < 64; mask++ {
		s := SetAttr{
			SetMode: mask&1 != 0, Mode: 0o755,
			SetUID: mask&2 != 0, UID: 11,
			SetGID: mask&4 != 0, GID: 22,
			SetSize: mask&8 != 0, Size: 999,
			SetAtime: mask&16 != 0, Atime: Time{Sec: 5},
			SetMtime: mask&32 != 0, Mtime: Time{Sec: 6},
		}
		e := xdr.NewEncoder(64)
		s.Encode(e)
		var got SetAttr
		if err := got.Decode(xdr.NewDecoder(e.Bytes())); err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		// Unset fields decode to zero values; normalize before compare.
		want := s
		if !want.SetMode {
			want.Mode = 0
		}
		if !want.SetUID {
			want.UID = 0
		}
		if !want.SetGID {
			want.GID = 0
		}
		if !want.SetSize {
			want.Size = 0
		}
		if !want.SetAtime {
			want.Atime = Time{}
		}
		if !want.SetMtime {
			want.Mtime = Time{}
		}
		if got != want {
			t.Fatalf("mask %d: %+v != %+v", mask, got, want)
		}
	}
}

func TestApply(t *testing.T) {
	a := Attr{Mode: 0o644, Size: 100, Mtime: Time{Sec: 1}}
	now := Time{Sec: 50}
	s := SetAttr{SetSize: true, Size: 10, SetMode: true, Mode: 0o600}
	s.Apply(&a, now)
	if a.Size != 10 || a.Mode != 0o600 {
		t.Fatalf("apply: %+v", a)
	}
	if a.Mtime != now {
		t.Fatal("size change did not update mtime")
	}
	if a.Ctime != now {
		t.Fatal("apply did not stamp ctime")
	}

	// Explicit mtime wins over the implicit size-change stamp.
	s2 := SetAttr{SetSize: true, Size: 5, SetMtime: true, Mtime: Time{Sec: 7}}
	s2.Apply(&a, Time{Sec: 60})
	if a.Mtime != (Time{Sec: 7}) {
		t.Fatalf("explicit mtime not honored: %+v", a.Mtime)
	}
}

func TestTimeConversions(t *testing.T) {
	g := time.Unix(1700000000, 123456789)
	w := FromGo(g)
	if w.Sec != 1700000000 || w.Nsec != 123456789 {
		t.Fatalf("FromGo: %+v", w)
	}
	if !w.Go().Equal(g) {
		t.Fatal("Go() round trip failed")
	}
	if !(Time{Sec: 1}).Before(Time{Sec: 2}) {
		t.Fatal("Before by seconds")
	}
	if !(Time{Sec: 1, Nsec: 1}).Before(Time{Sec: 1, Nsec: 2}) {
		t.Fatal("Before by nanoseconds")
	}
	if (Time{Sec: 2}).Before(Time{Sec: 1}) {
		t.Fatal("Before inverted")
	}
}

func TestFileTypeString(t *testing.T) {
	if TypeReg.String() != "REG" || TypeDir.String() != "DIR" || TypeLink.String() != "LNK" {
		t.Fatal("file type names")
	}
	if FileType(99).String() == "" {
		t.Fatal("unknown type has empty name")
	}
}
