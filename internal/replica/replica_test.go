package replica

import (
	"sync"
	"testing"

	"slice/internal/fhandle"
	"slice/internal/netsim"
)

func addrs(n int) []netsim.Addr {
	out := make([]netsim.Addr, n)
	for i := range out {
		out[i] = netsim.Addr{Host: uint32(10 + i), Port: 2049}
	}
	return out
}

func TestMapPartitionsConsecutive(t *testing.T) {
	nodes := addrs(6)
	m := NewMap(2, nodes)
	if got := m.NumGroups(); got != 3 {
		t.Fatalf("NumGroups = %d, want 3", got)
	}
	if got := m.Slots(); got != 6 {
		t.Fatalf("Slots = %d, want 6", got)
	}
	for i, g := range m.Groups() {
		if g.ID != uint32(i) {
			t.Fatalf("group %d has ID %d", i, g.ID)
		}
		if len(g.Members) != 2 {
			t.Fatalf("group %d has %d members", i, len(g.Members))
		}
		if g.Members[0] != nodes[2*i] || g.Members[1] != nodes[2*i+1] {
			t.Fatalf("group %d members %v not consecutive", i, g.Members)
		}
		got, ok := m.GroupOf(g.Members[0])
		if !ok || got.ID != g.ID {
			t.Fatalf("GroupOf(primary of %d) = %v, %v", i, got, ok)
		}
		// Non-primaries are not lookup keys: the routing table only
		// resolves to primaries.
		if _, ok := m.GroupOf(g.Members[1]); ok {
			t.Fatalf("GroupOf matched a non-primary of group %d", i)
		}
	}
}

func TestMapRemainderFoldsIntoLastGroup(t *testing.T) {
	m := NewMap(2, addrs(5))
	if got := m.NumGroups(); got != 2 {
		t.Fatalf("NumGroups = %d, want 2", got)
	}
	if got := len(m.Groups()[1].Members); got != 3 {
		t.Fatalf("last group has %d members, want 3", got)
	}
}

func TestMapDegreeOneExpandsNothing(t *testing.T) {
	m := NewMap(1, addrs(4))
	if m.Replicated() {
		t.Fatal("degree-1 map claims to replicate")
	}
	if _, ok := m.GroupOf(addrs(4)[0]); ok {
		t.Fatal("degree-1 map resolved a group")
	}
	var nilMap *Map
	if nilMap.Replicated() {
		t.Fatal("nil map claims to replicate")
	}
}

func TestMapSwapBumpsVersion(t *testing.T) {
	m := NewMap(2, addrs(4))
	v := m.Version()
	m.Swap(addrs(4))
	if m.Version() != v+1 {
		t.Fatalf("version %d after swap, want %d", m.Version(), v+1)
	}
	if m.Degree() != 2 {
		t.Fatalf("swap changed degree to %d", m.Degree())
	}
}

func TestPick2DistinctAndCovering(t *testing.T) {
	for n := 2; n <= 4; n++ {
		seen := make(map[int]int)
		for h := uint64(0); h < 4096; h++ {
			i, j := Pick2(n, h)
			if i == j {
				t.Fatalf("n=%d h=%d: identical candidates %d", n, h, i)
			}
			if i < 0 || i >= n || j < 0 || j >= n {
				t.Fatalf("n=%d: candidates %d,%d out of range", n, i, j)
			}
			seen[i]++
			seen[j]++
		}
		for s := 0; s < n; s++ {
			if seen[s] == 0 {
				t.Fatalf("n=%d: slot %d never a candidate", n, s)
			}
		}
	}
	if i, j := Pick2(1, 7); i != 0 || j != 0 {
		t.Fatalf("Pick2(1) = %d,%d", i, j)
	}
}

func key(id uint64) fhandle.Key {
	return fhandle.Handle{Volume: 1, FileID: id, Gen: 1}.Ident()
}

func TestDirtySetCounts(t *testing.T) {
	d := NewDirtySet()
	k := key(7)
	if d.Dirty(k) || d.Len() != 0 {
		t.Fatal("fresh set not clean")
	}
	d.MarkWrite(k)
	d.MarkWrite(k) // a second overlapping write
	if !d.Dirty(k) || d.Len() != 1 {
		t.Fatalf("after two marks: dirty=%v len=%d", d.Dirty(k), d.Len())
	}
	d.ClearWrite(k)
	if !d.Dirty(k) {
		t.Fatal("object went clean with a write still in flight")
	}
	d.ClearWrite(k)
	if d.Dirty(k) || d.Len() != 0 {
		t.Fatalf("after paired clears: dirty=%v len=%d", d.Dirty(k), d.Len())
	}
	// Unpaired clear is a no-op, not an underflow.
	d.ClearWrite(k)
	d.MarkWrite(k)
	if !d.Dirty(k) || d.Len() != 1 {
		t.Fatal("stray clear corrupted the count")
	}
	d.ForceClear(k)
	if d.Dirty(k) || d.Len() != 0 {
		t.Fatal("ForceClear left the entry")
	}
}

func TestDirtySetReset(t *testing.T) {
	d := NewDirtySet()
	for i := uint64(0); i < 64; i++ {
		d.MarkWrite(key(i))
	}
	if d.Len() != 64 {
		t.Fatalf("Len = %d, want 64", d.Len())
	}
	d.Reset()
	if d.Len() != 0 || d.Dirty(key(3)) {
		t.Fatal("Reset left entries")
	}
}

func TestDirtySetConcurrent(t *testing.T) {
	d := NewDirtySet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key(uint64(i % 97))
				d.MarkWrite(k)
				d.ClearWrite(k)
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != 0 {
		t.Fatalf("paired mark/clear from 8 writers left Len=%d", d.Len())
	}
}

func TestPeerToken(t *testing.T) {
	if PeerToken(nil) != 0 {
		t.Fatal("nil key should yield the zero token")
	}
	a := PeerToken([]byte("key-a"))
	b := PeerToken([]byte("key-b"))
	if a == 0 || b == 0 || a == b {
		t.Fatalf("tokens not distinct: %x %x", a, b)
	}
	if a != PeerToken([]byte("key-a")) {
		t.Fatal("token not deterministic")
	}
}
