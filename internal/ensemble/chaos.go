package ensemble

import (
	"fmt"

	"slice/internal/coord"
	"slice/internal/dirsrv"
	"slice/internal/netsim"
	"slice/internal/oncrpc"
	"slice/internal/proxy"
	"slice/internal/replica"
	"slice/internal/route"
	"slice/internal/smallfile"
	"slice/internal/storage"
	"slice/internal/wal"
)

// Chaos drives component failures and recoveries against a running
// ensemble. Crashes go through the fabric's fault plane — the victim's
// ports are torn down and in-flight datagrams to it are lost, exactly as
// a machine failure would look from the network — and restarts rebuild
// the component from the durable prefix of its journal (§2.3), rewiring
// the shared routing tables or the µproxy's coordinator address so
// clients recover through ordinary retransmission (§2.1).
type Chaos struct {
	e *Ensemble
}

// Chaos returns the fault controller for this ensemble.
func (e *Ensemble) Chaos() *Chaos { return &Chaos{e: e} }

// rebind swaps old for new in a routing table, preserving every other
// logical site's binding.
func rebind(t *route.Table, oldA, newA netsim.Addr) {
	phys := t.Physical()
	for i, a := range phys {
		if a == oldA {
			phys[i] = newA
		}
	}
	t.Swap(phys)
}

// --------------------------------------------------------- coordinator

// CrashCoordinator kills the coordinator host: its ports (server and
// client side) are torn down, in-flight RPCs are lost, and only the
// durable prefix of the intentions journal survives for restart.
func (c *Chaos) CrashCoordinator() {
	if c.e.Coord == nil {
		return
	}
	c.e.Net.CrashHost(HostCoord)
	c.e.Coord.Close()
	c.e.Coord = nil
	c.e.CoordLog = c.e.CoordLog.CrashCopy()
}

// RestartCoordinator rebuilds the coordinator from the durable prefix of
// its journal on a fresh port of the same host. Recovery — replaying the
// log and finishing every pending intention — completes before the new
// port accepts calls, and the µproxy is re-pointed at the new address so
// its stuck coordinator RPCs fail over mid-retry.
func (c *Chaos) RestartCoordinator(port uint16) (*coord.Coordinator, error) {
	if c.e.Coord != nil {
		return nil, fmt.Errorf("ensemble: coordinator still running")
	}
	c.e.Net.RestartHost(HostCoord)
	addr := netsim.Addr{Host: HostCoord, Port: port}
	p, err := c.e.Net.Bind(addr)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(c.e.CoordLog)
	if err != nil {
		return nil, err
	}
	co, err := coord.Restart(p, coord.Config{
		Storage:    c.e.StorageTable,
		SmallFile:  c.e.SmallTable,
		Net:        c.e.Net,
		Host:       HostCoord,
		ProbeAfter: c.e.cfg.CoordProbeAfter,
		CapKey:     c.e.cfg.CapabilityKey,
	}, log)
	if err != nil {
		return nil, err
	}
	if c.e.obsCoord != nil {
		co.SetObs(c.e.obsCoord)
	}
	c.e.Coord = co
	// Re-point every live fleet member; a crashed proxy picks the new
	// address up from RestartProxy's rebuild.
	for _, p := range c.e.Proxies {
		if p != nil {
			p.SetCoord(addr)
		}
	}
	return co, nil
}

// -------------------------------------------------------------- µproxies

// CrashProxy kills µproxy i: its hosts (virtual address and client
// ports) are torn down, every in-flight request it was brokering is
// lost with its soft state, and the fleet table drops the member — the
// front's failure detection, folded into one membership swap. Flows the
// victim owned remap to the surviving siblings; in-flight calls reach
// them on their next retransmission, new calls immediately.
func (c *Chaos) CrashProxy(i int) {
	if i < 0 || i >= len(c.e.Proxies) || c.e.Proxies[i] == nil {
		return
	}
	c.e.Net.CrashHost(proxyVirtual(i).Host)
	c.e.Net.CrashHost(proxyHost(i))
	c.e.Proxies[i].Close()
	c.e.Proxies[i] = nil
	if i == 0 {
		c.e.Proxy = nil
	}
	members := c.e.Fleet.Members()
	survivors := make([]route.ProxyMember, 0, len(members))
	for _, m := range members {
		if m.ID != uint32(i) {
			survivors = append(survivors, m)
		}
	}
	c.e.Fleet.Swap(survivors)
}

// RestartProxy revives µproxy i on its original slot with empty soft
// state — the architecture's whole point is that nothing else is needed
// (§2.1). The member rejoins the fleet under its old ID, so consistent
// hashing hands it back exactly the flows it owned before the crash,
// and it reports under its old observability labels.
func (c *Chaos) RestartProxy(i int) (*proxy.Proxy, error) {
	if i < 0 || i >= len(c.e.Proxies) {
		return nil, fmt.Errorf("ensemble: no proxy slot %d", i)
	}
	if c.e.Proxies[i] != nil {
		return nil, fmt.Errorf("ensemble: proxy %d still running", i)
	}
	c.e.Net.RestartHost(proxyVirtual(i).Host)
	c.e.Net.RestartHost(proxyHost(i))
	reg, tracer := c.e.proxyObs(i)
	p := c.e.newProxy(i, reg, tracer)
	c.e.Proxies[i] = p
	if i == 0 {
		c.e.Proxy = p
	}
	members := c.e.Fleet.Members()
	rejoined := make([]route.ProxyMember, 0, len(members)+1)
	rejoined = append(rejoined, members...)
	rejoined = append(rejoined, route.ProxyMember{
		ID:      uint32(i),
		Virtual: proxyVirtual(i),
		Host:    proxyHost(i),
	})
	c.e.Fleet.Swap(rejoined)
	return p, nil
}

// --------------------------------------------------- directory servers

// CrashDir kills directory server i's host. The snapshot of its backing
// object must have been taken before the crash (checkpoints are
// periodic in a deployment); pass it to RestartDir.
func (c *Chaos) CrashDir(i int) {
	c.e.Net.CrashHost(HostDir0 + uint32(i))
	c.e.Dirs[i].Close()
	c.e.DirLogs[i] = c.e.DirLogs[i].CrashCopy()
}

// RestartDir rebuilds directory server i from snapshot plus the durable
// suffix of its journal, serving at host (a fresh site, or the original
// host revived). The shared directory table is rebound to the new
// address, which the µproxy observes as a route-version change: pending
// requests re-resolve on their next client retransmission.
func (c *Chaos) RestartDir(i int, snapshot []byte, host uint32) (*dirsrv.Server, error) {
	oldAddr := netsim.Addr{Host: HostDir0 + uint32(i), Port: ServicePort}
	if host == HostDir0+uint32(i) {
		c.e.Net.RestartHost(host)
	}
	addr := netsim.Addr{Host: host, Port: ServicePort}
	port, err := c.e.Net.Bind(addr)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(c.e.DirLogs[i])
	if err != nil {
		return nil, err
	}
	srv, err := dirsrv.Restart(port, dirsrv.Config{
		Site:         uint32(i),
		Volume:       1,
		Kind:         c.e.cfg.NameKind,
		Table:        c.e.DirTable,
		Net:          c.e.Net,
		Host:         host,
		Clock:        c.e.cfg.Clock,
		MirrorDegree: c.e.cfg.MirrorDegree,
		UseMaps:      c.e.cfg.UseBlockMaps && c.e.cfg.Coordinator,
	}, snapshot, log)
	if err != nil {
		return nil, err
	}
	srv.SetRoot(c.e.Root)
	// The restarted server keeps the original registry: counts accumulate
	// across the failover rather than resetting with the process.
	srv.SetObs(c.e.obsDirs[i])
	c.e.Dirs[i] = srv
	rebind(c.e.DirTable, oldAddr, addr)
	return srv, nil
}

// -------------------------------------------------- small-file servers

// CrashSmall kills small-file server i's host. Its store is dataless:
// everything needed for restart is the backing object (on a storage
// node) plus the durable journal prefix.
func (c *Chaos) CrashSmall(i int) {
	c.e.Net.CrashHost(HostSmall0 + uint32(i))
	c.e.Small[i].Close()
	c.e.SmallLogs[i] = c.e.SmallLogs[i].CrashCopy()
}

// RestartSmall rebuilds small-file server i against its backing object
// at host and rebinds the small-file table.
func (c *Chaos) RestartSmall(i int, host uint32) (*smallfile.Server, error) {
	oldAddr := netsim.Addr{Host: HostSmall0 + uint32(i), Port: ServicePort}
	if host == HostSmall0+uint32(i) {
		c.e.Net.RestartHost(host)
	}
	addr := netsim.Addr{Host: host, Port: ServicePort}
	port, err := c.e.Net.Bind(addr)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(c.e.SmallLogs[i])
	if err != nil {
		return nil, err
	}
	backing := c.e.Storage[i%len(c.e.Storage)].Store()
	backID := storage.ObjectID(0x5F<<56 | uint64(i))
	srv, err := smallfile.Restart(port, backing, backID, log)
	if err != nil {
		return nil, err
	}
	srv.SetObs(c.e.obsSmall[i])
	c.e.Small[i] = srv
	rebind(c.e.SmallTable, oldAddr, addr)
	return srv, nil
}

// ------------------------------------------------------- storage nodes

// PartitionStorage cuts storage node i off the fabric in both directions
// without killing it: its ports stay bound, so healing restores service
// with all state intact — the classic transient-partition fault.
func (c *Chaos) PartitionStorage(i int) {
	c.e.Net.IsolateHost(HostStorage0 + uint32(i))
}

// HealStorage reconnects a partitioned storage node.
func (c *Chaos) HealStorage(i int) {
	c.e.Net.RejoinHost(HostStorage0 + uint32(i))
}

// RestartStorage reboots storage node i mid-flight: the host's ports are
// torn down (in-flight datagrams to and from it are lost) and the node
// comes back at the same address over the same backing store — a machine
// reboot that keeps its disk. No table rebind is needed.
func (c *Chaos) RestartStorage(i int) (*storage.Node, error) {
	host := HostStorage0 + uint32(i)
	c.e.Net.CrashHost(host)
	c.e.Storage[i].Close()
	c.e.Net.RestartHost(host)
	port, err := c.e.Net.Bind(netsim.Addr{Host: host, Port: ServicePort})
	if err != nil {
		return nil, err
	}
	node := storage.NewNode(port, c.e.Storage[i].Store())
	if len(c.e.cfg.CapabilityKey) > 0 {
		node.RequireCapability(c.e.cfg.CapabilityKey)
	}
	node.SetObs(c.e.obsStorage[i])
	c.e.Storage[i] = node
	return node, nil
}

// ------------------------------------------------------ replica groups

// resyncWindow is the peer-read pipeline depth of a replica resync.
const resyncWindow = 8

// replicaGroup returns the group index storage node i belongs to under
// the consecutive partition (the last group absorbs any remainder).
func (c *Chaos) replicaGroup(i int) int {
	g := i / c.e.cfg.Replication
	if n := c.e.Replicas.NumGroups(); g >= n {
		g = n - 1
	}
	return g
}

// KillReplica kills storage node i together with its disk — the
// total-loss failure replication exists to absorb. The host is torn
// down (in-flight datagrams lost), the object store is discarded, and
// the member is marked down in the replica map: failure detection
// folded into one topology swap, exactly like CrashProxy's fleet swap.
// Writes stop awaiting the dead member, reads stop spreading to it,
// and the version bump retargets stalled in-flight requests onto the
// survivors at their next client retransmission. If i was its group's
// primary the next member is promoted and the storage table rebound.
func (c *Chaos) KillReplica(i int) {
	if i < 0 || i >= len(c.e.Storage) || c.e.Storage[i] == nil {
		return
	}
	c.e.Net.CrashHost(HostStorage0 + uint32(i))
	// A kill subsumes a transient partition of the same host: the crash
	// already drops all its traffic, and the replacement machine must not
	// inherit the partition marker.
	c.e.Net.RejoinHost(HostStorage0 + uint32(i))
	c.e.Storage[i].Close()
	c.e.Storage[i] = nil
	if c.e.Replicas == nil {
		return
	}
	addr := netsim.Addr{Host: HostStorage0 + uint32(i), Port: ServicePort}
	g := c.replicaGroup(i)
	before := c.e.Replicas.Groups()[g].Members[0]
	c.e.Replicas.MarkDown(addr)
	after := c.e.Replicas.Groups()[g].Members[0]
	if after != before {
		rebind(c.e.StorageTable, before, after)
	}
}

// KillReplicaUnderWrite kills the last (non-primary) member of replica
// group g with no quiescing — the canonical mid-write failure the
// replica chaos tests drive while a windowed bulk write or an untar is
// in flight. It returns the index of the node it killed, for the
// matching RestartReplica.
func (c *Chaos) KillReplicaUnderWrite(g int) (int, error) {
	if c.e.Replicas == nil {
		return 0, fmt.Errorf("ensemble: array is not replicated")
	}
	groups := c.e.Replicas.Groups()
	if g < 0 || g >= len(groups) {
		return 0, fmt.Errorf("ensemble: no replica group %d", g)
	}
	m := groups[g].Members[len(groups[g].Members)-1]
	i := int(m.Host - HostStorage0)
	c.KillReplica(i)
	return i, nil
}

// RestartReplica revives storage node i with an empty store, resyncing
// it from a surviving member of its replica group over the windowed
// peer program. The service port is bound only after the resync
// completes, so the reborn member never serves a stale read, and the
// member is marked back up in the replica map only once it is live —
// writes that finished against the shrunken group during the resync
// are already on the peer the store was copied from, so the reborn
// member re-enters the group byte-identical.
func (c *Chaos) RestartReplica(i int) (*storage.Node, error) {
	if c.e.Replicas == nil {
		return nil, fmt.Errorf("ensemble: array is not replicated")
	}
	if i < 0 || i >= len(c.e.Storage) {
		return nil, fmt.Errorf("ensemble: no storage node %d", i)
	}
	if c.e.Storage[i] != nil {
		return nil, fmt.Errorf("ensemble: storage node %d still running", i)
	}
	host := HostStorage0 + uint32(i)
	addr := netsim.Addr{Host: host, Port: ServicePort}
	g := c.replicaGroup(i)
	var peer netsim.Addr
	found := false
	for _, s := range c.e.Replicas.Groups()[g].Members {
		idx := int(s.Host - HostStorage0)
		if s != addr && idx >= 0 && idx < len(c.e.Storage) && c.e.Storage[idx] != nil {
			peer, found = s, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("ensemble: no live sibling to resync storage node %d from", i)
	}
	c.e.Net.RestartHost(host)
	// Resync over a transient client port; the service port stays unbound
	// until the store is complete.
	cp, err := c.e.Net.Bind(netsim.Addr{Host: host, Port: 1})
	if err != nil {
		return nil, err
	}
	cli := oncrpc.NewClient(cp, peer, c.e.cfg.ClientRPC)
	store := storage.NewObjectStore()
	st, err := storage.ResyncFrom(cli, replica.PeerToken(c.e.cfg.CapabilityKey), resyncWindow, store)
	cli.Close()
	if err != nil {
		return nil, fmt.Errorf("ensemble: resync storage node %d from %v: %w", i, peer, err)
	}
	if reg := c.e.obsStorage[i]; reg != nil {
		reg.Hist("replica.resync_bytes").Record(uint64(st.Bytes))
	}
	port, err := c.e.Net.Bind(addr)
	if err != nil {
		return nil, err
	}
	node := storage.NewNode(port, store)
	if len(c.e.cfg.CapabilityKey) > 0 {
		node.RequireCapability(c.e.cfg.CapabilityKey)
	}
	if c.e.cfg.StorageServiceTime > 0 {
		node.SetServiceTime(c.e.cfg.StorageServiceTime)
	}
	node.SetReplica(uint32(i/c.e.cfg.Replication), uint32(i%c.e.cfg.Replication))
	node.SetObs(c.e.obsStorage[i])
	c.e.Storage[i] = node
	// Rejoin the group last: if the dead member had been the primary the
	// promotion is undone and the storage table rebound to the original.
	before := c.e.Replicas.Groups()[g].Members[0]
	c.e.Replicas.MarkUp(addr)
	after := c.e.Replicas.Groups()[g].Members[0]
	if after != before {
		rebind(c.e.StorageTable, before, after)
	}
	return node, nil
}
