// Package storage implements the Slice network storage nodes: object-based
// block storage in the style of the NSIC OBSD proposal and CMU NASD (§2.2).
//
// A storage node serves a flat space of storage objects named by unique
// identifiers; requesters address data as (object, logical offset). Nodes
// accept NFS file handles as object identifiers, mapping them to objects
// with an external hash, and serve the NFS subset {read, write, commit}
// plus an extension program for remove/truncate/stat of raw objects.
//
// Writes are unstable until committed, mirroring NFS V3 write semantics:
// a crash discards uncommitted blocks and changes the node's write
// verifier, which clients detect and use to re-send uncommitted data.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// BlockSize is the logical block size of storage objects.
const BlockSize = 8192

// ObjectID names a storage object within a node.
type ObjectID uint64

// ErrNoObject is returned for operations on objects that do not exist.
var ErrNoObject = errors.New("storage: no such object")

// block is one logical block of an object. data is allocated on first
// write and always BlockSize long; durable marks committed content.
type block struct {
	data    []byte
	durable bool
}

// object is an ordered byte sequence held as a sparse block map.
type object struct {
	blocks map[int64]*block
	size   int64 // logical size in bytes
}

// Stats counts storage node activity.
type Stats struct {
	Reads          uint64
	Writes         uint64
	Commits        uint64
	Removes        uint64
	BytesRead      uint64
	BytesWritten   uint64
	PrefetchStarts uint64 // sequential streams detected
	Crashes        uint64
}

// ObjectStore is the storage manager inside one node (the role FFS played
// in the prototype). It is safe for concurrent use.
type ObjectStore struct {
	mu       sync.Mutex
	objects  map[ObjectID]*object
	verifier uint64
	stats    Stats

	// seqTail tracks the end offset of the last read per object, to
	// detect sequential streams for prefetching (§4.2: storage nodes
	// prefetch sequential files up to 256KB beyond the current access).
	seqTail map[ObjectID]int64
}

// NewObjectStore returns an empty store with a fresh write verifier.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{
		objects:  make(map[ObjectID]*object),
		verifier: 1,
		seqTail:  make(map[ObjectID]int64),
	}
}

// Stats returns a snapshot of the counters.
func (s *ObjectStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Verifier returns the node's current write verifier. It changes whenever
// uncommitted data may have been lost.
func (s *ObjectStore) Verifier() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verifier
}

// NumObjects returns the number of objects in the store.
func (s *ObjectStore) NumObjects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

func (s *ObjectStore) get(id ObjectID, create bool) *object {
	o := s.objects[id]
	if o == nil && create {
		o = &object{blocks: make(map[int64]*block)}
		s.objects[id] = o
	}
	return o
}

// WriteAt writes p at byte offset off of object id, creating the object if
// needed. If stable is true the data is durable immediately (FILE_SYNC);
// otherwise it remains volatile until Commit.
func (s *ObjectStore) WriteAt(id ObjectID, off int64, p []byte, stable bool) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id, true)
	s.stats.Writes++
	s.stats.BytesWritten += uint64(len(p))
	end := off + int64(len(p))
	for len(p) > 0 {
		bn := off / BlockSize
		bo := off % BlockSize
		b := o.blocks[bn]
		if b == nil {
			b = &block{data: make([]byte, BlockSize)}
			o.blocks[bn] = b
		}
		n := copy(b.data[bo:], p)
		if stable {
			b.durable = true
		} else {
			b.durable = false
		}
		p = p[n:]
		off += int64(n)
	}
	if end > o.size {
		o.size = end
	}
	return nil
}

// ReadAt reads up to len(p) bytes from object id at byte offset off. It
// returns the byte count and whether the read reached end of object. Holes
// read as zeros. Reading a nonexistent object returns ErrNoObject.
func (s *ObjectStore) ReadAt(id ObjectID, off int64, p []byte) (int, bool, error) {
	if off < 0 {
		return 0, false, fmt.Errorf("storage: negative offset %d", off)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id, false)
	if o == nil {
		return 0, false, fmt.Errorf("%w: %d", ErrNoObject, uint64(id))
	}
	s.stats.Reads++
	if off >= o.size {
		return 0, true, nil
	}
	n := len(p)
	if int64(n) > o.size-off {
		n = int(o.size - off)
	}
	// Detect sequential access for prefetch accounting.
	if tail, ok := s.seqTail[id]; ok && tail == off {
		s.stats.PrefetchStarts++
	}
	s.seqTail[id] = off + int64(n)

	read := 0
	for read < n {
		bn := (off + int64(read)) / BlockSize
		bo := (off + int64(read)) % BlockSize
		want := n - read
		if int64(want) > BlockSize-bo {
			want = int(BlockSize - bo)
		}
		if b := o.blocks[bn]; b != nil {
			copy(p[read:read+want], b.data[bo:])
		} else {
			for i := read; i < read+want; i++ {
				p[i] = 0
			}
		}
		read += want
	}
	s.stats.BytesRead += uint64(n)
	return n, off+int64(n) >= o.size, nil
}

// Commit makes all buffered writes to object id durable (write clustering:
// one pass marks every dirty block) and returns the write verifier.
// Committing a nonexistent object succeeds: NFS commit of a file with no
// uncommitted data is a no-op.
func (s *ObjectStore) Commit(id ObjectID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Commits++
	if o := s.get(id, false); o != nil {
		for _, b := range o.blocks {
			b.durable = true
		}
	}
	return s.verifier
}

// CommitAll makes every object durable, as a periodic syncer would.
func (s *ObjectStore) CommitAll() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Commits++
	for _, o := range s.objects {
		for _, b := range o.blocks {
			b.durable = true
		}
	}
	return s.verifier
}

// Remove deletes object id. Removing a missing object is a no-op, so that
// retransmitted removes are idempotent.
func (s *ObjectStore) Remove(id ObjectID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Removes++
	delete(s.objects, id)
	delete(s.seqTail, id)
}

// Truncate sets the logical size of object id, discarding blocks beyond
// the new end. Truncating a nonexistent object creates it.
func (s *ObjectStore) Truncate(id ObjectID, size int64) error {
	if size < 0 {
		return fmt.Errorf("storage: negative size %d", size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id, true)
	if size < o.size {
		lastBlock := (size + BlockSize - 1) / BlockSize
		for bn := range o.blocks {
			if bn >= lastBlock {
				delete(o.blocks, bn)
			}
		}
		// Zero the tail of the new last block.
		if size%BlockSize != 0 {
			if b := o.blocks[size/BlockSize]; b != nil {
				for i := size % BlockSize; i < BlockSize; i++ {
					b.data[i] = 0
				}
			}
		}
	}
	o.size = size
	return nil
}

// ObjEntry is one object's directory entry: identifier and logical size.
type ObjEntry struct {
	ID   ObjectID
	Size int64
}

// ListAfter returns up to max objects with ID strictly greater than
// after, in ascending ID order — the pagination primitive of the
// replica peer program. A fresh page is consistent at the instant it
// was taken; callers tolerate objects appearing or vanishing between
// pages (resync re-covers them via fanned-out writes).
func (s *ObjectStore) ListAfter(after ObjectID, max int) []ObjEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents := make([]ObjEntry, 0, len(s.objects))
	for id, o := range s.objects {
		if id > after {
			ents = append(ents, ObjEntry{ID: id, Size: o.size})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].ID < ents[j].ID })
	if max > 0 && len(ents) > max {
		ents = ents[:max]
	}
	return ents
}

// Size returns the logical size of object id and whether it exists.
func (s *ObjectStore) Size(id ObjectID) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id, false)
	if o == nil {
		return 0, false
	}
	return o.size, true
}

// Used returns the bytes of physical storage allocated to object id.
func (s *ObjectStore) Used(id ObjectID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id, false)
	if o == nil {
		return 0
	}
	return int64(len(o.blocks)) * BlockSize
}

// Crash simulates a node failure and restart: uncommitted blocks are lost
// (truncated objects keep their committed size semantics: size reverts to
// cover only durable blocks when the tail was never committed), and the
// write verifier changes so clients re-send uncommitted writes.
func (s *ObjectStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Crashes++
	s.verifier++
	for _, o := range s.objects {
		var maxDurableEnd int64
		for bn, b := range o.blocks {
			if !b.durable {
				delete(o.blocks, bn)
				continue
			}
			if end := (bn + 1) * BlockSize; end > maxDurableEnd {
				maxDurableEnd = end
			}
		}
		if o.size > maxDurableEnd {
			o.size = maxDurableEnd
		}
	}
	s.seqTail = make(map[ObjectID]int64)
}

// TotalBytes sums the logical sizes of all objects. Striped files appear
// at near-full size on every node holding any of their stripes (offsets
// are file-global and objects are sparse); use PhysicalBytes for actual
// storage consumption.
func (s *ObjectStore) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, o := range s.objects {
		t += o.size
	}
	return t
}

// PhysicalBytes sums the allocated block storage across all objects.
func (s *ObjectStore) PhysicalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, o := range s.objects {
		t += int64(len(o.blocks)) * BlockSize
	}
	return t
}
