GO ?= go

.PHONY: check vet build test race bench bench-proxy bench-gate lint cover fuzz corpus nightly-chaos

# The full gate: everything a change must pass before it lands.
check: vet build race bench-proxy

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short run of every benchmark, as a smoke test.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The contended data-path benchmarks (compare against BENCH_proxy.json).
bench-proxy:
	$(GO) test -run xxx -bench 'ProxyForward|CacheHit' -benchmem -benchtime 1s -cpu 1,4 .

# Benchmark regression gate: repeated short runs of the gated data-path
# benchmarks, reduced to their minimum and compared against the
# checked-in baselines. Allocation counts are held exactly (the forward
# path must stay 0 allocs/op; the bulk path's budgets carry headroom in
# BENCH_bulkio.json); ns/op gets BENCH_TOLERANCE headroom for machine
# noise. bench.out/bench_bulk.out are kept for CI artifact upload. The
# bulk benchmarks run at -cpu 4 only (the windowed fan-out needs
# GOMAXPROCS>1 to overlap) and a few long iterations, not thousands of
# short ones.
BENCH_COUNT ?= 6
BENCH_TIME ?= 20000x
BENCH_BULK_TIME ?= 3x
BENCH_FLEET_TIME ?= 5000x
BENCH_REPLICA_TIME ?= 2000x
BENCH_WIRE_TIME ?= 3x
BENCH_REBALANCE_TIME ?= 2x
BENCH_TOLERANCE ?= 2.5
bench-gate:
	$(GO) test -run xxx -bench 'ProxyForward|CacheHit' -benchmem \
	    -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) -cpu 1,4 . > bench.out \
	    || { cat bench.out; exit 1; }
	$(GO) test -run xxx -bench 'FleetForward' -benchmem \
	    -benchtime $(BENCH_FLEET_TIME) -count $(BENCH_COUNT) -cpu 4 . >> bench.out \
	    || { cat bench.out; exit 1; }
	$(GO) run ./cmd/benchgate -baseline BENCH_proxy.json -input bench.out -tolerance $(BENCH_TOLERANCE)
	$(GO) test -run xxx -bench 'BenchmarkBulk(Read|Write)' -benchmem \
	    -benchtime $(BENCH_BULK_TIME) -count $(BENCH_COUNT) -cpu 4 . > bench_bulk.out \
	    || { cat bench_bulk.out; exit 1; }
	$(GO) run ./cmd/benchgate -baseline BENCH_bulkio.json -input bench_bulk.out -tolerance $(BENCH_TOLERANCE)
	$(GO) test -run xxx -bench 'BenchmarkReplicaRead' -benchmem \
	    -benchtime $(BENCH_REPLICA_TIME) -count $(BENCH_COUNT) -cpu 4 . > bench_replica.out \
	    || { cat bench_replica.out; exit 1; }
	$(GO) run ./cmd/benchgate -baseline BENCH_replica.json -input bench_replica.out -tolerance $(BENCH_TOLERANCE)
	$(GO) test -run xxx -bench 'BenchmarkWire(Read|Write)' -benchmem \
	    -benchtime $(BENCH_WIRE_TIME) -count $(BENCH_COUNT) -cpu 4 . > bench_wire.out \
	    || { cat bench_wire.out; exit 1; }
	$(GO) run ./cmd/benchgate -baseline BENCH_wire.json -input bench_wire.out -tolerance $(BENCH_TOLERANCE)
	$(GO) test -run xxx -bench 'BenchmarkRebalanceThroughput' -benchmem \
	    -benchtime $(BENCH_REBALANCE_TIME) -count $(BENCH_COUNT) -cpu 4 . > bench_rebalance.out \
	    || { cat bench_rebalance.out; exit 1; }
	$(GO) run ./cmd/benchgate -baseline BENCH_rebalance.json -input bench_rebalance.out -tolerance $(BENCH_TOLERANCE)

# Static analysis beyond vet. The tools are not vendored: offline
# checkouts skip a missing tool with a note, but under CI=1 a missing
# tool is an error — the lint job must never silently pass because an
# install step broke.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
	    staticcheck ./... ; \
	elif [ -n "$(CI)" ]; then \
	    echo "lint: staticcheck not installed (required under CI=1)"; exit 1; \
	else echo "lint: staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
	    govulncheck ./... ; \
	elif [ -n "$(CI)" ]; then \
	    echo "lint: govulncheck not installed (required under CI=1)"; exit 1; \
	else echo "lint: govulncheck not installed; skipping"; fi

# Coverage with a floor: the suite must keep covering at least
# COVER_FLOOR% of statements overall, and two correctness-critical
# packages must also meet per-package floors on their own —
# cross-package chaos tests don't count toward them: internal/replica
# (replica map + resync protocol) and internal/rebalance (online block
# migration; its floor is higher because a missed branch there is lost
# data, not a missed optimization).
COVER_FLOOR ?= 65
REBAL_COVER_FLOOR ?= 80
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/,"",$$3); print $$3 }'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
	    if (t+0 < f+0) { printf "cover: %.1f%% is below the %s%% floor\n", t, f; exit 1 } \
	    else { printf "cover: %.1f%% >= %s%% floor\n", t, f } }'
	@pkg=$$($(GO) test -cover ./internal/replica/ | awk '{ for (i=1;i<=NF;i++) if ($$i ~ /%$$/) { sub(/%/,"",$$i); print $$i } }'); \
	awk -v t="$$pkg" -v f="$(COVER_FLOOR)" 'BEGIN { \
	    if (t+0 < f+0) { printf "cover: internal/replica %.1f%% is below the %s%% floor\n", t, f; exit 1 } \
	    else { printf "cover: internal/replica %.1f%% >= %s%% floor\n", t, f } }'
	@pkg=$$($(GO) test -cover ./internal/rebalance/ | awk '{ for (i=1;i<=NF;i++) if ($$i ~ /%$$/) { sub(/%/,"",$$i); print $$i } }'); \
	awk -v t="$$pkg" -v f="$(REBAL_COVER_FLOOR)" 'BEGIN { \
	    if (t+0 < f+0) { printf "cover: internal/rebalance %.1f%% is below the %s%% floor\n", t, f; exit 1 } \
	    else { printf "cover: internal/rebalance %.1f%% >= %s%% floor\n", t, f } }'

# The nightly chaos matrix, locally: the whole chaos suite plus the
# chaos_long elastic-topology scenarios, across {udp,tcp} transports and
# {1,3}-way replication under the race detector. CI runs the same matrix
# with -count 3 (.github/workflows/nightly.yml).
nightly-chaos:
	@for t in udp tcp; do for k in 1 3; do \
	    echo "== chaos matrix: transport=$$t replication=$$k =="; \
	    CHAOS_TRANSPORT=$$t CHAOS_REPLICATION=$$k \
	    $(GO) test -tags chaos_long -race -count 1 ./internal/chaos/ || exit 1; \
	done; done

# Regenerate the checked-in fuzz seed corpora (testdata/fuzz/...).
corpus:
	$(GO) run ./tools/gencorpus

# Fixed-budget run of every fuzz target (wire parsers, the WAL scanner,
# and the routing-table transition machine).
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/wal/ -run '^$$' -fuzz FuzzScan -fuzztime $(FUZZTIME)
	$(GO) test ./internal/route/ -run '^$$' -fuzz FuzzTableTransition -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oncrpc/ -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/nfsproto/ -run '^$$' -fuzz FuzzParseCall -fuzztime $(FUZZTIME)
	$(GO) test ./internal/nfsproto/ -run '^$$' -fuzz FuzzParseMountPortmap -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netsim/ -run '^$$' -fuzz FuzzParseDatagram -fuzztime $(FUZZTIME)
