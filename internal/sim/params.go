package sim

// Calibration constants for the simulated testbed. Each value is taken
// from, or fitted to, a number the paper itself reports in §5; DESIGN.md
// and EXPERIMENTS.md discuss the substitution. Absolute results therefore
// track the paper's hardware by construction, but the *curves* — scaling
// with servers, saturation knees, crossover points, policy effects — are
// emergent from queueing and from the real routing code.
const (
	// --- Client host (450 MHz PII, FreeBSD NFS/UDP stack) ---

	// ClientWritePerByte is the client CPU cost per written byte; the
	// paper measured the stack saturating below 40 MB/s.
	ClientWritePerByte = 1.0 / (40e6)
	// ClientReadPerByte reflects the zero-copy read path (62.5 MB/s).
	ClientReadPerByte = 1.0 / (62.5e6)
	// ClientMirrorWritePerByte is the cost per byte when the client
	// writes both mirrors (fitted to the 32.2 MB/s row of Table 2:
	// packet-level costs double, page-level costs do not).
	ClientMirrorWritePerByte = 1.0 / (32.2e6)
	// ClientMirrorReadPerByte is fitted to the 52.9 MB/s row.
	ClientMirrorReadPerByte = 1.0 / (52.9e6)
	// TunedClientPerByte is used for the saturation columns, where the
	// paper drove the array to its limits (the client stack was not the
	// bottleneck in those runs).
	TunedClientPerByte = 1.0 / (80e6)

	// --- Storage nodes (Dell 4400, 8 Cheetahs on one channel) ---

	// NodeSourceBW / NodeSinkBW are per-node streaming limits: "each
	// storage node sources reads to the network at 55 MB/s and sinks
	// writes at 60 MB/s" (§5).
	NodeSourceBW = 55e6
	NodeSinkBW   = 60e6
	// MirrorReadSourceEff models the prefetched-but-unused data when
	// client µproxies alternate between mirrors: effective source
	// bandwidth halves (437→222 MB/s in Table 2).
	MirrorReadSourceEff = 0.5
	// DisksPerNode: eight Cheetah drives per storage node.
	DisksPerNode = 8
	// DiskPositioning is the average positioning time per small I/O
	// (seek + rotational latency for a Cheetah-class drive).
	DiskPositioning = 8.0e-3
	// DiskTransferBW is the per-arm media rate (33 MB/s raw, §5).
	DiskTransferBW = 33e6

	// --- File managers ---

	// DirOpTime: "each server saturates at 6000 ops/s" (§5), including
	// journaling overhead.
	DirOpTime = 1.0 / 6000
	// DirPeerOpTime is the extra remote work for a two-site operation
	// (redirected mkdir, orphan rmdir, cross-site link update).
	DirPeerOpTime = DirOpTime
	// DirLogBytesPerOp: 0.5 MB/s of log traffic at 6000 ops/s.
	DirLogBytesPerOp = 83
	// MFSOpTime is the baseline single-server (memory filesystem) cost
	// per name operation: lower than a Slice directory server — no
	// journaling, no distribution — which is why N-MFS wins at light
	// load in Figure 3 before its one CPU saturates.
	MFSOpTime = 1.0 / 7200
	// SmallFileOpTime is the small-file server CPU cost per I/O.
	SmallFileOpTime = 80e-6
	// SmallFileCacheBytes: the ensemble's small-file cache whose
	// overflow produces the latency jumps in Figure 6 ("1 GB cache on
	// the small-file servers").
	SmallFileCacheBytes = 1 << 30

	// --- Client node CPU for name-intensive workloads ---

	// ClientOpTime is the client-side CPU per NFS op (RPC stack plus the
	// interposed µproxy's 6.1%, Table 3).
	ClientOpTime = 120e-6
	// ClientNodes is the number of client machines driving Figure 3
	// (five client PCs, §5).
	ClientNodes = 5

	// --- Untar workload (Figures 3 and 4) ---

	// UntarFilesPerProcess: each process creates 36,000 files and
	// directories generating 250,000 NFS operations (§5).
	UntarFilesPerProcess = 36000
	// UntarOpsPerCreate: each file create generates seven NFS ops:
	// lookup, access, create, getattr, lookup, setattr, setattr.
	UntarOpsPerCreate = 7
	// UntarDirFraction approximates the FreeBSD source tree's ratio of
	// directories to total entries.
	UntarDirFraction = 0.08

	// --- SPECsfs97 (Figures 5 and 6) ---

	// SfsBaselineOpTime is fitted to the single FreeBSD NFS server
	// baseline saturating at 850 IOPS (§5): the full name+data+FFS path
	// on one CPU with a CCD-concatenated volume.
	SfsBaselineOpTime = 1.0 / 870
	// SfsFilesetBytesPerIOPS: SPECsfs97 self-scales its file set with
	// offered load, about 10 MB per op/s.
	SfsFilesetBytesPerIOPS = 10e6
	// SfsMeanXfer is the average transfer size of SPECsfs data ops (the
	// file set is skewed to small files: 94% ≤ 64KB).
	SfsMeanXfer = 8192
	// SfsDiskOpsBase is the per-op disk-visit rate with a warm cache
	// (metadata flushes, write-behind).
	SfsDiskOpsBase = 0.25
	// SfsDiskOpsMissMax is the additional per-op disk-visit rate when
	// the cache is fully overflowed (every read misses, creates flush).
	SfsDiskOpsMissMax = 0.9
)

// SfsOpMix is the SPECsfs97 NFS V3 operation mix. Operations the Slice
// prototype does not implement (readlink, readdirplus, fsinfo) are folded
// into equivalent-cost name-space operations, as they route identically.
var SfsOpMix = []struct {
	Name string
	Frac float64
	Kind SfsOpKind
}{
	{"getattr", 0.11, SfsOpName},
	{"setattr", 0.01, SfsOpName},
	{"lookup", 0.27, SfsOpName},
	{"access", 0.07, SfsOpName},
	{"readlink", 0.07, SfsOpName}, // folded: routes like lookup
	{"read", 0.18, SfsOpRead},
	{"write", 0.09, SfsOpWrite},
	{"create", 0.01, SfsOpCreate},
	{"remove", 0.01, SfsOpCreate},
	{"readdir", 0.02, SfsOpName},
	{"readdirplus", 0.09, SfsOpName}, // folded: routes like readdir
	{"fsstat", 0.01, SfsOpName},
	{"fsinfo", 0.01, SfsOpName},
	{"commit", 0.05, SfsOpWrite},
}

// SfsOpKind partitions the mix by the resources an operation consumes.
type SfsOpKind int

// Kinds of SPECsfs operations.
const (
	SfsOpName SfsOpKind = iota // directory/attribute traffic
	SfsOpRead
	SfsOpWrite
	SfsOpCreate // name op that also dirties metadata on disk
)
