// Package sim is the discrete-event performance simulator used to
// regenerate the paper's evaluation (Table 2 and Figures 3-6).
//
// The paper's numbers come from a hardware testbed — Gigabit Ethernet,
// Dell storage nodes with eight Cheetah drives each, FreeBSD kernels —
// that cannot be reproduced here. What can be reproduced is the *shape* of
// the results: who wins, by what factor, and where the knees fall. The
// simulator models the testbed as a network of first-come-first-served
// multi-server queueing stations (client CPUs, server CPUs, disk arms,
// NICs, logs) with service times calibrated from the constants the paper
// itself reports (§5), and drives them with the paper's workloads. The
// request ROUTING between stations is computed by the same
// internal/route policy code the live µproxy uses, so the experiments
// exercise the actual contribution, not a re-derivation of it.
package sim

import (
	"container/heap"
	"math"
)

// event is one scheduled callback.
type event struct {
	t   float64 // simulated seconds
	seq uint64  // tie-break for deterministic ordering
	fn  func()
}

// eventHeap orders events by time then sequence.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine is a deterministic discrete-event simulation core.
type Engine struct {
	now  float64
	seq  uint64
	heap eventHeap
}

// NewEngine returns an engine at simulated time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at simulated time t (>= Now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Run processes events until the queue drains or simulated time reaches
// until (0 means no bound). It returns the final simulated time.
func (e *Engine) Run(until float64) float64 {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(event)
		if until > 0 && ev.t > until {
			e.now = until
			return e.now
		}
		e.now = ev.t
		ev.fn()
	}
	return e.now
}

// Station is a first-come-first-served queueing resource with one or more
// identical servers: a CPU, a set of disk arms, a NIC, a log device.
type Station struct {
	eng     *Engine
	Name    string
	servers int

	busy  int
	queue []job
	// accounting
	BusyTime  float64 // aggregate busy server-seconds
	Served    uint64
	WaitTime  float64 // aggregate queueing delay (excluding service)
	maxQueued int
}

type job struct {
	dur     float64
	arrived float64
	done    func()
}

// NewStation creates a station with the given number of servers.
func NewStation(eng *Engine, name string, servers int) *Station {
	if servers < 1 {
		servers = 1
	}
	return &Station{eng: eng, Name: name, servers: servers}
}

// Visit requests dur seconds of service; done runs on completion. Zero or
// negative durations complete immediately.
func (s *Station) Visit(dur float64, done func()) {
	if dur <= 0 {
		if done != nil {
			s.eng.After(0, done)
		}
		return
	}
	j := job{dur: dur, arrived: s.eng.Now(), done: done}
	if s.busy < s.servers {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
	if len(s.queue) > s.maxQueued {
		s.maxQueued = len(s.queue)
	}
}

func (s *Station) start(j job) {
	s.busy++
	s.WaitTime += s.eng.Now() - j.arrived
	s.BusyTime += j.dur
	s.Served++
	s.eng.After(j.dur, func() {
		s.busy--
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.start(next)
		}
		if j.done != nil {
			j.done()
		}
	})
}

// Utilization returns the mean fraction of busy servers over [0, now].
func (s *Station) Utilization() float64 {
	t := s.eng.Now()
	if t <= 0 {
		return 0
	}
	return s.BusyTime / (t * float64(s.servers))
}

// MaxQueued returns the high-water mark of the queue length.
func (s *Station) MaxQueued() int { return s.maxQueued }

// Backlog returns the jobs currently queued or in service.
func (s *Station) Backlog() int { return len(s.queue) + s.busy }

// Visit describes one stop of an operation's path through the system.
type Stop struct {
	St  *Station
	Dur float64
}

// Chain runs the stops sequentially and calls done at the end. It is the
// continuation-passing backbone for multi-hop operations (client CPU →
// server CPU → disk → reply).
func Chain(stops []Stop, done func()) {
	if len(stops) == 0 {
		if done != nil {
			done()
		}
		return
	}
	head, rest := stops[0], stops[1:]
	head.St.Visit(head.Dur, func() { Chain(rest, done) })
}

// rng is a small deterministic PRNG (xorshift64*) so simulations are
// reproducible without seeding global state.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform sample in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Intn returns a uniform sample in [0, n).
func (r *rng) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Exp returns an exponential sample with the given mean.
func (r *rng) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}
